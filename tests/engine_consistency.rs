//! Cross-crate integration: all delay engines agree with the golden model
//! within their documented error envelopes, across geometries.

use usbf::core::{
    stats, DelayEngine, ExactEngine, NaiveTableEngine, NappeDelays, NappeSchedule, TableFreeConfig,
    TableFreeEngine, TableSteerConfig, TableSteerEngine,
};
use usbf::geometry::{SystemSpec, Vec3};
use usbf::tables::error::theoretical_bound_seconds;

/// Asserts that an engine's batched `fill_nappe` is bit-exact with the
/// scalar `delay_samples` walk over the given slab tile and nappes.
fn assert_fill_nappe_bit_exact(
    engine: &dyn DelayEngine,
    spec: &SystemSpec,
    tile: usbf::core::Tile,
    nappes: &[usize],
) {
    let mut batched = NappeDelays::for_tile(spec, tile);
    let mut scalar = NappeDelays::for_tile(spec, tile);
    for &id in nappes {
        engine.fill_nappe(id, &mut batched);
        scalar.fill_scalar(engine, id);
        for (slot, (a, b)) in batched.samples().iter().zip(scalar.samples()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{}: nappe {id}, slab entry {slot}: {a} vs {b}",
                engine.name()
            );
        }
    }
}

#[test]
fn all_engines_agree_on_tiny_geometry() {
    let spec = SystemSpec::tiny();
    let exact = ExactEngine::new(&spec);
    let naive = NaiveTableEngine::build(&spec, u64::MAX).unwrap();
    let tablefree = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
    let tablesteer = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();

    // NAIVE is bit-identical to EXACT.
    let s = stats::selection_error(&naive, &exact, &spec, 1, 1);
    assert_eq!(s.max_abs, 0);

    // TABLEFREE: §VI-A envelope (max selection error 2).
    let s = stats::selection_error(&tablefree, &exact, &spec, 1, 1);
    assert!(s.max_abs <= 2, "TABLEFREE max = {}", s.max_abs);

    // TABLESTEER: algorithmic error below the theoretical bound.
    let bound = spec.seconds_to_samples(theoretical_bound_seconds(&spec)) + 1.0;
    let s = stats::sample_error(&tablesteer, &exact, &spec, 1, 1);
    assert!(
        s.max_abs <= bound,
        "TABLESTEER max = {} > {}",
        s.max_abs,
        bound
    );
}

#[test]
fn engines_respect_error_ordering_in_far_field() {
    // Deep voxels, small aperture: TABLESTEER's far-field assumption is
    // excellent there, and both engines are within a couple samples.
    let spec = SystemSpec::tiny();
    let exact = ExactEngine::new(&spec);
    let tablefree = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
    let tablesteer = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
    let v = &spec.volume_grid;
    for it in 0..v.n_theta() {
        for ip in 0..v.n_phi() {
            let vox = usbf::geometry::VoxelIndex::new(it, ip, v.n_depth() - 1);
            for e in spec.elements.iter() {
                let te = exact.delay_samples(vox, e);
                assert!((tablefree.delay_samples(vox, e) - te).abs() < 1.0);
                assert!((tablesteer.delay_samples(vox, e) - te).abs() < 2.0);
            }
        }
    }
}

#[test]
fn engine_trait_objects_are_interchangeable() {
    let spec = SystemSpec::tiny();
    let engines: Vec<Box<dyn DelayEngine>> = vec![
        Box::new(ExactEngine::new(&spec)),
        Box::new(TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap()),
        Box::new(TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap()),
    ];
    let vox = usbf::geometry::VoxelIndex::new(3, 3, 10);
    let e = spec.elements.center_element();
    let reference = engines[0].delay_samples(vox, e);
    for eng in &engines {
        assert!(
            (eng.delay_samples(vox, e) - reference).abs() < 2.0,
            "{}",
            eng.name()
        );
        assert!(eng.delay_index(vox, e) >= 0);
        assert_eq!(eng.echo_buffer_len(), spec.echo_buffer_len());
    }
}

#[test]
fn off_axis_origin_consistency() {
    // A displaced emission origin (synthetic-aperture mode): TABLEFREE and
    // TABLESTEER still track the exact engine.
    let base = SystemSpec::tiny();
    let spec = SystemSpec::new(
        base.speed_of_sound,
        base.sampling_frequency,
        base.transducer.clone(),
        base.volume.clone(),
        Vec3::new(1.5e-3, -1.0e-3, 0.0),
        base.frame_rate,
    );
    let exact = ExactEngine::new(&spec);
    let tablefree = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
    let s = stats::sample_error(&tablefree, &exact, &spec, 3, 1);
    assert!(s.max_abs < 1.0, "TABLEFREE off-axis max = {}", s.max_abs);

    let tablesteer = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
    assert!(
        !tablesteer.reference().is_folded(),
        "off-axis origin cannot fold"
    );
    // Note: the steering correction assumes a centred origin; with a
    // displaced origin the reference table carries the origin offset and
    // the correction plane stays a valid far-field approximation.
    let s = stats::sample_error(&tablesteer, &exact, &spec, 3, 1);
    let bound = spec.seconds_to_samples(theoretical_bound_seconds(&spec)) + 60.0;
    assert!(s.max_abs < bound, "TABLESTEER off-axis max = {}", s.max_abs);
}

#[test]
fn batched_fill_is_bit_exact_for_all_engines_on_tiny() {
    // All four engines, every nappe, whole fan, every element.
    let spec = SystemSpec::tiny();
    let exact = ExactEngine::new(&spec);
    let naive = NaiveTableEngine::build(&spec, u64::MAX).unwrap();
    let tablefree = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
    let tablesteer = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
    let full = NappeDelays::full(&spec).tile();
    let nappes: Vec<usize> = (0..spec.volume_grid.n_depth()).collect();
    for engine in [&exact as &dyn DelayEngine, &naive, &tablefree, &tablesteer] {
        assert_fill_nappe_bit_exact(engine, &spec, full, &nappes);
    }
}

#[test]
fn batched_fill_is_bit_exact_at_full_scale() {
    // The paper's full Table I geometry: 100×100 elements, 128×128×1000
    // focal points. One whole-fan slab is 163.8M delays, so check one
    // schedule tile (a Fig. 4 block's 8×16 ownership, all 10 000
    // elements) at shallow, middle and deep nappes — 3 × 1.28M delays per
    // engine. NAIVE is excluded: its full-scale table is the 328 GB
    // non-starter the paper rules out.
    let spec = SystemSpec::paper();
    let schedule = NappeSchedule::paper();
    let tile = schedule.tile_of(77);
    let nappes = [0usize, 499, 999];
    let exact = ExactEngine::new(&spec);
    assert_fill_nappe_bit_exact(&exact, &spec, tile, &nappes);
    let tablefree = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
    assert_fill_nappe_bit_exact(&tablefree, &spec, tile, &nappes);
    let tablesteer = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
    assert_fill_nappe_bit_exact(&tablesteer, &spec, tile, &nappes);
}

#[test]
fn batched_fill_is_bit_exact_on_off_axis_origin() {
    // Synthetic-aperture mode: displaced emission origin, unfolded
    // reference table, exact-transmit TABLEFREE ablation.
    let base = SystemSpec::tiny();
    let spec = SystemSpec::new(
        base.speed_of_sound,
        base.sampling_frequency,
        base.transducer.clone(),
        base.volume.clone(),
        Vec3::new(1.5e-3, -1.0e-3, 0.0),
        base.frame_rate,
    );
    let full = NappeDelays::full(&spec).tile();
    let nappes: Vec<usize> = (0..spec.volume_grid.n_depth()).collect();
    let tablefree = TableFreeEngine::new(
        &spec,
        TableFreeConfig {
            exact_transmit: true,
            ..TableFreeConfig::paper()
        },
    )
    .unwrap();
    assert_fill_nappe_bit_exact(&tablefree, &spec, full, &nappes);
    let tablesteer = TableSteerEngine::new(&spec, TableSteerConfig::bits14()).unwrap();
    assert_fill_nappe_bit_exact(&tablesteer, &spec, full, &nappes);
}

/// The PR 5 batched-quantization contract: every engine's `quantize_row`
/// (specialized or default) writes exactly `delay_index_from(row[i])`
/// for every entry of a slab row.
#[test]
fn quantize_row_matches_per_element_delay_index_from_for_every_engine() {
    let spec = SystemSpec::tiny();
    let exact = ExactEngine::new(&spec);
    let naive = NaiveTableEngine::build(&spec, u64::MAX).unwrap();
    let tablefree = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
    let tablesteer = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
    let engines: [&dyn DelayEngine; 4] = [&exact, &naive, &tablefree, &tablesteer];
    for engine in engines {
        let mut slab = NappeDelays::full(&spec);
        let mut out = vec![0i32; slab.n_elements()];
        for id in [
            0,
            spec.volume_grid.n_depth() / 2,
            spec.volume_grid.n_depth() - 1,
        ] {
            engine.fill_nappe(id, &mut slab);
            for slot in 0..slab.scanline_count() {
                let row = slab.row(slot).to_vec();
                engine.quantize_row(&row, &mut out);
                for (j, (&s, &o)) in row.iter().zip(&out).enumerate() {
                    assert_eq!(
                        i64::from(o),
                        engine.delay_index_from(s),
                        "{}: nappe {id} slot {slot} element {j} ({s})",
                        engine.name()
                    );
                }
            }
        }
    }
}

/// Synthetic out-of-window rows: the batched quantization must round,
/// clamp *and count* exactly like the per-element path, including the
/// half-up tie, NaN/±∞ saturation and both window edges.
#[test]
fn quantize_row_clamps_and_counts_like_the_scalar_rounding_stage() {
    let spec = SystemSpec::tiny();
    let len = spec.echo_buffer_len() as f64;
    let row = [
        -1.0e12,
        -1.5,
        -0.6,
        -0.5,
        -0.4999,
        0.0,
        0.49,
        0.5,
        len / 2.0,
        len - 1.0,
        len - 0.51,
        len - 0.5,
        len + 3.0,
        1.0e12,
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
    ];
    let exact = ExactEngine::new(&spec);
    let tablefree = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
    let engines: [&dyn DelayEngine; 2] = [&exact, &tablefree];
    for engine in engines {
        let mut out = vec![0i32; row.len()];
        engine.quantize_row(&row, &mut out);
        for (&s, &o) in row.iter().zip(&out) {
            assert_eq!(
                i64::from(o),
                engine.delay_index_from(s),
                "{} at {s}",
                engine.name()
            );
        }
    }
    // TABLESTEER additionally keeps clamp telemetry: the batched count
    // must advance by exactly what per-element delay_index_from calls
    // would have added (one per out-of-window entry).
    let batched = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
    let scalar = batched.clone(); // fresh zeroed counter
    let mut out = vec![0i32; row.len()];
    batched.quantize_row(&row, &mut out);
    for &s in &row {
        let _ = scalar.delay_index_from(s);
    }
    assert!(scalar.clamp_events() > 0, "rows must actually clamp");
    assert_eq!(batched.clamp_events(), scalar.clamp_events());
    for (&s, &o) in row.iter().zip(&out) {
        assert_eq!(
            i64::from(o),
            scalar.delay_index_from(s),
            "TABLESTEER at {s}"
        );
    }
}

#[test]
fn reduced_geometry_selection_errors_match_paper_regime() {
    // The E3 experiment at reduced scale: TABLEFREE mean selection error
    // in the ~0.25 regime, max ≤ 2.
    let spec = SystemSpec::reduced();
    let exact = ExactEngine::new(&spec);
    let tablefree = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
    let s = stats::selection_error(&tablefree, &exact, &spec, 97, 7);
    assert!(s.max_abs <= 2, "max = {}", s.max_abs);
    assert!(
        s.mean_abs > 0.1 && s.mean_abs < 0.4,
        "mean = {}",
        s.mean_abs
    );
}
