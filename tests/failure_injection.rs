//! Failure injection: the library fails loudly and predictably at its
//! documented limits.

use usbf::core::{
    DelayEngine, EngineError, NaiveTableEngine, TableFreeConfig, TableFreeEngine, TableSteerConfig,
    TableSteerEngine,
};
use usbf::fixed::{Fixed, FixedError, QFormat, RoundingMode};
use usbf::geometry::{SystemSpec, TransducerSpec, VolumeSpec, VoxelIndex};
use usbf::pwl::{PwlApprox, PwlError, SqrtFn, TrackingEvaluator};

#[test]
fn naive_engine_rejects_paper_scale() {
    let err = NaiveTableEngine::build(&SystemSpec::paper(), 64 << 30).unwrap_err();
    match err {
        EngineError::TableTooLarge { required_bytes, .. } => {
            assert!(required_bytes > 300e9 as u64);
        }
        other => panic!("expected TableTooLarge, got {other:?}"),
    }
}

#[test]
fn tablesteer_rejects_formats_too_narrow_for_the_geometry() {
    // 8 integer bits cannot hold ~8000-sample delays.
    let spec = SystemSpec::tiny();
    let cfg = TableSteerConfig {
        reference_format: QFormat::unsigned(8, 5),
        correction_format: QFormat::CORR_18,
    };
    let err = TableSteerEngine::new(&spec, cfg).unwrap_err();
    assert!(
        matches!(err, EngineError::Fixed(FixedError::Overflow { .. })),
        "{err:?}"
    );
}

#[test]
fn tablefree_rejects_nonsense_delta() {
    let spec = SystemSpec::tiny();
    let err = TableFreeEngine::new(&spec, TableFreeConfig::with_delta(0.0)).unwrap_err();
    assert!(
        matches!(err, EngineError::Pwl(PwlError::InvalidDelta(_))),
        "{err:?}"
    );
}

#[test]
fn tracking_budget_violation_is_reported_not_hidden() {
    let table = PwlApprox::build(&SqrtFn, (16.0, 1e6), 0.25).unwrap();
    let mut tracker = TrackingEvaluator::new(&table).with_max_step(1);
    tracker.eval(20.0).unwrap();
    let err = tracker.eval(9.9e5).unwrap_err();
    assert!(err.allowed == 1 && err.to > err.from);
    // The tracker recovers: the pointer landed on the right segment.
    assert!(tracker.eval(9.9e5).is_ok());
}

#[test]
fn delay_indices_clamp_into_echo_window() {
    // Even at the most extreme voxel × element combination, indices stay
    // inside the buffer — the clamp is observable via the counter.
    let base = SystemSpec::tiny();
    let wide = SystemSpec::new(
        base.speed_of_sound,
        base.sampling_frequency,
        TransducerSpec {
            nx: 100,
            ny: 100,
            ..base.transducer.clone()
        },
        VolumeSpec {
            n_depth: 8,
            ..base.volume.clone()
        },
        base.origin,
        base.frame_rate,
    );
    let eng = TableSteerEngine::new(&wide, TableSteerConfig::bits18()).unwrap();
    let v = &wide.volume_grid;
    let mut max_idx = 0i64;
    for e in wide.elements.iter() {
        let idx = eng.delay_index(VoxelIndex::new(0, 0, v.n_depth() - 1), e);
        assert!(idx >= 0 && (idx as usize) < wide.echo_buffer_len());
        max_idx = max_idx.max(idx);
    }
    assert_eq!(
        max_idx as usize,
        wide.echo_buffer_len() - 1,
        "clamp hit the rail"
    );
    assert!(eng.clamp_events() > 0);
}

#[test]
fn fixed_point_saturation_is_deterministic_at_the_rails() {
    let fmt = QFormat::REF_18;
    let top = Fixed::saturating_from_f64(1e9, fmt, RoundingMode::Nearest);
    assert_eq!(top.to_f64(), fmt.max_value());
    let bottom = Fixed::saturating_from_f64(-1e9, fmt, RoundingMode::Nearest);
    assert_eq!(bottom.to_f64(), 0.0);
}

#[test]
fn spec_constructor_rejects_degenerate_geometry() {
    let base = SystemSpec::tiny();
    let r = std::panic::catch_unwind(|| {
        SystemSpec::new(
            base.speed_of_sound,
            base.sampling_frequency,
            TransducerSpec {
                nx: 0,
                ..base.transducer.clone()
            },
            base.volume.clone(),
            base.origin,
            base.frame_rate,
        )
    });
    assert!(r.is_err(), "zero-element probe must be rejected");
}
