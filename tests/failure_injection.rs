//! Failure injection: the library fails loudly and predictably at its
//! documented limits.

use std::sync::Arc;
use usbf::beamform::{
    Beamformer, FramePipeline, FrameRing, PipelineError, ShardConfig, ShardedRuntime, VolumeLoop,
};
use usbf::core::{
    DelayEngine, EngineError, ExactEngine, NaiveTableEngine, TableFreeConfig, TableFreeEngine,
    TableSteerConfig, TableSteerEngine,
};
use usbf::fixed::{Fixed, FixedError, QFormat, RoundingMode};
use usbf::geometry::{ElementIndex, SystemSpec, TransducerSpec, VolumeSpec, VoxelIndex};
use usbf::pwl::{PwlApprox, PwlError, SqrtFn, TrackingEvaluator};
use usbf::sim::{EchoSynthesizer, Phantom, Pulse, RfFrame};

#[test]
fn naive_engine_rejects_paper_scale() {
    let err = NaiveTableEngine::build(&SystemSpec::paper(), 64 << 30).unwrap_err();
    match err {
        EngineError::TableTooLarge { required_bytes, .. } => {
            assert!(required_bytes > 300e9 as u64);
        }
        other => panic!("expected TableTooLarge, got {other:?}"),
    }
}

#[test]
fn tablesteer_rejects_formats_too_narrow_for_the_geometry() {
    // 8 integer bits cannot hold ~8000-sample delays.
    let spec = SystemSpec::tiny();
    let cfg = TableSteerConfig {
        reference_format: QFormat::unsigned(8, 5),
        correction_format: QFormat::CORR_18,
    };
    let err = TableSteerEngine::new(&spec, cfg).unwrap_err();
    assert!(
        matches!(err, EngineError::Fixed(FixedError::Overflow { .. })),
        "{err:?}"
    );
}

#[test]
fn tablefree_rejects_nonsense_delta() {
    let spec = SystemSpec::tiny();
    let err = TableFreeEngine::new(&spec, TableFreeConfig::with_delta(0.0)).unwrap_err();
    assert!(
        matches!(err, EngineError::Pwl(PwlError::InvalidDelta(_))),
        "{err:?}"
    );
}

#[test]
fn tracking_budget_violation_is_reported_not_hidden() {
    let table = PwlApprox::build(&SqrtFn, (16.0, 1e6), 0.25).unwrap();
    let mut tracker = TrackingEvaluator::new(&table).with_max_step(1);
    tracker.eval(20.0).unwrap();
    let err = tracker.eval(9.9e5).unwrap_err();
    assert!(err.allowed == 1 && err.to > err.from);
    // The tracker recovers: the pointer landed on the right segment.
    assert!(tracker.eval(9.9e5).is_ok());
}

#[test]
fn delay_indices_clamp_into_echo_window() {
    // Even at the most extreme voxel × element combination, indices stay
    // inside the buffer — the clamp is observable via the counter.
    let base = SystemSpec::tiny();
    let wide = SystemSpec::new(
        base.speed_of_sound,
        base.sampling_frequency,
        TransducerSpec {
            nx: 100,
            ny: 100,
            ..base.transducer.clone()
        },
        VolumeSpec {
            n_depth: 8,
            ..base.volume.clone()
        },
        base.origin,
        base.frame_rate,
    );
    let eng = TableSteerEngine::new(&wide, TableSteerConfig::bits18()).unwrap();
    let v = &wide.volume_grid;
    let mut max_idx = 0i64;
    for e in wide.elements.iter() {
        let idx = eng.delay_index(VoxelIndex::new(0, 0, v.n_depth() - 1), e);
        assert!(idx >= 0 && (idx as usize) < wide.echo_buffer_len());
        max_idx = max_idx.max(idx);
    }
    assert_eq!(
        max_idx as usize,
        wide.echo_buffer_len() - 1,
        "clamp hit the rail"
    );
    assert!(eng.clamp_events() > 0);
}

#[test]
fn fixed_point_saturation_is_deterministic_at_the_rails() {
    let fmt = QFormat::REF_18;
    let top = Fixed::saturating_from_f64(1e9, fmt, RoundingMode::Nearest);
    assert_eq!(top.to_f64(), fmt.max_value());
    let bottom = Fixed::saturating_from_f64(-1e9, fmt, RoundingMode::Nearest);
    assert_eq!(bottom.to_f64(), 0.0);
}

/// An engine that can be armed to panic mid-frame — the injected fault
/// for the pipeline-recovery tests below.
struct FaultyEngine {
    inner: ExactEngine,
    armed: std::sync::atomic::AtomicBool,
}

impl FaultyEngine {
    fn new(spec: &SystemSpec) -> Self {
        FaultyEngine {
            inner: ExactEngine::new(spec),
            armed: std::sync::atomic::AtomicBool::new(false),
        }
    }

    fn arm(&self, on: bool) {
        self.armed.store(on, std::sync::atomic::Ordering::SeqCst);
    }
}

impl DelayEngine for FaultyEngine {
    fn name(&self) -> &'static str {
        "FAULTY"
    }
    fn delay_samples(&self, vox: VoxelIndex, e: ElementIndex) -> f64 {
        assert!(
            !self.armed.load(std::sync::atomic::Ordering::SeqCst),
            "injected delay fault"
        );
        self.inner.delay_samples(vox, e)
    }
    fn echo_buffer_len(&self) -> usize {
        self.inner.echo_buffer_len()
    }
}

fn point_frame(spec: &SystemSpec) -> RfFrame {
    let target = spec.volume_grid.position(VoxelIndex::new(4, 4, 8));
    EchoSynthesizer::new(spec).synthesize(&Phantom::point(target), &Pulse::from_spec(spec))
}

#[test]
fn pipelined_source_panic_is_a_clean_error_and_the_pipeline_recovers() {
    let spec = SystemSpec::tiny();
    let rf = point_frame(&spec);
    let engine = Arc::new(ExactEngine::new(&spec));
    let reference = VolumeLoop::new(Beamformer::new(&spec))
        .beamform(engine.as_ref(), &rf)
        .clone();
    // A source that panics while producing its second frame.
    let template = rf.clone();
    let mut produced = 0u32;
    let source = move |out: &mut RfFrame| {
        produced += 1;
        assert!(produced != 2, "injected source fault");
        out.copy_from(&template);
    };
    let mut pipe = FramePipeline::new(Beamformer::new(&spec), engine, source);
    assert_eq!(pipe.next_volume().expect("frame 1 is clean"), &reference);
    // Frame 2's acquisition panicked: the caller gets an error, not an
    // unwind and not a poisoned pipeline.
    match pipe.next_volume() {
        Err(PipelineError::Source(msg)) => {
            assert!(msg.contains("injected source fault"), "message: {msg}")
        }
        other => panic!("expected Source error, got {other:?}"),
    }
    // The same pipeline (same pool, same warm state, same source) keeps
    // producing bit-correct volumes afterwards.
    for _ in 0..3 {
        assert_eq!(pipe.next_volume().expect("recovered"), &reference);
    }
    assert_eq!(pipe.frames(), 4);
    assert_eq!(pipe.errors(), 1);
}

#[test]
fn pipelined_beamform_panic_is_a_clean_error_and_the_pool_survives() {
    let spec = SystemSpec::tiny();
    let rf = point_frame(&spec);
    let engine = Arc::new(FaultyEngine::new(&spec));
    let reference = VolumeLoop::new(Beamformer::new(&spec))
        .beamform(engine.as_ref(), &rf)
        .clone();
    let pool = Arc::new(usbf::par::ThreadPool::new(2));
    let schedule = usbf::core::NappeSchedule::fitted(&spec, 8);
    let mut pipe = FramePipeline::with_pool(
        Beamformer::new(&spec),
        Arc::clone(&engine) as Arc<dyn DelayEngine + Send + Sync>,
        FrameRing::new(vec![rf]),
        Arc::clone(&pool),
        &schedule,
    );
    assert_eq!(pipe.next_volume().expect("clean frame"), &reference);
    // The panic is delivered through the asynchronous ticket too: the
    // engine faults mid-flight, wait() reports it as a typed error.
    engine.arm(true);
    let ticket = pipe.submit().expect("acquisition is healthy");
    match ticket.wait() {
        Err(PipelineError::Beamform(msg)) => {
            assert!(msg.contains("injected delay fault"), "message: {msg}")
        }
        other => panic!("expected Beamform error, got {other:?}"),
    }
    engine.arm(false);
    // The pipeline's pool and warm state beamform the next frames
    // correctly — and the shared pool itself still serves other work.
    for _ in 0..3 {
        assert_eq!(pipe.next_volume().expect("recovered"), &reference);
    }
    let items: Vec<usize> = (0..32).collect();
    assert_eq!(
        pool.par_map_indexed(&items, |_, &x| x + 1),
        (1..=32).collect::<Vec<_>>()
    );
}

#[test]
fn sharded_engine_panic_never_poisons_sibling_shards() {
    let spec = SystemSpec::tiny();
    let rf = point_frame(&spec);
    let faulty = Arc::new(FaultyEngine::new(&spec));
    let healthy: Arc<dyn DelayEngine + Send + Sync> = Arc::new(ExactEngine::new(&spec));
    let reference = VolumeLoop::new(Beamformer::new(&spec))
        .beamform(healthy.as_ref(), &rf)
        .clone();
    let faulty_reference = VolumeLoop::new(Beamformer::new(&spec))
        .beamform(faulty.as_ref(), &rf)
        .clone();
    let pool = Arc::new(usbf::par::ThreadPool::new(2));
    let mut rt = ShardedRuntime::new(
        pool,
        vec![
            ShardConfig::new(
                Beamformer::new(&spec),
                Arc::clone(&faulty) as Arc<dyn DelayEngine + Send + Sync>,
                FrameRing::new(vec![rf.clone()]),
            ),
            ShardConfig::new(
                Beamformer::new(&spec),
                Arc::clone(&healthy),
                FrameRing::new(vec![rf.clone()]),
            ),
        ],
    );
    assert!(rt.round().iter().all(|o| o.is_ok()), "clean warm-up round");
    faulty.arm(true);
    let outcomes = rt.round();
    match outcomes[0].error() {
        Some(PipelineError::Beamform(msg)) => {
            assert!(msg.contains("injected delay fault"), "message: {msg}")
        }
        other => panic!("expected shard 0 Beamform error, got {other:?}"),
    }
    // The sibling's frame of the same round is untouched — the shared
    // pool contained the panic to shard 0's tasks.
    assert!(outcomes[1].is_ok(), "sibling shard must stay healthy");
    assert_eq!(rt.volume(1), Some(&reference));
    faulty.arm(false);
    // Both shards recover on the same pool; counters attribute the lost
    // frame to the faulty shard only.
    assert!(rt.round().iter().all(|o| o.is_ok()), "recovery round");
    assert_eq!(rt.volume(0), Some(&faulty_reference));
    assert_eq!(rt.shard(0).errors(), 1);
    assert_eq!(rt.shard(1).errors(), 0);
    assert_eq!(rt.frame_counts(), vec![2, 3]);
}

#[test]
fn volume_loop_rethrows_engine_panics_and_stays_warm() {
    let spec = SystemSpec::tiny();
    let rf = point_frame(&spec);
    let engine = FaultyEngine::new(&spec);
    let mut rt = VolumeLoop::new(Beamformer::new(&spec));
    let clean = rt.beamform(&engine, &rf).clone();
    engine.arm(true);
    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.beamform(&engine, &rf);
    }));
    assert!(unwound.is_err(), "the loop must rethrow the task panic");
    engine.arm(false);
    assert_eq!(rt.beamform(&engine, &rf), &clean, "warm state survived");
}

#[test]
fn spec_constructor_rejects_degenerate_geometry() {
    let base = SystemSpec::tiny();
    let r = std::panic::catch_unwind(|| {
        SystemSpec::new(
            base.speed_of_sound,
            base.sampling_frequency,
            TransducerSpec {
                nx: 0,
                ..base.transducer.clone()
            },
            base.volume.clone(),
            base.origin,
            base.frame_rate,
        )
    });
    assert!(r.is_err(), "zero-element probe must be rejected");
}
