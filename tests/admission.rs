//! Admission control and backpressure semantics of the elastic
//! [`ShardedRuntime`]: budgets reject attaches with typed errors,
//! in-flight windows defer fairly without consuming frames, and
//! capacity freed by detach is immediately re-admissible.
//!
//! The crate-level unit tests pin the basic shapes; this tier drives
//! the same machinery through heterogeneous probes (different voxel
//! counts) and across budget changes at runtime.

mod shard_test_harness;

use shard_test_harness::{shard_plans, small_spec};
use std::sync::Arc;
use usbf::beamform::{AdmissionError, RuntimeBudget, ShardedRuntime};
use usbf::geometry::SystemSpec;
use usbf::par::ThreadPool;

#[test]
fn voxel_budget_accounts_for_heterogeneous_probes() {
    // tiny and small have different voxel counts; the throughput budget
    // must sum actual per-probe offers, not a per-shard flat rate.
    let tiny_voxels = SystemSpec::tiny().volume_grid.voxel_count() as u64;
    let small_voxels = small_spec().volume_grid.voxel_count() as u64;
    assert_ne!(tiny_voxels, small_voxels, "fixture probes must differ");

    // Plans cycle tiny/EXACT, tiny/TABLESTEER, small/TABLEFREE.
    let plans = shard_plans(3, 0);
    let pool = Arc::new(ThreadPool::new(2));
    let mut rt = ShardedRuntime::with_budget(
        Arc::clone(&pool),
        RuntimeBudget {
            max_live_shards: usize::MAX,
            max_in_flight: usize::MAX,
            max_round_voxels: Some(2 * tiny_voxels + small_voxels),
        },
    );
    let a = rt.attach_shard(plans[0].config()).expect("tiny fits");
    let _b = rt.attach_shard(plans[1].config()).expect("tiny fits");
    let _c = rt.attach_shard(plans[2].config()).expect("small fits");
    assert_eq!(rt.offered_voxels(), 2 * tiny_voxels + small_voxels);

    // The budget is exactly consumed: one more tiny probe is over.
    let err = rt.attach_shard(plans[0].config()).unwrap_err();
    assert_eq!(
        err,
        AdmissionError::ThroughputLimit {
            offered_voxels: 3 * tiny_voxels + small_voxels,
            budget_voxels: 2 * tiny_voxels + small_voxels,
        }
    );

    // Detaching a tiny shard frees exactly its share; a tiny probe then
    // fits again but a small one may not.
    rt.detach_shard(a).expect("live shard");
    assert_eq!(rt.offered_voxels(), tiny_voxels + small_voxels);
    let a2 = rt.attach_shard(plans[0].config()).expect("freed capacity");
    assert_ne!(a2, a, "recycled slot must carry a fresh identity");
    assert!(rt.round().iter().all(|o| o.is_ok()));
}

#[test]
fn deferred_shards_consume_no_frames_and_rotate_back_in() {
    let plans = shard_plans(4, 0x00AD_A175_1070);
    let pool = Arc::new(ThreadPool::new(2));
    let mut rt = ShardedRuntime::with_budget(
        Arc::clone(&pool),
        RuntimeBudget {
            max_live_shards: 4,
            max_in_flight: 3,
            max_round_voxels: None,
        },
    );
    let ids: Vec<_> = plans
        .iter()
        .map(|p| rt.attach_shard(p.config()).expect("under budget"))
        .collect();

    // 4 shards, window 3: every round defers exactly one shard, and the
    // rotation spreads the deferrals evenly — after 4 rounds each shard
    // has exactly 3 frames.
    for round in 0..8 {
        let outcomes = rt.round();
        assert_eq!(outcomes.len(), 4);
        assert_eq!(
            outcomes.iter().filter(|o| o.is_completed()).count(),
            3,
            "round {round}"
        );
        let deferred: Vec<_> = outcomes
            .iter()
            .filter(|o| o.is_deferred())
            .map(|o| o.shard_id())
            .collect();
        assert_eq!(deferred.len(), 1, "round {round}");
        // A deferred shard is healthy — is_ok, no error, no frame burned.
        let d = rt.stats_of(deferred[0]).expect("live");
        assert_eq!(d.errors, 0);
    }
    let counts: Vec<u64> = ids
        .iter()
        .map(|id| rt.stats_of(*id).expect("live").frames)
        .collect();
    assert_eq!(
        counts,
        vec![6, 6, 6, 6],
        "8 rounds × window 3 over 4 shards must split exactly evenly"
    );
    // Deferral never skipped ring frames: each shard's next volume is
    // still its ring position `frames % len`, proven by bit-identity.
    for (id, plan) in ids.iter().zip(&plans) {
        let baselines = plan.serial_baselines();
        let frames = rt.stats_of(*id).expect("live").frames as usize;
        assert_eq!(
            rt.volume_of(*id),
            Some(&baselines[(frames - 1) % baselines.len()]),
            "{}",
            plan.name
        );
    }

    // Loosening the budget at runtime lifts the window immediately.
    rt.set_budget(RuntimeBudget::unlimited());
    let outcomes = rt.round();
    assert!(outcomes.iter().all(|o| o.is_completed()));
}

#[test]
fn tightened_budget_defers_but_never_evicts() {
    let plans = shard_plans(3, 0xBADB_EEF0);
    let pool = Arc::new(ThreadPool::new(2));
    let mut rt = ShardedRuntime::new(
        Arc::clone(&pool),
        plans.iter().map(|p| p.config()).collect(),
    );
    assert!(rt.round().iter().all(|o| o.is_completed()));

    // Tighten to a single in-flight frame: live shards stay attached
    // (no eviction), progress degrades to one frame per round, and
    // every shard still advances — the rotation guarantees liveness.
    rt.set_budget(RuntimeBudget {
        max_live_shards: 3,
        max_in_flight: 1,
        max_round_voxels: None,
    });
    for _ in 0..6 {
        let outcomes = rt.round();
        assert_eq!(outcomes.iter().filter(|o| o.is_completed()).count(), 1);
        assert_eq!(outcomes.iter().filter(|o| o.is_deferred()).count(), 2);
        assert_eq!(rt.n_shards(), 3, "tightening must never evict");
    }
    assert_eq!(
        rt.frame_counts(),
        vec![3, 3, 3],
        "1 warm round + 6 single-admission rounds rotate evenly"
    );
}
