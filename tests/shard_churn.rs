//! Churn soak for the elastic sharded runtime: a fleet that grows to 64
//! heterogeneous shards and shrinks back under seeded random
//! attach/detach, with sibling shards streaming throughout.
//!
//! What it pins down, in one `#[test]` (the binary carries a counting
//! global allocator, so no concurrent test may pollute the counter):
//!
//! * **bit-exactness under churn** — every live shard's every volume
//!   equals its serial `VolumeLoop` baseline, bit for bit, no matter
//!   how many siblings attached or detached around it;
//! * **fair progress** — within every epoch, shards that stay live gain
//!   frames within a skew of ≤ 2 of each other (observed: 0 — `round`
//!   advances every admitted shard exactly once);
//! * **zero warm-path allocations** — once every live shard is warm,
//!   steady rounds of the full fleet perform **zero** heap allocations,
//!   churn or not in the epochs around them;
//! * **mid-flight detach safety** — detaching a shard while another
//!   pipeline's tiles are in flight on the shared pool never deadlocks,
//!   never leaks a claim, and never perturbs the in-flight volume;
//! * **typed backpressure** — attaching past the budget's shard cap is
//!   rejected with `AdmissionError::ShardLimit`, not queued;
//! * **honest telemetry** — every shard's latency histogram counts
//!   exactly its completed frames and reports a non-degenerate
//!   p50 ≤ p99; the fleet merge preserves totals.
//!
//! Scale knobs (reduced in CI's determinism matrix): `USBF_CHURN_SHARDS`
//! (peak fleet, default 64), `USBF_CHURN_EPOCHS` (default 8),
//! `USBF_CHURN_ROUNDS` (rounds per epoch, default 5), `USBF_CHURN_SEED`,
//! and `USBF_POOL_THREADS` for the pool width.

mod shard_test_harness;

use shard_test_harness::{shard_plans, Rng, ShardPlan};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use usbf::beamform::{
    AdmissionError, BeamformedVolume, Beamformer, FramePipeline, FrameRing, RuntimeBudget, ShardId,
    ShardedRuntime,
};
use usbf::core::NappeSchedule;
use usbf::par::ThreadPool;

struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// One attached session: which recipe it runs and the id naming it.
struct Live {
    plan: usize,
    id: ShardId,
}

#[test]
fn churning_fleet_stays_bit_identical_fair_and_allocation_free() {
    let peak = env_or("USBF_CHURN_SHARDS", 64).max(4);
    let epochs = env_or("USBF_CHURN_EPOCHS", 8).max(2);
    let rounds = env_or("USBF_CHURN_ROUNDS", 5).max(3);
    let workers = env_or("USBF_POOL_THREADS", 4).max(1);
    let seed = env_or("USBF_CHURN_SEED", 0x0C0A_57A1) as u64;
    let mut rng = Rng(seed);

    // The full cast and their serial baselines, computed once up front.
    let plans = shard_plans(peak, seed);
    let baselines: Vec<Vec<BeamformedVolume>> =
        plans.iter().map(ShardPlan::serial_baselines).collect();

    let pool = Arc::new(ThreadPool::new(workers));
    let mut rt = ShardedRuntime::with_budget(
        Arc::clone(&pool),
        RuntimeBudget {
            max_live_shards: peak,
            max_in_flight: usize::MAX,
            max_round_voxels: None,
        },
    );

    // A standalone pipeline on the same pool, used to hold a frame
    // in flight across a detach (the runtime's own tickets borrow the
    // runtime, so a sibling *outside* it exercises detach-while-busy).
    let witness_plan = &plans[0];
    let mut witness = FramePipeline::with_pool(
        Beamformer::new(&witness_plan.spec),
        Arc::clone(&witness_plan.engine),
        FrameRing::new(witness_plan.ring.clone()),
        Arc::clone(&pool),
        &NappeSchedule::fitted(&witness_plan.spec, workers * 2),
    );
    let mut witness_frames = 0usize;

    let mut live: Vec<Live> = Vec::with_capacity(peak);
    let mut outcomes = Vec::with_capacity(peak);
    let mut detached_sessions = 0u64;
    let mut detached_frames = 0u64;

    // Seed fleet: half the peak.
    for _ in 0..peak / 2 {
        let plan = rng.below(plans.len());
        let id = rt.attach_shard(plans[plan].config()).expect("under budget");
        live.push(Live { plan, id });
    }

    for epoch in 0..epochs {
        let churn_epoch = epoch % 2 == 1;
        if churn_epoch {
            // Detach a random subset (keep a couple alive), collecting
            // final stats; one detach happens while the witness has a
            // frame mid-flight on the shared pool.
            let ticket = witness.submit().expect("witness submit");
            let mut i = 0;
            let mut detached_this_epoch = false;
            while i < live.len() {
                if live.len() > 2 && rng.chance(30) {
                    let gone = live.swap_remove(i);
                    let stats = rt.detach_shard(gone.id).expect("live shard detaches");
                    assert_eq!(stats.errors, 0, "detached shard had errors");
                    assert_eq!(
                        stats.latency.count(),
                        stats.frames,
                        "latency histogram must count every completed frame"
                    );
                    assert!(
                        rt.detach_shard(gone.id).is_none(),
                        "stale id must be inert after detach"
                    );
                    detached_sessions += 1;
                    detached_frames += stats.frames;
                    detached_this_epoch = true;
                } else {
                    i += 1;
                }
            }
            assert!(detached_this_epoch || live.len() <= 2);
            // Redeem the in-flight frame: the detaches above must not
            // have deadlocked the pool or corrupted the claim state.
            ticket.wait().expect("witness frame survives detaches");
            witness_frames += 1;
            let expect = &baselines[0][(witness_frames - 1) % witness_plan.ring.len()];
            assert_eq!(
                witness.volume(),
                Some(expect),
                "mid-flight frame diverged across detach (epoch {epoch})"
            );

            // Attach replacements, sometimes all the way to the cap.
            let target = if rng.chance(25) {
                peak
            } else {
                (live.len() + 1 + rng.below(peak - 2)).min(peak)
            };
            while live.len() < target {
                let plan = rng.below(plans.len());
                let id = rt.attach_shard(plans[plan].config()).expect("under budget");
                live.push(Live { plan, id });
            }
            if live.len() == peak {
                // At the cap, admission must reject with the typed error.
                assert_eq!(
                    rt.attach_shard(plans[0].config()).unwrap_err(),
                    AdmissionError::ShardLimit {
                        live: peak,
                        max: peak
                    },
                    "attach past the cap must be a typed rejection"
                );
            }
        }
        assert_eq!(rt.n_shards(), live.len());

        // Frame counts at epoch start, for the fairness bound.
        let start_frames: Vec<u64> = live
            .iter()
            .map(|l| rt.stats_of(l.id).expect("live").frames)
            .collect();

        // Two warm rounds (fresh shards allocate their slabs/threads
        // here), then measured rounds that must allocate nothing.
        for r in 0..rounds {
            let measured = r >= 2;
            let before = ALLOCS.load(Ordering::SeqCst);
            rt.round_into(&mut outcomes);
            let delta = ALLOCS.load(Ordering::SeqCst) - before;
            assert!(
                outcomes.iter().all(|o| o.is_ok()),
                "epoch {epoch} round {r}: unhealthy outcome"
            );
            assert_eq!(outcomes.len(), live.len());
            if measured {
                assert_eq!(
                    delta,
                    0,
                    "epoch {epoch} round {r}: a warm churned round of {} shards \
                     allocated {delta} times — the warm path regressed",
                    live.len()
                );
            }
            // Bit-identity: every live shard against its own serial
            // baseline, every round.
            for l in &live {
                let frames = rt.stats_of(l.id).expect("live").frames;
                assert!(frames > 0);
                let ring = &baselines[l.plan];
                let expect = &ring[(frames as usize - 1) % ring.len()];
                assert_eq!(
                    rt.volume_of(l.id),
                    Some(expect),
                    "{} (shard {}) diverged at epoch {epoch} round {r}",
                    plans[l.plan].name,
                    l.id
                );
            }
        }

        // Fairness: every shard that was live for the whole epoch gained
        // the same number of frames, within the documented skew bound.
        let gained: Vec<u64> = live
            .iter()
            .zip(&start_frames)
            .map(|(l, start)| rt.stats_of(l.id).expect("live").frames - start)
            .collect();
        let max = *gained.iter().max().unwrap();
        let min = *gained.iter().min().unwrap();
        assert!(
            max - min <= 2,
            "epoch {epoch}: unfair progress among continuously-live shards: \
             gained {gained:?}"
        );
        assert_eq!(max as usize, rounds, "lock-step rounds gain one frame each");
    }

    // Telemetry is honest fleet-wide: the merged histogram preserves
    // totals, and every shard's own histogram is non-degenerate.
    let fleet = rt.fleet_latency();
    let mut sum = 0u64;
    for l in &live {
        let stats = rt.stats_of(l.id).expect("live");
        assert_eq!(stats.errors, 0, "{}", plans[l.plan].name);
        assert_eq!(stats.abandoned, 0, "{}", plans[l.plan].name);
        assert_eq!(stats.latency.count(), stats.frames);
        assert!(stats.frames > 0);
        let (p50, p99) = (stats.latency.p50(), stats.latency.p99());
        assert!(
            std::time::Duration::ZERO < p50 && p50 <= p99,
            "{}: degenerate latency profile p50={p50:?} p99={p99:?}",
            plans[l.plan].name
        );
        assert!(!stats.latency.saturated(), "{}", plans[l.plan].name);
        sum += stats.frames;
    }
    assert_eq!(fleet.count(), sum, "fleet merge must preserve totals");
    eprintln!(
        "CHURN_SOAK peak={peak} workers={workers} epochs={epochs} \
         live_end={} detached={detached_sessions} frames_live={sum} \
         frames_detached={detached_frames} steals={} fleet_p50={:?} fleet_p99={:?}",
        live.len(),
        pool.steal_count(),
        fleet.p50(),
        fleet.p99(),
    );

    // Drain the fleet completely; the shared pool must keep serving.
    for l in live.drain(..) {
        rt.detach_shard(l.id).expect("final detach");
    }
    assert_eq!(rt.n_shards(), 0);
    assert_eq!(rt.fleet_latency().count(), 0);
    let items: Vec<usize> = (0..64).collect();
    assert_eq!(
        pool.par_map_indexed(&items, |_, &x| x * 2),
        items.iter().map(|x| x * 2).collect::<Vec<_>>()
    );
}
