//! End-to-end integration: synthetic echoes → delay engines → delay-and-
//! sum → image metrics.

use usbf::beamform::{Apodization, Beamformer, Interpolation};
use usbf::core::{
    DelayEngine, ExactEngine, TableFreeConfig, TableFreeEngine, TableSteerConfig, TableSteerEngine,
};
use usbf::geometry::scan::ScanOrder;
use usbf::geometry::{SystemSpec, VoxelIndex};
use usbf::sim::{metrics, EchoOptions, EchoSynthesizer, Phantom, Pulse};

fn point_setup(spec: &SystemSpec, vox: VoxelIndex) -> usbf::sim::RfFrame {
    let target = spec.volume_grid.position(vox);
    EchoSynthesizer::new(spec).synthesize(&Phantom::point(target), &Pulse::from_spec(spec))
}

#[test]
fn every_engine_focuses_the_point_on_its_voxel() {
    let spec = SystemSpec::tiny();
    let vox = VoxelIndex::new(5, 2, 9);
    let rf = point_setup(&spec, vox);
    let bf = Beamformer::new(&spec);
    let exact = ExactEngine::new(&spec);
    let tablefree = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
    let tablesteer = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
    for eng in [&exact as &dyn DelayEngine, &tablefree, &tablesteer] {
        let vol = bf.beamform_volume(eng, &rf);
        assert_eq!(vol.argmax(), vox, "{} failed to focus", eng.name());
    }
}

#[test]
fn approximate_engines_preserve_most_of_the_peak() {
    let spec = SystemSpec::tiny();
    let vox = VoxelIndex::new(4, 4, 8);
    let rf = point_setup(&spec, vox);
    let bf = Beamformer::new(&spec).with_apodization(Apodization::Rect);
    let exact_peak = bf.beamform_voxel(&ExactEngine::new(&spec), &rf, vox).abs();
    let tf = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
    let ts = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
    for (name, eng) in [("TABLEFREE", &tf as &dyn DelayEngine), ("TABLESTEER", &ts)] {
        let peak = bf.beamform_voxel(eng, &rf, vox).abs();
        assert!(
            peak > 0.85 * exact_peak,
            "{name} peak ratio {}",
            peak / exact_peak
        );
    }
}

#[test]
fn scan_order_equivalence_through_all_engines() {
    // Fig. 1: identical volumes regardless of traversal order, for every
    // engine (delays are deterministic functions of (S, D)).
    let spec = SystemSpec::tiny();
    let rf = point_setup(&spec, VoxelIndex::new(3, 5, 7));
    let exact = ExactEngine::new(&spec);
    let tablesteer = TableSteerEngine::new(&spec, TableSteerConfig::bits14()).unwrap();
    for eng in [&exact as &dyn DelayEngine, &tablesteer] {
        let a = Beamformer::new(&spec)
            .with_order(ScanOrder::NappeByNappe)
            .beamform_volume(eng, &rf);
        let b = Beamformer::new(&spec)
            .with_order(ScanOrder::ScanlineByScanline)
            .beamform_volume(eng, &rf);
        assert_eq!(a, b, "{} volumes differ across orders", eng.name());
    }
}

#[test]
fn apodization_trades_peak_for_sidelobes() {
    // Needs an aperture wide enough for resolvable sidelobes (32 columns
    // → first sidelobe ≈5° off axis), a lateral grid fine enough to
    // sample them (65 θ lines over ±36.5°), and a narrowband (quasi-CW)
    // pulse so the array factor — not pulse decorrelation — shapes the
    // off-axis response; target exactly on the central line.
    let base = SystemSpec::tiny();
    let spec = SystemSpec::new(
        base.speed_of_sound,
        base.sampling_frequency,
        usbf::geometry::TransducerSpec {
            nx: 32,
            ny: 8,
            bandwidth: 0.4e6,
            ..base.transducer.clone()
        },
        usbf::geometry::VolumeSpec {
            n_theta: 65,
            n_phi: 9,
            ..base.volume.clone()
        },
        base.origin,
        base.frame_rate,
    );
    let vox = VoxelIndex::new(32, 4, 8);
    let rf = point_setup(&spec, vox);
    let exact = ExactEngine::new(&spec);
    let lateral = |apod: Apodization| -> Vec<f64> {
        let bf = Beamformer::new(&spec).with_apodization(apod);
        (0..65)
            .map(|it| bf.beamform_voxel(&exact, &rf, VoxelIndex::new(it, 4, 8)))
            .collect()
    };
    let lat_rect = lateral(Apodization::Rect);
    let lat_hann = lateral(Apodization::Hann);
    // Rect keeps more energy at the peak…
    assert!(lat_rect[32].abs() > lat_hann[32].abs());
    // …and Hann widens the main lobe…
    let fwhm_rect = metrics::fwhm(&lat_rect);
    let fwhm_hann = metrics::fwhm(&lat_hann);
    assert!(
        fwhm_hann > fwhm_rect,
        "hann {fwhm_hann} vs rect {fwhm_rect}"
    );
    // …while suppressing sidelobes outside each window's own main lobe.
    let psl_rect = metrics::peak_sidelobe_db(&lat_rect, fwhm_rect.ceil() as usize + 2);
    let psl_hann = metrics::peak_sidelobe_db(&lat_hann, fwhm_hann.ceil() as usize + 2);
    assert!(
        psl_hann < psl_rect,
        "hann PSL {psl_hann} should be below rect PSL {psl_rect}"
    );
}

#[test]
fn linear_interpolation_reduces_nrmse_for_tablesteer() {
    // The extension experiment: fractional-delay fetch removes the index-
    // rounding part of the error budget.
    let spec = SystemSpec::tiny();
    let vox = VoxelIndex::new(4, 4, 8);
    let rf = point_setup(&spec, vox);
    let exact = ExactEngine::new(&spec);
    let steer = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
    let exact_lin = Beamformer::new(&spec)
        .with_interpolation(Interpolation::Linear)
        .beamform_volume(&exact, &rf);
    let nearest = Beamformer::new(&spec)
        .with_interpolation(Interpolation::Nearest)
        .beamform_volume(&steer, &rf);
    let linear = Beamformer::new(&spec)
        .with_interpolation(Interpolation::Linear)
        .beamform_volume(&steer, &rf);
    let n_nearest = metrics::nrmse(exact_lin.as_slice(), nearest.as_slice());
    let n_linear = metrics::nrmse(exact_lin.as_slice(), linear.as_slice());
    assert!(
        n_linear < n_nearest,
        "linear {n_linear} should beat nearest {n_nearest}"
    );
}

#[test]
fn noisy_speckle_image_is_stable_across_engines() {
    let spec = SystemSpec::tiny();
    let phantom = Phantom::speckle(
        500,
        usbf::geometry::Vec3::new(-0.02, -0.02, 0.06),
        usbf::geometry::Vec3::new(0.02, 0.02, 0.12),
        99,
    );
    let rf = EchoSynthesizer::new(&spec)
        .with_options(EchoOptions {
            noise_rms: 0.05,
            seed: 1,
            ..EchoOptions::default()
        })
        .synthesize(&phantom, &Pulse::from_spec(&spec));
    let bf = Beamformer::new(&spec);
    let ve = bf.beamform_volume(&ExactEngine::new(&spec), &rf);
    let vs = bf.beamform_volume(
        &TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap(),
        &rf,
    );
    let nrmse = metrics::nrmse(ve.as_slice(), vs.as_slice());
    assert!(nrmse < 0.2, "nrmse = {nrmse}");
}
