//! Integration: the FPGA model's Table II shape, tied back to the live
//! engine implementations (storage sizes, block structure, accuracy).

use usbf::core::{SteerBlockSpec, TableSteerConfig, TableSteerEngine};
use usbf::fpga::{map_tablefree, map_tablesteer, table2, CostModel, Device, SteerVariant};
use usbf::geometry::SystemSpec;
use usbf::tables::{StreamingPlan, TableBudget};

#[test]
fn table2_shape_holds() {
    // The qualitative conclusions of §VI-B, end to end:
    let spec = SystemSpec::paper();
    let dev = Device::virtex7_xc7vx1140t();
    let cost = CostModel::calibrated();
    let rows = table2(&spec, &dev, &cost);
    let (tf, ts14, ts18) = (&rows[0].mapping, &rows[1].mapping, &rows[2].mapping);

    // 1. TABLESTEER fits the full 100×100 probe; TABLEFREE does not.
    assert_eq!(ts18.channels, (100, 100));
    assert!(tf.channels.0 < 100);
    // 2. TABLEFREE uses no BRAM and no off-chip bandwidth.
    assert_eq!(tf.bram36, 0);
    assert_eq!(tf.offchip_bytes_per_s, 0.0);
    // 3. TABLESTEER needs GB/s-class DRAM streaming.
    assert!(ts18.offchip_bytes_per_s > 4.0e9);
    assert!(ts14.offchip_bytes_per_s < ts18.offchip_bytes_per_s);
    // 4. TABLESTEER reaches ~real-time; TABLEFREE runs at half the clock
    //    and half the frame rate.
    assert!(ts18.frame_rate > 15.0);
    assert!(tf.frame_rate < 10.0);
    assert!(tf.clock_hz < ts18.clock_hz);
}

#[test]
fn engine_storage_matches_fpga_budget_at_paper_scale() {
    // The budget arithmetic used by the mapper equals what the actual
    // quantized engine stores (checked at reduced scale, where the engine
    // is buildable, by comparing against the same TableBudget formula).
    let spec = SystemSpec::reduced();
    let engine = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
    let (ref_bits, corr_bits) = engine.storage_bits();
    let budget = TableBudget::for_spec(&spec, 18, 18);
    assert_eq!(ref_bits, budget.reference_bits);
    assert_eq!(corr_bits, budget.correction_bits);
}

#[test]
fn block_spec_feeds_mapper_consistently() {
    let spec = SystemSpec::paper();
    let dev = Device::virtex7_xc7vx1140t();
    let cost = CostModel::calibrated();
    let m = map_tablesteer(&spec, &dev, &cost, SteerVariant::Bits18);
    let block = SteerBlockSpec::paper();
    assert_eq!(
        m.throughput_delays_per_s,
        block.delays_per_second(cost.fmax_bram_path_hz)
    );
}

#[test]
fn streaming_plan_bandwidth_consistent_with_mapping() {
    let spec = SystemSpec::paper();
    let budget = TableBudget::for_spec(&spec, 18, 18);
    let plan = StreamingPlan::paper();
    let bw = plan.dram_bandwidth_bytes(&budget, 960.0);
    let m = map_tablesteer(
        &spec,
        &Device::virtex7_xc7vx1140t(),
        &CostModel::calibrated(),
        SteerVariant::Bits18,
    );
    assert!((bw - m.offchip_bytes_per_s).abs() / bw < 1e-9);
}

#[test]
fn ultrascale_projection_improves_tablefree_only_capacity() {
    let spec = SystemSpec::paper();
    let cost = CostModel::calibrated();
    let v7 = Device::virtex7_xc7vx1140t();
    let us = Device::ultrascale_projection();
    let tf_v7 = map_tablefree(&spec, &v7, &cost);
    let tf_us = map_tablefree(&spec, &us, &cost);
    // Double LUTs → √2× channels per side (42 → ~59).
    assert!(tf_us.channels.0 > tf_v7.channels.0);
    let ratio = tf_us.channels.0 as f64 / tf_v7.channels.0 as f64;
    assert!(
        (ratio - std::f64::consts::SQRT_2).abs() < 0.05,
        "ratio = {ratio}"
    );
    // Frame rate is clock-bound, not capacity-bound: unchanged.
    assert_eq!(tf_us.frame_rate, tf_v7.frame_rate);
}

#[test]
fn smaller_probes_fit_tablefree_fully() {
    // The reduced 32×32 spec needs 1024 units — comfortably below the
    // ~1766 that fit: TABLEFREE supports it outright.
    let spec = SystemSpec::reduced();
    let m = map_tablefree(
        &spec,
        &Device::virtex7_xc7vx1140t(),
        &CostModel::calibrated(),
    );
    assert!(m.channels.0 * m.channels.1 >= spec.elements.count());
}
