//! Soak test for the multi-probe sharded runtime: a heterogeneous fleet
//! (different probes, specs and delay engines) multiplexed on one pool
//! for hundreds of frames, at several pool sizes and fleet sizes.
//!
//! What it pins down, per (pool size, fleet size) combination:
//!
//! * **bit-exactness under multiplexing** — every shard's every volume
//!   equals the serial per-shard baseline (`VolumeLoop` over the same
//!   ring of frames), bit for bit, for the whole soak; interleaving
//!   many pipelines' tile tasks on shared workers must never leak into
//!   results;
//! * **fair progress** — shards advance in lock-step rounds, so no
//!   shard may lag more than 2 frames behind the leader at any
//!   checkpoint (with `ShardedRuntime::round` the observed gap is 0;
//!   the bound leaves room for a driver that redeems out of order);
//! * **health** — no errors, no abandoned frames, per-shard counters
//!   consistent, stats monotonic, per-shard latency histograms counting
//!   every frame.
//!
//! The shard recipes and serial baselines come from the shared
//! `shard_test_harness` module, the same fixtures the churn and
//! admission tiers build on.

mod shard_test_harness;

use shard_test_harness::{shard_plans, ShardPlan};
use std::sync::Arc;
use usbf::beamform::{BeamformedVolume, ShardedRuntime};
use usbf::par::ThreadPool;

/// Soaked rounds per (pool size, fleet size) combination, sized so the
/// classic 3-shard soak still clears the test layer's 500-frame floor
/// per shard on every pool size.
const FRAMES: usize = 500;

/// Progress checkpoints: fairness is asserted every this many rounds.
const CHECK_EVERY: usize = 50;

/// One soak: `n_shards` heterogeneous shards on a `workers`-wide pool
/// for `rounds` rounds, every volume checked against its serial
/// baseline.
fn soak(plans: &[ShardPlan], workers: usize, rounds: usize) {
    let baselines: Vec<Vec<BeamformedVolume>> =
        plans.iter().map(ShardPlan::serial_baselines).collect();
    let ring_lens: Vec<usize> = plans.iter().map(|p| p.ring.len()).collect();

    let pool = Arc::new(ThreadPool::new(workers));
    let configs = plans.iter().map(ShardPlan::config).collect();
    let mut rt = ShardedRuntime::new(pool, configs);
    let mut outcomes = Vec::new();

    for round in 0..rounds {
        rt.round_into(&mut outcomes);
        for (shard, outcome) in outcomes.iter().enumerate() {
            assert!(
                outcome.is_ok(),
                "{} round {round} with {workers} worker(s): {outcome:?}",
                plans[shard].name
            );
            let expect = &baselines[shard][round % ring_lens[shard]];
            assert_eq!(
                rt.volume(shard).expect("completed frame"),
                expect,
                "{} diverged from its serial baseline at round {round} \
                 with {workers} worker(s)",
                plans[shard].name
            );
        }
        if round % CHECK_EVERY == CHECK_EVERY - 1 {
            let counts = rt.frame_counts();
            let leader = *counts.iter().max().unwrap();
            let laggard = *counts.iter().min().unwrap();
            assert!(
                leader - laggard <= 2,
                "unfair progress at round {round} with {workers} worker(s): {counts:?}"
            );
        }
    }

    let counts = rt.frame_counts();
    assert_eq!(
        counts,
        vec![rounds as u64; plans.len()],
        "every shard completes every frame ({workers} workers)"
    );
    for (shard, plan) in plans.iter().enumerate() {
        let stats = rt.stats(shard);
        assert_eq!(stats.frames, rounds as u64, "{}", plan.name);
        assert_eq!(stats.errors, 0, "{}", plan.name);
        assert_eq!(stats.abandoned, 0, "{}", plan.name);
        assert!(stats.frames_per_second() > 0.0);
        assert_eq!(
            stats.latency.count(),
            rounds as u64,
            "{}: every completed frame must be recorded in the latency \
             histogram",
            plan.name
        );
        assert!(stats.latency.p99() >= stats.latency.p50(), "{}", plan.name);
    }
}

#[test]
fn three_heterogeneous_shards_soak_bit_identical_at_every_pool_size() {
    // The historical fixed cast: seed 0 reproduces the exact probes,
    // engines and target rings this soak has always used.
    let plans = shard_plans(3, 0);
    for workers in [1usize, 2, 4] {
        soak(&plans, workers, FRAMES);
    }
}

#[test]
fn wider_fleets_soak_bit_identical() {
    // Fleet sizes above the worker count (6 shards / 4 workers) and far
    // above it (10 / 2): tile claims from many shards contend for few
    // workers, the regime the work-stealing arena exists for. Shorter
    // soaks — the 3-shard test above owns the long-haul budget.
    for (n_shards, workers, rounds) in [(6usize, 4usize, 120usize), (10, 2, 60)] {
        let plans = shard_plans(n_shards, 0xFEED_FACE ^ n_shards as u64);
        soak(&plans, workers, rounds);
    }
}
