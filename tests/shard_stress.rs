//! Soak test for the multi-probe sharded runtime: three heterogeneous
//! shards (different probes, specs and delay engines) multiplexed on
//! one pool for hundreds of frames, at several pool sizes.
//!
//! What it pins down, per pool size (1, 2 and 4 workers):
//!
//! * **bit-exactness under multiplexing** — every shard's every volume
//!   equals the serial per-shard baseline (`VolumeLoop` over the same
//!   ring of frames), bit for bit, for the whole soak; interleaving
//!   three pipelines' tile tasks on shared workers must never leak into
//!   results;
//! * **fair progress** — shards advance in lock-step rounds, so no
//!   shard may lag more than 2 frames behind the leader at any
//!   checkpoint (with `ShardedRuntime::round` the observed gap is 0;
//!   the bound leaves room for a driver that redeems out of order);
//! * **health** — no errors, no abandoned frames, per-shard counters
//!   consistent, stats monotonic.

use std::sync::Arc;
use usbf::beamform::{
    BeamformedVolume, Beamformer, FrameRing, ShardConfig, ShardedRuntime, VolumeLoop,
};
use usbf::core::{
    DelayEngine, ExactEngine, TableFreeConfig, TableFreeEngine, TableSteerConfig, TableSteerEngine,
};
use usbf::geometry::{
    deg, SystemSpec, TransducerSpec, Vec3, VolumeSpec, VoxelIndex, SPEED_OF_SOUND,
};
use usbf::par::ThreadPool;
use usbf::sim::{EchoSynthesizer, Phantom, Pulse, RfFrame};

/// Soaked frames per shard per pool size. 3 shards × 3 pool sizes ×
/// `FRAMES` ≥ the test layer's 500-frame floor on every pool size.
const FRAMES: usize = 500;

/// Progress checkpoints: fairness is asserted every this many rounds.
const CHECK_EVERY: usize = 50;

/// A second probe geometry, distinct from `SystemSpec::tiny()`: fewer
/// elements, an asymmetric 4 × 8 fan and a shallower volume, so shard
/// heterogeneity covers element count, fan shape and depth at once.
fn small_spec() -> SystemSpec {
    let fc = 3.0e6;
    let lambda = SPEED_OF_SOUND / fc;
    SystemSpec::new(
        SPEED_OF_SOUND,
        24.0e6,
        TransducerSpec {
            center_frequency: fc,
            bandwidth: 3.0e6,
            nx: 6,
            ny: 6,
            pitch: lambda / 2.0,
        },
        VolumeSpec {
            theta_max: deg(30.0),
            phi_max: deg(30.0),
            depth_max: 300.0 * lambda,
            n_theta: 4,
            n_phi: 8,
            n_depth: 10,
        },
        Vec3::ZERO,
        20.0,
    )
}

/// One shard's recipe: spec + engine + a short ring of distinct frames.
struct ShardPlan {
    name: &'static str,
    spec: SystemSpec,
    engine: Arc<dyn DelayEngine + Send + Sync>,
    ring: Vec<RfFrame>,
}

fn shard_plans() -> Vec<ShardPlan> {
    let tiny = SystemSpec::tiny();
    let small = small_spec();
    let ring = |spec: &SystemSpec, seeds: &[(usize, usize, usize)]| -> Vec<RfFrame> {
        let synth = EchoSynthesizer::new(spec);
        let pulse = Pulse::from_spec(spec);
        seeds
            .iter()
            .map(|&(it, ip, id)| {
                let vox = VoxelIndex::new(it, ip, id);
                synth.synthesize(&Phantom::point(spec.volume_grid.position(vox)), &pulse)
            })
            .collect()
    };
    vec![
        ShardPlan {
            name: "tiny/EXACT",
            engine: Arc::new(ExactEngine::new(&tiny)),
            ring: ring(&tiny, &[(2, 3, 5), (5, 4, 9), (4, 4, 12)]),
            spec: tiny.clone(),
        },
        ShardPlan {
            name: "tiny/TABLESTEER",
            engine: Arc::new(TableSteerEngine::new(&tiny, TableSteerConfig::bits18()).unwrap()),
            ring: ring(&tiny, &[(1, 6, 7), (6, 1, 11)]),
            spec: tiny,
        },
        ShardPlan {
            name: "small/TABLEFREE",
            engine: Arc::new(TableFreeEngine::new(&small, TableFreeConfig::paper()).unwrap()),
            ring: ring(&small, &[(1, 2, 4), (2, 6, 7), (3, 1, 8)]),
            spec: small,
        },
    ]
}

/// The serial baseline: each ring frame through a lone `VolumeLoop` on
/// the shard's own spec and engine — no sharding, no multiplexing.
fn serial_baselines(plan: &ShardPlan) -> Vec<BeamformedVolume> {
    let mut serial = VolumeLoop::new(Beamformer::new(&plan.spec));
    plan.ring
        .iter()
        .map(|rf| serial.beamform(plan.engine.as_ref(), rf).clone())
        .collect()
}

#[test]
fn three_heterogeneous_shards_soak_bit_identical_at_every_pool_size() {
    let plans = shard_plans();
    let baselines: Vec<Vec<BeamformedVolume>> = plans.iter().map(serial_baselines).collect();
    let ring_lens: Vec<usize> = plans.iter().map(|p| p.ring.len()).collect();

    for workers in [1usize, 2, 4] {
        let pool = Arc::new(ThreadPool::new(workers));
        let configs = plans
            .iter()
            .map(|plan| {
                ShardConfig::new(
                    Beamformer::new(&plan.spec),
                    Arc::clone(&plan.engine),
                    FrameRing::new(plan.ring.clone()),
                )
            })
            .collect();
        let mut rt = ShardedRuntime::new(pool, configs);
        let mut outcomes = Vec::new();

        for round in 0..FRAMES {
            rt.round_into(&mut outcomes);
            for (shard, outcome) in outcomes.iter().enumerate() {
                assert!(
                    outcome.is_ok(),
                    "{} round {round} with {workers} worker(s): {outcome:?}",
                    plans[shard].name
                );
                let expect = &baselines[shard][round % ring_lens[shard]];
                assert_eq!(
                    rt.volume(shard).expect("completed frame"),
                    expect,
                    "{} diverged from its serial baseline at round {round} \
                     with {workers} worker(s)",
                    plans[shard].name
                );
            }
            if round % CHECK_EVERY == CHECK_EVERY - 1 {
                let counts = rt.frame_counts();
                let leader = *counts.iter().max().unwrap();
                let laggard = *counts.iter().min().unwrap();
                assert!(
                    leader - laggard <= 2,
                    "unfair progress at round {round} with {workers} worker(s): {counts:?}"
                );
            }
        }

        let counts = rt.frame_counts();
        assert_eq!(
            counts,
            vec![FRAMES as u64; plans.len()],
            "every shard completes every frame ({workers} workers)"
        );
        for (shard, plan) in plans.iter().enumerate() {
            let stats = rt.stats(shard);
            assert_eq!(stats.frames, FRAMES as u64, "{}", plan.name);
            assert_eq!(stats.errors, 0, "{}", plan.name);
            assert_eq!(stats.abandoned, 0, "{}", plan.name);
            assert!(stats.frames_per_second() > 0.0);
        }
    }
}
