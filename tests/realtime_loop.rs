//! Facade-level test of the real-time loop: the persistent pool +
//! `VolumeLoop` must reproduce the cold beamforming path bit-for-bit
//! across many frames, for both paper architectures.

use usbf::beamform::{Beamformer, VolumeLoop};
use usbf::core::{
    DelayEngine, NappeSchedule, TableFreeConfig, TableFreeEngine, TableSteerConfig,
    TableSteerEngine,
};
use usbf::geometry::{SystemSpec, VoxelIndex};
use usbf::sim::{EchoSynthesizer, Phantom, Pulse};

#[test]
fn volume_loop_matches_cold_path_for_both_paper_engines() {
    let spec = SystemSpec::tiny();
    let target = spec.volume_grid.position(VoxelIndex::new(3, 5, 9));
    let rf =
        EchoSynthesizer::new(&spec).synthesize(&Phantom::point(target), &Pulse::from_spec(&spec));
    let tablefree = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
    let tablesteer = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
    for engine in [&tablefree as &dyn DelayEngine, &tablesteer] {
        let cold = Beamformer::new(&spec).beamform_volume(engine, &rf);
        let mut rt = VolumeLoop::new(Beamformer::new(&spec));
        for frame in 0..20 {
            let warm = rt.beamform(engine, &rf);
            assert_eq!(warm, &cold, "{} frame {frame}", engine.name());
        }
        assert_eq!(rt.frames(), 20);
    }
}

#[test]
fn volume_loop_on_explicit_pool_survives_schedule_variety() {
    let spec = SystemSpec::tiny();
    let rf = usbf::sim::RfFrame::zeros(
        spec.elements.nx(),
        spec.elements.ny(),
        spec.echo_buffer_len(),
    );
    let engine = usbf::core::ExactEngine::new(&spec);
    let pool = std::sync::Arc::new(usbf::par::ThreadPool::new(2));
    for target_tiles in [1, 2, 8, 64] {
        let schedule = NappeSchedule::fitted(&spec, target_tiles);
        let mut rt = VolumeLoop::with_pool(
            Beamformer::new(&spec),
            std::sync::Arc::clone(&pool),
            &schedule,
        );
        let vol = rt.beamform(&engine, &rf);
        assert_eq!(vol.max_abs(), 0.0, "{target_tiles} tiles, empty RF");
    }
}
