//! Pool-size determinism: volumes must be **bit-identical** whatever the
//! worker count.
//!
//! The paper's architectures are deterministic hardware — the same
//! insonification always produces the same delays — so the host runtime
//! must not let scheduling leak into results: tile claims race, but each
//! tile's arithmetic and the sequential scatter are fixed, so
//! `VolumeLoop`, `FramePipeline` and `ShardedRuntime` outputs may not
//! depend on `USBF_POOL_THREADS`. CI runs the whole suite at three pool
//! sizes (see `.github/workflows/ci.yml`); this file additionally pins
//! the property inside one process by comparing explicit pools of 1, 2
//! and 4 workers (1 exercises the inline path, 2 and 4 the announced
//! paths).

mod shard_test_harness;

use shard_test_harness::shard_plans;
use std::sync::Arc;
use usbf::beamform::{
    Beamformer, BmodeConfig, FramePipeline, FrameRing, PostChain, RuntimeBudget, ShardConfig,
    ShardedRuntime, VolumeLoop,
};
use usbf::core::{
    DelayEngine, ExactEngine, NaiveTableEngine, NappeSchedule, TableFreeConfig, TableFreeEngine,
    TableSteerConfig, TableSteerEngine,
};
use usbf::geometry::scan::ScanOrder;
use usbf::geometry::{SystemSpec, VoxelIndex};
use usbf::par::ThreadPool;
use usbf::sim::{EchoSynthesizer, Phantom, Pulse, RfFrame};

const POOL_SIZES: [usize; 3] = [1, 2, 4];

fn recorded_frames(spec: &SystemSpec, n: usize) -> Vec<RfFrame> {
    let synth = EchoSynthesizer::new(spec);
    let pulse = Pulse::from_spec(spec);
    (0..n)
        .map(|i| {
            let vox = VoxelIndex::new(1 + i, 2 + i, 4 + 3 * i);
            synth.synthesize(&Phantom::point(spec.volume_grid.position(vox)), &pulse)
        })
        .collect()
}

#[test]
fn volume_loop_is_bit_identical_across_pool_sizes() {
    let spec = SystemSpec::tiny();
    let frames = recorded_frames(&spec, 2);
    let schedule = NappeSchedule::fitted(&spec, 8);
    let exact = ExactEngine::new(&spec);
    let tablefree = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
    let tablesteer = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
    for engine in [&exact as &dyn DelayEngine, &tablefree, &tablesteer] {
        let mut reference = None;
        for threads in POOL_SIZES {
            let pool = Arc::new(ThreadPool::new(threads));
            let mut rt = VolumeLoop::with_pool(Beamformer::new(&spec), pool, &schedule);
            let volumes: Vec<_> = frames
                .iter()
                .map(|rf| rt.beamform(engine, rf).clone())
                .collect();
            match &reference {
                None => reference = Some(volumes),
                Some(expect) => {
                    assert_eq!(
                        &volumes,
                        expect,
                        "{} with {} worker(s) diverged",
                        engine.name(),
                        threads
                    );
                }
            }
        }
    }
}

#[test]
fn frame_pipeline_is_bit_identical_across_pool_sizes() {
    let spec = SystemSpec::tiny();
    let frames = recorded_frames(&spec, 3);
    let schedule = NappeSchedule::fitted(&spec, 8);
    let engine: Arc<dyn DelayEngine + Send + Sync> =
        Arc::new(TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap());
    let mut reference: Option<Vec<_>> = None;
    for threads in POOL_SIZES {
        let pool = Arc::new(ThreadPool::new(threads));
        let mut pipe = FramePipeline::with_pool(
            Beamformer::new(&spec),
            Arc::clone(&engine),
            FrameRing::new(frames.clone()),
            pool,
            &schedule,
        );
        // Alternate the synchronous and asynchronous redemption shapes:
        // both must be bit-identical at every pool size.
        let volumes: Vec<_> = (0..6)
            .map(|round| {
                if round % 2 == 0 {
                    pipe.next_volume().expect("healthy pipeline").clone()
                } else {
                    let ticket = pipe.submit().expect("healthy acquisition");
                    ticket.wait().expect("healthy beamforming").clone()
                }
            })
            .collect();
        match &reference {
            None => reference = Some(volumes),
            Some(expect) => {
                assert_eq!(
                    &volumes, expect,
                    "pipeline with {threads} worker(s) diverged"
                );
            }
        }
    }
}

#[test]
fn sharded_runtime_is_bit_identical_across_pool_sizes() {
    let spec = SystemSpec::tiny();
    let frames = recorded_frames(&spec, 2);
    let exact: Arc<dyn DelayEngine + Send + Sync> = Arc::new(ExactEngine::new(&spec));
    let steer: Arc<dyn DelayEngine + Send + Sync> =
        Arc::new(TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap());
    let mut reference: Option<Vec<_>> = None;
    for threads in POOL_SIZES {
        let pool = Arc::new(ThreadPool::new(threads));
        let mut rt = ShardedRuntime::new(
            pool,
            vec![
                ShardConfig::new(
                    Beamformer::new(&spec),
                    Arc::clone(&exact),
                    FrameRing::new(frames.clone()),
                ),
                ShardConfig::new(
                    Beamformer::new(&spec),
                    Arc::clone(&steer),
                    FrameRing::new(frames.clone()),
                ),
            ],
        );
        let mut volumes = Vec::new();
        for round in 0..4 {
            let outcomes = rt.round();
            assert!(outcomes.iter().all(|o| o.is_ok()), "round {round}");
            for shard in 0..rt.n_shards() {
                volumes.push(rt.volume(shard).expect("completed frame").clone());
            }
        }
        match &reference {
            None => reference = Some(volumes),
            Some(expect) => {
                assert_eq!(
                    &volumes, expect,
                    "sharded runtime with {threads} worker(s) diverged"
                );
            }
        }
    }
}

#[test]
fn churned_elastic_runtime_is_bit_identical_across_pool_sizes() {
    // The same scripted attach/detach/round sequence — including a
    // deferring in-flight window — must produce the same volume stream
    // at every pool size: elasticity and admission rotate *when* frames
    // run, never what they compute.
    let plans = shard_plans(5, 0xD37E_2215);
    let mut reference: Option<Vec<_>> = None;
    for threads in POOL_SIZES {
        let pool = Arc::new(ThreadPool::new(threads));
        let mut rt = ShardedRuntime::with_budget(
            Arc::clone(&pool),
            RuntimeBudget {
                max_live_shards: plans.len(),
                max_in_flight: 3,
                max_round_voxels: None,
            },
        );
        let mut ids = Vec::new();
        for plan in plans.iter().take(3) {
            ids.push(rt.attach_shard(plan.config()).expect("under budget"));
        }
        let mut volumes = Vec::new();
        let mut next_plan = 3usize;
        for round in 0..12 {
            let outcomes = rt.round();
            assert!(outcomes.iter().all(|o| o.is_ok()), "round {round}");
            for id in &ids {
                // Deferred shards contribute their previous volume (or
                // nothing before their first frame) — also scripted, so
                // also identical across pool sizes.
                if let Some(v) = rt.volume_of(*id) {
                    volumes.push(v.clone());
                }
            }
            if round % 3 == 2 {
                let gone = ids.remove(round % ids.len());
                rt.detach_shard(gone).expect("scripted detach");
                let plan = &plans[next_plan % plans.len()];
                next_plan += 1;
                ids.push(rt.attach_shard(plan.config()).expect("under budget"));
            }
        }
        match &reference {
            None => reference = Some(volumes),
            Some(expect) => {
                assert_eq!(
                    &volumes, expect,
                    "churned runtime with {threads} worker(s) diverged"
                );
            }
        }
    }
}

#[test]
fn fused_bmode_post_stages_are_bit_identical_to_the_scalar_reference() {
    // The PR 8 tentpole invariant: the demod → envelope → log-compress
    // chain fused into the per-tile kernel (applied to each tile's
    // columns before the scatter, through the warm FramePipeline) must
    // reproduce, bit for bit, the scalar whole-volume reference — a
    // per-voxel ScanlineByScanline walk followed by a separate
    // whole-volume post-processing pass — for all four delay engines at
    // every pool size.
    let spec = SystemSpec::tiny();
    let frames = recorded_frames(&spec, 2);
    let schedule = NappeSchedule::fitted(&spec, 8);
    let bmode = PostChain::bmode(BmodeConfig::from_spec(&spec));
    let exact: Arc<dyn DelayEngine + Send + Sync> = Arc::new(ExactEngine::new(&spec));
    let naive: Arc<dyn DelayEngine + Send + Sync> =
        Arc::new(NaiveTableEngine::build(&spec, u64::MAX).unwrap());
    let tablefree: Arc<dyn DelayEngine + Send + Sync> =
        Arc::new(TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap());
    let tablesteer: Arc<dyn DelayEngine + Send + Sync> =
        Arc::new(TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap());
    for engine in [&exact, &naive, &tablefree, &tablesteer] {
        let reference: Vec<_> = frames
            .iter()
            .map(|rf| {
                Beamformer::new(&spec)
                    .with_order(ScanOrder::ScanlineByScanline)
                    .with_postproc(bmode.clone())
                    .beamform_volume(engine.as_ref(), rf)
            })
            .collect();
        for threads in POOL_SIZES {
            let pool = Arc::new(ThreadPool::new(threads));
            let mut pipe = FramePipeline::with_pool(
                Beamformer::new(&spec).with_postproc(bmode.clone()),
                Arc::clone(engine),
                FrameRing::new(frames.clone()),
                pool,
                &schedule,
            );
            for (i, expect) in reference.iter().enumerate() {
                let vol = pipe.next_volume().expect("healthy pipeline");
                assert_eq!(
                    vol,
                    expect,
                    "{} frame {i} with {threads} worker(s) diverged from the scalar B-mode reference",
                    engine.name()
                );
            }
            // The zero-scatter view over the fused tile outputs agrees
            // with the scattered volume it bypasses.
            let view = pipe.view().expect("frames completed");
            let last = reference.last().unwrap();
            for axis in [
                usbf::beamform::ProjectionAxis::Theta,
                usbf::beamform::ProjectionAxis::Phi,
                usbf::beamform::ProjectionAxis::Depth,
            ] {
                assert_eq!(view.mip(axis), last.mip(axis), "{}", engine.name());
            }
        }
    }
}

#[test]
fn pool_sized_loops_match_the_cold_single_shot_path() {
    // The cold path runs on the global pool (whatever size CI's matrix
    // gave it); explicit pools of every size must reproduce it exactly.
    let spec = SystemSpec::tiny();
    let rf = &recorded_frames(&spec, 1)[0];
    let engine = ExactEngine::new(&spec);
    let cold = Beamformer::new(&spec).beamform_volume(&engine, rf);
    let schedule = NappeSchedule::fitted(&spec, 8);
    for threads in POOL_SIZES {
        let pool = Arc::new(ThreadPool::new(threads));
        let mut rt = VolumeLoop::with_pool(Beamformer::new(&spec), pool, &schedule);
        assert_eq!(rt.beamform(&engine, rf), &cold, "{threads} worker(s)");
    }
}
