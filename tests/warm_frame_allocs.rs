//! Allocation discipline of the warm frame path, measured with a
//! counting global allocator.
//!
//! The tentpole claim of the real-time runtime is that a warm frame
//! performs zero thread spawns, zero slab/buffer/volume allocations and
//! **zero per-tile job allocations**: with 64 schedule tiles per frame,
//! the pre-pool dispatcher allocated one boxed task per tile per frame
//! (plus an `Arc` job core and the collection buffers), while the
//! preregistered-job path allocates nothing per tile — only the pool's
//! O(workers) channel wake-ups remain, and those are amortized by the
//! channel's block allocator. This test counts actual heap allocations
//! across many warm frames and asserts they stay an order of magnitude
//! below one-per-tile. Both measurements live in one `#[test]` so no
//! concurrent test pollutes the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use usbf::beamform::{Beamformer, FramePipeline, FrameRing, VolumeLoop};
use usbf::core::{ExactEngine, NappeSchedule};
use usbf::geometry::{SystemSpec, VoxelIndex};
use usbf::par::ThreadPool;
use usbf::sim::{EchoSynthesizer, Phantom, Pulse};

struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

const FRAMES: u64 = 20;
const WORKERS: usize = 4;

#[test]
fn warm_frames_do_no_per_tile_allocation() {
    let spec = SystemSpec::tiny();
    let rf = EchoSynthesizer::new(&spec).synthesize(
        &Phantom::point(spec.volume_grid.position(VoxelIndex::new(4, 4, 8))),
        &Pulse::from_spec(&spec),
    );
    let engine = ExactEngine::new(&spec);
    // 64 one-scanline tiles: a per-tile allocation regression shows up
    // 64× per frame, far above the asserted budget.
    let schedule = NappeSchedule::fitted(&spec, 64);
    let tiles = schedule.tiles().len() as u64;
    assert_eq!(tiles, 64);

    // --- VolumeLoop on an explicit pool ---
    let pool = Arc::new(ThreadPool::new(WORKERS));
    let mut rt = VolumeLoop::with_pool(Beamformer::new(&spec), Arc::clone(&pool), &schedule);
    for _ in 0..5 {
        rt.beamform(&engine, &rf); // warm-up: all allocation happens here
    }
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..FRAMES {
        rt.beamform(&engine, &rf);
    }
    let loop_allocs = ALLOCS.load(Ordering::SeqCst) - before;
    eprintln!("LOOP_ALLOCS={loop_allocs}");
    // Measured: 0. One boxed task per tile would be FRAMES × 64 = 1280;
    // the budget leaves room only for occasional amortized channel-block
    // allocations (≈2/frame), nothing per-tile.
    let budget = FRAMES * 2;
    assert!(
        loop_allocs < budget,
        "warm VolumeLoop made {loop_allocs} allocations over {FRAMES} frames \
         ({tiles} tiles each); budget {budget} — the per-tile dispatch path is \
         allocating again"
    );

    // --- FramePipeline (adds the acquisition handoff) ---
    let mut pipe = FramePipeline::with_pool(
        Beamformer::new(&spec),
        FrameRing::new(vec![rf.clone()]),
        pool,
        &schedule,
    );
    for _ in 0..5 {
        pipe.next_volume(&engine).expect("warm-up frame");
    }
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..FRAMES {
        pipe.next_volume(&engine).expect("warm frame");
    }
    let pipe_allocs = ALLOCS.load(Ordering::SeqCst) - before;
    eprintln!("PIPE_ALLOCS={pipe_allocs}");
    // Measured: 4 (the RF buffer handoff's amortized channel nodes). The
    // pipeline adds two channel sends per frame on top of the loop's
    // announcements — still nothing per-tile.
    let budget = FRAMES * 4;
    assert!(
        pipe_allocs < budget,
        "warm FramePipeline made {pipe_allocs} allocations over {FRAMES} frames \
         ({tiles} tiles each); budget {budget}"
    );
}
