//! Allocation discipline of the warm frame path, measured with a
//! counting global allocator.
//!
//! The tentpole claim of the real-time runtime is that a warm frame
//! performs **zero heap allocations**: no thread spawns, no
//! slab/buffer/volume allocations, no per-tile job allocations and no
//! channel nodes. With 64 schedule tiles per frame, the pre-pool
//! dispatcher allocated one boxed task per tile per frame (plus an
//! `Arc` job core and the collection buffers); the preregistered-job
//! path allocates nothing per tile, and the pipeline's RF handoff moves
//! buffers through a preallocated two-slot exchange instead of an
//! `mpsc` channel. This test counts actual heap allocations across many
//! warm frames — through the synchronous `VolumeLoop`, the synchronous
//! and asynchronous `FramePipeline` shapes, and multi-shard
//! `ShardedRuntime` rounds — and asserts the warm paths measure **0**.
//! All measurements live in one `#[test]` so no concurrent test
//! pollutes the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use usbf::beamform::{
    Beamformer, BmodeConfig, FramePipeline, FrameRing, PostChain, ProjectionAxis, ShardConfig,
    ShardedRuntime, SlicePlane, VolumeLoop,
};
use usbf::core::{
    DelayEngine, ExactEngine, NappeSchedule, TableFreeConfig, TableFreeEngine, TableSteerConfig,
    TableSteerEngine,
};
use usbf::geometry::{deg, SystemSpec, TransmitModel, VolumeSpec, VoxelIndex};
use usbf::par::ThreadPool;
use usbf::sim::{EchoSynthesizer, Phantom, Pulse};

struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

const FRAMES: u64 = 20;
const WORKERS: usize = 4;

#[test]
fn warm_frames_do_no_per_tile_allocation() {
    let spec = SystemSpec::tiny();
    let rf = EchoSynthesizer::new(&spec).synthesize(
        &Phantom::point(spec.volume_grid.position(VoxelIndex::new(4, 4, 8))),
        &Pulse::from_spec(&spec),
    );
    let engine = ExactEngine::new(&spec);
    // 64 one-scanline tiles: a per-tile allocation regression shows up
    // 64× per frame, far above the asserted budget.
    let schedule = NappeSchedule::fitted(&spec, 64);
    let tiles = schedule.tiles().len() as u64;
    assert_eq!(tiles, 64);

    // --- VolumeLoop on an explicit pool ---
    let pool = Arc::new(ThreadPool::new(WORKERS));
    let mut rt = VolumeLoop::with_pool(Beamformer::new(&spec), Arc::clone(&pool), &schedule);
    for _ in 0..5 {
        rt.beamform(&engine, &rf); // warm-up: all allocation happens here
    }
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..FRAMES {
        rt.beamform(&engine, &rf);
    }
    let loop_allocs = ALLOCS.load(Ordering::SeqCst) - before;
    eprintln!("LOOP_ALLOCS={loop_allocs}");
    // One boxed task per tile would be FRAMES × 64 = 1280; the warm
    // preregistered path (announcements included, now that worker
    // queues are preallocated rings instead of mpsc channels) measures
    // exactly zero.
    assert_eq!(
        loop_allocs, 0,
        "warm VolumeLoop frames must not allocate ({FRAMES} frames, \
         {tiles} tiles each) — the per-tile dispatch path is allocating again"
    );

    // --- FramePipeline, synchronous shape (acquisition handoff + pool
    // dispatch; the RF buffers move through the pipeline's preallocated
    // two-slot exchange, so unlike an mpsc channel the handoff itself
    // never allocates) ---
    let arc_engine: Arc<dyn DelayEngine + Send + Sync> = Arc::new(ExactEngine::new(&spec));
    let mut pipe = FramePipeline::with_pool(
        Beamformer::new(&spec),
        Arc::clone(&arc_engine),
        FrameRing::new(vec![rf.clone()]),
        Arc::clone(&pool),
        &schedule,
    );
    for _ in 0..5 {
        pipe.next_volume().expect("warm-up frame");
    }
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..FRAMES {
        pipe.next_volume().expect("warm frame");
    }
    let pipe_allocs = ALLOCS.load(Ordering::SeqCst) - before;
    eprintln!("PIPE_ALLOCS={pipe_allocs}");
    assert_eq!(
        pipe_allocs, 0,
        "warm synchronous FramePipeline frames must not allocate \
         ({FRAMES} frames, {tiles} tiles each)"
    );

    // --- FramePipeline, asynchronous shape (submit → ticket → wait,
    // with caller-side work between — the three-stage overlap) ---
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..FRAMES {
        let ticket = pipe.submit().expect("warm submit");
        let _ = ticket.previous_volume().map(|v| v.max_abs()); // consume n−1
        while !ticket.try_wait() {
            std::thread::yield_now();
        }
        ticket.wait().expect("warm redeem");
    }
    let async_allocs = ALLOCS.load(Ordering::SeqCst) - before;
    eprintln!("ASYNC_ALLOCS={async_allocs}");
    assert_eq!(
        async_allocs, 0,
        "warm submit/wait cycles must not allocate \
         ({FRAMES} frames, {tiles} tiles each)"
    );
    drop(pipe);

    // --- The approximating engines (TABLESTEER's correction registers,
    // TABLEFREE's PWL argument rows) run on slab-resident scratch, so
    // their warm pipelines must measure 0 too, not just EXACT's ---
    let approx_engines: [Arc<dyn DelayEngine + Send + Sync>; 2] = [
        Arc::new(TableSteerEngine::new(&spec, TableSteerConfig::bits18()).expect("builds")),
        Arc::new(TableFreeEngine::new(&spec, TableFreeConfig::paper()).expect("builds")),
    ];
    for eng in approx_engines {
        let name = eng.name();
        let mut pipe = FramePipeline::with_pool(
            Beamformer::new(&spec),
            Arc::clone(&eng),
            FrameRing::new(vec![rf.clone()]),
            Arc::clone(&pool),
            &schedule,
        );
        for _ in 0..5 {
            pipe.next_volume().expect("warm-up frame");
        }
        let before = ALLOCS.load(Ordering::SeqCst);
        for _ in 0..FRAMES {
            pipe.next_volume().expect("warm frame");
        }
        let engine_allocs = ALLOCS.load(Ordering::SeqCst) - before;
        eprintln!("{name}_ALLOCS={engine_allocs}");
        assert_eq!(
            engine_allocs, 0,
            "warm {name} FramePipeline frames must not allocate \
             ({FRAMES} frames, {tiles} tiles each)"
        );
    }

    // --- FramePipeline with the fused B-mode post-stages: the demod →
    // envelope → log-compress chain runs per tile on the slab-resident
    // I/Q scratch, so warm frames still measure 0 — and the zero-scatter
    // views fill caller-provided buffers without materializing the
    // volume ---
    let mut pipe = FramePipeline::with_pool(
        Beamformer::new(&spec).with_postproc(PostChain::bmode(BmodeConfig::from_spec(&spec))),
        Arc::clone(&arc_engine),
        FrameRing::new(vec![rf.clone()]),
        Arc::clone(&pool),
        &schedule,
    );
    for _ in 0..5 {
        pipe.next_volume().expect("warm-up frame");
    }
    let (n_theta, n_phi, n_depth) = pipe.view().expect("frames completed").dims();
    let mut slice_buf = vec![0.0; n_phi * n_depth];
    let mut mip_buf = vec![0.0; n_theta * n_phi];
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..FRAMES {
        pipe.next_volume().expect("warm frame");
        let view = pipe.view().expect("frames completed");
        view.slice_into(SlicePlane::Theta(n_theta / 2), &mut slice_buf);
        view.mip_into(ProjectionAxis::Depth, &mut mip_buf);
    }
    let bmode_allocs = ALLOCS.load(Ordering::SeqCst) - before;
    eprintln!("BMODE_ALLOCS={bmode_allocs}");
    assert_eq!(
        bmode_allocs, 0,
        "warm B-mode FramePipeline frames plus slice/MIP views must not \
         allocate ({FRAMES} frames, {tiles} tiles each)"
    );
    drop(pipe);

    // --- Coherent plane-wave compounding, factored loop: EXACT joins
    // the factored fill family, so a warm 4-angle compound frame fills
    // the receive-leg slab once per nappe and combines each transmit's
    // per-voxel term through the preallocated `tx_row` scratch — all of
    // it slab/state-resident, so the N-angle frame must measure 0 just
    // like the single-transmit one. (Narrow cone: under tiny()'s ±36.5°
    // the plane-wave footprints miss the whole grid and the compound
    // would be vacuously zero.) ---
    let lambda = spec.wavelength();
    let cpwc_spec = SystemSpec::new(
        spec.speed_of_sound,
        spec.sampling_frequency,
        spec.transducer.clone(),
        VolumeSpec {
            theta_max: deg(4.0),
            phi_max: deg(4.0),
            depth_max: 60.0 * lambda,
            ..spec.volume.clone()
        },
        spec.origin,
        spec.frame_rate,
    )
    .with_transmits(TransmitModel::plane_wave_fan(4, deg(10.0)));
    let cpwc_rf = EchoSynthesizer::new(&cpwc_spec).synthesize(
        &Phantom::point(cpwc_spec.volume_grid.position(VoxelIndex::new(4, 4, 10))),
        &Pulse::from_spec(&cpwc_spec),
    );
    let cpwc_schedule = NappeSchedule::fitted(&cpwc_spec, 64);
    let cpwc_engine: Arc<dyn DelayEngine + Send + Sync> = Arc::new(ExactEngine::new(&cpwc_spec));
    let mut pipe = FramePipeline::with_pool(
        Beamformer::new(&cpwc_spec),
        Arc::clone(&cpwc_engine),
        FrameRing::new(vec![cpwc_rf]),
        Arc::clone(&pool),
        &cpwc_schedule,
    );
    for _ in 0..5 {
        pipe.next_volume().expect("warm-up compound frame");
    }
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..FRAMES {
        pipe.next_volume().expect("warm compound frame");
    }
    let cpwc_allocs = ALLOCS.load(Ordering::SeqCst) - before;
    eprintln!("CPWC_ALLOCS={cpwc_allocs}");
    assert_eq!(
        cpwc_allocs,
        0,
        "warm 4-angle factored compound frames must not allocate \
         ({FRAMES} frames, {} tiles each, 4 transmits per frame)",
        cpwc_schedule.tiles().len()
    );
    drop(pipe);

    // --- Coherent plane-wave compounding, fused fallback: `FusedOnly`
    // hides the factored family, forcing the per-transmit loop through
    // the low-resolution staging buffer — the pre-PR-10 datapath, which
    // must stay 0-alloc too (it remains the path for engines without a
    // separable receive leg). ---
    let fused_engine: Arc<dyn DelayEngine + Send + Sync> =
        Arc::new(usbf::core::FusedOnly(ExactEngine::new(&cpwc_spec)));
    let cpwc_rf_fused = EchoSynthesizer::new(&cpwc_spec).synthesize(
        &Phantom::point(cpwc_spec.volume_grid.position(VoxelIndex::new(4, 4, 10))),
        &Pulse::from_spec(&cpwc_spec),
    );
    let mut pipe = FramePipeline::with_pool(
        Beamformer::new(&cpwc_spec),
        Arc::clone(&fused_engine),
        FrameRing::new(vec![cpwc_rf_fused]),
        Arc::clone(&pool),
        &cpwc_schedule,
    );
    for _ in 0..5 {
        pipe.next_volume().expect("warm-up fused compound frame");
    }
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..FRAMES {
        pipe.next_volume().expect("warm fused compound frame");
    }
    let fused_allocs = ALLOCS.load(Ordering::SeqCst) - before;
    eprintln!("CPWC_FUSED_ALLOCS={fused_allocs}");
    assert_eq!(
        fused_allocs,
        0,
        "warm 4-angle fused-fallback compound frames must not allocate \
         ({FRAMES} frames, {} tiles each, 4 transmits per frame)",
        cpwc_schedule.tiles().len()
    );
    drop(pipe);

    // --- ShardedRuntime (3 shards multiplexed on the same pool) ---
    let shard = |fill: f64| {
        let mut frame = rf.clone();
        frame.fill(fill);
        ShardConfig::new(
            Beamformer::new(&spec),
            Arc::clone(&arc_engine),
            FrameRing::new(vec![frame]),
        )
    };
    let mut rt = ShardedRuntime::new(pool, vec![shard(0.0), shard(0.5), shard(1.0)]);
    let mut outcomes = Vec::new();
    for _ in 0..5 {
        rt.round_into(&mut outcomes);
        assert!(outcomes.iter().all(|o| o.is_ok()), "warm-up round");
    }
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..FRAMES {
        rt.round_into(&mut outcomes);
        assert!(outcomes.iter().all(|o| o.is_ok()), "warm round");
    }
    let shard_allocs = ALLOCS.load(Ordering::SeqCst) - before;
    eprintln!("SHARD_ALLOCS={shard_allocs}");
    assert_eq!(
        shard_allocs,
        0,
        "warm sharded rounds must not allocate \
         ({FRAMES} rounds, {} shards)",
        rt.n_shards()
    );
}
