//! Shared scaffolding for the sharded-runtime test tier
//! (`shard_stress.rs`, `shard_churn.rs`, `admission.rs`,
//! `determinism.rs`): heterogeneous shard recipes, their serial
//! baselines, and the repo's seeded RNG — one definition instead of a
//! copy per soak test.
//!
//! Compiled into each test binary via `mod shard_test_harness;`; not
//! every binary uses every helper, hence the `dead_code` allows.

#![allow(dead_code)]

use std::sync::Arc;
use usbf::beamform::{BeamformedVolume, Beamformer, FrameRing, ShardConfig, VolumeLoop};
use usbf::core::{
    DelayEngine, ExactEngine, TableFreeConfig, TableFreeEngine, TableSteerConfig, TableSteerEngine,
};
use usbf::geometry::{
    deg, SystemSpec, TransducerSpec, Vec3, VolumeSpec, VoxelIndex, SPEED_OF_SOUND,
};
use usbf::sim::{EchoSynthesizer, Phantom, Pulse, RfFrame};

/// SplitMix64 — the repo's seeded test RNG (no external rand crate).
pub struct Rng(pub u64);

impl Rng {
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.next() % 100 < pct
    }
}

/// A second probe geometry, distinct from `SystemSpec::tiny()`: fewer
/// elements, an asymmetric 4 × 8 fan and a shallower volume, so shard
/// heterogeneity covers element count, fan shape and depth at once.
pub fn small_spec() -> SystemSpec {
    let fc = 3.0e6;
    let lambda = SPEED_OF_SOUND / fc;
    SystemSpec::new(
        SPEED_OF_SOUND,
        24.0e6,
        TransducerSpec {
            center_frequency: fc,
            bandwidth: 3.0e6,
            nx: 6,
            ny: 6,
            pitch: lambda / 2.0,
        },
        VolumeSpec {
            theta_max: deg(30.0),
            phi_max: deg(30.0),
            depth_max: 300.0 * lambda,
            n_theta: 4,
            n_phi: 8,
            n_depth: 10,
        },
        Vec3::ZERO,
        20.0,
    )
}

/// One shard's recipe: spec + engine + a short ring of distinct frames.
pub struct ShardPlan {
    pub name: String,
    pub spec: SystemSpec,
    pub engine: Arc<dyn DelayEngine + Send + Sync>,
    pub ring: Vec<RfFrame>,
}

impl ShardPlan {
    /// The shard's runtime config: a fresh beamformer on the plan's
    /// spec, the shared engine, and a fresh ring cycling its frames.
    pub fn config(&self) -> ShardConfig {
        ShardConfig::new(
            Beamformer::new(&self.spec),
            Arc::clone(&self.engine),
            FrameRing::new(self.ring.clone()),
        )
    }

    /// The serial baseline: each ring frame through a lone `VolumeLoop`
    /// on the plan's own spec and engine — no sharding, no multiplexing.
    pub fn serial_baselines(&self) -> Vec<BeamformedVolume> {
        let mut serial = VolumeLoop::new(Beamformer::new(&self.spec));
        self.ring
            .iter()
            .map(|rf| serial.beamform(self.engine.as_ref(), rf).clone())
            .collect()
    }
}

/// Synthesizes a ring of point-target frames on `spec`, one per seed
/// voxel.
pub fn ring_of(spec: &SystemSpec, seeds: &[(usize, usize, usize)]) -> Vec<RfFrame> {
    let synth = EchoSynthesizer::new(spec);
    let pulse = Pulse::from_spec(spec);
    seeds
        .iter()
        .map(|&(it, ip, id)| {
            let vox = VoxelIndex::new(it, ip, id);
            synth.synthesize(&Phantom::point(spec.volume_grid.position(vox)), &pulse)
        })
        .collect()
}

/// The classic three-way heterogeneous fleet: two probes
/// (`SystemSpec::tiny()` and [`small_spec`]) across the three delay
/// architectures. The historical fixed cast of `shard_stress.rs`.
pub fn classic_plans() -> Vec<ShardPlan> {
    shard_plans(3, 0)
}

/// `n` heterogeneous shard plans, cycling through (probe, engine)
/// combinations — tiny/EXACT, tiny/TABLESTEER, small/TABLEFREE — with
/// per-shard point-target rings drawn from `seed`, so any fleet size
/// mixes specs, engines, ring lengths and targets. Engines are built
/// once per combination and shared (`Arc`) across the shards that use
/// them, like production sessions sharing a probe's delay tables.
pub fn shard_plans(n: usize, seed: u64) -> Vec<ShardPlan> {
    let tiny = SystemSpec::tiny();
    let small = small_spec();
    let combos: [(&str, &SystemSpec, Arc<dyn DelayEngine + Send + Sync>); 3] = [
        ("tiny/EXACT", &tiny, Arc::new(ExactEngine::new(&tiny))),
        (
            "tiny/TABLESTEER",
            &tiny,
            Arc::new(TableSteerEngine::new(&tiny, TableSteerConfig::bits18()).unwrap()),
        ),
        (
            "small/TABLEFREE",
            &small,
            Arc::new(TableFreeEngine::new(&small, TableFreeConfig::paper()).unwrap()),
        ),
    ];
    // Deterministic per-shard target rings. Seed 0 reproduces the
    // historical fixed cast for the first three shards, keeping the
    // long-standing stress fixtures stable.
    let classic: [&[(usize, usize, usize)]; 3] = [
        &[(2, 3, 5), (5, 4, 9), (4, 4, 12)],
        &[(1, 6, 7), (6, 1, 11)],
        &[(1, 2, 4), (2, 6, 7), (3, 1, 8)],
    ];
    let mut rng = Rng(seed ^ 0x5EED_0FF1_EE75_0000);
    (0..n)
        .map(|i| {
            let (label, spec, engine) = &combos[i % combos.len()];
            let ring_seeds: Vec<(usize, usize, usize)> = if seed == 0 && i < classic.len() {
                classic[i].to_vec()
            } else {
                let grid = &spec.volume_grid;
                let len = 2 + rng.below(3); // 2..=4 frames per ring
                (0..len)
                    .map(|_| {
                        (
                            rng.below(grid.n_theta()),
                            rng.below(grid.n_phi()),
                            rng.below(grid.n_depth()),
                        )
                    })
                    .collect()
            };
            ShardPlan {
                name: format!("{label}#{i}"),
                spec: (*spec).clone(),
                engine: Arc::clone(engine),
                ring: ring_of(spec, &ring_seeds),
            }
        })
        .collect()
}
