//! Property-based invariants of the acoustic simulation substrate.

use proptest::prelude::*;
use usbf_geometry::{ElementIndex, SystemSpec, Vec3};
use usbf_sim::{metrics, EchoSynthesizer, Phantom, Pulse, RfFrame};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn pulse_is_bounded_by_unit_envelope(t in -2e-6f64..2e-6) {
        let p = Pulse::gaussian(4.0e6, 4.0e6, 32.0e6);
        prop_assert!(p.sample(t).abs() <= 1.0 + 1e-12);
    }

    #[test]
    fn pulse_envelope_decreases_away_from_peak(
        t in 0.0f64..8e-7,
        dt in 1e-8f64..2e-7,
    ) {
        // Compare envelopes (sampled at carrier peaks to avoid phase
        // effects): use the analytic envelope bound instead.
        let p = Pulse::gaussian(4.0e6, 4.0e6, 32.0e6);
        let env = |t: f64| (-t * t / (2.0 * p.sigma() * p.sigma())).exp();
        prop_assert!(env(t + dt) <= env(t));
    }

    #[test]
    fn echo_peak_time_matches_geometry(
        sx in -0.01f64..0.01,
        sz in 0.02f64..0.15,
        ex in 0usize..8,
        ey in 0usize..8,
    ) {
        let spec = SystemSpec::tiny();
        let target = Vec3::new(sx, 0.0, sz);
        let rf = EchoSynthesizer::new(&spec)
            .synthesize(&Phantom::point(target), &Pulse::from_spec(&spec));
        let e = ElementIndex::new(ex, ey);
        let expect = spec.two_way_delay_samples(target, spec.elements.position(e));
        let trace = rf.trace(e);
        let peak = metrics::peak_index(trace);
        prop_assert!((peak as f64 - expect).abs() <= 1.5, "peak {} vs {}", peak, expect);
    }

    #[test]
    fn echo_amplitude_scales_linearly(
        amp in 0.1f64..5.0,
    ) {
        let spec = SystemSpec::tiny();
        let pos = Vec3::new(0.0, 0.0, 0.06);
        let unit = Phantom::point(pos);
        let scaled = Phantom::from_scatterers(vec![usbf_sim::Scatterer { position: pos, amplitude: amp }]);
        let synth = EchoSynthesizer::new(&spec);
        let pulse = Pulse::from_spec(&spec);
        let a = synth.synthesize(&unit, &pulse);
        let b = synth.synthesize(&scaled, &pulse);
        prop_assert!((b.max_abs() - amp * a.max_abs()).abs() < 1e-9 * amp.max(1.0));
    }

    #[test]
    fn interp_is_between_neighbors(
        idx in 0usize..30,
        frac in 0.0f64..1.0,
        a in -2.0f64..2.0,
        b in -2.0f64..2.0,
    ) {
        let mut rf = RfFrame::zeros(1, 1, 32);
        let e = ElementIndex::new(0, 0);
        rf.trace_mut(e)[idx] = a;
        rf.trace_mut(e)[idx + 1] = b;
        let v = rf.sample_interp(e, idx as f64 + frac);
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn fwhm_scales_with_gaussian_sigma(sigma in 2.0f64..10.0) {
        let profile: Vec<f64> = (0..201)
            .map(|i| (-((i as f64 - 100.0) / sigma).powi(2) / 2.0).exp())
            .collect();
        let w = metrics::fwhm(&profile);
        prop_assert!((w - 2.3548 * sigma).abs() < 0.2, "w = {} σ = {}", w, sigma);
    }

    #[test]
    fn envelope_never_negative(seed in 0u64..1000) {
        let spec = SystemSpec::tiny();
        let rf = EchoSynthesizer::new(&spec)
            .with_options(usbf_sim::EchoOptions { noise_rms: 0.3, seed, ..Default::default() })
            .synthesize(&Phantom::empty(), &Pulse::from_spec(&spec));
        let trace = rf.trace(ElementIndex::new(0, 0));
        let env = usbf_sim::envelope(&trace[..256], 4.0e6, 32.0e6);
        prop_assert!(env.iter().all(|&v| v >= 0.0));
    }
}
