//! Image-quality metrics: how delay accuracy shows up in images.

/// Index of the largest |value| in a profile, skipping NaN samples.
///
/// Returns `None` for an empty or all-NaN profile. Unlike a
/// `partial_cmp(..).unwrap()` fold this never panics: NaN samples (which
/// can reach image metrics through silent log-compressed traces or
/// corrupted RF) are simply not candidates for the peak.
pub fn try_peak_index(profile: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in profile.iter().enumerate() {
        let a = v.abs();
        if a.is_nan() {
            continue;
        }
        match best {
            Some((_, m)) if a <= m => {}
            _ => best = Some((i, a)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the largest |value| in a profile.
///
/// NaN samples are skipped (see [`try_peak_index`]).
///
/// # Panics
///
/// Panics if the profile is empty or contains no non-NaN sample.
pub fn peak_index(profile: &[f64]) -> usize {
    assert!(!profile.is_empty(), "empty profile");
    try_peak_index(profile).expect("all-NaN profile has no peak")
}

/// Full width at half maximum of |profile|, in index units, measured
/// around the global peak with linear interpolation of the half-power
/// crossings. Returns the full profile length if a crossing never happens
/// on a side.
///
/// # Panics
///
/// Panics if the profile is empty.
pub fn fwhm(profile: &[f64]) -> f64 {
    let p = peak_index(profile);
    let half = profile[p].abs() / 2.0;
    // Walk left.
    let mut left = 0.0;
    for i in (0..p).rev() {
        if profile[i].abs() < half {
            let hi = profile[i + 1].abs();
            let lo = profile[i].abs();
            left = p as f64 - (i as f64 + (half - lo) / (hi - lo));
            break;
        }
        if i == 0 {
            left = p as f64;
        }
    }
    if p == 0 {
        left = 0.0;
    }
    // Walk right.
    let mut right = 0.0;
    for i in p + 1..profile.len() {
        if profile[i].abs() < half {
            let hi = profile[i - 1].abs();
            let lo = profile[i].abs();
            right = (i as f64 - (half - lo) / (hi - lo)) - p as f64;
            break;
        }
        if i == profile.len() - 1 {
            right = (profile.len() - 1 - p) as f64;
        }
    }
    if p == profile.len() - 1 {
        right = 0.0;
    }
    left + right
}

/// Peak sidelobe level in dB: the ratio of the largest |value| outside an
/// exclusion window of `±main_lobe_halfwidth` around the peak to the peak
/// itself. More negative is better; returns `-inf` if nothing lies outside
/// the window.
///
/// # Panics
///
/// Panics if the profile is empty.
pub fn peak_sidelobe_db(profile: &[f64], main_lobe_halfwidth: usize) -> f64 {
    let p = peak_index(profile);
    let peak = profile[p].abs();
    let mut side = 0.0f64;
    for (i, v) in profile.iter().enumerate() {
        if i + main_lobe_halfwidth < p || i > p + main_lobe_halfwidth {
            side = side.max(v.abs());
        }
    }
    if side == 0.0 {
        f64::NEG_INFINITY
    } else {
        20.0 * (side / peak).log10()
    }
}

/// Root-mean-square difference between two equal-length signals.
///
/// # Panics
///
/// Panics if lengths differ or are zero.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(!a.is_empty(), "empty signals");
    let sum: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (sum / a.len() as f64).sqrt()
}

/// Normalized RMSE: [`rmse`] divided by the peak |value| of the reference
/// `a` — the end-to-end image-degradation metric used to compare engines.
///
/// # Panics
///
/// Panics if lengths differ, are zero, or `a` is all zeros.
pub fn nrmse(a: &[f64], b: &[f64]) -> f64 {
    let peak = a.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    assert!(peak > 0.0, "reference signal is all zeros");
    rmse(a, b) / peak
}

/// Contrast between two regions in dB: `20·log10(rms(inside)/rms(outside))`.
/// For an anechoic cyst, more negative is better.
///
/// # Panics
///
/// Panics if either region is empty or outside is silent.
pub fn contrast_db(inside: &[f64], outside: &[f64]) -> f64 {
    assert!(!inside.is_empty() && !outside.is_empty(), "empty region");
    let rms = |v: &[f64]| (v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64).sqrt();
    let o = rms(outside);
    assert!(o > 0.0, "outside region is silent");
    20.0 * (rms(inside) / o).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_profile(n: usize, center: f64, sigma: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (-((i as f64 - center) / sigma).powi(2) / 2.0).exp())
            .collect()
    }

    #[test]
    fn peak_index_finds_max_abs() {
        assert_eq!(peak_index(&[0.1, -0.9, 0.5]), 1);
        assert_eq!(peak_index(&[1.0]), 0);
    }

    #[test]
    fn peak_index_skips_nan_samples() {
        // Regression: the old partial_cmp(..).unwrap() fold panicked the
        // moment a NaN reached the comparison.
        assert_eq!(peak_index(&[0.1, f64::NAN, -0.9, f64::NAN, 0.5]), 2);
        assert_eq!(try_peak_index(&[f64::NAN, 2.0, f64::NAN]), Some(1));
    }

    #[test]
    fn try_peak_index_empty_and_all_nan_are_none() {
        assert_eq!(try_peak_index(&[]), None);
        assert_eq!(try_peak_index(&[f64::NAN, f64::NAN]), None);
    }

    #[test]
    fn try_peak_index_prefers_first_of_equal_peaks() {
        assert_eq!(try_peak_index(&[1.0, -1.0, 1.0]), Some(0));
    }

    #[test]
    #[should_panic(expected = "all-NaN profile")]
    fn peak_index_all_nan_panics_with_message() {
        peak_index(&[f64::NAN, f64::NAN]);
    }

    #[test]
    fn fwhm_of_gaussian_matches_theory() {
        // FWHM of a Gaussian = 2√(2 ln2)·σ ≈ 2.3548σ.
        let sigma = 6.0;
        let p = gaussian_profile(101, 50.0, sigma);
        let w = fwhm(&p);
        assert!((w - 2.3548 * sigma).abs() < 0.1, "w = {w}");
    }

    #[test]
    fn fwhm_narrower_for_sharper_peak() {
        let wide = gaussian_profile(101, 50.0, 8.0);
        let narrow = gaussian_profile(101, 50.0, 2.0);
        assert!(fwhm(&narrow) < fwhm(&wide));
    }

    #[test]
    fn fwhm_peak_at_edge() {
        let mut p = vec![0.0; 10];
        p[0] = 1.0;
        p[1] = 0.2;
        let w = fwhm(&p);
        assert!(w < 2.0);
    }

    #[test]
    fn sidelobe_level_detects_secondary_peak() {
        let mut p = gaussian_profile(101, 30.0, 2.0);
        p[80] = 0.1; // -20 dB sidelobe
        let psl = peak_sidelobe_db(&p, 10);
        assert!((psl + 20.0).abs() < 0.5, "psl = {psl}");
    }

    #[test]
    fn sidelobe_is_neg_inf_for_clean_peak() {
        let mut p = vec![0.0; 21];
        p[10] = 1.0;
        assert_eq!(peak_sidelobe_db(&p, 3), f64::NEG_INFINITY);
    }

    #[test]
    fn rmse_and_nrmse() {
        let a = [1.0, 0.0, -1.0, 0.0];
        let b = [1.0, 0.5, -1.0, -0.5];
        let r = rmse(&a, &b);
        assert!((r - (0.125f64).sqrt()).abs() < 1e-12);
        assert!((nrmse(&a, &b) - r).abs() < 1e-12, "peak of a is 1");
        assert_eq!(rmse(&a, &a), 0.0);
    }

    #[test]
    fn contrast_of_anechoic_region_is_negative() {
        let inside = vec![0.01; 50];
        let outside = vec![1.0; 50];
        let c = contrast_db(&inside, &outside);
        assert!((c + 40.0).abs() < 0.5, "c = {c}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rmse_length_mismatch_panics() {
        rmse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty profile")]
    fn empty_profile_panics() {
        peak_index(&[]);
    }
}
