//! Envelope detection by quadrature demodulation.
//!
//! Beamformed RF values oscillate at the carrier; image metrics (FWHM,
//! contrast) are conventionally taken on the *envelope*. This module
//! extracts it by mixing with the carrier (I/Q demodulation) and low-pass
//! filtering with a moving-average kernel sized to the carrier period.

/// Envelope of an RF signal sampled at `fs`, demodulated at carrier
/// frequency `fc`.
///
/// The low-pass is a centred moving average over one carrier period
/// (boxcar), which suppresses the 2·fc mixing image while preserving the
/// pulse envelope.
///
/// # Panics
///
/// Panics if the signal is empty or the frequencies are not positive.
///
/// ```
/// // A pure tone has a flat envelope.
/// let fs = 32.0e6;
/// let fc = 4.0e6;
/// let rf: Vec<f64> = (0..256)
///     .map(|i| (2.0 * std::f64::consts::PI * fc * i as f64 / fs).cos())
///     .collect();
/// let env = usbf_sim::envelope(&rf, fc, fs);
/// for &e in &env[16..240] {
///     assert!((e - 1.0).abs() < 0.05, "flat envelope, got {e}");
/// }
/// ```
pub fn envelope(rf: &[f64], fc: f64, fs: f64) -> Vec<f64> {
    assert!(!rf.is_empty(), "empty signal");
    assert!(fc > 0.0 && fs > 0.0, "frequencies must be positive");
    let n = rf.len();
    let w = 2.0 * std::f64::consts::PI * fc / fs;
    let mut i_mix = Vec::with_capacity(n);
    let mut q_mix = Vec::with_capacity(n);
    for (k, &v) in rf.iter().enumerate() {
        let ph = w * k as f64;
        i_mix.push(2.0 * v * ph.cos());
        q_mix.push(-2.0 * v * ph.sin());
    }
    // Boxcar of exactly one carrier period: its zeros land on the 2·fc
    // mixing image (fs/fc samples per period, 8 for the paper's system).
    let period = (fs / fc).round().max(2.0) as usize;
    let half = period / 2;
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let lo = k.saturating_sub(half);
        let hi = (lo + period).min(n);
        let len = (hi - lo) as f64;
        let i_avg: f64 = i_mix[lo..hi].iter().sum::<f64>() / len;
        let q_avg: f64 = q_mix[lo..hi].iter().sum::<f64>() / len;
        out.push((i_avg * i_avg + q_avg * q_avg).sqrt());
    }
    out
}

/// Log-compressed envelope in dB relative to its peak, clamped at
/// `floor_db` — the standard B-mode display transform applied to a single
/// trace.
///
/// # Panics
///
/// Panics as [`envelope`] does, or if the envelope is all zeros.
pub fn envelope_db(rf: &[f64], fc: f64, fs: f64, floor_db: f64) -> Vec<f64> {
    let env = envelope(rf, fc, fs);
    let peak = env.iter().fold(0.0f64, |m, &v| m.max(v));
    assert!(peak > 0.0, "silent signal has no dB envelope");
    env.iter()
        .map(|&v| (20.0 * (v / peak).log10()).max(floor_db))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pulse;

    const FS: f64 = 32.0e6;
    const FC: f64 = 4.0e6;

    #[test]
    fn tone_envelope_is_flat() {
        let rf: Vec<f64> = (0..512)
            .map(|i| (2.0 * std::f64::consts::PI * FC * i as f64 / FS).cos())
            .collect();
        let env = envelope(&rf, FC, FS);
        for &e in &env[32..480] {
            assert!((e - 1.0).abs() < 0.03, "e = {e}");
        }
    }

    #[test]
    fn scaled_tone_scales_envelope() {
        let rf: Vec<f64> = (0..512)
            .map(|i| 0.25 * (2.0 * std::f64::consts::PI * FC * i as f64 / FS).sin())
            .collect();
        let env = envelope(&rf, FC, FS);
        for &e in &env[32..480] {
            assert!((e - 0.25).abs() < 0.01, "e = {e}");
        }
    }

    #[test]
    fn pulse_envelope_peaks_at_pulse_center() {
        let pulse = Pulse::gaussian(FC, 4.0e6, FS);
        let w = pulse.waveform();
        let mut rf = vec![0.0; 400];
        let at = 200 - pulse.half_duration_samples();
        for (k, &v) in w.iter().enumerate() {
            rf[at + k] += v;
        }
        let env = envelope(&rf, FC, FS);
        let peak = env
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        assert!((peak as i64 - 200).unsigned_abs() <= 2, "peak at {peak}");
        // The envelope bridges the carrier nulls: two samples off the
        // pulse centre the RF crosses zero (quarter carrier period at
        // fs/fc = 8), but the true envelope is still ≈0.8 there.
        assert!(
            rf[202].abs() < 0.1,
            "expected carrier null, rf = {}",
            rf[202]
        );
        assert!(
            env[202] > 0.5,
            "envelope must bridge the null, env = {}",
            env[202]
        );
    }

    #[test]
    fn envelope_db_peak_is_zero() {
        let rf: Vec<f64> = (0..256)
            .map(|i| (2.0 * std::f64::consts::PI * FC * i as f64 / FS).cos())
            .collect();
        let db = envelope_db(&rf, FC, FS, -60.0);
        let max = db.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((max - 0.0).abs() < 1e-9);
        assert!(db.iter().all(|&v| v >= -60.0));
    }

    #[test]
    #[should_panic(expected = "empty signal")]
    fn empty_signal_panics() {
        envelope(&[], FC, FS);
    }

    #[test]
    #[should_panic(expected = "silent signal")]
    fn silent_db_panics() {
        envelope_db(&[0.0; 64], FC, FS, -60.0);
    }
}
