//! Envelope detection by quadrature demodulation.
//!
//! Beamformed RF values oscillate at the carrier; image metrics (FWHM,
//! contrast) are conventionally taken on the *envelope*. This module
//! extracts it by mixing with the carrier (I/Q demodulation) and low-pass
//! filtering with a moving-average kernel sized to the carrier period.
//!
//! The transform is exposed at two granularities:
//!
//! * [`envelope`] / [`envelope_db`] — allocating, whole-trace convenience
//!   wrappers used by the simulation metrics;
//! * [`demodulate_into`] / [`envelope_from_iq_into`] /
//!   [`log_compress_into`] — allocation-free building blocks operating on
//!   caller-owned buffers, reused by the beamformer's fused per-tile
//!   post-processing stages where warm frames must not touch the heap.

/// Mix an RF trace down to baseband I/Q at angular carrier frequency `w`
/// (radians per sample), writing into caller-owned buffers.
///
/// `i_out[k] = 2·rf[k]·cos(w·k)`, `q_out[k] = -2·rf[k]·sin(w·k)` — the
/// factor 2 restores the envelope amplitude lost in mixing. The input is
/// left untouched, so a scratch pair can be refilled from the same row
/// every frame. Empty inputs are a no-op.
///
/// # Panics
///
/// Panics if the output buffers are shorter than `rf`.
pub fn demodulate_into(rf: &[f64], w: f64, i_out: &mut [f64], q_out: &mut [f64]) {
    let n = rf.len();
    assert!(
        i_out.len() >= n && q_out.len() >= n,
        "I/Q scratch too short"
    );
    for (k, &v) in rf.iter().enumerate() {
        let ph = w * k as f64;
        i_out[k] = 2.0 * v * ph.cos();
        q_out[k] = -2.0 * v * ph.sin();
    }
}

/// Boxcar-filtered magnitude of an I/Q pair: the envelope.
///
/// The low-pass is a centred moving average over `period` samples (one
/// carrier period), whose zeros land on the 2·fc mixing image. `out` may
/// not alias the inputs — the window around sample `k` is read after
/// `out[k]` would be written. Empty inputs are a no-op.
///
/// # Panics
///
/// Panics if `period < 2`, the I/Q lengths differ, or `out` is shorter
/// than the input.
pub fn envelope_from_iq_into(i_mix: &[f64], q_mix: &[f64], period: usize, out: &mut [f64]) {
    let n = i_mix.len();
    assert_eq!(n, q_mix.len(), "I/Q length mismatch");
    assert!(out.len() >= n, "output buffer too short");
    assert!(period >= 2, "boxcar must span at least 2 samples");
    let half = period / 2;
    for (k, o) in out.iter_mut().enumerate().take(n) {
        let lo = k.saturating_sub(half);
        let hi = (lo + period).min(n);
        let len = (hi - lo) as f64;
        let i_avg: f64 = i_mix[lo..hi].iter().sum::<f64>() / len;
        let q_avg: f64 = q_mix[lo..hi].iter().sum::<f64>() / len;
        *o = (i_avg * i_avg + q_avg * q_avg).sqrt();
    }
}

/// In-place log compression: `v ← max(20·log10(|v|/reference), floor_db)`.
///
/// `reference` is a *fixed* level (not the trace peak): keeping the
/// transform pointwise means it commutes with any partitioning of the
/// volume, which is what lets the fused per-tile path stay bit-identical
/// to a whole-volume pass. Zeros map to `floor_db` (via `-inf`), and NaN
/// inputs also clamp to `floor_db` because [`f64::max`] returns the
/// non-NaN operand.
///
/// # Panics
///
/// Panics if `reference` is not strictly positive.
pub fn log_compress_into(v: &mut [f64], reference: f64, floor_db: f64) {
    assert!(reference > 0.0, "reference level must be positive");
    for x in v.iter_mut() {
        *x = (20.0 * (x.abs() / reference).log10()).max(floor_db);
    }
}

/// Number of samples per carrier period for the boxcar low-pass:
/// `round(fs/fc)` clamped to at least 2.
pub fn boxcar_period(fc: f64, fs: f64) -> usize {
    assert!(fc > 0.0 && fs > 0.0, "frequencies must be positive");
    (fs / fc).round().max(2.0) as usize
}

/// Envelope of an RF signal sampled at `fs`, demodulated at carrier
/// frequency `fc`.
///
/// The low-pass is a centred moving average over one carrier period
/// (boxcar), which suppresses the 2·fc mixing image while preserving the
/// pulse envelope.
///
/// # Panics
///
/// Panics if the signal is empty or the frequencies are not positive.
///
/// ```
/// // A pure tone has a flat envelope.
/// let fs = 32.0e6;
/// let fc = 4.0e6;
/// let rf: Vec<f64> = (0..256)
///     .map(|i| (2.0 * std::f64::consts::PI * fc * i as f64 / fs).cos())
///     .collect();
/// let env = usbf_sim::envelope(&rf, fc, fs);
/// for &e in &env[16..240] {
///     assert!((e - 1.0).abs() < 0.05, "flat envelope, got {e}");
/// }
/// ```
pub fn envelope(rf: &[f64], fc: f64, fs: f64) -> Vec<f64> {
    assert!(!rf.is_empty(), "empty signal");
    assert!(fc > 0.0 && fs > 0.0, "frequencies must be positive");
    let n = rf.len();
    let w = 2.0 * std::f64::consts::PI * fc / fs;
    let mut i_mix = vec![0.0; n];
    let mut q_mix = vec![0.0; n];
    demodulate_into(rf, w, &mut i_mix, &mut q_mix);
    // Boxcar of exactly one carrier period: its zeros land on the 2·fc
    // mixing image (fs/fc samples per period, 8 for the paper's system).
    let period = boxcar_period(fc, fs);
    let mut out = vec![0.0; n];
    envelope_from_iq_into(&i_mix, &q_mix, period, &mut out);
    out
}

/// Log-compressed envelope in dB relative to its peak, clamped at
/// `floor_db` — the standard B-mode display transform applied to a single
/// trace.
///
/// # Panics
///
/// Panics as [`envelope`] does, or if the envelope is all zeros.
pub fn envelope_db(rf: &[f64], fc: f64, fs: f64, floor_db: f64) -> Vec<f64> {
    let mut env = envelope(rf, fc, fs);
    let peak = env.iter().fold(0.0f64, |m, &v| m.max(v));
    assert!(peak > 0.0, "silent signal has no dB envelope");
    log_compress_into(&mut env, peak, floor_db);
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::try_peak_index;
    use crate::Pulse;

    const FS: f64 = 32.0e6;
    const FC: f64 = 4.0e6;

    #[test]
    fn tone_envelope_is_flat() {
        let rf: Vec<f64> = (0..512)
            .map(|i| (2.0 * std::f64::consts::PI * FC * i as f64 / FS).cos())
            .collect();
        let env = envelope(&rf, FC, FS);
        for &e in &env[32..480] {
            assert!((e - 1.0).abs() < 0.03, "e = {e}");
        }
    }

    #[test]
    fn scaled_tone_scales_envelope() {
        let rf: Vec<f64> = (0..512)
            .map(|i| 0.25 * (2.0 * std::f64::consts::PI * FC * i as f64 / FS).sin())
            .collect();
        let env = envelope(&rf, FC, FS);
        for &e in &env[32..480] {
            assert!((e - 0.25).abs() < 0.01, "e = {e}");
        }
    }

    #[test]
    fn pulse_envelope_peaks_at_pulse_center() {
        let pulse = Pulse::gaussian(FC, 4.0e6, FS);
        let w = pulse.waveform();
        let mut rf = vec![0.0; 400];
        let at = 200 - pulse.half_duration_samples();
        for (k, &v) in w.iter().enumerate() {
            rf[at + k] += v;
        }
        let env = envelope(&rf, FC, FS);
        let peak = try_peak_index(&env).expect("envelope has finite samples");
        assert!((peak as i64 - 200).unsigned_abs() <= 2, "peak at {peak}");
        // The envelope bridges the carrier nulls: two samples off the
        // pulse centre the RF crosses zero (quarter carrier period at
        // fs/fc = 8), but the true envelope is still ≈0.8 there.
        assert!(
            rf[202].abs() < 0.1,
            "expected carrier null, rf = {}",
            rf[202]
        );
        assert!(
            env[202] > 0.5,
            "envelope must bridge the null, env = {}",
            env[202]
        );
    }

    #[test]
    fn envelope_db_peak_is_zero() {
        let rf: Vec<f64> = (0..256)
            .map(|i| (2.0 * std::f64::consts::PI * FC * i as f64 / FS).cos())
            .collect();
        let db = envelope_db(&rf, FC, FS, -60.0);
        let max = db.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((max - 0.0).abs() < 1e-9);
        assert!(db.iter().all(|&v| v >= -60.0));
    }

    #[test]
    fn building_blocks_compose_to_envelope() {
        // The _into building blocks must reproduce the allocating wrapper
        // bit-for-bit: the beamformer's fused post-stages lean on this.
        let rf: Vec<f64> = (0..300)
            .map(|i| {
                let t = i as f64 / FS;
                (2.0 * std::f64::consts::PI * FC * t).cos()
                    * (-(i as f64 - 150.0).powi(2) / 800.0).exp()
            })
            .collect();
        let w = 2.0 * std::f64::consts::PI * FC / FS;
        let mut i_mix = vec![0.0; rf.len()];
        let mut q_mix = vec![0.0; rf.len()];
        let mut out = vec![0.0; rf.len()];
        demodulate_into(&rf, w, &mut i_mix, &mut q_mix);
        envelope_from_iq_into(&i_mix, &q_mix, boxcar_period(FC, FS), &mut out);
        let reference = envelope(&rf, FC, FS);
        assert_eq!(out, reference, "fused blocks diverge from envelope()");
    }

    #[test]
    fn log_compress_handles_zero_and_nan() {
        let mut v = [1.0, 0.5, 0.0, f64::NAN, -0.5];
        log_compress_into(&mut v, 1.0, -60.0);
        assert_eq!(v[0], 0.0);
        assert!((v[1] - 20.0 * 0.5f64.log10()).abs() < 1e-12);
        assert_eq!(v[2], -60.0, "silence clamps to the floor");
        assert_eq!(v[3], -60.0, "NaN clamps to the floor");
        assert!((v[4] - v[1]).abs() < 1e-12, "compression is on |v|");
    }

    #[test]
    fn demodulate_into_empty_is_noop() {
        let mut i_mix: [f64; 0] = [];
        let mut q_mix: [f64; 0] = [];
        demodulate_into(&[], 1.0, &mut i_mix, &mut q_mix);
        let mut out: [f64; 0] = [];
        envelope_from_iq_into(&i_mix, &q_mix, 2, &mut out);
    }

    #[test]
    #[should_panic(expected = "empty signal")]
    fn empty_signal_panics() {
        envelope(&[], FC, FS);
    }

    #[test]
    #[should_panic(expected = "silent signal")]
    fn silent_db_panics() {
        envelope_db(&[0.0; 64], FC, FS, -60.0);
    }
}
