//! Synthetic acoustic substrate: pulses, phantoms, RF echo synthesis and
//! image-quality metrics.
//!
//! The paper evaluates delay architectures against exact delay
//! computation; to validate them *end to end* (through beamformed images)
//! we need receive data. This crate generates it synthetically:
//!
//! * [`Pulse`] — a Gaussian-modulated sinusoid at the probe's centre
//!   frequency and bandwidth (Table I: 4 MHz / 4 MHz);
//! * [`Phantom`] — collections of point scatterers (single points, grids,
//!   random speckle, cyst voids);
//! * [`EchoSynthesizer`] — per-element RF traces: every (scatterer,
//!   element) pair contributes a pulse at the exact two-way propagation
//!   delay of Eq. 2, with optional spreading loss, element directivity and
//!   additive noise;
//! * [`RfFrame`] — the sampled echo buffers (one per element, "slightly
//!   more than 8000 samples" deep at paper scale);
//! * [`metrics`] — FWHM, peak-sidelobe level, RMSE, contrast.
//!
//! This substitutes for probe hardware and tissue: delay-architecture
//! accuracy only depends on propagation-delay geometry, which is computed
//! here in double precision (see DESIGN.md §2).
//!
//! # Example
//!
//! ```
//! use usbf_geometry::{SystemSpec, Vec3};
//! use usbf_sim::{EchoSynthesizer, Phantom, Pulse};
//!
//! let spec = SystemSpec::tiny();
//! let phantom = Phantom::point(Vec3::new(0.0, 0.0, 0.05));
//! let pulse = Pulse::from_spec(&spec);
//! let rf = EchoSynthesizer::new(&spec).synthesize(&phantom, &pulse);
//! assert_eq!(rf.n_elements(), 64);
//! assert!(rf.max_abs() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod echo;
mod envelope;
pub mod metrics;
mod phantom;
mod pulse;
mod rf;

pub use echo::{EchoOptions, EchoSynthesizer};
pub use envelope::{
    boxcar_period, demodulate_into, envelope, envelope_db, envelope_from_iq_into, log_compress_into,
};
pub use phantom::{Phantom, Scatterer};
pub use pulse::Pulse;
pub use rf::RfFrame;
