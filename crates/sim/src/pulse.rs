//! Gaussian-modulated excitation pulse.

use usbf_geometry::SystemSpec;

/// A Gaussian-modulated sinusoid:
/// `p(t) = exp(−t²/(2σ²)) · cos(2π·fc·t)`, where σ is set so the −6 dB
/// spectral full width equals the probe bandwidth.
///
/// ```
/// use usbf_sim::Pulse;
/// let p = Pulse::gaussian(4.0e6, 4.0e6, 32.0e6);
/// assert!((p.sample(0.0) - 1.0).abs() < 1e-12); // unit peak at t = 0
/// assert!(p.sample(p.half_duration()).abs() < 0.05); // tail decays
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pulse {
    center_frequency: f64,
    sigma: f64,
    sampling_frequency: f64,
    half_duration: f64,
}

impl Pulse {
    /// Creates a pulse with the given centre frequency, −6 dB bandwidth
    /// and sampling rate (all Hz).
    ///
    /// # Panics
    ///
    /// Panics if any argument is not positive.
    #[must_use = "the constructed pulse must be used"]
    pub fn gaussian(center_frequency: f64, bandwidth: f64, sampling_frequency: f64) -> Self {
        assert!(center_frequency > 0.0, "center frequency must be positive");
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        assert!(
            sampling_frequency > 0.0,
            "sampling frequency must be positive"
        );
        // Gaussian envelope exp(−t²/2σ²) ↔ spectrum exp(−(2πf)²σ²/2);
        // the −6 dB (amplitude ½) full width B satisfies
        // (π·B)²σ²/2 = ln 2, i.e. σ = √(2 ln 2) / (π·B).
        let sigma = (2.0 * 2f64.ln()).sqrt() / (std::f64::consts::PI * bandwidth);
        Pulse {
            center_frequency,
            sigma,
            sampling_frequency,
            half_duration: 4.0 * sigma,
        }
    }

    /// Pulse matching a system spec's transducer (fc, B) and `fs`.
    #[must_use = "the constructed pulse must be used"]
    pub fn from_spec(spec: &SystemSpec) -> Self {
        Pulse::gaussian(
            spec.transducer.center_frequency,
            spec.transducer.bandwidth,
            spec.sampling_frequency,
        )
    }

    /// Pulse amplitude at time `t` (seconds, 0 = envelope peak).
    #[inline]
    pub fn sample(&self, t: f64) -> f64 {
        if t.abs() > self.half_duration {
            return 0.0;
        }
        (-t * t / (2.0 * self.sigma * self.sigma)).exp()
            * (2.0 * std::f64::consts::PI * self.center_frequency * t).cos()
    }

    /// Envelope standard deviation σ in seconds.
    #[inline]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Half support of the truncated pulse (4σ) in seconds.
    #[inline]
    pub fn half_duration(&self) -> f64 {
        self.half_duration
    }

    /// Half support in samples at the pulse's sampling rate.
    pub fn half_duration_samples(&self) -> usize {
        (self.half_duration * self.sampling_frequency).ceil() as usize
    }

    /// The sampled waveform over `[−4σ, +4σ]`, one entry per sample
    /// period; the peak sits at index [`Pulse::half_duration_samples`].
    pub fn waveform(&self) -> Vec<f64> {
        let h = self.half_duration_samples() as i64;
        (-h..=h)
            .map(|i| self.sample(i as f64 / self.sampling_frequency))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pulse() -> Pulse {
        Pulse::gaussian(4.0e6, 4.0e6, 32.0e6)
    }

    #[test]
    fn peak_is_unity_at_zero() {
        assert_eq!(pulse().sample(0.0), 1.0);
    }

    #[test]
    fn envelope_is_symmetric() {
        let p = pulse();
        for &t in &[1e-7, 2.5e-7, 4e-7] {
            assert!((p.sample(t) - p.sample(-t)).abs() < 1e-12);
        }
    }

    #[test]
    fn support_is_truncated() {
        let p = pulse();
        assert_eq!(p.sample(p.half_duration() * 1.01), 0.0);
        assert_eq!(p.sample(-p.half_duration() * 1.01), 0.0);
    }

    #[test]
    fn waveform_length_and_peak_position() {
        let p = pulse();
        let w = p.waveform();
        assert_eq!(w.len(), 2 * p.half_duration_samples() + 1);
        let (peak_idx, _) = w
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();
        assert_eq!(peak_idx, p.half_duration_samples());
    }

    #[test]
    fn bandwidth_controls_pulse_length() {
        let wideband = Pulse::gaussian(4.0e6, 4.0e6, 32.0e6);
        let narrowband = Pulse::gaussian(4.0e6, 1.0e6, 32.0e6);
        assert!(narrowband.sigma() > wideband.sigma());
        assert!(narrowband.waveform().len() > wideband.waveform().len());
    }

    #[test]
    fn minus_6db_bandwidth_is_respected() {
        // Numerically verify: |P(fc ± B/2)| ≈ ½ |P(fc)| (−6 dB amplitude)
        // for the analytic envelope spectrum exp(−(2πΔf)²σ²/2).
        let p = pulse();
        let at = |df: f64| {
            (-(2.0 * std::f64::consts::PI * df).powi(2) * p.sigma() * p.sigma() / 2.0).exp()
        };
        let half = at(2.0e6); // B/2 = 2 MHz
        assert!((half - 0.5).abs() < 1e-9, "got {half}");
    }

    #[test]
    fn from_spec_uses_table1_values() {
        let p = Pulse::from_spec(&SystemSpec::paper());
        assert_eq!(p.center_frequency, 4.0e6);
        // fs/fc = 8 samples per carrier period.
        let w = p.waveform();
        assert!(
            w.len() > 8,
            "pulse must span multiple samples, got {}",
            w.len()
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn invalid_bandwidth_rejected() {
        let _ = Pulse::gaussian(4.0e6, 0.0, 32.0e6);
    }
}
