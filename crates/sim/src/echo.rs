//! RF echo synthesis: exact two-way propagation into sampled traces.

use crate::{Phantom, Pulse, RfFrame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use usbf_geometry::{Directivity, SystemSpec};

/// Physical options for echo synthesis.
#[derive(Debug, Clone)]
pub struct EchoOptions {
    /// Apply `1/(r_tx·r_rx)` spherical spreading loss (normalized so a
    /// scatterer at 10 mm has unit gain).
    pub spreading: bool,
    /// Element receive directivity weighting (None = omnidirectional).
    pub directivity: Option<Directivity>,
    /// RMS of additive white Gaussian noise (0 = noiseless).
    pub noise_rms: f64,
    /// Noise seed (synthesis is deterministic given the seed).
    pub seed: u64,
}

impl Default for EchoOptions {
    fn default() -> Self {
        EchoOptions {
            spreading: false,
            directivity: None,
            noise_rms: 0.0,
            seed: 0,
        }
    }
}

/// Synthesizes per-element receive traces for a phantom: for every
/// transmit event of the spec's sequence, each (scatterer, element) pair
/// adds a pulse centred at the exact Eq. 2 delay `(d_tx(P) + |P−D|)/c`,
/// where the transmit leg `d_tx` follows the spec's
/// [`TransmitModel`](usbf_geometry::TransmitModel) — `|P−O|` for the
/// historical point emission, the wavefront projection `n̂·P` for a
/// steered plane wave. Plane-wave scatterer amplitudes are additionally
/// scaled by the insonification weight (zero outside the steered
/// aperture footprint), so echoes only come from regions the wave
/// actually sweeps.
#[derive(Debug, Clone)]
pub struct EchoSynthesizer {
    spec: SystemSpec,
    options: EchoOptions,
}

impl EchoSynthesizer {
    /// Creates a synthesizer with default (noiseless, omnidirectional)
    /// options.
    #[must_use]
    pub fn new(spec: &SystemSpec) -> Self {
        EchoSynthesizer {
            spec: spec.clone(),
            options: EchoOptions::default(),
        }
    }

    /// Sets the synthesis options.
    #[must_use = "with_options returns the configured synthesizer; dropping it discards the options"]
    pub fn with_options(mut self, options: EchoOptions) -> Self {
        self.options = options;
        self
    }

    /// The spec this synthesizer was built for.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// Generates one receive frame — one acquisition block per transmit
    /// event of the spec's sequence.
    pub fn synthesize(&self, phantom: &Phantom, pulse: &Pulse) -> RfFrame {
        let spec = &self.spec;
        let mut rf = RfFrame::zeros_multi(
            spec.elements.nx(),
            spec.elements.ny(),
            spec.echo_buffer_len(),
            spec.n_transmits(),
        );
        self.synthesize_into(phantom, pulse, &mut rf);
        rf
    }

    /// Generates one receive frame into a caller-owned buffer, clearing
    /// it first — the allocation-free variant real-time frame sources
    /// drive every acquisition ([`synthesize`](Self::synthesize) is this
    /// plus one fresh allocation, and the two are bit-identical).
    ///
    /// # Panics
    ///
    /// Panics if `rf`'s shape does not match the spec: the element grid
    /// must be exactly `nx × ny` (a transposed grid would silently route
    /// traces to the wrong elements) and the trace depth must be the
    /// spec's echo-buffer length (a shorter buffer would silently
    /// truncate echoes).
    pub fn synthesize_into(&self, phantom: &Phantom, pulse: &Pulse, rf: &mut RfFrame) {
        let spec = &self.spec;
        assert!(
            rf.nx() == spec.elements.nx()
                && rf.ny() == spec.elements.ny()
                && rf.n_samples() == spec.echo_buffer_len()
                && rf.n_transmits() == spec.n_transmits(),
            "RF frame shape {}x{}x{}x{} must match the spec's {}x{}x{}x{}",
            rf.n_transmits(),
            rf.nx(),
            rf.ny(),
            rf.n_samples(),
            spec.n_transmits(),
            spec.elements.nx(),
            spec.elements.ny(),
            spec.echo_buffer_len()
        );
        rf.fill(0.0);
        let n_samples = rf.n_samples();
        let half = pulse.half_duration_samples() as i64;
        let fs = spec.sampling_frequency;

        for tx in 0..spec.n_transmits() {
            for e in spec.elements.iter() {
                let d = spec.elements.position(e);
                let trace = rf.trace_for_mut(tx, e);
                for s in phantom.scatterers() {
                    let r_tx = spec.transmit_distance(tx, s.position);
                    let r_rx = s.position.distance(d);
                    let t = (r_tx + r_rx) / spec.speed_of_sound;
                    let center = t * fs;
                    let mut amp = s.amplitude * spec.transmit_weight(tx, s.position);
                    if self.options.spreading {
                        let norm = 10.0e-3;
                        amp *= (norm * norm) / (r_tx.max(1e-6) * r_rx.max(1e-6));
                    }
                    if let Some(dir) = &self.options.directivity {
                        amp *= dir.weight(s.position, d);
                    }
                    if amp == 0.0 {
                        continue;
                    }
                    let lo = ((center.ceil() as i64) - half).max(0);
                    let hi = ((center.floor() as i64) + half).min(n_samples as i64 - 1);
                    for i in lo..=hi {
                        trace[i as usize] += amp * pulse.sample((i as f64 - center) / fs);
                    }
                }
            }
        }

        if self.options.noise_rms > 0.0 {
            // Every transmit event is its own acquisition, so each block
            // gets independent noise from the one seeded stream.
            let mut rng = StdRng::seed_from_u64(self.options.seed);
            for tx in 0..spec.n_transmits() {
                for e in spec.elements.iter() {
                    for v in rf.trace_for_mut(tx, e) {
                        // Box–Muller: two uniforms → one standard normal.
                        let u1: f64 = rng.random_range(f64::EPSILON..1.0);
                        let u2: f64 = rng.random_range(0.0..1.0);
                        let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                        *v += self.options.noise_rms * n;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usbf_geometry::{deg, ElementIndex, Vec3};

    fn spec() -> SystemSpec {
        SystemSpec::tiny()
    }

    #[test]
    fn echo_lands_at_exact_delay() {
        let spec = spec();
        let target = Vec3::new(0.0, 0.0, 0.05);
        let rf = EchoSynthesizer::new(&spec)
            .synthesize(&Phantom::point(target), &Pulse::from_spec(&spec));
        // Find the peak of one element's trace; it must sit at the
        // rounded two-way delay.
        let e = ElementIndex::new(3, 3);
        let trace = rf.trace(e);
        let expect = spec.two_way_delay_samples(target, spec.elements.position(e));
        let (peak, _) = trace
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();
        assert!(
            (peak as f64 - expect).abs() <= 1.0,
            "peak {peak} vs expected {expect}"
        );
    }

    #[test]
    fn empty_phantom_gives_silence() {
        let spec = spec();
        let rf =
            EchoSynthesizer::new(&spec).synthesize(&Phantom::empty(), &Pulse::from_spec(&spec));
        assert_eq!(rf.max_abs(), 0.0);
    }

    #[test]
    fn spreading_attenuates_deep_targets() {
        let spec = spec();
        let near = Phantom::point(Vec3::new(0.0, 0.0, 0.02));
        let far = Phantom::point(Vec3::new(0.0, 0.0, 0.12));
        let synth = EchoSynthesizer::new(&spec).with_options(EchoOptions {
            spreading: true,
            ..EchoOptions::default()
        });
        let pulse = Pulse::from_spec(&spec);
        let rf_near = synth.synthesize(&near, &pulse);
        let rf_far = synth.synthesize(&far, &pulse);
        assert!(rf_near.max_abs() > rf_far.max_abs());
    }

    #[test]
    fn directivity_silences_steep_targets() {
        let spec = spec();
        // A target far off-axis at shallow depth: outside every element's
        // 10° cone.
        let target = Phantom::point(Vec3::new(0.05, 0.0, 0.005));
        let synth = EchoSynthesizer::new(&spec).with_options(EchoOptions {
            directivity: Some(Directivity::new(deg(10.0), 1.0)),
            ..EchoOptions::default()
        });
        let rf = synth.synthesize(&target, &Pulse::from_spec(&spec));
        assert_eq!(rf.max_abs(), 0.0);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let spec = spec();
        let opts = EchoOptions {
            noise_rms: 0.1,
            seed: 42,
            ..EchoOptions::default()
        };
        let synth = EchoSynthesizer::new(&spec).with_options(opts.clone());
        let pulse = Pulse::from_spec(&spec);
        let a = synth.synthesize(&Phantom::empty(), &pulse);
        let b = synth.synthesize(&Phantom::empty(), &pulse);
        assert_eq!(a, b);
        let c = EchoSynthesizer::new(&spec)
            .with_options(EchoOptions { seed: 43, ..opts })
            .synthesize(&Phantom::empty(), &pulse);
        assert_ne!(a, c);
    }

    #[test]
    fn noise_rms_is_calibrated() {
        let spec = spec();
        let rf = EchoSynthesizer::new(&spec)
            .with_options(EchoOptions {
                noise_rms: 0.5,
                seed: 1,
                ..EchoOptions::default()
            })
            .synthesize(&Phantom::empty(), &Pulse::from_spec(&spec));
        let n = (rf.n_elements() * rf.n_samples()) as f64;
        let rms = (rf.energy() / n).sqrt();
        assert!((rms - 0.5).abs() < 0.02, "rms = {rms}");
    }

    #[test]
    fn synthesize_into_matches_synthesize_bit_exactly() {
        let spec = spec();
        let phantom = Phantom::point(Vec3::new(0.002, -0.001, 0.04));
        let pulse = Pulse::from_spec(&spec);
        let synth = EchoSynthesizer::new(&spec).with_options(EchoOptions {
            noise_rms: 0.05,
            seed: 9,
            spreading: true,
            ..EchoOptions::default()
        });
        let fresh = synth.synthesize(&phantom, &pulse);
        // A dirty, reused buffer must come out identical: synthesize_into
        // clears before accumulating.
        let mut reused = RfFrame::zeros(8, 8, spec.echo_buffer_len());
        reused.fill(123.0);
        let ptr = reused.trace(ElementIndex::new(0, 0)).as_ptr();
        synth.synthesize_into(&phantom, &pulse, &mut reused);
        assert_eq!(reused, fresh);
        assert_eq!(
            reused.trace(ElementIndex::new(0, 0)).as_ptr(),
            ptr,
            "no reallocation"
        );
    }

    #[test]
    #[should_panic(expected = "must match the spec")]
    fn synthesize_into_rejects_mismatched_frames() {
        let spec = spec();
        let mut rf = RfFrame::zeros(4, 4, 64);
        EchoSynthesizer::new(&spec).synthesize_into(
            &Phantom::empty(),
            &Pulse::from_spec(&spec),
            &mut rf,
        );
    }

    #[test]
    #[should_panic(expected = "must match the spec")]
    fn synthesize_into_rejects_transposed_grids() {
        // Same element *count*, wrong shape: must be rejected, not
        // silently routed to the wrong traces.
        let base = spec();
        let wide = SystemSpec::new(
            base.speed_of_sound,
            base.sampling_frequency,
            usbf_geometry::TransducerSpec {
                nx: 16,
                ny: 4,
                ..base.transducer.clone()
            },
            base.volume.clone(),
            base.origin,
            base.frame_rate,
        );
        let mut rf = RfFrame::zeros(4, 16, wide.echo_buffer_len());
        EchoSynthesizer::new(&wide).synthesize_into(
            &Phantom::empty(),
            &Pulse::from_spec(&wide),
            &mut rf,
        );
    }

    #[test]
    fn plane_wave_echo_lands_at_projected_delay() {
        let theta = deg(8.0);
        let spec = SystemSpec::tiny()
            .with_transmits(vec![usbf_geometry::TransmitModel::plane_wave(theta, 0.0)]);
        // On the steering ray: back-projecting along n̂ lands at the
        // aperture centre, so the wave fully insonifies the target.
        let dir = usbf_geometry::SphericalDirection::new(theta, 0.0).unit();
        let target = Vec3::new(dir.x * 0.05, dir.y * 0.05, dir.z * 0.05);
        let rf = EchoSynthesizer::new(&spec)
            .synthesize(&Phantom::point(target), &Pulse::from_spec(&spec));
        let e = ElementIndex::new(3, 3);
        let trace = rf.trace_for(0, e);
        let n = usbf_geometry::SphericalDirection::new(theta, 0.0).unit();
        let expect =
            spec.metres_to_samples(n.dot(target) + target.distance(spec.elements.position(e)));
        let (peak, _) = trace
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();
        assert!(
            (peak as f64 - expect).abs() <= 1.0,
            "peak {peak} vs expected {expect}"
        );
    }

    #[test]
    fn compound_blocks_match_per_angle_synthesis() {
        // Each transmit block of a compound frame must be bit-identical
        // to synthesizing that angle alone with a single-transmit spec.
        let fan = usbf_geometry::TransmitModel::plane_wave_fan(3, deg(10.0));
        let spec = SystemSpec::tiny().with_transmits(fan.clone());
        let phantom = Phantom::point(Vec3::new(0.002, -0.001, 0.045));
        let pulse = Pulse::from_spec(&spec);
        let compound = EchoSynthesizer::new(&spec).synthesize(&phantom, &pulse);
        assert_eq!(compound.n_transmits(), 3);
        for (tx, model) in fan.iter().enumerate() {
            let single_spec = SystemSpec::tiny().with_transmits(vec![*model]);
            let single = EchoSynthesizer::new(&single_spec).synthesize(&phantom, &pulse);
            for e in spec.elements.iter() {
                for (a, b) in compound.trace_for(tx, e).iter().zip(single.trace(e)) {
                    assert_eq!(a.to_bits(), b.to_bits(), "tx {tx} element {e}");
                }
            }
        }
    }

    #[test]
    fn steered_footprint_silences_excluded_targets() {
        // A hard-steered wave never sweeps a target far on the opposite
        // side of the aperture footprint: its block stays silent while an
        // unsteered emission still hears the target.
        let spec = SystemSpec::tiny().with_transmits(vec![
            usbf_geometry::TransmitModel::plane_wave(0.0, 0.0),
            usbf_geometry::TransmitModel::plane_wave(deg(35.0), 0.0),
        ]);
        // On axis: inside the straight-down footprint; the hard-steered
        // wave's footprint back-projects tens of millimetres off-axis,
        // far outside the tiny aperture.
        let phantom = Phantom::point(Vec3::new(0.0, 0.0, 0.09));
        let rf = EchoSynthesizer::new(&spec).synthesize(&phantom, &Pulse::from_spec(&spec));
        let e = ElementIndex::new(3, 3);
        let loud: f64 = rf.trace_for(0, e).iter().map(|v| v.abs()).sum();
        let silent: f64 = rf.trace_for(1, e).iter().map(|v| v.abs()).sum();
        assert!(loud > 0.0, "unsteered block must hear the target");
        assert_eq!(silent, 0.0, "steered-away block must stay silent");
    }

    #[test]
    fn two_scatterers_superpose() {
        let spec = spec();
        let pulse = Pulse::from_spec(&spec);
        let a = Phantom::point(Vec3::new(0.0, 0.0, 0.03));
        let b = Phantom::point(Vec3::new(0.0, 0.0, 0.09));
        let mut both = a.clone();
        both.extend(&b);
        let synth = EchoSynthesizer::new(&spec);
        let rf_a = synth.synthesize(&a, &pulse);
        let rf_b = synth.synthesize(&b, &pulse);
        let rf_ab = synth.synthesize(&both, &pulse);
        let e = ElementIndex::new(0, 0);
        for i in 0..rf_ab.n_samples() {
            let sum = rf_a.sample(e, i as i64) + rf_b.sample(e, i as i64);
            assert!((rf_ab.sample(e, i as i64) - sum).abs() < 1e-12);
        }
    }
}
