//! Sampled RF receive data: one echo buffer per element.

use usbf_geometry::ElementIndex;

/// A frame of receive data: `n_elements` traces of `n_samples` each,
/// sampled at the system's `fs`. Element traces are stored row-major in
/// the transducer's linear order (`iy·nx + ix`).
///
/// A frame may hold the acquisitions of several **transmit events**
/// (coherent plane-wave compounding fires the full aperture once per
/// steering angle and keeps every acquisition until the compound sum):
/// the sample buffer is transmit-major, one full `n_elements ×
/// n_samples` block per transmit. A single-transmit frame
/// ([`RfFrame::zeros`]) is block 0 alone, so every historical accessor
/// keeps its meaning unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct RfFrame {
    data: Vec<f64>,
    nx: usize,
    ny: usize,
    n_samples: usize,
    n_transmits: usize,
    /// Start offset of every channel's trace within one transmit block,
    /// in linear element order — precomputed once so the gather paths
    /// never re-derive `linear(e) * n_samples` per fetch.
    bases: Vec<usize>,
}

impl RfFrame {
    /// Allocates a zeroed single-transmit frame for an `nx × ny` probe
    /// with `n_samples` per trace.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(nx: usize, ny: usize, n_samples: usize) -> Self {
        Self::zeros_multi(nx, ny, n_samples, 1)
    }

    /// Allocates a zeroed frame holding `n_transmits` acquisitions — one
    /// `nx × ny × n_samples` block per transmit event of a compound
    /// sequence.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros_multi(nx: usize, ny: usize, n_samples: usize, n_transmits: usize) -> Self {
        assert!(
            nx > 0 && ny > 0 && n_samples > 0 && n_transmits > 0,
            "dimensions must be nonzero"
        );
        RfFrame {
            data: vec![0.0; n_transmits * nx * ny * n_samples],
            nx,
            ny,
            n_samples,
            n_transmits,
            bases: (0..nx * ny).map(|l| l * n_samples).collect(),
        }
    }

    /// Number of element traces.
    #[inline]
    pub fn n_elements(&self) -> usize {
        self.nx * self.ny
    }

    /// Element-grid width (probe `nx`).
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Element-grid height (probe `ny`).
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Samples per trace (the echo-buffer depth).
    #[inline]
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Transmit acquisitions held by this frame (1 for the classic
    /// single-emission frame).
    #[inline]
    pub fn n_transmits(&self) -> usize {
        self.n_transmits
    }

    /// Flat-sample offset of transmit block `tx`.
    #[inline]
    fn transmit_base(&self, tx: usize) -> usize {
        debug_assert!(tx < self.n_transmits, "transmit {tx} out of range");
        tx * self.nx * self.ny * self.n_samples
    }

    #[inline]
    fn linear(&self, e: ElementIndex) -> usize {
        debug_assert!(e.ix < self.nx && e.iy < self.ny, "element {e} out of range");
        e.iy * self.nx + e.ix
    }

    /// One element's full trace (transmit 0).
    pub fn trace(&self, e: ElementIndex) -> &[f64] {
        self.trace_for(0, e)
    }

    /// Mutable trace access for transmit 0 (used by the synthesizer).
    pub fn trace_mut(&mut self, e: ElementIndex) -> &mut [f64] {
        self.trace_for_mut(0, e)
    }

    /// One element's trace of transmit event `tx`.
    pub fn trace_for(&self, tx: usize, e: ElementIndex) -> &[f64] {
        let start = self.transmit_base(tx) + self.linear(e) * self.n_samples;
        &self.data[start..start + self.n_samples]
    }

    /// Mutable trace access for transmit event `tx`.
    pub fn trace_for_mut(&mut self, tx: usize, e: ElementIndex) -> &mut [f64] {
        let start = self.transmit_base(tx) + self.linear(e) * self.n_samples;
        &mut self.data[start..start + self.n_samples]
    }

    /// Sample `idx` of element `e` (transmit 0), with out-of-range
    /// indices reading as zero (the hardware clamps fetches to the buffer
    /// window; zero keeps clamped fetches from biasing sums).
    #[inline]
    pub fn sample(&self, e: ElementIndex, idx: i64) -> f64 {
        self.sample_for(0, e, idx)
    }

    /// Sample `idx` of element `e` in transmit block `tx`, with
    /// out-of-range indices reading as zero.
    #[inline]
    pub fn sample_for(&self, tx: usize, e: ElementIndex, idx: i64) -> f64 {
        if idx < 0 || idx >= self.n_samples as i64 {
            return 0.0;
        }
        let l = self.linear(e);
        self.data[self.transmit_base(tx) + l * self.n_samples + idx as usize]
    }

    /// Linearly interpolated fractional-sample read of transmit 0
    /// (extension beyond the paper's nearest-index fetch).
    #[inline]
    pub fn sample_interp(&self, e: ElementIndex, t: f64) -> f64 {
        self.sample_interp_for(0, e, t)
    }

    /// Linearly interpolated fractional-sample read of transmit `tx`.
    #[inline]
    pub fn sample_interp_for(&self, tx: usize, e: ElementIndex, t: f64) -> f64 {
        let i0 = t.floor() as i64;
        let frac = t - i0 as f64;
        self.sample_for(tx, e, i0) * (1.0 - frac) + self.sample_for(tx, e, i0 + 1) * frac
    }

    /// Start offset of every channel's trace in the flat sample buffer,
    /// in linear element order (`iy·nx + ix`) — precomputed at
    /// construction for the gather paths.
    #[inline]
    pub fn channel_bases(&self) -> &[usize] {
        &self.bases
    }

    /// Gathers one nearest-index sample per channel: for each position
    /// `k`, reads sample `indices[k]` of flat channel `channels[k]` into
    /// `out[k]`. Out-of-window indices read as `0.0` through a branchless
    /// in-range mask — the same clamped-fetch semantics as
    /// [`RfFrame::sample`], without its per-fetch channel-offset
    /// recompute or early return. This is the fetch stage of the
    /// beamformer's vectorized inner kernel.
    ///
    /// # Panics
    ///
    /// Panics if the three slices differ in length or a channel is out of
    /// range.
    #[inline]
    pub fn gather_nearest_into(&self, channels: &[u32], indices: &[i32], out: &mut [f64]) {
        self.gather_nearest_into_for(0, channels, indices, out);
    }

    /// [`gather_nearest_into`](Self::gather_nearest_into) over transmit
    /// block `tx` — the fetch stage of the compound kernel, reading one
    /// steering angle's acquisition. Transmit 0 is bit-identical to the
    /// single-transmit gather (the block offset is zero).
    ///
    /// # Panics
    ///
    /// Panics if the three slices differ in length or a channel is out of
    /// range.
    #[inline]
    pub fn gather_nearest_into_for(
        &self,
        tx: usize,
        channels: &[u32],
        indices: &[i32],
        out: &mut [f64],
    ) {
        assert_eq!(channels.len(), indices.len(), "one index per channel");
        assert_eq!(channels.len(), out.len(), "one output slot per channel");
        let n = self.n_samples;
        let base = self.transmit_base(tx);
        // Four independent fetch lanes per iteration: each lane is a pure
        // load + select with no cross-lane dependency, so unrolling wides
        // the memory-level parallelism without touching the arithmetic —
        // every lane computes exactly what the scalar loop computes, and
        // no accumulation exists to reassociate, so the unroll is
        // trivially bit-identical.
        let mut oc = out.chunks_exact_mut(4);
        let mut cc = channels.chunks_exact(4);
        let mut ic = indices.chunks_exact(4);
        for ((o, c), i) in (&mut oc).zip(&mut cc).zip(&mut ic) {
            o[0] = self.fetch_nearest(base, c[0], i[0], n);
            o[1] = self.fetch_nearest(base, c[1], i[1], n);
            o[2] = self.fetch_nearest(base, c[2], i[2], n);
            o[3] = self.fetch_nearest(base, c[3], i[3], n);
        }
        for ((o, &c), &i) in oc
            .into_remainder()
            .iter_mut()
            .zip(cc.remainder())
            .zip(ic.remainder())
        {
            *o = self.fetch_nearest(base, c, i, n);
        }
    }

    /// One nearest-index fetch lane of the gather: negative indices wrap
    /// to huge values under the unsigned compare, so one test covers both
    /// window edges; the conditional compiles to a select, not a branch,
    /// and the masked fetch reads the trace head so it never faults.
    #[inline(always)]
    fn fetch_nearest(&self, base: usize, c: u32, i: i32, n: usize) -> f64 {
        let inside = (i as usize) < n;
        let v = self.data[base + self.bases[c as usize] + if inside { i as usize } else { 0 }];
        if inside {
            v
        } else {
            0.0
        }
    }

    /// Gathers one linearly interpolated sample per channel: for each
    /// position `k`, reads the fractional delay `delays[k]` of flat
    /// channel `channels[k]` into `out[k]`, bit-identical to
    /// [`RfFrame::sample_interp`] (same floor/blend arithmetic, same
    /// zero reads outside the window) with the channel offset looked up
    /// once and branchless edge masks.
    ///
    /// # Panics
    ///
    /// Panics if the three slices differ in length or a channel is out of
    /// range.
    #[inline]
    pub fn gather_linear_into(&self, channels: &[u32], delays: &[f64], out: &mut [f64]) {
        self.gather_linear_into_for(0, channels, delays, out);
    }

    /// [`gather_linear_into`](Self::gather_linear_into) over transmit
    /// block `tx`. Transmit 0 is bit-identical to the single-transmit
    /// gather.
    ///
    /// # Panics
    ///
    /// Panics if the three slices differ in length or a channel is out of
    /// range.
    #[inline]
    pub fn gather_linear_into_for(
        &self,
        tx: usize,
        channels: &[u32],
        delays: &[f64],
        out: &mut [f64],
    ) {
        assert_eq!(channels.len(), delays.len(), "one delay per channel");
        assert_eq!(channels.len(), out.len(), "one output slot per channel");
        let n = self.n_samples as u64;
        let tx_base = self.transmit_base(tx);
        // Same 4-lane unroll as the nearest gather: each lane's
        // floor/blend arithmetic is per-element and independent, so the
        // unroll stays bit-identical to the scalar loop.
        let mut oc = out.chunks_exact_mut(4);
        let mut cc = channels.chunks_exact(4);
        let mut dc = delays.chunks_exact(4);
        for ((o, c), t) in (&mut oc).zip(&mut cc).zip(&mut dc) {
            o[0] = self.fetch_linear(tx_base, c[0], t[0], n);
            o[1] = self.fetch_linear(tx_base, c[1], t[1], n);
            o[2] = self.fetch_linear(tx_base, c[2], t[2], n);
            o[3] = self.fetch_linear(tx_base, c[3], t[3], n);
        }
        for ((o, &c), &t) in oc
            .into_remainder()
            .iter_mut()
            .zip(cc.remainder())
            .zip(dc.remainder())
        {
            *o = self.fetch_linear(tx_base, c, t, n);
        }
    }

    /// One linear-interpolation fetch lane: the same floor/blend
    /// arithmetic as [`RfFrame::sample_interp`], with branchless edge
    /// masks on both neighbouring reads.
    #[inline(always)]
    fn fetch_linear(&self, tx_base: usize, c: u32, t: f64, n: u64) -> f64 {
        let base = tx_base + self.bases[c as usize];
        let i0 = t.floor() as i64;
        let frac = t - i0 as f64;
        let in0 = (i0 as u64) < n;
        let in1 = ((i0 + 1) as u64) < n;
        let r0 = self.data[base + if in0 { i0 as usize } else { 0 }];
        let r1 = self.data[base + if in1 { (i0 + 1) as usize } else { 0 }];
        let v0 = if in0 { r0 } else { 0.0 };
        let v1 = if in1 { r1 } else { 0.0 };
        v0 * (1.0 - frac) + v1 * frac
    }

    /// Sets every sample of every trace to `value` (no reallocation) —
    /// how warm frame buffers are cleared between acquisitions.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Copies another frame's samples into this one, reusing this
    /// frame's buffer — the handoff a prerecorded frame ring performs
    /// per acquisition.
    ///
    /// # Panics
    ///
    /// Panics if the two frames' dimensions differ.
    pub fn copy_from(&mut self, src: &RfFrame) {
        assert!(
            self.nx == src.nx
                && self.ny == src.ny
                && self.n_samples == src.n_samples
                && self.n_transmits == src.n_transmits,
            "frame shapes must match: {}x{}x{}x{} vs {}x{}x{}x{}",
            self.n_transmits,
            self.nx,
            self.ny,
            self.n_samples,
            src.n_transmits,
            src.nx,
            src.ny,
            src.n_samples
        );
        self.data.copy_from_slice(&src.data);
    }

    /// Largest |sample| in the frame.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Total energy (sum of squares).
    pub fn energy(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_independent() {
        let mut rf = RfFrame::zeros(3, 2, 10);
        rf.trace_mut(ElementIndex::new(1, 0))[5] = 2.5;
        assert_eq!(rf.sample(ElementIndex::new(1, 0), 5), 2.5);
        assert_eq!(rf.sample(ElementIndex::new(0, 0), 5), 0.0);
        assert_eq!(rf.sample(ElementIndex::new(1, 1), 5), 0.0);
    }

    #[test]
    fn out_of_range_reads_zero() {
        let rf = RfFrame::zeros(2, 2, 8);
        let e = ElementIndex::new(0, 0);
        assert_eq!(rf.sample(e, -1), 0.0);
        assert_eq!(rf.sample(e, 8), 0.0);
        assert_eq!(rf.sample(e, 7), 0.0);
    }

    #[test]
    fn interpolation_is_linear() {
        let mut rf = RfFrame::zeros(1, 1, 4);
        let e = ElementIndex::new(0, 0);
        rf.trace_mut(e).copy_from_slice(&[0.0, 1.0, 3.0, 0.0]);
        assert_eq!(rf.sample_interp(e, 1.0), 1.0);
        assert!((rf.sample_interp(e, 1.5) - 2.0).abs() < 1e-12);
        assert!((rf.sample_interp(e, 0.25) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn channel_bases_cover_every_trace() {
        let rf = RfFrame::zeros(3, 2, 10);
        assert_eq!(rf.channel_bases(), &[0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn gather_nearest_matches_per_element_sample() {
        let mut rf = RfFrame::zeros(3, 2, 4);
        for (l, e) in [(0, (0, 0)), (2, (2, 0)), (4, (1, 1))] {
            let e = ElementIndex::new(e.0, e.1);
            for (i, v) in rf.trace_mut(e).iter_mut().enumerate() {
                *v = -(l as f64) - i as f64 * 0.25;
            }
        }
        let channels: Vec<u32> = (0..6).collect();
        let indices = [0i32, -1, 3, 4, 2, 1];
        let mut out = [9.0; 6];
        rf.gather_nearest_into(&channels, &indices, &mut out);
        for ((&c, &i), &o) in channels.iter().zip(&indices).zip(&out) {
            let e = ElementIndex::new(c as usize % 3, c as usize / 3);
            assert_eq!(o, rf.sample(e, i as i64), "channel {c} index {i}");
        }
    }

    #[test]
    fn gather_linear_matches_per_element_interp() {
        let mut rf = RfFrame::zeros(2, 2, 4);
        for e in [ElementIndex::new(0, 0), ElementIndex::new(1, 1)] {
            rf.trace_mut(e).copy_from_slice(&[-1.0, 2.0, -3.0, 4.0]);
        }
        let channels = [0u32, 1, 2, 3, 0, 3];
        let delays = [0.5, 1.25, -0.75, 3.5, -2.0, 2.999];
        let mut out = [0.0; 6];
        rf.gather_linear_into(&channels, &delays, &mut out);
        for ((&c, &t), &o) in channels.iter().zip(&delays).zip(&out) {
            let e = ElementIndex::new(c as usize % 2, c as usize / 2);
            assert_eq!(
                o.to_bits(),
                rf.sample_interp(e, t).to_bits(),
                "channel {c} delay {t}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "one index per channel")]
    fn gather_rejects_length_mismatch() {
        let rf = RfFrame::zeros(2, 2, 4);
        rf.gather_nearest_into(&[0, 1], &[0], &mut [0.0, 0.0]);
    }

    #[test]
    fn energy_and_max_abs() {
        let mut rf = RfFrame::zeros(1, 2, 3);
        rf.trace_mut(ElementIndex::new(0, 0))
            .copy_from_slice(&[1.0, -2.0, 0.0]);
        assert_eq!(rf.max_abs(), 2.0);
        assert_eq!(rf.energy(), 5.0);
    }

    #[test]
    #[should_panic(expected = "dimensions must be nonzero")]
    fn zero_dimension_rejected() {
        RfFrame::zeros(0, 1, 1);
    }

    #[test]
    fn fill_and_copy_from_reuse_the_buffer() {
        let mut src = RfFrame::zeros(2, 2, 4);
        src.trace_mut(ElementIndex::new(1, 1))
            .copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let mut dst = RfFrame::zeros(2, 2, 4);
        dst.fill(9.0);
        let ptr = dst.trace(ElementIndex::new(0, 0)).as_ptr();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.trace(ElementIndex::new(0, 0)).as_ptr(), ptr);
    }

    #[test]
    #[should_panic(expected = "frame shapes must match")]
    fn copy_from_rejects_shape_mismatch() {
        let src = RfFrame::zeros(2, 2, 4);
        RfFrame::zeros(2, 2, 5).copy_from(&src);
    }

    #[test]
    #[should_panic(expected = "frame shapes must match")]
    fn copy_from_rejects_transmit_count_mismatch() {
        let src = RfFrame::zeros_multi(2, 2, 4, 3);
        RfFrame::zeros_multi(2, 2, 4, 2).copy_from(&src);
    }

    #[test]
    fn transmit_blocks_are_independent() {
        let mut rf = RfFrame::zeros_multi(2, 2, 4, 3);
        let e = ElementIndex::new(1, 0);
        rf.trace_for_mut(1, e)[2] = 7.5;
        assert_eq!(rf.sample_for(1, e, 2), 7.5);
        assert_eq!(rf.sample_for(0, e, 2), 0.0);
        assert_eq!(rf.sample_for(2, e, 2), 0.0);
        // Transmit 0 is the historical single-transmit view.
        assert_eq!(rf.trace(e), rf.trace_for(0, e));
        assert_eq!(rf.sample(e, 2), rf.sample_for(0, e, 2));
    }

    #[test]
    fn multi_transmit_gathers_read_their_block() {
        let mut rf = RfFrame::zeros_multi(2, 1, 4, 2);
        let e = ElementIndex::new(0, 0);
        rf.trace_for_mut(0, e)
            .copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        rf.trace_for_mut(1, e)
            .copy_from_slice(&[-1.0, -2.0, -3.0, -4.0]);
        let channels = [0u32, 0];
        let mut out = [0.0; 2];
        rf.gather_nearest_into_for(1, &channels, &[1, 3], &mut out);
        assert_eq!(out, [-2.0, -4.0]);
        rf.gather_linear_into_for(1, &channels, &[0.5, 2.0], &mut out);
        assert_eq!(out[0].to_bits(), rf.sample_interp_for(1, e, 0.5).to_bits());
        assert_eq!(out[1], -3.0);
        // The tx-0 gathers match the historical single-transmit gathers.
        let mut a = [0.0; 2];
        let mut b = [0.0; 2];
        rf.gather_nearest_into(&channels, &[0, 2], &mut a);
        rf.gather_nearest_into_for(0, &channels, &[0, 2], &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn single_transmit_frames_report_one_transmit() {
        assert_eq!(RfFrame::zeros(2, 2, 4).n_transmits(), 1);
        assert_eq!(RfFrame::zeros_multi(2, 2, 4, 5).n_transmits(), 5);
    }
}
