//! Sampled RF receive data: one echo buffer per element.

use usbf_geometry::ElementIndex;

/// A frame of receive data: `n_elements` traces of `n_samples` each,
/// sampled at the system's `fs`. Element traces are stored row-major in
/// the transducer's linear order (`iy·nx + ix`).
#[derive(Debug, Clone, PartialEq)]
pub struct RfFrame {
    data: Vec<f64>,
    nx: usize,
    ny: usize,
    n_samples: usize,
    /// Start offset of every channel's trace in `data`, in linear element
    /// order — precomputed once so the gather paths never re-derive
    /// `linear(e) * n_samples` per fetch.
    bases: Vec<usize>,
}

impl RfFrame {
    /// Allocates a zeroed frame for an `nx × ny` probe with `n_samples`
    /// per trace.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(nx: usize, ny: usize, n_samples: usize) -> Self {
        assert!(
            nx > 0 && ny > 0 && n_samples > 0,
            "dimensions must be nonzero"
        );
        RfFrame {
            data: vec![0.0; nx * ny * n_samples],
            nx,
            ny,
            n_samples,
            bases: (0..nx * ny).map(|l| l * n_samples).collect(),
        }
    }

    /// Number of element traces.
    #[inline]
    pub fn n_elements(&self) -> usize {
        self.nx * self.ny
    }

    /// Element-grid width (probe `nx`).
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Element-grid height (probe `ny`).
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Samples per trace (the echo-buffer depth).
    #[inline]
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    #[inline]
    fn linear(&self, e: ElementIndex) -> usize {
        debug_assert!(e.ix < self.nx && e.iy < self.ny, "element {e} out of range");
        e.iy * self.nx + e.ix
    }

    /// One element's full trace.
    pub fn trace(&self, e: ElementIndex) -> &[f64] {
        let l = self.linear(e);
        &self.data[l * self.n_samples..(l + 1) * self.n_samples]
    }

    /// Mutable trace access (used by the synthesizer).
    pub fn trace_mut(&mut self, e: ElementIndex) -> &mut [f64] {
        let l = self.linear(e);
        &mut self.data[l * self.n_samples..(l + 1) * self.n_samples]
    }

    /// Sample `idx` of element `e`, with out-of-range indices reading as
    /// zero (the hardware clamps fetches to the buffer window; zero keeps
    /// clamped fetches from biasing sums).
    #[inline]
    pub fn sample(&self, e: ElementIndex, idx: i64) -> f64 {
        if idx < 0 || idx >= self.n_samples as i64 {
            return 0.0;
        }
        let l = self.linear(e);
        self.data[l * self.n_samples + idx as usize]
    }

    /// Linearly interpolated fractional-sample read (extension beyond the
    /// paper's nearest-index fetch).
    #[inline]
    pub fn sample_interp(&self, e: ElementIndex, t: f64) -> f64 {
        let i0 = t.floor() as i64;
        let frac = t - i0 as f64;
        self.sample(e, i0) * (1.0 - frac) + self.sample(e, i0 + 1) * frac
    }

    /// Start offset of every channel's trace in the flat sample buffer,
    /// in linear element order (`iy·nx + ix`) — precomputed at
    /// construction for the gather paths.
    #[inline]
    pub fn channel_bases(&self) -> &[usize] {
        &self.bases
    }

    /// Gathers one nearest-index sample per channel: for each position
    /// `k`, reads sample `indices[k]` of flat channel `channels[k]` into
    /// `out[k]`. Out-of-window indices read as `0.0` through a branchless
    /// in-range mask — the same clamped-fetch semantics as
    /// [`RfFrame::sample`], without its per-fetch channel-offset
    /// recompute or early return. This is the fetch stage of the
    /// beamformer's vectorized inner kernel.
    ///
    /// # Panics
    ///
    /// Panics if the three slices differ in length or a channel is out of
    /// range.
    #[inline]
    pub fn gather_nearest_into(&self, channels: &[u32], indices: &[i32], out: &mut [f64]) {
        assert_eq!(channels.len(), indices.len(), "one index per channel");
        assert_eq!(channels.len(), out.len(), "one output slot per channel");
        let n = self.n_samples;
        for ((o, &c), &i) in out.iter_mut().zip(channels).zip(indices) {
            // Negative indices wrap to huge values under the unsigned
            // compare, so one test covers both window edges; the
            // conditional compiles to a select, not a branch, and the
            // masked fetch reads the trace head so it never faults.
            let inside = (i as usize) < n;
            let v = self.data[self.bases[c as usize] + if inside { i as usize } else { 0 }];
            *o = if inside { v } else { 0.0 };
        }
    }

    /// Gathers one linearly interpolated sample per channel: for each
    /// position `k`, reads the fractional delay `delays[k]` of flat
    /// channel `channels[k]` into `out[k]`, bit-identical to
    /// [`RfFrame::sample_interp`] (same floor/blend arithmetic, same
    /// zero reads outside the window) with the channel offset looked up
    /// once and branchless edge masks.
    ///
    /// # Panics
    ///
    /// Panics if the three slices differ in length or a channel is out of
    /// range.
    #[inline]
    pub fn gather_linear_into(&self, channels: &[u32], delays: &[f64], out: &mut [f64]) {
        assert_eq!(channels.len(), delays.len(), "one delay per channel");
        assert_eq!(channels.len(), out.len(), "one output slot per channel");
        let n = self.n_samples as u64;
        for ((o, &c), &t) in out.iter_mut().zip(channels).zip(delays) {
            let base = self.bases[c as usize];
            let i0 = t.floor() as i64;
            let frac = t - i0 as f64;
            let in0 = (i0 as u64) < n;
            let in1 = ((i0 + 1) as u64) < n;
            let r0 = self.data[base + if in0 { i0 as usize } else { 0 }];
            let r1 = self.data[base + if in1 { (i0 + 1) as usize } else { 0 }];
            let v0 = if in0 { r0 } else { 0.0 };
            let v1 = if in1 { r1 } else { 0.0 };
            *o = v0 * (1.0 - frac) + v1 * frac;
        }
    }

    /// Sets every sample of every trace to `value` (no reallocation) —
    /// how warm frame buffers are cleared between acquisitions.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Copies another frame's samples into this one, reusing this
    /// frame's buffer — the handoff a prerecorded frame ring performs
    /// per acquisition.
    ///
    /// # Panics
    ///
    /// Panics if the two frames' dimensions differ.
    pub fn copy_from(&mut self, src: &RfFrame) {
        assert!(
            self.nx == src.nx && self.ny == src.ny && self.n_samples == src.n_samples,
            "frame shapes must match: {}x{}x{} vs {}x{}x{}",
            self.nx,
            self.ny,
            self.n_samples,
            src.nx,
            src.ny,
            src.n_samples
        );
        self.data.copy_from_slice(&src.data);
    }

    /// Largest |sample| in the frame.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Total energy (sum of squares).
    pub fn energy(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_independent() {
        let mut rf = RfFrame::zeros(3, 2, 10);
        rf.trace_mut(ElementIndex::new(1, 0))[5] = 2.5;
        assert_eq!(rf.sample(ElementIndex::new(1, 0), 5), 2.5);
        assert_eq!(rf.sample(ElementIndex::new(0, 0), 5), 0.0);
        assert_eq!(rf.sample(ElementIndex::new(1, 1), 5), 0.0);
    }

    #[test]
    fn out_of_range_reads_zero() {
        let rf = RfFrame::zeros(2, 2, 8);
        let e = ElementIndex::new(0, 0);
        assert_eq!(rf.sample(e, -1), 0.0);
        assert_eq!(rf.sample(e, 8), 0.0);
        assert_eq!(rf.sample(e, 7), 0.0);
    }

    #[test]
    fn interpolation_is_linear() {
        let mut rf = RfFrame::zeros(1, 1, 4);
        let e = ElementIndex::new(0, 0);
        rf.trace_mut(e).copy_from_slice(&[0.0, 1.0, 3.0, 0.0]);
        assert_eq!(rf.sample_interp(e, 1.0), 1.0);
        assert!((rf.sample_interp(e, 1.5) - 2.0).abs() < 1e-12);
        assert!((rf.sample_interp(e, 0.25) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn channel_bases_cover_every_trace() {
        let rf = RfFrame::zeros(3, 2, 10);
        assert_eq!(rf.channel_bases(), &[0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn gather_nearest_matches_per_element_sample() {
        let mut rf = RfFrame::zeros(3, 2, 4);
        for (l, e) in [(0, (0, 0)), (2, (2, 0)), (4, (1, 1))] {
            let e = ElementIndex::new(e.0, e.1);
            for (i, v) in rf.trace_mut(e).iter_mut().enumerate() {
                *v = -(l as f64) - i as f64 * 0.25;
            }
        }
        let channels: Vec<u32> = (0..6).collect();
        let indices = [0i32, -1, 3, 4, 2, 1];
        let mut out = [9.0; 6];
        rf.gather_nearest_into(&channels, &indices, &mut out);
        for ((&c, &i), &o) in channels.iter().zip(&indices).zip(&out) {
            let e = ElementIndex::new(c as usize % 3, c as usize / 3);
            assert_eq!(o, rf.sample(e, i as i64), "channel {c} index {i}");
        }
    }

    #[test]
    fn gather_linear_matches_per_element_interp() {
        let mut rf = RfFrame::zeros(2, 2, 4);
        for e in [ElementIndex::new(0, 0), ElementIndex::new(1, 1)] {
            rf.trace_mut(e).copy_from_slice(&[-1.0, 2.0, -3.0, 4.0]);
        }
        let channels = [0u32, 1, 2, 3, 0, 3];
        let delays = [0.5, 1.25, -0.75, 3.5, -2.0, 2.999];
        let mut out = [0.0; 6];
        rf.gather_linear_into(&channels, &delays, &mut out);
        for ((&c, &t), &o) in channels.iter().zip(&delays).zip(&out) {
            let e = ElementIndex::new(c as usize % 2, c as usize / 2);
            assert_eq!(
                o.to_bits(),
                rf.sample_interp(e, t).to_bits(),
                "channel {c} delay {t}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "one index per channel")]
    fn gather_rejects_length_mismatch() {
        let rf = RfFrame::zeros(2, 2, 4);
        rf.gather_nearest_into(&[0, 1], &[0], &mut [0.0, 0.0]);
    }

    #[test]
    fn energy_and_max_abs() {
        let mut rf = RfFrame::zeros(1, 2, 3);
        rf.trace_mut(ElementIndex::new(0, 0))
            .copy_from_slice(&[1.0, -2.0, 0.0]);
        assert_eq!(rf.max_abs(), 2.0);
        assert_eq!(rf.energy(), 5.0);
    }

    #[test]
    #[should_panic(expected = "dimensions must be nonzero")]
    fn zero_dimension_rejected() {
        RfFrame::zeros(0, 1, 1);
    }

    #[test]
    fn fill_and_copy_from_reuse_the_buffer() {
        let mut src = RfFrame::zeros(2, 2, 4);
        src.trace_mut(ElementIndex::new(1, 1))
            .copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let mut dst = RfFrame::zeros(2, 2, 4);
        dst.fill(9.0);
        let ptr = dst.trace(ElementIndex::new(0, 0)).as_ptr();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.trace(ElementIndex::new(0, 0)).as_ptr(), ptr);
    }

    #[test]
    #[should_panic(expected = "frame shapes must match")]
    fn copy_from_rejects_shape_mismatch() {
        let src = RfFrame::zeros(2, 2, 4);
        RfFrame::zeros(2, 2, 5).copy_from(&src);
    }
}
