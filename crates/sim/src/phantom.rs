//! Scatterer phantoms: the synthetic tissue being imaged.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use usbf_geometry::Vec3;

/// One point scatterer: a position and a reflectivity amplitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scatterer {
    /// Location in metres.
    pub position: Vec3,
    /// Reflectivity (arbitrary linear units).
    pub amplitude: f64,
}

/// A collection of point scatterers.
///
/// ```
/// use usbf_geometry::Vec3;
/// use usbf_sim::Phantom;
/// let p = Phantom::point(Vec3::new(0.0, 0.0, 0.05));
/// assert_eq!(p.scatterers().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Phantom {
    scatterers: Vec<Scatterer>,
}

impl Phantom {
    /// An empty phantom (anechoic medium).
    #[must_use]
    pub fn empty() -> Self {
        Phantom::default()
    }

    /// A single unit-amplitude point target — the classic point-spread-
    /// function phantom.
    #[must_use]
    pub fn point(position: Vec3) -> Self {
        Phantom {
            scatterers: vec![Scatterer {
                position,
                amplitude: 1.0,
            }],
        }
    }

    /// A phantom from explicit scatterers.
    #[must_use]
    pub fn from_scatterers(scatterers: Vec<Scatterer>) -> Self {
        Phantom { scatterers }
    }

    /// A regular grid of point targets along the z axis — used to probe
    /// depth-dependent focusing.
    #[must_use]
    pub fn axial_targets(depths: &[f64]) -> Self {
        Phantom {
            scatterers: depths
                .iter()
                .map(|&z| Scatterer {
                    position: Vec3::new(0.0, 0.0, z),
                    amplitude: 1.0,
                })
                .collect(),
        }
    }

    /// Uniform random speckle inside an axis-aligned box, with unit mean
    /// amplitude (uniform in `[0.5, 1.5]`). Deterministic for a given
    /// seed.
    #[must_use]
    pub fn speckle(n: usize, min: Vec3, max: Vec3, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let scatterers = (0..n)
            .map(|_| Scatterer {
                position: Vec3::new(
                    rng.random_range(min.x..=max.x),
                    rng.random_range(min.y..=max.y),
                    rng.random_range(min.z..=max.z),
                ),
                amplitude: rng.random_range(0.5..=1.5),
            })
            .collect();
        Phantom { scatterers }
    }

    /// An anechoic spherical void ("cyst") carved out of speckle: returns
    /// the speckle phantom with all scatterers inside the sphere removed.
    #[must_use]
    pub fn cyst(n: usize, min: Vec3, max: Vec3, center: Vec3, radius: f64, seed: u64) -> Self {
        let mut p = Self::speckle(n, min, max, seed);
        p.scatterers
            .retain(|s| s.position.distance(center) > radius);
        p
    }

    /// The scatterers.
    pub fn scatterers(&self) -> &[Scatterer] {
        &self.scatterers
    }

    /// Adds a scatterer.
    pub fn push(&mut self, s: Scatterer) {
        self.scatterers.push(s);
    }

    /// Merges another phantom into this one.
    pub fn extend(&mut self, other: &Phantom) {
        self.scatterers.extend_from_slice(&other.scatterers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_phantom_has_unit_amplitude() {
        let p = Phantom::point(Vec3::new(0.0, 0.0, 0.03));
        assert_eq!(p.scatterers()[0].amplitude, 1.0);
        assert_eq!(p.scatterers()[0].position.z, 0.03);
    }

    #[test]
    fn axial_targets_sit_on_axis() {
        let p = Phantom::axial_targets(&[0.01, 0.02, 0.03]);
        assert_eq!(p.scatterers().len(), 3);
        for s in p.scatterers() {
            assert_eq!((s.position.x, s.position.y), (0.0, 0.0));
        }
    }

    #[test]
    fn speckle_is_deterministic_and_in_bounds() {
        let min = Vec3::new(-0.01, -0.01, 0.02);
        let max = Vec3::new(0.01, 0.01, 0.05);
        let a = Phantom::speckle(100, min, max, 7);
        let b = Phantom::speckle(100, min, max, 7);
        assert_eq!(a, b);
        for s in a.scatterers() {
            assert!(s.position.x >= min.x && s.position.x <= max.x);
            assert!(s.position.z >= min.z && s.position.z <= max.z);
            assert!(s.amplitude >= 0.5 && s.amplitude <= 1.5);
        }
        let c = Phantom::speckle(100, min, max, 8);
        assert_ne!(a, c, "different seeds give different speckle");
    }

    #[test]
    fn cyst_is_empty_inside() {
        let min = Vec3::new(-0.01, -0.01, 0.02);
        let max = Vec3::new(0.01, 0.01, 0.05);
        let center = Vec3::new(0.0, 0.0, 0.035);
        let p = Phantom::cyst(2000, min, max, center, 0.004, 3);
        assert!(!p.scatterers().is_empty());
        for s in p.scatterers() {
            assert!(s.position.distance(center) > 0.004);
        }
        // And it removed something.
        let full = Phantom::speckle(2000, min, max, 3);
        assert!(p.scatterers().len() < full.scatterers().len());
    }

    #[test]
    fn push_and_extend() {
        let mut p = Phantom::empty();
        p.push(Scatterer {
            position: Vec3::ZERO,
            amplitude: 2.0,
        });
        let q = Phantom::point(Vec3::new(0.0, 0.0, 0.01));
        p.extend(&q);
        assert_eq!(p.scatterers().len(), 2);
    }
}
