//! Shared helpers for the experiment binaries and criterion benches.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §5 for the experiment index) and prints
//! paper-vs-measured values; EXPERIMENTS.md records the outputs.

use usbf_core::stats::{SampleErrorStats, SelectionErrorStats};

/// Formats a paper-vs-measured comparison line.
pub fn compare_line(label: &str, paper: &str, measured: &str) -> String {
    format!("{label:<44} paper: {paper:<22} measured: {measured}")
}

/// Renders selection-error stats the way Table II's inaccuracy column
/// does: `avg <mean>, max <max>`.
pub fn inaccuracy_selection(s: &SelectionErrorStats) -> String {
    format!("avg {:.4}, max {}", s.mean_abs, s.max_abs)
}

/// Renders sample-error stats as `avg <mean>, max <max>` in samples.
pub fn inaccuracy_samples(s: &SampleErrorStats) -> String {
    format!("avg {:.2}, max {:.0}", s.mean_abs, s.max_abs)
}

/// A section header for experiment output.
pub fn section(title: &str) -> String {
    format!("\n=== {title} ===")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_line_contains_both_values() {
        let l = compare_line("x", "1", "2");
        assert!(l.contains("paper: 1") && l.contains("measured: 2"));
    }

    #[test]
    fn inaccuracy_formats() {
        let sel = SelectionErrorStats {
            count: 10,
            mean_abs: 0.25,
            max_abs: 2,
            histogram: vec![8, 2],
        };
        assert_eq!(inaccuracy_selection(&sel), "avg 0.2500, max 2");
        let smp = SampleErrorStats {
            count: 10,
            mean_abs: 1.44,
            max_abs: 99.6,
        };
        assert_eq!(inaccuracy_samples(&smp), "avg 1.44, max 100");
    }

    #[test]
    fn section_header() {
        assert!(section("T1").contains("=== T1 ==="));
    }
}
