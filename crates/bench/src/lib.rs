//! Shared helpers for the experiment binaries and criterion benches.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §5 for the experiment index) and prints
//! paper-vs-measured values; EXPERIMENTS.md records the outputs.

use usbf_beamform::{Beamformer, Interpolation};
use usbf_core::stats::{SampleErrorStats, SelectionErrorStats};
use usbf_core::{DelayEngine, NappeDelays};
use usbf_geometry::ElementIndex;
use usbf_sim::RfFrame;

/// Formats a paper-vs-measured comparison line.
pub fn compare_line(label: &str, paper: &str, measured: &str) -> String {
    format!("{label:<44} paper: {paper:<22} measured: {measured}")
}

/// The PR 4 inner kernel, kept verbatim as the measured baseline for the
/// vectorized `Beamformer::beamform_tile_into`: per element per voxel it
/// pays a virtual `delay_index_from` call, an `ElementIndex` div/mod
/// recovery, a `w == 0` branch, a per-fetch channel-offset recompute
/// inside `RfFrame::sample`, and a per-element interpolation match.
/// Outputs are bit-identical to the vectorized kernel — only the
/// per-sample overhead differs, which is exactly what
/// `bench_beamform`'s `tile_kernel_reduced` group and `perf_snapshot`
/// quantify.
pub fn legacy_beamform_tile_into(
    bf: &Beamformer,
    interpolation: Interpolation,
    engine: &dyn DelayEngine,
    rf: &RfFrame,
    weights: &[f64],
    slab: &mut NappeDelays,
    values: &mut [f64],
) {
    let tile = slab.tile();
    let n_depth = bf.spec().volume_grid.n_depth();
    let n_elements = bf.spec().elements.count();
    let nx = bf.spec().elements.nx();
    assert_eq!(
        values.len(),
        tile.scanlines() * n_depth,
        "values buffer must cover the tile"
    );
    for id in 0..n_depth {
        engine.fill_nappe(id, slab);
        for slot in 0..tile.scanlines() {
            let row = slab.row(slot);
            let mut acc = 0.0;
            for j in 0..n_elements {
                let w = weights[j];
                if w == 0.0 {
                    continue;
                }
                let e = ElementIndex::new(j % nx, j / nx);
                let v = match interpolation {
                    Interpolation::Nearest => rf.sample(e, engine.delay_index_from(row[j])),
                    Interpolation::Linear => rf.sample_interp(e, row[j]),
                };
                acc += w * v;
            }
            values[slot * n_depth + id] = acc;
        }
    }
}

/// Renders selection-error stats the way Table II's inaccuracy column
/// does: `avg <mean>, max <max>`.
pub fn inaccuracy_selection(s: &SelectionErrorStats) -> String {
    format!("avg {:.4}, max {}", s.mean_abs, s.max_abs)
}

/// Renders sample-error stats as `avg <mean>, max <max>` in samples.
pub fn inaccuracy_samples(s: &SampleErrorStats) -> String {
    format!("avg {:.2}, max {:.0}", s.mean_abs, s.max_abs)
}

/// A section header for experiment output.
pub fn section(title: &str) -> String {
    format!("\n=== {title} ===")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_line_contains_both_values() {
        let l = compare_line("x", "1", "2");
        assert!(l.contains("paper: 1") && l.contains("measured: 2"));
    }

    #[test]
    fn inaccuracy_formats() {
        let sel = SelectionErrorStats {
            count: 10,
            mean_abs: 0.25,
            max_abs: 2,
            histogram: vec![8, 2],
        };
        assert_eq!(inaccuracy_selection(&sel), "avg 0.2500, max 2");
        let smp = SampleErrorStats {
            count: 10,
            mean_abs: 1.44,
            max_abs: 99.6,
        };
        assert_eq!(inaccuracy_samples(&smp), "avg 1.44, max 100");
    }

    #[test]
    fn section_header() {
        assert!(section("T1").contains("=== T1 ==="));
    }
}
