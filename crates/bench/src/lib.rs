//! Shared helpers for the experiment binaries and criterion benches.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §5 for the experiment index) and prints
//! paper-vs-measured values; EXPERIMENTS.md records the outputs.

use usbf_beamform::{Beamformer, Interpolation};
use usbf_core::stats::{SampleErrorStats, SelectionErrorStats};
use usbf_core::{DelayEngine, NappeDelays, TableFreeEngine};
use usbf_geometry::{deg, ElementIndex, SystemSpec, TransmitModel, Vec3, VolumeSpec, VoxelIndex};
use usbf_sim::RfFrame;

/// Formats a paper-vs-measured comparison line.
pub fn compare_line(label: &str, paper: &str, measured: &str) -> String {
    format!("{label:<44} paper: {paper:<22} measured: {measured}")
}

/// The CPWC benchmark geometry: tiny-scale voxel/element counts on a
/// narrow cone (±4° over 60λ) whose voxels actually sit inside the
/// plane-wave footprints (under the stock ±36.5° cone every voxel
/// back-projects outside a small aperture and the compound masks
/// degenerate to zero), carrying an `n_angles`-wave fan over ±10°.
pub fn cpwc_spec(n_angles: usize) -> SystemSpec {
    let reference = SystemSpec::tiny();
    let lambda = reference.wavelength();
    SystemSpec::new(
        reference.speed_of_sound,
        reference.sampling_frequency,
        reference.transducer.clone(),
        VolumeSpec {
            theta_max: deg(4.0),
            phi_max: deg(4.0),
            depth_max: 60.0 * lambda,
            ..reference.volume.clone()
        },
        reference.origin,
        reference.frame_rate,
    )
    .with_transmits(TransmitModel::plane_wave_fan(n_angles, deg(10.0)))
}

/// The PR 4 inner kernel, kept verbatim as the measured baseline for the
/// vectorized `Beamformer::beamform_tile_into`: per element per voxel it
/// pays a virtual `delay_index_from` call, an `ElementIndex` div/mod
/// recovery, a `w == 0` branch, a per-fetch channel-offset recompute
/// inside `RfFrame::sample`, and a per-element interpolation match.
/// Outputs are bit-identical to the vectorized kernel — only the
/// per-sample overhead differs, which is exactly what
/// `bench_beamform`'s `tile_kernel_reduced` group and `perf_snapshot`
/// quantify.
pub fn legacy_beamform_tile_into(
    bf: &Beamformer,
    interpolation: Interpolation,
    engine: &dyn DelayEngine,
    rf: &RfFrame,
    weights: &[f64],
    slab: &mut NappeDelays,
    values: &mut [f64],
) {
    let tile = slab.tile();
    let n_depth = bf.spec().volume_grid.n_depth();
    let n_elements = bf.spec().elements.count();
    let nx = bf.spec().elements.nx();
    assert_eq!(
        values.len(),
        tile.scanlines() * n_depth,
        "values buffer must cover the tile"
    );
    for id in 0..n_depth {
        engine.fill_nappe(id, slab);
        for slot in 0..tile.scanlines() {
            let row = slab.row(slot);
            let mut acc = 0.0;
            for j in 0..n_elements {
                let w = weights[j];
                if w == 0.0 {
                    continue;
                }
                let e = ElementIndex::new(j % nx, j / nx);
                let v = match interpolation {
                    Interpolation::Nearest => rf.sample(e, engine.delay_index_from(row[j])),
                    Interpolation::Linear => rf.sample_interp(e, row[j]),
                };
                acc += w * v;
            }
            values[slot * n_depth + id] = acc;
        }
    }
}

/// The PR 5 TABLEFREE slab fill, kept verbatim as the measured baseline
/// for the segment-major batched row evaluator: per element per focal
/// point it pays one `eval_tracked` call — a pointer walk plus the full
/// `Fixed` quantize/multiply/add/round datapath with every per-segment
/// constant re-derived (three `exp2` libm calls per element). Outputs
/// are bit-identical to `TableFreeEngine::fill_nappe`'s batched row
/// path — only the per-element overhead differs, which is what
/// `bench_beamform`'s `tablefree_fill_reduced` group and
/// `perf_snapshot`'s `tablefree_fill` section quantify. (The baseline
/// skips the engine's op-counter update: atomics are irrelevant to the
/// measured datapath.)
pub struct LegacyTableFreeFill {
    /// Element positions in linear order, precomputed like the engine
    /// caches them so the timed region measures only the fill.
    elem_pos: Vec<Vec3>,
    samples_per_metre: f64,
}

impl LegacyTableFreeFill {
    /// Precomputes the fill's element-position cache for `engine`'s spec.
    #[must_use]
    pub fn new(engine: &TableFreeEngine) -> Self {
        let spec = engine.spec();
        LegacyTableFreeFill {
            elem_pos: spec
                .elements
                .iter()
                .map(|e| spec.elements.position(e))
                .collect(),
            samples_per_metre: spec.sampling_frequency / spec.speed_of_sound,
        }
    }

    /// The PR 5 per-element `eval_tracked` fill loop, verbatim.
    pub fn fill(&self, engine: &TableFreeEngine, nappe_idx: usize, out: &mut NappeDelays) {
        let tile = out.tile();
        let n_elements = out.n_elements();
        let spm = self.samples_per_metre;
        let exact_transmit = engine.config().exact_transmit;
        let quant = engine.quantized();
        let grid = &engine.spec().volume_grid;
        let buf = out.begin_fill(nappe_idx);
        let mut tx_hint = 0usize;
        let mut rx_hint = 0usize;
        for (slot, it, ip) in tile.iter_scanlines() {
            let vox = VoxelIndex::new(it, ip, nappe_idx);
            let s = grid.position(vox);
            let tx_alpha = engine.tx_alpha(vox);
            let tx = if exact_transmit {
                tx_alpha.sqrt()
            } else {
                quant.eval_tracked(&mut tx_hint, tx_alpha)
            };
            let dz = s.z * spm;
            let dz2 = dz * dz;
            let row = &mut buf[slot * n_elements..(slot + 1) * n_elements];
            for (j, value) in row.iter_mut().enumerate() {
                let d = self.elem_pos[j];
                let dx = (s.x - d.x) * spm;
                let dy = (s.y - d.y) * spm;
                let rx_alpha = dx * dx + dy * dy + dz2;
                *value = tx + quant.eval_tracked(&mut rx_hint, rx_alpha);
            }
        }
    }
}

/// Renders selection-error stats the way Table II's inaccuracy column
/// does: `avg <mean>, max <max>`.
pub fn inaccuracy_selection(s: &SelectionErrorStats) -> String {
    format!("avg {:.4}, max {}", s.mean_abs, s.max_abs)
}

/// Renders sample-error stats as `avg <mean>, max <max>` in samples.
pub fn inaccuracy_samples(s: &SampleErrorStats) -> String {
    format!("avg {:.2}, max {:.0}", s.mean_abs, s.max_abs)
}

/// A section header for experiment output.
pub fn section(title: &str) -> String {
    format!("\n=== {title} ===")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_line_contains_both_values() {
        let l = compare_line("x", "1", "2");
        assert!(l.contains("paper: 1") && l.contains("measured: 2"));
    }

    #[test]
    fn inaccuracy_formats() {
        let sel = SelectionErrorStats {
            count: 10,
            mean_abs: 0.25,
            max_abs: 2,
            histogram: vec![8, 2],
        };
        assert_eq!(inaccuracy_selection(&sel), "avg 0.2500, max 2");
        let smp = SampleErrorStats {
            count: 10,
            mean_abs: 1.44,
            max_abs: 99.6,
        };
        assert_eq!(inaccuracy_samples(&smp), "avg 1.44, max 100");
    }

    #[test]
    fn section_header() {
        assert!(section("T1").contains("=== T1 ==="));
    }

    #[test]
    fn fused_baseline_is_bit_identical_to_factored_compound_path() {
        // Same discipline as the legacy-fill baselines: the
        // `factored_vs_fused` bench group's fused side (the engine
        // behind `usbf_core::FusedOnly`, forced onto the per-transmit
        // loop) must stay a truthful stand-in — same tile values, bit
        // for bit, for the engines the group measures.
        let spec = cpwc_spec(4);
        let bf = Beamformer::new(&spec);
        let tile = usbf_core::NappeSchedule::fitted(&spec, 16).tiles()[5];
        let g = &spec.volume_grid;
        let rf = usbf_sim::EchoSynthesizer::new(&spec).synthesize(
            &usbf_sim::Phantom::point(g.position(VoxelIndex::new(
                g.n_theta() / 2,
                g.n_phi() / 2,
                g.n_depth() * 5 / 8,
            ))),
            &usbf_sim::Pulse::from_spec(&spec),
        );
        let tile_into = |engine: &dyn DelayEngine| {
            let mut state = usbf_beamform::TileState::new(&bf, tile);
            bf.beamform_tile_into(engine, &rf, &mut state);
            state.values().to_vec()
        };
        let exact = usbf_core::ExactEngine::new(&spec);
        let tablefree = TableFreeEngine::new(&spec, usbf_core::TableFreeConfig::paper()).unwrap();
        for (name, factored, fused) in [
            (
                "EXACT",
                tile_into(&exact),
                tile_into(&usbf_core::FusedOnly(exact.clone())),
            ),
            (
                "TABLEFREE",
                tile_into(&tablefree),
                tile_into(&usbf_core::FusedOnly(tablefree.clone())),
            ),
        ] {
            for (i, (a, b)) in factored.iter().zip(&fused).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{name} voxel {i}");
            }
        }
    }

    #[test]
    fn legacy_tablefree_fill_is_bit_identical_to_batched_fill() {
        // The benchmark baseline must stay a truthful stand-in for the
        // old fill: same slabs, bit for bit.
        let spec = usbf_geometry::SystemSpec::tiny();
        let engine = TableFreeEngine::new(&spec, usbf_core::TableFreeConfig::paper()).unwrap();
        let legacy = LegacyTableFreeFill::new(&engine);
        let mut a = NappeDelays::full(&spec);
        let mut b = NappeDelays::full(&spec);
        for id in [0, 5, 15] {
            engine.fill_nappe(id, &mut a);
            legacy.fill(&engine, id, &mut b);
            for (x, y) in a.samples().iter().zip(b.samples()) {
                assert_eq!(x.to_bits(), y.to_bits(), "nappe {id}");
            }
        }
    }
}
