//! Experiments E1, E2, E6 — the storage/bandwidth bottleneck (§II-B,
//! §II-C) and the TABLESTEER memory budget & streaming design (§V-B).
//!
//! Run with: `cargo run --release -p usbf-bench --bin exp_sizes`

use usbf_bench::{compare_line, section};
use usbf_core::{NaiveTableEngine, SteerBlockSpec};
use usbf_geometry::SystemSpec;
use usbf_tables::{InsonificationPlan, StreamingPlan, TableBudget};

fn main() {
    let spec = SystemSpec::paper();

    println!("{}", section("E1 (§II-B): naive delay-table size"));
    println!(
        "{}",
        compare_line(
            "3D delay coefficients",
            "about 164e9",
            &format!("{:.1}e9", spec.naive_table_entries() as f64 / 1e9)
        )
    );
    println!(
        "{}",
        compare_line(
            "as 16-bit table",
            "(impractical)",
            &format!(
                "{:.0} GB",
                NaiveTableEngine::required_bytes(&spec) as f64 / 1e9
            )
        )
    );
    // A typical 2D system: 128-element linear array, 128 scanlines × 1000
    // depths → "a few million coefficients".
    let coeffs_2d: u64 = 128 * 128 * 1000;
    println!(
        "{}",
        compare_line(
            "2D system (128 el., 128x1000)",
            "a few million",
            &format!("{:.1}e6", coeffs_2d as f64 / 1e6)
        )
    );

    println!("{}", section("E2 (§II-C): delay access bandwidth"));
    println!(
        "{}",
        compare_line(
            "delay values/s @ 15 fps",
            "about 2.5e12",
            &format!("{:.3}e12", spec.delays_per_second() / 1e12)
        )
    );

    println!("{}", section("E6 (§V-B): TABLESTEER memory budget, 18-bit"));
    let b18 = TableBudget::for_spec(&spec, 18, 18);
    println!(
        "{}",
        compare_line(
            "folded reference entries",
            "50x50x1000 = 2.5e6",
            &format!("{:.1}e6", b18.reference_entries as f64 / 1e6)
        )
    );
    println!(
        "{}",
        compare_line(
            "correction coefficients",
            "100x64x128 + 100x128 = 832e3",
            &format!("{}e3", b18.correction_entries / 1000)
        )
    );
    println!(
        "{}",
        compare_line(
            "reference storage",
            "45 Mb",
            &format!("{:.1} Mb", b18.reference_megabits())
        )
    );
    println!(
        "{}",
        compare_line(
            "correction storage",
            "14.3 Mb",
            &format!(
                "{:.2} Mib ({:.2} Mb decimal — the paper mixes prefixes)",
                b18.correction_mebibits(),
                b18.correction_bits as f64 / 1e6
            )
        )
    );

    println!("{}", section("E6 (§V-B): streaming design"));
    let plan = InsonificationPlan::paper();
    let rate = plan.insonifications_per_second(spec.frame_rate);
    println!(
        "{}",
        compare_line(
            "insonifications/s",
            "64/volume x 15 fps = 960",
            &format!("{rate} (covers spec: {})", plan.covers(&spec))
        )
    );
    let stream = StreamingPlan::paper();
    println!(
        "{}",
        compare_line(
            "circular BRAM buffer",
            "128 banks x 1k x 18b = 2.3 Mb",
            &format!("{:.2} Mb", stream.on_chip_bits() as f64 / 1e6)
        )
    );
    println!(
        "{}",
        compare_line(
            "on-chip memory after streaming",
            "2.3 Mb + 14.3 Mb",
            &format!(
                "{:.2} Mb + {:.2} Mib",
                stream.on_chip_bits() as f64 / 1e6,
                b18.correction_mebibits()
            )
        )
    );
    println!(
        "{}",
        compare_line(
            "DRAM bandwidth (18b)",
            "about 5.3 GB/s",
            &format!("{:.2} GB/s", stream.dram_bandwidth_bytes(&b18, rate) / 1e9)
        )
    );
    let b14 = TableBudget::for_spec(&spec, 14, 14);
    let stream14 = StreamingPlan {
        word_bits: 14,
        ..StreamingPlan::paper()
    };
    println!(
        "{}",
        compare_line(
            "DRAM bandwidth (14b)",
            "4.1 GB/s (Table II)",
            &format!(
                "{:.2} GB/s",
                stream14.dram_bandwidth_bytes(&b14, rate) / 1e9
            )
        )
    );
    println!(
        "{}",
        compare_line(
            "refill latency margin",
            "1k cycles",
            &format!("{} cycles", stream.latency_margin_cycles())
        )
    );

    println!("{}", section("E6/F4: throughput arithmetic"));
    let block = SteerBlockSpec::paper();
    println!(
        "{}",
        compare_line(
            "adders per block",
            "8 + 16x8 = 136 (128 rounding)",
            &format!(
                "{} ({} rounding)",
                block.adders_per_block(),
                block.rounding_adders_per_block()
            )
        )
    );
    println!(
        "{}",
        compare_line(
            "peak throughput @ 200 MHz",
            "3.3 Tdelays/s",
            &format!("{:.2} Tdelays/s", block.delays_per_second(200e6) / 1e12)
        )
    );
}
