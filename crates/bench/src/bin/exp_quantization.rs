//! Experiment E5 — §VI-A fixed-point rounding flips:
//!
//! "Matlab simulation on 10×10⁶ random input values shows that 33% of the
//! echo samples experience this additional inaccuracy if using 13 bit
//! integers; this fraction is reduced to less than 2% when using a 18-bit
//! (13.5) fixed point representation."
//!
//! Run with: `cargo run --release -p usbf-bench --bin exp_quantization`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use usbf_bench::{compare_line, section};
use usbf_fixed::analysis::rounding_flip_stats;
use usbf_fixed::{QFormat, RoundingMode};
use usbf_geometry::SystemSpec;
use usbf_tables::SteeringTables;

fn main() {
    let spec = SystemSpec::paper();
    // Input distribution matched to the system: reference delays span the
    // echo window; corrections span the steering-plane range.
    let max_ref = spec.echo_buffer_len() as f64 - 1.0;
    let max_corr = SteeringTables::build(&spec).max_abs_correction_samples();
    println!("{}", section("E5: input distribution"));
    println!("reference ∈ [0, {max_ref:.0}] samples, corrections ∈ ±{max_corr:.1} samples");

    const N: usize = 10_000_000;
    let mut rng = StdRng::seed_from_u64(0xDA7E_2015);
    let triples: Vec<(f64, f64, f64)> = (0..N)
        .map(|_| {
            (
                rng.random_range(0.0..max_ref),
                rng.random_range(-max_corr..max_corr),
                rng.random_range(-max_corr..max_corr),
            )
        })
        .collect();

    println!(
        "{}",
        section("E5: index-flip fractions (10e6 random values)")
    );
    let configs: [(&str, QFormat, QFormat, &str); 4] = [
        (
            "13-bit integer delays",
            QFormat::INT_13,
            QFormat::signed(13, 0),
            "33%",
        ),
        (
            "13-bit int ref + 13.4 corr",
            QFormat::INT_13,
            QFormat::CORR_18,
            "(33% regime)",
        ),
        (
            "14-bit (13.1 / s13.0)",
            QFormat::REF_14,
            QFormat::CORR_14,
            "(between)",
        ),
        (
            "18-bit (13.5 / s13.4)",
            QFormat::REF_18,
            QFormat::CORR_18,
            "less than 2%",
        ),
    ];
    for (label, rf, cf, paper) in configs {
        let s = rounding_flip_stats(rf, cf, triples.iter().copied(), RoundingMode::HalfUp);
        println!(
            "{}",
            compare_line(
                label,
                paper,
                &format!(
                    "{:.2}% flipped, max |Δindex| = {}",
                    100.0 * s.flipped_fraction(),
                    s.max_abs_index_diff
                )
            )
        );
    }
    println!("\n(\"the maximum difference between the delay value calculated in hardware");
    println!("  vs. a high-precision floating-point computation is of ±1 sample\" — §VI-A;");
    println!("  holds whenever corrections keep ≥4 fraction bits)");
}
