//! Experiment T1 — Table I: system specification and derived quantities.
//!
//! Run with: `cargo run --release -p usbf-bench --bin exp_specs`

use usbf_bench::{compare_line, section};
use usbf_geometry::SystemSpec;

fn main() {
    let s = SystemSpec::paper();
    println!("{}", section("T1: Table I — system specification"));
    println!(
        "{}",
        compare_line(
            "speed of sound c",
            "1540 m/s",
            &format!("{} m/s", s.speed_of_sound)
        )
    );
    println!(
        "{}",
        compare_line(
            "center frequency fc",
            "4 MHz",
            &format!("{} MHz", s.transducer.center_frequency / 1e6)
        )
    );
    println!(
        "{}",
        compare_line(
            "wavelength λ = c/fc",
            "0.385 mm",
            &format!("{:.4} mm", s.wavelength() * 1e3)
        )
    );
    println!(
        "{}",
        compare_line(
            "transducer matrix",
            "100x100 @ λ/2",
            &format!(
                "{}x{} @ {:.5} mm",
                s.transducer.nx,
                s.transducer.ny,
                s.transducer.pitch * 1e3
            )
        )
    );
    println!(
        "{}",
        compare_line(
            "matrix dimensions d",
            "50λ = 19.25 mm",
            &format!(
                "{:.2} mm (element centres span {:.2} mm)",
                100.0 * s.transducer.pitch * 1e3,
                s.elements.aperture().0 * 1e3
            )
        )
    );
    println!(
        "{}",
        compare_line(
            "imaging volume",
            "73°x73°x500λ",
            &format!(
                "{:.0}°x{:.0}°x{:.0}λ ({:.1} mm deep)",
                2.0 * s.volume.theta_max.to_degrees(),
                2.0 * s.volume.phi_max.to_degrees(),
                s.volume.depth_max / s.wavelength(),
                s.volume.depth_max * 1e3
            )
        )
    );
    println!(
        "{}",
        compare_line(
            "sampling frequency fs",
            "32 MHz",
            &format!("{} MHz", s.sampling_frequency / 1e6)
        )
    );
    println!(
        "{}",
        compare_line(
            "focal points",
            "128x128x1000",
            &format!(
                "{}x{}x{}",
                s.volume.n_theta, s.volume.n_phi, s.volume.n_depth
            )
        )
    );

    println!("{}", section("Derived quantities"));
    println!(
        "{}",
        compare_line(
            "delay granularity 1/fs",
            "~30 ns",
            &format!("{:.2} ns", 1e9 / s.sampling_frequency)
        )
    );
    println!(
        "{}",
        compare_line(
            "echo buffer (two-way 1000λ)",
            ">8000 samples, 13-bit",
            &format!(
                "{} samples, {}-bit",
                s.echo_buffer_len(),
                s.echo_index_bits()
            )
        )
    );
    println!(
        "{}",
        compare_line(
            "max one-way path",
            "(not stated)",
            &format!("{:.0} samples", s.max_one_way_delay_samples())
        )
    );
    println!(
        "{}",
        compare_line(
            "max two-way path",
            "(not stated)",
            &format!("{:.0} samples", s.max_two_way_delay_samples())
        )
    );
}
