//! Perf-trajectory snapshot: measures the PR 10 hot paths and writes
//! `BENCH_PR10.json` (schema documented in `tests/README.md`).
//!
//! Eight sections:
//!
//! * `kernel` — single-thread `Beamformer::beamform_tile_into` ns/voxel
//!   on one reduced-spec schedule tile, per engine, next to the PR 4
//!   per-element kernel ([`usbf_bench::legacy_beamform_tile_into`]) and
//!   the resulting speedup (the PR 5 acceptance gate is ≥2×);
//! * `fill` — per-engine `fill_nappe` throughput in delays/s over a
//!   full-fan slab. NAIVE-TABLE is measured at both scales: its reduced
//!   table (~hundreds of MB) is buildable on a CI runner, and the tiny
//!   entry is kept so the cache-resident trajectory stays comparable
//!   across snapshots — every entry records its `spec`;
//! * `tablefree_fill` — the PR 5 per-element `eval_tracked` TABLEFREE
//!   fill ([`usbf_bench::LegacyTableFreeFill`]) vs the segment-major
//!   batched row evaluator (the PR 6 acceptance gate is ≥10×);
//! * `pipeline` — warm `FramePipeline` frames/s on the tiny spec;
//! * `shard_churn` — the PR 7 elastic runtime under session churn:
//!   fleets of 3 and 16 shards on a 4-worker pool, one attach + detach
//!   every few rounds, reporting sustained frames/s and the fleet's
//!   p50/p99 frame latency from the per-shard histograms;
//! * `bmode_chain` — the PR 8 fused post-processing stages: warm
//!   `FramePipeline` frames/s on a pinned 4-worker pool, raw
//!   beamforming vs the fused demod → envelope → log-compress chain;
//! * `cpwc_compound` — coherent plane-wave compounding: warm
//!   `FramePipeline` frames/s with an N-angle compound running as one
//!   frame (narrow-cone [`usbf_bench::cpwc_spec`] geometry, pinned
//!   4-worker pool), swept over 1/4/16 angles for ALL four engines
//!   (the PR 10 factored receive leg makes the sweep sublinear in N);
//!   `exact_angle_sweep` is kept as an alias of the EXACT column;
//! * `stage_split` — the PR 10 factored compound loop decomposed on one
//!   tile, per engine: receive-leg slab fill ns vs per-transmit combine
//!   ns vs quantize/gather/MAC ns, measured by peeling the factored
//!   stages through the public engine API.
//!
//! Knobs: `USBF_SNAPSHOT_QUICK=1` shrinks measurement budgets for CI
//! smoke runs; `USBF_SNAPSHOT_OUT` overrides the output path.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use usbf_beamform::{
    Apodization, Beamformer, BmodeConfig, FramePipeline, FrameRing, Interpolation, PostChain,
    ShardConfig, ShardedRuntime, TileState,
};
use usbf_core::{
    DelayEngine, ExactEngine, NaiveTableEngine, NappeDelays, NappeSchedule, TableFreeConfig,
    TableFreeEngine, TableSteerConfig, TableSteerEngine,
};
use usbf_geometry::{SystemSpec, VoxelIndex};
use usbf_sim::{EchoSynthesizer, Phantom, Pulse};

/// Runs `f` repeatedly for at least `budget_s` seconds (and at least
/// twice), returning the mean seconds per call.
fn time_mean(budget_s: f64, mut f: impl FnMut()) -> f64 {
    f(); // warm-up / lazy init
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed().as_secs_f64() < budget_s || iters < 2 {
        f();
        iters += 1;
    }
    start.elapsed().as_secs_f64() / iters as f64
}

struct KernelRow {
    name: &'static str,
    legacy_ns_per_voxel: f64,
    vectorized_ns_per_voxel: f64,
}

fn main() {
    let quick = std::env::var("USBF_SNAPSHOT_QUICK").is_ok_and(|v| v != "0");
    let budget = if quick { 0.05 } else { 0.5 };
    let red = SystemSpec::reduced();
    let tiny = SystemSpec::tiny();

    // --- kernel: single-thread tile kernel, legacy vs vectorized ---
    let bf = Beamformer::new(&red).with_apodization(Apodization::Hann);
    let tile = NappeSchedule::fitted(&red, 64).tiles()[27];
    let tile_voxels = (tile.scanlines() * red.volume_grid.n_depth()) as f64;
    let rf = EchoSynthesizer::new(&red).synthesize(
        &Phantom::point(red.volume_grid.position(VoxelIndex::new(16, 16, 64))),
        &Pulse::from_spec(&red),
    );
    let exact = ExactEngine::new(&red);
    let tablefree = TableFreeEngine::new(&red, TableFreeConfig::paper()).expect("builds");
    let tablesteer = TableSteerEngine::new(&red, TableSteerConfig::bits18()).expect("builds");
    let engines: [(&str, &dyn DelayEngine); 3] = [
        ("EXACT", &exact),
        ("TABLEFREE", &tablefree),
        ("TABLESTEER-18b", &tablesteer),
    ];
    let weights = bf.element_weights();
    let mut kernel_rows = Vec::new();
    for (name, eng) in engines {
        let mut state = TileState::new(&bf, tile);
        let vec_s = time_mean(budget, || {
            bf.beamform_tile_into(eng, &rf, &mut state);
            std::hint::black_box(state.values()[0]);
        });
        let mut slab = NappeDelays::for_tile(&red, tile);
        let mut values = vec![0.0; tile.scanlines() * red.volume_grid.n_depth()];
        let legacy_s = time_mean(budget, || {
            usbf_bench::legacy_beamform_tile_into(
                &bf,
                Interpolation::Nearest,
                eng,
                &rf,
                &weights,
                &mut slab,
                &mut values,
            );
            std::hint::black_box(values[0]);
        });
        let row = KernelRow {
            name,
            legacy_ns_per_voxel: legacy_s * 1e9 / tile_voxels,
            vectorized_ns_per_voxel: vec_s * 1e9 / tile_voxels,
        };
        println!(
            "kernel {name:<15} legacy {:9.1} ns/voxel   vectorized {:9.1} ns/voxel   speedup {:.2}x",
            row.legacy_ns_per_voxel,
            row.vectorized_ns_per_voxel,
            row.legacy_ns_per_voxel / row.vectorized_ns_per_voxel
        );
        kernel_rows.push(row);
    }

    // --- fill: per-engine slab fill throughput ---
    let mut fill_rows: Vec<(&str, &str, f64)> = Vec::new();
    for (name, eng) in engines {
        let mut slab = NappeDelays::full(&red);
        let per_pass = red.volume_grid.n_depth() as f64
            * slab.scanline_count() as f64
            * slab.n_elements() as f64;
        let s = time_mean(budget, || {
            for id in 0..red.volume_grid.n_depth() {
                eng.fill_nappe(id, &mut slab);
            }
            std::hint::black_box(slab.samples()[0]);
        });
        fill_rows.push((name, "reduced", per_pass / s));
    }
    {
        // NAIVE-TABLE at reduced scale: the honest memory-bound number —
        // the table no longer fits any cache, so this is the DDR-stream
        // rate the paper's Table I argues against.
        let naive = NaiveTableEngine::build(&red, u64::MAX).expect("reduced table fits in RAM");
        let mut slab = NappeDelays::full(&red);
        let per_pass = red.volume_grid.n_depth() as f64
            * slab.scanline_count() as f64
            * slab.n_elements() as f64;
        let s = time_mean(budget, || {
            for id in 0..red.volume_grid.n_depth() {
                naive.fill_nappe(id, &mut slab);
            }
            std::hint::black_box(slab.samples()[0]);
        });
        fill_rows.push(("NAIVE-TABLE", "reduced", per_pass / s));
    }
    {
        // Tiny entry kept for cross-snapshot comparability (the earlier
        // snapshots only had this, cache-resident, number).
        let naive = NaiveTableEngine::build(&tiny, u64::MAX).expect("tiny table fits");
        let mut slab = NappeDelays::full(&tiny);
        let per_pass = tiny.volume_grid.n_depth() as f64
            * slab.scanline_count() as f64
            * slab.n_elements() as f64;
        let s = time_mean(budget, || {
            for id in 0..tiny.volume_grid.n_depth() {
                naive.fill_nappe(id, &mut slab);
            }
            std::hint::black_box(slab.samples()[0]);
        });
        fill_rows.push(("NAIVE-TABLE@tiny", "tiny", per_pass / s));
    }
    for (name, spec, rate) in &fill_rows {
        println!("fill   {name:<15} [{spec:<7}] {:.1} Mdelays/s", rate / 1e6);
    }

    // --- tablefree_fill: legacy per-element eval_tracked vs the
    // segment-major batched row evaluator (PR 6 acceptance: ≥10×) ---
    let (tf_legacy_rate, tf_batched_rate) = {
        let legacy = usbf_bench::LegacyTableFreeFill::new(&tablefree);
        let mut slab = NappeDelays::full(&red);
        let per_pass = red.volume_grid.n_depth() as f64
            * slab.scanline_count() as f64
            * slab.n_elements() as f64;
        let legacy_s = time_mean(budget, || {
            for id in 0..red.volume_grid.n_depth() {
                legacy.fill(&tablefree, id, &mut slab);
            }
            std::hint::black_box(slab.samples()[0]);
        });
        let batched_s = time_mean(budget, || {
            for id in 0..red.volume_grid.n_depth() {
                tablefree.fill_nappe(id, &mut slab);
            }
            std::hint::black_box(slab.samples()[0]);
        });
        (per_pass / legacy_s, per_pass / batched_s)
    };
    println!(
        "tablefree-fill [reduced] legacy {:.1} Mdelays/s   batched {:.1} Mdelays/s   speedup {:.2}x",
        tf_legacy_rate / 1e6,
        tf_batched_rate / 1e6,
        tf_batched_rate / tf_legacy_rate
    );

    // --- pipeline: warm frames/s on the tiny spec ---
    let frames = if quick { 20 } else { 200 };
    let engine: Arc<dyn DelayEngine + Send + Sync> = Arc::new(ExactEngine::new(&tiny));
    let frame = EchoSynthesizer::new(&tiny).synthesize(
        &Phantom::point(tiny.volume_grid.position(VoxelIndex::new(4, 4, 8))),
        &Pulse::from_spec(&tiny),
    );
    let mut pipe = FramePipeline::new(Beamformer::new(&tiny), engine, FrameRing::new(vec![frame]));
    for _ in 0..5 {
        pipe.next_volume().expect("warm-up frame");
    }
    let start = Instant::now();
    for _ in 0..frames {
        pipe.next_volume().expect("warm frame");
    }
    let wall = start.elapsed().as_secs_f64();
    let stats = pipe.stats();
    let fps = frames as f64 / wall;
    let mean_beamform_ms = wall / frames as f64 * 1e3;
    println!(
        "pipeline [tiny] {fps:.1} frames/s, {mean_beamform_ms:.3} ms/frame, overlap {:.3}",
        stats.overlap_fraction()
    );

    // --- shard_churn: the elastic runtime under session churn ---
    struct ChurnRow {
        n_shards: usize,
        rounds: usize,
        frames_per_second: f64,
        p50_ms: f64,
        p99_ms: f64,
    }
    let churn_rounds = if quick { 24 } else { 120 };
    let churn_workers = 4usize;
    let churn_frame = EchoSynthesizer::new(&tiny).synthesize(
        &Phantom::point(tiny.volume_grid.position(VoxelIndex::new(5, 3, 9))),
        &Pulse::from_spec(&tiny),
    );
    let mut churn_rows = Vec::new();
    for n_shards in [3usize, 16] {
        let pool = Arc::new(usbf_par::ThreadPool::new(churn_workers));
        let steer: Arc<dyn DelayEngine + Send + Sync> =
            Arc::new(TableSteerEngine::new(&tiny, TableSteerConfig::bits18()).expect("builds"));
        let mk = |i: usize| {
            let engine: Arc<dyn DelayEngine + Send + Sync> = if i.is_multiple_of(2) {
                Arc::new(ExactEngine::new(&tiny))
            } else {
                Arc::clone(&steer)
            };
            ShardConfig::new(
                Beamformer::new(&tiny),
                engine,
                FrameRing::new(vec![churn_frame.clone()]),
            )
        };
        let mut rt = ShardedRuntime::new(Arc::clone(&pool), (0..n_shards).map(mk).collect());
        let mut outcomes = Vec::new();
        for _ in 0..3 {
            rt.round_into(&mut outcomes); // warm the resident fleet
        }
        let start = Instant::now();
        let mut churn_slot = 0usize;
        for round in 0..churn_rounds {
            rt.round_into(&mut outcomes);
            assert!(outcomes.iter().all(|o| o.is_ok()), "unhealthy churn round");
            if round % 4 == 3 {
                // Session churn: replace one shard while siblings stream.
                let gone = rt.shard_ids()[churn_slot % n_shards];
                rt.detach_shard(gone).expect("live shard");
                rt.attach_shard(mk(churn_slot)).expect("under budget");
                churn_slot += 1;
            }
        }
        let wall = start.elapsed().as_secs_f64();
        // Every round completes one frame per live shard (unlimited
        // budget), so the measured window is exactly rounds × shards.
        let measured_frames = churn_rounds as u64 * n_shards as u64;
        // The fleet histogram spans the survivors' lifetimes (warm-up
        // included, detached sessions excluded) — a ≤3-round bias on a
        // much longer soak.
        let latency = rt.fleet_latency();
        let row = ChurnRow {
            n_shards,
            rounds: churn_rounds,
            frames_per_second: measured_frames as f64 / wall,
            p50_ms: latency.p50().as_secs_f64() * 1e3,
            p99_ms: latency.p99().as_secs_f64() * 1e3,
        };
        println!(
            "shard-churn [tiny] {:>2} shards on {churn_workers} workers: {:8.1} frames/s, p50 {:7.3} ms, p99 {:7.3} ms ({} rounds, churn every 4)",
            row.n_shards, row.frames_per_second, row.p50_ms, row.p99_ms, row.rounds
        );
        churn_rows.push(row);
    }

    // --- bmode_chain: warm FramePipeline frames/s on a pinned pool,
    // raw beamforming vs the fused demod → envelope → log-compress
    // post-stages (the PR 8 tentpole) ---
    let bmode_frames = if quick { 20 } else { 200 };
    let bmode_workers = 4usize;
    let bmode_pool = Arc::new(usbf_par::ThreadPool::new(bmode_workers));
    let bmode_schedule = NappeSchedule::fitted(&tiny, 64);
    let bmode_engine: Arc<dyn DelayEngine + Send + Sync> = Arc::new(ExactEngine::new(&tiny));
    let bmode_fps = |post: PostChain| {
        let mut pipe = FramePipeline::with_pool(
            Beamformer::new(&tiny).with_postproc(post),
            Arc::clone(&bmode_engine),
            FrameRing::new(vec![churn_frame.clone()]),
            Arc::clone(&bmode_pool),
            &bmode_schedule,
        );
        for _ in 0..5 {
            pipe.next_volume().expect("warm-up frame");
        }
        let start = Instant::now();
        for _ in 0..bmode_frames {
            pipe.next_volume().expect("warm frame");
        }
        bmode_frames as f64 / start.elapsed().as_secs_f64()
    };
    let raw_fps = bmode_fps(PostChain::empty());
    let fused_fps = bmode_fps(PostChain::bmode(BmodeConfig::from_spec(&tiny)));
    println!(
        "bmode-chain [tiny] {bmode_workers} workers: raw {raw_fps:.1} frames/s   fused {fused_fps:.1} frames/s   chain cost {:.1}%",
        (raw_fps / fused_fps - 1.0) * 100.0
    );

    // --- cpwc_compound: the PR 9 tentpole — an N-angle plane-wave
    // compound as one warm pipeline frame, per engine, plus EXACT's
    // angle sweep ---
    let cpwc_frames = if quick { 20 } else { 200 };
    let cpwc_workers = 4usize;
    let cpwc_pool = Arc::new(usbf_par::ThreadPool::new(cpwc_workers));
    let cpwc_fps = |spec: &SystemSpec, engine: Arc<dyn DelayEngine + Send + Sync>| {
        let schedule = NappeSchedule::fitted(spec, cpwc_workers * 4);
        let g = &spec.volume_grid;
        let rf = EchoSynthesizer::new(spec).synthesize(
            &Phantom::point(g.position(VoxelIndex::new(
                g.n_theta() / 2,
                g.n_phi() / 2,
                g.n_depth() * 5 / 8,
            ))),
            &Pulse::from_spec(spec),
        );
        let mut pipe = FramePipeline::with_pool(
            Beamformer::new(spec),
            engine,
            FrameRing::new(vec![rf]),
            Arc::clone(&cpwc_pool),
            &schedule,
        );
        for _ in 0..5 {
            pipe.next_volume().expect("warm-up compound frame");
        }
        let start = Instant::now();
        for _ in 0..cpwc_frames {
            pipe.next_volume().expect("warm compound frame");
        }
        cpwc_frames as f64 / start.elapsed().as_secs_f64()
    };
    let mk_cpwc_engine = |spec: &SystemSpec, name: &str| -> Arc<dyn DelayEngine + Send + Sync> {
        match name {
            "EXACT" => Arc::new(ExactEngine::new(spec)),
            "NAIVE-TABLE" => {
                Arc::new(NaiveTableEngine::build(spec, u64::MAX).expect("cpwc table fits"))
            }
            "TABLEFREE" => {
                Arc::new(TableFreeEngine::new(spec, TableFreeConfig::paper()).expect("builds"))
            }
            "TABLESTEER-18b" => {
                Arc::new(TableSteerEngine::new(spec, TableSteerConfig::bits18()).expect("builds"))
            }
            other => unreachable!("unknown engine {other}"),
        }
    };
    let cpwc_angles = [1usize, 4, 16];
    let cpwc_engine_rows: Vec<(&str, Vec<(usize, f64)>)> =
        ["EXACT", "NAIVE-TABLE", "TABLEFREE", "TABLESTEER-18b"]
            .into_iter()
            .map(|name| {
                let sweep: Vec<(usize, f64)> = cpwc_angles
                    .iter()
                    .map(|&n| {
                        let spec = usbf_bench::cpwc_spec(n);
                        let fps = cpwc_fps(&spec, mk_cpwc_engine(&spec, name));
                        println!(
                    "cpwc-compound [cpwc] {name:<15} {n:>2} angles: {fps:.1} compound frames/s"
                );
                        (n, fps)
                    })
                    .collect();
                (name, sweep)
            })
            .collect();
    // EXACT's column doubles as the historical `exact_angle_sweep` key.
    let cpwc_sweep: Vec<(usize, f64)> = cpwc_engine_rows[0].1.clone();

    // --- stage_split: the PR 10 factored compound loop peeled apart on
    // one single-threaded tile — receive-leg slab fill vs per-transmit
    // combine vs the rest (quantize + gather + MAC). The first two
    // stages are re-run standalone through the public engine API
    // (mirroring the kernel's masked-transmit skip for engines without
    // rounding telemetry); the third is the remainder against the full
    // factored `beamform_tile_into`. ---
    struct StageRow {
        name: &'static str,
        rx_fill_ns: f64,
        combine_ns: f64,
        quantize_gather_mac_ns: f64,
        total_ns: f64,
    }
    let split_spec = usbf_bench::cpwc_spec(4);
    let split_bf = Beamformer::new(&split_spec);
    let split_tile = NappeSchedule::fitted(&split_spec, 16).tiles()[5];
    let split_depth = split_spec.volume_grid.n_depth();
    let split_tx = split_spec.n_transmits();
    let split_grid = &split_spec.volume_grid;
    let split_rf = EchoSynthesizer::new(&split_spec).synthesize(
        &Phantom::point(split_grid.position(VoxelIndex::new(
            split_grid.n_theta() / 2,
            split_grid.n_phi() / 2,
            split_grid.n_depth() * 5 / 8,
        ))),
        &Pulse::from_spec(&split_spec),
    );
    let split_exact = ExactEngine::new(&split_spec);
    let split_naive = NaiveTableEngine::build(&split_spec, u64::MAX).expect("cpwc table fits");
    let split_tablefree =
        TableFreeEngine::new(&split_spec, TableFreeConfig::paper()).expect("builds");
    let split_tablesteer =
        TableSteerEngine::new(&split_spec, TableSteerConfig::bits18()).expect("builds");
    let split_engines: [(&'static str, &dyn DelayEngine); 4] = [
        ("EXACT", &split_exact),
        ("NAIVE-TABLE", &split_naive),
        ("TABLEFREE", &split_tablefree),
        ("TABLESTEER-18b", &split_tablesteer),
    ];
    let mut stage_rows = Vec::new();
    // The kernel's precomputed footprint mask, in the same layout
    // `TileState` uses: engines without rounding telemetry skip masked
    // (voxel, transmit) pairs entirely, so the peel must too or the
    // combine stage is charged for work the kernel never does.
    let split_values = split_tile.scanlines() * split_depth;
    let mut split_mask = vec![0.0; split_tx * split_values];
    for tx in 0..split_tx {
        let block = &mut split_mask[tx * split_values..(tx + 1) * split_values];
        for (slot, it, ip) in split_tile.iter_scanlines() {
            for id in 0..split_depth {
                let s = split_grid.position(VoxelIndex::new(it, ip, id));
                block[slot * split_depth + id] = split_spec.transmit_weight(tx, s);
            }
        }
    }
    for (name, eng) in split_engines {
        let mut slab = NappeDelays::for_tile(&split_spec, split_tile);
        let mut tx_row = vec![0.0; split_spec.elements.count()];
        let skip_masked = !eng.rounding_telemetry();
        let mask = &split_mask;
        let fill_s = time_mean(budget, || {
            for id in 0..split_depth {
                eng.fill_nappe_rx_streamed(id, &mut slab, &mut |_, _| {});
            }
            std::hint::black_box(slab.samples()[0]);
        });
        let fill_combine_s = time_mean(budget, || {
            for id in 0..split_depth {
                eng.fill_nappe_rx_streamed(id, &mut slab, &mut |slot, rx_row| {
                    let (it, ip) = split_tile.scanline_at(slot);
                    let vox = VoxelIndex::new(it, ip, id);
                    for tx in 0..split_tx {
                        if skip_masked && mask[tx * split_values + slot * split_depth + id] == 0.0 {
                            continue;
                        }
                        eng.combine_tx_row(tx, vox, rx_row, &mut tx_row);
                    }
                });
            }
            std::hint::black_box(tx_row[0]);
        });
        let mut state = TileState::new(&split_bf, split_tile);
        let total_s = time_mean(budget, || {
            split_bf.beamform_tile_into(eng, &split_rf, &mut state);
            std::hint::black_box(state.values()[0]);
        });
        let row = StageRow {
            name,
            rx_fill_ns: fill_s * 1e9,
            combine_ns: (fill_combine_s - fill_s).max(0.0) * 1e9,
            quantize_gather_mac_ns: (total_s - fill_combine_s).max(0.0) * 1e9,
            total_ns: total_s * 1e9,
        };
        println!(
            "stage-split [cpwc, 4 angles] {name:<15} rx-fill {:9.0} ns   combine {:9.0} ns   quantize+gather+MAC {:9.0} ns   total {:9.0} ns",
            row.rx_fill_ns, row.combine_ns, row.quantize_gather_mac_ns, row.total_ns
        );
        stage_rows.push(row);
    }

    // Inline-audit note (PR 5 satellite): leaf functions checked for
    // cross-crate inlining. `QFormat::resolution` (now exp2-free) and
    // `Fixed::wide_add`/`QFormat::sum_format` (#[inline] added) showed up
    // directly in TABLESTEER's fill throughput above; `Fixed::to_f64`,
    // `QuantizedPwl::eval_tracked` and the `RfFrame` gather helpers were
    // already `#[inline]` / newly marked and measure no further shift.
    println!(
        "inline-audit: wide_add+sum_format #[inline] and branch-free resolution() \
         are load-bearing for the TABLESTEER fill rate; gather helpers inline clean"
    );

    // --- JSON ---
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"schema\": \"usbf-perf-snapshot/1\",");
    let _ = writeln!(j, "  \"pr\": 10,");
    let _ = writeln!(j, "  \"quick\": {quick},");
    let _ = writeln!(j, "  \"kernel\": {{");
    let _ = writeln!(j, "    \"spec\": \"reduced\",");
    let _ = writeln!(j, "    \"interpolation\": \"nearest\",");
    let _ = writeln!(
        j,
        "    \"tile_voxels\": {},",
        tile.scanlines() * red.volume_grid.n_depth()
    );
    let _ = writeln!(j, "    \"active_elements\": {},", bf.aperture().len());
    let _ = writeln!(j, "    \"engines\": {{");
    for (i, r) in kernel_rows.iter().enumerate() {
        let comma = if i + 1 < kernel_rows.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "      \"{}\": {{\"legacy_ns_per_voxel\": {:.1}, \"vectorized_ns_per_voxel\": {:.1}, \"speedup\": {:.3}}}{comma}",
            r.name,
            r.legacy_ns_per_voxel,
            r.vectorized_ns_per_voxel,
            r.legacy_ns_per_voxel / r.vectorized_ns_per_voxel
        );
    }
    let _ = writeln!(j, "    }}");
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"fill\": {{");
    for (i, (name, spec, rate)) in fill_rows.iter().enumerate() {
        let comma = if i + 1 < fill_rows.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    \"{name}\": {{\"spec\": \"{spec}\", \"delays_per_second\": {rate:.0}}}{comma}"
        );
    }
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"tablefree_fill\": {{");
    let _ = writeln!(j, "    \"spec\": \"reduced\",");
    let _ = writeln!(j, "    \"legacy_delays_per_second\": {tf_legacy_rate:.0},");
    let _ = writeln!(
        j,
        "    \"batched_delays_per_second\": {tf_batched_rate:.0},"
    );
    let _ = writeln!(
        j,
        "    \"speedup\": {:.3}",
        tf_batched_rate / tf_legacy_rate
    );
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"pipeline\": {{");
    let _ = writeln!(j, "    \"spec\": \"tiny\",");
    let _ = writeln!(j, "    \"frames\": {frames},");
    let _ = writeln!(j, "    \"frames_per_second\": {fps:.1},");
    let _ = writeln!(j, "    \"mean_frame_ms\": {mean_beamform_ms:.3},");
    let _ = writeln!(
        j,
        "    \"overlap_fraction\": {:.4}",
        stats.overlap_fraction()
    );
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"shard_churn\": {{");
    let _ = writeln!(j, "    \"spec\": \"tiny\",");
    let _ = writeln!(j, "    \"workers\": {churn_workers},");
    let _ = writeln!(j, "    \"churn_every_rounds\": 4,");
    let _ = writeln!(j, "    \"fleets\": {{");
    for (i, r) in churn_rows.iter().enumerate() {
        let comma = if i + 1 < churn_rows.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "      \"{}\": {{\"rounds\": {}, \"frames_per_second\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}{comma}",
            r.n_shards, r.rounds, r.frames_per_second, r.p50_ms, r.p99_ms
        );
    }
    let _ = writeln!(j, "    }}");
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"bmode_chain\": {{");
    let _ = writeln!(j, "    \"spec\": \"tiny\",");
    let _ = writeln!(j, "    \"workers\": {bmode_workers},");
    let _ = writeln!(j, "    \"frames\": {bmode_frames},");
    let _ = writeln!(j, "    \"raw_frames_per_second\": {raw_fps:.1},");
    let _ = writeln!(j, "    \"fused_frames_per_second\": {fused_fps:.1},");
    let _ = writeln!(j, "    \"fused_over_raw\": {:.4}", fused_fps / raw_fps);
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"cpwc_compound\": {{");
    let _ = writeln!(j, "    \"spec\": \"cpwc\",");
    let _ = writeln!(j, "    \"workers\": {cpwc_workers},");
    let _ = writeln!(j, "    \"frames\": {cpwc_frames},");
    let _ = writeln!(j, "    \"angles\": [1, 4, 16],");
    let _ = writeln!(j, "    \"engines\": {{");
    for (i, (name, sweep)) in cpwc_engine_rows.iter().enumerate() {
        let comma = if i + 1 < cpwc_engine_rows.len() {
            ","
        } else {
            ""
        };
        let cells: Vec<String> = sweep
            .iter()
            .map(|(n, fps)| format!("\"{n}\": {{\"frames_per_second\": {fps:.1}}}"))
            .collect();
        let _ = writeln!(j, "      \"{name}\": {{{}}}{comma}", cells.join(", "));
    }
    let _ = writeln!(j, "    }},");
    let _ = writeln!(j, "    \"exact_angle_sweep\": {{");
    for (i, (n, fps)) in cpwc_sweep.iter().enumerate() {
        let comma = if i + 1 < cpwc_sweep.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "      \"{n}\": {{\"frames_per_second\": {fps:.1}}}{comma}"
        );
    }
    let _ = writeln!(j, "    }}");
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"stage_split\": {{");
    let _ = writeln!(j, "    \"spec\": \"cpwc\",");
    let _ = writeln!(j, "    \"angles\": 4,");
    let _ = writeln!(
        j,
        "    \"tile_voxels\": {},",
        split_tile.scanlines() * split_depth
    );
    let _ = writeln!(j, "    \"engines\": {{");
    for (i, r) in stage_rows.iter().enumerate() {
        let comma = if i + 1 < stage_rows.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "      \"{}\": {{\"rx_fill_ns\": {:.0}, \"combine_ns\": {:.0}, \"quantize_gather_mac_ns\": {:.0}, \"total_ns\": {:.0}}}{comma}",
            r.name, r.rx_fill_ns, r.combine_ns, r.quantize_gather_mac_ns, r.total_ns
        );
    }
    let _ = writeln!(j, "    }}");
    let _ = writeln!(j, "  }}");
    j.push_str("}\n");
    let out = std::env::var("USBF_SNAPSHOT_OUT").unwrap_or_else(|_| "BENCH_PR10.json".to_string());
    std::fs::write(&out, &j).expect("write snapshot JSON");
    println!("wrote {out}");
}
