//! Experiment F1 — Fig. 1 / Algorithm 1: the two traversal orders visit
//! the same focal points; nappe order minimizes table walking and keeps
//! the TABLEFREE segment tracker quasi-static.
//!
//! Run with: `cargo run --release -p usbf-bench --bin exp_fig1_scan`

use std::collections::HashSet;
use usbf_bench::{compare_line, section};
use usbf_core::{TableFreeConfig, TableFreeEngine};
use usbf_geometry::scan::ScanOrder;
use usbf_geometry::SystemSpec;

fn main() {
    let spec = SystemSpec::reduced();
    let v = &spec.volume_grid;

    println!(
        "{}",
        section("F1: traversal equivalence (reduced 32x32x128 grid)")
    );
    let a: HashSet<_> = ScanOrder::ScanlineByScanline.iter(v).collect();
    let b: HashSet<_> = ScanOrder::NappeByNappe.iter(v).collect();
    println!(
        "{}",
        compare_line(
            "focal-point sets",
            "identical (Algorithm 1)",
            &format!("identical = {} ({} voxels each)", a == b, a.len())
        )
    );

    println!("{}", section("F1: reference-table locality per order"));
    for order in [ScanOrder::NappeByNappe, ScanOrder::ScanlineByScanline] {
        let mut switches = 0u64;
        let mut last = usize::MAX;
        for vox in order.iter(v) {
            if vox.id != last {
                switches += 1;
                last = vox.id;
            }
        }
        println!("{:<24} depth-slice switches: {switches}", order.to_string());
    }
    println!(
        "(nappe order touches each table slice once — the premise of the §V-B streaming design)"
    );

    println!(
        "{}",
        section("F1 x §IV-B: TABLEFREE segment tracking per order")
    );
    let engine = TableFreeEngine::new(&spec, TableFreeConfig::paper()).expect("engine builds");
    println!(
        "{:<24} {:>8} {:>12} {:>10}",
        "order", "max step", "mean steps", "evals"
    );
    for order in [ScanOrder::NappeByNappe, ScanOrder::ScanlineByScanline] {
        let stats = engine.tracking_stats_for_element(spec.elements.center_element(), order);
        println!(
            "{:<24} {:>8} {:>12.4} {:>10}",
            order.to_string(),
            stats.max_step,
            stats.mean_steps(),
            stats.evals
        );
    }
    println!("(nappe order: transitions are gradual, no segment search needed — §IV-B;");
    println!(
        " scanline order: every restart snaps the pointer back, the paper's noted inefficiency)"
    );
}
