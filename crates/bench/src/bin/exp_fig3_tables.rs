//! Experiment F3 — Fig. 3: the reference delay table, directivity
//! pruning (a), the steering-correction plane (c), and a compensated
//! table section (d).
//!
//! Run with: `cargo run --release -p usbf-bench --bin exp_fig3_tables`

use usbf_bench::{compare_line, section};
use usbf_geometry::{Directivity, ElementIndex, SystemSpec, VoxelIndex};
use usbf_tables::{PruneMask, ReferenceTable, SteeringTables};

fn main() {
    // Fig. 3a uses a 16×16×500 demo geometry "for simplicity".
    let spec = SystemSpec::figure3();
    println!(
        "{}",
        section("F3a: directivity-pruned reference table (16x16x500)")
    );
    let mask = PruneMask::build(&spec, &Directivity::paper_default());
    println!(
        "{}",
        compare_line(
            "total (depth, element) entries",
            "16x16x500 = 128e3",
            &mask.total_count().to_string()
        )
    );
    println!(
        "{}",
        compare_line(
            "pruned by directivity (45° cone)",
            "(cone-shaped void, Fig. 3a)",
            &format!(
                "{} ({:.1}%)",
                mask.pruned_count(),
                100.0 * (1.0 - mask.fraction_kept())
            )
        )
    );
    println!("kept per depth slice (series, every 50th nappe):");
    println!("depth index, kept of {}", spec.elements.count());
    for id in (0..spec.volume_grid.n_depth()).step_by(50) {
        println!("{:>11}, {}", id, mask.kept_in_slice(id));
    }

    let reference = ReferenceTable::build(&spec);
    println!("{}", section("F3a: symmetry folding"));
    println!(
        "{}",
        compare_line(
            "quadrant fold",
            "3/4 redundant",
            &format!(
                "{} stored of {} ({}x saving)",
                reference.entry_count(),
                reference.unfolded_entry_count(),
                reference.unfolded_entry_count() / reference.entry_count()
            )
        )
    );

    // Fig. 3c: the correction plane over (xD, yD) for one steered line —
    // the paper's plot spans ±1e-5 s for a steering near the fan edge.
    let paper = SystemSpec::paper();
    let steering = SteeringTables::build(&paper);
    println!(
        "{}",
        section("F3c: steering-correction plane (paper geometry)")
    );
    let (it, ip) = (110, 96); // a representative steered line of sight
    let theta = paper.volume_grid.theta_of(it).to_degrees();
    let phi = paper.volume_grid.phi_of(ip).to_degrees();
    println!("line of sight: θ = {theta:.1}°, φ = {phi:.1}°");
    println!("xD index, yD index, correction [µs]");
    for &iy in &[0usize, 33, 66, 99] {
        for &ix in &[0usize, 33, 66, 99] {
            let c =
                steering.correction_samples(VoxelIndex::new(it, ip, 0), ElementIndex::new(ix, iy));
            println!(
                "{:>8}, {:>8}, {:+.3}",
                ix,
                iy,
                paper.samples_to_seconds(c) * 1e6
            );
        }
    }
    let max_corr = paper.samples_to_seconds(steering.max_abs_correction_samples()) * 1e6;
    println!(
        "{}",
        compare_line(
            "plane range over all steerings",
            "±10 µs (Fig. 3c axis)",
            &format!("±{max_corr:.1} µs")
        )
    );

    // Fig. 3d: a section of the compensated (steered) delay table: delays
    // vs element column for a few depths on the steered line.
    println!("{}", section("F3d: compensated delay-table section"));
    let ref_paper = ReferenceTable::build(&paper);
    println!("depth index, delays [samples] for element columns 0,25,50,75,99 (row iy=50)");
    for &id in &[99usize, 299, 499, 699, 899] {
        let row: Vec<String> = [0usize, 25, 50, 75, 99]
            .iter()
            .map(|&ix| {
                let e = ElementIndex::new(ix, 50);
                let d = ref_paper.delay_samples(id, e)
                    + steering.correction_samples(VoxelIndex::new(it, ip, id), e);
                format!("{d:.0}")
            })
            .collect();
        println!("{:>11}, {}", id, row.join(", "));
    }
    println!(
        "\n(each row is one horizontal cut of Fig. 3d: reference delays shifted by a tilted plane)"
    );
}
