//! Experiment E3 — §VI-A TABLEFREE accuracy:
//!
//! * theory: two δ = 0.25 approximations sum to mean |error| ≈ 0.204,
//!   max 0.5;
//! * fixed point: mean absolute *selection* error ≈ 0.2489, max 2.
//!
//! The paper measured the full geometry; we sweep the paper-extent
//! geometry with strides (edges always included).
//!
//! Run with: `cargo run --release -p usbf-bench --bin exp_acc_tablefree`

use usbf_bench::{compare_line, inaccuracy_selection, section};
use usbf_core::{stats, DelayEngine, ExactEngine, TableFreeConfig, TableFreeEngine};
use usbf_geometry::SystemSpec;

fn main() {
    let spec = SystemSpec::paper();
    let exact = ExactEngine::new(&spec);
    let engine = TableFreeEngine::new(&spec, TableFreeConfig::paper()).expect("engine builds");

    println!("{}", section("E3: TABLEFREE accuracy at paper scale"));
    println!(
        "{}",
        compare_line(
            "PWL segments (δ = 0.25)",
            "70",
            &engine.segment_count().to_string()
        )
    );

    // Strided sweep: 13 θ × 13 φ × 51 depth × 100 elements ≈ 0.9M pairs.
    let (vox_stride, el_stride) = (1290, 101);
    let smp = stats::sample_error(&engine, &exact, &spec, vox_stride, el_stride);
    println!(
        "{}",
        compare_line(
            "pre-rounding |error| (samples)",
            "mean 0.204, max 0.5",
            &format!(
                "mean {:.4}, max {:.4}  ({} pairs)",
                smp.mean_abs, smp.max_abs, smp.count
            )
        )
    );

    let sel = stats::selection_error(&engine, &exact, &spec, vox_stride, el_stride);
    println!(
        "{}",
        compare_line(
            "selection |error| (integer index)",
            "mean 0.2489, max 2",
            &format!("{}  ({} pairs)", inaccuracy_selection(&sel), sel.count)
        )
    );
    println!("selection-error histogram: {:?}", &sel.histogram[..3]);

    println!("{}", section("E7 (§IV-B): datapath accounting"));
    let (adds, sqrts) = TableFreeEngine::ops_per_element();
    println!(
        "{}",
        compare_line(
            "ops per element per point",
            "2 additions + 1 √",
            &format!("{adds} additions + {sqrts} PWL √ (1 mult + 1 add + LUTs)")
        )
    );
    let before = engine.sqrt_evals();
    let vox = spec.volume_grid.voxel_at(1000);
    engine.delay_samples(vox, spec.elements.center_element());
    println!(
        "{}",
        compare_line(
            "√ evaluations per delay query",
            "2 (tx + rx)",
            &(engine.sqrt_evals() - before).to_string()
        )
    );

    println!("{}", section("Ablation: exact transmit √ (§IV note)"));
    let tx_exact = TableFreeEngine::new(
        &spec,
        TableFreeConfig {
            exact_transmit: true,
            ..TableFreeConfig::paper()
        },
    )
    .expect("engine builds");
    let smp_tx = stats::sample_error(&tx_exact, &exact, &spec, vox_stride, el_stride);
    println!(
        "{}",
        compare_line(
            "pre-rounding |error| w/ exact tx",
            "(halves the budget)",
            &format!("mean {:.4}, max {:.4}", smp_tx.mean_abs, smp_tx.max_abs)
        )
    );

    println!("{}", section("Ablation: δ sweep (accuracy vs LUT area)"));
    println!(
        "{:>8} {:>10} {:>14} {:>12}",
        "δ", "segments", "mean sel err", "max sel err"
    );
    for &delta in &[0.5, 0.25, 0.125] {
        let e = TableFreeEngine::new(&spec, TableFreeConfig::with_delta(delta)).expect("builds");
        let s = stats::selection_error(&e, &exact, &spec, vox_stride * 4, el_stride);
        println!(
            "{:>8} {:>10} {:>14.4} {:>12}",
            delta,
            e.segment_count(),
            s.mean_abs,
            s.max_abs
        );
    }
}
