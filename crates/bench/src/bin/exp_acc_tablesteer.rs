//! Experiment E4 — §V-A / §VI-A TABLESTEER accuracy:
//!
//! * theoretical bound ≈ 6.7 µs (214 samples at 32 MHz);
//! * practical max 3.1 µs (99 samples) inside element directivity;
//! * mean |error| over the volume ≈ 44.641 ns (≈1.4285 samples).
//!
//! Run with: `cargo run --release -p usbf-bench --bin exp_acc_tablesteer`

use usbf_bench::{compare_line, section};
use usbf_geometry::{Directivity, SystemSpec};
use usbf_tables::error::{theoretical_bound_seconds, ErrorSweep, SweepConfig};
use usbf_tables::{ReferenceTable, SteeringTables};

fn main() {
    let spec = SystemSpec::paper();

    println!("{}", section("E4: theoretical (Lagrange-style) bound"));
    let bound = theoretical_bound_seconds(&spec);
    println!(
        "{}",
        compare_line(
            "worst-case steering error bound",
            "6.7 µs = 214 samples",
            &format!(
                "{:.2} µs = {:.0} samples",
                bound * 1e6,
                spec.seconds_to_samples(bound)
            )
        )
    );

    println!("\nbuilding paper-scale reference + steering tables…");
    let reference = ReferenceTable::build(&spec);
    let steering = SteeringTables::build(&spec);
    println!(
        "reference: {} entries (folded), steering: {} coefficients",
        reference.entry_count(),
        steering.coefficient_count()
    );

    // Strided sweep with edges always included: 26×26×101 voxel grid ×
    // 21×21 elements ≈ 30M pairs — a dense proxy for the paper's
    // exhaustive Matlab exploration.
    let cfg = SweepConfig {
        stride_theta: 5,
        stride_phi: 5,
        stride_depth: 10,
        stride_elem_x: 5,
        stride_elem_y: 5,
    };

    println!("{}", section("E4: unfiltered sweep (whole volume)"));
    let unfiltered = ErrorSweep::run(&spec, &reference, &steering, cfg, None);
    println!(
        "{}",
        compare_line(
            "mean |error| (algorithmic)",
            "44.641 ns = 1.4285 samples",
            &format!(
                "{:.3} ns = {:.4} samples  ({} pairs)",
                unfiltered.mean_abs_seconds(&spec) * 1e9,
                unfiltered.mean_abs_samples,
                unfiltered.count
            )
        )
    );
    println!(
        "{}",
        compare_line(
            "max |error| (no filtering)",
            "(bounded by 214 samples)",
            &format!(
                "{:.2} µs = {:.1} samples at {} / {}",
                unfiltered.max_abs_seconds(&spec) * 1e6,
                unfiltered.max_abs_samples,
                unfiltered.argmax.0,
                unfiltered.argmax.1
            )
        )
    );

    println!(
        "{}",
        section("E4: directivity-filtered sweep (the practical maximum)")
    );
    // The paper does not state its acceptance angle; a 65° cone reproduces
    // its 3.1 µs / 99-sample practical maximum (calibrated — the stricter
    // 45° default gives ~1.5 µs / ~50 samples).
    for (label, cutoff) in [
        (
            "45° (library default)",
            Directivity::paper_default().cutoff(),
        ),
        ("65° (matches paper)", usbf_geometry::deg(65.0)),
    ] {
        let dir = Directivity::new(cutoff, 1.0);
        let filtered = ErrorSweep::run(&spec, &reference, &steering, cfg, Some(&dir));
        println!(
            "{}",
            compare_line(
                &format!("max |error| inside {label}"),
                "3.1 µs = 99 samples",
                &format!(
                    "{:.2} µs = {:.1} samples (mean {:.2}, {} pairs excluded)",
                    filtered.max_abs_seconds(&spec) * 1e6,
                    filtered.max_abs_samples,
                    filtered.mean_abs_samples,
                    filtered.excluded
                )
            )
        );
    }

    println!("{}", section("E4: where the worst errors live"));
    // Error vs depth on the worst steering line: near-field dominance.
    let (vox, e) = unfiltered.argmax;
    println!("depth index, |error| [samples] on the argmax line/element");
    for &id in &[0usize, 4, 9, 24, 49, 99, 249, 499, 999] {
        let v = usbf_geometry::VoxelIndex::new(vox.it, vox.ip, id);
        let err = usbf_tables::error::steering_error_samples(&spec, &reference, &steering, v, e);
        println!("{:>11}, {:.3}", id, err.abs());
    }
    println!("(\"the far-field approximation's worst errors occur only at extremely short");
    println!("  distances from the origin and at the extreme angles\" — §VI-A)");
}
