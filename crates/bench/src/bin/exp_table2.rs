//! Experiment T2 — Table II: Virtex-7 synthesis results, regenerated from
//! the calibrated analytical model plus live accuracy sweeps.
//!
//! Run with: `cargo run --release -p usbf-bench --bin exp_table2`

use usbf_bench::{compare_line, inaccuracy_selection, section};
use usbf_core::{
    stats, ExactEngine, TableFreeConfig, TableFreeEngine, TableSteerConfig, TableSteerEngine,
};
use usbf_fpga::{
    map_tablefree, map_tablesteer, render_table2, ArchReport, CostModel, Device, SteerVariant,
};
use usbf_geometry::{Directivity, SystemSpec};
use usbf_tables::error::{ErrorSweep, SweepConfig};
use usbf_tables::{ReferenceTable, SteeringTables};

fn main() {
    let spec = SystemSpec::paper();
    let device = Device::virtex7_xc7vx1140t();
    let cost = CostModel::calibrated();

    println!("computing inaccuracy columns (strided paper-scale sweeps)…");
    let exact = ExactEngine::new(&spec);

    // TABLEFREE: integer selection error (Table II quotes avg 0.25, max 2).
    let tf_engine = TableFreeEngine::new(&spec, TableFreeConfig::paper()).expect("builds");
    let tf_sel = stats::selection_error(&tf_engine, &exact, &spec, 2580, 101);
    let tf_inacc = inaccuracy_selection(&tf_sel);

    // TABLESTEER: the dominant inaccuracy is algorithmic; Table II quotes
    // avg 1.44-1.55, max 100 — a directivity-filtered sweep.
    let reference = ReferenceTable::build(&spec);
    let steering = SteeringTables::build(&spec);
    let cfg = SweepConfig {
        stride_theta: 8,
        stride_phi: 8,
        stride_depth: 20,
        stride_elem_x: 7,
        stride_elem_y: 7,
    };
    // 65° acceptance cone: calibrated to the paper's implicit apodization
    // criterion (see exp_acc_tablesteer — reproduces the 99-sample max).
    let dir = Directivity::new(usbf_geometry::deg(65.0), 1.0);
    let sweep = ErrorSweep::run(&spec, &reference, &steering, cfg, Some(&dir));
    // Fixed-point quantization adds (mean ≈ ¼ LSB per term); the 14b
    // variant's coarser grid shows up in the avg column (1.55 vs 1.44).
    let q14 = TableSteerConfig::bits14();
    let q18 = TableSteerConfig::bits18();
    let extra14 =
        (q14.reference_format.resolution() + 2.0 * q14.correction_format.resolution()) / 4.0;
    let extra18 =
        (q18.reference_format.resolution() + 2.0 * q18.correction_format.resolution()) / 4.0;
    let ts14_inacc = format!(
        "avg {:.2}, max {:.0}",
        sweep.mean_abs_samples + extra14,
        sweep.max_abs_samples
    );
    let ts18_inacc = format!(
        "avg {:.2}, max {:.0}",
        sweep.mean_abs_samples + extra18,
        sweep.max_abs_samples
    );

    println!(
        "{}",
        section("T2: Table II — Virtex-7 XC7VX1140T-2 (model)")
    );
    let rows = vec![
        ArchReport::new(map_tablefree(&spec, &device, &cost), &device).with_inaccuracy(tf_inacc),
        ArchReport::new(
            map_tablesteer(&spec, &device, &cost, SteerVariant::Bits14),
            &device,
        )
        .with_inaccuracy(ts14_inacc),
        ArchReport::new(
            map_tablesteer(&spec, &device, &cost, SteerVariant::Bits18),
            &device,
        )
        .with_inaccuracy(ts18_inacc),
    ];
    println!("{}", render_table2(&rows));

    println!("paper's Table II for comparison:");
    println!("TABLEFREE        100%   23%   0%  167 MHz      none  avg 0.25, max 2    1.67 Td/s  7.8 fps   42x42");
    println!("TABLESTEER-14b    91%   25%  25%  200 MHz  4.1 GB/s  avg 1.55, max 100  3.3 Td/s  19.7 fps 100x100");
    println!("TABLESTEER-18b   100%   30%  25%  200 MHz  5.3 GB/s  avg 1.44, max 100  3.3 Td/s  19.7 fps 100x100");

    println!("{}", section("E8 (§VI-B): UltraScale projection"));
    let us = Device::ultrascale_projection();
    let m = map_tablefree(&spec, &us, &cost);
    println!(
        "{}",
        compare_line(
            "TABLEFREE channels on 2x-LUT device",
            "toward 100x100 @ 10-15 fps (16nm + tuning)",
            &format!(
                "{}x{} @ {:.1} fps",
                m.channels.0, m.channels.1, m.frame_rate
            )
        )
    );

    println!("{}", section("engine-level cross-checks"));
    let steer_engine = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).expect("builds");
    let (ref_bits, corr_bits) = steer_engine.storage_bits();
    println!(
        "{}",
        compare_line(
            "quantized table storage",
            "45 Mb + 14.3 Mb",
            &format!(
                "{:.1} Mb + {:.2} Mib",
                ref_bits as f64 / 1e6,
                corr_bits as f64 / (1u64 << 20) as f64
            )
        )
    );
    println!(
        "{}",
        compare_line(
            "TABLEFREE PWL segments",
            "70",
            &tf_engine.segment_count().to_string()
        )
    );
}
