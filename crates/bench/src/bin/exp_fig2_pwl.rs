//! Experiment F2 — Fig. 2: the piecewise-linear square-root approximation.
//!
//! Regenerates: the ~70-segment table at δ = 0.25 over the system's
//! squared-distance range, the bounded error profile (the red curve of
//! Fig. 2b), the coefficient-LUT budget ("a few LUTs"), and a δ-sweep
//! ablation.
//!
//! Run with: `cargo run --release -p usbf-bench --bin exp_fig2_pwl`

use usbf_bench::{compare_line, section};
use usbf_core::TableFreeEngine;
use usbf_geometry::SystemSpec;
use usbf_pwl::{LutFormats, PwlApprox, QuantizedPwl, SqrtFn};

fn main() {
    let spec = SystemSpec::paper();
    let (lo, hi) = TableFreeEngine::sqrt_domain(&spec);
    println!("{}", section("F2: PWL √ approximation at paper scale"));
    println!(
        "argument domain: [{lo:.1}, {hi:.3e}] samples² (one-way paths up to {:.0} samples)",
        hi.sqrt()
    );

    let pwl = PwlApprox::build(&SqrtFn, (lo, hi), 0.25).expect("paper domain builds");
    println!(
        "{}",
        compare_line(
            "segments for δ = 0.25",
            "70",
            &pwl.segment_count().to_string()
        )
    );
    println!(
        "{}",
        compare_line(
            "max |error| (exact, per construction)",
            "δ = 0.25",
            &format!("{:.6}", pwl.max_error_exact(&SqrtFn))
        )
    );
    println!(
        "{}",
        compare_line(
            "mean |error| (one √, sampled)",
            "(enters the 0.204 sum)",
            &format!("{:.4}", pwl.mean_abs_error_sampled(&SqrtFn, 200_001))
        )
    );

    let quant = QuantizedPwl::quantize(&pwl, LutFormats::fitted_to(&pwl)).expect("quantizes");
    println!(
        "{}",
        compare_line(
            "coefficient LUT storage",
            "\"a few LUTs\"",
            &format!(
                "{} bits ({:.1} kb)",
                quant.storage_bits(),
                quant.storage_bits() as f64 / 1e3
            )
        )
    );
    println!(
        "{}",
        compare_line(
            "extra fixed-point error bound",
            "(kept ≪ δ)",
            &format!("{:.4} samples", quant.quantization_error_bound())
        )
    );

    // The Fig. 2b error-profile series: |approx − √| sampled across three
    // consecutive segments mid-table (equi-ripple arcs touching ±δ).
    println!("{}", section("F2b: error profile across segments (series)"));
    let mid = pwl.segment_count() / 2;
    let segs = &pwl.segments()[mid..mid + 3];
    println!("x (samples²), error (samples)");
    for s in segs {
        for k in 0..8 {
            let x = s.x0 + (s.x1 - s.x0) * k as f64 / 7.0;
            println!("{:>14.1}, {:+.4}", x, pwl.eval(x) - x.sqrt());
        }
    }

    println!("{}", section("Ablation: δ → segment count / mean error"));
    println!(
        "{:>8} {:>10} {:>12} {:>14}",
        "δ", "segments", "max error", "mean error"
    );
    for &delta in &[1.0, 0.5, 0.25, 0.125, 0.0625] {
        let p = PwlApprox::build(&SqrtFn, (lo, hi), delta).expect("builds");
        println!(
            "{:>8} {:>10} {:>12.4} {:>14.4}",
            delta,
            p.segment_count(),
            p.max_error_exact(&SqrtFn),
            p.mean_abs_error_sampled(&SqrtFn, 100_001)
        );
    }
    println!("\n(segment count scales as 1/√δ: the paper's δ = 0.25 point sits at ~70)");
}
