//! Sharded-runtime throughput: the asynchronous submit/ticket shape vs
//! the synchronous loop, and 1–4 probes multiplexed on one fixed-size
//! pool.
//!
//! Two views:
//!
//! * `shard_async_vs_sync` — one pipeline fed by a front end with real
//!   acquisition latency, driven synchronously (`next_volume`) and
//!   asynchronously (`submit` → consume previous volume → `wait`). The
//!   async shape additionally hides the caller's own consumption work
//!   behind the in-flight beamforming;
//! * `shard_scaling` — one [`ShardedRuntime`] round at 1, 2 and 4
//!   shards on the same 4-worker pool. Throughput is volumes/s
//!   (`Elements(n_shards)` per round): fair multiplexing should scale
//!   volumes per round with shard count until the workers saturate,
//!   rather than serializing shard after shard behind pool handoffs;
//! * `shard_elastic` — the churn costs of the elastic runtime: a full
//!   attach→round→detach session cycle against a streaming 3-shard
//!   fleet (the control-plane price of elasticity, dominated by
//!   schedule fitting and the pipeline's acquisition thread), and a
//!   16-shard round (fleet-scale multiplexing, 4× oversubscribed
//!   workers, where the work-stealing claim arena earns its keep).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use usbf_beamform::{Beamformer, FramePipeline, FrameSource, ShardConfig, ShardedRuntime};
use usbf_core::{DelayEngine, ExactEngine, TableSteerConfig, TableSteerEngine};
use usbf_geometry::{SystemSpec, VoxelIndex};
use usbf_par::ThreadPool;
use usbf_sim::{EchoSynthesizer, Phantom, Pulse, RfFrame};

/// Pinned worker count: benches must not depend on host core count.
const WORKERS: usize = 4;

/// Modeled front-end latency for the async-vs-sync comparison (the
/// acoustic round trip plus transfer; what the overlap hides).
const ACQUISITION_LATENCY: Duration = Duration::from_millis(1);

fn recorded_frame(spec: &SystemSpec, vox: VoxelIndex) -> RfFrame {
    EchoSynthesizer::new(spec).synthesize(
        &Phantom::point(spec.volume_grid.position(vox)),
        &Pulse::from_spec(spec),
    )
}

/// A prerecorded frame behind a modeled acquisition latency.
fn paced_ring(frame: RfFrame) -> impl FrameSource {
    move |out: &mut RfFrame| {
        std::thread::sleep(ACQUISITION_LATENCY);
        out.copy_from(&frame);
    }
}

fn bench_shard(c: &mut Criterion) {
    let spec = SystemSpec::tiny();
    let frame = recorded_frame(&spec, VoxelIndex::new(4, 4, 8));
    let pool = Arc::new(ThreadPool::new(WORKERS));
    let steer: Arc<dyn DelayEngine + Send + Sync> =
        Arc::new(TableSteerEngine::new(&spec, TableSteerConfig::bits18()).expect("builds"));

    // One probe: synchronous loop vs asynchronous submit/consume/wait.
    let mut g = c.benchmark_group("shard_async_vs_sync");
    g.throughput(Throughput::Elements(1));
    g.bench_function("synchronous_next_volume", |b| {
        let schedule = usbf_beamform::shard_fitted_schedule(&spec, WORKERS, 1);
        let mut pipe = FramePipeline::with_pool(
            Beamformer::new(&spec),
            Arc::clone(&steer),
            paced_ring(frame.clone()),
            Arc::clone(&pool),
            &schedule,
        );
        pipe.next_volume().expect("warm-up frame");
        b.iter(|| {
            let vol = pipe.next_volume().expect("warm frame");
            black_box(vol.max_abs())
        })
    });
    g.bench_function("async_submit_consume_wait", |b| {
        let schedule = usbf_beamform::shard_fitted_schedule(&spec, WORKERS, 1);
        let mut pipe = FramePipeline::with_pool(
            Beamformer::new(&spec),
            Arc::clone(&steer),
            paced_ring(frame.clone()),
            Arc::clone(&pool),
            &schedule,
        );
        pipe.next_volume().expect("warm-up frame");
        b.iter(|| {
            let ticket = pipe.submit().expect("warm submit");
            // Caller-side consumption of frame n−1, overlapped with the
            // in-flight beamforming of frame n.
            let consumed = ticket.previous_volume().map(|v| v.max_abs());
            black_box(consumed);
            let vol = ticket.wait().expect("warm frame");
            black_box(vol.max_abs())
        })
    });
    g.finish();

    // 1–4 probes on the same pool: volumes per second across shards.
    let mut g = c.benchmark_group("shard_scaling");
    for n_shards in [1usize, 2, 4] {
        g.throughput(Throughput::Elements(n_shards as u64));
        g.bench_function(format!("{n_shards}_shards_round"), |b| {
            let configs = (0..n_shards)
                .map(|i| {
                    let engine: Arc<dyn DelayEngine + Send + Sync> = if i % 2 == 0 {
                        Arc::new(ExactEngine::new(&spec))
                    } else {
                        Arc::clone(&steer)
                    };
                    ShardConfig::new(
                        Beamformer::new(&spec),
                        engine,
                        usbf_beamform::FrameRing::new(vec![frame.clone()]),
                    )
                })
                .collect();
            let mut rt = ShardedRuntime::new(Arc::clone(&pool), configs);
            let mut outcomes = Vec::new();
            rt.round_into(&mut outcomes); // warm-up
            b.iter(|| {
                rt.round_into(&mut outcomes);
                black_box(outcomes.iter().filter(|o| o.is_ok()).count())
            })
        });
    }
    g.finish();

    // Elasticity: session churn against a streaming fleet, and a
    // fleet-scale round.
    let mut g = c.benchmark_group("shard_elastic");
    let shard_config = |i: usize| {
        let engine: Arc<dyn DelayEngine + Send + Sync> = if i.is_multiple_of(2) {
            Arc::new(ExactEngine::new(&spec))
        } else {
            Arc::clone(&steer)
        };
        ShardConfig::new(
            Beamformer::new(&spec),
            engine,
            usbf_beamform::FrameRing::new(vec![frame.clone()]),
        )
    };
    g.throughput(Throughput::Elements(1));
    g.bench_function("attach_round_detach", |b| {
        let mut rt = ShardedRuntime::new(Arc::clone(&pool), (0..3).map(shard_config).collect());
        let mut outcomes = Vec::new();
        rt.round_into(&mut outcomes); // warm the resident fleet
        b.iter(|| {
            let id = rt.attach_shard(shard_config(3)).expect("under budget");
            rt.round_into(&mut outcomes);
            let stats = rt.detach_shard(id).expect("live");
            black_box(stats.frames)
        })
    });
    g.throughput(Throughput::Elements(16));
    g.bench_function("16_shards_round", |b| {
        let mut rt = ShardedRuntime::new(Arc::clone(&pool), (0..16).map(shard_config).collect());
        let mut outcomes = Vec::new();
        rt.round_into(&mut outcomes); // warm-up
        b.iter(|| {
            rt.round_into(&mut outcomes);
            black_box(outcomes.iter().filter(|o| o.is_ok()).count())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_shard);
criterion_main!(benches);
