//! PWL square-root evaluation: direct (binary-search) vs tracked
//! (the Fig. 2 hardware policy) vs quantized datapath.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use usbf_pwl::{LutFormats, PwlApprox, QuantizedPwl, SqrtFn, TrackingEvaluator};

fn bench_pwl(c: &mut Criterion) {
    let table = PwlApprox::build(&SqrtFn, (64.0, 16.0e6), 0.25).expect("builds");
    let quant = QuantizedPwl::quantize(&table, LutFormats::paper_default()).expect("quantizes");
    // A slowly drifting argument sequence, as a nappe sweep produces.
    let args: Vec<f64> = (0..8192).map(|i| 100.0 + i as f64 * 1900.0).collect();

    let mut g = c.benchmark_group("pwl_eval");
    g.throughput(Throughput::Elements(args.len() as u64));
    g.bench_function("direct_binary_search", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &x in &args {
                acc += table.eval(black_box(x));
            }
            acc
        })
    });
    g.bench_function("tracking_pointer", |b| {
        b.iter(|| {
            let mut tr = TrackingEvaluator::new(&table);
            let mut acc = 0.0;
            for &x in &args {
                acc += tr.eval(black_box(x)).expect("unbounded tracker");
            }
            acc
        })
    });
    g.bench_function("quantized_datapath", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &x in &args {
                acc += quant.eval(black_box(x));
            }
            acc
        })
    });
    g.bench_function("f64_sqrt_baseline", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &x in &args {
                acc += black_box(x).sqrt();
            }
            acc
        })
    });
    g.finish();

    let mut g = c.benchmark_group("pwl_build");
    for &delta in &[0.5, 0.25, 0.125] {
        g.bench_function(format!("delta_{delta}"), |b| {
            b.iter(|| PwlApprox::build(&SqrtFn, (64.0, 16.0e6), black_box(delta)).expect("builds"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pwl);
criterion_main!(benches);
