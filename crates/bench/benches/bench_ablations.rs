//! Ablation benches for the design choices DESIGN.md §4 calls out:
//! δ grain, fixed-point widths, scan-order locality, symmetry folding.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use usbf_core::{TableFreeConfig, TableFreeEngine};
use usbf_fixed::analysis::rounding_flip_stats;
use usbf_fixed::{QFormat, RoundingMode};
use usbf_geometry::scan::ScanOrder;
use usbf_geometry::SystemSpec;
use usbf_tables::ReferenceTable;

fn bench_ablations(c: &mut Criterion) {
    // 1. δ sweep: build cost of the PWL engine per δ.
    let spec = SystemSpec::reduced();
    let mut g = c.benchmark_group("ablation_delta_engine_build");
    for &delta in &[0.5, 0.25, 0.125] {
        g.bench_function(format!("delta_{delta}"), |b| {
            b.iter(|| {
                TableFreeEngine::new(black_box(&spec), TableFreeConfig::with_delta(delta))
                    .expect("builds")
            })
        });
    }
    g.finish();

    // 2. Fixed-point width: cost of the rounding-flip analysis per format
    //    pair (the E5 kernel).
    let triples: Vec<(f64, f64, f64)> = (0..4096)
        .map(|i| {
            let x = i as f64;
            (
                x.mul_add(1.9, 3.3) % 8000.0,
                (x * 0.37) % 300.0 - 150.0,
                (x * 0.11) % 300.0 - 150.0,
            )
        })
        .collect();
    let mut g = c.benchmark_group("ablation_fixed_width_flips");
    for (name, rf, cf) in [
        ("int13", QFormat::INT_13, QFormat::signed(13, 0)),
        ("bits14", QFormat::REF_14, QFormat::CORR_14),
        ("bits18", QFormat::REF_18, QFormat::CORR_18),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| rounding_flip_stats(rf, cf, triples.iter().copied(), RoundingMode::HalfUp))
        });
    }
    g.finish();

    // 3. Scan order: full-frame tracking walk per order (the §IV-B
    //    gradual-transition property vs the scanline restart penalty).
    let engine = TableFreeEngine::new(&spec, TableFreeConfig::paper()).expect("builds");
    let center = spec.elements.center_element();
    let mut g = c.benchmark_group("ablation_scan_order_tracking");
    g.sample_size(10);
    for order in [ScanOrder::NappeByNappe, ScanOrder::ScanlineByScanline] {
        g.bench_function(order.name(), |b| {
            b.iter(|| engine.tracking_stats_for_element(black_box(center), order))
        });
    }
    g.finish();

    // 4. Symmetry folding: table build with a centred (foldable) vs
    //    displaced (unfoldable, 4x larger) origin.
    let centred = SystemSpec::reduced();
    let displaced = SystemSpec::new(
        centred.speed_of_sound,
        centred.sampling_frequency,
        centred.transducer.clone(),
        centred.volume.clone(),
        usbf_geometry::Vec3::new(1.0e-3, 0.0, 0.0),
        centred.frame_rate,
    );
    let mut g = c.benchmark_group("ablation_fold_reference_build");
    g.bench_function("centred_folded", |b| {
        b.iter(|| ReferenceTable::build(black_box(&centred)))
    });
    g.bench_function("displaced_unfolded", |b| {
        b.iter(|| ReferenceTable::build(black_box(&displaced)))
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
