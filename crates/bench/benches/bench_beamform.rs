//! End-to-end beamforming rate (voxels/s) per delay engine.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use usbf_beamform::{Apodization, Beamformer};
use usbf_core::{
    DelayEngine, ExactEngine, TableFreeConfig, TableFreeEngine, TableSteerConfig, TableSteerEngine,
};
use usbf_geometry::{SystemSpec, VoxelIndex};
use usbf_sim::{EchoSynthesizer, Phantom, Pulse};

fn bench_beamform(c: &mut Criterion) {
    let spec = SystemSpec::tiny();
    let vox = VoxelIndex::new(4, 4, 8);
    let rf = EchoSynthesizer::new(&spec).synthesize(
        &Phantom::point(spec.volume_grid.position(vox)),
        &Pulse::from_spec(&spec),
    );
    let bf = Beamformer::new(&spec).with_apodization(Apodization::Hann);
    let exact = ExactEngine::new(&spec);
    let tablefree = TableFreeEngine::new(&spec, TableFreeConfig::paper()).expect("builds");
    let tablesteer = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).expect("builds");

    let mut g = c.benchmark_group("beamform_volume_tiny");
    g.throughput(Throughput::Elements(spec.volume_grid.voxel_count() as u64));
    let engines: [(&str, &dyn DelayEngine); 3] = [
        ("exact", &exact),
        ("tablefree", &tablefree),
        ("tablesteer18", &tablesteer),
    ];
    for (name, eng) in engines {
        g.bench_function(name, |b| {
            b.iter(|| bf.beamform_volume(black_box(eng), black_box(&rf)))
        });
    }
    g.finish();

    // Batched parallel pipeline vs the scalar per-voxel reference walk on
    // a realistic fan (32×32×128 voxels, 1024 elements): nappe order runs
    // the tiled fill_nappe path across threads, scanline order the legacy
    // scalar loop. Outputs are bit-identical; only the throughput differs.
    use usbf_geometry::scan::ScanOrder;
    let red = SystemSpec::reduced();
    let red_rf = EchoSynthesizer::new(&red).synthesize(
        &Phantom::point(red.volume_grid.position(VoxelIndex::new(16, 16, 64))),
        &Pulse::from_spec(&red),
    );
    let red_steer = TableSteerEngine::new(&red, TableSteerConfig::bits18()).expect("builds");
    let mut g = c.benchmark_group("beamform_volume_reduced");
    g.throughput(Throughput::Elements(red.volume_grid.voxel_count() as u64));
    g.bench_function("tablesteer18_batched_parallel", |b| {
        let bf = Beamformer::new(&red).with_order(ScanOrder::NappeByNappe);
        b.iter(|| bf.beamform_volume(black_box(&red_steer), black_box(&red_rf)))
    });
    g.bench_function("tablesteer18_scalar_single_thread", |b| {
        let bf = Beamformer::new(&red).with_order(ScanOrder::ScanlineByScanline);
        b.iter(|| bf.beamform_volume(black_box(&red_steer), black_box(&red_rf)))
    });
    g.finish();

    // Single-thread inner-kernel throughput on one schedule tile of the
    // reduced spec (1024 elements per voxel): the PR 4 per-element loop
    // (virtual delay_index_from + div/mod + w==0 branch + per-fetch
    // offset recompute) vs the vectorized row-batched kernel
    // (quantize_row → gather → chunked MAC). Bit-identical outputs; the
    // acceptance gate for PR 5 is ≥2× here.
    use usbf_beamform::TileState;
    let tile = usbf_core::NappeSchedule::fitted(&red, 64).tiles()[27];
    let tile_voxels = (tile.scanlines() * red.volume_grid.n_depth()) as u64;
    let mut g = c.benchmark_group("tile_kernel_reduced");
    g.throughput(Throughput::Elements(tile_voxels));
    let red_exact = ExactEngine::new(&red);
    for (name, eng) in [
        ("tablesteer18", &red_steer as &dyn DelayEngine),
        ("exact", &red_exact as &dyn DelayEngine),
    ] {
        let bf = Beamformer::new(&red).with_apodization(Apodization::Hann);
        let weights = bf.element_weights();
        g.bench_function(format!("{name}_pr4_legacy"), |b| {
            let mut slab = usbf_core::NappeDelays::for_tile(&red, tile);
            let mut values = vec![0.0; tile.scanlines() * red.volume_grid.n_depth()];
            b.iter(|| {
                usbf_bench::legacy_beamform_tile_into(
                    &bf,
                    usbf_beamform::Interpolation::Nearest,
                    black_box(eng),
                    black_box(&red_rf),
                    &weights,
                    &mut slab,
                    &mut values,
                );
                black_box(values[0])
            })
        });
        g.bench_function(format!("{name}_vectorized"), |b| {
            let mut state = TileState::new(&bf, tile);
            b.iter(|| {
                bf.beamform_tile_into(black_box(eng), black_box(&red_rf), &mut state);
                black_box(state.values()[0])
            })
        });
    }
    g.finish();

    // TABLEFREE slab-fill throughput (delays/s) on the reduced spec: the
    // PR 5 per-element eval_tracked fill vs the segment-major batched row
    // evaluator. Bit-identical slabs; the acceptance gate for PR 6 is
    // ≥10× here.
    let red_free = TableFreeEngine::new(&red, TableFreeConfig::paper()).expect("builds");
    let mut g = c.benchmark_group("tablefree_fill_reduced");
    {
        let mut slab = usbf_core::NappeDelays::full(&red);
        let per_pass = red.volume_grid.n_depth() as u64
            * slab.scanline_count() as u64
            * slab.n_elements() as u64;
        g.throughput(Throughput::Elements(per_pass));
        g.bench_function("pr5_legacy_eval_tracked", |b| {
            let legacy = usbf_bench::LegacyTableFreeFill::new(&red_free);
            b.iter(|| {
                for id in 0..red.volume_grid.n_depth() {
                    legacy.fill(black_box(&red_free), id, &mut slab);
                }
                black_box(slab.samples()[0])
            })
        });
        g.bench_function("segment_major_batched", |b| {
            b.iter(|| {
                for id in 0..red.volume_grid.n_depth() {
                    red_free.fill_nappe(id, &mut slab);
                }
                black_box(slab.samples()[0])
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("beamform_single_voxel");
    g.bench_function("exact_hann", |b| {
        b.iter(|| bf.beamform_voxel(&exact, black_box(&rf), black_box(vox)))
    });
    g.finish();

    let mut g = c.benchmark_group("echo_synthesis");
    let phantom = Phantom::speckle(
        256,
        usbf_geometry::Vec3::new(-0.02, -0.02, 0.05),
        usbf_geometry::Vec3::new(0.02, 0.02, 0.15),
        7,
    );
    let pulse = Pulse::from_spec(&spec);
    g.bench_function("speckle_256_tiny", |b| {
        b.iter(|| EchoSynthesizer::new(&spec).synthesize(black_box(&phantom), black_box(&pulse)))
    });
    g.finish();
}

criterion_group!(benches, bench_beamform);
criterion_main!(benches);
