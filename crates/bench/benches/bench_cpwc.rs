//! Coherent plane-wave compounding cost: how per-engine delay
//! generation and end-to-end frame rate scale with the number of
//! compounded transmit angles.
//!
//! Two groups on the narrow-cone CPWC spec ([`usbf_bench::cpwc_spec`]),
//! each swept over 1 / 4 / 16 angles:
//!
//! * `cpwc_fill` — per-engine `fill_nappe_for` throughput over the full
//!   transmit sequence (every angle × every nappe of a full-fan slab).
//!   EXACT recomputes the transmit leg per angle, NAIVE-TABLE strides
//!   into its per-transmit table blocks, TABLESTEER folds Δtx into the
//!   per-row correction constant (zero inner-loop cost) and TABLEFREE
//!   pays no sqrt for the linear plane-wave leg — the sweep makes those
//!   scaling laws measurable;
//! * `cpwc_compound_frame` — warm `FramePipeline` frames/s with the
//!   N-angle compound running as ONE frame on a pinned 4-worker pool.
//!   The reported elements/s **is** compound frames/s;
//! * `factored_vs_fused` — the PR 10 tentpole isolated on one
//!   single-threaded tile: `Beamformer::beamform_tile_into` with the
//!   engine's factored family (receive-leg slab filled once per nappe +
//!   per-transmit combines) vs the same engine behind
//!   [`usbf_core::FusedOnly`], which hides the family and forces the
//!   pre-PR-10 per-transmit fused loop. The fused baseline is
//!   bit-identity-tested against the factored path (bench lib +
//!   beamform proptests), so the speedup it measures is honest.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use usbf_beamform::{Beamformer, FramePipeline, FrameRing, TileState};
use usbf_core::{
    DelayEngine, ExactEngine, NaiveTableEngine, NappeDelays, NappeSchedule, TableFreeConfig,
    TableFreeEngine, TableSteerConfig, TableSteerEngine,
};
use usbf_geometry::{SystemSpec, VoxelIndex};
use usbf_par::ThreadPool;
use usbf_sim::{EchoSynthesizer, Phantom, Pulse, RfFrame};

/// Pinned worker count: benches must not depend on host core count.
const WORKERS: usize = 4;

const ANGLES: [usize; 3] = [1, 4, 16];

fn engines(spec: &SystemSpec) -> Vec<(&'static str, Box<dyn DelayEngine>)> {
    vec![
        ("EXACT", Box::new(ExactEngine::new(spec))),
        (
            "NAIVE-TABLE",
            Box::new(NaiveTableEngine::build(spec, u64::MAX).expect("tiny table fits")),
        ),
        (
            "TABLEFREE",
            Box::new(TableFreeEngine::new(spec, TableFreeConfig::paper()).expect("builds")),
        ),
        (
            "TABLESTEER-18b",
            Box::new(TableSteerEngine::new(spec, TableSteerConfig::bits18()).expect("builds")),
        ),
    ]
}

fn compound_rf(spec: &SystemSpec) -> RfFrame {
    let g = &spec.volume_grid;
    let target = g.position(VoxelIndex::new(
        g.n_theta() / 2,
        g.n_phi() / 2,
        g.n_depth() * 5 / 8,
    ));
    EchoSynthesizer::new(spec).synthesize(&Phantom::point(target), &Pulse::from_spec(spec))
}

fn bench_cpwc(c: &mut Criterion) {
    // Per-engine delay generation for the whole compound sequence.
    let mut g = c.benchmark_group("cpwc_fill");
    for n_angles in ANGLES {
        let spec = usbf_bench::cpwc_spec(n_angles);
        let mut slab = NappeDelays::full(&spec);
        let delays_per_pass = n_angles as u64
            * spec.volume_grid.n_depth() as u64
            * slab.scanline_count() as u64
            * slab.n_elements() as u64;
        g.throughput(Throughput::Elements(delays_per_pass));
        for (name, engine) in engines(&spec) {
            g.bench_function(format!("{name}/{n_angles}"), |b| {
                b.iter(|| {
                    for tx in 0..n_angles {
                        for id in 0..spec.volume_grid.n_depth() {
                            engine.fill_nappe_for(tx, id, &mut slab);
                        }
                    }
                    black_box(slab.samples()[0])
                })
            });
        }
    }
    g.finish();

    // End-to-end: the N-angle compound as one warm pipeline frame.
    let mut g = c.benchmark_group("cpwc_compound_frame");
    g.throughput(Throughput::Elements(1));
    let pool = Arc::new(ThreadPool::new(WORKERS));
    for n_angles in ANGLES {
        let spec = usbf_bench::cpwc_spec(n_angles);
        let schedule = NappeSchedule::fitted(&spec, WORKERS * 4);
        let rf = compound_rf(&spec);
        for (name, engine) in [
            (
                "EXACT",
                Arc::new(ExactEngine::new(&spec)) as Arc<dyn DelayEngine + Send + Sync>,
            ),
            (
                "TABLESTEER-18b",
                Arc::new(TableSteerEngine::new(&spec, TableSteerConfig::bits18()).expect("builds")),
            ),
        ] {
            g.bench_function(format!("{name}/{n_angles}"), |b| {
                let mut pipe = FramePipeline::with_pool(
                    Beamformer::new(&spec),
                    engine.clone(),
                    FrameRing::new(vec![rf.clone()]),
                    Arc::clone(&pool),
                    &schedule,
                );
                pipe.next_volume().expect("warm-up frame");
                b.iter(|| {
                    let vol = pipe.next_volume().expect("warm frame");
                    black_box(vol.max_abs())
                })
            });
        }
    }
    g.finish();

    // The factored compound loop vs the fused per-transmit baseline on
    // one tile, single-threaded (the pure kernel-shape comparison, no
    // pool scheduling in the measurement).
    let mut g = c.benchmark_group("factored_vs_fused");
    g.throughput(Throughput::Elements(1));
    for n_angles in [4usize, 16] {
        let spec = usbf_bench::cpwc_spec(n_angles);
        let rf = compound_rf(&spec);
        let bf = Beamformer::new(&spec);
        let tile = NappeSchedule::fitted(&spec, 16).tiles()[5];
        let exact = ExactEngine::new(&spec);
        let exact_fused = usbf_core::FusedOnly(ExactEngine::new(&spec));
        let tablefree = TableFreeEngine::new(&spec, TableFreeConfig::paper()).expect("builds");
        let tablefree_fused = usbf_core::FusedOnly(
            TableFreeEngine::new(&spec, TableFreeConfig::paper()).expect("builds"),
        );
        let cases: [(&str, &dyn DelayEngine); 4] = [
            ("EXACT-factored", &exact),
            ("EXACT-fused", &exact_fused),
            ("TABLEFREE-factored", &tablefree),
            ("TABLEFREE-fused", &tablefree_fused),
        ];
        for (name, engine) in cases {
            let mut state = TileState::new(&bf, tile);
            g.bench_function(format!("{name}/{n_angles}"), |b| {
                b.iter(|| {
                    bf.beamform_tile_into(engine, &rf, &mut state);
                    black_box(state.values()[0])
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_cpwc);
criterion_main!(benches);
