//! Frame-loop dispatch cost: spawn-per-frame scoped threads vs the
//! persistent worker pool.
//!
//! The paper's streaming architecture beamforms volumes continuously, so
//! per-frame orchestration overhead is paid thousands of times per
//! second. Three views, all with a fixed worker count so the comparison
//! is meaningful on any host:
//!
//! * `dispatch_only` — the pure overhead floor: map a trivial closure
//!   over the schedule-tile count, spawn-per-call vs pool;
//! * `frames_per_second` — end-to-end `beamform_volume` frames, tiled
//!   over spawned scoped threads vs a warm [`VolumeLoop`] (the reported
//!   rate in elements/s **is** frames/s);
//! * `warm_loop` — the steady-state `VolumeLoop` frame time on the
//!   host-fitted schedule, the number a real-time loop budgets against.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use usbf_beamform::{Beamformer, VolumeLoop};
use usbf_core::{DelayEngine, NappeSchedule, TableSteerConfig, TableSteerEngine, Tile};
use usbf_geometry::{SystemSpec, VoxelIndex};
use usbf_par::ThreadPool;
use usbf_sim::{EchoSynthesizer, Phantom, Pulse, RfFrame};

/// Pinned worker count: benches must not depend on host core count.
const WORKERS: usize = 4;

/// The pre-pool dispatcher, kept verbatim as the baseline: spawn `n`
/// scoped threads per call, claim items dynamically, join.
fn spawn_per_call_map<T: Sync, R: Send, F: Fn(usize, &T) -> R + Sync>(
    workers: usize,
    items: &[T],
    f: F,
) -> Vec<R> {
    let next = AtomicUsize::new(0);
    let mut chunks: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for chunk in chunks.drain(..) {
        for (i, r) in chunk {
            out[i] = Some(r);
        }
    }
    out.into_iter().map(|r| r.unwrap()).collect()
}

/// Beamform one full volume by spawning fresh threads over the schedule
/// tiles and scattering into a freshly allocated output — what every
/// frame of a real-time loop cost before the pool existed (per-frame
/// slabs, staging buffers, output volume and thread spawns).
fn beamform_spawn_per_frame(
    bf: &Beamformer,
    engine: &dyn DelayEngine,
    rf: &RfFrame,
    tiles: &[Tile],
) -> usbf_beamform::BeamformedVolume {
    let n_depth = bf.spec().volume_grid.n_depth();
    let per_tile = spawn_per_call_map(WORKERS.min(tiles.len()), tiles, |_, &tile| {
        let mut state = usbf_beamform::TileState::new(bf, tile);
        bf.beamform_tile_into(engine, rf, &mut state);
        state
    });
    let mut out = usbf_beamform::BeamformedVolume::zeros(bf.spec());
    for (tile, state) in tiles.iter().zip(per_tile) {
        for (slot, it, ip) in tile.iter_scanlines() {
            for (id, &v) in state.values()[slot * n_depth..(slot + 1) * n_depth]
                .iter()
                .enumerate()
            {
                out.set(VoxelIndex::new(it, ip, id), v);
            }
        }
    }
    out
}

fn bench_pool(c: &mut Criterion) {
    let spec = SystemSpec::tiny();
    let rf = EchoSynthesizer::new(&spec).synthesize(
        &Phantom::point(spec.volume_grid.position(VoxelIndex::new(4, 4, 8))),
        &Pulse::from_spec(&spec),
    );
    let engine = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).expect("builds");
    let pool = Arc::new(ThreadPool::new(WORKERS));
    let schedule = NappeSchedule::fitted(&spec, WORKERS * 4);
    let tiles = schedule.tiles();

    // Pure dispatch overhead: the work itself is one multiply per item,
    // so the difference is thread spawn + join vs channel wake.
    let items: Vec<u64> = (0..tiles.len() as u64).collect();
    let mut g = c.benchmark_group("pool_dispatch_only");
    g.bench_function("spawn_per_call", |b| {
        b.iter(|| spawn_per_call_map(WORKERS, black_box(&items), |_, &x| x * 2))
    });
    g.bench_function("persistent_pool", |b| {
        b.iter(|| pool.par_map_indexed(black_box(&items), |_, &x| x * 2))
    });
    g.finish();

    // End-to-end frames per second: identical tile kernels, different
    // orchestration. Throughput is 1 element per iteration, so the
    // reported elements/s is frames/s.
    let mut g = c.benchmark_group("pool_frames_per_second");
    g.throughput(Throughput::Elements(1));
    g.bench_function("spawn_per_frame", |b| {
        let bf = Beamformer::new(&spec);
        b.iter(|| beamform_spawn_per_frame(&bf, black_box(&engine), black_box(&rf), &tiles))
    });
    g.bench_function("persistent_pool_volume_loop", |b| {
        let mut rt = VolumeLoop::with_pool(Beamformer::new(&spec), Arc::clone(&pool), &schedule);
        rt.beamform(&engine, &rf); // warm-up: all allocation happens here
        b.iter(|| {
            rt.beamform(black_box(&engine), black_box(&rf));
            black_box(rt.volume().max_abs())
        })
    });
    g.finish();

    // Steady-state warm loop on the default (host-fitted) configuration.
    let mut g = c.benchmark_group("pool_warm_loop");
    g.throughput(Throughput::Elements(1));
    g.bench_function("volume_loop_host_default", |b| {
        let mut rt = VolumeLoop::new(Beamformer::new(&spec));
        rt.beamform(&engine, &rf);
        b.iter(|| {
            rt.beamform(black_box(&engine), black_box(&rf));
            black_box(rt.volume().max_abs())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pool);
criterion_main!(benches);
