//! Overlapped-pipeline throughput and preregistered-job dispatch cost.
//!
//! Three views, all with a fixed worker count so the comparison is
//! meaningful on any host:
//!
//! * `dispatch_only` — per-frame dispatch overhead of the two pool
//!   paths: a `scope` that boxes one task per tile vs a preregistered
//!   [`JobHandle`] run (barrier allocated once, borrowed closure, no
//!   per-tile boxing);
//! * `frames_per_second` — end-to-end frame rate, acquisition included:
//!   a serial loop (acquire, then beamform, on one thread) vs the
//!   overlapped [`FramePipeline`] (acquisition of frame `n+1` hidden
//!   behind beamforming of frame `n`). The source models a front end
//!   with real acquisition latency — the acoustic round trip plus
//!   transfer time that a probe cannot hand a frame over faster than —
//!   followed by CPU-side echo synthesis; that latency is exactly what
//!   the overlap hides, on any core count. The reported elements/s
//!   **is** frames/s;
//! * `volume_loop_dispatch` — the warm `VolumeLoop` frame itself, now on
//!   the preregistered path, against the same work dispatched through a
//!   boxed scope (what `VolumeLoop` did before this layer existed).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use usbf_beamform::{Beamformer, FramePipeline, FrameSource, SynthesizedFrames, VolumeLoop};
use usbf_core::{NappeSchedule, TableSteerConfig, TableSteerEngine};
use usbf_geometry::{SystemSpec, Vec3};
use usbf_par::ThreadPool;
use usbf_sim::{EchoSynthesizer, Phantom, Pulse, RfFrame};

/// Pinned worker count: benches must not depend on host core count.
const WORKERS: usize = 4;

/// Front-end acquisition latency per frame: the sound's round trip to
/// 500λ depth and back plus transducer-to-host transfer. 2 ms ≈ a
/// 500-volume/s front end — conservative against the paper's rates.
const ACQUISITION_LATENCY: std::time::Duration = std::time::Duration::from_millis(2);

/// A speckle phantom with enough scatterers that acquisition is a
/// meaningful fraction of frame time — the regime overlap exists for.
fn speckle_phantom() -> Phantom {
    Phantom::speckle(
        40,
        Vec3::new(-0.01, -0.01, 0.02),
        Vec3::new(0.01, 0.01, 0.06),
        7,
    )
}

/// An acquisition front end: waits out the physical acquisition latency,
/// then synthesizes the frame's echoes into the buffer.
fn paced_source(spec: &SystemSpec, pulse: &Pulse, phantom: &Phantom) -> impl FrameSource {
    let mut inner = SynthesizedFrames::new(
        EchoSynthesizer::new(spec),
        pulse.clone(),
        vec![phantom.clone()],
    );
    move |out: &mut RfFrame| {
        std::thread::sleep(ACQUISITION_LATENCY);
        inner.next_frame(out);
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let spec = SystemSpec::tiny();
    let engine =
        Arc::new(TableSteerEngine::new(&spec, TableSteerConfig::bits18()).expect("builds"));
    let pool = Arc::new(ThreadPool::new(WORKERS));
    let schedule = NappeSchedule::fitted(&spec, WORKERS * 4);
    let n_tiles = schedule.tiles().len();
    let pulse = Pulse::from_spec(&spec);
    let phantom = speckle_phantom();

    // Pure dispatch overhead: trivial per-task work, so the difference
    // is (Arc + per-tile box + queue churn) vs (re-announce + claim).
    let mut g = c.benchmark_group("pipeline_dispatch_only");
    g.bench_function("scope_boxed_tasks", |b| {
        let mut slots = vec![0u64; n_tiles];
        b.iter(|| {
            pool.scope(|s| {
                for slot in slots.iter_mut() {
                    s.spawn(move || *slot = black_box(*slot) * 2 + 1);
                }
            });
            black_box(slots[0])
        })
    });
    g.bench_function("preregistered_job", |b| {
        let mut job = ThreadPool::register(&pool);
        let mut slots = vec![0u64; n_tiles];
        b.iter(|| {
            job.run(&mut slots, &|_, slot: &mut u64| {
                *slot = black_box(*slot) * 2 + 1;
            });
            black_box(slots[0])
        })
    });
    g.finish();

    // End-to-end: acquisition + beamforming per frame. The serial loop
    // pays them in sequence; the pipeline hides acquisition behind the
    // previous frame's beamforming.
    let mut g = c.benchmark_group("pipeline_frames_per_second");
    g.throughput(Throughput::Elements(1));
    g.bench_function("serial_acquire_then_beamform", |b| {
        let mut source = paced_source(&spec, &pulse, &phantom);
        let mut rf = RfFrame::zeros(
            spec.elements.nx(),
            spec.elements.ny(),
            spec.echo_buffer_len(),
        );
        let mut rt = VolumeLoop::with_pool(Beamformer::new(&spec), Arc::clone(&pool), &schedule);
        b.iter(|| {
            source.next_frame(&mut rf);
            rt.beamform(black_box(engine.as_ref()), black_box(&rf));
            black_box(rt.volume().max_abs())
        })
    });
    g.bench_function("overlapped_frame_pipeline", |b| {
        let mut pipe = FramePipeline::with_pool(
            Beamformer::new(&spec),
            Arc::clone(&engine) as Arc<dyn usbf_core::DelayEngine + Send + Sync>,
            paced_source(&spec, &pulse, &phantom),
            Arc::clone(&pool),
            &schedule,
        );
        pipe.next_volume().expect("warm-up frame");
        b.iter(|| {
            let vol = pipe.next_volume().expect("warm frame");
            black_box(vol.max_abs())
        })
    });
    g.bench_function("async_submit_ticket_wait", |b| {
        // The three-stage shape: the ticket is redeemed only after the
        // caller touches the previous volume, so redemption overlaps
        // caller-side consumption as well as the next acquisition.
        let mut pipe = FramePipeline::with_pool(
            Beamformer::new(&spec),
            Arc::clone(&engine) as Arc<dyn usbf_core::DelayEngine + Send + Sync>,
            paced_source(&spec, &pulse, &phantom),
            Arc::clone(&pool),
            &schedule,
        );
        pipe.next_volume().expect("warm-up frame");
        b.iter(|| {
            let ticket = pipe.submit().expect("warm submit");
            let consumed = ticket.previous_volume().map(|v| v.max_abs());
            black_box(consumed);
            let vol = ticket.wait().expect("warm frame");
            black_box(vol.max_abs())
        })
    });
    g.finish();

    // The warm VolumeLoop frame on its preregistered job, vs the same
    // tile kernels dispatched through a boxed scope per frame.
    let mut g = c.benchmark_group("pipeline_volume_loop_dispatch");
    g.throughput(Throughput::Elements(1));
    let rf = EchoSynthesizer::new(&spec).synthesize(&phantom, &pulse);
    g.bench_function("boxed_scope_per_frame", |b| {
        let bf = Beamformer::new(&spec);
        let mut states: Vec<usbf_beamform::TileState> = schedule
            .tiles()
            .iter()
            .map(|&tile| usbf_beamform::TileState::new(&bf, tile))
            .collect();
        b.iter(|| {
            let bf = &bf;
            let engine = engine.as_ref();
            let rf = &rf;
            pool.scope(|s| {
                for state in states.iter_mut() {
                    s.spawn(move || {
                        bf.beamform_tile_into(black_box(engine), black_box(rf), state);
                    });
                }
            });
            black_box(states[0].values()[0])
        })
    });
    g.bench_function("preregistered_volume_loop", |b| {
        let mut rt = VolumeLoop::with_pool(Beamformer::new(&spec), Arc::clone(&pool), &schedule);
        rt.beamform(engine.as_ref(), &rf); // warm-up
        b.iter(|| {
            rt.beamform(black_box(engine.as_ref()), black_box(&rf));
            black_box(rt.volume().max_abs())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
