//! Cost of the fused B-mode post-processing chain and the zero-scatter
//! volume views.
//!
//! Two groups, both at a fixed worker count so the comparison is
//! meaningful on any host:
//!
//! * `frames_per_second` — warm [`FramePipeline`] frame rate with no
//!   post-processing vs with the fused demod → envelope → log-compress
//!   chain applied per tile column before the scatter. The gap is the
//!   whole cost of turning raw beamformed depth traces into B-mode;
//!   the reported elements/s **is** frames/s;
//! * `views` — `VolumeView::slice_into`/`mip_into` computed straight
//!   from the tile outputs into a caller buffer, against the
//!   materialized `BeamformedVolume::slice`/`mip` reference that
//!   allocates its result per call.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use usbf_beamform::{
    Beamformer, BmodeConfig, FramePipeline, FrameRing, PostChain, ProjectionAxis, SlicePlane,
};
use usbf_core::{DelayEngine, ExactEngine, NappeSchedule};
use usbf_geometry::{SystemSpec, VoxelIndex};
use usbf_par::ThreadPool;
use usbf_sim::{EchoSynthesizer, Phantom, Pulse};

/// Pinned worker count: benches must not depend on host core count.
const WORKERS: usize = 4;

fn bench_postproc(c: &mut Criterion) {
    let spec = SystemSpec::tiny();
    let rf = EchoSynthesizer::new(&spec).synthesize(
        &Phantom::point(spec.volume_grid.position(VoxelIndex::new(4, 4, 8))),
        &Pulse::from_spec(&spec),
    );
    let engine: Arc<dyn DelayEngine + Send + Sync> = Arc::new(ExactEngine::new(&spec));
    let pool = Arc::new(ThreadPool::new(WORKERS));
    let schedule = NappeSchedule::fitted(&spec, WORKERS * 4);

    // Raw vs fused warm frame rate: the chain runs on slab-resident
    // scratch inside the tile kernel, so the difference is pure
    // arithmetic, not allocation or an extra volume pass.
    let mut g = c.benchmark_group("postproc_frames_per_second");
    g.throughput(Throughput::Elements(1));
    let chains = [
        ("raw_beamform", PostChain::empty()),
        (
            "fused_bmode_chain",
            PostChain::bmode(BmodeConfig::from_spec(&spec)),
        ),
    ];
    for (name, chain) in &chains {
        g.bench_function(*name, |b| {
            let mut pipe = FramePipeline::with_pool(
                Beamformer::new(&spec).with_postproc(chain.clone()),
                Arc::clone(&engine),
                FrameRing::new(vec![rf.clone()]),
                Arc::clone(&pool),
                &schedule,
            );
            pipe.next_volume().expect("warm-up frame");
            b.iter(|| {
                let vol = pipe.next_volume().expect("warm frame");
                black_box(vol.max_abs())
            })
        });
    }
    g.finish();

    // Zero-scatter views over the fused tile outputs vs slicing the
    // materialized volume.
    let mut pipe = FramePipeline::with_pool(
        Beamformer::new(&spec).with_postproc(PostChain::bmode(BmodeConfig::from_spec(&spec))),
        Arc::clone(&engine),
        FrameRing::new(vec![rf.clone()]),
        Arc::clone(&pool),
        &schedule,
    );
    let vol = pipe.next_volume().expect("warm-up frame").clone();
    let (n_theta, n_phi, n_depth) = pipe.view().expect("frames completed").dims();
    let mut g = c.benchmark_group("postproc_views");
    g.bench_function("view_slice_into", |b| {
        let view = pipe.view().expect("frames completed");
        let mut out = vec![0.0; n_phi * n_depth];
        b.iter(|| {
            view.slice_into(black_box(SlicePlane::Theta(n_theta / 2)), &mut out);
            black_box(out[0])
        })
    });
    g.bench_function("view_mip_into", |b| {
        let view = pipe.view().expect("frames completed");
        let mut out = vec![0.0; n_theta * n_phi];
        b.iter(|| {
            view.mip_into(black_box(ProjectionAxis::Depth), &mut out);
            black_box(out[0])
        })
    });
    g.bench_function("materialized_slice", |b| {
        b.iter(|| black_box(vol.slice(black_box(SlicePlane::Theta(n_theta / 2)))))
    });
    g.bench_function("materialized_mip", |b| {
        b.iter(|| black_box(vol.mip(black_box(ProjectionAxis::Depth))))
    });
    g.finish();
}

criterion_group!(benches, bench_postproc);
criterion_main!(benches);
