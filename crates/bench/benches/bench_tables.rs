//! Reference-table construction, steered lookups and the streaming walk.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use usbf_geometry::{ElementIndex, SystemSpec, VoxelIndex};
use usbf_tables::{ReferenceTable, SteeringTables, TableBudget};

fn bench_tables(c: &mut Criterion) {
    let spec = SystemSpec::reduced();

    let mut g = c.benchmark_group("table_build");
    g.bench_function("reference_reduced", |b| {
        b.iter(|| ReferenceTable::build(black_box(&spec)))
    });
    g.bench_function("steering_reduced", |b| {
        b.iter(|| SteeringTables::build(black_box(&spec)))
    });
    g.bench_function("budget_paper_scale", |b| {
        b.iter(|| TableBudget::for_spec(black_box(&SystemSpec::paper()), 18, 18))
    });
    g.finish();

    let reference = ReferenceTable::build(&spec);
    let steering = SteeringTables::build(&spec);
    let v = &spec.volume_grid;
    let el = &spec.elements;
    let lookups: Vec<(VoxelIndex, ElementIndex)> = (0..4096)
        .map(|i| {
            (
                v.voxel_at((i * 6131) % v.voxel_count()),
                el.element_at((i * 31) % el.count()),
            )
        })
        .collect();

    let mut g = c.benchmark_group("steered_lookup");
    g.throughput(Throughput::Elements(lookups.len() as u64));
    g.bench_function("reference_plus_correction", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(vox, e) in &lookups {
                acc += reference.delay_samples(vox.id, e) + steering.correction_samples(vox, e);
            }
            acc
        })
    });
    g.finish();

    // The nappe streaming walk: consume one depth slice at a time, as the
    // circular-buffer hardware does.
    let mut g = c.benchmark_group("streaming_walk");
    g.throughput(Throughput::Elements(
        (reference.n_depth() * el.count()) as u64,
    ));
    g.bench_function("slice_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for id in 0..reference.n_depth() {
                for &d in reference.slice(black_box(id)) {
                    acc += d;
                }
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
