//! Directivity pruning of the reference table (Fig. 3a).

use usbf_geometry::{Directivity, ElementIndex, SystemSpec, Vec3};

/// A mask over `(depth, element)` reference-table entries: an entry is
/// *kept* when the element can actually receive echoes from the on-axis
/// point at that depth, i.e. the point lies inside the element's
/// directivity cone. "Some table elements are in fact unneeded because
/// probe elements have limited directivity … and cannot insonify points
/// steeply off-axis" (§V-A).
///
/// ```
/// use usbf_geometry::{Directivity, SystemSpec};
/// use usbf_tables::PruneMask;
/// let spec = SystemSpec::figure3(); // the 16×16×500 demo geometry
/// let m = PruneMask::build(&spec, &Directivity::paper_default());
/// assert!(m.pruned_count() > 0);
/// assert!(m.fraction_kept() > 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PruneMask {
    kept: Vec<bool>,
    nx: usize,
    ny: usize,
    n_depth: usize,
    kept_count: usize,
}

impl PruneMask {
    /// Computes the mask for all `(depth, element)` pairs of the spec.
    pub fn build(spec: &SystemSpec, directivity: &Directivity) -> Self {
        let e = &spec.elements;
        let v = &spec.volume_grid;
        let (nx, ny, n_depth) = (e.nx(), e.ny(), v.n_depth());
        let mut kept = vec![false; nx * ny * n_depth];
        let mut kept_count = 0;
        for id in 0..n_depth {
            let s = Vec3::new(0.0, 0.0, v.depth_of(id));
            for iy in 0..ny {
                for ix in 0..nx {
                    let d = e.position(ElementIndex::new(ix, iy));
                    let k = directivity.accepts(s, d);
                    kept[(id * ny + iy) * nx + ix] = k;
                    kept_count += k as usize;
                }
            }
        }
        PruneMask {
            kept,
            nx,
            ny,
            n_depth,
            kept_count,
        }
    }

    /// Whether the entry for depth `id` and element `e` is needed.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[inline]
    pub fn is_kept(&self, id: usize, e: ElementIndex) -> bool {
        assert!(
            id < self.n_depth && e.ix < self.nx && e.iy < self.ny,
            "index out of range"
        );
        self.kept[(id * self.ny + e.iy) * self.nx + e.ix]
    }

    /// Total entries in the (unfolded) table.
    #[inline]
    pub fn total_count(&self) -> usize {
        self.kept.len()
    }

    /// Entries that must be stored.
    #[inline]
    pub fn kept_count(&self) -> usize {
        self.kept_count
    }

    /// Entries that can be pruned.
    #[inline]
    pub fn pruned_count(&self) -> usize {
        self.total_count() - self.kept_count
    }

    /// Fraction of entries kept, in `[0, 1]`.
    pub fn fraction_kept(&self) -> f64 {
        self.kept_count as f64 / self.total_count() as f64
    }

    /// Kept entries in one depth slice — the "dots" of one z-level of
    /// Fig. 3a.
    pub fn kept_in_slice(&self, id: usize) -> usize {
        assert!(id < self.n_depth, "depth index {id} out of range");
        self.kept[id * self.nx * self.ny..(id + 1) * self.nx * self.ny]
            .iter()
            .filter(|&&k| k)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usbf_geometry::deg;

    #[test]
    fn shallow_depths_prune_far_elements() {
        // Needs depth sampling finer than the aperture: the Fig. 3a
        // geometry (16×16×500) has a 0.385 mm first depth against a
        // ~2 mm aperture half-diagonal.
        let spec = SystemSpec::figure3();
        let m = PruneMask::build(&spec, &Directivity::paper_default());
        // At the very first depth only near-centre elements see the point.
        let corner = ElementIndex::new(0, 0);
        assert!(!m.is_kept(0, corner));
        // At the deepest point everything is kept.
        let last = spec.volume_grid.n_depth() - 1;
        assert!(m.is_kept(last, corner));
    }

    #[test]
    fn kept_count_is_monotone_in_depth() {
        let spec = SystemSpec::figure3();
        let m = PruneMask::build(&spec, &Directivity::paper_default());
        let mut prev = 0;
        for id in 0..spec.volume_grid.n_depth() {
            let k = m.kept_in_slice(id);
            assert!(k >= prev, "cone widens with depth");
            prev = k;
        }
    }

    #[test]
    fn wider_cone_keeps_more() {
        let spec = SystemSpec::figure3();
        let narrow = PruneMask::build(&spec, &Directivity::new(deg(20.0), 1.0));
        let wide = PruneMask::build(&spec, &Directivity::new(deg(60.0), 1.0));
        assert!(wide.kept_count() > narrow.kept_count());
    }

    #[test]
    fn counts_are_consistent() {
        let spec = SystemSpec::tiny();
        let m = PruneMask::build(&spec, &Directivity::paper_default());
        assert_eq!(m.kept_count() + m.pruned_count(), m.total_count());
        let by_slice: usize = (0..spec.volume_grid.n_depth())
            .map(|id| m.kept_in_slice(id))
            .sum();
        assert_eq!(by_slice, m.kept_count());
        assert!(m.fraction_kept() > 0.0 && m.fraction_kept() <= 1.0);
    }

    #[test]
    fn mask_is_symmetric() {
        let spec = SystemSpec::tiny();
        let m = PruneMask::build(&spec, &Directivity::paper_default());
        let (nx, ny) = (spec.elements.nx(), spec.elements.ny());
        for id in [0, 5, 15] {
            for iy in 0..ny {
                for ix in 0..nx {
                    let a = m.is_kept(id, ElementIndex::new(ix, iy));
                    let b = m.is_kept(id, ElementIndex::new(nx - 1 - ix, ny - 1 - iy));
                    assert_eq!(a, b, "mask must share the table's symmetry");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let spec = SystemSpec::tiny();
        let m = PruneMask::build(&spec, &Directivity::paper_default());
        m.is_kept(99, ElementIndex::new(0, 0));
    }
}
