//! Memory footprint and DRAM-streaming arithmetic of §V-B.

use usbf_geometry::SystemSpec;

/// How a volume is acquired: the §V-B example reconstructs it in 64
/// insonifications of 256 scanlines each, at 15 volumes/s → 960
/// insonifications/s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsonificationPlan {
    /// Insonifications (transmit events) per reconstructed volume.
    pub insonifications_per_volume: usize,
    /// Scanlines beamformed from each insonification.
    pub scanlines_per_insonification: usize,
}

impl InsonificationPlan {
    /// The paper's example: 64 insonifications × 256 scanlines.
    pub fn paper() -> Self {
        InsonificationPlan {
            insonifications_per_volume: 64,
            scanlines_per_insonification: 256,
        }
    }

    /// Insonification rate at a given volume rate (960/s in the paper).
    pub fn insonifications_per_second(&self, frame_rate: f64) -> f64 {
        self.insonifications_per_volume as f64 * frame_rate
    }

    /// Checks the plan covers all scanlines of a spec exactly once.
    pub fn covers(&self, spec: &SystemSpec) -> bool {
        self.insonifications_per_volume * self.scanlines_per_insonification
            == spec.volume_grid.scanline_count()
    }
}

impl Default for InsonificationPlan {
    fn default() -> Self {
        Self::paper()
    }
}

/// Storage budget of the TABLESTEER tables for a given word width.
///
/// ```
/// use usbf_geometry::SystemSpec;
/// use usbf_tables::TableBudget;
/// let b = TableBudget::for_spec(&SystemSpec::paper(), 18, 18);
/// assert_eq!(b.reference_entries, 2_500_000);
/// assert_eq!(b.correction_entries, 832_000);
/// assert_eq!(b.reference_bits, 45_000_000);           // "45 Mb"
/// assert!((b.correction_mebibits() - 14.28).abs() < 0.01); // "14.3 Mb"
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableBudget {
    /// Folded reference-table entries.
    pub reference_entries: u64,
    /// Steering-correction coefficients.
    pub correction_entries: u64,
    /// Bits per reference word.
    pub reference_word_bits: u32,
    /// Bits per correction word.
    pub correction_word_bits: u32,
    /// Total reference-table bits.
    pub reference_bits: u64,
    /// Total correction-table bits.
    pub correction_bits: u64,
}

impl TableBudget {
    /// Computes the budget for a spec (arithmetic only — nothing is
    /// allocated). Assumes an on-axis origin (quadrant folding applies);
    /// see [`TableBudget::with_origins`] for the synthetic-aperture
    /// extension.
    pub fn for_spec(
        spec: &SystemSpec,
        reference_word_bits: u32,
        correction_word_bits: u32,
    ) -> Self {
        let e = &spec.elements;
        let v = &spec.volume_grid;
        let reference_entries = (e.nx().div_ceil(2) * e.ny().div_ceil(2) * v.n_depth()) as u64;
        let correction_entries =
            (e.nx() * v.n_theta() * v.n_phi().div_ceil(2) + e.ny() * v.n_phi()) as u64;
        TableBudget {
            reference_entries,
            correction_entries,
            reference_word_bits,
            correction_word_bits,
            reference_bits: reference_entries * reference_word_bits as u64,
            correction_bits: correction_entries * correction_word_bits as u64,
        }
    }

    /// Scales the reference storage for `n` distinct emission origins —
    /// the synthetic-aperture mode the paper says needs "multiple
    /// precalculated delay tables, at extra hardware cost" (§V).
    /// Off-centre origins also lose the quadrant fold, costing another 4×.
    pub fn with_origins(&self, n: u64, foldable: bool) -> TableBudget {
        let factor = n * if foldable { 1 } else { 4 };
        TableBudget {
            reference_entries: self.reference_entries * factor,
            reference_bits: self.reference_bits * factor,
            ..*self
        }
    }

    /// Total bits for both tables.
    pub fn total_bits(&self) -> u64 {
        self.reference_bits + self.correction_bits
    }

    /// Reference table in decimal megabits (the paper's "45 Mb").
    pub fn reference_megabits(&self) -> f64 {
        self.reference_bits as f64 / 1.0e6
    }

    /// Correction tables in binary mebibits (the paper's "14.3 Mb" — the
    /// paper mixes decimal and binary prefixes; 832 000 × 18 bits is
    /// 14.976 decimal Mb but 14.28 Mib).
    pub fn correction_mebibits(&self) -> f64 {
        self.correction_bits as f64 / (1u64 << 20) as f64
    }

    /// Whether both tables fit a given on-chip memory capacity in bits.
    pub fn fits_on_chip(&self, capacity_bits: u64) -> bool {
        self.total_bits() <= capacity_bits
    }
}

/// The circular-buffer streaming design of §V-B: instead of holding the
/// whole reference table on-chip, a slice lives in `bram_banks` BRAM banks
/// of `bank_words` words each, refilled from external DRAM as nappes are
/// swept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingPlan {
    /// Number of BRAM banks (also the number of delay-generation blocks).
    pub bram_banks: usize,
    /// Words per bank (1k lines in the paper's example).
    pub bank_words: usize,
    /// Bits per word (the reference fixed-point width).
    pub word_bits: u32,
}

impl StreamingPlan {
    /// The paper's design point: 128 banks × 1k lines × 18 bits ≈ 2.3 Mb.
    pub fn paper() -> Self {
        StreamingPlan {
            bram_banks: 128,
            bank_words: 1024,
            word_bits: 18,
        }
    }

    /// On-chip bits used by the circular buffer (≈2.3 Mb for the paper's
    /// plan).
    pub fn on_chip_bits(&self) -> u64 {
        self.bram_banks as u64 * self.bank_words as u64 * self.word_bits as u64
    }

    /// DRAM bandwidth in bytes/s needed to re-fetch the reference table on
    /// every insonification ("the full delay table would need to be
    /// fetched 960 times per second, at a total bandwidth of about
    /// 5.3 GB/s").
    pub fn dram_bandwidth_bytes(
        &self,
        budget: &TableBudget,
        insonifications_per_second: f64,
    ) -> f64 {
        budget.reference_bits as f64 / 8.0 * insonifications_per_second
    }

    /// Refill latency margin in cycles: a bank's worth of lines can be
    /// loaded while the previous slice is consumed ("an ample margin of 1k
    /// cycles of latency to fetch new data").
    pub fn latency_margin_cycles(&self) -> usize {
        self.bank_words
    }

    /// On-chip saving versus holding the full reference table resident.
    pub fn on_chip_saving_bits(&self, budget: &TableBudget) -> i64 {
        budget.reference_bits as i64 - self.on_chip_bits() as i64
    }
}

impl Default for StreamingPlan {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_budget_matches_section_5b() {
        let b = TableBudget::for_spec(&SystemSpec::paper(), 18, 18);
        assert_eq!(b.reference_entries, 2_500_000);
        assert_eq!(b.correction_entries, 832_000);
        // "2.5×10⁶ × 18 bits = 45 Mb"
        assert_eq!(b.reference_bits, 45_000_000);
        // "832×10³ × 18 bits = 14.3 Mb" (mebibits)
        assert!((b.correction_mebibits() - 14.28).abs() < 0.01);
    }

    #[test]
    fn paper_14bit_budget() {
        let b = TableBudget::for_spec(&SystemSpec::paper(), 14, 14);
        assert_eq!(b.reference_bits, 35_000_000);
    }

    #[test]
    fn insonification_plan_gives_960_per_second() {
        let plan = InsonificationPlan::paper();
        let spec = SystemSpec::paper();
        assert!(plan.covers(&spec));
        assert_eq!(plan.insonifications_per_second(spec.frame_rate), 960.0);
    }

    #[test]
    fn streaming_buffer_is_2_3_megabits() {
        let s = StreamingPlan::paper();
        assert_eq!(s.on_chip_bits(), 2_359_296);
        assert!((s.on_chip_bits() as f64 / 1e6 - 2.36).abs() < 0.01);
    }

    #[test]
    fn streaming_bandwidth_about_5_3_gbps() {
        let spec = SystemSpec::paper();
        let b = TableBudget::for_spec(&spec, 18, 18);
        let s = StreamingPlan::paper();
        let bw = s.dram_bandwidth_bytes(&b, 960.0);
        // 45 Mb / 8 × 960 = 5.4 GB/s ("about 5.3 GB/s").
        assert!((bw / 1e9 - 5.4).abs() < 0.01, "bw = {bw}");
    }

    #[test]
    fn streaming_bandwidth_14b_about_4_1_gbps() {
        let spec = SystemSpec::paper();
        let b = TableBudget::for_spec(&spec, 14, 14);
        let bw = StreamingPlan {
            word_bits: 14,
            ..StreamingPlan::paper()
        }
        .dram_bandwidth_bytes(&b, 960.0);
        // 35 Mb / 8 × 960 = 4.2 GB/s ("4.1 GB/s" in Table II).
        assert!((bw / 1e9 - 4.2).abs() < 0.01, "bw = {bw}");
    }

    #[test]
    fn streaming_saves_most_of_the_reference_storage() {
        let b = TableBudget::for_spec(&SystemSpec::paper(), 18, 18);
        let s = StreamingPlan::paper();
        // From 45 Mb resident to 2.3 Mb: > 94% saving.
        let saving = s.on_chip_saving_bits(&b) as f64 / b.reference_bits as f64;
        assert!(saving > 0.94, "saving = {saving}");
    }

    #[test]
    fn fits_on_chip_thresholds() {
        let b = TableBudget::for_spec(&SystemSpec::paper(), 18, 18);
        // Virtex-7 XC7VX1140T: 67.7 Mb BRAM — the resident design fits
        // ("within the capabilities of high-end FPGAs").
        assert!(b.fits_on_chip(67_700_000));
        assert!(!b.fits_on_chip(45_000_000));
    }

    #[test]
    fn synthetic_aperture_multiplies_reference_cost() {
        let b = TableBudget::for_spec(&SystemSpec::paper(), 18, 18);
        let multi = b.with_origins(4, true);
        assert_eq!(multi.reference_bits, 4 * b.reference_bits);
        assert_eq!(multi.correction_bits, b.correction_bits);
        let off_axis = b.with_origins(4, false);
        assert_eq!(off_axis.reference_bits, 16 * b.reference_bits);
    }

    #[test]
    fn plan_covering_detects_mismatch() {
        let plan = InsonificationPlan {
            insonifications_per_volume: 10,
            scanlines_per_insonification: 10,
        };
        assert!(!plan.covers(&SystemSpec::paper()));
    }
}
