//! The reference delay table: unsteered two-way delays, folded by symmetry.

use crate::steering::fold_coord;
use usbf_geometry::{ElementIndex, SystemSpec, Vec3};

/// The reference delay table of §V-A: `tp(O, R, D)` for every on-axis
/// point `R = (0, 0, r_k)` and every element `D`, in **samples** at `fs`.
///
/// When the emission origin lies on the array's vertical axis the delay
/// depends on the element only through `(|xD|, |yD|)`, so "exactly three
/// quarters of the matrix are redundant" and one quadrant
/// (`⌈ex/2⌉ × ⌈ey/2⌉ × nd` entries — 50 × 50 × 1000 = 2.5 × 10⁶ for the
/// paper) is stored. Off-axis origins fall back to full storage, which is
/// the "proportionally larger" cost the paper mentions.
///
/// ```
/// use usbf_geometry::{ElementIndex, SystemSpec};
/// use usbf_tables::ReferenceTable;
/// let spec = SystemSpec::tiny();
/// let t = ReferenceTable::build(&spec);
/// assert!(t.is_folded());
/// // Symmetric elements share the same stored delay:
/// let a = t.delay_samples(3, ElementIndex::new(0, 0));
/// let b = t.delay_samples(3, ElementIndex::new(7, 7));
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceTable {
    /// Stored delays in samples, laid out `[depth][qy][qx]`.
    data: Vec<f64>,
    qx: usize,
    qy: usize,
    n_depth: usize,
    nx: usize,
    ny: usize,
    folded: bool,
}

impl ReferenceTable {
    /// Builds the table for a system specification. Folds to one quadrant
    /// when the origin is on the array's vertical axis (x = y = 0).
    pub fn build(spec: &SystemSpec) -> Self {
        let e = &spec.elements;
        let v = &spec.volume_grid;
        let foldable = spec.origin.x == 0.0 && spec.origin.y == 0.0;
        let (qx, qy) = if foldable {
            (e.nx().div_ceil(2), e.ny().div_ceil(2))
        } else {
            (e.nx(), e.ny())
        };
        let n_depth = v.n_depth();
        let mut data = vec![0.0f64; qx * qy * n_depth];
        for id in 0..n_depth {
            let r = Vec3::new(0.0, 0.0, v.depth_of(id));
            for jy in 0..qy {
                for jx in 0..qx {
                    // Representative element of this quadrant cell: for a
                    // folded table take the positive-coordinate member.
                    let (ix, iy) = if foldable {
                        (
                            if e.nx().is_multiple_of(2) {
                                e.nx() / 2 + jx
                            } else {
                                (e.nx() - 1) / 2 + jx
                            },
                            if e.ny().is_multiple_of(2) {
                                e.ny() / 2 + jy
                            } else {
                                (e.ny() - 1) / 2 + jy
                            },
                        )
                    } else {
                        (jx, jy)
                    };
                    let d = e.position(ElementIndex::new(ix, iy));
                    data[(id * qy + jy) * qx + jx] = spec.two_way_delay_samples(r, d);
                }
            }
        }
        ReferenceTable {
            data,
            qx,
            qy,
            n_depth,
            nx: e.nx(),
            ny: e.ny(),
            folded: foldable,
        }
    }

    /// Whether quadrant folding was applied.
    #[inline]
    pub fn is_folded(&self) -> bool {
        self.folded
    }

    /// Stored entry count (`2.5 × 10⁶` for the paper's geometry).
    #[inline]
    pub fn entry_count(&self) -> usize {
        self.data.len()
    }

    /// Entry count the *unfolded* table would need.
    #[inline]
    pub fn unfolded_entry_count(&self) -> usize {
        self.nx * self.ny * self.n_depth
    }

    /// Number of depth slices (nappes).
    #[inline]
    pub fn n_depth(&self) -> usize {
        self.n_depth
    }

    /// Quadrant dimensions `(qx, qy)` of one depth slice.
    #[inline]
    pub fn quadrant_dims(&self) -> (usize, usize) {
        (self.qx, self.qy)
    }

    /// Reference delay in samples for depth index `id` and element `e`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[inline]
    pub fn delay_samples(&self, id: usize, e: ElementIndex) -> f64 {
        assert!(id < self.n_depth, "depth index {id} out of range");
        assert!(e.ix < self.nx && e.iy < self.ny, "element {e} out of range");
        let (jx, jy) = if self.folded {
            (fold_coord(e.ix, self.nx), fold_coord(e.iy, self.ny))
        } else {
            (e.ix, e.iy)
        };
        self.data[(id * self.qy + jy) * self.qx + jx]
    }

    /// Borrowed view of one depth slice (a nappe's worth of reference
    /// delays, `qy × qx` row-major) — what the streaming architecture
    /// loads into its circular BRAM buffer.
    pub fn slice(&self, id: usize) -> &[f64] {
        assert!(id < self.n_depth, "depth index {id} out of range");
        &self.data[id * self.qx * self.qy..(id + 1) * self.qx * self.qy]
    }

    /// Largest stored delay in samples (sets the integer width of the
    /// fixed-point representation).
    pub fn max_delay_samples(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usbf_geometry::{SystemSpec, TransducerSpec, VolumeSpec};

    #[test]
    fn fold_coord_even() {
        // n = 8: coordinates -3.5p .. 3.5p; |x| buckets 0..3.
        assert_eq!(fold_coord(4, 8), 0);
        assert_eq!(fold_coord(3, 8), 0);
        assert_eq!(fold_coord(7, 8), 3);
        assert_eq!(fold_coord(0, 8), 3);
    }

    #[test]
    fn fold_coord_odd() {
        assert_eq!(fold_coord(2, 5), 0);
        assert_eq!(fold_coord(0, 5), 2);
        assert_eq!(fold_coord(4, 5), 2);
    }

    #[test]
    fn folded_table_matches_direct_computation_everywhere() {
        let spec = SystemSpec::tiny();
        let t = ReferenceTable::build(&spec);
        assert!(t.is_folded());
        for id in (0..spec.volume_grid.n_depth()).step_by(3) {
            let r = Vec3::new(0.0, 0.0, spec.volume_grid.depth_of(id));
            for e in spec.elements.iter() {
                let direct = spec.two_way_delay_samples(r, spec.elements.position(e));
                let stored = t.delay_samples(id, e);
                assert!(
                    (direct - stored).abs() < 1e-9,
                    "id={id} e={e}: {direct} vs {stored}"
                );
            }
        }
    }

    #[test]
    fn folding_saves_four_x() {
        let spec = SystemSpec::tiny();
        let t = ReferenceTable::build(&spec);
        assert_eq!(t.entry_count() * 4, t.unfolded_entry_count());
    }

    #[test]
    fn paper_entry_count_is_2_5_million() {
        // §V-A: "only 50×50×1000 = 2.5×10⁶ elements need to be stored".
        // Build a thin-depth variant to keep the test fast, then check the
        // arithmetic at full scale without building.
        let spec = SystemSpec::paper();
        let (qx, qy) = (50, 50);
        assert_eq!(qx * qy * spec.volume_grid.n_depth(), 2_500_000);
        let thin = SystemSpec::new(
            spec.speed_of_sound,
            spec.sampling_frequency,
            TransducerSpec {
                ..spec.transducer.clone()
            },
            VolumeSpec {
                n_depth: 4,
                ..spec.volume.clone()
            },
            spec.origin,
            spec.frame_rate,
        );
        let t = ReferenceTable::build(&thin);
        assert_eq!(t.quadrant_dims(), (50, 50));
        assert_eq!(t.entry_count(), 50 * 50 * 4);
    }

    #[test]
    fn off_axis_origin_disables_folding() {
        let base = SystemSpec::tiny();
        let spec = SystemSpec::new(
            base.speed_of_sound,
            base.sampling_frequency,
            base.transducer.clone(),
            base.volume.clone(),
            Vec3::new(1.0e-3, 0.0, 0.0),
            base.frame_rate,
        );
        let t = ReferenceTable::build(&spec);
        assert!(!t.is_folded());
        assert_eq!(t.entry_count(), t.unfolded_entry_count());
        // And it still matches direct computation.
        let id = 5;
        let r = Vec3::new(0.0, 0.0, spec.volume_grid.depth_of(id));
        for e in spec.elements.iter().take(16) {
            let direct = spec.two_way_delay_samples(r, spec.elements.position(e));
            assert!((t.delay_samples(id, e) - direct).abs() < 1e-9);
        }
    }

    #[test]
    fn delays_increase_with_depth_on_axis() {
        let spec = SystemSpec::tiny();
        let t = ReferenceTable::build(&spec);
        let e = spec.elements.center_element();
        let mut prev = 0.0;
        for id in 0..spec.volume_grid.n_depth() {
            let d = t.delay_samples(id, e);
            assert!(d > prev);
            prev = d;
        }
    }

    #[test]
    fn slice_matches_indexed_access() {
        let spec = SystemSpec::tiny();
        let t = ReferenceTable::build(&spec);
        let id = 7;
        let s = t.slice(id);
        assert_eq!(s.len(), 4 * 4);
        let e = ElementIndex::new(5, 6); // folds to (1, 2)
        assert_eq!(s[2 * 4 + 1], t.delay_samples(id, e));
    }

    #[test]
    fn max_delay_bounded_by_spec_worst_case() {
        let spec = SystemSpec::tiny();
        let t = ReferenceTable::build(&spec);
        assert!(t.max_delay_samples() <= spec.max_two_way_delay_samples());
        assert!(t.max_delay_samples() > 0.0);
    }

    #[test]
    #[should_panic(expected = "depth index")]
    fn depth_out_of_range_panics() {
        let spec = SystemSpec::tiny();
        ReferenceTable::build(&spec).delay_samples(16, ElementIndex::new(0, 0));
    }
}
