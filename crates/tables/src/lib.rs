//! Delay tables for the TABLESTEER architecture (§V of the paper).
//!
//! TABLESTEER replaces the infeasible full delay table (~164 × 10⁹
//! coefficients) with:
//!
//! 1. a **reference table** ([`ReferenceTable`]) holding the two-way delays
//!    for the *unsteered* line of sight only — one `ex × ey` slice per
//!    depth, folded to one quadrant by symmetry (2.5 × 10⁶ entries for the
//!    paper's geometry);
//! 2. **steering-correction tables** ([`SteeringTables`]) — the first-order
//!    Taylor ("far-field") plane of Eq. 7, factored into
//!    `ex·(nφ/2)·nθ + ey·nφ = 832 × 10³` precomputed coefficients;
//! 3. a **directivity pruning mask** ([`PruneMask`], Fig. 3a) marking
//!    reference entries that can never contribute because the element
//!    cannot see the on-axis point;
//! 4. a **memory/bandwidth budget** ([`TableBudget`], [`StreamingPlan`])
//!    reproducing the §V-B arithmetic: 45 Mb + 14.3 Mb on-chip, or a
//!    2.3 Mb circular BRAM buffer streamed at ~5.3 GB/s;
//! 5. **error analysis** ([`error`]) — the Lagrange-style theoretical bound
//!    and the practical exhaustive sweep of §VI-A (max 3.1 µs ≈ 99 samples
//!    inside directivity, mean ≈ 44.6 ns ≈ 1.43 samples).
//!
//! # Example
//!
//! ```
//! use usbf_geometry::SystemSpec;
//! use usbf_tables::{ReferenceTable, SteeringTables};
//!
//! let spec = SystemSpec::tiny();
//! let reference = ReferenceTable::build(&spec);
//! let steering = SteeringTables::build(&spec);
//! // Steered delay for an off-axis voxel:
//! let vox = usbf_geometry::VoxelIndex::new(1, 6, 10);
//! let e = usbf_geometry::ElementIndex::new(2, 5);
//! let approx = reference.delay_samples(vox.id, e) + steering.correction_samples(vox, e);
//! let exact = spec.two_way_delay_samples(spec.volume_grid.position(vox), spec.elements.position(e));
//! assert!((approx - exact).abs() < 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
pub mod error;
mod pruning;
mod reference;
mod steering;
mod streaming;

pub use budget::{InsonificationPlan, StreamingPlan, TableBudget};
pub use pruning::PruneMask;
pub use reference::ReferenceTable;
pub use steering::{fold_coord, SteeringTables};
pub use streaming::{CircularBufferSim, SliceWindow, StreamingReport};
