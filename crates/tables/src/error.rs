//! Steering-approximation error analysis (§V-A and §VI-A).
//!
//! The far-field (first-order Taylor) steering of Eq. 7 is the dominant
//! inaccuracy of TABLESTEER. The paper reports, for the Table I geometry:
//!
//! * a loose **theoretical bound** of ≈6.7 µs (214 samples at 32 MHz) —
//!   attained in the near field, where the correction term survives while
//!   the true steering delta vanishes;
//! * a **practical maximum** of 3.1 µs (99 samples) once entries outside
//!   element directivity are excluded;
//! * a **mean absolute error** over the whole volume of ≈44.6 ns
//!   (≈1.43 samples).
//!
//! [`ErrorSweep`] reproduces the practical numbers on a (configurable,
//! possibly strided) grid; [`theoretical_bound_seconds`] the analytic one.

use crate::{ReferenceTable, SteeringTables};
use usbf_geometry::{Directivity, ElementIndex, SystemSpec, VoxelIndex};

/// The loose analytic bound on the steering error, in seconds.
///
/// As `r → 0` the exact delays `tp(O,S,D)` and `tp(O,R,D)` converge (both
/// tend to `|OD|/c`), but the applied correction
/// `−(xD·cosφ·sinθ + yD·sinφ)/c` does not vanish — so the worst-case error
/// approaches the largest possible |correction|:
///
/// ```text
/// bound = max_{D,θ,φ} |xD·cosφ·sinθ + yD·sinφ| / c
/// ```
///
/// For Table I this is ≈6.6 µs ≈ 212 samples, matching the paper's
/// "about 6.7 µs, or 214 signal samples".
pub fn theoretical_bound_seconds(spec: &SystemSpec) -> f64 {
    let e = &spec.elements;
    let v = &spec.volume_grid;
    let x_max = e.x_of(e.nx() - 1).abs().max(e.x_of(0).abs());
    let y_max = e.y_of(e.ny() - 1).abs().max(e.y_of(0).abs());
    // Maximize x_max·cosφ·sinθ + y_max·sinφ jointly: θ = θmax, and
    // A·cosφ + B·sinφ (A = x_max·sinθmax, B = y_max) peaks at
    // φ = atan(B/A), clamped to the field of view.
    let a = x_max * v.theta_max().sin();
    let b = y_max;
    let phi = b.atan2(a).min(v.phi_max());
    (a * phi.cos() + b * phi.sin()) / spec.speed_of_sound
}

/// Signed steering error in **samples** for one (voxel, element) pair:
/// `(reference + correction) − exact`, all in double precision (isolates
/// the algorithmic Taylor error from fixed-point effects).
pub fn steering_error_samples(
    spec: &SystemSpec,
    reference: &ReferenceTable,
    steering: &SteeringTables,
    vox: VoxelIndex,
    e: ElementIndex,
) -> f64 {
    let approx = reference.delay_samples(vox.id, e) + steering.correction_samples(vox, e);
    let exact =
        spec.two_way_delay_samples(spec.volume_grid.position(vox), spec.elements.position(e));
    approx - exact
}

/// Grid strides for an error sweep. Stride 1 everywhere is exhaustive;
/// larger strides trade coverage for speed (the full Table I sweep is
/// 1.64 × 10¹¹ pairs). Depth index 0 and the last index are always
/// included for each swept line, since the extremes live at the ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// Stride over θ lines.
    pub stride_theta: usize,
    /// Stride over φ lines.
    pub stride_phi: usize,
    /// Stride over depths.
    pub stride_depth: usize,
    /// Stride over element columns.
    pub stride_elem_x: usize,
    /// Stride over element rows.
    pub stride_elem_y: usize,
}

impl SweepConfig {
    /// Exhaustive sweep (stride 1 everywhere).
    pub fn exhaustive() -> Self {
        SweepConfig {
            stride_theta: 1,
            stride_phi: 1,
            stride_depth: 1,
            stride_elem_x: 1,
            stride_elem_y: 1,
        }
    }

    /// A uniform stride on every axis.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn strided(stride: usize) -> Self {
        assert!(stride > 0, "stride must be nonzero");
        SweepConfig {
            stride_theta: stride,
            stride_phi: stride,
            stride_depth: stride,
            stride_elem_x: stride,
            stride_elem_y: stride,
        }
    }
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self::exhaustive()
    }
}

/// Results of a steering-error sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSweep {
    /// Pairs evaluated.
    pub count: u64,
    /// Mean |error| in samples.
    pub mean_abs_samples: f64,
    /// Maximum |error| in samples.
    pub max_abs_samples: f64,
    /// Voxel and element attaining the maximum.
    pub argmax: (VoxelIndex, ElementIndex),
    /// Pairs excluded by the directivity filter (0 when unfiltered).
    pub excluded: u64,
}

impl ErrorSweep {
    /// Mean |error| in seconds.
    pub fn mean_abs_seconds(&self, spec: &SystemSpec) -> f64 {
        spec.samples_to_seconds(self.mean_abs_samples)
    }

    /// Max |error| in seconds.
    pub fn max_abs_seconds(&self, spec: &SystemSpec) -> f64 {
        spec.samples_to_seconds(self.max_abs_samples)
    }

    /// Sweeps the steering error over the spec's grid.
    ///
    /// With `directivity = Some(d)`, pairs where the element cannot see the
    /// focal point are excluded — the paper's "filtered away by
    /// apodization" condition that turns the 214-sample bound into the
    /// 99-sample practical maximum.
    pub fn run(
        spec: &SystemSpec,
        reference: &ReferenceTable,
        steering: &SteeringTables,
        cfg: SweepConfig,
        directivity: Option<&Directivity>,
    ) -> ErrorSweep {
        let v = &spec.volume_grid;
        let el = &spec.elements;
        let mut count = 0u64;
        let mut excluded = 0u64;
        let mut sum_abs = 0.0f64;
        let mut max_abs = -1.0f64;
        let mut argmax = (VoxelIndex::new(0, 0, 0), ElementIndex::new(0, 0));

        let axis = |n: usize, stride: usize| -> Vec<usize> {
            let mut idx: Vec<usize> = (0..n).step_by(stride).collect();
            if *idx.last().expect("nonzero axis") != n - 1 {
                idx.push(n - 1);
            }
            idx
        };
        let thetas = axis(v.n_theta(), cfg.stride_theta);
        let phis = axis(v.n_phi(), cfg.stride_phi);
        let depths = axis(v.n_depth(), cfg.stride_depth);
        let exs = axis(el.nx(), cfg.stride_elem_x);
        let eys = axis(el.ny(), cfg.stride_elem_y);

        for &it in &thetas {
            for &ip in &phis {
                for &id in &depths {
                    let vox = VoxelIndex::new(it, ip, id);
                    let s = v.position(vox);
                    for &iy in &eys {
                        for &ix in &exs {
                            let e = ElementIndex::new(ix, iy);
                            if let Some(d) = directivity {
                                if !d.accepts(s, el.position(e)) {
                                    excluded += 1;
                                    continue;
                                }
                            }
                            let err =
                                steering_error_samples(spec, reference, steering, vox, e).abs();
                            count += 1;
                            sum_abs += err;
                            if err > max_abs {
                                max_abs = err;
                                argmax = (vox, e);
                            }
                        }
                    }
                }
            }
        }
        ErrorSweep {
            count,
            mean_abs_samples: if count == 0 {
                0.0
            } else {
                sum_abs / count as f64
            },
            max_abs_samples: max_abs.max(0.0),
            argmax,
            excluded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usbf_geometry::deg;

    fn setup() -> (SystemSpec, ReferenceTable, SteeringTables) {
        let spec = SystemSpec::tiny();
        let r = ReferenceTable::build(&spec);
        let s = SteeringTables::build(&spec);
        (spec, r, s)
    }

    #[test]
    fn theoretical_bound_matches_paper_for_table1() {
        // §V-A: "a bound of about 6.7 µs ... or 214 signal samples".
        let spec = SystemSpec::paper();
        let b = theoretical_bound_seconds(&spec);
        let samples = spec.seconds_to_samples(b);
        assert!((b * 1e6 - 6.7).abs() < 0.2, "bound = {} µs", b * 1e6);
        assert!((samples - 214.0).abs() < 6.0, "bound = {samples} samples");
    }

    #[test]
    fn unsteered_line_error_is_negligible() {
        // On the reference scanline the correction is ~0 and the table is
        // exact by construction.
        let base = SystemSpec::tiny();
        let spec = SystemSpec::new(
            base.speed_of_sound,
            base.sampling_frequency,
            base.transducer.clone(),
            usbf_geometry::VolumeSpec {
                n_theta: 9,
                n_phi: 9,
                ..base.volume.clone()
            },
            base.origin,
            base.frame_rate,
        );
        let r = ReferenceTable::build(&spec);
        let s = SteeringTables::build(&spec);
        for id in 0..spec.volume_grid.n_depth() {
            for e in spec.elements.iter() {
                let err = steering_error_samples(&spec, &r, &s, VoxelIndex::new(4, 4, id), e);
                assert!(err.abs() < 1e-9, "id={id} e={e}: {err}");
            }
        }
    }

    #[test]
    fn error_shrinks_with_depth() {
        // Far field: the Taylor approximation improves as r grows.
        let (spec, r, s) = setup();
        let vox_near = VoxelIndex::new(0, 0, 0);
        let vox_far = VoxelIndex::new(0, 0, spec.volume_grid.n_depth() - 1);
        let e = ElementIndex::new(0, 0);
        let near = steering_error_samples(&spec, &r, &s, vox_near, e).abs();
        let far = steering_error_samples(&spec, &r, &s, vox_far, e).abs();
        assert!(far < near, "near = {near}, far = {far}");
    }

    #[test]
    fn sweep_max_below_theoretical_bound() {
        let (spec, r, s) = setup();
        let sweep = ErrorSweep::run(&spec, &r, &s, SweepConfig::exhaustive(), None);
        let bound = spec.seconds_to_samples(theoretical_bound_seconds(&spec));
        assert!(
            sweep.max_abs_samples <= bound,
            "{} > {}",
            sweep.max_abs_samples,
            bound
        );
        assert!(sweep.count > 0);
        assert_eq!(sweep.excluded, 0);
    }

    #[test]
    fn directivity_filter_reduces_max_error() {
        let (spec, r, s) = setup();
        let unfiltered = ErrorSweep::run(&spec, &r, &s, SweepConfig::exhaustive(), None);
        let filtered = ErrorSweep::run(
            &spec,
            &r,
            &s,
            SweepConfig::exhaustive(),
            Some(&Directivity::new(deg(45.0), 1.0)),
        );
        assert!(filtered.excluded > 0);
        assert!(filtered.max_abs_samples <= unfiltered.max_abs_samples);
    }

    #[test]
    fn strided_sweep_approximates_exhaustive_mean() {
        let (spec, r, s) = setup();
        let full = ErrorSweep::run(&spec, &r, &s, SweepConfig::exhaustive(), None);
        let strided = ErrorSweep::run(&spec, &r, &s, SweepConfig::strided(2), None);
        assert!(strided.count < full.count);
        // Means agree to within a factor comfortably.
        let ratio = strided.mean_abs_samples / full.mean_abs_samples;
        assert!(ratio > 0.5 && ratio < 2.0, "ratio = {ratio}");
        // The strided max is a lower bound of the true max.
        assert!(strided.max_abs_samples <= full.max_abs_samples + 1e-12);
    }

    #[test]
    fn argmax_is_at_grid_extremes() {
        // Worst errors occur at extreme steering / near field (§VI-A).
        let (spec, r, s) = setup();
        let sweep = ErrorSweep::run(&spec, &r, &s, SweepConfig::exhaustive(), None);
        let (vox, _) = sweep.argmax;
        let v = &spec.volume_grid;
        let edge_t = vox.it == 0 || vox.it == v.n_theta() - 1;
        let edge_p = vox.ip == 0 || vox.ip == v.n_phi() - 1;
        assert!(edge_t || edge_p, "argmax at {vox}");
    }

    #[test]
    #[should_panic(expected = "stride must be nonzero")]
    fn zero_stride_rejected() {
        SweepConfig::strided(0);
    }
}
