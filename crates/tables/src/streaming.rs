//! A functional simulator of the §V-B circular-buffer streaming scheme.
//!
//! "The on-FPGA delay table could be a cache of a complete delay table
//! residing off-chip … this BRAM could be managed as a circular buffer,
//! loading new delay samples as the old ones have been used, with an ample
//! margin of 1k cycles of latency to fetch new data."
//!
//! [`CircularBufferSim`] plays that schedule cycle by cycle: the
//! beamformer consumes one reference slice per nappe while the DRAM
//! interface refills retired slices at a finite link bandwidth. The
//! simulation reports whether the consumer ever stalls (an *underrun*) and
//! how much refill margin was left — turning the paper's "ample margin"
//! claim into a checkable property.

use crate::StreamingPlan;

/// Result of a streaming simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingReport {
    /// Total consumer cycles simulated (nappes × cycles per nappe).
    pub cycles: u64,
    /// Cycles the consumer had to stall waiting for a slice refill.
    pub stall_cycles: u64,
    /// Smallest lead (in cycles) the refill engine had over the consumer
    /// when a new slice was first needed; negative values mean underrun.
    pub min_margin_cycles: i64,
    /// Words fetched from DRAM.
    pub words_fetched: u64,
}

impl StreamingReport {
    /// Whether the consumer never stalled.
    pub fn underrun_free(&self) -> bool {
        self.stall_cycles == 0
    }
}

/// Cycle-level (per-slice granularity) simulator of the circular buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct CircularBufferSim {
    plan: StreamingPlan,
    /// Clock frequency of the consumer (beamformer) in Hz.
    clock_hz: f64,
    /// DRAM link bandwidth in bytes/s.
    link_bytes_per_s: f64,
    /// Words per reference slice (one nappe's folded quadrant).
    slice_words: u64,
    /// Cycles the beamformer spends consuming one slice (one nappe).
    cycles_per_slice: u64,
}

impl CircularBufferSim {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if any rate or size is non-positive, or if a slice does not
    /// fit the buffer.
    pub fn new(
        plan: StreamingPlan,
        clock_hz: f64,
        link_bytes_per_s: f64,
        slice_words: u64,
        cycles_per_slice: u64,
    ) -> Self {
        assert!(
            clock_hz > 0.0 && link_bytes_per_s > 0.0,
            "rates must be positive"
        );
        assert!(
            slice_words > 0 && cycles_per_slice > 0,
            "sizes must be positive"
        );
        let capacity = (plan.bram_banks * plan.bank_words) as u64;
        assert!(
            slice_words * 2 <= capacity,
            "double buffering needs 2 slices ({} words) within the {}-word buffer",
            slice_words * 2,
            capacity
        );
        CircularBufferSim {
            plan,
            clock_hz,
            link_bytes_per_s,
            slice_words,
            cycles_per_slice,
        }
    }

    /// The paper's operating point for a given spec-shaped workload:
    /// a 50×50-word slice per nappe consumed over `cycles_per_slice`
    /// cycles at 200 MHz, refilled at `link_bytes_per_s`.
    pub fn paper_point(link_bytes_per_s: f64) -> Self {
        // One nappe at paper scale: 128×128 steered points / (128 blocks ×
        // 128 points per cycle) = 1 cycle per element-row stream — the
        // real consumer spends 100 cycles per nappe per block (10 000
        // elements / 100 stagger), so use the per-block view: slice =
        // 2 500 words per bank-group, consumed over 1 280 cycles.
        CircularBufferSim::new(
            StreamingPlan::paper(),
            200.0e6,
            link_bytes_per_s,
            2_500,
            1_280,
        )
    }

    /// Cycles needed to fetch one slice over the DRAM link.
    pub fn fetch_cycles_per_slice(&self) -> u64 {
        let bytes = self.slice_words as f64 * self.plan.word_bits as f64 / 8.0;
        (bytes / self.link_bytes_per_s * self.clock_hz).ceil() as u64
    }

    /// Runs the schedule over `n_slices` nappes with double buffering:
    /// while slice `k` is consumed, slice `k+1` is fetched. The consumer
    /// stalls whenever a fetch has not finished by the time it needs the
    /// next slice.
    pub fn run(&self, n_slices: u64) -> StreamingReport {
        assert!(n_slices > 0, "need at least one slice");
        let fetch = self.fetch_cycles_per_slice();
        let consume = self.cycles_per_slice;
        let mut now: u64 = 0;
        let mut stall: u64 = 0;
        let mut min_margin = i64::MAX;
        // Slice 0 must be fetched before anything starts (prefill; not
        // counted toward the steady-state margin).
        let mut fetch_done = fetch;
        for slice in 0..n_slices {
            // Lead the refill engine has when the consumer needs this
            // slice (positive = fetch finished early).
            if slice > 0 {
                min_margin = min_margin.min(now as i64 - fetch_done as i64);
            }
            if fetch_done > now {
                stall += fetch_done - now;
                now = fetch_done;
            }
            // Kick off the next fetch and consume the current slice.
            fetch_done = now + fetch;
            now += consume;
        }
        if min_margin == i64::MAX {
            min_margin = 0;
        }
        StreamingReport {
            cycles: now,
            stall_cycles: stall,
            min_margin_cycles: min_margin,
            words_fetched: n_slices * self.slice_words,
        }
    }

    /// The minimum link bandwidth (bytes/s) for underrun-free steady-state
    /// streaming: one slice must fetch within one slice-consume time.
    pub fn min_bandwidth_bytes(&self) -> f64 {
        let bytes = self.slice_words as f64 * self.plan.word_bits as f64 / 8.0;
        bytes / (self.cycles_per_slice as f64 / self.clock_hz)
    }
}

/// Residency tracker for the circular reference buffer: which depth
/// slices are on chip while a consumer walks the volume.
///
/// The §V-B scheme keeps a window of consecutive nappe slices resident
/// (double buffering = 2). A nappe-major consumer — e.g. a beamformer
/// filling per-nappe delay slabs — only ever advances by one slice and
/// never revisits, so every access hits the window. Any other traversal
/// (scanline-major most prominently) re-requests evicted slices; the
/// tracker counts those *refetches*, quantifying the paper's claim that
/// nappe order is what makes streaming viable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceWindow {
    window_slices: usize,
    newest: Option<usize>,
    accesses: u64,
    refetches: u64,
    fetches: u64,
}

impl SliceWindow {
    /// A window holding `window_slices` consecutive slices (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `window_slices` is zero.
    pub fn new(window_slices: usize) -> Self {
        assert!(window_slices > 0, "window must hold at least one slice");
        SliceWindow {
            window_slices,
            newest: None,
            accesses: 0,
            refetches: 0,
            fetches: 0,
        }
    }

    /// The double-buffered window of the paper's operating point.
    pub fn paper() -> Self {
        SliceWindow::new(2)
    }

    /// Records a consumer access to slice `id`, streaming slices forward
    /// as needed. Returns `true` when the slice was already resident or
    /// reachable by streaming forward (the steady-state path), `false`
    /// when the consumer forced a refetch of an evicted slice (a backward
    /// jump larger than the window).
    pub fn access(&mut self, id: usize) -> bool {
        self.accesses += 1;
        match self.newest {
            Some(newest) if id <= newest => {
                if newest - id < self.window_slices {
                    true // resident
                } else {
                    // Evicted: rewind the stream to put `id` at the head.
                    self.refetches += 1;
                    self.fetches += 1;
                    self.newest = Some(id);
                    false
                }
            }
            prior => {
                // Stream forward (or initial fill) up to `id`.
                let from = match prior {
                    Some(newest) => newest + 1,
                    None => 0,
                };
                self.fetches += (id + 1 - from.min(id + 1)) as u64;
                self.newest = Some(id);
                true
            }
        }
    }

    /// Total consumer accesses recorded.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Slice fetches from backing memory (steady-state: one per nappe).
    pub fn fetches(&self) -> u64 {
        self.fetches
    }

    /// Accesses that forced an evicted slice to be refetched.
    pub fn refetches(&self) -> u64 {
        self.refetches
    }

    /// Whether every access hit the streaming window so far.
    pub fn streaming_clean(&self) -> bool {
        self.refetches == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bandwidth_streams_without_underrun() {
        // At the §V-B operating point (≈5.4 GB/s) the consumer never
        // stalls after the initial fill.
        let sim = CircularBufferSim::paper_point(5.4e9);
        let r = sim.run(1000);
        // The first slice fetch is the only wait.
        assert_eq!(r.stall_cycles, sim.fetch_cycles_per_slice());
        assert!(sim.fetch_cycles_per_slice() <= sim.plan.bank_words as u64);
    }

    #[test]
    fn starved_link_underruns() {
        let sim = CircularBufferSim::paper_point(0.2e9);
        let r = sim.run(100);
        assert!(!r.underrun_free());
        assert!(r.stall_cycles > 100 * sim.cycles_per_slice / 10);
    }

    #[test]
    fn min_bandwidth_is_the_break_even_point() {
        let sim = CircularBufferSim::paper_point(1.0e9);
        let min_bw = sim.min_bandwidth_bytes();
        let above = CircularBufferSim::paper_point(min_bw * 1.05).run(200);
        let below = CircularBufferSim::paper_point(min_bw * 0.75).run(200);
        // Above break-even: only the initial fill stalls.
        let above_steady = above.stall_cycles
            == CircularBufferSim::paper_point(min_bw * 1.05).fetch_cycles_per_slice();
        assert!(
            above_steady,
            "stalls above break-even: {}",
            above.stall_cycles
        );
        assert!(below.stall_cycles > above.stall_cycles);
    }

    #[test]
    fn words_fetched_accounts_every_slice() {
        let sim = CircularBufferSim::paper_point(5.4e9);
        let r = sim.run(77);
        assert_eq!(r.words_fetched, 77 * 2_500);
    }

    #[test]
    fn margin_reflects_link_speed() {
        // A faster link leaves more steady-state refill margin.
        let fast = CircularBufferSim::paper_point(10.0e9).run(50);
        let slow = CircularBufferSim::paper_point(4.4e9).run(50);
        assert!(fast.min_margin_cycles > slow.min_margin_cycles);
        assert!(fast.min_margin_cycles > 0);
    }

    #[test]
    fn nappe_major_walk_is_streaming_clean() {
        let mut w = SliceWindow::paper();
        for id in 0..1000 {
            assert!(w.access(id), "nappe {id} should stream forward");
            // Within a nappe the slice is re-read for every scanline: all
            // hits.
            for _ in 0..16 {
                assert!(w.access(id));
            }
        }
        assert!(w.streaming_clean());
        assert_eq!(w.fetches(), 1000, "each slice fetched exactly once");
        assert_eq!(w.accesses(), 1000 * 17);
    }

    #[test]
    fn scanline_major_walk_thrashes_the_window() {
        let mut w = SliceWindow::paper();
        let n_depth = 64;
        let scanlines = 8;
        for _ in 0..scanlines {
            for id in 0..n_depth {
                w.access(id);
            }
        }
        assert!(!w.streaming_clean());
        // Every scanline restart rewinds the stream; the full depth range
        // streams again per scanline instead of once per frame — 8× the
        // memory traffic of the nappe-major walk.
        assert_eq!(w.refetches(), (scanlines - 1) as u64);
        assert_eq!(w.fetches(), (scanlines * n_depth) as u64);
    }

    #[test]
    fn small_backward_jumps_inside_window_are_hits() {
        let mut w = SliceWindow::new(4);
        for id in 0..10 {
            w.access(id);
        }
        assert!(w.access(9) && w.access(8) && w.access(6));
        assert!(w.streaming_clean());
        assert!(!w.access(5), "beyond the 4-slice window");
    }

    #[test]
    #[should_panic(expected = "at least one slice")]
    fn zero_window_rejected() {
        SliceWindow::new(0);
    }

    #[test]
    #[should_panic(expected = "double buffering")]
    fn slice_too_large_for_buffer_rejected() {
        CircularBufferSim::new(StreamingPlan::paper(), 200.0e6, 5.4e9, 200_000, 1_000);
    }

    #[test]
    #[should_panic(expected = "rates must be positive")]
    fn zero_bandwidth_rejected() {
        CircularBufferSim::new(StreamingPlan::paper(), 200.0e6, 0.0, 2_500, 1_280);
    }
}
