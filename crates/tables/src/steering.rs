//! Steering-correction tables: the precomputed Eq. 7 plane coefficients.

use usbf_geometry::{ElementIndex, SystemSpec, VoxelIndex};

/// Maps a symmetric grid index to its half-range index (shared with the
/// reference-table quadrant fold): entries mirrored around the centre of a
/// symmetric linspace share an index. Exported so consumers indexing
/// folded storage (e.g. TABLESTEER's quantized reference) use the same
/// fold as the tables themselves.
#[inline]
pub fn fold_coord(i: usize, n: usize) -> usize {
    if n.is_multiple_of(2) {
        if i >= n / 2 {
            i - n / 2
        } else {
            n / 2 - 1 - i
        }
    } else {
        (i as i64 - ((n - 1) / 2) as i64).unsigned_abs() as usize
    }
}

/// The factored steering-correction coefficients of §V-B.
///
/// Eq. 7 corrects the reference delay with a plane:
///
/// ```text
/// tp(O,S,D) ≈ tp(O,R,D) − (xD·cosφ·sinθ + yD·sinφ)/c
/// ```
///
/// The x-term needs one value per `(xD, θ, |φ|)` (cos φ is even, so half
/// the φ range suffices) and the y-term one per `(yD, φ)`:
/// `100 × 128 × 64 + 100 × 128 = 832 × 10³` coefficients for Table I —
/// this is what [`SteeringTables::coefficient_count`] reports. Values are
/// held in **samples** at `fs`.
///
/// ```
/// use usbf_geometry::SystemSpec;
/// use usbf_tables::SteeringTables;
/// let spec = SystemSpec::paper();
/// let t = SteeringTables::build(&spec);
/// assert_eq!(t.coefficient_count(), 832_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SteeringTables {
    /// `xD·cosφ·sinθ` in samples, laid out `[ix][it][ipf]`.
    x_corr: Vec<f64>,
    /// `yD·sinφ` in samples, laid out `[iy][ip]`.
    y_corr: Vec<f64>,
    nx: usize,
    ny: usize,
    n_theta: usize,
    n_phi: usize,
    n_phi_fold: usize,
}

impl SteeringTables {
    /// Precomputes both coefficient tables for a system specification.
    pub fn build(spec: &SystemSpec) -> Self {
        let e = &spec.elements;
        let v = &spec.volume_grid;
        let (nx, ny) = (e.nx(), e.ny());
        let (n_theta, n_phi) = (v.n_theta(), v.n_phi());
        let n_phi_fold = n_phi.div_ceil(2);
        let scale = spec.sampling_frequency / spec.speed_of_sound;

        let mut x_corr = vec![0.0f64; nx * n_theta * n_phi_fold];
        for ix in 0..nx {
            let x = e.x_of(ix);
            for it in 0..n_theta {
                let st = v.theta_of(it).sin();
                for ipf in 0..n_phi_fold {
                    // Representative |φ|: the upper-half member of the fold.
                    let ip = if n_phi % 2 == 0 {
                        n_phi / 2 + ipf
                    } else {
                        (n_phi - 1) / 2 + ipf
                    };
                    let cp = v.phi_of(ip).cos();
                    x_corr[(ix * n_theta + it) * n_phi_fold + ipf] = x * cp * st * scale;
                }
            }
        }

        let mut y_corr = vec![0.0f64; ny * n_phi];
        for iy in 0..ny {
            let y = e.y_of(iy);
            for ip in 0..n_phi {
                y_corr[iy * n_phi + ip] = y * v.phi_of(ip).sin() * scale;
            }
        }

        SteeringTables {
            x_corr,
            y_corr,
            nx,
            ny,
            n_theta,
            n_phi,
            n_phi_fold,
        }
    }

    /// Total stored coefficients: `nx·nθ·⌈nφ/2⌉ + ny·nφ` (832 000 for the
    /// paper's geometry).
    #[inline]
    pub fn coefficient_count(&self) -> usize {
        self.x_corr.len() + self.y_corr.len()
    }

    /// The `xD·cosφ·sinθ` term in samples for element column `ix` and
    /// steering `(it, ip)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[inline]
    pub fn x_term_samples(&self, ix: usize, it: usize, ip: usize) -> f64 {
        assert!(
            ix < self.nx && it < self.n_theta && ip < self.n_phi,
            "index out of range"
        );
        let ipf = fold_coord(ip, self.n_phi);
        self.x_corr[(ix * self.n_theta + it) * self.n_phi_fold + ipf]
    }

    /// The `yD·sinφ` term in samples for element row `iy` and elevation
    /// line `ip`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[inline]
    pub fn y_term_samples(&self, iy: usize, ip: usize) -> f64 {
        assert!(iy < self.ny && ip < self.n_phi, "index out of range");
        self.y_corr[iy * self.n_phi + ip]
    }

    /// The full signed correction of Eq. 7 (to be **added** to the
    /// reference delay), in samples:
    /// `−(xD·cosφ·sinθ + yD·sinφ)·fs/c`.
    #[inline]
    pub fn correction_samples(&self, vox: VoxelIndex, e: ElementIndex) -> f64 {
        -(self.x_term_samples(e.ix, vox.it, vox.ip) + self.y_term_samples(e.iy, vox.ip))
    }

    /// Directly computed (unfactored) correction, for validating the
    /// factorization.
    pub fn correction_direct(spec: &SystemSpec, vox: VoxelIndex, e: ElementIndex) -> f64 {
        let dir = spec.volume_grid.direction(vox.it, vox.ip);
        let (a, b) = dir.steering_coefficients();
        let p = spec.elements.position(e);
        -(p.x * a + p.y * b) * spec.sampling_frequency / spec.speed_of_sound
    }

    /// Largest |correction| in samples — sets the signed fixed-point range
    /// the correction format must cover.
    pub fn max_abs_correction_samples(&self) -> f64 {
        let mx = self.x_corr.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let my = self.y_corr.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        mx + my
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factored_equals_direct_everywhere() {
        let spec = SystemSpec::tiny();
        let t = SteeringTables::build(&spec);
        let v = &spec.volume_grid;
        for it in 0..v.n_theta() {
            for ip in 0..v.n_phi() {
                for e in spec.elements.iter() {
                    let vox = VoxelIndex::new(it, ip, 0);
                    let f = t.correction_samples(vox, e);
                    let d = SteeringTables::correction_direct(&spec, vox, e);
                    assert!((f - d).abs() < 1e-9, "it={it} ip={ip} e={e}: {f} vs {d}");
                }
            }
        }
    }

    #[test]
    fn paper_coefficient_count_is_832k() {
        let spec = SystemSpec::paper();
        let t = SteeringTables::build(&spec);
        assert_eq!(t.coefficient_count(), 832_000);
    }

    #[test]
    fn unsteered_center_correction_is_zero() {
        // tiny spec has even grids: no exactly-zero steering line, so use
        // an odd-resolution variant.
        let base = SystemSpec::tiny();
        let spec = SystemSpec::new(
            base.speed_of_sound,
            base.sampling_frequency,
            base.transducer.clone(),
            usbf_geometry::VolumeSpec {
                n_theta: 9,
                n_phi: 9,
                ..base.volume.clone()
            },
            base.origin,
            base.frame_rate,
        );
        let t = SteeringTables::build(&spec);
        let vox = VoxelIndex::new(4, 4, 0); // θ = φ = 0
        for e in spec.elements.iter() {
            assert_eq!(t.correction_samples(vox, e), 0.0);
        }
    }

    #[test]
    fn correction_antisymmetric_in_theta() {
        let spec = SystemSpec::tiny();
        let t = SteeringTables::build(&spec);
        let n = spec.volume_grid.n_theta();
        let e = ElementIndex::new(6, 3);
        for it in 0..n {
            let x1 = t.x_term_samples(e.ix, it, 2);
            let x2 = t.x_term_samples(e.ix, n - 1 - it, 2);
            assert!((x1 + x2).abs() < 1e-12, "x-term must be odd in θ");
        }
    }

    #[test]
    fn x_term_even_in_phi() {
        let spec = SystemSpec::tiny();
        let t = SteeringTables::build(&spec);
        let n = spec.volume_grid.n_phi();
        for ip in 0..n {
            let a = t.x_term_samples(5, 1, ip);
            let b = t.x_term_samples(5, 1, n - 1 - ip);
            assert_eq!(a, b, "x-term must be even in φ (cos φ)");
        }
    }

    #[test]
    fn y_term_odd_in_phi() {
        let spec = SystemSpec::tiny();
        let t = SteeringTables::build(&spec);
        let n = spec.volume_grid.n_phi();
        for ip in 0..n {
            let a = t.y_term_samples(2, ip);
            let b = t.y_term_samples(2, n - 1 - ip);
            assert!((a + b).abs() < 1e-12, "y-term must be odd in φ");
        }
    }

    #[test]
    fn max_correction_bounded_by_aperture() {
        // |corr| ≤ (|x|max + |y|max)·fs/c.
        let spec = SystemSpec::tiny();
        let t = SteeringTables::build(&spec);
        let e = &spec.elements;
        let bound = (e.x_of(e.nx() - 1).abs() + e.y_of(e.ny() - 1).abs()) * spec.sampling_frequency
            / spec.speed_of_sound;
        assert!(t.max_abs_correction_samples() <= bound + 1e-12);
        assert!(t.max_abs_correction_samples() > 0.0);
    }

    #[test]
    fn odd_phi_grid_folds_correctly() {
        let base = SystemSpec::tiny();
        let spec = SystemSpec::new(
            base.speed_of_sound,
            base.sampling_frequency,
            base.transducer.clone(),
            usbf_geometry::VolumeSpec {
                n_theta: 7,
                n_phi: 7,
                ..base.volume.clone()
            },
            base.origin,
            base.frame_rate,
        );
        let t = SteeringTables::build(&spec);
        for it in 0..7 {
            for ip in 0..7 {
                for e in spec.elements.iter().take(8) {
                    let vox = VoxelIndex::new(it, ip, 0);
                    let f = t.correction_samples(vox, e);
                    let d = SteeringTables::correction_direct(&spec, vox, e);
                    assert!((f - d).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn x_term_out_of_range_panics() {
        let spec = SystemSpec::tiny();
        SteeringTables::build(&spec).x_term_samples(99, 0, 0);
    }
}
