//! Property-based invariants of the delay tables.

use proptest::prelude::*;
use usbf_geometry::{SystemSpec, TransducerSpec, Vec3, VolumeSpec, VoxelIndex};
use usbf_tables::{ReferenceTable, SteeringTables, TableBudget};

fn small_spec(nx: usize, ny: usize, nt: usize, np: usize, nd: usize) -> SystemSpec {
    let base = SystemSpec::tiny();
    SystemSpec::new(
        base.speed_of_sound,
        base.sampling_frequency,
        TransducerSpec {
            nx,
            ny,
            ..base.transducer.clone()
        },
        VolumeSpec {
            n_theta: nt,
            n_phi: np,
            n_depth: nd,
            ..base.volume.clone()
        },
        Vec3::ZERO,
        base.frame_rate,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reference_fold_matches_direct_for_any_dims(
        nx in 1usize..10,
        ny in 1usize..10,
        nd in 1usize..8,
        pick in 0usize..10_000,
    ) {
        let spec = small_spec(nx, ny, 2, 2, nd);
        let t = ReferenceTable::build(&spec);
        let e = spec.elements.element_at(pick % spec.elements.count());
        let id = pick % nd;
        let r = Vec3::new(0.0, 0.0, spec.volume_grid.depth_of(id));
        let direct = spec.two_way_delay_samples(r, spec.elements.position(e));
        prop_assert!((t.delay_samples(id, e) - direct).abs() < 1e-9);
    }

    #[test]
    fn fold_saves_expected_factor(
        nx in 1usize..12,
        ny in 1usize..12,
    ) {
        let spec = small_spec(nx, ny, 2, 2, 3);
        let t = ReferenceTable::build(&spec);
        let expect = nx.div_ceil(2) * ny.div_ceil(2) * 3;
        prop_assert_eq!(t.entry_count(), expect);
    }

    #[test]
    fn steering_factorization_matches_direct_for_any_dims(
        nx in 1usize..8,
        ny in 1usize..8,
        nt in 1usize..8,
        np in 1usize..8,
        pick in 0usize..100_000,
    ) {
        let spec = small_spec(nx, ny, nt, np, 2);
        let t = SteeringTables::build(&spec);
        let e = spec.elements.element_at(pick % spec.elements.count());
        let it = pick % nt;
        let ip = (pick / 7) % np;
        let vox = VoxelIndex::new(it, ip, 0);
        let f = t.correction_samples(vox, e);
        let d = SteeringTables::correction_direct(&spec, vox, e);
        prop_assert!((f - d).abs() < 1e-9, "factored {} vs direct {}", f, d);
    }

    #[test]
    fn steering_coefficient_count_formula(
        nx in 1usize..16,
        ny in 1usize..16,
        nt in 1usize..16,
        np in 1usize..16,
    ) {
        let spec = small_spec(nx, ny, nt, np, 2);
        let t = SteeringTables::build(&spec);
        prop_assert_eq!(t.coefficient_count(), nx * nt * np.div_ceil(2) + ny * np);
    }

    #[test]
    fn budget_matches_entry_arithmetic(
        nx in 1usize..16,
        ny in 1usize..16,
        nd in 1usize..16,
        bits in 8u32..24,
    ) {
        let spec = small_spec(nx, ny, 4, 4, nd);
        let b = TableBudget::for_spec(&spec, bits, bits);
        prop_assert_eq!(
            b.reference_bits,
            (nx.div_ceil(2) * ny.div_ceil(2) * nd) as u64 * bits as u64
        );
        prop_assert_eq!(b.total_bits(), b.reference_bits + b.correction_bits);
    }

    #[test]
    fn steered_delay_error_vanishes_in_far_field(
        it in 0usize..8,
        ip in 0usize..8,
        e_pick in 0usize..64,
    ) {
        // Far-field property: at the deepest nappe the Taylor remainder is
        // second order in (aperture/r) — for the tiny geometry's ~1 mm
        // half-aperture at 192 mm that is well below 0.05 samples. (The
        // signed error can cross zero, so strict per-pair monotonicity in
        // depth does not hold; the asymptotic bound does.)
        let spec = SystemSpec::tiny();
        let reference = ReferenceTable::build(&spec);
        let steering = SteeringTables::build(&spec);
        let e = spec.elements.element_at(e_pick % spec.elements.count());
        let err = |id: usize| {
            usbf_tables::error::steering_error_samples(
                &spec, &reference, &steering, VoxelIndex::new(it, ip, id), e,
            )
            .abs()
        };
        prop_assert!(err(15) <= 0.05, "far-field error {} too large", err(15));
        // And it never exceeds the worst shallow-depth error by more than
        // the same margin.
        prop_assert!(err(15) <= err(0) + 0.05);
    }
}
