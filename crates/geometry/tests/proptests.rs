//! Property-based invariants of the geometry substrate.

use proptest::prelude::*;
use usbf_geometry::scan::ScanOrder;
use usbf_geometry::{
    deg, ElementIndex, ImagingVolume, SphericalDirection, TransducerArray, Vec3, VoxelIndex,
};

proptest! {
    #[test]
    fn voxel_linear_index_roundtrip(
        nt in 1usize..12,
        np in 1usize..12,
        nd in 1usize..12,
        pick in 0usize..1000,
    ) {
        let v = ImagingVolume::new(deg(30.0), deg(25.0), 0.1, nt, np, nd);
        let i = pick % v.voxel_count();
        prop_assert_eq!(v.linear_index(v.voxel_at(i)), i);
    }

    #[test]
    fn element_linear_index_roundtrip(
        nx in 1usize..20,
        ny in 1usize..20,
        pick in 0usize..1000,
    ) {
        let a = TransducerArray::new(nx, ny, 0.2e-3);
        let i = pick % a.count();
        prop_assert_eq!(a.linear_index(a.element_at(i)), i);
    }

    #[test]
    fn array_positions_are_centred(
        nx in 1usize..30,
        ny in 1usize..30,
        pitch in 0.05e-3..0.5e-3,
    ) {
        let a = TransducerArray::new(nx, ny, pitch);
        let sum = a.iter().fold(Vec3::ZERO, |s, e| s + a.position(e));
        prop_assert!(sum.norm() < 1e-12 * a.count() as f64);
    }

    #[test]
    fn spherical_roundtrip(
        theta in -1.2f64..1.2,
        phi in -1.2f64..1.2,
        r in 1e-3f64..0.5,
    ) {
        let d = SphericalDirection::new(theta, phi);
        let p = d.point_at(r);
        let (d2, r2) = SphericalDirection::from_point(p).expect("nonzero point");
        prop_assert!((r2 - r).abs() < 1e-12);
        // Positions must agree even if angles are expressed differently.
        prop_assert!(d2.point_at(r2).distance(p) < 1e-12);
    }

    #[test]
    fn scan_orders_are_permutations(
        nt in 1usize..6,
        np in 1usize..6,
        nd in 1usize..6,
    ) {
        let v = ImagingVolume::new(deg(20.0), deg(20.0), 0.05, nt, np, nd);
        for order in [ScanOrder::NappeByNappe, ScanOrder::ScanlineByScanline] {
            let mut seen: Vec<VoxelIndex> = order.iter(&v).collect();
            prop_assert_eq!(seen.len(), v.voxel_count());
            seen.sort();
            seen.dedup();
            prop_assert_eq!(seen.len(), v.voxel_count());
        }
    }

    #[test]
    fn two_way_delay_is_symmetric_under_mirrored_elements(
        ix in 0usize..8,
        iy in 0usize..8,
        id in 0usize..16,
    ) {
        // On-axis points: mirrored elements have identical delays — the
        // quadrant-folding premise.
        let spec = usbf_geometry::SystemSpec::tiny();
        let v = &spec.volume_grid;
        let s = Vec3::new(0.0, 0.0, v.depth_of(id));
        let e = spec.elements.position(ElementIndex::new(ix, iy));
        let m = spec.elements.position(ElementIndex::new(7 - ix, 7 - iy));
        let a = spec.two_way_delay_samples(s, e);
        let b = spec.two_way_delay_samples(s, m);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn delay_monotone_in_depth_on_axis(
        ix in 0usize..8,
        iy in 0usize..8,
        id in 0usize..15,
    ) {
        let spec = usbf_geometry::SystemSpec::tiny();
        let v = &spec.volume_grid;
        let e = spec.elements.position(ElementIndex::new(ix, iy));
        let near = spec.two_way_delay_samples(Vec3::new(0.0, 0.0, v.depth_of(id)), e);
        let far = spec.two_way_delay_samples(Vec3::new(0.0, 0.0, v.depth_of(id + 1)), e);
        prop_assert!(far > near);
    }
}
