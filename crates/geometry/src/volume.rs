//! The imaging volume: a spherical-sector grid of focal points.

use crate::{SphericalDirection, Vec3};
use std::fmt;

/// Index of one focal point (voxel) in the imaging volume grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VoxelIndex {
    /// Azimuth (θ) grid index.
    pub it: usize,
    /// Elevation (φ) grid index.
    pub ip: usize,
    /// Depth grid index.
    pub id: usize,
}

impl VoxelIndex {
    /// Creates a voxel index.
    #[inline]
    pub const fn new(it: usize, ip: usize, id: usize) -> Self {
        VoxelIndex { it, ip, id }
    }
}

impl fmt::Display for VoxelIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S[θ{},φ{},d{}]", self.it, self.ip, self.id)
    }
}

/// The volume of interest `V`: `nθ × nφ` steered lines of sight, each
/// sampled at `nd` depths (Table I: 128 × 128 × 1000 over 73° × 73° ×
/// 500λ).
///
/// Angles are linearly spaced on `[-θmax, +θmax]` / `[-φmax, +φmax]`
/// (inclusive). Depths are `d_k = (k + 1)·Δd` with `Δd = depth_max / nd`,
/// so the first focal point sits one depth-step below the probe — the
/// origin itself is never a focal point (its steering direction is
/// undefined and its delay trivially zero).
///
/// ```
/// use usbf_geometry::{ImagingVolume, VoxelIndex, deg};
/// let v = ImagingVolume::new(deg(36.5), deg(36.5), 0.09625, 128, 128, 1000);
/// assert_eq!(v.voxel_count(), 128 * 128 * 1000);
/// let center = v.position(VoxelIndex::new(64, 64, 499));
/// assert!(center.z > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ImagingVolume {
    theta_max: f64,
    phi_max: f64,
    depth_max: f64,
    n_theta: usize,
    n_phi: usize,
    n_depth: usize,
}

impl ImagingVolume {
    /// Creates a volume with half-angles `theta_max`, `phi_max` (radians),
    /// maximum depth `depth_max` (metres) and the given grid resolution.
    ///
    /// # Panics
    ///
    /// Panics if any grid dimension is zero, the depth is not positive, or a
    /// half-angle is outside `(0, π/2)`.
    pub fn new(
        theta_max: f64,
        phi_max: f64,
        depth_max: f64,
        n_theta: usize,
        n_phi: usize,
        n_depth: usize,
    ) -> Self {
        assert!(
            n_theta > 0 && n_phi > 0 && n_depth > 0,
            "grid dimensions must be nonzero"
        );
        assert!(depth_max > 0.0, "depth must be positive, got {depth_max}");
        assert!(
            theta_max > 0.0 && theta_max < std::f64::consts::FRAC_PI_2,
            "theta_max must be in (0, π/2), got {theta_max}"
        );
        assert!(
            phi_max > 0.0 && phi_max < std::f64::consts::FRAC_PI_2,
            "phi_max must be in (0, π/2), got {phi_max}"
        );
        ImagingVolume {
            theta_max,
            phi_max,
            depth_max,
            n_theta,
            n_phi,
            n_depth,
        }
    }

    /// Azimuth half-angle θmax in radians.
    #[inline]
    pub fn theta_max(&self) -> f64 {
        self.theta_max
    }

    /// Elevation half-angle φmax in radians.
    #[inline]
    pub fn phi_max(&self) -> f64 {
        self.phi_max
    }

    /// Maximum imaging depth in metres.
    #[inline]
    pub fn depth_max(&self) -> f64 {
        self.depth_max
    }

    /// Number of azimuth lines.
    #[inline]
    pub fn n_theta(&self) -> usize {
        self.n_theta
    }

    /// Number of elevation lines.
    #[inline]
    pub fn n_phi(&self) -> usize {
        self.n_phi
    }

    /// Number of focal depths per line of sight.
    #[inline]
    pub fn n_depth(&self) -> usize {
        self.n_depth
    }

    /// Total number of focal points.
    #[inline]
    pub fn voxel_count(&self) -> usize {
        self.n_theta * self.n_phi * self.n_depth
    }

    /// Number of steered lines of sight (scanlines).
    #[inline]
    pub fn scanline_count(&self) -> usize {
        self.n_theta * self.n_phi
    }

    /// Depth-step Δd in metres.
    #[inline]
    pub fn depth_step(&self) -> f64 {
        self.depth_max / self.n_depth as f64
    }

    fn angle_of(index: usize, n: usize, max: f64) -> f64 {
        if n == 1 {
            0.0
        } else {
            -max + 2.0 * max * index as f64 / (n as f64 - 1.0)
        }
    }

    /// Azimuth angle of grid line `it`.
    #[inline]
    pub fn theta_of(&self, it: usize) -> f64 {
        debug_assert!(it < self.n_theta);
        Self::angle_of(it, self.n_theta, self.theta_max)
    }

    /// Elevation angle of grid line `ip`.
    #[inline]
    pub fn phi_of(&self, ip: usize) -> f64 {
        debug_assert!(ip < self.n_phi);
        Self::angle_of(ip, self.n_phi, self.phi_max)
    }

    /// Radial distance of depth index `id` from the origin.
    #[inline]
    pub fn depth_of(&self, id: usize) -> f64 {
        debug_assert!(id < self.n_depth);
        (id as f64 + 1.0) * self.depth_step()
    }

    /// Steering direction of the scanline through voxel column `(it, ip)`.
    #[inline]
    pub fn direction(&self, it: usize, ip: usize) -> SphericalDirection {
        SphericalDirection::new(self.theta_of(it), self.phi_of(ip))
    }

    /// Cartesian position of a focal point (Eq. 5).
    #[inline]
    pub fn position(&self, v: VoxelIndex) -> Vec3 {
        self.direction(v.it, v.ip).point_at(self.depth_of(v.id))
    }

    /// Flattens a voxel index into scanline-major linear order
    /// (θ outermost, then φ, then depth).
    #[inline]
    pub fn linear_index(&self, v: VoxelIndex) -> usize {
        debug_assert!(v.it < self.n_theta && v.ip < self.n_phi && v.id < self.n_depth);
        (v.it * self.n_phi + v.ip) * self.n_depth + v.id
    }

    /// Inverse of [`ImagingVolume::linear_index`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.voxel_count()`.
    pub fn voxel_at(&self, i: usize) -> VoxelIndex {
        assert!(
            i < self.voxel_count(),
            "linear voxel index {i} out of range"
        );
        let id = i % self.n_depth;
        let rest = i / self.n_depth;
        VoxelIndex::new(rest / self.n_phi, rest % self.n_phi, id)
    }

    /// Returns a volume identical to `self` but with a different grid
    /// resolution — used to down-sample sweeps while keeping the physical
    /// extent of the paper's geometry.
    pub fn with_resolution(&self, n_theta: usize, n_phi: usize, n_depth: usize) -> Self {
        ImagingVolume::new(
            self.theta_max,
            self.phi_max,
            self.depth_max,
            n_theta,
            n_phi,
            n_depth,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deg;

    fn vol() -> ImagingVolume {
        ImagingVolume::new(deg(36.5), deg(36.5), 0.09625, 8, 6, 10)
    }

    #[test]
    fn angles_span_symmetric_range() {
        let v = vol();
        assert!((v.theta_of(0) + v.theta_max()).abs() < 1e-15);
        assert!((v.theta_of(7) - v.theta_max()).abs() < 1e-15);
        assert!((v.phi_of(0) + v.phi_max()).abs() < 1e-15);
        assert!((v.phi_of(5) - v.phi_max()).abs() < 1e-15);
    }

    #[test]
    fn single_line_grid_is_on_axis() {
        let v = ImagingVolume::new(deg(10.0), deg(10.0), 0.05, 1, 1, 4);
        assert_eq!(v.theta_of(0), 0.0);
        assert_eq!(v.phi_of(0), 0.0);
        let p = v.position(VoxelIndex::new(0, 0, 3));
        assert_eq!((p.x, p.y), (0.0, 0.0));
        assert!((p.z - 0.05).abs() < 1e-15);
    }

    #[test]
    fn depths_start_one_step_in_and_end_at_max() {
        let v = vol();
        assert!((v.depth_of(0) - v.depth_step()).abs() < 1e-18);
        assert!((v.depth_of(9) - 0.09625).abs() < 1e-15);
    }

    #[test]
    fn voxel_positions_have_expected_radius() {
        let v = vol();
        for id in 0..v.n_depth() {
            let p = v.position(VoxelIndex::new(3, 2, id));
            assert!((p.norm() - v.depth_of(id)).abs() < 1e-15);
        }
    }

    #[test]
    fn linear_index_roundtrip() {
        let v = vol();
        for i in 0..v.voxel_count() {
            assert_eq!(v.linear_index(v.voxel_at(i)), i);
        }
    }

    #[test]
    fn with_resolution_keeps_extent() {
        let v = vol().with_resolution(3, 3, 5);
        assert_eq!(v.n_theta(), 3);
        assert!((v.theta_max() - deg(36.5)).abs() < 1e-15);
        assert!((v.depth_max() - 0.09625).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "grid dimensions must be nonzero")]
    fn zero_grid_rejected() {
        ImagingVolume::new(deg(10.0), deg(10.0), 0.05, 0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "theta_max must be in")]
    fn right_angle_rejected() {
        ImagingVolume::new(deg(90.0), deg(10.0), 0.05, 2, 2, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn voxel_at_out_of_range_panics() {
        vol().voxel_at(8 * 6 * 10);
    }
}
