//! Focal-point traversal orders (Algorithm 1 / Fig. 1 of the paper).
//!
//! Both orders visit exactly the same focal points, so image quality is
//! identical; what changes is the *locality* of delay-table accesses and the
//! increment structure of on-the-fly delay computation:
//!
//! * **scanline-by-scanline** — for each steered direction, walk all depths;
//! * **nappe-by-nappe** — for each depth (a constant-radius surface, the
//!   "nappe"), visit every steered direction. This order lets TABLESTEER
//!   reuse one reference-table slice per nappe and minimizes table walking.

use crate::{ImagingVolume, VoxelIndex};

/// Which of the two equivalent traversals of Algorithm 1 to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScanOrder {
    /// θ → φ → depth (classic scanline reconstruction).
    ScanlineByScanline,
    /// depth → θ → φ (the paper's preferred nappe reconstruction).
    #[default]
    NappeByNappe,
}

impl ScanOrder {
    /// Iterates over every voxel of `volume` in this order.
    pub fn iter(self, volume: &ImagingVolume) -> ScanIter {
        ScanIter {
            order: self,
            n_theta: volume.n_theta(),
            n_phi: volume.n_phi(),
            n_depth: volume.n_depth(),
            next: 0,
            total: volume.voxel_count(),
        }
    }

    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            ScanOrder::ScanlineByScanline => "scanline-by-scanline",
            ScanOrder::NappeByNappe => "nappe-by-nappe",
        }
    }
}

impl std::fmt::Display for ScanOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Iterator over all voxels of a volume in a chosen [`ScanOrder`].
///
/// Produced by [`ScanOrder::iter`].
#[derive(Debug, Clone)]
pub struct ScanIter {
    order: ScanOrder,
    n_theta: usize,
    n_phi: usize,
    n_depth: usize,
    next: usize,
    total: usize,
}

impl Iterator for ScanIter {
    type Item = VoxelIndex;

    fn next(&mut self) -> Option<VoxelIndex> {
        if self.next >= self.total {
            return None;
        }
        let i = self.next;
        self.next += 1;
        Some(match self.order {
            ScanOrder::ScanlineByScanline => {
                let id = i % self.n_depth;
                let rest = i / self.n_depth;
                VoxelIndex::new(rest / self.n_phi, rest % self.n_phi, id)
            }
            ScanOrder::NappeByNappe => {
                let ip = i % self.n_phi;
                let rest = i / self.n_phi;
                VoxelIndex::new(rest % self.n_theta, ip, rest / self.n_theta)
            }
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.total - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for ScanIter {}

/// Iterates over the scanlines `(it, ip)` of a volume in row-major order
/// (θ outer, φ inner), as used when precomputing steering coefficients.
pub fn scanlines(volume: &ImagingVolume) -> impl Iterator<Item = (usize, usize)> + '_ {
    let n_phi = volume.n_phi();
    (0..volume.scanline_count()).map(move |i| (i / n_phi, i % n_phi))
}

/// Iterates over one nappe (all steered directions at depth `id`) in the
/// nappe-by-nappe inner order (θ outer, φ inner).
pub fn nappe(volume: &ImagingVolume, id: usize) -> impl Iterator<Item = VoxelIndex> + '_ {
    assert!(id < volume.n_depth(), "nappe index {id} out of range");
    scanlines(volume).map(move |(it, ip)| VoxelIndex::new(it, ip, id))
}

/// Iterates over one scanline (all depths along direction `(it, ip)`).
pub fn scanline(
    volume: &ImagingVolume,
    it: usize,
    ip: usize,
) -> impl Iterator<Item = VoxelIndex> + '_ {
    assert!(
        it < volume.n_theta() && ip < volume.n_phi(),
        "scanline ({it},{ip}) out of range"
    );
    (0..volume.n_depth()).map(move |id| VoxelIndex::new(it, ip, id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deg;
    use std::collections::HashSet;

    fn vol() -> ImagingVolume {
        ImagingVolume::new(deg(30.0), deg(20.0), 0.05, 4, 3, 5)
    }

    #[test]
    fn both_orders_visit_every_voxel_once() {
        let v = vol();
        for order in [ScanOrder::ScanlineByScanline, ScanOrder::NappeByNappe] {
            let seen: HashSet<_> = order.iter(&v).collect();
            assert_eq!(seen.len(), v.voxel_count(), "{order}");
        }
    }

    #[test]
    fn orders_visit_identical_sets() {
        let v = vol();
        let a: HashSet<_> = ScanOrder::ScanlineByScanline.iter(&v).collect();
        let b: HashSet<_> = ScanOrder::NappeByNappe.iter(&v).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn scanline_order_innermost_is_depth() {
        let v = vol();
        let first: Vec<_> = ScanOrder::ScanlineByScanline.iter(&v).take(5).collect();
        for (k, vox) in first.iter().enumerate() {
            assert_eq!(*vox, VoxelIndex::new(0, 0, k));
        }
    }

    #[test]
    fn nappe_order_outermost_is_depth() {
        let v = vol();
        let all: Vec<_> = ScanOrder::NappeByNappe.iter(&v).collect();
        // First 12 (= 4×3) entries must all be depth 0.
        assert!(all[..12].iter().all(|vox| vox.id == 0));
        assert!(all[12..24].iter().all(|vox| vox.id == 1));
    }

    #[test]
    fn exact_size_iterator_contract() {
        let v = vol();
        let mut it = ScanOrder::NappeByNappe.iter(&v);
        assert_eq!(it.len(), 60);
        it.next();
        assert_eq!(it.len(), 59);
        assert_eq!(it.count(), 59);
    }

    #[test]
    fn nappe_helper_matches_full_order() {
        let v = vol();
        let by_helper: Vec<_> = (0..v.n_depth()).flat_map(|id| nappe(&v, id)).collect();
        let by_order: Vec<_> = ScanOrder::NappeByNappe.iter(&v).collect();
        assert_eq!(by_helper, by_order);
    }

    #[test]
    fn scanline_helper_matches_full_order() {
        let v = vol();
        let by_helper: Vec<_> = scanlines(&v)
            .flat_map(|(it, ip)| scanline(&v, it, ip))
            .collect();
        let by_order: Vec<_> = ScanOrder::ScanlineByScanline.iter(&v).collect();
        assert_eq!(by_helper, by_order);
    }

    #[test]
    fn scanlines_count() {
        let v = vol();
        assert_eq!(scanlines(&v).count(), 12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nappe_out_of_range_panics() {
        let v = vol();
        let _ = nappe(&v, 5);
    }

    #[test]
    fn default_order_is_nappe() {
        assert_eq!(ScanOrder::default(), ScanOrder::NappeByNappe);
    }
}
