//! The paper's Table I system specification and derived quantities.

use crate::{ImagingVolume, TransducerArray, TransmitModel, Vec3, SPEED_OF_SOUND};

/// Transducer-head portion of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct TransducerSpec {
    /// Center frequency `fc` in Hz (Table I: 4 MHz).
    pub center_frequency: f64,
    /// Bandwidth `B` in Hz (Table I: 4 MHz).
    pub bandwidth: f64,
    /// Matrix size along x (Table I: 100).
    pub nx: usize,
    /// Matrix size along y (Table I: 100).
    pub ny: usize,
    /// Element pitch in metres (Table I: λ/2).
    pub pitch: f64,
}

/// Beamformer-volume portion of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct VolumeSpec {
    /// Azimuth half-angle in radians (Table I: 73°/2 = 36.5°).
    pub theta_max: f64,
    /// Elevation half-angle in radians (Table I: 36.5°).
    pub phi_max: f64,
    /// Maximum depth in metres (Table I: 500λ = 96.25 mm).
    pub depth_max: f64,
    /// Focal points along θ (Table I: 128).
    pub n_theta: usize,
    /// Focal points along φ (Table I: 128).
    pub n_phi: usize,
    /// Focal points along depth (Table I: 1000).
    pub n_depth: usize,
}

/// Complete system specification (Table I) plus the emission origin and the
/// target frame rate used in the paper's bandwidth arithmetic (§II-C).
///
/// ```
/// use usbf_geometry::SystemSpec;
/// let s = SystemSpec::paper();
/// // §II-B: ~164e9 delay coefficients for the naive table.
/// assert_eq!(s.naive_table_entries(), 163_840_000_000);
/// // §II-C: ~2.5e12 delay values per second at 15 fps.
/// assert!((s.delays_per_second() - 2.4576e12).abs() < 1e9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    /// Speed of sound in the medium, m/s (Table I: 1540).
    pub speed_of_sound: f64,
    /// Echo sampling frequency `fs` in Hz (Table I: 32 MHz).
    pub sampling_frequency: f64,
    /// Transducer head.
    pub transducer: TransducerSpec,
    /// Imaging volume.
    pub volume: VolumeSpec,
    /// Emission reference point `O` (origin of transmit delays). The paper's
    /// TABLESTEER analysis assumes it at the array centre.
    pub origin: Vec3,
    /// Target volume rate in frames/s (§II-C: 15).
    pub frame_rate: f64,
    /// Transmit sequence of one frame: one [`TransmitModel`] per
    /// insonification. The historical single focused emission from `origin`
    /// is the default `[PointSource]`; a CPWC frame lists one plane wave
    /// per compounding angle.
    pub transmits: Vec<TransmitModel>,
    /// Pre-built transducer array (kept in sync with `transducer`).
    pub elements: TransducerArray,
    /// Pre-built imaging volume grid (kept in sync with `volume`).
    pub volume_grid: ImagingVolume,
}

impl SystemSpec {
    /// Builds a spec from its parts, deriving the array and volume grids.
    ///
    /// # Panics
    ///
    /// Panics on non-positive frequencies or frame rate, or if the
    /// underlying [`TransducerArray`] / [`ImagingVolume`] constructors
    /// reject their inputs.
    pub fn new(
        speed_of_sound: f64,
        sampling_frequency: f64,
        transducer: TransducerSpec,
        volume: VolumeSpec,
        origin: Vec3,
        frame_rate: f64,
    ) -> Self {
        assert!(speed_of_sound > 0.0, "speed of sound must be positive");
        assert!(
            sampling_frequency > 0.0,
            "sampling frequency must be positive"
        );
        assert!(
            transducer.center_frequency > 0.0,
            "center frequency must be positive"
        );
        assert!(frame_rate > 0.0, "frame rate must be positive");
        let elements = TransducerArray::new(transducer.nx, transducer.ny, transducer.pitch);
        let volume_grid = ImagingVolume::new(
            volume.theta_max,
            volume.phi_max,
            volume.depth_max,
            volume.n_theta,
            volume.n_phi,
            volume.n_depth,
        );
        SystemSpec {
            speed_of_sound,
            sampling_frequency,
            transducer,
            volume,
            origin,
            frame_rate,
            transmits: vec![TransmitModel::PointSource],
            elements,
            volume_grid,
        }
    }

    /// Replaces the transmit sequence (builder style).
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence — a frame needs at least one transmit.
    #[must_use = "with_transmits returns the configured spec; dropping it discards the transmits"]
    pub fn with_transmits(mut self, transmits: Vec<TransmitModel>) -> Self {
        assert!(!transmits.is_empty(), "a frame needs at least one transmit");
        self.transmits = transmits;
        self
    }

    /// Number of transmits per frame (compounding angles; 1 for the
    /// historical single-emission scan).
    #[inline]
    pub fn n_transmits(&self) -> usize {
        self.transmits.len()
    }

    /// `true` for the historical single point-source emission — the case
    /// every pre-compounding datapath was built for. Consumers use this
    /// to route single-emission frames through the classic kernels
    /// (keeping them bit-identical to earlier revisions) and everything
    /// else through the compound accumulator.
    #[inline]
    pub fn is_single_point_source(&self) -> bool {
        self.transmits.len() == 1 && self.transmits[0] == TransmitModel::PointSource
    }

    /// One-way transmit distance (metres) of transmit `k` to field point
    /// `s` — the transmit leg of Eq. 2 generalized per transmit model.
    #[inline]
    pub fn transmit_distance(&self, k: usize, s: Vec3) -> f64 {
        self.transmits[k].distance(self.origin, s)
    }

    /// One-way transmit delay of transmit `k` to `s`, in samples at `fs`.
    #[inline]
    pub fn transmit_delay_samples(&self, k: usize, s: Vec3) -> f64 {
        self.metres_to_samples(self.transmit_distance(k, s))
    }

    /// Insonification weight of field point `s` under transmit `k` — see
    /// [`TransmitModel::weight`].
    #[inline]
    pub fn transmit_weight(&self, k: usize, s: Vec3) -> f64 {
        self.transmits[k].weight(&self.elements, s)
    }

    fn with_scale(nx: usize, ny: usize, n_theta: usize, n_phi: usize, n_depth: usize) -> Self {
        let fc = 4.0e6;
        let lambda = SPEED_OF_SOUND / fc;
        let transducer = TransducerSpec {
            center_frequency: fc,
            bandwidth: 4.0e6,
            nx,
            ny,
            pitch: lambda / 2.0,
        };
        let volume = VolumeSpec {
            theta_max: crate::deg(36.5),
            phi_max: crate::deg(36.5),
            depth_max: 500.0 * lambda,
            n_theta,
            n_phi,
            n_depth,
        };
        SystemSpec::new(SPEED_OF_SOUND, 32.0e6, transducer, volume, Vec3::ZERO, 15.0)
    }

    /// The full Table I specification: 100 × 100 elements,
    /// 128 × 128 × 1000 focal points, 73° × 73° × 500λ, fs = 32 MHz,
    /// 15 frames/s.
    pub fn paper() -> Self {
        Self::with_scale(100, 100, 128, 128, 1000)
    }

    /// A reduced preset (32 × 32 elements, 32 × 32 × 128 voxels) with the
    /// paper's physical extents, small enough for exhaustive host-side
    /// error sweeps and beamforming tests.
    pub fn reduced() -> Self {
        Self::with_scale(32, 32, 32, 32, 128)
    }

    /// The demo geometry of Fig. 3a: 16 × 16 elements, 500 depths.
    pub fn figure3() -> Self {
        Self::with_scale(16, 16, 16, 16, 500)
    }

    /// A tiny geometry for unit tests (8 × 8 elements, 8 × 8 × 16 voxels).
    pub fn tiny() -> Self {
        Self::with_scale(8, 8, 8, 8, 16)
    }

    /// Acoustic wavelength λ = c / fc in metres.
    #[inline]
    pub fn wavelength(&self) -> f64 {
        self.speed_of_sound / self.transducer.center_frequency
    }

    /// Converts a time in seconds to delay samples at `fs`.
    #[inline]
    pub fn seconds_to_samples(&self, t: f64) -> f64 {
        t * self.sampling_frequency
    }

    /// Converts delay samples at `fs` to seconds.
    #[inline]
    pub fn samples_to_seconds(&self, n: f64) -> f64 {
        n / self.sampling_frequency
    }

    /// Converts a distance in metres to one-way propagation delay samples.
    #[inline]
    pub fn metres_to_samples(&self, d: f64) -> f64 {
        d / self.speed_of_sound * self.sampling_frequency
    }

    /// Exact two-way propagation delay (Eq. 2) in **seconds** from the
    /// emission origin to point `s` and back to element position `d`.
    #[inline]
    pub fn two_way_delay_seconds(&self, s: Vec3, d: Vec3) -> f64 {
        (s.distance(self.origin) + s.distance(d)) / self.speed_of_sound
    }

    /// Exact two-way propagation delay (Eq. 2) in **samples** at `fs`.
    #[inline]
    pub fn two_way_delay_samples(&self, s: Vec3, d: Vec3) -> f64 {
        self.seconds_to_samples(self.two_way_delay_seconds(s, d))
    }

    /// Exact two-way delay of transmit `k` in **seconds**: the transmit
    /// leg per that transmit's model plus the receive leg `|s − d|`.
    /// Reduces to [`SystemSpec::two_way_delay_seconds`] for a point source.
    #[inline]
    pub fn two_way_delay_seconds_for(&self, k: usize, s: Vec3, d: Vec3) -> f64 {
        (self.transmit_distance(k, s) + s.distance(d)) / self.speed_of_sound
    }

    /// Exact two-way delay of transmit `k` in **samples** at `fs`.
    #[inline]
    pub fn two_way_delay_samples_for(&self, k: usize, s: Vec3, d: Vec3) -> f64 {
        self.seconds_to_samples(self.two_way_delay_seconds_for(k, s, d))
    }

    /// Size of the naive fully precomputed delay table in coefficients:
    /// one per (voxel, element) pair (§II-B: ≈164 × 10⁹ for Table I).
    #[inline]
    pub fn naive_table_entries(&self) -> u64 {
        self.volume_grid.voxel_count() as u64 * self.elements.count() as u64
    }

    /// Delay values consumed per second at the target frame rate
    /// (§II-C: ≈2.5 × 10¹² for Table I at 15 fps).
    #[inline]
    pub fn delays_per_second(&self) -> f64 {
        self.naive_table_entries() as f64 * self.frame_rate
    }

    /// Worst-case two-way delay in samples over the entire geometry: the
    /// echo-buffer depth needed ("slightly more than 8000 samples" → a
    /// 13-bit index, §V-B).
    ///
    /// The maximum is attained at maximum depth and extreme steering, with
    /// the farthest element in the opposite corner; it is found by scanning
    /// the volume's corner directions against the aperture corners.
    pub fn max_two_way_delay_samples(&self) -> f64 {
        let v = &self.volume_grid;
        let r = v.depth_max();
        let corners_s: Vec<Vec3> = [
            (v.theta_max(), v.phi_max()),
            (v.theta_max(), -v.phi_max()),
            (-v.theta_max(), v.phi_max()),
            (-v.theta_max(), -v.phi_max()),
            (v.theta_max(), 0.0),
            (0.0, v.phi_max()),
            (0.0, 0.0),
        ]
        .iter()
        .map(|&(t, p)| crate::SphericalDirection::new(t, p).point_at(r))
        .collect();
        let e = &self.elements;
        let corners_d = [
            Vec3::new(e.x_of(0), e.y_of(0), 0.0),
            Vec3::new(e.x_of(e.nx() - 1), e.y_of(0), 0.0),
            Vec3::new(e.x_of(0), e.y_of(e.ny() - 1), 0.0),
            Vec3::new(e.x_of(e.nx() - 1), e.y_of(e.ny() - 1), 0.0),
        ];
        let mut max = 0.0f64;
        for s in &corners_s {
            for d in &corners_d {
                max = max.max(self.two_way_delay_samples(*s, *d));
            }
        }
        max
    }

    /// Worst-case **one-way** propagation delay in samples over the
    /// geometry: the larger of the deepest transmit path `|S − O|` and the
    /// farthest receive path `|S − D|` (extreme steering × opposite
    /// aperture corner). This bounds the argument range of the TABLEFREE
    /// square-root approximation.
    pub fn max_one_way_delay_samples(&self) -> f64 {
        let v = &self.volume_grid;
        let r = v.depth_max();
        let corners_s: Vec<Vec3> = [
            (v.theta_max(), v.phi_max()),
            (v.theta_max(), -v.phi_max()),
            (-v.theta_max(), v.phi_max()),
            (-v.theta_max(), -v.phi_max()),
        ]
        .iter()
        .map(|&(t, p)| crate::SphericalDirection::new(t, p).point_at(r))
        .collect();
        let e = &self.elements;
        let corners_d = [
            Vec3::new(e.x_of(0), e.y_of(0), 0.0),
            Vec3::new(e.x_of(e.nx() - 1), e.y_of(e.ny() - 1), 0.0),
        ];
        let mut max = r + self.origin.norm(); // transmit leg bound
        for s in &corners_s {
            for d in &corners_d {
                max = max.max(s.distance(*d));
            }
        }
        self.metres_to_samples(max)
    }

    /// Number of index bits needed to address the nominal on-axis two-way
    /// window `2·depth_max·fs` — 13 for the paper's geometry ("slightly
    /// more than 8000 samples … requires 13-bit precision", §V-B).
    pub fn echo_index_bits(&self) -> u32 {
        let window = (2.0 * self.volume.depth_max / self.speed_of_sound * self.sampling_frequency)
            .ceil() as u64
            + 1;
        64 - (window - 1).leading_zeros()
    }

    /// Echo-buffer length: the nominal window rounded up to the full
    /// addressable size of [`SystemSpec::echo_index_bits`] (8192 for
    /// Table I). The true geometric worst case
    /// ([`SystemSpec::max_two_way_delay_samples`]) slightly exceeds even
    /// this at extreme steering × opposite aperture corner; those fetches
    /// lie outside element directivity and clamp.
    pub fn echo_buffer_len(&self) -> usize {
        1usize << self.echo_index_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_wavelength_matches_table1() {
        let s = SystemSpec::paper();
        assert!((s.wavelength() - 0.385e-3).abs() < 1e-9);
        // 500λ = 192.5 mm.
        assert!((s.volume.depth_max - 192.5e-3).abs() < 1e-12);
    }

    #[test]
    fn naive_table_is_164e9() {
        // §II-B: "the theoretical number of delay values ... about 164e9".
        let s = SystemSpec::paper();
        assert_eq!(s.naive_table_entries(), 128 * 128 * 1000 * 10_000);
    }

    #[test]
    fn bandwidth_is_2_5e12_per_second() {
        // §II-C: "about 2.5e12 delay values/s ... at 15 frames/s".
        let s = SystemSpec::paper();
        let rate = s.delays_per_second();
        assert!(rate > 2.4e12 && rate < 2.6e12, "rate = {rate}");
    }

    #[test]
    fn echo_buffer_slightly_more_than_8000() {
        // §V-B: "slightly more than 8000 samples ... requires 13-bit".
        let s = SystemSpec::paper();
        let len = s.echo_buffer_len();
        assert!(len > 8000, "len = {len}");
        assert!(len <= 8192, "len = {len} should still fit 13 bits");
        assert_eq!(s.echo_index_bits(), 13);
        // The true geometric worst case exceeds the nominal window; it lies
        // outside element directivity and is clamped by the beamformer.
        assert!(s.max_two_way_delay_samples() > len as f64);
    }

    #[test]
    fn on_axis_delay_is_round_trip() {
        let s = SystemSpec::paper();
        // Deepest on-axis point against centre element ≈ 2×500λ → 8000
        // samples (1000 λ at 8 samples/λ: fs/fc = 8).
        let p = Vec3::new(0.0, 0.0, s.volume.depth_max);
        let d = Vec3::ZERO;
        let n = s.two_way_delay_samples(p, d);
        assert!((n - 8000.0).abs() < 1e-9, "n = {n}");
    }

    #[test]
    fn sample_conversions_roundtrip() {
        let s = SystemSpec::paper();
        let t = 1.2345e-4;
        assert!((s.samples_to_seconds(s.seconds_to_samples(t)) - t).abs() < 1e-18);
        assert!((s.metres_to_samples(s.speed_of_sound) - s.sampling_frequency).abs() < 1e-6);
    }

    #[test]
    fn presets_are_consistent() {
        for s in [
            SystemSpec::paper(),
            SystemSpec::reduced(),
            SystemSpec::figure3(),
            SystemSpec::tiny(),
        ] {
            assert_eq!(s.elements.nx(), s.transducer.nx);
            assert_eq!(s.volume_grid.n_depth(), s.volume.n_depth);
            assert!(s.echo_buffer_len() > 0);
        }
    }

    #[test]
    fn reduced_preset_keeps_physical_extent() {
        let full = SystemSpec::paper();
        let red = SystemSpec::reduced();
        assert_eq!(full.volume.depth_max, red.volume.depth_max);
        assert_eq!(full.volume.theta_max, red.volume.theta_max);
        assert!(red.naive_table_entries() < full.naive_table_entries());
    }

    #[test]
    fn max_delay_exceeds_on_axis_delay() {
        let s = SystemSpec::paper();
        assert!(s.max_two_way_delay_samples() > 8000.0);
    }

    #[test]
    fn default_transmit_is_single_point_source() {
        let s = SystemSpec::tiny();
        assert_eq!(s.n_transmits(), 1);
        assert_eq!(s.transmits[0], TransmitModel::PointSource);
        let p = Vec3::new(1.0e-3, -2.0e-3, 30.0e-3);
        let d = Vec3::new(0.5e-3, 0.5e-3, 0.0);
        assert_eq!(
            s.two_way_delay_seconds_for(0, p, d),
            s.two_way_delay_seconds(p, d)
        );
        assert_eq!(s.transmit_weight(0, p), 1.0);
    }

    #[test]
    fn plane_wave_transmit_leg_never_exceeds_point_source_leg() {
        // |n̂·s| ≤ |s| means a CPWC frame always fits the point-source
        // echo buffer: no resizing on transmit-model change.
        let s =
            SystemSpec::tiny().with_transmits(TransmitModel::plane_wave_fan(4, crate::deg(10.0)));
        assert_eq!(s.n_transmits(), 4);
        for k in 0..4 {
            for p in [
                Vec3::new(0.01, 0.0, 0.05),
                Vec3::new(-0.02, 0.015, 0.09),
                Vec3::new(0.0, 0.0, 0.001),
            ] {
                assert!(s.transmit_distance(k, p) <= p.norm() + 1e-15);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one transmit")]
    fn empty_transmit_sequence_rejected() {
        let _ = SystemSpec::tiny().with_transmits(vec![]);
    }

    #[test]
    #[should_panic(expected = "frame rate must be positive")]
    fn invalid_frame_rate_rejected() {
        let s = SystemSpec::paper();
        SystemSpec::new(
            s.speed_of_sound,
            s.sampling_frequency,
            s.transducer,
            s.volume,
            Vec3::ZERO,
            0.0,
        );
    }
}
