//! Matrix-transducer model: a grid of elements on the z = 0 plane.

use crate::Vec3;
use std::fmt;

/// Index of one element in the transducer matrix.
///
/// `ix` runs along the azimuth (x) axis, `iy` along the elevation (y) axis;
/// both are zero-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElementIndex {
    /// Column along the x axis.
    pub ix: usize,
    /// Row along the y axis.
    pub iy: usize,
}

impl ElementIndex {
    /// Creates an element index.
    #[inline]
    pub const fn new(ix: usize, iy: usize) -> Self {
        ElementIndex { ix, iy }
    }
}

impl fmt::Display for ElementIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D[{},{}]", self.ix, self.iy)
    }
}

/// A matrix transducer: `nx × ny` vibrating elements with a fixed pitch,
/// centered on the origin of the z = 0 plane.
///
/// The paper's probe (Table I) is 100 × 100 elements at λ/2 pitch
/// (0.1925 mm), i.e. a 19.25 mm square aperture.
///
/// ```
/// use usbf_geometry::TransducerArray;
/// let probe = TransducerArray::paper();
/// assert_eq!(probe.count(), 10_000);
/// // Aperture is (n-1)·pitch corner to corner centre:
/// let corner = probe.position(usbf_geometry::ElementIndex::new(0, 0));
/// assert!(corner.x < 0.0 && corner.y < 0.0 && corner.z == 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransducerArray {
    nx: usize,
    ny: usize,
    pitch: f64,
}

impl TransducerArray {
    /// Creates an `nx × ny` array with the given element pitch in metres.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the pitch is not positive.
    pub fn new(nx: usize, ny: usize, pitch: f64) -> Self {
        assert!(
            nx > 0 && ny > 0,
            "transducer must have at least one element"
        );
        assert!(pitch > 0.0, "pitch must be positive, got {pitch}");
        TransducerArray { nx, ny, pitch }
    }

    /// The paper's 100 × 100, λ/2-pitch probe (fc = 4 MHz, c = 1540 m/s).
    pub fn paper() -> Self {
        let lambda = crate::SPEED_OF_SOUND / 4.0e6;
        TransducerArray::new(100, 100, lambda / 2.0)
    }

    /// Number of columns along x.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of rows along y.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Element pitch in metres.
    #[inline]
    pub fn pitch(&self) -> f64 {
        self.pitch
    }

    /// Total number of elements.
    #[inline]
    pub fn count(&self) -> usize {
        self.nx * self.ny
    }

    /// Physical x coordinate of column `ix` (array centered on the origin).
    #[inline]
    pub fn x_of(&self, ix: usize) -> f64 {
        (ix as f64 - (self.nx as f64 - 1.0) / 2.0) * self.pitch
    }

    /// Physical y coordinate of row `iy`.
    #[inline]
    pub fn y_of(&self, iy: usize) -> f64 {
        (iy as f64 - (self.ny as f64 - 1.0) / 2.0) * self.pitch
    }

    /// Position of element `e` on the z = 0 plane.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range (debug builds).
    #[inline]
    pub fn position(&self, e: ElementIndex) -> Vec3 {
        debug_assert!(e.ix < self.nx && e.iy < self.ny, "element {e} out of range");
        Vec3::new(self.x_of(e.ix), self.y_of(e.iy), 0.0)
    }

    /// The element nearest the array centre (exact centre for odd
    /// dimensions, lower-left of the central quad for even ones).
    #[inline]
    pub fn center_element(&self) -> ElementIndex {
        ElementIndex::new((self.nx - 1) / 2, (self.ny - 1) / 2)
    }

    /// Half-diagonal of the aperture — the largest |(x, y)| of any element;
    /// bounds the far-field parameter `(x² + y²)/r²` of Eq. 6.
    pub fn aperture_half_diagonal(&self) -> f64 {
        let hx = self.x_of(self.nx - 1).abs();
        let hy = self.y_of(self.ny - 1).abs();
        (hx * hx + hy * hy).sqrt()
    }

    /// Physical side lengths `(Lx, Ly)` of the aperture, measured between
    /// outermost element centres.
    pub fn aperture(&self) -> (f64, f64) {
        (
            (self.nx as f64 - 1.0) * self.pitch,
            (self.ny as f64 - 1.0) * self.pitch,
        )
    }

    /// Flattens an element index to a linear index in row-major
    /// (`iy`-major) order.
    #[inline]
    pub fn linear_index(&self, e: ElementIndex) -> usize {
        debug_assert!(e.ix < self.nx && e.iy < self.ny);
        e.iy * self.nx + e.ix
    }

    /// Inverse of [`TransducerArray::linear_index`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.count()`.
    #[inline]
    pub fn element_at(&self, i: usize) -> ElementIndex {
        assert!(i < self.count(), "linear element index {i} out of range");
        ElementIndex::new(i % self.nx, i / self.nx)
    }

    /// Iterates over all element indices in linear order.
    pub fn iter(&self) -> impl Iterator<Item = ElementIndex> + '_ {
        let nx = self.nx;
        (0..self.count()).map(move |i| ElementIndex::new(i % nx, i / nx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_probe_matches_table1() {
        let p = TransducerArray::paper();
        assert_eq!(p.nx(), 100);
        assert_eq!(p.ny(), 100);
        // λ/2 = 1540/4e6/2 = 0.1925 mm
        assert!((p.pitch() - 0.1925e-3).abs() < 1e-12);
        // Aperture ≈ 50λ = 19.25 mm (paper's d); between centres it is 99
        // pitches = 19.0575 mm.
        let (lx, ly) = p.aperture();
        assert!((lx - 99.0 * 0.1925e-3).abs() < 1e-12);
        assert_eq!(lx, ly);
    }

    #[test]
    fn centered_positions_are_symmetric() {
        let p = TransducerArray::new(4, 4, 1.0e-3);
        assert_eq!(p.x_of(0), -p.x_of(3));
        assert_eq!(p.y_of(1), -p.y_of(2));
        let sum: f64 = (0..4).map(|i| p.x_of(i)).sum();
        assert!(sum.abs() < 1e-18);
    }

    #[test]
    fn odd_array_has_element_at_origin() {
        let p = TransducerArray::new(5, 5, 0.2e-3);
        let c = p.position(p.center_element());
        assert_eq!(c, Vec3::ZERO);
    }

    #[test]
    fn linear_index_roundtrip() {
        let p = TransducerArray::new(7, 3, 1e-3);
        for i in 0..p.count() {
            assert_eq!(p.linear_index(p.element_at(i)), i);
        }
    }

    #[test]
    fn iter_visits_every_element_once() {
        let p = TransducerArray::new(6, 5, 1e-3);
        let v: Vec<_> = p.iter().collect();
        assert_eq!(v.len(), 30);
        let mut sorted = v.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
    }

    #[test]
    fn aperture_half_diagonal_bounds_all_elements() {
        let p = TransducerArray::new(10, 6, 0.3e-3);
        let h = p.aperture_half_diagonal();
        for e in p.iter() {
            let pos = p.position(e);
            assert!((pos.x * pos.x + pos.y * pos.y).sqrt() <= h + 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "pitch must be positive")]
    fn zero_pitch_rejected() {
        TransducerArray::new(2, 2, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn zero_dimension_rejected() {
        TransducerArray::new(0, 2, 1e-3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn element_at_out_of_range_panics() {
        TransducerArray::new(2, 2, 1e-3).element_at(4);
    }
}
