//! Element directivity: the finite acceptance cone of a probe element.
//!
//! Probe elements "have limited directivity in both emission and reception,
//! and cannot insonify points steeply off-axis" (paper §V-A). The paper uses
//! this twice:
//!
//! 1. to *prune* reference-delay-table entries whose element↔point angle
//!    exceeds the acceptance cone (Fig. 3a), and
//! 2. to argue that the worst far-field steering errors are "filtered away
//!    by apodization, since they occur at angles beyond the elements'
//!    directivity" (§VI-A).

use crate::Vec3;

/// A parametric directivity model: full sensitivity inside an acceptance
/// cone, with an optional smooth `cosⁿ` roll-off used as a receive weight.
///
/// ```
/// use usbf_geometry::{Directivity, Vec3, deg};
/// let d = Directivity::new(deg(45.0), 1.0);
/// assert!(d.accepts(Vec3::new(0.0, 0.0, 1.0), Vec3::ZERO));
/// assert!(!d.accepts(Vec3::new(1.0, 0.0, 0.01), Vec3::ZERO));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Directivity {
    cos_cutoff: f64,
    cutoff: f64,
    rolloff_exp: f64,
}

impl Directivity {
    /// Creates a directivity model with acceptance half-angle `cutoff`
    /// (radians from the element normal, i.e. from `+z`) and a `cosⁿ`
    /// weighting exponent `rolloff_exp` applied inside the cone.
    ///
    /// # Panics
    ///
    /// Panics if `cutoff` is outside `(0, π/2]` or `rolloff_exp` is
    /// negative.
    pub fn new(cutoff: f64, rolloff_exp: f64) -> Self {
        assert!(
            cutoff > 0.0 && cutoff <= std::f64::consts::FRAC_PI_2,
            "cutoff must be in (0, π/2], got {cutoff}"
        );
        assert!(rolloff_exp >= 0.0, "roll-off exponent must be non-negative");
        Directivity {
            cos_cutoff: cutoff.cos(),
            cutoff,
            rolloff_exp,
        }
    }

    /// The paper-scale default: a 45° acceptance cone with linear cosine
    /// roll-off — a standard first-order model for λ/2-pitch elements.
    pub fn paper_default() -> Self {
        Directivity::new(std::f64::consts::FRAC_PI_4, 1.0)
    }

    /// Acceptance half-angle in radians.
    #[inline]
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// Whether a focal point `s` is inside the acceptance cone of an
    /// element located at `d` (element normal assumed along `+z`).
    ///
    /// Points behind or on the transducer plane are never accepted.
    #[inline]
    pub fn accepts(&self, s: Vec3, d: Vec3) -> bool {
        let v = s - d;
        v.z > 0.0 && v.cos_from_z() >= self.cos_cutoff
    }

    /// Receive weight in `[0, 1]` for the element→point geometry: zero
    /// outside the cone, `cosⁿ(angle)` inside.
    #[inline]
    pub fn weight(&self, s: Vec3, d: Vec3) -> f64 {
        let v = s - d;
        let c = v.cos_from_z();
        if v.z <= 0.0 || c < self.cos_cutoff {
            0.0
        } else {
            c.powf(self.rolloff_exp)
        }
    }
}

impl Default for Directivity {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deg;

    #[test]
    fn on_axis_always_accepted() {
        let d = Directivity::new(deg(30.0), 2.0);
        assert!(d.accepts(Vec3::new(0.0, 0.0, 0.01), Vec3::ZERO));
        assert_eq!(d.weight(Vec3::new(0.0, 0.0, 0.01), Vec3::ZERO), 1.0);
    }

    #[test]
    fn cone_boundary() {
        let d = Directivity::new(deg(45.0), 1.0);
        // Just inside 45° off axis.
        let p = Vec3::new(0.999, 0.0, 1.0);
        assert!(d.accepts(p, Vec3::ZERO));
        // Slightly beyond.
        let q = Vec3::new(1.01, 0.0, 1.0);
        assert!(!d.accepts(q, Vec3::ZERO));
    }

    #[test]
    fn behind_plane_rejected() {
        let d = Directivity::paper_default();
        assert!(!d.accepts(Vec3::new(0.0, 0.0, -0.01), Vec3::ZERO));
        assert_eq!(d.weight(Vec3::new(0.0, 0.0, -0.01), Vec3::ZERO), 0.0);
        assert!(!d.accepts(Vec3::ZERO, Vec3::ZERO));
    }

    #[test]
    fn weight_decreases_off_axis() {
        let d = Directivity::new(deg(60.0), 1.5);
        let w0 = d.weight(Vec3::new(0.0, 0.0, 1.0), Vec3::ZERO);
        let w1 = d.weight(Vec3::new(0.3, 0.0, 1.0), Vec3::ZERO);
        let w2 = d.weight(Vec3::new(0.8, 0.0, 1.0), Vec3::ZERO);
        assert!(w0 > w1 && w1 > w2 && w2 > 0.0);
    }

    #[test]
    fn relative_to_element_position() {
        let d = Directivity::new(deg(45.0), 1.0);
        let elem = Vec3::new(0.01, 0.0, 0.0);
        // Point straight above the *element*, not the origin.
        assert!(d.accepts(Vec3::new(0.01, 0.0, 0.005), elem));
        // Point far to the side of the element at shallow depth.
        assert!(!d.accepts(Vec3::new(-0.05, 0.0, 0.001), elem));
    }

    #[test]
    fn zero_exponent_is_flat_inside_cone() {
        let d = Directivity::new(deg(45.0), 0.0);
        let w = d.weight(Vec3::new(0.5, 0.0, 1.0), Vec3::ZERO);
        assert_eq!(w, 1.0);
    }

    #[test]
    #[should_panic(expected = "cutoff must be in")]
    fn invalid_cutoff_rejected() {
        Directivity::new(0.0, 1.0);
    }
}
