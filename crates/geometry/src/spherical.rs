//! The paper's spherical steering convention (Eq. 5).

use crate::Vec3;

/// A steered line-of-sight direction, following Eq. 5 of the paper:
///
/// ```text
/// S = (r·cosφ·sinθ,  r·sinφ,  r·cosφ·cosθ)
/// ```
///
/// `θ` (azimuth) rotates the line of sight in the X–Z plane and `φ`
/// (elevation) lifts it toward the Y axis. Both are in radians. The
/// unsteered reference scanline is `θ = φ = 0`, i.e. straight down the
/// `+z` axis.
///
/// ```
/// use usbf_geometry::SphericalDirection;
/// let d = SphericalDirection::new(0.0, 0.0);
/// let p = d.point_at(0.1);
/// assert!((p.z - 0.1).abs() < 1e-15 && p.x == 0.0 && p.y == 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SphericalDirection {
    /// Azimuth steering angle θ in radians.
    pub theta: f64,
    /// Elevation steering angle φ in radians.
    pub phi: f64,
}

impl SphericalDirection {
    /// Creates a direction from azimuth `theta` and elevation `phi`
    /// (radians).
    #[inline]
    pub const fn new(theta: f64, phi: f64) -> Self {
        SphericalDirection { theta, phi }
    }

    /// The unsteered reference direction along `+z`.
    pub const REFERENCE: SphericalDirection = SphericalDirection {
        theta: 0.0,
        phi: 0.0,
    };

    /// Unit vector of this direction per Eq. 5.
    #[inline]
    pub fn unit(self) -> Vec3 {
        let (st, ct) = self.theta.sin_cos();
        let (sp, cp) = self.phi.sin_cos();
        Vec3::new(cp * st, sp, cp * ct)
    }

    /// The point at distance `r` (metres) from the origin along this
    /// direction — the focal point `S` of Eq. 5.
    #[inline]
    pub fn point_at(self, r: f64) -> Vec3 {
        self.unit() * r
    }

    /// Recovers `(θ, φ, r)` from a Cartesian point, inverting Eq. 5.
    ///
    /// Returns `None` for the origin, whose direction is undefined.
    pub fn from_point(p: Vec3) -> Option<(SphericalDirection, f64)> {
        let r = p.norm();
        if r == 0.0 {
            return None;
        }
        let phi = (p.y / r).asin();
        let theta = p.x.atan2(p.z);
        Some((SphericalDirection::new(theta, phi), r))
    }

    /// The steering-plane coefficients of Eq. 7: the per-element correction
    /// is `-(xD·a + yD·b)/c` with `a = cosφ·sinθ` and `b = sinφ`.
    #[inline]
    pub fn steering_coefficients(self) -> (f64, f64) {
        (self.phi.cos() * self.theta.sin(), self.phi.sin())
    }
}

impl Default for SphericalDirection {
    fn default() -> Self {
        Self::REFERENCE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deg;

    #[test]
    fn reference_points_down_z() {
        let u = SphericalDirection::REFERENCE.unit();
        assert_eq!(u, Vec3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn unit_has_unit_norm_everywhere() {
        for &t in &[-0.6, -0.2, 0.0, 0.3, 0.63] {
            for &p in &[-0.6, 0.0, 0.5] {
                let u = SphericalDirection::new(t, p).unit();
                assert!((u.norm() - 1.0).abs() < 1e-14, "θ={t} φ={p}");
            }
        }
    }

    #[test]
    fn eq5_components_match() {
        let theta = deg(20.0);
        let phi = deg(-15.0);
        let r = 0.08;
        let s = SphericalDirection::new(theta, phi).point_at(r);
        assert!((s.x - r * phi.cos() * theta.sin()).abs() < 1e-15);
        assert!((s.y - r * phi.sin()).abs() < 1e-15);
        assert!((s.z - r * phi.cos() * theta.cos()).abs() < 1e-15);
    }

    #[test]
    fn from_point_inverts_point_at() {
        let d = SphericalDirection::new(deg(25.0), deg(-30.0));
        let r = 0.12;
        let (d2, r2) = SphericalDirection::from_point(d.point_at(r)).unwrap();
        assert!((d2.theta - d.theta).abs() < 1e-12);
        assert!((d2.phi - d.phi).abs() < 1e-12);
        assert!((r2 - r).abs() < 1e-15);
    }

    #[test]
    fn from_point_rejects_origin() {
        assert!(SphericalDirection::from_point(Vec3::ZERO).is_none());
    }

    #[test]
    fn steering_coefficients_match_eq7() {
        let d = SphericalDirection::new(deg(30.0), deg(10.0));
        let (a, b) = d.steering_coefficients();
        assert!((a - deg(10.0).cos() * deg(30.0).sin()).abs() < 1e-15);
        assert!((b - deg(10.0).sin()).abs() < 1e-15);
    }

    #[test]
    fn steering_coefficients_zero_when_unsteered() {
        let (a, b) = SphericalDirection::REFERENCE.steering_coefficients();
        assert_eq!((a, b), (0.0, 0.0));
    }

    #[test]
    fn distance_preserved_under_steering() {
        // |S| == r for any steering: the table-steering identity requires
        // R and S to be equidistant from the origin.
        let r = 0.0925;
        for &t in &[-0.5, 0.0, 0.4] {
            for &p in &[-0.3, 0.0, 0.6] {
                let s = SphericalDirection::new(t, p).point_at(r);
                assert!((s.norm() - r).abs() < 1e-15);
            }
        }
    }
}
