//! Pluggable transmit models: point emission and steered plane waves.
//!
//! The paper's delay model (Eq. 2) assumes every transmit is a spherical
//! emission from the reference point `O`; that is [`TransmitModel::PointSource`]
//! here. Coherent plane-wave compounding (CPWC) instead fires a small set of
//! steered plane waves and coherently sums the per-transmit low-resolution
//! volumes. [`TransmitModel::PlaneWave`] models one such insonification with
//! the pixel-based transmit delay of Nguyen & Prager: the wavefront passes
//! through the array origin at `t = 0` and reaches a field point `S` after
//! travelling the signed projection `n̂ · S` onto the steering direction.
//!
//! A steered plane wave only insonifies the oblique prism swept by the
//! aperture; outside it the transmit delay is undefined and the echo is pure
//! noise. [`TransmitModel::weight`] implements the Nguyen–Prager edge-region
//! treatment: back-project the field point along the steering direction onto
//! the aperture plane and ramp the weight from 1 (inside the footprint) to 0
//! (more than one pitch outside), so compounding can blend edge pixels
//! instead of hard-clipping or poisoning the sum.

use crate::{SphericalDirection, TransducerArray, Vec3};

/// A steered plane-wave transmit: the wavefront normal follows the paper's
/// Eq. 5 steering convention and crosses the array origin at `t = 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaneWave {
    /// Steering direction of the wavefront normal.
    pub steering: SphericalDirection,
}

/// The transmit model of one insonification.
///
/// Every [`crate::SystemSpec`] carries a list of these (one per transmit of
/// a compound frame); the historical single focused/diverging emission from
/// the spec origin is the one-element `[PointSource]` default.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum TransmitModel {
    /// Spherical emission from the spec's reference point `O` — the paper's
    /// Eq. 2 transmit leg `|S − O|`.
    #[default]
    PointSource,
    /// A steered plane wave with pixel-based transmit delay `n̂ · S`.
    PlaneWave(PlaneWave),
}

impl TransmitModel {
    /// A plane wave steered by `(theta, phi)` radians.
    #[inline]
    pub const fn plane_wave(theta: f64, phi: f64) -> Self {
        TransmitModel::PlaneWave(PlaneWave {
            steering: SphericalDirection::new(theta, phi),
        })
    }

    /// An evenly spaced azimuthal fan of `n` plane waves spanning
    /// `[-half_angle, +half_angle]` radians at `φ = 0` — the standard CPWC
    /// acquisition sequence. `n == 1` yields the single unsteered wave.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn plane_wave_fan(n: usize, half_angle: f64) -> Vec<TransmitModel> {
        assert!(n > 0, "a transmit fan needs at least one angle");
        (0..n)
            .map(|i| {
                let theta = if n == 1 {
                    0.0
                } else {
                    -half_angle + 2.0 * half_angle * i as f64 / (n - 1) as f64
                };
                TransmitModel::plane_wave(theta, 0.0)
            })
            .collect()
    }

    /// One-way transmit distance (metres) from emission to field point `s`:
    /// `|s − origin|` for a point source, the signed projection `n̂ · s` for
    /// a plane wave.
    #[inline]
    pub fn distance(&self, origin: Vec3, s: Vec3) -> f64 {
        match self {
            TransmitModel::PointSource => s.distance(origin),
            TransmitModel::PlaneWave(pw) => pw.steering.unit().dot(s),
        }
    }

    /// Insonification weight of field point `s` in `[0, 1]`.
    ///
    /// Point sources illuminate the whole volume (weight 1). A plane wave
    /// illuminates the oblique prism swept by the aperture: the weight is 1
    /// where the back-projection of `s` along the steering direction lands
    /// inside the aperture footprint, ramps linearly to 0 over one element
    /// pitch outside each edge (the Nguyen–Prager interpolated edge region),
    /// and is exactly 0 beyond — so masked voxels contribute nothing to a
    /// coherent compound instead of injecting undefined delays.
    pub fn weight(&self, elements: &TransducerArray, s: Vec3) -> f64 {
        match self {
            TransmitModel::PointSource => 1.0,
            TransmitModel::PlaneWave(pw) => {
                let n = pw.steering.unit();
                if n.z <= 1e-12 {
                    return 0.0; // steered past the aperture plane
                }
                // Back-project s along n̂ onto the aperture plane z = 0.
                let t = s.z / n.z;
                let fx = s.x - t * n.x;
                let fy = s.y - t * n.y;
                let (ax, ay) = elements.aperture();
                let pitch = elements.pitch();
                let ramp = |half: f64, f: f64| ((half - f.abs()) / pitch + 1.0).clamp(0.0, 1.0);
                ramp(ax / 2.0, fx) * ramp(ay / 2.0, fy)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deg;

    fn array() -> TransducerArray {
        TransducerArray::new(8, 8, 0.2e-3)
    }

    #[test]
    fn point_source_distance_matches_eq2_leg() {
        let o = Vec3::new(0.0, 0.0, -1.0e-3);
        let s = Vec3::new(3.0e-3, 0.0, 3.0e-3);
        let d = TransmitModel::PointSource.distance(o, s);
        assert!((d - s.distance(o)).abs() < 1e-18);
    }

    #[test]
    fn unsteered_plane_wave_distance_is_depth() {
        let pw = TransmitModel::plane_wave(0.0, 0.0);
        let s = Vec3::new(5.0e-3, -2.0e-3, 40.0e-3);
        assert!((pw.distance(Vec3::ZERO, s) - s.z).abs() < 1e-18);
    }

    #[test]
    fn steered_plane_wave_distance_is_projection() {
        let theta = deg(10.0);
        let pw = TransmitModel::plane_wave(theta, 0.0);
        let s = Vec3::new(0.0, 0.0, 50.0e-3);
        // On-axis point: projection shortens by cos θ.
        assert!((pw.distance(Vec3::ZERO, s) - s.z * theta.cos()).abs() < 1e-15);
    }

    #[test]
    fn fan_is_symmetric_and_ordered() {
        let fan = TransmitModel::plane_wave_fan(5, deg(8.0));
        assert_eq!(fan.len(), 5);
        let thetas: Vec<f64> = fan
            .iter()
            .map(|m| match m {
                TransmitModel::PlaneWave(pw) => pw.steering.theta,
                TransmitModel::PointSource => unreachable!(),
            })
            .collect();
        assert!((thetas[0] + deg(8.0)).abs() < 1e-15);
        assert!((thetas[2]).abs() < 1e-15);
        assert!((thetas[4] - deg(8.0)).abs() < 1e-15);
        assert!(thetas.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn single_angle_fan_is_unsteered() {
        let fan = TransmitModel::plane_wave_fan(1, deg(15.0));
        assert_eq!(fan, vec![TransmitModel::plane_wave(0.0, 0.0)]);
    }

    #[test]
    fn point_source_weight_is_one_everywhere() {
        let a = array();
        for s in [
            Vec3::new(0.0, 0.0, 1.0e-3),
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(-0.5, 0.3, 0.01),
        ] {
            assert_eq!(TransmitModel::PointSource.weight(&a, s), 1.0);
        }
    }

    #[test]
    fn unsteered_weight_is_one_inside_footprint_zero_outside() {
        let a = array();
        let (ax, _) = a.aperture();
        let pw = TransmitModel::plane_wave(0.0, 0.0);
        // Directly under the array centre: fully insonified.
        assert_eq!(pw.weight(&a, Vec3::new(0.0, 0.0, 30.0e-3)), 1.0);
        // Far outside laterally: dark.
        assert_eq!(pw.weight(&a, Vec3::new(ax, 0.0, 30.0e-3)), 0.0);
        // Exactly on the edge: in the interpolated ramp (0 < w < 1].
        let w = pw.weight(&a, Vec3::new(ax / 2.0, 0.0, 30.0e-3));
        assert!(w > 0.0 && w <= 1.0, "edge weight {w}");
    }

    #[test]
    fn steering_tilts_the_insonified_prism() {
        let a = array();
        let theta = deg(20.0);
        let pw = TransmitModel::plane_wave(theta, 0.0);
        let depth = 50.0e-3;
        // The prism centreline at this depth sits at x = depth·tanθ.
        let centre = Vec3::new(depth * theta.tan(), 0.0, depth);
        assert_eq!(pw.weight(&a, centre), 1.0);
        // The untilted centreline has left the prism at sufficient depth.
        assert_eq!(pw.weight(&a, Vec3::new(-depth, 0.0, depth)), 0.0);
    }

    #[test]
    fn degenerate_steering_is_dark() {
        let a = array();
        let pw = TransmitModel::plane_wave(deg(90.0), 0.0);
        assert_eq!(pw.weight(&a, Vec3::new(0.0, 0.0, 10.0e-3)), 0.0);
    }
}
