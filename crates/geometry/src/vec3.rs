//! Minimal double-precision 3D vector used for all spatial math.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point or displacement in 3D space, in metres.
///
/// The paper's coordinate frame is used everywhere: the transducer lies on
/// the `z = 0` plane, `+z` points into the imaged medium, `x` spans the
/// azimuth (θ) direction and `y` the elevation (φ) direction.
///
/// ```
/// use usbf_geometry::Vec3;
/// let a = Vec3::new(3.0, 0.0, 4.0);
/// assert_eq!(a.norm(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// Azimuth-axis component (metres).
    pub x: f64,
    /// Elevation-axis component (metres).
    pub y: f64,
    /// Depth-axis component (metres).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from its three components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_squared().sqrt()
    }

    /// Squared Euclidean length; cheaper than [`Vec3::norm`] when only
    /// comparisons or later square roots are needed (the TABLEFREE datapath
    /// works on squared distances).
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Distance between two points.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Returns the vector scaled to unit length.
    ///
    /// # Panics
    ///
    /// Panics if the vector is zero (debug builds only; release returns
    /// non-finite components).
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "cannot normalize the zero vector");
        self / n
    }

    /// Cosine of the angle between `self` and the `+z` axis, i.e. the
    /// obliquity seen by a flat transducer element. Zero vector yields 0.
    #[inline]
    pub fn cos_from_z(self) -> f64 {
        let n = self.norm();
        if n == 0.0 {
            0.0
        } else {
            self.z / n
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6}, {:.6})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_of_pythagorean_triple() {
        assert_eq!(Vec3::new(3.0, 4.0, 0.0).norm(), 5.0);
        assert_eq!(Vec3::new(0.0, 3.0, 4.0).norm_squared(), 25.0);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Vec3::new(1.5, -2.0, 0.25);
        let b = Vec3::new(-0.5, 4.0, 8.0);
        assert_eq!(a + b - b, a);
    }

    #[test]
    fn scalar_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Vec3::new(0.0, 0.0, 1.0);
        let b = Vec3::new(1.0, 0.0, 0.0);
        assert!((a.distance(b) - 2f64.sqrt()).abs() < 1e-15);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn dot_orthogonal_is_zero() {
        assert_eq!(Vec3::new(1.0, 0.0, 0.0).dot(Vec3::new(0.0, 1.0, 0.0)), 0.0);
    }

    #[test]
    fn normalized_has_unit_norm() {
        let v = Vec3::new(2.0, -3.0, 6.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn cos_from_z_on_axis_is_one() {
        assert_eq!(Vec3::new(0.0, 0.0, 9.0).cos_from_z(), 1.0);
        assert_eq!(Vec3::new(1.0, 0.0, 0.0).cos_from_z(), 0.0);
        assert_eq!(Vec3::ZERO.cos_from_z(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Vec3::ZERO).is_empty());
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v, Vec3::new(2.0, 3.0, 4.0));
        v -= Vec3::new(2.0, 3.0, 4.0);
        assert_eq!(v, Vec3::ZERO);
    }
}
