//! Geometry substrate for 3D ultrasound beamforming.
//!
//! This crate models everything spatial in the DATE 2015 paper
//! *"Tackling the Bottleneck of Delay Tables in 3D Ultrasound Imaging"*:
//!
//! * [`Vec3`] — double-precision 3D points/vectors,
//! * [`SphericalDirection`] — the paper's Eq. 5 steering convention
//!   `S = (r·cosφ·sinθ, r·sinφ, r·cosφ·cosθ)`,
//! * [`TransducerArray`] — a matrix probe with λ/2 pitch on the z = 0 plane,
//! * [`ImagingVolume`] — the θ × φ × depth focal-point grid,
//! * [`scan`] — the two traversal orders of Algorithm 1 (scanline-by-scanline
//!   and nappe-by-nappe, Fig. 1),
//! * [`Directivity`] — the finite acceptance angle of probe elements used to
//!   prune delay tables (Fig. 3a) and filter steering-error outliers,
//! * [`TransmitModel`] — pluggable transmit delay models: the paper's point
//!   emission from `O`, and steered plane waves for coherent compounding,
//! * [`SystemSpec`] — Table I of the paper, plus reduced presets for
//!   compute-bound experiments.
//!
//! # Example
//!
//! ```
//! use usbf_geometry::{SystemSpec, VoxelIndex};
//!
//! let spec = SystemSpec::paper();
//! assert_eq!(spec.elements.count(), 10_000);
//! assert_eq!(spec.volume_grid.voxel_count(), 128 * 128 * 1000);
//! // Two-way propagation delay from origin to the deepest on-axis voxel.
//! let vox = VoxelIndex::new(64, 64, 999);
//! let s = spec.volume_grid.position(vox);
//! let d = spec.elements.position(spec.elements.center_element());
//! let t = spec.two_way_delay_seconds(s, d);
//! assert!(t > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod directivity;
mod spec;
mod spherical;
mod transducer;
mod transmit;
mod vec3;
mod volume;

pub mod scan;

pub use directivity::Directivity;
pub use spec::{SystemSpec, TransducerSpec, VolumeSpec};
pub use spherical::SphericalDirection;
pub use transducer::{ElementIndex, TransducerArray};
pub use transmit::{PlaneWave, TransmitModel};
pub use vec3::Vec3;
pub use volume::{ImagingVolume, VoxelIndex};

/// Speed of sound in soft tissue used throughout the paper, in m/s.
pub const SPEED_OF_SOUND: f64 = 1540.0;

/// Converts degrees to radians.
///
/// ```
/// let r = usbf_geometry::deg(180.0);
/// assert!((r - std::f64::consts::PI).abs() < 1e-12);
/// ```
#[inline]
pub fn deg(degrees: f64) -> f64 {
    degrees.to_radians()
}
