//! Preregistered job slots: frame-rate dispatch with the per-frame
//! allocations removed, and a guard-object API for keeping a run **in
//! flight** while the caller does other work.
//!
//! A [`scope`](crate::ThreadPool::scope) call allocates one
//! `Arc<JobCore>` per job and one boxed closure per spawned task. For a
//! one-shot parallel section that is noise, but a real-time volume loop
//! announces the *same* job shape thousands of times per second — the
//! per-tile boxes are the last per-frame heap traffic on the dispatch
//! path. A [`JobHandle`] removes them: the completion barrier is
//! allocated **once**, at [`ThreadPool::register`], and every run
//! re-announces it with borrowed state dispatched through a
//! monomorphized function pointer — no task boxing, no `Arc` creation,
//! no per-tile allocation of any kind.
//!
//! Two dispatch shapes share that machinery:
//!
//! * [`JobHandle::run`] — synchronous: announce, help drain, return when
//!   every task has finished (the shape `usbf_beamform::VolumeLoop`
//!   drives every frame);
//! * [`JobHandle::start`] — asynchronous: announce and return a
//!   [`PendingJob`] guard immediately, leaving the tasks to the pool's
//!   workers. The guard borrows the state slice and the shared context,
//!   so the borrow checker proves they outlive the in-flight work;
//!   [`PendingJob::wait`] joins (helping drain) and re-throws the first
//!   task panic, [`PendingJob::try_wait`] polls without blocking, and
//!   dropping the guard joins silently. This is what lets
//!   `usbf_beamform::FramePipeline::submit` kick off beamforming of
//!   frame `n` and hand control back to a caller still consuming volume
//!   `n − 1`.
//!
//! Tasks are indexed rather than enqueued: a run claims each index in
//! `0..states.len()` exactly once (one claim under the job mutex),
//! handing task `i` exclusive access to `states[i]`. That fits the fixed
//! work shape of a frame loop — one task per schedule tile, each owning
//! its warm slab — and is what lets the borrow discipline stay sound
//! without erasing one closure per task.

use crate::pool::ThreadPool;
use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// The monomorphized trampoline stored for the duration of one run:
/// `(context pointer, user fn pointer, task index, state base pointer)`.
type CallFn = fn(*const (), *const (), usize, *mut ());

/// Mutable state of the current (or most recent) run, guarded by one
/// mutex. The raw pointers are only ever dereferenced by tasks claimed
/// while `active` is true, and the run's owner ([`JobHandle::run`], or
/// the [`PendingJob`] guard for asynchronous runs) does not release its
/// borrows until every claimed task has finished — which is what makes
/// the borrowed context and state slice sound.
struct RunState {
    call: Option<CallFn>,
    /// Erased `&C` shared context of the current run.
    ctx: *const (),
    /// Erased `fn(&C, usize, &mut S)` the trampoline re-types.
    user: *const (),
    states: *mut (),
    /// Next task index to claim.
    next: usize,
    /// One past the last task index of this run.
    n_tasks: usize,
    /// Claimed but not yet finished tasks.
    in_flight: usize,
    /// True between announce and barrier completion; stale worker
    /// wake-ups observe `false` and leave immediately.
    active: bool,
}

// SAFETY: the raw pointers inside `RunState` are only dereferenced by
// tasks claimed under the mutex while `active` is true; the run's owner
// (`JobHandle::run`, or the `PendingJob` guard that `JobHandle::start`
// returns) holds the pointed-to borrows for the whole run and blocks on
// the barrier (`next == n_tasks && in_flight == 0`) before deactivating,
// so no thread can observe them dangling. The pointed-to types are
// constrained by the `start` bounds (`C: Sync`, `S: Send`).
#[allow(unsafe_code)]
unsafe impl Send for RunState {}

/// Shared core of one preregistered job: the completion barrier that is
/// allocated once and reused by every run.
pub(crate) struct RegisteredCore {
    run: Mutex<RunState>,
    complete: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Lock-free shadow of `RunState::active`, used by the steal path
    /// (`crate::arena::ClaimArena`) to skip idle jobs without touching
    /// the run mutex. A stale `true` only costs one no-op lock; a stale
    /// `false` only delays a steal until the next sweep — correctness
    /// still rests entirely on the mutex-guarded claim in `drain`.
    active_hint: AtomicBool,
}

impl RegisteredCore {
    fn new() -> Self {
        RegisteredCore {
            run: Mutex::new(RunState {
                call: None,
                ctx: std::ptr::null(),
                user: std::ptr::null(),
                states: std::ptr::null_mut(),
                next: 0,
                n_tasks: 0,
                in_flight: 0,
                active: false,
            }),
            complete: Condvar::new(),
            panic: Mutex::new(None),
            active_hint: AtomicBool::new(false),
        }
    }

    /// Cheap pre-check for the steal sweep: whether this job *might*
    /// have claimable tasks. See `active_hint`.
    pub(crate) fn maybe_claimable(&self) -> bool {
        self.active_hint.load(Ordering::Relaxed)
    }

    /// Claims and runs tasks, returning how many tasks this call
    /// executed. Workers (`owner == false`) leave as soon as no task is
    /// claimable — the job may be inactive, finished, or not yet
    /// announced again. The owner keeps waiting until every task of the
    /// current run has been claimed **and** finished.
    pub(crate) fn drain(&self, owner: bool) -> usize {
        let mut executed = 0;
        let mut run = self.run.lock().unwrap();
        loop {
            if run.active && run.next < run.n_tasks {
                let i = run.next;
                run.next += 1;
                run.in_flight += 1;
                let (call, ctx, user, states) = (
                    run.call.expect("active run has a call"),
                    run.ctx,
                    run.user,
                    run.states,
                );
                drop(run);
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| call(ctx, user, i, states)))
                {
                    let mut slot = self.panic.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
                run = self.run.lock().unwrap();
                run.in_flight -= 1;
                executed += 1;
                self.complete.notify_all();
                continue;
            }
            if !owner || (run.next >= run.n_tasks && run.in_flight == 0) {
                return executed;
            }
            run = self.complete.wait(run).unwrap();
        }
    }

    /// Whether the current run has claimed and finished every task.
    /// Meaningful only between announce and deactivation.
    fn is_complete(&self) -> bool {
        let run = self.run.lock().unwrap();
        run.next >= run.n_tasks && run.in_flight == 0
    }

    /// Ends the current run: clears the erased pointers so stale worker
    /// wake-ups can never claim into freed borrows.
    fn deactivate(&self) {
        let mut run = self.run.lock().unwrap();
        run.active = false;
        self.active_hint.store(false, Ordering::Relaxed);
        run.call = None;
        run.ctx = std::ptr::null();
        run.user = std::ptr::null();
        run.states = std::ptr::null_mut();
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().unwrap().take()
    }
}

/// A reusable, preregistered job slot on a [`ThreadPool`], created by
/// [`ThreadPool::register`].
///
/// Where [`ThreadPool::scope`] allocates a fresh job core and boxes one
/// closure per spawned task, a `JobHandle` owns its completion barrier
/// for life and dispatches every run through borrowed state — a warm
/// [`run`](JobHandle::run) or [`start`](JobHandle::start) performs
/// **zero** heap allocations beyond the pool's internal worker wake-ups
/// (which are per-worker, never per-task). This is the dispatch path
/// real-time frame loops sit on: `usbf_beamform::VolumeLoop` registers
/// one handle at construction and re-announces it every frame, and
/// `usbf_beamform::FramePipeline` starts one asynchronous run per
/// submitted frame.
///
/// ```
/// let pool = std::sync::Arc::new(usbf_par::ThreadPool::new(2));
/// let mut job = usbf_par::ThreadPool::register(&pool);
/// let mut totals = vec![0u64; 8];
/// for frame in 1..=3u64 {
///     // Borrowed closure, one task per slot: no boxing, no Arc churn.
///     job.run(&mut totals, &|i, slot: &mut u64| *slot += frame + i as u64);
/// }
/// assert_eq!(totals[0], 6);
/// assert_eq!(totals[7], 27);
/// ```
#[must_use = "a registered job does nothing until `run` or `start` is called"]
pub struct JobHandle {
    core: Arc<RegisteredCore>,
    pool: Arc<ThreadPool>,
    /// This handle's enrollment ticket in the pool's claim arena (slot
    /// index + generation), taken at `register` and returned on drop so
    /// the slot can be reused by a later registrant.
    arena_slot: usize,
    arena_generation: u64,
}

/// Monomorphized trampoline: recovers the typed context, user function
/// and state slice from the erased pointers captured for a run.
fn call_shim<S, C>(ctx: *const (), user: *const (), i: usize, states: *mut ()) {
    // SAFETY: the run's owner stores `ctx`/`states` from live borrows
    // (held by `JobHandle::run`'s stack frame or by the `PendingJob`
    // guard) and does not release them until the barrier observes every
    // claimed task finished, so both pointers are valid for the whole
    // task. Each index is claimed exactly once per run, so
    // `states.add(i)` is an exclusive `&mut S`. `user` was created by
    // casting a `fn(&C, usize, &mut S)` pointer in `start`, the only
    // writer, and this shim is monomorphized over the same `(S, C)`
    // pair, so transmuting it back recovers the original function
    // pointer (fn pointers and data pointers share a representation on
    // every platform this crate supports).
    #[allow(unsafe_code)]
    unsafe {
        let f: fn(&C, usize, &mut S) = std::mem::transmute(user);
        f(&*(ctx as *const C), i, &mut *(states as *mut S).add(i));
    }
}

impl JobHandle {
    /// Runs `f(i, &mut states[i])` for every `i` in `0..states.len()`,
    /// in parallel on the pool's workers and the calling thread, and
    /// returns once **all** tasks have finished.
    ///
    /// Each index is claimed exactly once per run, so every task has
    /// exclusive access to its state slot; `f` may borrow anything that
    /// outlives the call (per-frame inputs like an RF frame or a delay
    /// engine go here, not into the registration). Pools of ≤ 1 thread
    /// and single-task runs execute inline on the caller.
    ///
    /// If a task panics, the first panic is re-thrown here after the
    /// completion barrier, and the handle (and pool) remain fully usable
    /// for subsequent runs.
    pub fn run<S, F>(&mut self, states: &mut [S], f: &F)
    where
        S: Send,
        F: Fn(usize, &mut S) + Sync,
    {
        // Single-worker pools and single-task runs skip the announce
        // machinery entirely: the caller was going to drain its own job
        // anyway, so inline execution is the same schedule minus the
        // coordination (and minus the barrier, so panics unwind
        // directly).
        if self.pool.threads() <= 1 || states.len() <= 1 {
            for (i, state) in states.iter_mut().enumerate() {
                f(i, state);
            }
            return;
        }
        fn invoke<S, F: Fn(usize, &mut S)>(f: &F, i: usize, state: &mut S) {
            f(i, state)
        }
        self.start(states, f, invoke::<S, F>).wait();
    }

    /// Announces a run and returns immediately with a [`PendingJob`]
    /// guard, leaving the tasks to the pool's workers: `call(ctx, i,
    /// &mut states[i])` runs for every `i` in `0..states.len()` while
    /// the caller is free to do other work. Redeem the guard with
    /// [`PendingJob::wait`] (blocks, helps drain, re-throws the first
    /// task panic and hands the state slice back), poll it with
    /// [`PendingJob::try_wait`], or drop it to join silently.
    ///
    /// `ctx` is the run's shared read-only context (per-frame inputs
    /// like an RF frame or a delay engine); `call` is a plain function
    /// pointer so nothing of the run needs to be boxed or moved — the
    /// guard borrows `states` and `ctx`, which is what keeps them alive
    /// for the in-flight tasks. On a pool with no workers
    /// (`threads() == 0`) the run executes inline here and the returned
    /// guard is already complete.
    ///
    /// ```
    /// let pool = std::sync::Arc::new(usbf_par::ThreadPool::new(2));
    /// let mut job = usbf_par::ThreadPool::register(&pool);
    /// let mut slots = vec![0u64; 4];
    /// let bias = 7u64;
    /// let pending = job.start(&mut slots, &bias, |b, i, s: &mut u64| *s = b + i as u64);
    /// // ... caller-side work overlaps the in-flight tasks here ...
    /// let slots = pending.wait();
    /// assert_eq!(slots, &mut [7, 8, 9, 10]);
    /// ```
    pub fn start<'a, S, C>(
        &'a mut self,
        states: &'a mut [S],
        ctx: &'a C,
        call: fn(&C, usize, &mut S),
    ) -> PendingJob<'a, S>
    where
        S: Send,
        C: Sync,
    {
        let n = states.len();
        // No workers to hand the tasks to: run them here, now. The guard
        // comes back already complete (panics are still delivered at
        // `wait`, matching the announced path).
        if self.pool.threads() == 0 || n == 0 {
            for (i, state) in states.iter_mut().enumerate() {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| call(ctx, i, state))) {
                    let mut slot = self.core.panic.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            return PendingJob {
                core: Arc::clone(&self.core),
                announced: false,
                states: Some(states),
                _ctx: PhantomData,
            };
        }

        {
            let mut run = self.core.run.lock().unwrap();
            // A hard assert, not a debug_assert: with the guard API this
            // is unreachable through sound code (starting needs `&mut
            // self`, which the live PendingJob holds), so tripping it
            // means a guard was leaked — fail loudly rather than hand
            // two runs one RunState.
            assert!(
                !run.active,
                "a JobHandle supports one run at a time (was a PendingJob leaked?)"
            );
            run.call = Some(call_shim::<S, C>);
            run.ctx = ctx as *const C as *const ();
            run.user = call as *const ();
            run.states = states.as_mut_ptr() as *mut ();
            run.next = 0;
            run.n_tasks = n;
            run.in_flight = 0;
            run.active = true;
            self.core.active_hint.store(true, Ordering::Relaxed);
        }
        // Announce to every worker, not `min(n, threads)`: with the
        // claim arena, an awake worker whose own queue is empty steals
        // from *any* active run, so waking the whole pool lets idle
        // workers absorb this run's tasks even when a concurrent run has
        // the originally-announced workers pinned. Stale wake-ups cost
        // one empty queue check + one arena sweep.
        self.pool
            .announce_registered(&self.core, self.pool.threads());
        PendingJob {
            core: Arc::clone(&self.core),
            announced: true,
            states: Some(states),
            _ctx: PhantomData,
        }
    }

    /// The pool this job is registered on.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }
}

/// A guard over one in-flight run of a preregistered job, returned by
/// [`JobHandle::start`].
///
/// While the guard lives, the pool's workers are executing the run's
/// tasks against the borrowed state slice and context; the borrow
/// checker therefore proves those borrows outlive the work. The guard
/// **joins on every exit path**:
///
/// * [`wait`](PendingJob::wait) blocks until all tasks finish (helping
///   drain them), re-throws the first task panic, and returns the state
///   slice;
/// * [`wait_result`](PendingJob::wait_result) is the same join but hands
///   the panic payload back as a value instead of unwinding — the shape
///   runtime layers that convert panics into typed errors want;
/// * [`try_wait`](PendingJob::try_wait) polls completion without
///   blocking (panics stay queued for the eventual `wait`);
/// * dropping the guard blocks until all tasks finish and **discards**
///   any captured panic — drop-joins keep the borrows sound even when a
///   frame is abandoned, but only `wait`/`wait_result` observe failures.
///
/// Leaking the guard (e.g. [`std::mem::forget`]) is outside the
/// contract: the join in `wait`/drop is what guarantees the borrows are
/// not released while tasks still run, exactly like the pre-1.0
/// `JoinGuard` scoped-thread API this mirrors. Do not forget a
/// `PendingJob`. As defense in depth, dropping the [`JobHandle`] itself
/// joins any still-active run, and a `start` while a leaked run is
/// still active panics — owners that keep the handle declared before
/// the state it dispatches over (as `usbf_beamform::FramePipeline`
/// does) therefore stay join-before-free even on the leak path.
#[must_use = "dropping a PendingJob joins it immediately, discarding any panic; call wait()"]
pub struct PendingJob<'a, S: Send> {
    core: Arc<RegisteredCore>,
    /// Whether the run went through the announce path (false for the
    /// inline no-worker path, whose tasks already finished in `start`).
    announced: bool,
    /// The borrowed state slice, handed back by `wait`. `None` only
    /// after the join already consumed it.
    states: Option<&'a mut [S]>,
    _ctx: PhantomData<&'a ()>,
}

impl<'a, S: Send> PendingJob<'a, S> {
    /// Returns `true` once every task of the run has finished, without
    /// blocking. A `true` result means [`wait`](PendingJob::wait) will
    /// return without further blocking (it still performs the panic
    /// delivery and hands the states back).
    pub fn try_wait(&self) -> bool {
        !self.announced || self.core.is_complete()
    }

    /// Blocks until every task has finished (claiming and running
    /// remaining tasks on the calling thread, like a synchronous
    /// [`JobHandle::run`]), then hands back the panic payload — if any
    /// task panicked — together with the state slice either way.
    ///
    /// This is the non-unwinding join used by runtime layers that turn
    /// task panics into typed per-frame errors
    /// (`usbf_beamform::PipelineError::Beamform`).
    pub fn wait_result(mut self) -> (&'a mut [S], Option<Box<dyn Any + Send>>) {
        let payload = self.join();
        let states = self.states.take().expect("join leaves the states in place");
        // The drop join is a no-op now: `join` cleared `announced` and
        // drained the panic slot, so letting the guard drop normally
        // just releases its `Arc` clone.
        (states, payload)
    }

    /// Blocks until every task has finished, re-throws the first task
    /// panic if there was one, and hands the state slice back (its
    /// borrow ends with the guard, so the caller regains full access).
    pub fn wait(self) -> &'a mut [S] {
        let (states, payload) = self.wait_result();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
        states
    }

    /// The join shared by `wait_result` and `Drop`: help drain, block on
    /// the barrier, deactivate the run and collect any panic.
    fn join(&mut self) -> Option<Box<dyn Any + Send>> {
        if self.announced {
            self.core.drain(true);
            self.core.deactivate();
            self.announced = false;
        }
        self.core.take_panic()
    }
}

impl<S: Send> Drop for PendingJob<'_, S> {
    fn drop(&mut self) {
        // Dropping without `wait` still joins — the borrows this guard
        // holds must not end while tasks run — but the panic (if any) is
        // discarded: there is no caller to deliver it to, and leaving it
        // queued would mis-attribute it to the handle's next run.
        let _ = self.join();
    }
}

impl Drop for JobHandle {
    fn drop(&mut self) {
        // Defense in depth against a leaked PendingJob: if a guard was
        // forgotten while its run was active, join that run before the
        // handle goes away. Owners that declare the handle before the
        // state it dispatches over (as `usbf_beamform::FramePipeline`
        // does) are then guaranteed the workers are done before the
        // state is freed, even on the leak path.
        let active = self.core.run.lock().map(|run| run.active).unwrap_or(false);
        if active {
            self.core.drain(true);
            self.core.deactivate();
            let _ = self.core.take_panic();
        }
        // Hand the arena slot back (generation-checked, so a slot this
        // handle no longer owns is left alone). Workers mid-sweep hold a
        // `Weak` at most — retiring never races a running steal into a
        // freed core.
        self.pool
            .arena()
            .retire(self.arena_slot, self.arena_generation);
    }
}

impl ThreadPool {
    /// Registers a reusable job slot on this pool, allocating its
    /// completion barrier once. Every subsequent [`JobHandle::run`] or
    /// [`JobHandle::start`] re-announces the same slot — no per-frame
    /// `Arc`, no per-task boxing. See [`JobHandle`] for the dispatch
    /// contract.
    pub fn register(self: &Arc<Self>) -> JobHandle {
        let core = Arc::new(RegisteredCore::new());
        let (arena_slot, arena_generation) = self.arena().enroll(&core);
        JobHandle {
            core,
            pool: Arc::clone(self),
            arena_slot,
            arena_generation,
        }
    }
}
