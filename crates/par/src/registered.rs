//! Preregistered job slots: frame-rate dispatch with the per-frame
//! allocations removed.
//!
//! A [`scope`](crate::ThreadPool::scope) call allocates one
//! `Arc<JobCore>` per job and one boxed closure per spawned task. For a
//! one-shot parallel section that is noise, but a real-time volume loop
//! announces the *same* job shape thousands of times per second — the
//! per-tile boxes are the last per-frame heap traffic on the dispatch
//! path. A [`JobHandle`] removes them: the completion barrier is
//! allocated **once**, at [`ThreadPool::register`], and every
//! [`JobHandle::run`] re-announces it with a borrowed closure dispatched
//! through a monomorphized function pointer — no task boxing, no
//! `Arc` creation, no per-tile allocation of any kind.
//!
//! Tasks are indexed rather than enqueued: `run(states, &f)` claims each
//! index in `0..states.len()` exactly once (one atomic-free claim under
//! the job mutex), handing task `i` exclusive access to `states[i]`.
//! That fits the fixed work shape of a frame loop — one task per
//! schedule tile, each owning its warm slab — and is what lets the
//! borrow discipline stay sound without erasing one closure per task.

use crate::pool::ThreadPool;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// The monomorphized trampoline stored for the duration of one run:
/// `(closure, task index, state base pointer)`.
type CallFn = fn(*const (), usize, *mut ());

/// Mutable state of the current (or most recent) run, guarded by one
/// mutex. The raw pointers are only ever dereferenced by tasks claimed
/// while `active` is true, and [`JobHandle::run`] does not return until
/// every claimed task has finished — which is what makes the borrowed
/// closure and state slice sound.
struct RunState {
    call: Option<CallFn>,
    f: *const (),
    states: *mut (),
    /// Next task index to claim.
    next: usize,
    /// One past the last task index of this run.
    n_tasks: usize,
    /// Claimed but not yet finished tasks.
    in_flight: usize,
    /// True between announce and barrier completion; stale worker
    /// wake-ups observe `false` and leave immediately.
    active: bool,
}

// SAFETY: the raw pointers inside `RunState` are only dereferenced by
// tasks claimed under the mutex while `active` is true; `JobHandle::run`
// owns the pointed-to borrows and blocks until `next == n_tasks` and
// `in_flight == 0` before deactivating and returning, so no thread can
// observe them dangling. The pointed-to types are constrained by
// `JobHandle::run`'s bounds (`F: Sync`, `S: Send`).
#[allow(unsafe_code)]
unsafe impl Send for RunState {}

/// Shared core of one preregistered job: the completion barrier that is
/// allocated once and reused by every run.
pub(crate) struct RegisteredCore {
    run: Mutex<RunState>,
    complete: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl RegisteredCore {
    fn new() -> Self {
        RegisteredCore {
            run: Mutex::new(RunState {
                call: None,
                f: std::ptr::null(),
                states: std::ptr::null_mut(),
                next: 0,
                n_tasks: 0,
                in_flight: 0,
                active: false,
            }),
            complete: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    /// Claims and runs tasks. Workers (`owner == false`) leave as soon as
    /// no task is claimable — the job may be inactive, finished, or not
    /// yet announced again. The owner keeps waiting until every task of
    /// the current run has been claimed **and** finished.
    pub(crate) fn drain(&self, owner: bool) {
        let mut run = self.run.lock().unwrap();
        loop {
            if run.active && run.next < run.n_tasks {
                let i = run.next;
                run.next += 1;
                run.in_flight += 1;
                let (call, f, states) =
                    (run.call.expect("active run has a call"), run.f, run.states);
                drop(run);
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| call(f, i, states))) {
                    let mut slot = self.panic.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
                run = self.run.lock().unwrap();
                run.in_flight -= 1;
                self.complete.notify_all();
                continue;
            }
            if !owner || (run.next >= run.n_tasks && run.in_flight == 0) {
                return;
            }
            run = self.complete.wait(run).unwrap();
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().unwrap().take()
    }
}

/// A reusable, preregistered job slot on a [`ThreadPool`], created by
/// [`ThreadPool::register`].
///
/// Where [`ThreadPool::scope`] allocates a fresh job core and boxes one
/// closure per spawned task, a `JobHandle` owns its completion barrier
/// for life and dispatches every run through a borrowed closure — a warm
/// [`run`](JobHandle::run) performs **zero** heap allocations beyond the
/// pool's internal worker wake-ups (which are per-worker, never
/// per-task). This is the dispatch path real-time frame loops sit on:
/// `usbf_beamform::VolumeLoop` registers one handle at construction and
/// re-announces it every frame.
///
/// ```
/// let pool = std::sync::Arc::new(usbf_par::ThreadPool::new(2));
/// let mut job = usbf_par::ThreadPool::register(&pool);
/// let mut totals = vec![0u64; 8];
/// for frame in 1..=3u64 {
///     // Borrowed closure, one task per slot: no boxing, no Arc churn.
///     job.run(&mut totals, &|i, slot: &mut u64| *slot += frame + i as u64);
/// }
/// assert_eq!(totals[0], 6);
/// assert_eq!(totals[7], 27);
/// ```
#[must_use = "a registered job does nothing until `run` is called"]
pub struct JobHandle {
    core: Arc<RegisteredCore>,
    pool: Arc<ThreadPool>,
}

impl JobHandle {
    /// Runs `f(i, &mut states[i])` for every `i` in `0..states.len()`,
    /// in parallel on the pool's workers and the calling thread, and
    /// returns once **all** tasks have finished.
    ///
    /// Each index is claimed exactly once per run, so every task has
    /// exclusive access to its state slot; `f` may borrow anything that
    /// outlives the call (per-frame inputs like an RF frame or a delay
    /// engine go here, not into the registration). Pools of ≤ 1 thread
    /// and single-task runs execute inline on the caller.
    ///
    /// If a task panics, the first panic is re-thrown here after the
    /// completion barrier, and the handle (and pool) remain fully usable
    /// for subsequent runs.
    pub fn run<S, F>(&mut self, states: &mut [S], f: &F)
    where
        S: Send,
        F: Fn(usize, &mut S) + Sync,
    {
        let n = states.len();
        if n == 0 {
            return;
        }
        if self.pool.threads() <= 1 || n == 1 {
            for (i, state) in states.iter_mut().enumerate() {
                f(i, state);
            }
            return;
        }

        /// Monomorphized trampoline: recovers the typed closure and state
        /// slice from the erased pointers captured for this run.
        fn call_shim<S, F: Fn(usize, &mut S)>(f: *const (), i: usize, states: *mut ()) {
            // SAFETY: `run` stores `f` and `states` from live borrows and
            // blocks on the barrier until every claimed task finishes, so
            // both pointers are valid for the whole task. Each index is
            // claimed exactly once per run, so `states.add(i)` is an
            // exclusive `&mut S`.
            #[allow(unsafe_code)]
            unsafe {
                (*(f as *const F))(i, &mut *(states as *mut S).add(i));
            }
        }

        {
            let mut run = self.core.run.lock().unwrap();
            debug_assert!(!run.active, "JobHandle::run is not reentrant");
            run.call = Some(call_shim::<S, F>);
            run.f = f as *const F as *const ();
            run.states = states.as_mut_ptr() as *mut ();
            run.next = 0;
            run.n_tasks = n;
            run.in_flight = 0;
            run.active = true;
        }
        self.pool
            .announce_registered(&self.core, n.min(self.pool.threads()));
        self.core.drain(true);
        {
            let mut run = self.core.run.lock().unwrap();
            run.active = false;
            run.call = None;
            run.f = std::ptr::null();
            run.states = std::ptr::null_mut();
        }
        if let Some(payload) = self.core.take_panic() {
            resume_unwind(payload);
        }
    }

    /// The pool this job is registered on.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }
}

impl ThreadPool {
    /// Registers a reusable job slot on this pool, allocating its
    /// completion barrier once. Every subsequent [`JobHandle::run`]
    /// re-announces the same slot — no per-frame `Arc`, no per-task
    /// boxing. See [`JobHandle`] for the dispatch contract.
    pub fn register(self: &Arc<Self>) -> JobHandle {
        JobHandle {
            core: Arc::new(RegisteredCore::new()),
            pool: Arc::clone(self),
        }
    }
}
