//! Persistent worker-pool runtime for the workspace's data parallelism.
//!
//! The build environment has no registry access, so this crate provides
//! the small rayon-style API subset the workspace needs — now backed by a
//! **persistent [`ThreadPool`]** instead of per-call scoped threads. The
//! paper's streaming architecture beamforms thousands of volumes per
//! second; spawning a thread per tile per volume is exactly the kind of
//! per-frame cost it amortizes away, so workers here are created once,
//! parked on preallocated per-worker queues, and handed jobs by
//! reference.
//!
//! Four layers:
//!
//! * [`ThreadPool`] — the pool itself: `new(threads)` or the process-wide
//!   [`global`] instance (sized from `USBF_POOL_THREADS` or the available
//!   parallelism);
//! * [`ThreadPool::scope`] / [`PoolScope::spawn`] — structured borrowed
//!   tasks, shaped like [`std::thread::scope`] but executed by the pool;
//! * [`ThreadPool::register`] / [`JobHandle::run`] /
//!   [`JobHandle::start`] — preregistered job slots for frame loops: the
//!   completion barrier is allocated once and re-announced per frame,
//!   with borrowed state dispatched through a function pointer, so a
//!   warm run performs **zero per-task heap allocations** (no `Arc`
//!   churn, no task boxing). `start` returns a [`PendingJob`] guard that
//!   keeps the run in flight while the caller does other work —
//!   `wait()`/`try_wait()` redeem it, dropping it joins;
//! * [`par_map`] / [`par_map_indexed`] / [`par_for_each_index`] — the
//!   drop-in parallel maps every call site already uses, with dynamic
//!   work claiming so stragglers don't serialize the pool.
//!
//! The calling thread always participates in its own job, which makes
//! nested `scope`/`par_map` calls from inside tasks deadlock-free: the
//! inner job is drained by its own caller even when every worker is busy.
//!
//! ```
//! let squares = usbf_par::par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod job;
mod pool;
mod registered;
mod scope;

pub use pool::{global, global_arc, ThreadPool};
pub use registered::{JobHandle, PendingJob};
pub use scope::PoolScope;

/// The pool's default sizing: `USBF_POOL_THREADS` when set to a positive
/// integer, the host's available parallelism otherwise. This is the size
/// [`global`] is built with, exposed so schedule planners (e.g. tile
/// fitting) can agree with the pool instead of re-deriving a core count
/// that ignores the override. A pure query — it does not build the
/// global pool.
pub fn default_threads() -> usize {
    ThreadPool::default_threads()
}

/// Number of claimants [`par_map`] would use for `n_items` of work: the
/// default pool size ([`default_threads`]), capped by the item count
/// (never zero). A pure query — it does not build the global pool.
pub fn thread_count(n_items: usize) -> usize {
    default_threads().min(n_items).max(1)
}

/// Maps `f` over `items` on the global pool, returning the results in
/// input order. `f` receives `(index, &item)`.
///
/// Items are claimed dynamically (one atomic fetch-add per item), so
/// stragglers don't serialize the pool. Panics in `f` propagate. This is
/// the historical entry point and is identical to [`par_map_indexed`];
/// no threads are spawned by the call — the persistent workers of
/// [`global`] do the work.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    global().par_map_indexed(items, f)
}

/// Explicitly named alias of [`par_map`]: maps `(index, &item) → R` over
/// the global pool, preserving input order.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    global().par_map_indexed(items, f)
}

/// Runs `f` for every index in `0..n`, in parallel on the global pool,
/// discarding results.
pub fn par_for_each_index<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map(&indices, |_, &i| f(i));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = par_map(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let out = par_map(&[41u32], |_, &x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn for_each_visits_every_index_once() {
        let sum = AtomicU64::new(0);
        par_for_each_index(100, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn thread_count_is_capped_by_items() {
        assert_eq!(thread_count(0), 1);
        assert_eq!(thread_count(1), 1);
        assert!(thread_count(1_000_000) >= 1);
    }

    #[test]
    fn indexed_alias_matches_par_map() {
        let items: Vec<u32> = (0..32).collect();
        assert_eq!(
            par_map(&items, |i, &x| x as usize + i),
            par_map_indexed(&items, |i, &x| x as usize + i)
        );
    }

    #[test]
    fn global_pool_is_built_once() {
        let a = global() as *const ThreadPool;
        let b = global() as *const ThreadPool;
        assert_eq!(a, b);
        assert_eq!(global_arc().threads(), global().threads());
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        // Enough items that a parallel path is taken on any machine.
        let items: Vec<usize> = (0..64).collect();
        par_map(&items, |_, &x| {
            if x == 13 {
                panic!("boom");
            }
            x
        });
    }
}
