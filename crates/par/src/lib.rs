//! Minimal data-parallelism layer over `std::thread::scope`.
//!
//! The build environment has no registry access, so this crate provides
//! the small rayon-style API subset the workspace needs — a parallel
//! indexed map with dynamic work claiming — implemented with scoped
//! threads and one atomic counter. Workers race to claim the next item,
//! so uneven per-item costs (e.g. schedule tiles of different sizes)
//! still balance.
//!
//! ```
//! let squares = usbf_par::par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use for `n_items` of work: the machine's
/// available parallelism, capped by the item count (never zero).
pub fn thread_count(n_items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(n_items).max(1)
}

/// Maps `f` over `items` on [`thread_count`] scoped threads, returning the
/// results in input order. `f` receives `(index, &item)`.
///
/// Items are claimed dynamically (one atomic fetch-add per item), so
/// stragglers don't serialize the pool. Panics in `f` propagate.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = thread_count(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut chunks: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for chunk in chunks.drain(..) {
        for (i, r) in chunk {
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every index claimed exactly once"))
        .collect()
}

/// Runs `f` for every index in `0..n`, in parallel, discarding results.
pub fn par_for_each_index<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map(&indices, |_, &i| f(i));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = par_map(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let out = par_map(&[41u32], |_, &x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn for_each_visits_every_index_once() {
        let sum = AtomicU64::new(0);
        par_for_each_index(100, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn thread_count_is_capped_by_items() {
        assert_eq!(thread_count(0), 1);
        assert_eq!(thread_count(1), 1);
        assert!(thread_count(1_000_000) >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        // Enough items that the parallel path is taken on any machine.
        let items: Vec<usize> = (0..64).collect();
        par_map(&items, |_, &x| {
            if x == 13 {
                panic!("boom");
            }
            x
        });
    }
}
