//! The persistent worker pool.

use crate::arena::ClaimArena;
use crate::job::JobCore;
use crate::registered::RegisteredCore;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// What a worker queue carries: either a one-shot scoped job (its core
/// allocated by the announcing `scope` call) or a preregistered job slot
/// (its core allocated once, at `ThreadPool::register`). Announcing
/// either kind only clones an `Arc` — the distinction is who paid for
/// the allocation, and when.
pub(crate) enum WorkItem {
    Scoped(Arc<JobCore>),
    Registered(Arc<RegisteredCore>),
}

/// How many announcements a worker queue can hold before its ring
/// buffer grows. Queues drain continuously (an announcement is an
/// `Arc` clone, consumed as soon as the worker wakes), so this is
/// burst headroom, not a throughput limit; any growth is retained, so
/// warm frames never re-allocate. Sized for the elastic sharded
/// runtime's worst burst: every live shard of a 64-shard fleet
/// announcing to every queue in one round.
const QUEUE_CAPACITY: usize = 256;

/// One worker's announcement queue: a preallocated ring plus a parking
/// condvar. This deliberately replaces `std::sync::mpsc` — channel
/// sends allocate a fresh block every ~32 messages, which is exactly
/// the kind of steady per-frame heap traffic the warm real-time path
/// must not have (see `tests/warm_frame_allocs.rs`, which asserts **0**
/// allocations across warm frames, announcements included).
struct WorkQueue {
    state: Mutex<QueueState>,
    available: Condvar,
}

struct QueueState {
    items: VecDeque<WorkItem>,
    /// Set when the pool drops: the worker exits once the queue drains.
    closed: bool,
}

impl WorkQueue {
    fn new() -> Self {
        WorkQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(QUEUE_CAPACITY),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues an announcement and wakes the worker. Announcements to
    /// a closed (dropping) pool are discarded — the announcing owner
    /// always drains its own job, so tasks are never lost.
    fn push(&self, item: WorkItem) {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return;
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
    }

    /// Closes the queue and wakes the worker so it can exit.
    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.available.notify_all();
    }

    /// Blocks until an announcement arrives (`Some`) or the queue is
    /// closed and empty (`None`).
    fn pop(&self) -> Option<WorkItem> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).unwrap();
        }
    }

    /// Non-blocking pop, used by the worker loop to interleave queue
    /// drains with arena steal sweeps without parking.
    fn try_pop(&self) -> Popped {
        let mut state = self.state.lock().unwrap();
        match state.items.pop_front() {
            Some(item) => Popped::Item(item),
            None if state.closed => Popped::Closed,
            None => Popped::Empty,
        }
    }
}

/// Result of a non-blocking [`WorkQueue::try_pop`].
enum Popped {
    Item(WorkItem),
    Empty,
    Closed,
}

/// A pool of persistent worker threads with a per-worker job injector.
///
/// Workers are spawned **once**, at construction, and parked on their own
/// preallocated work queue; every [`scope`](ThreadPool::scope) /
/// [`par_map_indexed`](ThreadPool::par_map_indexed) call announces its job
/// to the per-worker queues instead of spawning threads, which is what
/// removes the per-frame thread-creation cost from real-time volume loops
/// (see `usbf_beamform::VolumeLoop`). The calling thread always
/// participates in its own job, so a pool is deadlock-free even when all
/// workers are busy — nested `scope`/`par_map` calls from inside tasks
/// simply run on the threads already committed to them.
///
/// ```
/// let pool = usbf_par::ThreadPool::new(2);
/// let squares = pool.par_map_indexed(&[1u64, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// // The same two workers serve every subsequent call.
/// let sums = pool.par_map_indexed(&[1u64, 2], |i, &x| x + i as u64);
/// assert_eq!(sums, vec![1, 3]);
/// ```
pub struct ThreadPool {
    queues: Vec<Arc<WorkQueue>>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
    next_announce: AtomicUsize,
    /// Registry of enrolled preregistered jobs that idle workers steal
    /// tasks from — see `crate::arena`.
    arena: Arc<ClaimArena>,
}

impl ThreadPool {
    /// Builds a pool with exactly `threads` persistent workers.
    ///
    /// A pool of 0 or 1 threads is valid: `par_map` and `scope` tasks
    /// then run inline on the caller (matching the old spawn-per-call
    /// behaviour on single-core hosts), with no queueing or
    /// coordination cost.
    ///
    /// The constructor blocks until every worker is actually **running**,
    /// not merely spawned: a freshly created OS thread performs lazy
    /// startup work (signal-stack handler, thread-info strings) with a
    /// few heap allocations on its *own* first schedule, which — on a
    /// loaded host where a parked worker may not run for seconds — would
    /// otherwise leak into the first warm frames that happen to wake it.
    /// The startup barrier pins those allocations to construction, where
    /// all other pool allocation already lives, keeping the warm-frame
    /// zero-allocation guarantee (`tests/warm_frame_allocs.rs`)
    /// scheduler-independent.
    pub fn new(threads: usize) -> Self {
        let mut queues = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        let started = Arc::new(std::sync::Barrier::new(threads + 1));
        let arena = Arc::new(ClaimArena::new());
        for i in 0..threads {
            let queue = Arc::new(WorkQueue::new());
            let worker_queue = Arc::clone(&queue);
            let worker_arena = Arc::clone(&arena);
            let worker_started = Arc::clone(&started);
            let handle = std::thread::Builder::new()
                .name(format!("usbf-par-{i}"))
                .spawn(move || {
                    worker_started.wait();
                    worker_loop(&worker_queue, &worker_arena)
                })
                .expect("spawn pool worker");
            queues.push(queue);
            handles.push(handle);
        }
        started.wait();
        ThreadPool {
            queues,
            handles,
            threads,
            next_announce: AtomicUsize::new(0),
            arena,
        }
    }

    /// Builds a pool sized like [`default_threads`](Self::default_threads).
    pub fn with_default_size() -> Self {
        Self::new(Self::default_threads())
    }

    /// The default worker count: the `USBF_POOL_THREADS` environment
    /// variable if set and positive, otherwise the machine's available
    /// parallelism.
    pub fn default_threads() -> usize {
        if let Some(n) = std::env::var("USBF_POOL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// Number of persistent workers (not counting callers, which also
    /// run tasks of their own jobs).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Lifetime count of tasks executed through the work-stealing path
    /// (an idle worker claiming a task of a job announced elsewhere).
    /// Monotonic; purely telemetry — useful for asserting that stealing
    /// actually engages under heterogeneous shard load.
    pub fn steal_count(&self) -> u64 {
        self.arena.stolen()
    }

    /// The pool's claim arena (enroll/retire happens in
    /// `ThreadPool::register` / `JobHandle::drop`).
    pub(crate) fn arena(&self) -> &ClaimArena {
        &self.arena
    }

    /// Announces a job to one worker queue, round-robin: every spawn
    /// pokes a worker, so a burst of spawns reaches every worker without
    /// waking the whole pool per task. Workers that are busy see the
    /// announcement after finishing their current job; stale
    /// announcements for completed jobs cost one empty queue check.
    pub(crate) fn announce(&self, job: &Arc<JobCore>) {
        if self.queues.is_empty() {
            return;
        }
        let i = self.next_announce.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        // Announcing to a dropping pool is a no-op; the announcing scope
        // still drains its own queue, so tasks are never lost.
        self.queues[i].push(WorkItem::Scoped(Arc::clone(job)));
    }

    /// Announces a preregistered job to `count` distinct worker queues,
    /// round-robin. One announcement per *worker*, never per task: the
    /// job's tasks are claimed by index from the shared core, so waking
    /// `min(threads, tasks)` workers is all the fan-out a run needs.
    pub(crate) fn announce_registered(&self, core: &Arc<RegisteredCore>, count: usize) {
        if self.queues.is_empty() {
            return;
        }
        let n = count.min(self.queues.len());
        let start = self.next_announce.fetch_add(n, Ordering::Relaxed);
        for k in 0..n {
            let i = (start + k) % self.queues.len();
            // As with scoped jobs, announcing mid-drop is a no-op; the
            // run's owner drains its own job regardless.
            self.queues[i].push(WorkItem::Registered(Arc::clone(core)));
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close every queue so workers fall out of `pop`, then join.
        for queue in &self.queues {
            queue.close();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(queue: &WorkQueue, arena: &ClaimArena) {
    // Drain the own queue first (announcements carry fresh work and the
    // wake-up), then steal from any enrolled job with claimable tasks,
    // and only park when both come up empty. The blocking `pop` is the
    // park point; a new announcement to *this* queue is what wakes the
    // worker, and `JobHandle::start` announces every run to every
    // queue, so no run can pend while a worker sleeps.
    loop {
        match queue.try_pop() {
            Popped::Item(WorkItem::Scoped(job)) => {
                job.drain(false);
                continue;
            }
            Popped::Item(WorkItem::Registered(core)) => {
                core.drain(false);
                continue;
            }
            Popped::Closed => return,
            Popped::Empty => {}
        }
        if arena.steal() {
            continue;
        }
        match queue.pop() {
            Some(WorkItem::Scoped(job)) => {
                job.drain(false);
            }
            Some(WorkItem::Registered(core)) => {
                core.drain(false);
            }
            None => return,
        }
    }
}

static GLOBAL: OnceLock<Arc<ThreadPool>> = OnceLock::new();

fn global_cell() -> &'static Arc<ThreadPool> {
    GLOBAL.get_or_init(|| Arc::new(ThreadPool::with_default_size()))
}

/// The process-wide shared pool, built on first use and sized by
/// [`ThreadPool::default_threads`]. All free functions
/// ([`par_map`](crate::par_map) and friends) run on it.
pub fn global() -> &'static ThreadPool {
    global_cell()
}

/// The global pool as a cloneable handle, for owners that want to store
/// it (e.g. `usbf_beamform::VolumeLoop`).
pub fn global_arc() -> Arc<ThreadPool> {
    Arc::clone(global_cell())
}
