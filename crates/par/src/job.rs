//! The unit a pool executes: a queue of tasks plus a completion latch.
//!
//! Every [`scope`](crate::ThreadPool::scope) (and therefore every
//! [`par_map`](crate::par_map)) creates one [`JobCore`]: a mutex-guarded
//! task queue, a count of spawned-but-unfinished tasks and a condition
//! variable the scope owner parks on. Workers drain the queue
//! opportunistically and leave when it runs dry; the owner additionally
//! waits until every in-flight task (and any task those tasks spawned)
//! has finished, which is the property that makes lifetime-erased
//! borrowed tasks sound.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

/// A lifetime-erased task. The erasure happens in
/// [`PoolScope::spawn`](crate::PoolScope::spawn); the scope owner's
/// [`JobCore::drain`] barrier restores the borrow discipline.
pub(crate) type Task = Box<dyn FnOnce() + Send + 'static>;

/// Queue state guarded by one mutex: simple to reason about, and the
/// tasks this pool carries are coarse (schedule tiles, claim loops), so
/// per-task locking is noise.
struct State {
    queue: VecDeque<Task>,
    /// Tasks pushed but not yet finished (queued or executing).
    pending: usize,
    /// Set once the scope's user closure has returned: no more tasks can
    /// arrive except from still-running tasks, which `pending` tracks.
    closed: bool,
}

/// Shared core of one scope's worth of work.
pub(crate) struct JobCore {
    state: Mutex<State>,
    complete: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl JobCore {
    pub(crate) fn new() -> Self {
        JobCore {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                pending: 0,
                closed: false,
            }),
            complete: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    /// Enqueues a task and wakes anyone parked on the latch (the owner
    /// drains newly spawned work itself if every worker is busy).
    pub(crate) fn push(&self, task: Task) {
        let mut state = self.state.lock().unwrap();
        state.pending += 1;
        state.queue.push_back(task);
        drop(state);
        self.complete.notify_all();
    }

    /// Marks the user closure as returned; completion is now
    /// `pending == 0`.
    pub(crate) fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.complete.notify_all();
    }

    /// Runs queued tasks. Workers (`owner == false`) return as soon as
    /// the queue is empty — they must stay available for other jobs. The
    /// scope owner keeps waiting until the job is complete: queue empty,
    /// closed, and no task still executing anywhere.
    pub(crate) fn drain(&self, owner: bool) {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(task) = state.queue.pop_front() {
                drop(state);
                self.run_one(task);
                state = self.state.lock().unwrap();
                continue;
            }
            if !owner || (state.closed && state.pending == 0) {
                return;
            }
            state = self.complete.wait(state).unwrap();
        }
    }

    /// Executes one task, capturing the first panic for the owner to
    /// re-throw after the barrier.
    fn run_one(&self, task: Task) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
            let mut slot = self.panic.lock().unwrap();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        self.state.lock().unwrap().pending -= 1;
        self.complete.notify_all();
    }

    /// The first panic payload raised by any task, if one panicked.
    pub(crate) fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().unwrap().take()
    }
}
