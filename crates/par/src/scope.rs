//! Structured task scopes over the persistent pool, and the parallel
//! maps built on them.

use crate::job::{JobCore, Task};
use crate::pool::ThreadPool;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A scope handle for spawning borrowed tasks onto a [`ThreadPool`],
/// shaped like [`std::thread::Scope`]: tasks may borrow anything that
/// outlives the `scope` call, and the call does not return until every
/// spawned task has finished. Tasks may themselves spawn further tasks
/// onto the same scope.
pub struct PoolScope<'scope, 'env: 'scope> {
    job: Arc<JobCore>,
    pool: &'scope ThreadPool,
    /// Invariance over 'scope, exactly like `std::thread::Scope`.
    scope: PhantomData<&'scope mut &'scope ()>,
    env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> PoolScope<'scope, 'env> {
    /// Queues `f` for execution by the pool (or by the scope owner, who
    /// always helps drain its own scope). Panics in tasks are captured
    /// and re-thrown by the enclosing [`ThreadPool::scope`] call after
    /// all other tasks finish.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        // Pools of ≤ 1 thread run the task inline, right here: no box,
        // no queue, no condvar — single-core hosts pay no coordination
        // cost. (A panic then unwinds through the scope closure and is
        // re-thrown by `scope` exactly like a captured task panic.)
        if self.pool.threads() <= 1 {
            f();
            return;
        }
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: `ThreadPool::scope` does not return (or unwind) before
        // `JobCore::drain(true)` observes `pending == 0`, i.e. before
        // every pushed task has run to completion; a task therefore never
        // outlives the `'scope` borrows it captures. Each box is popped
        // and consumed by exactly one drain loop, so the erased closure
        // runs at most once.
        #[allow(unsafe_code)]
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(task)
        };
        self.job.push(task);
        self.pool.announce(&self.job);
    }
}

impl ThreadPool {
    /// Runs `f` with a [`PoolScope`] on which borrowed tasks can be
    /// spawned; returns once the closure **and every spawned task** have
    /// finished, executing tasks on the persistent workers and on the
    /// calling thread (never on freshly spawned threads).
    ///
    /// If a task panics, the first panic is re-thrown here after the
    /// barrier; if `f` itself panics, its panic takes precedence — the
    /// same discipline as [`std::thread::scope`].
    ///
    /// ```
    /// use std::sync::atomic::{AtomicU64, Ordering};
    /// let pool = usbf_par::ThreadPool::new(2);
    /// let sum = AtomicU64::new(0);
    /// pool.scope(|s| {
    ///     for i in 0..8u64 {
    ///         let sum = &sum;
    ///         s.spawn(move || {
    ///             sum.fetch_add(i, Ordering::Relaxed);
    ///         });
    ///     }
    /// });
    /// assert_eq!(sum.load(Ordering::Relaxed), 28);
    /// ```
    pub fn scope<'env, F, T>(&'env self, f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope PoolScope<'scope, 'env>) -> T,
    {
        let scope = PoolScope {
            job: Arc::new(JobCore::new()),
            pool: self,
            scope: PhantomData,
            env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // The barrier runs even when `f` panicked: tasks it already
        // spawned must finish before their borrows go away.
        scope.job.close();
        scope.job.drain(true);
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                if let Some(payload) = scope.job.take_panic() {
                    resume_unwind(payload);
                }
                value
            }
        }
    }

    /// Maps `f` over `items` on the pool's workers, returning results in
    /// input order; `f` receives `(index, &item)`.
    ///
    /// Work is claimed dynamically (one atomic fetch-add per item) by
    /// `min(threads, items)` claim loops plus the calling thread, so
    /// uneven per-item costs still balance and the call completes even
    /// when every worker is busy with other jobs. Single-item inputs and
    /// pools of ≤ 1 thread run inline on the caller. Panics in `f`
    /// propagate to the caller.
    pub fn par_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if self.threads() <= 1 || n <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
        let f = &f;
        self.scope(|s| {
            for _ in 0..self.threads().min(n) {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    if !local.is_empty() {
                        collected.lock().unwrap().extend(local);
                    }
                });
            }
        });
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in collected.into_inner().unwrap() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|r| r.expect("every index claimed exactly once"))
            .collect()
    }
}
