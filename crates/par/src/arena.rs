//! The claim arena: a generation-tagged registry of the pool's
//! preregistered job slots, giving idle workers something to **steal**.
//!
//! Every [`JobHandle`](crate::JobHandle) is enrolled here for its whole
//! lifetime; each of its runs keeps its own claim cursor (the
//! `RunState::next` index inside the job's `RegisteredCore`). The arena
//! is the shared view over those per-shard cursors: a worker whose own
//! announcement queue runs dry walks the arena and drains any enrolled
//! run that still has unclaimed tasks, instead of parking while another
//! shard's tiles wait for a busy worker.
//!
//! Why this matters for the sharded runtime: announcements are delivered
//! round-robin to per-worker queues, so without stealing the set of
//! workers that can touch a run is fixed at announce time. One shard
//! with slow tiles can then pin exactly the workers that were also
//! announced a sibling's frame — the sibling's tiles sit unclaimed while
//! other workers idle. With the arena, *any* awake worker claims them.
//!
//! Soundness mirrors the announce path: stealing only ever calls
//! [`RegisteredCore::drain`] with `owner == false`, which claims task
//! indices under the run's own mutex — the same exactly-once claim the
//! announced workers and the owning guard use. Slots are
//! generation-tagged so a retired handle's slot can be reused without a
//! stale retire clearing the newcomer: `retire(slot, generation)` is a
//! no-op unless the generation still matches. The arena holds `Weak`
//! references, so it never extends a core's lifetime; an un-upgradable
//! slot is simply skipped.

use crate::registered::RegisteredCore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// One enrolled job slot: the generation tag plus a weak handle on the
/// job's shared core. `core == None` marks a free (reusable) slot.
struct ArenaSlot {
    generation: u64,
    core: Option<Weak<RegisteredCore>>,
}

/// The pool-wide registry of enrolled preregistered jobs. See the module
/// docs for the stealing contract.
pub(crate) struct ClaimArena {
    slots: Mutex<Vec<ArenaSlot>>,
    /// Tasks executed via the steal path (telemetry, monotonic).
    stolen: AtomicU64,
}

impl ClaimArena {
    pub(crate) fn new() -> Self {
        ClaimArena {
            slots: Mutex::new(Vec::new()),
            stolen: AtomicU64::new(0),
        }
    }

    /// Enrolls a job core, returning its `(slot, generation)` ticket.
    /// Allocation (a possible `Vec` grow) happens here — at
    /// `ThreadPool::register` time — never on the warm steal path.
    pub(crate) fn enroll(&self, core: &Arc<RegisteredCore>) -> (usize, u64) {
        let mut slots = self.slots.lock().unwrap();
        if let Some(i) = slots.iter().position(|s| s.core.is_none()) {
            slots[i].generation += 1;
            slots[i].core = Some(Arc::downgrade(core));
            return (i, slots[i].generation);
        }
        slots.push(ArenaSlot {
            generation: 0,
            core: Some(Arc::downgrade(core)),
        });
        (slots.len() - 1, 0)
    }

    /// Retires an enrollment. A stale ticket (the slot was already
    /// reused by a later enrollee) is a no-op — the generation tag is
    /// what makes shard-slot reuse safe under detach/attach churn.
    pub(crate) fn retire(&self, slot: usize, generation: u64) {
        let mut slots = self.slots.lock().unwrap();
        if let Some(s) = slots.get_mut(slot) {
            if s.generation == generation {
                s.core = None;
            }
        }
    }

    /// One steal sweep: drains every enrolled core that currently has
    /// claimable tasks, returning `true` if at least one task was
    /// actually executed here. The slots mutex is never held while a
    /// task runs — each iteration takes the lock only long enough to
    /// upgrade one weak handle.
    pub(crate) fn steal(&self) -> bool {
        let mut executed = 0u64;
        let mut i = 0;
        loop {
            let core = {
                let slots = self.slots.lock().unwrap();
                let Some(slot) = slots.get(i) else { break };
                slot.core.as_ref().and_then(Weak::upgrade)
            };
            if let Some(core) = core {
                if core.maybe_claimable() {
                    executed += core.drain(false) as u64;
                }
            }
            i += 1;
        }
        if executed > 0 {
            self.stolen.fetch_add(executed, Ordering::Relaxed);
        }
        executed > 0
    }

    /// Lifetime count of tasks executed via the steal path.
    pub(crate) fn stolen(&self) -> u64 {
        self.stolen.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use crate::ThreadPool;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Barrier};

    /// Deterministic steal: pin both workers inside one job's tasks,
    /// start a second job whose announcements therefore sit unconsumed,
    /// and run a steal sweep from the test thread — it must claim and
    /// execute every one of the second job's tasks exactly once.
    #[test]
    fn steal_sweep_executes_unclaimed_tasks_exactly_once() {
        let pool = Arc::new(ThreadPool::new(2));
        let mut pinner = ThreadPool::register(&pool);
        let mut victim = ThreadPool::register(&pool);

        // Rendezvous A: both workers are inside `pinner` tasks.
        // Rendezvous B: released only after the steal assertions.
        let entered = Arc::new(Barrier::new(3));
        let release = Arc::new(Barrier::new(3));
        let gates = (Arc::clone(&entered), Arc::clone(&release));

        let mut pin_slots = vec![0u8; 2];
        let pending_pin = pinner.start(&mut pin_slots, &gates, |g, _, s: &mut u8| {
            g.0.wait();
            g.1.wait();
            *s = 1;
        });
        entered.wait();

        let hits = AtomicU64::new(0);
        let mut slots = vec![0u64; 3];
        let ctx = &hits;
        let pending = victim.start(&mut slots, &ctx, |h, i, s: &mut u64| {
            h.fetch_add(1, Ordering::Relaxed);
            *s = i as u64 + 1;
        });

        let before = pool.steal_count();
        assert!(pool.arena().steal(), "sweep must claim the pending tasks");
        assert_eq!(hits.load(Ordering::Relaxed), 3, "each task ran once");
        assert_eq!(pool.steal_count(), before + 3);
        assert!(pending.try_wait(), "stolen run is complete");
        // A second sweep finds nothing claimable.
        assert!(!pool.arena().steal());
        assert_eq!(pool.steal_count(), before + 3);

        release.wait();
        pending_pin.wait();
        let slots = pending.wait();
        assert_eq!(slots, &mut [1, 2, 3]);
        assert_eq!(pin_slots, vec![1, 1]);
    }

    /// Slot reuse across register/drop churn is generation-checked: a
    /// retired handle's slot is handed to the next registrant, and the
    /// old ticket can no longer clear it.
    #[test]
    fn enrollment_slots_recycle_with_fresh_generations() {
        let pool = Arc::new(ThreadPool::new(2));
        let arena = pool.arena();
        drop(ThreadPool::register(&pool)); // frees its slot for reuse
        for round in 0..8u64 {
            let mut job = ThreadPool::register(&pool);
            let mut slots = vec![0u64; 4];
            job.run(&mut slots, &|i, s: &mut u64| *s = round + i as u64);
            assert_eq!(slots[3], round + 3);
            // Dropping retires; a stale steal sweep between lifetimes
            // must find nothing.
            drop(job);
            assert!(!arena.steal(), "round {round}: retired slot not idle");
        }
    }
}
