//! Behavioural tests for the persistent pool: reuse, panic propagation,
//! nesting, and structured-scope semantics. Pools here are built with an
//! explicit worker count so the multi-worker paths are exercised even on
//! single-core CI hosts.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use usbf_par::ThreadPool;

#[test]
fn pool_is_reused_across_many_par_map_calls() {
    let pool = ThreadPool::new(4);
    assert_eq!(pool.threads(), 4);
    for round in 0..200usize {
        let items: Vec<usize> = (0..64).collect();
        let out = pool.par_map_indexed(&items, |i, &x| x * 2 + round + (i - x));
        assert_eq!(out, (0..64).map(|x| x * 2 + round).collect::<Vec<_>>());
    }
}

#[test]
fn par_map_matches_serial_reference() {
    let pool = ThreadPool::new(3);
    let items: Vec<f64> = (0..500).map(|i| i as f64 * 0.25).collect();
    let serial: Vec<f64> = items.iter().map(|x| x.sqrt() + 1.0).collect();
    let parallel = pool.par_map_indexed(&items, |_, x| x.sqrt() + 1.0);
    assert_eq!(parallel, serial);
}

#[test]
fn scope_tasks_borrow_caller_state() {
    let pool = ThreadPool::new(2);
    let sum = AtomicU64::new(0);
    let data: Vec<u64> = (1..=100).collect();
    pool.scope(|s| {
        for chunk in data.chunks(10) {
            s.spawn(|| {
                sum.fetch_add(chunk.iter().sum(), Ordering::Relaxed);
            });
        }
    });
    assert_eq!(sum.load(Ordering::Relaxed), 5050);
}

#[test]
fn tasks_can_spawn_onto_their_own_scope() {
    let pool = ThreadPool::new(2);
    let count = AtomicUsize::new(0);
    pool.scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                count.fetch_add(1, Ordering::Relaxed);
                // Nested spawn onto the same scope, from inside a task.
                s.spawn(|| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            });
        }
    });
    assert_eq!(count.load(Ordering::Relaxed), 8);
}

#[test]
fn nested_par_map_inside_par_map_completes() {
    // Inner jobs are drained by their own callers, so nesting cannot
    // deadlock even when the pool is saturated by the outer call.
    let pool = ThreadPool::new(2);
    let outer: Vec<usize> = (0..8).collect();
    let totals = pool.par_map_indexed(&outer, |_, &o| {
        let inner: Vec<usize> = (0..50).collect();
        pool.par_map_indexed(&inner, |_, &i| i + o)
            .into_iter()
            .sum::<usize>()
    });
    for (o, total) in totals.into_iter().enumerate() {
        assert_eq!(total, (0..50).sum::<usize>() + 50 * o);
    }
}

#[test]
fn nested_scope_inside_scope_completes() {
    let pool = ThreadPool::new(2);
    let hits = AtomicUsize::new(0);
    pool.scope(|outer| {
        for _ in 0..3 {
            outer.spawn(|| {
                pool.scope(|inner| {
                    for _ in 0..3 {
                        inner.spawn(|| {
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
        }
    });
    assert_eq!(hits.load(Ordering::Relaxed), 9);
}

#[test]
fn panic_in_task_propagates_and_pool_survives() {
    let pool = ThreadPool::new(4);
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(|s| {
            s.spawn(|| panic!("task panic payload"));
        });
    }));
    let payload = result.expect_err("scope must re-throw the task panic");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .unwrap_or("<non-str payload>");
    assert_eq!(msg, "task panic payload");

    // The pool must remain fully usable after a panicked job.
    let items: Vec<usize> = (0..64).collect();
    let out = pool.par_map_indexed(&items, |_, &x| x + 1);
    assert_eq!(out, (1..=64).collect::<Vec<_>>());
}

#[test]
fn panic_in_par_map_item_propagates() {
    let pool = ThreadPool::new(4);
    let items: Vec<usize> = (0..64).collect();
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.par_map_indexed(&items, |_, &x| {
            if x == 13 {
                panic!("boom");
            }
            x
        })
    }));
    assert!(result.is_err(), "panic in f must reach the caller");
    // Subsequent calls still work.
    assert_eq!(pool.par_map_indexed(&items, |_, &x| x), items);
}

#[test]
fn sibling_tasks_finish_even_when_one_panics() {
    let pool = ThreadPool::new(2);
    let done = AtomicUsize::new(0);
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(|s| {
            for i in 0..6 {
                let done = &done;
                s.spawn(move || {
                    if i == 2 {
                        panic!("one bad task");
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    }));
    assert!(result.is_err());
    // The barrier ran every sibling before re-throwing.
    assert_eq!(done.load(Ordering::Relaxed), 5);
}

#[test]
fn scope_returns_closure_value() {
    let pool = ThreadPool::new(2);
    let value = pool.scope(|s| {
        s.spawn(|| {});
        42u32
    });
    assert_eq!(value, 42);
}

#[test]
fn dropping_a_pool_joins_its_workers() {
    let pool = ThreadPool::new(3);
    let items: Vec<usize> = (0..32).collect();
    let _ = pool.par_map_indexed(&items, |_, &x| x);
    drop(pool); // must not hang or leak threads that outlive the join
}

#[test]
fn registered_job_runs_every_task_exactly_once() {
    let pool = std::sync::Arc::new(ThreadPool::new(4));
    let mut job = ThreadPool::register(&pool);
    let mut counts = vec![0u32; 37];
    for round in 0..50 {
        job.run(&mut counts, &|i, c: &mut u32| {
            assert!(i < 37);
            *c += 1;
        });
        assert!(counts.iter().all(|&c| c == round + 1), "round {round}");
    }
}

#[test]
fn registered_job_matches_serial_reference() {
    let pool = std::sync::Arc::new(ThreadPool::new(3));
    let mut job = ThreadPool::register(&pool);
    let mut out = vec![0.0f64; 500];
    let input: Vec<f64> = (0..500).map(|i| i as f64 * 0.25).collect();
    job.run(&mut out, &|i, slot: &mut f64| *slot = input[i].sqrt() + 1.0);
    let serial: Vec<f64> = input.iter().map(|x| x.sqrt() + 1.0).collect();
    assert_eq!(out, serial);
}

#[test]
fn registered_job_tasks_borrow_per_frame_inputs() {
    // The closure is borrowed per run, so per-frame data (here `frame`)
    // can be captured by reference without any 'static requirement.
    let pool = std::sync::Arc::new(ThreadPool::new(2));
    let mut job = ThreadPool::register(&pool);
    let mut sums = vec![0u64; 16];
    for frame in 0..10u64 {
        let weights: Vec<u64> = (0..16).map(|i| i + frame).collect();
        job.run(&mut sums, &|i, s: &mut u64| *s += weights[i]);
    }
    for (i, &s) in sums.iter().enumerate() {
        assert_eq!(s, (0..10).map(|f| i as u64 + f).sum::<u64>());
    }
}

#[test]
fn registered_job_panic_propagates_and_handle_survives() {
    let pool = std::sync::Arc::new(ThreadPool::new(4));
    let mut job = ThreadPool::register(&pool);
    let mut slots = vec![0usize; 32];
    let result = catch_unwind(AssertUnwindSafe(|| {
        job.run(&mut slots, &|i, s: &mut usize| {
            if i == 13 {
                panic!("registered task panic");
            }
            *s = i;
        });
    }));
    assert!(result.is_err(), "panic in a task must reach the caller");
    // The same handle (and pool) must keep working afterwards.
    job.run(&mut slots, &|i, s: &mut usize| *s = i + 1);
    assert_eq!(slots, (1..=32).collect::<Vec<_>>());
    let items: Vec<usize> = (0..16).collect();
    assert_eq!(pool.par_map_indexed(&items, |_, &x| x), items);
}

#[test]
fn multiple_registered_jobs_share_one_pool() {
    let pool = std::sync::Arc::new(ThreadPool::new(2));
    let mut a = ThreadPool::register(&pool);
    let mut b = ThreadPool::register(&pool);
    let mut xs = vec![0u32; 20];
    let mut ys = vec![0u32; 30];
    for _ in 0..20 {
        a.run(&mut xs, &|_, x: &mut u32| *x += 1);
        b.run(&mut ys, &|_, y: &mut u32| *y += 2);
    }
    assert!(xs.iter().all(|&x| x == 20));
    assert!(ys.iter().all(|&y| y == 40));
}

#[test]
fn registered_jobs_interleave_with_scoped_jobs() {
    let pool = std::sync::Arc::new(ThreadPool::new(3));
    let mut job = ThreadPool::register(&pool);
    let mut slots = vec![0usize; 24];
    for round in 0..10 {
        job.run(&mut slots, &|i, s: &mut usize| *s = i * round);
        let items: Vec<usize> = (0..24).collect();
        let mapped = pool.par_map_indexed(&items, |_, &x| x * round);
        assert_eq!(&slots, &mapped, "round {round}");
    }
}

#[test]
fn registered_job_inline_paths() {
    // Empty runs, single-task runs and ≤1-thread pools all run inline on
    // the caller with no coordination.
    for threads in [0usize, 1, 2] {
        let pool = std::sync::Arc::new(ThreadPool::new(threads));
        let mut job = ThreadPool::register(&pool);
        let mut empty: Vec<u32> = Vec::new();
        job.run(&mut empty, &|_, _: &mut u32| unreachable!());
        let mut one = vec![41u32];
        job.run(&mut one, &|_, v: &mut u32| *v += 1);
        assert_eq!(one, vec![42], "{threads} threads");
    }
}

#[test]
fn zero_and_one_thread_pools_run_inline() {
    for threads in [0usize, 1] {
        let pool = ThreadPool::new(threads);
        let items: Vec<usize> = (0..16).collect();
        assert_eq!(
            pool.par_map_indexed(&items, |_, &x| x * 3),
            (0..16).map(|x| x * 3).collect::<Vec<_>>()
        );
        let hit = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                hit.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }
}

// ---------------------------------------------------------------------
// Asynchronous guard API: JobHandle::start → PendingJob.
// ---------------------------------------------------------------------

#[test]
fn started_job_overlaps_with_caller_work() {
    let pool = std::sync::Arc::new(ThreadPool::new(2));
    let mut job = ThreadPool::register(&pool);
    let mut slots = vec![0u64; 16];
    let bias = 3u64;
    let pending = job.start(&mut slots, &bias, |b, i, s: &mut u64| *s = b + i as u64);
    // Caller-side work while the run is in flight.
    let own: u64 = (0..1000u64).sum();
    assert_eq!(own, 499_500);
    let slots = pending.wait();
    for (i, &s) in slots.iter().enumerate() {
        assert_eq!(s, bias + i as u64);
    }
}

#[test]
fn try_wait_turns_true_and_stays_true() {
    let pool = std::sync::Arc::new(ThreadPool::new(2));
    let mut job = ThreadPool::register(&pool);
    let mut slots = vec![0u64; 8];
    let ctx = ();
    let pending = job.start(&mut slots, &ctx, |_, _, s: &mut u64| *s += 1);
    let mut spins = 0u64;
    while !pending.try_wait() {
        std::thread::yield_now();
        spins += 1;
        assert!(spins < 100_000_000, "run never completed");
    }
    // Monotonic: completion cannot un-happen.
    assert!(pending.try_wait());
    let slots = pending.wait();
    assert!(slots.iter().all(|&s| s == 1));
}

#[test]
fn dropping_a_pending_job_joins_the_work() {
    let pool = std::sync::Arc::new(ThreadPool::new(4));
    let mut job = ThreadPool::register(&pool);
    let mut slots = vec![0u64; 32];
    for round in 1..=5u64 {
        let spin = 500u64;
        let pending = job.start(&mut slots, &spin, |spin, _, s: &mut u64| {
            let mut acc = 0u64;
            for k in 0..*spin {
                acc = acc.wrapping_add(k);
            }
            std::hint::black_box(acc);
            *s += 1;
        });
        drop(pending); // must block until every task ran
        assert!(
            slots.iter().all(|&s| s == round),
            "drop-join left round {round} incomplete: {slots:?}"
        );
    }
}

#[test]
fn pending_panic_is_delivered_on_wait_and_everything_survives() {
    let pool = std::sync::Arc::new(ThreadPool::new(4));
    let mut job = ThreadPool::register(&pool);
    let mut slots = vec![0u64; 24];
    let panic_at = 7usize;
    let unwound = catch_unwind(AssertUnwindSafe(|| {
        let pending = job.start(&mut slots, &panic_at, |p, i, s: &mut u64| {
            assert!(i != *p, "injected pending panic");
            *s += 1;
        });
        pending.wait();
    }));
    let payload = unwound.expect_err("wait must re-throw the task panic");
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("injected pending panic"), "payload: {msg}");
    // Siblings of the panicking task all ran before delivery.
    let done: u64 = slots.iter().sum();
    assert_eq!(done, 23, "every non-panicking task ran exactly once");
    // Handle and pool remain fully usable.
    let none = usize::MAX;
    job.start(&mut slots, &none, |_, _, s: &mut u64| *s += 1)
        .wait();
    let items: Vec<usize> = (0..16).collect();
    assert_eq!(pool.par_map_indexed(&items, |_, &x| x), items);
}

#[test]
fn dropping_a_panicked_pending_job_discards_the_panic() {
    let pool = std::sync::Arc::new(ThreadPool::new(2));
    let mut job = ThreadPool::register(&pool);
    let mut slots = vec![0u64; 8];
    let panic_at = 2usize;
    let pending = job.start(&mut slots, &panic_at, |p, i, s: &mut u64| {
        assert!(i != *p, "discarded panic");
        *s += 1;
    });
    drop(pending); // joins; must NOT unwind and must not poison later runs
    let none = usize::MAX;
    let pending = job.start(&mut slots, &none, |_, _, s: &mut u64| *s += 1);
    let slots = pending.wait(); // a stale discarded panic would unwind here
    assert_eq!(slots.iter().sum::<u64>(), 7 + 8);
}

#[test]
fn start_on_a_zero_worker_pool_completes_inline() {
    let pool = std::sync::Arc::new(ThreadPool::new(0));
    let mut job = ThreadPool::register(&pool);
    let mut slots = vec![0u64; 8];
    let ctx = 5u64;
    let pending = job.start(&mut slots, &ctx, |c, i, s: &mut u64| *s = c * i as u64);
    assert!(
        pending.try_wait(),
        "no workers: the run finished in start()"
    );
    let slots = pending.wait();
    assert_eq!(slots[7], 35);
}

#[test]
fn multiple_pending_jobs_fly_concurrently_on_one_pool() {
    let pool = std::sync::Arc::new(ThreadPool::new(2));
    let mut a = ThreadPool::register(&pool);
    let mut b = ThreadPool::register(&pool);
    let mut c = ThreadPool::register(&pool);
    let mut xs = vec![0u64; 12];
    let mut ys = vec![0u64; 7];
    let mut zs = vec![0u64; 29];
    for _ in 0..20 {
        let ctx = ();
        let pa = a.start(&mut xs, &ctx, |_, _, s: &mut u64| *s += 1);
        let pb = b.start(&mut ys, &ctx, |_, _, s: &mut u64| *s += 2);
        let pc = c.start(&mut zs, &ctx, |_, _, s: &mut u64| *s += 3);
        // Resolve out of submission order on purpose.
        pb.wait();
        drop(pc);
        pa.wait();
    }
    assert!(xs.iter().all(|&x| x == 20));
    assert!(ys.iter().all(|&y| y == 40));
    assert!(zs.iter().all(|&z| z == 60));
}

// ---------------------------------------------------------------------
// Concurrency-order property tests: random interleavings of
// start / try_wait / wait / drop across multiple PendingJobs, including
// drop-without-wait and panic-mid-flight.
// ---------------------------------------------------------------------

// ---------------------------------------------------------------------
// Claim/steal/complete interleavings under shard churn: a rotating set
// of 2–8 pseudo-shards (JobHandles), where handles detach (drop) and
// attach (re-register) between rounds while sibling runs are in flight.
// Every tile must be claimed exactly once per run — whether it was
// executed by an announced worker, stolen by an idle one, or drained by
// the owner — and no claim may be lost when a shard detaches mid-round.
// ---------------------------------------------------------------------

mod claim_interleavings {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use usbf_par::{JobHandle, ThreadPool};

    use proptest::prelude::*;

    /// SplitMix64 decision stream (see `pending_interleavings`).
    struct Decide(u64);

    impl Decide {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }

        fn chance(&mut self, percent: u64) -> bool {
            self.next() % 100 < percent
        }

        fn shuffle<T>(&mut self, items: &mut [T]) {
            for i in (1..items.len()).rev() {
                items.swap(i, self.below(i + 1));
            }
        }
    }

    /// One pseudo-shard: a registered handle plus its tile slots and the
    /// exactly-once expectation per slot.
    struct Shard {
        job: JobHandle,
        slots: Vec<u64>,
        expected: Vec<u64>,
    }

    /// Shared per-run context: a claim counter (total tiles executed,
    /// whoever ran them) and busy-work so runs overlap the churn.
    struct Tile {
        claims: AtomicU64,
        spin: u64,
    }

    fn tile_task(ctx: &Tile, i: usize, slot: &mut u64) {
        let mut acc = 0u64;
        for k in 0..ctx.spin {
            acc = acc.wrapping_add(k ^ i as u64);
        }
        std::hint::black_box(acc);
        ctx.claims.fetch_add(1, Ordering::Relaxed);
        *slot += 1;
    }

    const ROUNDS: usize = 8;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn churned_shards_claim_every_tile_exactly_once(
            threads_sel in 0usize..4,
            n_shards in 2usize..9,
            seed in any::<u64>(),
        ) {
            let threads = [1usize, 2, 3, 4][threads_sel];
            let pool = Arc::new(ThreadPool::new(threads));
            let mut rng = Decide(seed ^ 0x0DD0_FEED_BEEF_CAFE);
            let mut shards: Vec<Shard> = (0..n_shards)
                .map(|_| {
                    let tiles = 1 + rng.below(24);
                    Shard {
                        job: ThreadPool::register(&pool),
                        slots: vec![0u64; tiles],
                        expected: vec![0u64; tiles],
                    }
                })
                .collect();
            let steal_floor = pool.steal_count();

            for round in 0..ROUNDS {
                // Which shards run this round, and the round's contexts.
                let started: Vec<bool> =
                    (0..shards.len()).map(|_| rng.chance(85)).collect();
                let ctxs: Vec<Tile> = (0..shards.len())
                    .map(|_| Tile {
                        claims: AtomicU64::new(0),
                        spin: rng.next() % 300,
                    })
                    .collect();

                // Start phase: every chosen shard's frame goes in flight
                // before any is resolved.
                let mut pendings = Vec::new();
                for (s, shard) in shards.iter_mut().enumerate() {
                    if started[s] {
                        pendings.push((s, shard.job.start(&mut shard.slots, &ctxs[s], tile_task)));
                    }
                }

                // Resolve in random order, mixing wait and drop-join —
                // the first resolutions complete while later shards'
                // runs are still in flight, so a subsequent detach is a
                // genuine mid-round detach from the pool's perspective.
                rng.shuffle(&mut pendings);
                for (_, pending) in pendings {
                    if rng.chance(50) {
                        let _ = pending.wait();
                    } else {
                        drop(pending);
                    }
                }

                // Exactly-once, per slot and in total, per shard.
                for (s, shard) in shards.iter_mut().enumerate() {
                    if !started[s] {
                        continue;
                    }
                    for e in shard.expected.iter_mut() {
                        *e += 1;
                    }
                    prop_assert_eq!(&shard.slots, &shard.expected, "round {} shard {}", round, s);
                    prop_assert_eq!(
                        ctxs[s].claims.load(Ordering::Relaxed) as usize,
                        shard.slots.len(),
                        "round {} shard {}: claim total",
                        round,
                        s
                    );
                }

                // Churn phase: detach one shard (drop its handle — its
                // run already joined above), maybe attach a fresh one.
                if shards.len() > 2 && rng.chance(45) {
                    let victim = rng.below(shards.len());
                    let gone = shards.remove(victim);
                    drop(gone); // retires its arena slot
                }
                if shards.len() < 8 && rng.chance(45) {
                    let tiles = 1 + rng.below(24);
                    shards.push(Shard {
                        job: ThreadPool::register(&pool),
                        slots: vec![0u64; tiles],
                        expected: vec![0u64; tiles],
                    });
                }
            }

            // Steal telemetry is monotonic, and the pool outlives the
            // whole churn history.
            prop_assert!(pool.steal_count() >= steal_floor);
            let items: Vec<usize> = (0..32).collect();
            prop_assert_eq!(
                pool.par_map_indexed(&items, |_, &x| x + 1),
                (1..=32).collect::<Vec<_>>()
            );
            for shard in shards.iter_mut() {
                let ctx = Tile { claims: AtomicU64::new(0), spin: 0 };
                shard.job.start(&mut shard.slots, &ctx, tile_task).wait();
                prop_assert_eq!(
                    ctx.claims.load(Ordering::Relaxed) as usize,
                    shard.slots.len()
                );
            }
        }
    }
}

mod pending_interleavings {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;
    use usbf_par::ThreadPool;

    use proptest::prelude::*;

    /// Per-run shared context of one handle's tasks.
    struct TaskCtx {
        /// Task index that panics before touching its slot, if any.
        panic_at: Option<usize>,
        /// Busy-work per task, so in-flight runs genuinely overlap the
        /// driver's own operations.
        spin: u64,
    }

    fn task(ctx: &TaskCtx, i: usize, slot: &mut u64) {
        assert!(ctx.panic_at != Some(i), "interleaving panic");
        let mut acc = 0u64;
        for k in 0..ctx.spin {
            acc = acc.wrapping_add(k ^ i as u64);
        }
        std::hint::black_box(acc);
        *slot += 1;
    }

    /// SplitMix64: the per-round decision stream (distinct from the
    /// shim's case generator, so decisions stay stable if the shim's
    /// draw order changes).
    struct Decide(u64);

    impl Decide {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }

        fn chance(&mut self, percent: u64) -> bool {
            self.next() % 100 < percent
        }

        fn shuffle<T>(&mut self, items: &mut [T]) {
            for i in (1..items.len()).rev() {
                items.swap(i, self.below(i + 1));
            }
        }
    }

    /// How one started run is resolved this round.
    #[derive(Clone, Copy, Debug)]
    enum Resolve {
        Wait,
        Drop,
    }

    const HANDLES: usize = 3;
    const ROUNDS: usize = 6;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn random_interleavings_join_deliver_panics_and_leave_the_pool_reusable(
            threads_sel in 0usize..4,
            n0 in 1usize..25,
            n1 in 1usize..25,
            n2 in 1usize..25,
            seed in any::<u64>(),
        ) {
            let threads = [0usize, 1, 2, 4][threads_sel];
            let pool = Arc::new(ThreadPool::new(threads));
            let mut handles: Vec<_> = (0..HANDLES).map(|_| ThreadPool::register(&pool)).collect();
            let sizes = [n0, n1, n2];
            let mut slots: Vec<Vec<u64>> = sizes.iter().map(|&n| vec![0u64; n]).collect();
            let mut expected: Vec<Vec<u64>> = sizes.iter().map(|&n| vec![0u64; n]).collect();
            let mut rng = Decide(seed ^ 0xA5A5_5A5A_D0D0_0D0D);

            for _round in 0..ROUNDS {
                // Decisions first, so context borrows outlive the guards.
                let mut started = [false; HANDLES];
                let mut resolves = [Resolve::Wait; HANDLES];
                let mut ctxs = Vec::with_capacity(HANDLES);
                for h in 0..HANDLES {
                    started[h] = rng.chance(80);
                    resolves[h] = if rng.chance(70) { Resolve::Wait } else { Resolve::Drop };
                    let panic_at = rng.chance(30).then(|| rng.below(sizes[h]));
                    ctxs.push(TaskCtx { panic_at, spin: rng.next() % 400 });
                }

                // Start phase: every chosen handle's run goes in flight
                // before any is polled or resolved.
                let mut pendings = Vec::with_capacity(HANDLES);
                for ((handle, slot_vec), (h, ctx)) in handles
                    .iter_mut()
                    .zip(slots.iter_mut())
                    .zip(ctxs.iter().enumerate())
                {
                    if started[h] {
                        pendings.push((h, handle.start(slot_vec, ctx, task)));
                    }
                }

                // Poll phase: try_wait in random order; a true result
                // must be sticky.
                for _ in 0..rng.below(8) {
                    if pendings.is_empty() {
                        break;
                    }
                    let (_, pending) = &pendings[rng.below(pendings.len())];
                    if pending.try_wait() {
                        prop_assert!(pending.try_wait(), "try_wait must be monotonic");
                    }
                }

                // Resolve phase: wait or drop, in random order.
                rng.shuffle(&mut pendings);
                for (h, pending) in pendings {
                    let panicking = ctxs[h].panic_at.is_some();
                    match resolves[h] {
                        Resolve::Wait => {
                            let unwound = catch_unwind(AssertUnwindSafe(|| {
                                let _ = pending.wait();
                            }))
                            .is_err();
                            prop_assert_eq!(
                                unwound,
                                panicking,
                                "wait must unwind exactly for panic-mid-flight runs (handle {})",
                                h
                            );
                        }
                        Resolve::Drop => drop(pending), // joins, never unwinds
                    }
                }

                // Every resolution path joined: slot effects are fully
                // visible now, whatever the interleaving was.
                for h in 0..HANDLES {
                    if !started[h] {
                        continue;
                    }
                    for (i, e) in expected[h].iter_mut().enumerate() {
                        if ctxs[h].panic_at != Some(i) {
                            *e += 1;
                        }
                    }
                }
                prop_assert_eq!(&slots, &expected, "threads {}", threads);
            }

            // The pool and every handle survive the whole history.
            let items: Vec<usize> = (0..32).collect();
            prop_assert_eq!(
                pool.par_map_indexed(&items, |_, &x| x + 1),
                (1..=32).collect::<Vec<_>>()
            );
            for (h, handle) in handles.iter_mut().enumerate() {
                let ctx = TaskCtx { panic_at: None, spin: 0 };
                handle.start(&mut slots[h], &ctx, task).wait();
                for (i, e) in expected[h].iter_mut().enumerate() {
                    *e += 1;
                    prop_assert_eq!(slots[h][i], *e, "handle {} slot {}", h, i);
                }
            }
        }
    }
}
