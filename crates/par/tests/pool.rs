//! Behavioural tests for the persistent pool: reuse, panic propagation,
//! nesting, and structured-scope semantics. Pools here are built with an
//! explicit worker count so the multi-worker paths are exercised even on
//! single-core CI hosts.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use usbf_par::ThreadPool;

#[test]
fn pool_is_reused_across_many_par_map_calls() {
    let pool = ThreadPool::new(4);
    assert_eq!(pool.threads(), 4);
    for round in 0..200usize {
        let items: Vec<usize> = (0..64).collect();
        let out = pool.par_map_indexed(&items, |i, &x| x * 2 + round + (i - x));
        assert_eq!(out, (0..64).map(|x| x * 2 + round).collect::<Vec<_>>());
    }
}

#[test]
fn par_map_matches_serial_reference() {
    let pool = ThreadPool::new(3);
    let items: Vec<f64> = (0..500).map(|i| i as f64 * 0.25).collect();
    let serial: Vec<f64> = items.iter().map(|x| x.sqrt() + 1.0).collect();
    let parallel = pool.par_map_indexed(&items, |_, x| x.sqrt() + 1.0);
    assert_eq!(parallel, serial);
}

#[test]
fn scope_tasks_borrow_caller_state() {
    let pool = ThreadPool::new(2);
    let sum = AtomicU64::new(0);
    let data: Vec<u64> = (1..=100).collect();
    pool.scope(|s| {
        for chunk in data.chunks(10) {
            s.spawn(|| {
                sum.fetch_add(chunk.iter().sum(), Ordering::Relaxed);
            });
        }
    });
    assert_eq!(sum.load(Ordering::Relaxed), 5050);
}

#[test]
fn tasks_can_spawn_onto_their_own_scope() {
    let pool = ThreadPool::new(2);
    let count = AtomicUsize::new(0);
    pool.scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                count.fetch_add(1, Ordering::Relaxed);
                // Nested spawn onto the same scope, from inside a task.
                s.spawn(|| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            });
        }
    });
    assert_eq!(count.load(Ordering::Relaxed), 8);
}

#[test]
fn nested_par_map_inside_par_map_completes() {
    // Inner jobs are drained by their own callers, so nesting cannot
    // deadlock even when the pool is saturated by the outer call.
    let pool = ThreadPool::new(2);
    let outer: Vec<usize> = (0..8).collect();
    let totals = pool.par_map_indexed(&outer, |_, &o| {
        let inner: Vec<usize> = (0..50).collect();
        pool.par_map_indexed(&inner, |_, &i| i + o)
            .into_iter()
            .sum::<usize>()
    });
    for (o, total) in totals.into_iter().enumerate() {
        assert_eq!(total, (0..50).sum::<usize>() + 50 * o);
    }
}

#[test]
fn nested_scope_inside_scope_completes() {
    let pool = ThreadPool::new(2);
    let hits = AtomicUsize::new(0);
    pool.scope(|outer| {
        for _ in 0..3 {
            outer.spawn(|| {
                pool.scope(|inner| {
                    for _ in 0..3 {
                        inner.spawn(|| {
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
        }
    });
    assert_eq!(hits.load(Ordering::Relaxed), 9);
}

#[test]
fn panic_in_task_propagates_and_pool_survives() {
    let pool = ThreadPool::new(4);
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(|s| {
            s.spawn(|| panic!("task panic payload"));
        });
    }));
    let payload = result.expect_err("scope must re-throw the task panic");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .unwrap_or("<non-str payload>");
    assert_eq!(msg, "task panic payload");

    // The pool must remain fully usable after a panicked job.
    let items: Vec<usize> = (0..64).collect();
    let out = pool.par_map_indexed(&items, |_, &x| x + 1);
    assert_eq!(out, (1..=64).collect::<Vec<_>>());
}

#[test]
fn panic_in_par_map_item_propagates() {
    let pool = ThreadPool::new(4);
    let items: Vec<usize> = (0..64).collect();
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.par_map_indexed(&items, |_, &x| {
            if x == 13 {
                panic!("boom");
            }
            x
        })
    }));
    assert!(result.is_err(), "panic in f must reach the caller");
    // Subsequent calls still work.
    assert_eq!(pool.par_map_indexed(&items, |_, &x| x), items);
}

#[test]
fn sibling_tasks_finish_even_when_one_panics() {
    let pool = ThreadPool::new(2);
    let done = AtomicUsize::new(0);
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(|s| {
            for i in 0..6 {
                let done = &done;
                s.spawn(move || {
                    if i == 2 {
                        panic!("one bad task");
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    }));
    assert!(result.is_err());
    // The barrier ran every sibling before re-throwing.
    assert_eq!(done.load(Ordering::Relaxed), 5);
}

#[test]
fn scope_returns_closure_value() {
    let pool = ThreadPool::new(2);
    let value = pool.scope(|s| {
        s.spawn(|| {});
        42u32
    });
    assert_eq!(value, 42);
}

#[test]
fn dropping_a_pool_joins_its_workers() {
    let pool = ThreadPool::new(3);
    let items: Vec<usize> = (0..32).collect();
    let _ = pool.par_map_indexed(&items, |_, &x| x);
    drop(pool); // must not hang or leak threads that outlive the join
}

#[test]
fn registered_job_runs_every_task_exactly_once() {
    let pool = std::sync::Arc::new(ThreadPool::new(4));
    let mut job = ThreadPool::register(&pool);
    let mut counts = vec![0u32; 37];
    for round in 0..50 {
        job.run(&mut counts, &|i, c: &mut u32| {
            assert!(i < 37);
            *c += 1;
        });
        assert!(counts.iter().all(|&c| c == round + 1), "round {round}");
    }
}

#[test]
fn registered_job_matches_serial_reference() {
    let pool = std::sync::Arc::new(ThreadPool::new(3));
    let mut job = ThreadPool::register(&pool);
    let mut out = vec![0.0f64; 500];
    let input: Vec<f64> = (0..500).map(|i| i as f64 * 0.25).collect();
    job.run(&mut out, &|i, slot: &mut f64| *slot = input[i].sqrt() + 1.0);
    let serial: Vec<f64> = input.iter().map(|x| x.sqrt() + 1.0).collect();
    assert_eq!(out, serial);
}

#[test]
fn registered_job_tasks_borrow_per_frame_inputs() {
    // The closure is borrowed per run, so per-frame data (here `frame`)
    // can be captured by reference without any 'static requirement.
    let pool = std::sync::Arc::new(ThreadPool::new(2));
    let mut job = ThreadPool::register(&pool);
    let mut sums = vec![0u64; 16];
    for frame in 0..10u64 {
        let weights: Vec<u64> = (0..16).map(|i| i + frame).collect();
        job.run(&mut sums, &|i, s: &mut u64| *s += weights[i]);
    }
    for (i, &s) in sums.iter().enumerate() {
        assert_eq!(s, (0..10).map(|f| i as u64 + f).sum::<u64>());
    }
}

#[test]
fn registered_job_panic_propagates_and_handle_survives() {
    let pool = std::sync::Arc::new(ThreadPool::new(4));
    let mut job = ThreadPool::register(&pool);
    let mut slots = vec![0usize; 32];
    let result = catch_unwind(AssertUnwindSafe(|| {
        job.run(&mut slots, &|i, s: &mut usize| {
            if i == 13 {
                panic!("registered task panic");
            }
            *s = i;
        });
    }));
    assert!(result.is_err(), "panic in a task must reach the caller");
    // The same handle (and pool) must keep working afterwards.
    job.run(&mut slots, &|i, s: &mut usize| *s = i + 1);
    assert_eq!(slots, (1..=32).collect::<Vec<_>>());
    let items: Vec<usize> = (0..16).collect();
    assert_eq!(pool.par_map_indexed(&items, |_, &x| x), items);
}

#[test]
fn multiple_registered_jobs_share_one_pool() {
    let pool = std::sync::Arc::new(ThreadPool::new(2));
    let mut a = ThreadPool::register(&pool);
    let mut b = ThreadPool::register(&pool);
    let mut xs = vec![0u32; 20];
    let mut ys = vec![0u32; 30];
    for _ in 0..20 {
        a.run(&mut xs, &|_, x: &mut u32| *x += 1);
        b.run(&mut ys, &|_, y: &mut u32| *y += 2);
    }
    assert!(xs.iter().all(|&x| x == 20));
    assert!(ys.iter().all(|&y| y == 40));
}

#[test]
fn registered_jobs_interleave_with_scoped_jobs() {
    let pool = std::sync::Arc::new(ThreadPool::new(3));
    let mut job = ThreadPool::register(&pool);
    let mut slots = vec![0usize; 24];
    for round in 0..10 {
        job.run(&mut slots, &|i, s: &mut usize| *s = i * round);
        let items: Vec<usize> = (0..24).collect();
        let mapped = pool.par_map_indexed(&items, |_, &x| x * round);
        assert_eq!(&slots, &mapped, "round {round}");
    }
}

#[test]
fn registered_job_inline_paths() {
    // Empty runs, single-task runs and ≤1-thread pools all run inline on
    // the caller with no coordination.
    for threads in [0usize, 1, 2] {
        let pool = std::sync::Arc::new(ThreadPool::new(threads));
        let mut job = ThreadPool::register(&pool);
        let mut empty: Vec<u32> = Vec::new();
        job.run(&mut empty, &|_, _: &mut u32| unreachable!());
        let mut one = vec![41u32];
        job.run(&mut one, &|_, v: &mut u32| *v += 1);
        assert_eq!(one, vec![42], "{threads} threads");
    }
}

#[test]
fn zero_and_one_thread_pools_run_inline() {
    for threads in [0usize, 1] {
        let pool = ThreadPool::new(threads);
        let items: Vec<usize> = (0..16).collect();
        assert_eq!(
            pool.par_map_indexed(&items, |_, &x| x * 3),
            (0..16).map(|x| x * 3).collect::<Vec<_>>()
        );
        let hit = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                hit.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }
}
