//! Delay-generation engines for 3D ultrasound beamforming — the primary
//! contribution of the DATE 2015 paper.
//!
//! Receive beamforming needs the two-way propagation delay `tp(O, S, D)`
//! (Eq. 2) for every focal point `S` and element `D`, quantized to the
//! echo-sampling grid. This crate implements the paper's two architectures
//! plus the reference and baseline they are measured against, all behind
//! one trait:
//!
//! * [`DelayEngine`] — random-access delay queries (float samples and the
//!   hardware integer index);
//! * [`ExactEngine`] — double-precision golden model;
//! * [`NaiveTableEngine`] — the §II-B baseline: a fully precomputed table,
//!   feasible only for small geometries (~164 × 10⁹ entries at full scale —
//!   construction fails with a byte-budget error);
//! * [`TableFreeEngine`] — §IV: on-the-fly computation with two additions
//!   plus one piecewise-linear square root per element (Fig. 2), no tables;
//! * [`TableSteerEngine`] — §V: a folded reference table steered by the
//!   precomputed Eq. 7 correction planes in fixed point (Fig. 4);
//! * [`stats`] — index-selection error sweeps comparing any engine against
//!   the exact one (the §VI-A accuracy numbers).
//!
//! # Example
//!
//! ```
//! use usbf_core::{DelayEngine, ExactEngine, TableFreeEngine, TableFreeConfig};
//! use usbf_geometry::{SystemSpec, VoxelIndex};
//!
//! let spec = SystemSpec::tiny();
//! let exact = ExactEngine::new(&spec);
//! let tf = TableFreeEngine::new(&spec, TableFreeConfig::paper())?;
//! let vox = VoxelIndex::new(3, 4, 10);
//! for e in spec.elements.iter() {
//!     let err = (tf.delay_samples(vox, e) - exact.delay_samples(vox, e)).abs();
//!     assert!(err < 1.0); // two δ=0.25 approximations + fixed point
//! }
//! # Ok::<(), usbf_core::EngineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod exact;
mod naive;
mod nappe;
mod schedule;
pub mod stats;
mod tablefree;
mod tablesteer;

pub use engine::{DelayEngine, EngineError, FusedOnly};
pub use exact::ExactEngine;
pub use naive::NaiveTableEngine;
pub use nappe::{FillBuffers, NappeDelays};
pub use schedule::{NappeSchedule, Tile};
pub use tablefree::{TableFreeConfig, TableFreeEngine};
pub use tablesteer::{SteerBlockSpec, TableSteerConfig, TableSteerEngine};
