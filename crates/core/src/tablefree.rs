//! TABLEFREE: on-the-fly delay computation (§IV, Fig. 2).

use crate::{DelayEngine, EngineError, NappeDelays};
use std::sync::atomic::{AtomicU64, Ordering};
use usbf_geometry::scan::ScanOrder;
use usbf_geometry::{ElementIndex, SystemSpec, TransmitModel, Vec3, VoxelIndex};
use usbf_pwl::{LutFormats, PwlApprox, QuantizedPwl, SqrtFn, TrackerStats, TrackingEvaluator};

/// Configuration of the TABLEFREE engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableFreeConfig {
    /// Maximum PWL square-root error in samples (the paper's δ = 0.25,
    /// chosen so the delay-selection error stays within ±1 sample).
    pub delta: f64,
    /// Coefficient-LUT formats; `None` picks formats fitted to the table
    /// ([`LutFormats::fitted_to`]).
    pub lut_formats: Option<LutFormats>,
    /// Evaluate the transmit square root exactly instead of through the
    /// PWL (ablation: §IV notes the first square root "is comparatively
    /// much less critical"; the paper's error analysis still sums two
    /// approximations, which is the default here).
    pub exact_transmit: bool,
}

impl TableFreeConfig {
    /// The paper's operating point: δ = 0.25, fitted LUT formats, both
    /// square roots approximated.
    pub fn paper() -> Self {
        TableFreeConfig {
            delta: 0.25,
            lut_formats: None,
            exact_transmit: false,
        }
    }

    /// Same as [`TableFreeConfig::paper`] but with a custom δ.
    pub fn with_delta(delta: f64) -> Self {
        TableFreeConfig {
            delta,
            ..Self::paper()
        }
    }
}

impl Default for TableFreeConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The table-free delay engine: delays are never stored; each query
/// assembles the squared transmit/receive distances (two additions per
/// element thanks to per-row/column reuse) and pushes them through a
/// piecewise-linear square root evaluated from quantized coefficient LUTs.
///
/// ```
/// use usbf_core::{DelayEngine, TableFreeEngine, TableFreeConfig};
/// use usbf_geometry::SystemSpec;
/// let spec = SystemSpec::tiny();
/// let eng = TableFreeEngine::new(&spec, TableFreeConfig::paper())?;
/// // ~70 segments at paper scale; fewer for the tiny test geometry.
/// assert!(eng.segment_count() > 10);
/// # Ok::<(), usbf_core::EngineError>(())
/// ```
#[derive(Debug)]
pub struct TableFreeEngine {
    spec: SystemSpec,
    config: TableFreeConfig,
    pwl: PwlApprox,
    quant: QuantizedPwl,
    /// Element positions in linear order, cached for the batched fill.
    elem_pos: Vec<Vec3>,
    echo_len: usize,
    samples_per_metre: f64,
    sqrt_evals: AtomicU64,
}

impl Clone for TableFreeEngine {
    /// Clones the engine with a fresh (zeroed) op counter.
    fn clone(&self) -> Self {
        TableFreeEngine {
            spec: self.spec.clone(),
            config: self.config,
            pwl: self.pwl.clone(),
            quant: self.quant.clone(),
            elem_pos: self.elem_pos.clone(),
            echo_len: self.echo_len,
            samples_per_metre: self.samples_per_metre,
            sqrt_evals: AtomicU64::new(0),
        }
    }
}

impl TableFreeEngine {
    /// Builds the PWL table for the spec's distance range and quantizes
    /// the coefficient LUTs.
    ///
    /// # Errors
    ///
    /// Propagates PWL-construction and coefficient-quantization failures.
    pub fn new(spec: &SystemSpec, config: TableFreeConfig) -> Result<Self, EngineError> {
        let (lo, hi) = Self::sqrt_domain(spec);
        let pwl = PwlApprox::build(&SqrtFn, (lo, hi), config.delta)?;
        let formats = config
            .lut_formats
            .unwrap_or_else(|| LutFormats::fitted_to(&pwl));
        let quant = QuantizedPwl::quantize(&pwl, formats)?;
        Ok(TableFreeEngine {
            elem_pos: spec
                .elements
                .iter()
                .map(|e| spec.elements.position(e))
                .collect(),
            spec: spec.clone(),
            config,
            pwl,
            quant,
            echo_len: spec.echo_buffer_len(),
            samples_per_metre: spec.sampling_frequency / spec.speed_of_sound,
            sqrt_evals: AtomicU64::new(0),
        })
    }

    /// The squared-distance domain (in samples²) the PWL table must cover:
    /// from half the shallowest possible one-way path (the first focal
    /// depth, foreshortened by extreme steering) to the longest one-way
    /// path, with a small safety margin.
    pub fn sqrt_domain(spec: &SystemSpec) -> (f64, f64) {
        let v = &spec.volume_grid;
        let z_min = v.depth_of(0) * v.theta_max().cos() * v.phi_max().cos();
        let lo_samples = 0.5 * spec.metres_to_samples(z_min);
        let hi_samples = spec.max_one_way_delay_samples() * 1.01;
        ((lo_samples * lo_samples).max(0.25), hi_samples * hi_samples)
    }

    /// Number of PWL segments (the paper finds ~70 for δ = 0.25 at Table I
    /// scale).
    pub fn segment_count(&self) -> usize {
        self.pwl.segment_count()
    }

    /// The underlying float-coefficient PWL table.
    pub fn pwl(&self) -> &PwlApprox {
        &self.pwl
    }

    /// The quantized coefficient LUTs.
    pub fn quantized(&self) -> &QuantizedPwl {
        &self.quant
    }

    /// The engine's configuration.
    pub fn config(&self) -> &TableFreeConfig {
        &self.config
    }

    /// The system spec the engine was built for.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// Transmit squared distance in samples² — the PWL argument of the
    /// first square root, shared by every element of a focal point.
    #[inline]
    pub fn tx_alpha(&self, vox: VoxelIndex) -> f64 {
        let s = self.spec.volume_grid.position(vox);
        let o = self.spec.origin;
        let dx = (s.x - o.x) * self.samples_per_metre;
        let dy = (s.y - o.y) * self.samples_per_metre;
        let dz = (s.z - o.z) * self.samples_per_metre;
        dx * dx + dy * dy + dz * dz
    }

    /// Number of square-root evaluations performed so far (op counter).
    pub fn sqrt_evals(&self) -> u64 {
        self.sqrt_evals.load(Ordering::Relaxed)
    }

    /// Per-element datapath cost of one delay: **2 additions** (assembling
    /// the squared receive distance from per-row/column partial sums) and
    /// **1 PWL square root** (1 multiplier + 1 adder + LUTs). This is the
    /// §IV-B claim; the transmit term amortizes over all N elements.
    pub fn ops_per_element() -> (u64, u64) {
        (2, 1)
    }

    #[inline]
    fn sqrt_approx(&self, alpha: f64) -> f64 {
        self.sqrt_evals.fetch_add(1, Ordering::Relaxed);
        self.quant.eval(alpha)
    }

    /// The transmit term of transmit `tx` at a focal point, in samples.
    /// Point sources go through the (approximated or exact) square root;
    /// plane waves are a **linear projection** `n̂ · S` — no square root at
    /// all, so the TABLEFREE datapath gets *cheaper* per added CPWC angle.
    #[inline]
    fn tx_term(&self, tx: usize, vox: VoxelIndex) -> f64 {
        match &self.spec.transmits[tx] {
            TransmitModel::PointSource => {
                let alpha = self.tx_alpha(vox);
                if self.config.exact_transmit {
                    alpha.sqrt()
                } else {
                    self.sqrt_approx(alpha)
                }
            }
            TransmitModel::PlaneWave(pw) => {
                let s = self.spec.volume_grid.position(vox);
                pw.steering.unit().dot(s) * self.samples_per_metre
            }
        }
    }

    /// Square-root evaluations the transmit term of transmit `tx` costs
    /// per focal point (0 for plane waves and exact transmit).
    #[inline]
    fn tx_sqrt_cost(&self, tx: usize) -> u64 {
        match &self.spec.transmits[tx] {
            TransmitModel::PointSource => u64::from(!self.config.exact_transmit),
            TransmitModel::PlaneWave(_) => 0,
        }
    }

    /// Receive squared distance in samples² — the PWL argument stream a
    /// per-element hardware unit sees.
    #[inline]
    pub fn rx_alpha(&self, vox: VoxelIndex, e: ElementIndex) -> f64 {
        let s = self.spec.volume_grid.position(vox);
        let d = self.spec.elements.position(e);
        let dx = (s.x - d.x) * self.samples_per_metre;
        let dy = (s.y - d.y) * self.samples_per_metre;
        let dz = s.z * self.samples_per_metre; // element z = 0
        dx * dx + dy * dy + dz * dz
    }

    /// Drives a hardware-style segment tracker through the α sequence one
    /// element's unit sees for a whole frame in the given scan order, and
    /// returns the tracker statistics — validating the "no segment search
    /// needed" claim of §IV-B.
    pub fn tracking_stats_for_element(&self, e: ElementIndex, order: ScanOrder) -> TrackerStats {
        let mut tracker = TrackingEvaluator::new(&self.pwl);
        let mut first = true;
        for vox in order.iter(&self.spec.volume_grid) {
            let alpha = self.rx_alpha(vox, e);
            if first {
                tracker.seek(alpha);
                first = false;
            }
            let _ = tracker.eval(alpha);
        }
        tracker.stats()
    }
}

impl DelayEngine for TableFreeEngine {
    fn name(&self) -> &'static str {
        "TABLEFREE"
    }

    fn delay_samples(&self, vox: VoxelIndex, e: ElementIndex) -> f64 {
        self.delay_samples_for(0, vox, e)
    }

    fn transmit_count(&self) -> usize {
        self.spec.n_transmits()
    }

    fn delay_samples_for(&self, tx: usize, vox: VoxelIndex, e: ElementIndex) -> f64 {
        let t = self.tx_term(tx, vox);
        let rx = self.sqrt_approx(self.rx_alpha(vox, e));
        t + rx
    }

    fn echo_buffer_len(&self) -> usize {
        self.echo_len
    }

    /// Batched nappe fill: [`fill_nappe_streamed`](DelayEngine::fill_nappe_streamed)
    /// with no row consumer.
    fn fill_nappe(&self, nappe_idx: usize, out: &mut NappeDelays) {
        self.fill_nappe_streamed(nappe_idx, out, &mut |_, _| {});
    }

    /// Transmit-indexed batched fill: streamed fill with no row consumer.
    fn fill_nappe_for(&self, tx: usize, nappe_idx: usize, out: &mut NappeDelays) {
        self.fill_nappe_streamed_for(tx, nappe_idx, out, &mut |_, _| {});
    }

    /// Segment-major batched nappe fill (§IV-B's streaming view): the
    /// transmit square roots are evaluated once per focal point in one
    /// batched pass over the nappe's scanlines, then each scanline's
    /// receive arguments are assembled into a row and pushed through
    /// [`QuantizedPwl::eval_row_tracked`], which fetches each PWL
    /// segment's `(c1, c0)` once per contiguous element span instead of
    /// once per element. The arguments a nappe-major sweep produces drift
    /// slowly — exactly the paper's "no segment search needed" operating
    /// regime, which is also what makes the spans long and the batched
    /// walk O(segments) per row. Bit-exact with the scalar path because
    /// the row evaluator replicates the `Fixed` datapath stage for stage
    /// and the transmit term is added to each receive value in the same
    /// `tx + rx` order the scalar path uses.
    ///
    /// Each completed row is handed to `consume` while still cache-hot,
    /// letting the tile kernel overlap gather/MAC with the next row's
    /// generation.
    fn fill_nappe_streamed(
        &self,
        nappe_idx: usize,
        out: &mut NappeDelays,
        consume: &mut dyn FnMut(usize, &[f64]),
    ) {
        self.fill_nappe_streamed_for(0, nappe_idx, out, consume);
    }

    /// Transmit-indexed streamed fill. Point-source transmits batch their
    /// square roots exactly as the historical path did; plane-wave
    /// transmits replace pass 1 with the exact linear projection `n̂ · S`
    /// per focal point (no square root, no PWL — CPWC makes TABLEFREE's
    /// transmit leg free). Pass 2 (the per-element receive datapath) is
    /// identical for every transmit model.
    fn fill_nappe_streamed_for(
        &self,
        tx: usize,
        nappe_idx: usize,
        out: &mut NappeDelays,
        consume: &mut dyn FnMut(usize, &[f64]),
    ) {
        let tile = out.tile();
        let n_elements = out.n_elements();
        let spm = self.samples_per_metre;
        let bufs = out.begin_fill_scratch(nappe_idx);
        let buf = bufs.samples;
        let line_args = bufs.line_args;
        let line_vals = bufs.line_vals;
        let row_args = bufs.row_args;
        // Pass 1: all transmit terms of the nappe, batched. One tracked
        // row evaluation (or one projection per scanline) replaces
        // `scanlines` pointer walks.
        match &self.spec.transmits[tx] {
            TransmitModel::PointSource => {
                for (slot, it, ip) in tile.iter_scanlines() {
                    line_args[slot] = self.tx_alpha(VoxelIndex::new(it, ip, nappe_idx));
                }
                if self.config.exact_transmit {
                    for (v, &a) in line_vals.iter_mut().zip(line_args.iter()) {
                        *v = a.sqrt();
                    }
                } else {
                    let mut tx_hint = 0usize;
                    self.quant
                        .eval_row_tracked(&mut tx_hint, line_args, line_vals);
                }
            }
            TransmitModel::PlaneWave(pw) => {
                // The same `unit().dot(s) * spm` expression as the scalar
                // `tx_term`, so the batched path stays bit-exact.
                let n = pw.steering.unit();
                for (slot, it, ip) in tile.iter_scanlines() {
                    let s = self
                        .spec
                        .volume_grid
                        .position(VoxelIndex::new(it, ip, nappe_idx));
                    line_vals[slot] = n.dot(s) * spm;
                }
            }
        }
        // Pass 2: one receive row per scanline, segment-major.
        let mut rx_hint = 0usize;
        for (slot, it, ip) in tile.iter_scanlines() {
            let s = self
                .spec
                .volume_grid
                .position(VoxelIndex::new(it, ip, nappe_idx));
            let dz = s.z * spm;
            let dz2 = dz * dz;
            for (a, d) in row_args.iter_mut().zip(&self.elem_pos) {
                let dx = (s.x - d.x) * spm;
                let dy = (s.y - d.y) * spm;
                *a = dx * dx + dy * dy + dz2;
            }
            let range = slot * n_elements..(slot + 1) * n_elements;
            let row = &mut buf[range.clone()];
            self.quant.eval_row_tracked(&mut rx_hint, row_args, row);
            let t = line_vals[slot];
            // IEEE addition commutes bit-for-bit, so += matches the
            // scalar path's `tx + rx` exactly.
            for value in row.iter_mut() {
                *value += t;
            }
            consume(slot, &buf[range]);
        }
        // One bulk update keeps the op counter consistent with the scalar
        // path's per-evaluation increments.
        let per_voxel = n_elements as u64 + self.tx_sqrt_cost(tx);
        self.sqrt_evals
            .fetch_add(tile.scanlines() as u64 * per_voxel, Ordering::Relaxed);
    }

    /// Batched rounding: one monomorphic clamp loop per row instead of a
    /// virtual `delay_index_from` call per element.
    fn quantize_row(&self, row: &[f64], out: &mut [i32]) {
        crate::engine::quantize_row_clamped(self.echo_len, row, out);
    }

    fn supports_factored_fill(&self) -> bool {
        true
    }

    /// Receive-leg fill: pass 2 of the fused fill **without** the
    /// transmit add — each scanline's receive arguments are assembled and
    /// pushed through the tracked PWL row evaluation once, and the slab
    /// rows hold the receive square roots in samples. This is where the
    /// factorization pays: the per-element PWL evaluations (the §IV
    /// datapath cost) run once per compound frame instead of once per
    /// angle, so `sqrt_evals` grows by `scanlines · elements` here and
    /// only by the per-row transmit cost in each combine —
    /// `O(elements + N)` per voxel instead of `O(N · elements)`.
    fn fill_nappe_rx_streamed(
        &self,
        nappe_idx: usize,
        out: &mut NappeDelays,
        consume: &mut dyn FnMut(usize, &[f64]),
    ) {
        let tile = out.tile();
        let n_elements = out.n_elements();
        let spm = self.samples_per_metre;
        let bufs = out.begin_fill_scratch(nappe_idx);
        let buf = bufs.samples;
        let row_args = bufs.row_args;
        let mut rx_hint = 0usize;
        for (slot, it, ip) in tile.iter_scanlines() {
            let s = self
                .spec
                .volume_grid
                .position(VoxelIndex::new(it, ip, nappe_idx));
            let dz = s.z * spm;
            let dz2 = dz * dz;
            for (a, d) in row_args.iter_mut().zip(&self.elem_pos) {
                let dx = (s.x - d.x) * spm;
                let dy = (s.y - d.y) * spm;
                *a = dx * dx + dy * dy + dz2;
            }
            let range = slot * n_elements..(slot + 1) * n_elements;
            self.quant
                .eval_row_tracked(&mut rx_hint, row_args, &mut buf[range.clone()]);
            consume(slot, &buf[range]);
        }
        self.sqrt_evals.fetch_add(
            tile.scanlines() as u64 * n_elements as u64,
            Ordering::Relaxed,
        );
    }

    /// Transmit combine: `rx + t` with the transmit term computed once
    /// per row (point sources one PWL/exact square root, plane waves the
    /// free projection `n̂ · S`). IEEE addition commutes bit-for-bit and
    /// the tracked row evaluation is bit-exact with the scalar
    /// [`QuantizedPwl::eval`], so the combined row matches the fused
    /// [`fill_nappe_for`](DelayEngine::fill_nappe_for) row exactly. The
    /// square-root counter advances by the transmit cost only — the
    /// receive roots were already counted by the rx fill.
    fn combine_tx_row(&self, tx: usize, vox: VoxelIndex, rx_row: &[f64], out: &mut [f64]) {
        assert_eq!(rx_row.len(), out.len(), "combine row length mismatch");
        let t = self.tx_term(tx, vox);
        for (o, &rx) in out.iter_mut().zip(rx_row) {
            *o = rx + t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExactEngine;

    fn engines() -> (SystemSpec, TableFreeEngine, ExactEngine) {
        let spec = SystemSpec::tiny();
        let tf = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
        let ex = ExactEngine::new(&spec);
        (spec, tf, ex)
    }

    #[test]
    fn sample_error_bounded_by_two_deltas_plus_quantization() {
        let (spec, tf, ex) = engines();
        let bound = 2.0 * 0.25 + 2.0 * tf.quantized().quantization_error_bound() + 0.1;
        for i in 0..spec.volume_grid.voxel_count() {
            let vox = spec.volume_grid.voxel_at(i);
            for e in spec.elements.iter() {
                let err = (tf.delay_samples(vox, e) - ex.delay_samples(vox, e)).abs();
                assert!(err <= bound, "{vox} {e}: err = {err}");
            }
        }
    }

    #[test]
    fn selection_error_max_two_samples() {
        // §VI-A: "maximum absolute selection error of 2".
        let (spec, tf, ex) = engines();
        let mut max = 0i64;
        for i in 0..spec.volume_grid.voxel_count() {
            let vox = spec.volume_grid.voxel_at(i);
            for e in spec.elements.iter() {
                let d = (tf.delay_index(vox, e) - ex.delay_index(vox, e)).abs();
                max = max.max(d);
            }
        }
        assert!(max <= 2, "max selection error = {max}");
        assert!(max >= 1, "approximation should be visible at integer grain");
    }

    #[test]
    fn exact_transmit_reduces_error() {
        let spec = SystemSpec::tiny();
        let both = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
        let tx_exact = TableFreeEngine::new(
            &spec,
            TableFreeConfig {
                exact_transmit: true,
                ..TableFreeConfig::paper()
            },
        )
        .unwrap();
        let ex = ExactEngine::new(&spec);
        let (mut sum_both, mut sum_tx) = (0.0, 0.0);
        for i in (0..spec.volume_grid.voxel_count()).step_by(7) {
            let vox = spec.volume_grid.voxel_at(i);
            for e in spec.elements.iter() {
                sum_both += (both.delay_samples(vox, e) - ex.delay_samples(vox, e)).abs();
                sum_tx += (tx_exact.delay_samples(vox, e) - ex.delay_samples(vox, e)).abs();
            }
        }
        assert!(sum_tx < sum_both, "{sum_tx} !< {sum_both}");
    }

    #[test]
    fn smaller_delta_means_more_segments_and_less_error() {
        let spec = SystemSpec::tiny();
        let coarse = TableFreeEngine::new(&spec, TableFreeConfig::with_delta(0.5)).unwrap();
        let fine = TableFreeEngine::new(&spec, TableFreeConfig::with_delta(0.125)).unwrap();
        assert!(fine.segment_count() > coarse.segment_count());
        let ex = ExactEngine::new(&spec);
        let vox = VoxelIndex::new(0, 7, 3);
        let e = ElementIndex::new(7, 0);
        let ec = (coarse.delay_samples(vox, e) - ex.delay_samples(vox, e)).abs();
        let ef = (fine.delay_samples(vox, e) - ex.delay_samples(vox, e)).abs();
        assert!(ef <= ec + 0.1);
    }

    #[test]
    fn paper_scale_segment_count_near_70() {
        // §IV-B: "we found 70 segments to be needed" for δ = 0.25.
        let spec = SystemSpec::paper();
        let eng = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
        let n = eng.segment_count();
        assert!((55..=85).contains(&n), "segments = {n}");
    }

    #[test]
    fn op_counter_counts_two_sqrts_per_query() {
        let (_, tf, _) = engines();
        let before = tf.sqrt_evals();
        tf.delay_samples(VoxelIndex::new(0, 0, 0), ElementIndex::new(0, 0));
        assert_eq!(tf.sqrt_evals() - before, 2);
        let tx_exact = TableFreeEngine::new(
            &SystemSpec::tiny(),
            TableFreeConfig {
                exact_transmit: true,
                ..TableFreeConfig::paper()
            },
        )
        .unwrap();
        tx_exact.delay_samples(VoxelIndex::new(0, 0, 0), ElementIndex::new(0, 0));
        assert_eq!(tx_exact.sqrt_evals(), 1);
    }

    #[test]
    fn tracking_needs_no_search_in_nappe_order() {
        // §IV-B: transitions across segments are gradual in nappe order —
        // the pointer steps by a small constant, never searches. The
        // realistic angular resolution of the `reduced` preset (32×32
        // lines) keeps per-eval drift well below one segment; only the
        // depth advance at a nappe boundary moves a few segments at once.
        let spec = SystemSpec::reduced();
        let tf = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
        let stats =
            tf.tracking_stats_for_element(spec.elements.center_element(), ScanOrder::NappeByNappe);
        assert_eq!(stats.evals as usize, spec.volume_grid.voxel_count());
        assert!(stats.max_step <= 4, "max_step = {}", stats.max_step);
        assert!(
            stats.mean_steps() < 0.05,
            "mean_steps = {}",
            stats.mean_steps()
        );
    }

    #[test]
    fn tracking_in_scanline_order_jumps_at_restarts() {
        // The paper points out "where inefficiencies could arise if paired
        // with a scanline-by-scanline beamformer": every scanline restart
        // snaps the argument from the deepest point back to the shallowest,
        // forcing a large pointer jump (a hardware design would need a
        // reset/seek there).
        let (_spec, tf, _) = engines();
        let stats =
            tf.tracking_stats_for_element(ElementIndex::new(0, 0), ScanOrder::ScanlineByScanline);
        assert!(
            stats.max_step > 4,
            "scanline restarts should force large jumps, got {}",
            stats.max_step
        );
    }

    #[test]
    fn domain_covers_all_arguments() {
        let (spec, tf, _) = engines();
        let (lo, hi) = TableFreeEngine::sqrt_domain(&spec);
        for i in (0..spec.volume_grid.voxel_count()).step_by(3) {
            let vox = spec.volume_grid.voxel_at(i);
            for e in spec.elements.iter() {
                let a = tf.rx_alpha(vox, e);
                assert!(a >= lo && a <= hi, "α = {a} outside [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn fill_nappe_bit_exact_with_scalar_path() {
        let (spec, tf, _) = engines();
        let mut batched = NappeDelays::full(&spec);
        let mut scalar = NappeDelays::full(&spec);
        for id in 0..spec.volume_grid.n_depth() {
            tf.fill_nappe(id, &mut batched);
            scalar.fill_scalar(&tf, id);
            for (a, b) in batched.samples().iter().zip(scalar.samples()) {
                assert_eq!(a.to_bits(), b.to_bits(), "nappe {id}");
            }
        }
    }

    #[test]
    fn fill_nappe_bit_exact_with_scalar_path_exact_transmit() {
        let spec = SystemSpec::tiny();
        let tf = TableFreeEngine::new(
            &spec,
            TableFreeConfig {
                exact_transmit: true,
                ..TableFreeConfig::paper()
            },
        )
        .unwrap();
        let mut batched = NappeDelays::full(&spec);
        let mut scalar = NappeDelays::full(&spec);
        for id in [0, 7, 15] {
            tf.fill_nappe(id, &mut batched);
            scalar.fill_scalar(&tf, id);
            for (a, b) in batched.samples().iter().zip(scalar.samples()) {
                assert_eq!(a.to_bits(), b.to_bits(), "nappe {id}");
            }
        }
    }

    #[test]
    fn streamed_fill_rows_match_final_slab() {
        let (spec, tf, _) = engines();
        let mut slab = NappeDelays::full(&spec);
        let mut reference = NappeDelays::full(&spec);
        tf.fill_nappe(5, &mut reference);
        let mut seen = Vec::new();
        let mut captured = Vec::new();
        tf.fill_nappe_streamed(5, &mut slab, &mut |slot, row| {
            seen.push(slot);
            captured.extend_from_slice(row);
        });
        // Rows arrive once each, in slot order, already in final form.
        assert_eq!(seen, (0..slab.scanline_count()).collect::<Vec<_>>());
        for (a, b) in captured.iter().zip(reference.samples()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(slab, reference);
    }

    #[test]
    fn fill_nappe_counts_ops_like_scalar() {
        let spec = SystemSpec::tiny();
        let tf = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
        let mut slab = NappeDelays::full(&spec);
        tf.fill_nappe(0, &mut slab);
        // 64 scanlines × (64 rx + 1 tx) evaluations.
        assert_eq!(tf.sqrt_evals(), 64 * 65);
    }

    #[test]
    fn fill_nappe_tile_matches_full_slab() {
        let (spec, tf, _) = engines();
        let tile = crate::Tile {
            theta_start: 2,
            theta_end: 6,
            phi_start: 4,
            phi_end: 8,
        };
        let mut tile_slab = NappeDelays::for_tile(&spec, tile);
        let mut full = NappeDelays::full(&spec);
        tf.fill_nappe(9, &mut tile_slab);
        tf.fill_nappe(9, &mut full);
        for (_, it, ip) in tile_slab.scanlines() {
            for e in spec.elements.iter() {
                assert_eq!(
                    tile_slab.at(it, ip, e).to_bits(),
                    full.at(it, ip, e).to_bits()
                );
            }
        }
    }

    #[test]
    fn plane_wave_fill_bit_exact_with_scalar_path() {
        let spec = SystemSpec::tiny()
            .with_transmits(TransmitModel::plane_wave_fan(4, usbf_geometry::deg(10.0)));
        let tf = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
        assert_eq!(tf.transmit_count(), 4);
        for tx in 0..4 {
            let mut batched = NappeDelays::full(&spec);
            let mut scalar = NappeDelays::full(&spec);
            for id in [0, 8, 15] {
                tf.fill_nappe_for(tx, id, &mut batched);
                scalar.fill_scalar_for(&tf, tx, id);
                for (a, b) in batched.samples().iter().zip(scalar.samples()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "tx {tx} nappe {id}");
                }
            }
        }
    }

    #[test]
    fn plane_wave_transmit_costs_no_square_roots() {
        // CPWC's transmit leg is a linear projection: only the receive
        // roots are counted, scalar and batched alike.
        let spec = SystemSpec::tiny().with_transmits(vec![TransmitModel::plane_wave(0.1, 0.0)]);
        let tf = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
        tf.delay_samples_for(0, VoxelIndex::new(0, 0, 0), ElementIndex::new(0, 0));
        assert_eq!(tf.sqrt_evals(), 1); // receive root only
        let mut slab = NappeDelays::full(&spec);
        tf.fill_nappe_for(0, 0, &mut slab);
        // 64 scanlines × 64 rx evaluations, no tx term.
        assert_eq!(tf.sqrt_evals(), 1 + 64 * 64);
    }

    #[test]
    fn factored_fill_bit_identical_to_fused_fill() {
        // Mixed sequence: a point source and plane waves, so the combine
        // exercises both transmit models.
        let spec = SystemSpec::tiny().with_transmits(vec![
            TransmitModel::PointSource,
            TransmitModel::plane_wave(usbf_geometry::deg(6.0), 0.0),
            TransmitModel::plane_wave(usbf_geometry::deg(-6.0), 0.0),
        ]);
        let tf = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
        assert!(tf.supports_factored_fill());
        let mut rx = NappeDelays::full(&spec);
        let mut fused = NappeDelays::full(&spec);
        let mut combined = vec![0.0; rx.n_elements()];
        for id in [0, 7, 15] {
            tf.fill_nappe_rx(id, &mut rx);
            for tx in 0..3 {
                tf.fill_nappe_for(tx, id, &mut fused);
                for (slot, it, ip) in fused.scanlines() {
                    tf.combine_tx_row(tx, VoxelIndex::new(it, ip, id), rx.row(slot), &mut combined);
                    for (a, b) in combined.iter().zip(fused.row(slot)) {
                        assert_eq!(a.to_bits(), b.to_bits(), "tx {tx} nappe {id} slot {slot}");
                    }
                }
            }
        }
    }

    #[test]
    fn factored_fill_counts_rx_roots_once() {
        // The factorization's whole point: one rx root per element per
        // focal point per *frame*, plus one tx root per focal point per
        // point-source transmit — not per (transmit, element).
        let spec = SystemSpec::tiny().with_transmits(vec![
            TransmitModel::PointSource,
            TransmitModel::plane_wave(usbf_geometry::deg(5.0), 0.0),
        ]);
        let tf = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
        let mut rx = NappeDelays::full(&spec);
        let mut combined = vec![0.0; rx.n_elements()];
        tf.fill_nappe_rx(0, &mut rx);
        assert_eq!(tf.sqrt_evals(), 64 * 64); // 64 scanlines × 64 elements
        for (slot, it, ip) in rx.scanlines().collect::<Vec<_>>() {
            for tx in 0..2 {
                tf.combine_tx_row(tx, VoxelIndex::new(it, ip, 0), rx.row(slot), &mut combined);
            }
        }
        // + one tx root per scanline for the point source, none for the
        // plane wave: O(elements + N) per voxel, not O(N·elements).
        assert_eq!(tf.sqrt_evals(), 64 * 64 + 64);
    }

    #[test]
    fn engine_metadata() {
        let (spec, tf, _) = engines();
        assert_eq!(tf.name(), "TABLEFREE");
        assert_eq!(tf.echo_buffer_len(), spec.echo_buffer_len());
        assert_eq!(TableFreeEngine::ops_per_element(), (2, 1));
        assert_eq!(tf.config().delta, 0.25);
    }
}
