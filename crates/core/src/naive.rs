//! The §II-B baseline: a fully precomputed per-(voxel, element) table.

use crate::{DelayEngine, EngineError, ExactEngine, NappeDelays};
use usbf_geometry::{ElementIndex, SystemSpec, VoxelIndex};

/// The naive architecture the paper rules out: every delay index
/// precomputed and stored. Each entry is a 16-bit sample index (13 bits
/// would do; memories are byte-addressed).
///
/// For Table I this is `128·128·1000 × 100·100 ≈ 164 × 10⁹` entries —
/// ≈328 GB — which is why construction takes an explicit memory budget and
/// fails loudly at paper scale:
///
/// ```
/// use usbf_core::{NaiveTableEngine, EngineError};
/// use usbf_geometry::SystemSpec;
/// let err = NaiveTableEngine::build(&SystemSpec::paper(), 1 << 30).unwrap_err();
/// assert!(matches!(err, EngineError::TableTooLarge { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct NaiveTableEngine {
    table: Vec<u16>,
    elements_per_voxel: usize,
    /// Table entries per transmit: `voxel_count × elements_per_voxel`.
    transmit_stride: usize,
    n_transmits: usize,
    echo_len: usize,
    n_phi: usize,
    n_depth: usize,
    nx: usize,
}

impl NaiveTableEngine {
    /// Bytes the table would need for a given spec: one full
    /// per-(voxel, element) table **per transmit** — multi-transmit frames
    /// multiply the §II-B storage wall.
    pub fn required_bytes(spec: &SystemSpec) -> u64 {
        spec.naive_table_entries() * 2 * spec.n_transmits() as u64
    }

    /// Precomputes the full table, refusing if it exceeds `limit_bytes`.
    ///
    /// # Errors
    ///
    /// [`EngineError::TableTooLarge`] when the table exceeds the budget.
    pub fn build(spec: &SystemSpec, limit_bytes: u64) -> Result<Self, EngineError> {
        let required = Self::required_bytes(spec);
        if required > limit_bytes {
            return Err(EngineError::TableTooLarge {
                required_bytes: required,
                limit_bytes,
            });
        }
        let exact = ExactEngine::new(spec);
        let echo_len = spec.echo_buffer_len();
        let v = &spec.volume_grid;
        let el = &spec.elements;
        let elements_per_voxel = el.count();
        let transmit_stride = v.voxel_count() * elements_per_voxel;
        let n_transmits = spec.n_transmits();
        let mut table = vec![0u16; transmit_stride * n_transmits];
        for tx in 0..n_transmits {
            let base = tx * transmit_stride;
            for i in 0..v.voxel_count() {
                let vox = v.voxel_at(i);
                for (j, e) in el.iter().enumerate() {
                    table[base + i * elements_per_voxel + j] =
                        exact.delay_index_for(tx, vox, e) as u16;
                }
            }
        }
        Ok(NaiveTableEngine {
            table,
            elements_per_voxel,
            transmit_stride,
            n_transmits,
            echo_len,
            n_phi: v.n_phi(),
            n_depth: v.n_depth(),
            nx: el.nx(),
        })
    }

    /// Actual storage used, in bytes.
    pub fn storage_bytes(&self) -> u64 {
        self.table.len() as u64 * 2
    }
}

impl DelayEngine for NaiveTableEngine {
    fn name(&self) -> &'static str {
        "NAIVE-TABLE"
    }

    fn delay_samples(&self, vox: VoxelIndex, e: ElementIndex) -> f64 {
        self.delay_index(vox, e) as f64
    }

    fn transmit_count(&self) -> usize {
        self.n_transmits
    }

    fn delay_samples_for(&self, tx: usize, vox: VoxelIndex, e: ElementIndex) -> f64 {
        self.delay_index_for(tx, vox, e) as f64
    }

    fn delay_index(&self, vox: VoxelIndex, e: ElementIndex) -> i64 {
        self.delay_index_for(0, vox, e)
    }

    fn delay_index_for(&self, tx: usize, vox: VoxelIndex, e: ElementIndex) -> i64 {
        let vi = (vox.it * self.n_phi + vox.ip) * self.n_depth + vox.id;
        let ei = e.iy * self.nx + e.ix;
        self.table[tx * self.transmit_stride + vi * self.elements_per_voxel + ei] as i64
    }

    fn echo_buffer_len(&self) -> usize {
        self.echo_len
    }

    /// Batched nappe fill for transmit 0: see
    /// [`NaiveTableEngine::fill_nappe_for`].
    fn fill_nappe(&self, nappe_idx: usize, out: &mut NappeDelays) {
        self.fill_nappe_for(0, nappe_idx, out);
    }

    /// Batched nappe fill: each scanline's element block is one contiguous
    /// run of the precomputed table (offset into transmit `tx`'s stride),
    /// widened `u16 → f64` in place of per-query indexed lookups.
    fn fill_nappe_for(&self, tx: usize, nappe_idx: usize, out: &mut NappeDelays) {
        let tile = out.tile();
        let n_elements = out.n_elements();
        let (n_phi, n_depth) = (self.n_phi, self.n_depth);
        let base = tx * self.transmit_stride;
        let buf = out.begin_fill(nappe_idx);
        for (slot, it, ip) in tile.iter_scanlines() {
            let vi = (it * n_phi + ip) * n_depth + nappe_idx;
            let src = &self.table
                [base + vi * self.elements_per_voxel..base + (vi + 1) * self.elements_per_voxel];
            let row = &mut buf[slot * n_elements..(slot + 1) * n_elements];
            for (value, &raw) in row.iter_mut().zip(src) {
                *value = raw as i64 as f64;
            }
        }
    }

    /// Batched rounding. The stored indices are already integral and
    /// in-window, but the arithmetic must stay the shared rounding stage
    /// so the table path cannot drift from `delay_index_from`.
    fn quantize_row(&self, row: &[f64], out: &mut [i32]) {
        crate::engine::quantize_row_clamped(self.echo_len, row, out);
    }

    fn supports_factored_fill(&self) -> bool {
        true
    }

    /// The naive table has **no separable receive leg** — it stores the
    /// final rounded index per `(transmit, voxel, element)`, with the two
    /// legs fused at precompute time. The rx pass therefore only stamps
    /// the slab's nappe marker and streams the (unspecified) rows;
    /// [`NaiveTableEngine::combine_tx_row`] produces each transmit's row
    /// entirely from the table. Supporting the family anyway keeps the
    /// compound kernel on one code path for all engines, at identical
    /// work to the fused fill.
    fn fill_nappe_rx_streamed(
        &self,
        nappe_idx: usize,
        out: &mut NappeDelays,
        consume: &mut dyn FnMut(usize, &[f64]),
    ) {
        let n_elements = out.n_elements();
        let scanlines = out.scanline_count();
        let buf = out.begin_fill(nappe_idx);
        for slot in 0..scanlines {
            consume(slot, &buf[slot * n_elements..(slot + 1) * n_elements]);
        }
    }

    /// Transmit combine: the fused fill's contiguous `u16 → f64` table-row
    /// widen for `(tx, vox)`, ignoring the rx row.
    fn combine_tx_row(&self, tx: usize, vox: VoxelIndex, rx_row: &[f64], out: &mut [f64]) {
        assert_eq!(rx_row.len(), out.len(), "combine row length mismatch");
        let vi = (vox.it * self.n_phi + vox.ip) * self.n_depth + vox.id;
        let base = tx * self.transmit_stride;
        let src = &self.table
            [base + vi * self.elements_per_voxel..base + (vi + 1) * self.elements_per_voxel];
        for (value, &raw) in out.iter_mut().zip(src) {
            *value = raw as i64 as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_exact_indices_everywhere() {
        let spec = SystemSpec::tiny();
        let naive = NaiveTableEngine::build(&spec, u64::MAX).unwrap();
        let exact = ExactEngine::new(&spec);
        for i in 0..spec.volume_grid.voxel_count() {
            let vox = spec.volume_grid.voxel_at(i);
            for e in spec.elements.iter() {
                assert_eq!(naive.delay_index(vox, e), exact.delay_index(vox, e));
            }
        }
    }

    #[test]
    fn paper_scale_is_infeasible() {
        // §II-B: "obviously impractical to pre-compute, due to the storage
        // requirements".
        let required = NaiveTableEngine::required_bytes(&SystemSpec::paper());
        assert_eq!(required, 163_840_000_000 * 2);
        assert!(required > 300_000_000_000u64);
    }

    #[test]
    fn storage_accounting() {
        let spec = SystemSpec::tiny();
        let naive = NaiveTableEngine::build(&spec, u64::MAX).unwrap();
        assert_eq!(
            naive.storage_bytes(),
            NaiveTableEngine::required_bytes(&spec)
        );
        // tiny: 8·8·16 voxels × 64 elements × 2 B = 131 072 B.
        assert_eq!(naive.storage_bytes(), 131_072);
    }

    #[test]
    fn budget_is_enforced_exactly() {
        let spec = SystemSpec::tiny();
        let required = NaiveTableEngine::required_bytes(&spec);
        assert!(NaiveTableEngine::build(&spec, required).is_ok());
        let err = NaiveTableEngine::build(&spec, required - 1).unwrap_err();
        match err {
            EngineError::TableTooLarge {
                required_bytes,
                limit_bytes,
            } => {
                assert_eq!(required_bytes, required);
                assert_eq!(limit_bytes, required - 1);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn multi_transmit_table_matches_exact_per_transmit() {
        let spec = SystemSpec::tiny().with_transmits(usbf_geometry::TransmitModel::plane_wave_fan(
            3,
            usbf_geometry::deg(8.0),
        ));
        let naive = NaiveTableEngine::build(&spec, u64::MAX).unwrap();
        let exact = ExactEngine::new(&spec);
        assert_eq!(naive.transmit_count(), 3);
        for tx in 0..3 {
            for i in (0..spec.volume_grid.voxel_count()).step_by(5) {
                let vox = spec.volume_grid.voxel_at(i);
                for e in spec.elements.iter() {
                    assert_eq!(
                        naive.delay_index_for(tx, vox, e),
                        exact.delay_index_for(tx, vox, e)
                    );
                }
            }
            let mut batched = NappeDelays::full(&spec);
            let mut scalar = NappeDelays::full(&spec);
            naive.fill_nappe_for(tx, 7, &mut batched);
            scalar.fill_scalar_for(&naive, tx, 7);
            assert_eq!(batched, scalar);
        }
    }

    #[test]
    fn multi_transmit_multiplies_storage() {
        let single = SystemSpec::tiny();
        let compound = SystemSpec::tiny().with_transmits(
            usbf_geometry::TransmitModel::plane_wave_fan(4, usbf_geometry::deg(10.0)),
        );
        assert_eq!(
            NaiveTableEngine::required_bytes(&compound),
            4 * NaiveTableEngine::required_bytes(&single)
        );
        let naive = NaiveTableEngine::build(&compound, u64::MAX).unwrap();
        assert_eq!(naive.storage_bytes(), 4 * 131_072);
    }

    #[test]
    fn factored_fill_bit_identical_to_fused_fill() {
        let spec = SystemSpec::tiny().with_transmits(usbf_geometry::TransmitModel::plane_wave_fan(
            3,
            usbf_geometry::deg(9.0),
        ));
        let naive = NaiveTableEngine::build(&spec, u64::MAX).unwrap();
        assert!(naive.supports_factored_fill());
        let mut rx = NappeDelays::full(&spec);
        let mut fused = NappeDelays::full(&spec);
        let mut combined = vec![0.0; rx.n_elements()];
        for id in [0, 8, 15] {
            let mut delivered = 0;
            naive.fill_nappe_rx_streamed(id, &mut rx, &mut |_, _| delivered += 1);
            assert_eq!(delivered, rx.scanline_count());
            for tx in 0..3 {
                naive.fill_nappe_for(tx, id, &mut fused);
                for (slot, it, ip) in fused.scanlines() {
                    naive.combine_tx_row(
                        tx,
                        VoxelIndex::new(it, ip, id),
                        rx.row(slot),
                        &mut combined,
                    );
                    for (a, b) in combined.iter().zip(fused.row(slot)) {
                        assert_eq!(a.to_bits(), b.to_bits(), "tx {tx} nappe {id} slot {slot}");
                    }
                }
            }
        }
    }

    #[test]
    fn name_and_buffer() {
        let spec = SystemSpec::tiny();
        let naive = NaiveTableEngine::build(&spec, u64::MAX).unwrap();
        assert_eq!(naive.name(), "NAIVE-TABLE");
        assert_eq!(naive.echo_buffer_len(), spec.echo_buffer_len());
    }
}
