//! The Fig. 4 control schedule: who computes what, when.
//!
//! The paper's TABLESTEER block description implies a static work split:
//! "the system can be arranged so that each block keeps using the same
//! correction coefficients through each insonification, entirely removing
//! the coefficients from the critical timing path", and "the delay values
//! loaded in each [BRAM] should be staggered rather than consecutive, so
//! that a beamformer trying to fetch delay samples for consecutive nappes
//! can retrieve them from the 128 BRAMs in parallel."
//!
//! [`NappeSchedule`] makes that arrangement explicit: each block owns one
//! `x_per_cycle × y_per_cycle` tile of the steering fan (its correction
//! registers never change within an insonification) and streams every
//! element's reference delay for the active nappe from its own staggered
//! BRAM copy. Verifying the schedule covers each (scanline, element) pair
//! exactly once per nappe is what turns Fig. 4 from a picture into an
//! architecture.

use crate::SteerBlockSpec;
use usbf_geometry::SystemSpec;

/// A static assignment of steering-fan tiles to delay-computation blocks.
///
/// ```
/// use usbf_core::NappeSchedule;
/// use usbf_geometry::SystemSpec;
///
/// // The paper's Fig. 4 layout: 128 blocks, each owning an 8 × 16 tile
/// // of the 128 × 128 fan and streaming one nappe of delays per step.
/// let schedule = NappeSchedule::paper();
/// assert_eq!(schedule.n_blocks(), 128);
/// assert_eq!(schedule.tile_of(0).scanlines(), 128);
///
/// // Host-side: fit a schedule to any spec with enough tiles to keep a
/// // worker pool busy (the parallel work list of `beamform_volume`).
/// let fitted = NappeSchedule::fitted(&SystemSpec::tiny(), 4);
/// assert_eq!(fitted.tiles().len(), fitted.n_blocks());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NappeSchedule {
    block: SteerBlockSpec,
    n_theta: usize,
    n_phi: usize,
    elements: usize,
}

/// One block's tile of the steering fan: half-open index ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// First θ line of the tile.
    pub theta_start: usize,
    /// One past the last θ line.
    pub theta_end: usize,
    /// First φ line.
    pub phi_start: usize,
    /// One past the last φ line.
    pub phi_end: usize,
}

impl Tile {
    /// Steered lines of sight in this tile.
    pub fn scanlines(&self) -> usize {
        (self.theta_end - self.theta_start) * (self.phi_end - self.phi_start)
    }

    /// Whether a scanline belongs to this tile.
    pub fn contains(&self, it: usize, ip: usize) -> bool {
        it >= self.theta_start && it < self.theta_end && ip >= self.phi_start && ip < self.phi_end
    }

    /// Row slot of scanline `(it, ip)` in the tile's canonical order
    /// (θ-major, φ-inner) — the layout of every per-nappe delay slab.
    ///
    /// # Panics
    ///
    /// Panics if the scanline is outside the tile.
    #[inline]
    pub fn slot_of(&self, it: usize, ip: usize) -> usize {
        assert!(
            self.contains(it, ip),
            "scanline ({it},{ip}) outside tile {self:?}"
        );
        (it - self.theta_start) * (self.phi_end - self.phi_start) + (ip - self.phi_start)
    }

    /// Inverse of [`Tile::slot_of`]: the scanline `(it, ip)` stored at row
    /// `slot` of the tile's canonical order — how a streamed-row consumer
    /// recovers the focal direction of a delivered slab row.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `slot` is outside the tile.
    #[inline]
    pub fn scanline_at(&self, slot: usize) -> (usize, usize) {
        debug_assert!(slot < self.scanlines(), "slot {slot} outside tile {self:?}");
        let phi_w = self.phi_end - self.phi_start;
        (
            self.theta_start + slot / phi_w,
            self.phi_start + slot % phi_w,
        )
    }

    /// Iterates `(slot, it, ip)` over the tile in canonical slot order —
    /// the single source of truth for slab row enumeration.
    pub fn iter_scanlines(self) -> impl Iterator<Item = (usize, usize, usize)> {
        let phi_w = self.phi_end - self.phi_start;
        (0..self.scanlines())
            .map(move |s| (s, self.theta_start + s / phi_w, self.phi_start + s % phi_w))
    }
}

impl NappeSchedule {
    /// Builds the schedule for a spec and block structure.
    ///
    /// # Panics
    ///
    /// Panics if the steering fan does not tile exactly into
    /// `x_per_cycle × y_per_cycle` blocks of `n_blocks` (the paper's
    /// 128 × 128 fan tiles into 128 blocks of 8 × 16).
    pub fn new(spec: &SystemSpec, block: SteerBlockSpec) -> Self {
        let v = &spec.volume_grid;
        assert!(
            v.n_theta().is_multiple_of(block.x_per_cycle)
                && v.n_phi().is_multiple_of(block.y_per_cycle),
            "fan {}x{} must tile into {}x{} blocks",
            v.n_theta(),
            v.n_phi(),
            block.x_per_cycle,
            block.y_per_cycle
        );
        let tiles = (v.n_theta() / block.x_per_cycle) * (v.n_phi() / block.y_per_cycle);
        assert!(
            tiles == block.n_blocks,
            "{tiles} tiles need exactly {} blocks, got {}",
            tiles,
            block.n_blocks
        );
        NappeSchedule {
            block,
            n_theta: v.n_theta(),
            n_phi: v.n_phi(),
            elements: spec.elements.count(),
        }
    }

    /// The paper's schedule: 128 blocks × (8 × 16) tiles over the
    /// 128 × 128 fan.
    pub fn paper() -> Self {
        NappeSchedule::new(&SystemSpec::paper(), SteerBlockSpec::paper())
    }

    /// A schedule fitted to any spec: picks the largest tile shape (by
    /// scanlines per tile) whose grid still yields at least
    /// `target_tiles` blocks, among the divisors of the fan dimensions.
    /// Falls back to 1 × 1 tiles when the whole fan has fewer scanlines
    /// than `target_tiles`. Deterministic for a given `(spec, target)`.
    pub fn fitted(spec: &SystemSpec, target_tiles: usize) -> Self {
        let v = &spec.volume_grid;
        let (nt, np) = (v.n_theta(), v.n_phi());
        let target = target_tiles.max(1);
        let divisors = |n: usize| (1..=n).filter(move |d| n.is_multiple_of(*d));
        let mut best: Option<(usize, usize)> = None;
        for dx in divisors(nt) {
            for dy in divisors(np) {
                if (nt / dx) * (np / dy) < target {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bx, by)) => {
                        let (area, barea) = (dx * dy, bx * by);
                        area > barea || (area == barea && dx.abs_diff(dy) < bx.abs_diff(by))
                    }
                };
                if better {
                    best = Some((dx, dy));
                }
            }
        }
        let (dx, dy) = best.unwrap_or((1, 1));
        let block = SteerBlockSpec {
            n_blocks: (nt / dx) * (np / dy),
            x_per_cycle: dx,
            y_per_cycle: dy,
        };
        NappeSchedule::new(spec, block)
    }

    /// A schedule sized for host-side parallel beamforming: enough tiles
    /// to keep every pool worker busy with headroom for load balancing.
    ///
    /// Sizes from [`usbf_par::default_threads`] — the same sizing the
    /// global thread pool uses — so a `USBF_POOL_THREADS` override
    /// resizes the tile grid and the worker count together instead of
    /// leaving the schedule stuck on the raw core count.
    pub fn for_host(spec: &SystemSpec) -> Self {
        Self::fitted(spec, usbf_par::default_threads() * 4)
    }

    /// Number of blocks (= tiles) in the schedule.
    pub fn n_blocks(&self) -> usize {
        self.block.n_blocks
    }

    /// All tiles in block order — the parallel work list of a batched
    /// beamformer.
    pub fn tiles(&self) -> Vec<Tile> {
        (0..self.block.n_blocks).map(|b| self.tile_of(b)).collect()
    }

    /// The underlying block structure.
    pub fn block_spec(&self) -> SteerBlockSpec {
        self.block
    }

    /// The fan tile owned by block `b` (tiles laid out φ-major, matching
    /// the nappe traversal's inner order).
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn tile_of(&self, b: usize) -> Tile {
        assert!(b < self.block.n_blocks, "block {b} out of range");
        let tiles_phi = self.n_phi / self.block.y_per_cycle;
        let t_theta = b / tiles_phi;
        let t_phi = b % tiles_phi;
        Tile {
            theta_start: t_theta * self.block.x_per_cycle,
            theta_end: (t_theta + 1) * self.block.x_per_cycle,
            phi_start: t_phi * self.block.y_per_cycle,
            phi_end: (t_phi + 1) * self.block.y_per_cycle,
        }
    }

    /// The block that computes scanline `(it, ip)`.
    ///
    /// # Panics
    ///
    /// Panics if the scanline is out of range.
    pub fn block_of(&self, it: usize, ip: usize) -> usize {
        assert!(
            it < self.n_theta && ip < self.n_phi,
            "scanline out of range"
        );
        let tiles_phi = self.n_phi / self.block.y_per_cycle;
        (it / self.block.x_per_cycle) * tiles_phi + ip / self.block.y_per_cycle
    }

    /// Cycles each block needs per nappe: one per element (every block
    /// walks the whole element set, applying its fixed tile of
    /// corrections).
    pub fn cycles_per_nappe(&self) -> usize {
        self.elements
    }

    /// Cycles per frame (all nappes).
    pub fn cycles_per_frame(&self, n_depth: usize) -> u64 {
        self.cycles_per_nappe() as u64 * n_depth as u64
    }

    /// Ideal frame rate at a clock (no overhead): the cross-check against
    /// the throughput arithmetic of §V-B — 200 MHz / (10⁴ × 10³ cycles) =
    /// 20 volumes/s.
    pub fn ideal_frame_rate(&self, clock_hz: f64, n_depth: usize) -> f64 {
        clock_hz / self.cycles_per_frame(n_depth) as f64
    }

    /// Staggered BRAM start offset for block `b`: block `b` begins its
    /// element walk at element `b·(elements/blocks)`, so at any instant
    /// the 128 blocks read 128 *different* addresses and a refill engine
    /// can stream nappes into all banks in parallel.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn stagger_offset(&self, b: usize) -> usize {
        assert!(b < self.block.n_blocks, "block {b} out of range");
        b * (self.elements / self.block.n_blocks)
    }

    /// The element index block `b` reads at cycle `t` of a nappe.
    pub fn element_at_cycle(&self, b: usize, t: usize) -> usize {
        (self.stagger_offset(b) + t) % self.elements
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn scanline_at_inverts_slot_of() {
        let tile = Tile {
            theta_start: 2,
            theta_end: 6,
            phi_start: 3,
            phi_end: 8,
        };
        for (slot, it, ip) in tile.iter_scanlines() {
            assert_eq!(tile.scanline_at(slot), (it, ip));
            assert_eq!(tile.slot_of(it, ip), slot);
        }
    }

    #[test]
    fn paper_schedule_has_128_tiles_of_128_scanlines() {
        let s = NappeSchedule::paper();
        for b in 0..128 {
            assert_eq!(s.tile_of(b).scanlines(), 128);
        }
    }

    #[test]
    fn tiles_partition_the_fan_exactly() {
        let s = NappeSchedule::paper();
        let mut seen = vec![false; 128 * 128];
        for b in 0..128 {
            let t = s.tile_of(b);
            for it in t.theta_start..t.theta_end {
                for ip in t.phi_start..t.phi_end {
                    let idx = it * 128 + ip;
                    assert!(!seen[idx], "scanline ({it},{ip}) covered twice");
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "every scanline covered");
    }

    #[test]
    fn block_of_inverts_tile_of() {
        let s = NappeSchedule::paper();
        for b in [0usize, 1, 17, 64, 127] {
            let t = s.tile_of(b);
            assert!(t.contains(t.theta_start, t.phi_start));
            assert_eq!(s.block_of(t.theta_start, t.phi_start), b);
            assert_eq!(s.block_of(t.theta_end - 1, t.phi_end - 1), b);
        }
    }

    #[test]
    fn frame_rate_crosscheck() {
        // 200 MHz / (10 000 elements × 1 000 nappes) = 20 volumes/s — the
        // same number the §V-B throughput arithmetic gives.
        let s = NappeSchedule::paper();
        assert_eq!(s.cycles_per_nappe(), 10_000);
        assert_eq!(s.cycles_per_frame(1000), 10_000_000);
        assert!((s.ideal_frame_rate(200.0e6, 1000) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn stagger_gives_distinct_concurrent_addresses() {
        let s = NappeSchedule::paper();
        for t in [0usize, 1, 999, 5000] {
            let addrs: HashSet<usize> = (0..128).map(|b| s.element_at_cycle(b, t)).collect();
            assert_eq!(
                addrs.len(),
                128,
                "all blocks read distinct addresses at cycle {t}"
            );
        }
    }

    #[test]
    fn element_walk_covers_every_element() {
        let s = NappeSchedule::paper();
        let seen: HashSet<usize> = (0..10_000).map(|t| s.element_at_cycle(7, t)).collect();
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn fitted_partitions_any_fan() {
        for (spec, target) in [
            (SystemSpec::tiny(), 4),
            (SystemSpec::tiny(), 16),
            (SystemSpec::reduced(), 7),
            (SystemSpec::figure3(), 3),
        ] {
            let s = NappeSchedule::fitted(&spec, target);
            assert!(
                s.n_blocks() >= target,
                "{} blocks < target {target}",
                s.n_blocks()
            );
            let v = &spec.volume_grid;
            let mut seen = vec![false; v.scanline_count()];
            for t in s.tiles() {
                for it in t.theta_start..t.theta_end {
                    for ip in t.phi_start..t.phi_end {
                        let i = it * v.n_phi() + ip;
                        assert!(!seen[i], "({it},{ip}) covered twice");
                        seen[i] = true;
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "every scanline covered");
        }
    }

    #[test]
    fn fitted_prefers_large_tiles() {
        // 8×8 fan, 4 tiles: the best split is 2×2 tiles of 4×8... no —
        // largest tile area with ≥4 tiles is 4×4 (16 scanlines, 4 tiles).
        let s = NappeSchedule::fitted(&SystemSpec::tiny(), 4);
        assert_eq!(s.n_blocks(), 4);
        assert_eq!(s.tiles()[0].scanlines(), 16);
    }

    #[test]
    fn fitted_with_oversized_target_degrades_to_unit_tiles() {
        let s = NappeSchedule::fitted(&SystemSpec::tiny(), 1_000_000);
        assert_eq!(s.n_blocks(), 64);
        assert_eq!(s.tiles()[0].scanlines(), 1);
    }

    #[test]
    fn fitted_matches_paper_layout_at_paper_scale() {
        // With the paper's own 128-block target the fitted schedule tiles
        // the 128×128 fan into 128 tiles of 128 scanlines, same as Fig. 4.
        let s = NappeSchedule::fitted(&SystemSpec::paper(), 128);
        assert_eq!(s.n_blocks(), 128);
        assert_eq!(s.tiles()[0].scanlines(), 128);
    }

    #[test]
    fn for_host_yields_a_valid_schedule() {
        let s = NappeSchedule::for_host(&SystemSpec::tiny());
        assert!(s.n_blocks() >= 1);
        assert_eq!(s.tiles().len(), s.n_blocks());
    }

    #[test]
    #[should_panic(expected = "must tile")]
    fn non_tiling_fan_rejected() {
        // tiny spec: 8×8 fan cannot tile into 8×16 blocks.
        NappeSchedule::new(&SystemSpec::tiny(), SteerBlockSpec::paper());
    }

    #[test]
    fn reduced_spec_tiles_with_adjusted_blocks() {
        // 32×32 fan with 8×16 tiles → 4×2 = 8 blocks.
        let spec = SystemSpec::reduced();
        let block = SteerBlockSpec {
            n_blocks: 8,
            ..SteerBlockSpec::paper()
        };
        let s = NappeSchedule::new(&spec, block);
        assert_eq!(s.cycles_per_nappe(), 1024);
        assert_eq!(s.tile_of(7).scanlines(), 128);
    }
}
