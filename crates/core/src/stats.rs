//! Engine-accuracy sweeps: the §VI-A comparison methodology.
//!
//! The paper quantizes both the approximate and the exact delay "to an
//! integer selection index prior to comparison" and reports the mean and
//! maximum absolute *selection* error. [`SelectionErrorStats`] reproduces
//! exactly that; [`SampleErrorStats`] compares the pre-rounding fractional
//! delays (useful to separate approximation error from index rounding).

use crate::DelayEngine;
use usbf_geometry::{ElementIndex, SystemSpec, VoxelIndex};

/// Integer index-selection error statistics (the paper's headline
/// accuracy metric: TABLEFREE mean ≈ 0.2489, max 2).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionErrorStats {
    /// Pairs compared.
    pub count: u64,
    /// Mean |index difference|.
    pub mean_abs: f64,
    /// Maximum |index difference|.
    pub max_abs: i64,
    /// Histogram of |index difference| values 0, 1, 2, … (last bucket
    /// collects the tail).
    pub histogram: Vec<u64>,
}

impl SelectionErrorStats {
    /// Fraction of queries with a non-zero selection error.
    pub fn flip_fraction(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        1.0 - self.histogram[0] as f64 / self.count as f64
    }
}

/// Fractional-sample error statistics (pre-rounding).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleErrorStats {
    /// Pairs compared.
    pub count: u64,
    /// Mean |error| in samples.
    pub mean_abs: f64,
    /// Max |error| in samples.
    pub max_abs: f64,
}

fn strided(n: usize, stride: usize) -> impl Iterator<Item = usize> {
    assert!(stride > 0, "stride must be nonzero");
    (0..n).step_by(stride)
}

/// Compares integer delay indices of `engine` against `exact` over a
/// strided grid of (voxel, element) pairs.
///
/// # Panics
///
/// Panics if a stride is zero.
pub fn selection_error(
    engine: &dyn DelayEngine,
    exact: &dyn DelayEngine,
    spec: &SystemSpec,
    voxel_stride: usize,
    element_stride: usize,
) -> SelectionErrorStats {
    const HIST_BUCKETS: usize = 8;
    let mut histogram = vec![0u64; HIST_BUCKETS];
    let mut count = 0u64;
    let mut sum = 0u64;
    let mut max = 0i64;
    let v = &spec.volume_grid;
    let el = &spec.elements;
    for vi in strided(v.voxel_count(), voxel_stride) {
        let vox: VoxelIndex = v.voxel_at(vi);
        for ei in strided(el.count(), element_stride) {
            let e: ElementIndex = el.element_at(ei);
            let d = (engine.delay_index(vox, e) - exact.delay_index(vox, e)).abs();
            count += 1;
            sum += d as u64;
            max = max.max(d);
            let bucket = (d as usize).min(HIST_BUCKETS - 1);
            histogram[bucket] += 1;
        }
    }
    SelectionErrorStats {
        count,
        mean_abs: if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        },
        max_abs: max,
        histogram,
    }
}

/// Compares fractional delays of `engine` against `exact` over a strided
/// grid.
///
/// # Panics
///
/// Panics if a stride is zero.
pub fn sample_error(
    engine: &dyn DelayEngine,
    exact: &dyn DelayEngine,
    spec: &SystemSpec,
    voxel_stride: usize,
    element_stride: usize,
) -> SampleErrorStats {
    let mut count = 0u64;
    let mut sum = 0.0f64;
    let mut max = 0.0f64;
    let v = &spec.volume_grid;
    let el = &spec.elements;
    for vi in strided(v.voxel_count(), voxel_stride) {
        let vox = v.voxel_at(vi);
        for ei in strided(el.count(), element_stride) {
            let e = el.element_at(ei);
            let d = (engine.delay_samples(vox, e) - exact.delay_samples(vox, e)).abs();
            count += 1;
            sum += d;
            max = max.max(d);
        }
    }
    SampleErrorStats {
        count,
        mean_abs: if count == 0 { 0.0 } else { sum / count as f64 },
        max_abs: max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        ExactEngine, TableFreeConfig, TableFreeEngine, TableSteerConfig, TableSteerEngine,
    };

    #[test]
    fn exact_vs_exact_is_zero() {
        let spec = SystemSpec::tiny();
        let ex = ExactEngine::new(&spec);
        let s = selection_error(&ex, &ex, &spec, 3, 2);
        assert_eq!(s.max_abs, 0);
        assert_eq!(s.mean_abs, 0.0);
        assert_eq!(s.flip_fraction(), 0.0);
        let f = sample_error(&ex, &ex, &spec, 3, 2);
        assert_eq!(f.max_abs, 0.0);
    }

    #[test]
    fn tablefree_selection_error_matches_paper_shape() {
        // §VI-A: mean ≈ 0.2489, max 2 (full scale); same regime at tiny
        // scale.
        let spec = SystemSpec::tiny();
        let tf = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
        let ex = ExactEngine::new(&spec);
        let s = selection_error(&tf, &ex, &spec, 1, 1);
        assert!(s.max_abs <= 2, "max = {}", s.max_abs);
        assert!(
            s.mean_abs > 0.05 && s.mean_abs < 0.5,
            "mean = {}",
            s.mean_abs
        );
    }

    #[test]
    fn tablefree_sample_error_mean_near_paper_value() {
        // §VI-A: two summed approximations → mean |error| ≈ 0.204 at full
        // scale. The tiny geometry's arguments cluster in few segments
        // (correlated errors), landing slightly higher.
        let spec = SystemSpec::tiny();
        let tf = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
        let ex = ExactEngine::new(&spec);
        let s = sample_error(&tf, &ex, &spec, 1, 1);
        assert!(
            s.mean_abs > 0.1 && s.mean_abs < 0.35,
            "mean = {}",
            s.mean_abs
        );
        assert!(s.max_abs <= 0.6, "max = {}", s.max_abs);
    }

    #[test]
    fn tablesteer_worse_than_tablefree_in_near_field() {
        // Table II: TABLEFREE avg 0.25 vs TABLESTEER avg ~1.4-1.5. The
        // ordering comes from the far-field steering error, which needs an
        // aperture that is not negligible against depth — build a
        // shallow-volume variant (first focal depths comparable to the
        // aperture) to expose it at test scale.
        let base = SystemSpec::tiny();
        let spec = SystemSpec::new(
            base.speed_of_sound,
            base.sampling_frequency,
            base.transducer.clone(),
            usbf_geometry::VolumeSpec {
                depth_max: 8.0e-3,
                ..base.volume.clone()
            },
            base.origin,
            base.frame_rate,
        );
        let tf = TableFreeEngine::new(&spec, TableFreeConfig::paper()).unwrap();
        let ts = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
        let ex = ExactEngine::new(&spec);
        let sf = selection_error(&tf, &ex, &spec, 2, 1);
        let ss = selection_error(&ts, &ex, &spec, 2, 1);
        assert!(
            ss.mean_abs > sf.mean_abs,
            "steer {} vs free {}",
            ss.mean_abs,
            sf.mean_abs
        );
        assert!(ss.max_abs > sf.max_abs);
    }

    #[test]
    fn histogram_sums_to_count() {
        let spec = SystemSpec::tiny();
        let ts = TableSteerEngine::new(&spec, TableSteerConfig::bits14()).unwrap();
        let ex = ExactEngine::new(&spec);
        let s = selection_error(&ts, &ex, &spec, 2, 3);
        assert_eq!(s.histogram.iter().sum::<u64>(), s.count);
        assert!(s.flip_fraction() > 0.0);
    }

    #[test]
    #[should_panic(expected = "stride must be nonzero")]
    fn zero_stride_panics() {
        let spec = SystemSpec::tiny();
        let ex = ExactEngine::new(&spec);
        selection_error(&ex, &ex, &spec, 0, 1);
    }
}
