//! TABLESTEER: reference delay table plus fixed-point steering (§V, Fig. 4).

use crate::{DelayEngine, EngineError, NappeDelays};
use std::sync::atomic::{AtomicU64, Ordering};
use usbf_fixed::{Fixed, QFormat, RoundingMode};
use usbf_geometry::{ElementIndex, SystemSpec, VoxelIndex};
use usbf_tables::{fold_coord, ReferenceTable, SteeringTables};

/// Folds an element coordinate into the stored quadrant: identity when the
/// table is unfolded (`q == n`), otherwise the tables crate's own
/// [`fold_coord`] — the single source of truth for the storage fold.
#[inline]
fn fold(i: usize, n: usize, q: usize) -> usize {
    if q == n {
        i // unfolded storage
    } else {
        fold_coord(i, n)
    }
}

/// Fixed-point configuration of the TABLESTEER datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableSteerConfig {
    /// Format of the stored reference delays.
    pub reference_format: QFormat,
    /// Format of the stored steering corrections.
    pub correction_format: QFormat,
}

impl TableSteerConfig {
    /// The 18-bit design of §V-B: unsigned 13.5 reference, signed 13.4
    /// corrections (Table II row TABLESTEER-18b).
    pub fn bits18() -> Self {
        TableSteerConfig {
            reference_format: QFormat::REF_18,
            correction_format: QFormat::CORR_18,
        }
    }

    /// The 14-bit design (Table II row TABLESTEER-14b): unsigned 13.1
    /// reference, signed 13.0 corrections.
    pub fn bits14() -> Self {
        TableSteerConfig {
            reference_format: QFormat::REF_14,
            correction_format: QFormat::CORR_14,
        }
    }

    /// The §VI-A "13 bit integers" baseline: integer reference delays with
    /// 13.4 corrections.
    pub fn int13() -> Self {
        TableSteerConfig {
            reference_format: QFormat::INT_13,
            correction_format: QFormat::CORR_18,
        }
    }

    /// Word width of the reference storage (what the BRAM banks hold).
    pub fn reference_word_bits(&self) -> u32 {
        self.reference_format.total_bits()
    }
}

/// The Fig. 4 block structure: one BRAM bank per block streaming reference
/// delays; per cycle each block applies all permutations of
/// `x_per_cycle` θ-corrections and `y_per_cycle` φ-corrections to one
/// reference sample, emitting `x·y` steered delays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SteerBlockSpec {
    /// Number of replicated blocks (also BRAM banks).
    pub n_blocks: usize,
    /// First-stage corrections applied per cycle (8 in the paper).
    pub x_per_cycle: usize,
    /// Second-stage corrections applied per cycle (16 in the paper).
    pub y_per_cycle: usize,
}

impl SteerBlockSpec {
    /// The paper's design point: 128 blocks × (8 × 16) corrections.
    pub fn paper() -> Self {
        SteerBlockSpec {
            n_blocks: 128,
            x_per_cycle: 8,
            y_per_cycle: 16,
        }
    }

    /// Steered delay samples produced per cycle per block
    /// (8 × 16 = 128 in the paper).
    pub fn points_per_cycle_per_block(&self) -> usize {
        self.x_per_cycle * self.y_per_cycle
    }

    /// Adders per block: `x + x·y` ("8 + 16×8 = 136 adders per block").
    pub fn adders_per_block(&self) -> usize {
        self.x_per_cycle + self.points_per_cycle_per_block()
    }

    /// Adders that also perform final rounding ("of which 128 must also
    /// perform rounding to integer").
    pub fn rounding_adders_per_block(&self) -> usize {
        self.points_per_cycle_per_block()
    }

    /// Aggregate throughput in delays/s at a clock frequency
    /// ("a peak throughput of 3.3 Tdelays/s at 200 MHz").
    pub fn delays_per_second(&self, clock_hz: f64) -> f64 {
        self.n_blocks as f64 * self.points_per_cycle_per_block() as f64 * clock_hz
    }

    /// Achievable volume rate for a spec at a clock frequency.
    pub fn frame_rate(&self, clock_hz: f64, spec: &SystemSpec) -> f64 {
        self.delays_per_second(clock_hz) / spec.naive_table_entries() as f64
    }
}

impl Default for SteerBlockSpec {
    fn default() -> Self {
        Self::paper()
    }
}

/// The table-steering delay engine: folded reference table + Eq. 7
/// correction planes, summed in fixed point and rounded to the echo-buffer
/// index.
///
/// ```
/// use usbf_core::{DelayEngine, TableSteerEngine, TableSteerConfig};
/// use usbf_geometry::SystemSpec;
/// let spec = SystemSpec::tiny();
/// let eng = TableSteerEngine::new(&spec, TableSteerConfig::bits18())?;
/// assert_eq!(eng.name(), "TABLESTEER");
/// # Ok::<(), usbf_core::EngineError>(())
/// ```
#[derive(Debug)]
pub struct TableSteerEngine {
    spec: SystemSpec,
    config: TableSteerConfig,
    reference: ReferenceTable,
    steering: SteeringTables,
    /// Quantized reference delays, same layout as iterating
    /// `(id, iy, ix)` over the *unfolded* grid would see via the fold.
    ref_fixed: Vec<Fixed>,
    /// Quadrant fold of every element column / row (identity when the
    /// table is unfolded), resolved once at construction.
    fold_x: Vec<usize>,
    fold_y: Vec<usize>,
    /// Quantized y-corrections for every `(φ line, element row)` pair,
    /// indexed `ip · ny + iy`. Depth- and θ-independent, so built once.
    cy_fixed: Vec<Fixed>,
    echo_len: usize,
    clamp_events: AtomicU64,
}

impl Clone for TableSteerEngine {
    /// Clones the engine with a fresh (zeroed) clamp counter.
    fn clone(&self) -> Self {
        TableSteerEngine {
            spec: self.spec.clone(),
            config: self.config,
            reference: self.reference.clone(),
            steering: self.steering.clone(),
            ref_fixed: self.ref_fixed.clone(),
            fold_x: self.fold_x.clone(),
            fold_y: self.fold_y.clone(),
            cy_fixed: self.cy_fixed.clone(),
            echo_len: self.echo_len,
            clamp_events: AtomicU64::new(0),
        }
    }
}

impl TableSteerEngine {
    /// Builds and quantizes both tables.
    ///
    /// # Errors
    ///
    /// Returns a fixed-point overflow error if a delay or correction does
    /// not fit the configured formats (e.g. a geometry whose delays exceed
    /// 13 integer bits).
    pub fn new(spec: &SystemSpec, config: TableSteerConfig) -> Result<Self, EngineError> {
        let reference = ReferenceTable::build(spec);
        let steering = SteeringTables::build(spec);
        // Quantize the folded reference storage once; indexed through the
        // same fold as the float table.
        let (qx, qy) = reference.quadrant_dims();
        let n_depth = reference.n_depth();
        let mut ref_fixed = Vec::with_capacity(qx * qy * n_depth);
        for id in 0..n_depth {
            for &v in reference.slice(id) {
                ref_fixed.push(Fixed::from_f64(
                    v,
                    config.reference_format,
                    RoundingMode::Nearest,
                )?);
            }
        }
        // Depth-independent state for the batched fill path: quadrant
        // fold of every element coordinate and the quantized
        // y-correction registers per (φ line, element row).
        let nx = spec.elements.nx();
        let ny = spec.elements.ny();
        let fold_x: Vec<usize> = (0..nx).map(|ix| fold(ix, nx, qx)).collect();
        let fold_y: Vec<usize> = (0..ny).map(|iy| fold(iy, ny, qy)).collect();
        let fmt = config.correction_format;
        let n_phi = spec.volume_grid.n_phi();
        let mut cy_fixed = Vec::with_capacity(n_phi * ny);
        for ip in 0..n_phi {
            for iy in 0..ny {
                cy_fixed.push(Fixed::saturating_from_f64(
                    -steering.y_term_samples(iy, ip),
                    fmt,
                    RoundingMode::Nearest,
                ));
            }
        }
        Ok(TableSteerEngine {
            spec: spec.clone(),
            config,
            reference,
            steering,
            ref_fixed,
            fold_x,
            fold_y,
            cy_fixed,
            echo_len: spec.echo_buffer_len(),
            clamp_events: AtomicU64::new(0),
        })
    }

    /// The engine's fixed-point configuration.
    pub fn config(&self) -> &TableSteerConfig {
        &self.config
    }

    /// The underlying (float) reference table.
    pub fn reference(&self) -> &ReferenceTable {
        &self.reference
    }

    /// The underlying (float) steering tables.
    pub fn steering(&self) -> &SteeringTables {
        &self.steering
    }

    /// The Fig. 4 block structure appropriate for this spec (paper layout).
    pub fn block_spec(&self) -> SteerBlockSpec {
        SteerBlockSpec::paper()
    }

    /// Algorithmic-only delay (double-precision reference + correction):
    /// isolates the Taylor steering error from fixed-point effects.
    pub fn float_delay_samples(&self, vox: VoxelIndex, e: ElementIndex) -> f64 {
        self.reference.delay_samples(vox.id, e) + self.steering.correction_samples(vox, e)
    }

    /// Times the final index clamped against the echo-buffer bounds
    /// (observability for out-of-window fetches at extreme geometry).
    pub fn clamp_events(&self) -> u64 {
        self.clamp_events.load(Ordering::Relaxed)
    }

    /// Storage of both quantized tables in bits `(reference, corrections)`.
    pub fn storage_bits(&self) -> (u64, u64) {
        let ref_bits =
            self.ref_fixed.len() as u64 * self.config.reference_format.total_bits() as u64;
        let corr_bits = self.steering.coefficient_count() as u64
            * self.config.correction_format.total_bits() as u64;
        (ref_bits, corr_bits)
    }

    #[inline]
    fn ref_fixed_at(&self, id: usize, e: ElementIndex) -> Fixed {
        // Recover the folded linear index via the cached quadrant fold of
        // each element coordinate (matches the float table's fold).
        let (qx, qy) = self.reference.quadrant_dims();
        self.ref_fixed[(id * qy + self.fold_y[e.iy]) * qx + self.fold_x[e.ix]]
    }

    /// The two quantized correction terms for a query, as the hardware
    /// registers hold them.
    fn corrections_fixed(&self, vox: VoxelIndex, e: ElementIndex) -> (Fixed, Fixed) {
        let fmt = self.config.correction_format;
        let cx = -self.steering.x_term_samples(e.ix, vox.it, vox.ip);
        let cy = -self.steering.y_term_samples(e.iy, vox.ip);
        (
            Fixed::saturating_from_f64(cx, fmt, RoundingMode::Nearest),
            Fixed::saturating_from_f64(cy, fmt, RoundingMode::Nearest),
        )
    }

    /// The quantized transmit-model correction for transmit `tx` at focal
    /// point `vox`: the difference (in samples) between the configured
    /// transmit leg and the point-source leg `|S − O|` the steered
    /// reference table already approximates. Element-independent — one
    /// more correction register per scanline in the Fig. 4 datapath —
    /// and **exactly zero** for point sources (`d − d = 0` quantizes to
    /// raw 0), which keeps the historical single-transmit output
    /// bit-identical.
    #[inline]
    fn dtx_fixed(&self, tx: usize, vox: VoxelIndex) -> Fixed {
        let s = self.spec.volume_grid.position(vox);
        let delta = self
            .spec
            .metres_to_samples(self.spec.transmit_distance(tx, s) - s.distance(self.spec.origin));
        Fixed::saturating_from_f64(delta, self.config.correction_format, RoundingMode::Nearest)
    }
}

impl DelayEngine for TableSteerEngine {
    fn name(&self) -> &'static str {
        "TABLESTEER"
    }

    fn delay_samples(&self, vox: VoxelIndex, e: ElementIndex) -> f64 {
        self.delay_samples_for(0, vox, e)
    }

    fn transmit_count(&self) -> usize {
        self.spec.n_transmits()
    }

    /// Scalar fixed-point chain `ref + cx + cy + Δtx`. The transmit
    /// correction shares the correction format, so the fourth `wide_add`
    /// widens by one integer bit but keeps the resolution — for point
    /// sources (Δtx raw = 0) the result is bit-identical to the
    /// historical three-term chain.
    fn delay_samples_for(&self, tx: usize, vox: VoxelIndex, e: ElementIndex) -> f64 {
        let r = self.ref_fixed_at(vox.id, e);
        let (cx, cy) = self.corrections_fixed(vox, e);
        r.wide_add(cx)
            .wide_add(cy)
            .wide_add(self.dtx_fixed(tx, vox))
            .to_f64()
    }

    /// Final rounding with clamp telemetry: both the scalar `delay_index`
    /// and the batched beamformer route through this, so `clamp_events`
    /// counts out-of-window fetches on every path.
    fn delay_index_from(&self, samples: f64) -> i64 {
        let idx = (samples + 0.5).floor() as i64;
        let clamped = idx.clamp(0, self.echo_len as i64 - 1);
        if clamped != idx {
            self.clamp_events.fetch_add(1, Ordering::Relaxed);
        }
        clamped
    }

    fn echo_buffer_len(&self) -> usize {
        self.echo_len
    }

    /// Batched nappe fill — the Fig. 4 schedule in software. Within one
    /// insonification the correction registers of a block never change:
    /// the quadrant fold maps and the quantized y-corrections are
    /// depth-independent and cached at construction, and the quantized
    /// x-corrections are built once per scanline **row** (`nx`
    /// conversions) instead of `2·nx·ny` float→fixed conversions per
    /// scanline; the reference BRAM is read as one contiguous nappe
    /// slice, exactly what the §V-B circular buffer streams.
    ///
    /// The `r + cx + cy` wide-add chain runs on **hoisted** raw
    /// arithmetic: every operand of a fill shares the same three
    /// formats, so the alignment shifts and the output scale of
    /// [`Fixed::wide_add`]/[`Fixed::to_f64`] are computed once per fill
    /// (and the x-corrections pre-shifted once per row) instead of per
    /// element, leaving shift–add–shift–add–convert–multiply in the
    /// inner loop. Bit-exact with the scalar path by construction: the
    /// identical raw integers flow through the identical shifts, so the
    /// final `f64`s match bit for bit (`fill_nappe_bit_exact_*` tests).
    fn fill_nappe(&self, nappe_idx: usize, out: &mut NappeDelays) {
        self.fill_nappe_streamed(nappe_idx, out, &mut |_, _| {});
    }

    /// Transmit-indexed batched fill: streamed fill with no row consumer.
    fn fill_nappe_for(&self, tx: usize, nappe_idx: usize, out: &mut NappeDelays) {
        self.fill_nappe_streamed_for(tx, nappe_idx, out, &mut |_, _| {});
    }

    fn fill_nappe_streamed(
        &self,
        nappe_idx: usize,
        out: &mut NappeDelays,
        consume: &mut dyn FnMut(usize, &[f64]),
    ) {
        self.fill_nappe_streamed_for(0, nappe_idx, out, consume);
    }

    /// The fill loop proper, streaming each completed row to `consume`.
    /// The pre-shifted raw x-corrections live in the slab's preallocated
    /// `row_regs` scratch (rebuilt once per scanline row), so a warm
    /// refill performs no heap allocation.
    ///
    /// The transmit-model correction Δtx is a per-scanline constant at a
    /// fixed nappe depth, quantized in the correction format; since that
    /// format's fraction bits match the chain's final format, it folds
    /// into the per-row constant alongside the y-correction — the fourth
    /// add of the scalar chain costs **nothing** in the inner loop.
    fn fill_nappe_streamed_for(
        &self,
        tx: usize,
        nappe_idx: usize,
        out: &mut NappeDelays,
        consume: &mut dyn FnMut(usize, &[f64]),
    ) {
        let tile = out.tile();
        let n_elements = out.n_elements();
        let (qx, qy) = self.reference.quadrant_dims();
        let nx = self.spec.elements.nx();
        let ny = self.spec.elements.ny();
        let fmt = self.config.correction_format;
        // The wide-add chain's formats, fixed for the whole fill:
        // f1 = ref + cx, f2 = f1 + cy, f3 = f2 + Δtx.
        let f1 = QFormat::sum_format(self.config.reference_format, fmt);
        let f2 = QFormat::sum_format(f1, fmt);
        let f3 = QFormat::sum_format(f2, fmt);
        let sh_r = f1.frac_bits() - self.config.reference_format.frac_bits();
        let sh_c1 = f1.frac_bits() - fmt.frac_bits();
        let sh_12 = f2.frac_bits() - f1.frac_bits();
        let sh_c2 = f2.frac_bits() - fmt.frac_bits();
        // f2 and f3 share fraction bits (both cy and Δtx carry the
        // correction format), so the last add needs no alignment shift
        // and Δtx merges into the row constant below.
        debug_assert_eq!(f3.frac_bits(), f2.frac_bits());
        let res = f3.resolution();
        let ref_slice = &self.ref_fixed[nappe_idx * qy * qx..(nappe_idx + 1) * qy * qx];
        let bufs = out.begin_fill_scratch(nappe_idx);
        let buf = bufs.samples;
        // Pre-shifted raw x-corrections, rebuilt once per scanline row.
        let cx = &mut bufs.row_regs[..nx];
        for (slot, it, ip) in tile.iter_scanlines() {
            for (ix, c) in cx.iter_mut().enumerate() {
                *c = Fixed::saturating_from_f64(
                    -self.steering.x_term_samples(ix, it, ip),
                    fmt,
                    RoundingMode::Nearest,
                )
                .raw()
                    << sh_c1;
            }
            let dtx_shifted = self.dtx_fixed(tx, VoxelIndex::new(it, ip, nappe_idx)).raw() << sh_c2;
            let cy_col = &self.cy_fixed[ip * ny..(ip + 1) * ny];
            let range = slot * n_elements..(slot + 1) * n_elements;
            let row = &mut buf[range.clone()];
            for (iy, chunk) in row.chunks_mut(nx).enumerate() {
                let ref_row = &ref_slice[self.fold_y[iy] * qx..];
                let row_const = (cy_col[iy].raw() << sh_c2) + dtx_shifted;
                for (ix, value) in chunk.iter_mut().enumerate() {
                    let r = ref_row[self.fold_x[ix]].raw();
                    let raw = (((r << sh_r) + cx[ix]) << sh_12) + row_const;
                    *value = raw as f64 * res;
                }
            }
            consume(slot, &buf[range]);
        }
    }

    /// Batched rounding with batched clamp telemetry: the row's clamp
    /// count is accumulated locally and published with **one** atomic
    /// add, so a row of N elements costs one `fetch_add` instead of up
    /// to N — while `clamp_events` advances by exactly what N
    /// per-element `delay_index_from` calls would have added.
    fn quantize_row(&self, row: &[f64], out: &mut [i32]) {
        let clamps = crate::engine::quantize_row_clamped(self.echo_len, row, out);
        if clamps > 0 {
            self.clamp_events.fetch_add(clamps, Ordering::Relaxed);
        }
    }

    fn supports_factored_fill(&self) -> bool {
        true
    }

    /// Receive-leg fill: TABLESTEER's datapath **already factors** the
    /// transmit term — the fused fill folds Δtx into a per-row constant,
    /// so the rx pass is the same `r + cx + cy` raw chain with that
    /// constant left out. The slab rows hold the **pre-scale raw**
    /// fixed-point sums as `f64` (engine-defined intermediates, not
    /// delays): the final `· res` scaling moves into the combine, after
    /// the transmit correction is added.
    fn fill_nappe_rx_streamed(
        &self,
        nappe_idx: usize,
        out: &mut NappeDelays,
        consume: &mut dyn FnMut(usize, &[f64]),
    ) {
        let tile = out.tile();
        let n_elements = out.n_elements();
        let (qx, qy) = self.reference.quadrant_dims();
        let nx = self.spec.elements.nx();
        let ny = self.spec.elements.ny();
        let fmt = self.config.correction_format;
        let f1 = QFormat::sum_format(self.config.reference_format, fmt);
        let f2 = QFormat::sum_format(f1, fmt);
        let sh_r = f1.frac_bits() - self.config.reference_format.frac_bits();
        let sh_c1 = f1.frac_bits() - fmt.frac_bits();
        let sh_12 = f2.frac_bits() - f1.frac_bits();
        let sh_c2 = f2.frac_bits() - fmt.frac_bits();
        let ref_slice = &self.ref_fixed[nappe_idx * qy * qx..(nappe_idx + 1) * qy * qx];
        let bufs = out.begin_fill_scratch(nappe_idx);
        let buf = bufs.samples;
        let cx = &mut bufs.row_regs[..nx];
        for (slot, it, ip) in tile.iter_scanlines() {
            for (ix, c) in cx.iter_mut().enumerate() {
                *c = Fixed::saturating_from_f64(
                    -self.steering.x_term_samples(ix, it, ip),
                    fmt,
                    RoundingMode::Nearest,
                )
                .raw()
                    << sh_c1;
            }
            let cy_col = &self.cy_fixed[ip * ny..(ip + 1) * ny];
            let range = slot * n_elements..(slot + 1) * n_elements;
            let row = &mut buf[range.clone()];
            for (iy, chunk) in row.chunks_mut(nx).enumerate() {
                let ref_row = &ref_slice[self.fold_y[iy] * qx..];
                let row_const = cy_col[iy].raw() << sh_c2;
                for (ix, value) in chunk.iter_mut().enumerate() {
                    let r = ref_row[self.fold_x[ix]].raw();
                    // Pre-scale raw sum; the i64 → f64 conversion is
                    // exact (the raws are ~21-bit integers).
                    *value = ((((r << sh_r) + cx[ix]) << sh_12) + row_const) as f64;
                }
            }
            consume(slot, &buf[range]);
        }
    }

    /// Transmit combine: adds the pre-shifted raw transmit correction and
    /// applies the final scale — `(rx_raw + Δtx_raw) · res`. Bit-identical
    /// to the fused fill because both addends are integer-valued `f64`s
    /// far below 2⁵³, so the float add reproduces the fused path's i64
    /// add exactly, and the closing multiply is the identical operation
    /// on the identical value.
    fn combine_tx_row(&self, tx: usize, vox: VoxelIndex, rx_row: &[f64], out: &mut [f64]) {
        assert_eq!(rx_row.len(), out.len(), "combine row length mismatch");
        let fmt = self.config.correction_format;
        let f1 = QFormat::sum_format(self.config.reference_format, fmt);
        let f2 = QFormat::sum_format(f1, fmt);
        let f3 = QFormat::sum_format(f2, fmt);
        let sh_c2 = f2.frac_bits() - fmt.frac_bits();
        debug_assert_eq!(f3.frac_bits(), f2.frac_bits());
        let res = f3.resolution();
        let dtx = (self.dtx_fixed(tx, vox).raw() << sh_c2) as f64;
        for (o, &rx) in out.iter_mut().zip(rx_row) {
            *o = (rx + dtx) * res;
        }
    }

    /// TABLESTEER's rounding stage publishes clamp telemetry
    /// ([`TableSteerEngine::clamp_events`]), so compound kernels must
    /// keep quantizing masked transmits to count their clamps.
    fn rounding_telemetry(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExactEngine;
    use usbf_tables::error::theoretical_bound_seconds;

    fn engines() -> (SystemSpec, TableSteerEngine, ExactEngine) {
        let spec = SystemSpec::tiny();
        let ts = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
        let ex = ExactEngine::new(&spec);
        (spec, ts, ex)
    }

    #[test]
    fn quantization_reports_rounding_telemetry() {
        // TABLESTEER is the one engine whose rounding stage has an
        // observable counter; the flag is what keeps compound kernels
        // from skipping masked quantizations (and their clamp counts).
        let (_, ts, ex) = engines();
        assert!(ts.rounding_telemetry());
        assert!(!ex.rounding_telemetry());
        assert!(crate::FusedOnly(ts).rounding_telemetry());
    }

    #[test]
    fn fixed_path_tracks_float_path_within_quantization() {
        let (spec, ts, _) = engines();
        let lsb_r = TableSteerConfig::bits18().reference_format.resolution();
        let lsb_c = TableSteerConfig::bits18().correction_format.resolution();
        let bound = lsb_r / 2.0 + lsb_c; // ref + two corrections, ½ LSB each
        for i in (0..spec.volume_grid.voxel_count()).step_by(5) {
            let vox = spec.volume_grid.voxel_at(i);
            for e in spec.elements.iter() {
                let d = (ts.delay_samples(vox, e) - ts.float_delay_samples(vox, e)).abs();
                assert!(d <= bound + 1e-12, "{vox} {e}: {d}");
            }
        }
    }

    #[test]
    fn error_against_exact_below_theoretical_bound() {
        let (spec, ts, ex) = engines();
        let bound = spec.seconds_to_samples(theoretical_bound_seconds(&spec)) + 1.0;
        for i in (0..spec.volume_grid.voxel_count()).step_by(3) {
            let vox = spec.volume_grid.voxel_at(i);
            for e in spec.elements.iter() {
                let d = (ts.delay_samples(vox, e) - ex.delay_samples(vox, e)).abs();
                assert!(d <= bound, "{vox} {e}: {d} > {bound}");
            }
        }
    }

    #[test]
    fn exact_on_reference_scanline_of_odd_grid() {
        let base = SystemSpec::tiny();
        let spec = SystemSpec::new(
            base.speed_of_sound,
            base.sampling_frequency,
            base.transducer.clone(),
            usbf_geometry::VolumeSpec {
                n_theta: 9,
                n_phi: 9,
                ..base.volume.clone()
            },
            base.origin,
            base.frame_rate,
        );
        let ts = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
        let ex = ExactEngine::new(&spec);
        for id in 0..spec.volume_grid.n_depth() {
            let vox = VoxelIndex::new(4, 4, id);
            for e in spec.elements.iter() {
                let d = (ts.delay_samples(vox, e) - ex.delay_samples(vox, e)).abs();
                // Only quantization remains on the unsteered line.
                assert!(d <= 0.05, "{vox} {e}: {d}");
            }
        }
    }

    #[test]
    fn bits14_is_coarser_than_bits18() {
        let spec = SystemSpec::tiny();
        let e18 = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
        let e14 = TableSteerEngine::new(&spec, TableSteerConfig::bits14()).unwrap();
        let (mut q18, mut q14) = (0.0, 0.0);
        for i in (0..spec.volume_grid.voxel_count()).step_by(7) {
            let vox = spec.volume_grid.voxel_at(i);
            for e in spec.elements.iter() {
                q18 += (e18.delay_samples(vox, e) - e18.float_delay_samples(vox, e)).abs();
                q14 += (e14.delay_samples(vox, e) - e14.float_delay_samples(vox, e)).abs();
            }
        }
        assert!(
            q14 > q18,
            "14-bit quantization error {q14} should exceed 18-bit {q18}"
        );
    }

    #[test]
    fn storage_bits_match_budget_arithmetic() {
        let (spec, ts, _) = engines();
        let (ref_bits, corr_bits) = ts.storage_bits();
        let budget = usbf_tables::TableBudget::for_spec(&spec, 18, 18);
        assert_eq!(ref_bits, budget.reference_bits);
        assert_eq!(corr_bits, budget.correction_bits);
    }

    #[test]
    fn block_spec_matches_paper_figures() {
        let b = SteerBlockSpec::paper();
        assert_eq!(b.points_per_cycle_per_block(), 128);
        assert_eq!(b.adders_per_block(), 136);
        assert_eq!(b.rounding_adders_per_block(), 128);
        // 3.3 Tdelays/s at 200 MHz.
        assert!((b.delays_per_second(200.0e6) / 1e12 - 3.28).abs() < 0.01);
        // ~20 fps at paper scale.
        let fps = b.frame_rate(200.0e6, &SystemSpec::paper());
        assert!((fps - 20.0).abs() < 0.5, "fps = {fps}");
    }

    #[test]
    fn clamp_counter_flags_only_extreme_steering() {
        let (spec, ts, _) = engines();
        let v = &spec.volume_grid;
        // Central quarter of the steering fan: delays stay inside the
        // nominal echo window — no clamping.
        for it in v.n_theta() / 4..3 * v.n_theta() / 4 {
            for ip in v.n_phi() / 4..3 * v.n_phi() / 4 {
                for id in (0..v.n_depth()).step_by(3) {
                    for e in spec.elements.iter() {
                        let _ = ts.delay_index(VoxelIndex::new(it, ip, id), e);
                    }
                }
            }
        }
        assert_eq!(ts.clamp_events(), 0);
        // With the paper's full 100×100 aperture, extreme corner steering
        // at full depth exceeds even the 8192-sample window (those pairs
        // lie outside element directivity; the beamformer clamps and
        // apodization zeroes them).
        let base = SystemSpec::tiny();
        let wide = SystemSpec::new(
            base.speed_of_sound,
            base.sampling_frequency,
            usbf_geometry::TransducerSpec {
                nx: 100,
                ny: 100,
                ..base.transducer.clone()
            },
            base.volume.clone(),
            base.origin,
            base.frame_rate,
        );
        let ts = TableSteerEngine::new(&wide, TableSteerConfig::bits18()).unwrap();
        let vw = &wide.volume_grid;
        for e in wide.elements.iter() {
            let _ = ts.delay_index(VoxelIndex::new(0, 0, vw.n_depth() - 1), e);
        }
        assert!(ts.clamp_events() > 0);
    }

    #[test]
    fn fill_nappe_bit_exact_with_scalar_path() {
        let (spec, ts, _) = engines();
        let mut batched = NappeDelays::full(&spec);
        let mut scalar = NappeDelays::full(&spec);
        for id in 0..spec.volume_grid.n_depth() {
            ts.fill_nappe(id, &mut batched);
            scalar.fill_scalar(&ts, id);
            for (a, b) in batched.samples().iter().zip(scalar.samples()) {
                assert_eq!(a.to_bits(), b.to_bits(), "nappe {id}");
            }
        }
    }

    #[test]
    fn fill_nappe_bit_exact_on_unfolded_table() {
        // Off-axis origin disables quadrant folding; the batched fold maps
        // must degenerate to identity.
        let base = SystemSpec::tiny();
        let spec = SystemSpec::new(
            base.speed_of_sound,
            base.sampling_frequency,
            base.transducer.clone(),
            base.volume.clone(),
            usbf_geometry::Vec3::new(1.0e-3, -0.5e-3, 0.0),
            base.frame_rate,
        );
        let ts = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
        assert!(!ts.reference().is_folded());
        let mut batched = NappeDelays::full(&spec);
        let mut scalar = NappeDelays::full(&spec);
        ts.fill_nappe(7, &mut batched);
        scalar.fill_scalar(&ts, 7);
        assert_eq!(batched, scalar);
    }

    #[test]
    fn fill_nappe_tile_matches_scalar_queries() {
        let (spec, ts, _) = engines();
        let tile = crate::Tile {
            theta_start: 1,
            theta_end: 5,
            phi_start: 2,
            phi_end: 6,
        };
        let mut slab = NappeDelays::for_tile(&spec, tile);
        ts.fill_nappe(3, &mut slab);
        for (_, it, ip) in slab.scanlines() {
            for e in spec.elements.iter() {
                let vox = VoxelIndex::new(it, ip, 3);
                assert_eq!(
                    slab.at(it, ip, e).to_bits(),
                    ts.delay_samples(vox, e).to_bits()
                );
            }
        }
    }

    #[test]
    fn plane_wave_fill_bit_exact_with_scalar_path() {
        let spec = SystemSpec::tiny().with_transmits(usbf_geometry::TransmitModel::plane_wave_fan(
            3,
            usbf_geometry::deg(8.0),
        ));
        let ts = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
        assert_eq!(ts.transmit_count(), 3);
        for tx in 0..3 {
            let mut batched = NappeDelays::full(&spec);
            let mut scalar = NappeDelays::full(&spec);
            for id in [0, 7, 15] {
                ts.fill_nappe_for(tx, id, &mut batched);
                scalar.fill_scalar_for(&ts, tx, id);
                for (a, b) in batched.samples().iter().zip(scalar.samples()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "tx {tx} nappe {id}");
                }
            }
        }
    }

    #[test]
    fn point_source_transmit_keeps_historical_bits() {
        // A multi-transmit engine whose transmit 0 is the point source
        // must serve it bit-identical to the single-transmit engine: the
        // Δtx register is exactly zero there.
        let single = SystemSpec::tiny();
        let multi = SystemSpec::tiny().with_transmits(vec![
            usbf_geometry::TransmitModel::PointSource,
            usbf_geometry::TransmitModel::plane_wave(usbf_geometry::deg(5.0), 0.0),
        ]);
        let ts1 = TableSteerEngine::new(&single, TableSteerConfig::bits18()).unwrap();
        let ts2 = TableSteerEngine::new(&multi, TableSteerConfig::bits18()).unwrap();
        for i in (0..single.volume_grid.voxel_count()).step_by(11) {
            let vox = single.volume_grid.voxel_at(i);
            for e in single.elements.iter() {
                assert_eq!(
                    ts1.delay_samples(vox, e).to_bits(),
                    ts2.delay_samples_for(0, vox, e).to_bits()
                );
            }
        }
    }

    #[test]
    fn plane_wave_steers_the_transmit_leg() {
        // At a steered scanline aligned with the wave normal the
        // plane-wave delay must undercut the point-source delay (the
        // projection n̂·S < |S|) by roughly r(1 − cos∠).
        let spec = SystemSpec::tiny().with_transmits(vec![
            usbf_geometry::TransmitModel::PointSource,
            usbf_geometry::TransmitModel::plane_wave(usbf_geometry::deg(20.0), 0.0),
        ]);
        let ts = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
        let vox = VoxelIndex::new(0, 4, 10); // steered off-normal scanline
        let e = spec.elements.center_element();
        let ps = ts.delay_samples_for(0, vox, e);
        let pw = ts.delay_samples_for(1, vox, e);
        assert!(pw < ps, "plane wave {pw} !< point source {ps}");
    }

    #[test]
    fn factored_fill_bit_identical_to_fused_fill() {
        // All three fixed-point configurations, mixed transmit models —
        // the raw-integer argument behind the combine must hold for every
        // format pair.
        let spec = SystemSpec::tiny().with_transmits(vec![
            usbf_geometry::TransmitModel::PointSource,
            usbf_geometry::TransmitModel::plane_wave(usbf_geometry::deg(7.0), 0.0),
            usbf_geometry::TransmitModel::plane_wave(0.0, usbf_geometry::deg(-7.0)),
        ]);
        for config in [
            TableSteerConfig::bits18(),
            TableSteerConfig::bits14(),
            TableSteerConfig::int13(),
        ] {
            let ts = TableSteerEngine::new(&spec, config).unwrap();
            assert!(ts.supports_factored_fill());
            let mut rx = NappeDelays::full(&spec);
            let mut fused = NappeDelays::full(&spec);
            let mut combined = vec![0.0; rx.n_elements()];
            for id in [0, 9, 15] {
                ts.fill_nappe_rx(id, &mut rx);
                for tx in 0..3 {
                    ts.fill_nappe_for(tx, id, &mut fused);
                    for (slot, it, ip) in fused.scanlines() {
                        ts.combine_tx_row(
                            tx,
                            VoxelIndex::new(it, ip, id),
                            rx.row(slot),
                            &mut combined,
                        );
                        for (a, b) in combined.iter().zip(fused.row(slot)) {
                            assert_eq!(
                                a.to_bits(),
                                b.to_bits(),
                                "{config:?} tx {tx} nappe {id} slot {slot}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn int13_reference_quantizes_to_integers() {
        let spec = SystemSpec::tiny();
        let ts = TableSteerEngine::new(&spec, TableSteerConfig::int13()).unwrap();
        let vox = VoxelIndex::new(3, 3, 8);
        let e = ElementIndex::new(1, 1);
        // Reference contribution is integer; only corrections carry
        // fraction bits (1/16).
        let v = ts.delay_samples(vox, e);
        let frac = (v * 16.0).round() / 16.0;
        assert!((v - frac).abs() < 1e-12);
    }
}
