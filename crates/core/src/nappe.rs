//! Batched per-nappe delay slabs — the streaming unit of the paper's
//! architecture.
//!
//! The paper's central observation is that delays should not be looked up
//! (or recomputed) voxel by voxel: a nappe-by-nappe traversal lets every
//! consumer stream one *slab* of delays per depth step, with strong
//! nappe-to-nappe locality. [`NappeDelays`] is that slab on the host side:
//! all delays for one nappe, restricted to one [`Tile`] of the steering
//! fan (a [`NappeSchedule`](crate::NappeSchedule) block's ownership), for
//! every element.
//!
//! Engines fill slabs through [`DelayEngine::fill_nappe`]
//! (crate::DelayEngine::fill_nappe); the default implementation falls back
//! to scalar [`delay_samples`](crate::DelayEngine::delay_samples) queries,
//! and is the bit-exactness reference for the specialized batched paths.

use crate::schedule::Tile;
use usbf_geometry::{ElementIndex, SystemSpec, VoxelIndex};

/// One nappe's delays over a tile of the steering fan: layout
/// `[scanline within tile (θ-major, φ-inner)][element (linear order)]`,
/// in fractional samples at the system's `fs` — exactly what
/// [`delay_samples`](crate::DelayEngine::delay_samples) returns.
#[derive(Debug, Clone)]
pub struct NappeDelays {
    samples: Vec<f64>,
    tile: Tile,
    n_elements: usize,
    elements_nx: usize,
    n_depth: usize,
    nappe: Option<usize>,
    // Engine fill scratch, preallocated with the slab so warm refills
    // stay allocation-free (excluded from equality — scratch contents
    // are not part of the slab's value).
    row_args: Vec<f64>,
    line_args: Vec<f64>,
    line_vals: Vec<f64>,
    row_regs: Vec<i64>,
}

impl PartialEq for NappeDelays {
    fn eq(&self, other: &Self) -> bool {
        self.samples == other.samples
            && self.tile == other.tile
            && self.n_elements == other.n_elements
            && self.elements_nx == other.elements_nx
            && self.n_depth == other.n_depth
            && self.nappe == other.nappe
    }
}

/// Split borrows of a slab mid-fill: the sample buffer plus the engine
/// scratch rows, handed out together by
/// [`NappeDelays::begin_fill_scratch`] so an engine can use both without
/// fighting the borrow checker.
pub struct FillBuffers<'a> {
    /// The slab's raw sample buffer, row-major.
    pub samples: &'a mut [f64],
    /// One element-row of argument scratch (`n_elements` slots).
    pub row_args: &'a mut [f64],
    /// Per-scanline argument scratch (`scanlines` slots).
    pub line_args: &'a mut [f64],
    /// Per-scanline value scratch (`scanlines` slots).
    pub line_vals: &'a mut [f64],
    /// One element-row of integer register scratch (`elements_nx`
    /// slots).
    pub row_regs: &'a mut [i64],
}

impl NappeDelays {
    /// Allocates a zeroed slab covering `tile` of `spec`'s steering fan.
    ///
    /// # Panics
    ///
    /// Panics if the tile exceeds the fan.
    pub fn for_tile(spec: &SystemSpec, tile: Tile) -> Self {
        let v = &spec.volume_grid;
        assert!(
            tile.theta_start < tile.theta_end
                && tile.phi_start < tile.phi_end
                && tile.theta_end <= v.n_theta()
                && tile.phi_end <= v.n_phi(),
            "tile {tile:?} outside the {}x{} fan",
            v.n_theta(),
            v.n_phi()
        );
        let n_elements = spec.elements.count();
        NappeDelays {
            samples: vec![0.0; tile.scanlines() * n_elements],
            tile,
            n_elements,
            elements_nx: spec.elements.nx(),
            n_depth: v.n_depth(),
            nappe: None,
            row_args: vec![0.0; n_elements],
            line_args: vec![0.0; tile.scanlines()],
            line_vals: vec![0.0; tile.scanlines()],
            row_regs: vec![0; spec.elements.nx()],
        }
    }

    /// Allocates a slab covering the whole steering fan.
    pub fn full(spec: &SystemSpec) -> Self {
        let v = &spec.volume_grid;
        Self::for_tile(
            spec,
            Tile {
                theta_start: 0,
                theta_end: v.n_theta(),
                phi_start: 0,
                phi_end: v.n_phi(),
            },
        )
    }

    /// The fan tile this slab covers.
    #[inline]
    pub fn tile(&self) -> Tile {
        self.tile
    }

    /// Elements per scanline row.
    #[inline]
    pub fn n_elements(&self) -> usize {
        self.n_elements
    }

    /// Element-matrix width, for mapping linear element slots back to
    /// [`ElementIndex`] (`j → (j % nx, j / nx)`).
    #[inline]
    pub fn elements_nx(&self) -> usize {
        self.elements_nx
    }

    /// The nappe currently held, if any fill has happened.
    #[inline]
    pub fn nappe(&self) -> Option<usize> {
        self.nappe
    }

    /// Scanlines in the tile.
    #[inline]
    pub fn scanline_count(&self) -> usize {
        self.tile.scanlines()
    }

    /// Row slot of scanline `(it, ip)` within the tile.
    ///
    /// # Panics
    ///
    /// Panics if the scanline is outside the tile.
    #[inline]
    pub fn slot_of(&self, it: usize, ip: usize) -> usize {
        self.tile.slot_of(it, ip)
    }

    /// Iterates `(slot, it, ip)` over the tile in slab row order.
    pub fn scanlines(&self) -> impl Iterator<Item = (usize, usize, usize)> {
        self.tile.iter_scanlines()
    }

    /// One scanline's delays for all elements, in linear element order.
    #[inline]
    pub fn row(&self, slot: usize) -> &[f64] {
        &self.samples[slot * self.n_elements..(slot + 1) * self.n_elements]
    }

    /// Delay for scanline `(it, ip)` and element `e` — the batched
    /// counterpart of [`delay_samples`](crate::DelayEngine::delay_samples)
    /// at the held nappe.
    #[inline]
    pub fn at(&self, it: usize, ip: usize, e: ElementIndex) -> f64 {
        self.row(self.slot_of(it, ip))[e.iy * self.elements_nx + e.ix]
    }

    /// The whole slab, row-major.
    #[inline]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Depth steps (nappes) of the volume grid this slab was built for —
    /// the exclusive upper bound on fillable nappe indices.
    #[inline]
    pub fn n_depth(&self) -> usize {
        self.n_depth
    }

    /// Clears the held-nappe marker, returning the slab to its
    /// freshly-allocated state without touching the buffer. Useful when
    /// handing a recycled slab to a different consumer; plain refills
    /// don't need it — [`begin_fill`](Self::begin_fill) overwrites the
    /// marker unconditionally, which is how warm loops reuse slabs.
    pub fn reset(&mut self) {
        self.nappe = None;
    }

    /// Marks the slab as holding `nappe_idx` and hands out the raw buffer
    /// for an engine's batched fill.
    ///
    /// Every engine's [`fill_nappe`](crate::DelayEngine::fill_nappe)
    /// routes through here, so this is the single validation point for
    /// the slab API.
    ///
    /// # Panics
    ///
    /// Panics (in release builds too — the engines' own geometry checks
    /// are `debug_assert`s) if `nappe_idx` is outside the volume grid's
    /// depth range.
    pub fn begin_fill(&mut self, nappe_idx: usize) -> &mut [f64] {
        assert!(
            nappe_idx < self.n_depth,
            "nappe index {nappe_idx} out of range: the volume grid has {} depth steps",
            self.n_depth
        );
        self.nappe = Some(nappe_idx);
        &mut self.samples
    }

    /// Like [`begin_fill`](Self::begin_fill), but also hands out the
    /// slab's preallocated scratch rows — the warm state engines with a
    /// batched datapath (TABLEFREE's argument rows, TABLESTEER's
    /// correction registers) use so a warm refill allocates nothing.
    ///
    /// # Panics
    ///
    /// Same contract as [`begin_fill`](Self::begin_fill).
    pub fn begin_fill_scratch(&mut self, nappe_idx: usize) -> FillBuffers<'_> {
        self.begin_fill(nappe_idx);
        FillBuffers {
            samples: &mut self.samples,
            row_args: &mut self.row_args,
            line_args: &mut self.line_args,
            line_vals: &mut self.line_vals,
            row_regs: &mut self.row_regs,
        }
    }

    /// Scalar reference fill: one
    /// [`delay_samples`](crate::DelayEngine::delay_samples) query per slab
    /// entry. This is the
    /// [`fill_nappe`](crate::DelayEngine::fill_nappe) default, and the
    /// bit-exactness oracle for every specialized batched path.
    pub fn fill_scalar<E: crate::DelayEngine + ?Sized>(&mut self, engine: &E, nappe_idx: usize) {
        let tile = self.tile;
        let n_elements = self.n_elements;
        let nx = self.elements_nx;
        let buf = self.begin_fill(nappe_idx);
        for (s, it, ip) in tile.iter_scanlines() {
            let vox = VoxelIndex::new(it, ip, nappe_idx);
            let row = &mut buf[s * n_elements..(s + 1) * n_elements];
            for (j, out) in row.iter_mut().enumerate() {
                *out = engine.delay_samples(vox, ElementIndex::new(j % nx, j / nx));
            }
        }
    }

    /// Transmit-indexed scalar reference fill: one
    /// [`delay_samples_for`](crate::DelayEngine::delay_samples_for) query
    /// per slab entry. This is the
    /// [`fill_nappe_for`](crate::DelayEngine::fill_nappe_for) bit-exactness
    /// oracle, exactly as [`fill_scalar`](Self::fill_scalar) is for the
    /// unindexed path.
    pub fn fill_scalar_for<E: crate::DelayEngine + ?Sized>(
        &mut self,
        engine: &E,
        tx: usize,
        nappe_idx: usize,
    ) {
        let tile = self.tile;
        let n_elements = self.n_elements;
        let nx = self.elements_nx;
        let buf = self.begin_fill(nappe_idx);
        for (s, it, ip) in tile.iter_scanlines() {
            let vox = VoxelIndex::new(it, ip, nappe_idx);
            let row = &mut buf[s * n_elements..(s + 1) * n_elements];
            for (j, out) in row.iter_mut().enumerate() {
                *out = engine.delay_samples_for(tx, vox, ElementIndex::new(j % nx, j / nx));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayEngine, ExactEngine};

    #[test]
    fn full_slab_covers_fan_and_elements() {
        let spec = SystemSpec::tiny();
        let slab = NappeDelays::full(&spec);
        assert_eq!(slab.scanline_count(), 64);
        assert_eq!(slab.n_elements(), 64);
        assert_eq!(slab.samples().len(), 64 * 64);
        assert_eq!(slab.nappe(), None);
    }

    #[test]
    fn slots_enumerate_theta_major_phi_inner() {
        let spec = SystemSpec::tiny();
        let tile = Tile {
            theta_start: 2,
            theta_end: 4,
            phi_start: 1,
            phi_end: 4,
        };
        let slab = NappeDelays::for_tile(&spec, tile);
        let order: Vec<_> = slab.scanlines().collect();
        assert_eq!(order[0], (0, 2, 1));
        assert_eq!(order[1], (1, 2, 2));
        assert_eq!(order[3], (3, 3, 1));
        for &(s, it, ip) in &order {
            assert_eq!(slab.slot_of(it, ip), s);
        }
    }

    #[test]
    fn scalar_fill_matches_point_queries() {
        let spec = SystemSpec::tiny();
        let engine = ExactEngine::new(&spec);
        let tile = Tile {
            theta_start: 1,
            theta_end: 3,
            phi_start: 0,
            phi_end: 2,
        };
        let mut slab = NappeDelays::for_tile(&spec, tile);
        slab.fill_scalar(&engine, 5);
        assert_eq!(slab.nappe(), Some(5));
        for (_, it, ip) in slab.scanlines() {
            for e in spec.elements.iter() {
                let vox = VoxelIndex::new(it, ip, 5);
                assert_eq!(slab.at(it, ip, e), engine.delay_samples(vox, e));
            }
        }
    }

    #[test]
    fn fill_scratch_marks_nappe_and_sizes_rows() {
        let spec = SystemSpec::tiny();
        let tile = Tile {
            theta_start: 1,
            theta_end: 3,
            phi_start: 0,
            phi_end: 3,
        };
        let mut slab = NappeDelays::for_tile(&spec, tile);
        let bufs = slab.begin_fill_scratch(7);
        assert_eq!(bufs.samples.len(), 6 * 64);
        assert_eq!(bufs.row_args.len(), 64);
        assert_eq!(bufs.line_args.len(), 6);
        assert_eq!(bufs.line_vals.len(), 6);
        assert_eq!(bufs.row_regs.len(), 8);
        bufs.row_args[0] = 42.0; // scratch contents are not slab value…
        assert_eq!(slab.nappe(), Some(7));
        let fresh = {
            let mut s = NappeDelays::for_tile(&spec, tile);
            s.begin_fill(7);
            s
        };
        assert_eq!(slab, fresh); // …so equality ignores them
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_depth_nappe_rejected_at_fill_boundary() {
        // Release-mode boundary check: the geometry layer only
        // debug_asserts depth indices, so the slab API must reject them
        // unconditionally for every engine (all fills route through
        // begin_fill).
        let spec = SystemSpec::tiny();
        let engine = ExactEngine::new(&spec);
        let mut slab = NappeDelays::full(&spec);
        engine.fill_nappe(16, &mut slab); // tiny grid has n_depth == 16
    }

    #[test]
    fn reset_clears_held_nappe() {
        let spec = SystemSpec::tiny();
        let engine = ExactEngine::new(&spec);
        let mut slab = NappeDelays::full(&spec);
        assert_eq!(slab.n_depth(), 16);
        engine.fill_nappe(3, &mut slab);
        assert_eq!(slab.nappe(), Some(3));
        slab.reset();
        assert_eq!(slab.nappe(), None);
    }

    #[test]
    #[should_panic(expected = "outside tile")]
    fn out_of_tile_scanline_panics() {
        let spec = SystemSpec::tiny();
        let tile = Tile {
            theta_start: 0,
            theta_end: 2,
            phi_start: 0,
            phi_end: 2,
        };
        NappeDelays::for_tile(&spec, tile).slot_of(5, 0);
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn oversized_tile_rejected() {
        let spec = SystemSpec::tiny();
        let tile = Tile {
            theta_start: 0,
            theta_end: 9,
            phi_start: 0,
            phi_end: 8,
        };
        NappeDelays::for_tile(&spec, tile);
    }
}
