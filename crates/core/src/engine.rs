//! The delay-engine abstraction and shared error type.

use crate::NappeDelays;
use std::error::Error;
use std::fmt;
use usbf_geometry::{ElementIndex, VoxelIndex};

/// Panic message shared by the single-transmit defaults of the
/// transmit-indexed trait methods.
const SINGLE_TX_MSG: &str =
    "engine reports multiple transmits but did not override the *_for methods";

/// Panic message shared by the factored-fill defaults: callers must gate
/// on [`DelayEngine::supports_factored_fill`] before using the family.
const FACTORED_MSG: &str =
    "engine does not implement the factored fill family (supports_factored_fill() is false)";

/// A source of beamforming delays: given a focal point and a receive
/// element, produce the two-way propagation delay.
///
/// Engines expose two views:
///
/// * [`DelayEngine::delay_samples`] — the delay in (possibly approximated)
///   fractional samples, before final index rounding; this is what accuracy
///   analyses compare;
/// * [`DelayEngine::delay_index`] — the integer echo-buffer index the
///   hardware would emit (final `floor(x + ½)` rounding stage);
///
/// plus the batched streaming view of the paper's architecture:
///
/// * [`DelayEngine::fill_nappe`] — all delays for one nappe (one depth
///   step) over a fan tile at once, the granularity the hardware streams
///   at. Specialized implementations exploit nappe-to-nappe locality but
///   must stay **bit-exact** with the scalar path.
///
/// Engines are `Sync` so beamformers can fan one engine out across
/// schedule tiles on multiple threads.
///
/// Implementations must be deterministic: repeated queries for the same
/// `(vox, e)` return identical values.
pub trait DelayEngine: Sync {
    /// Short architecture name (e.g. `"TABLEFREE"`), used in reports.
    fn name(&self) -> &'static str;

    /// Two-way delay in fractional samples at the system's `fs`, for the
    /// frame's first transmit. Multi-transmit engines answer for
    /// transmit 0 here; [`DelayEngine::delay_samples_for`] is the general
    /// entry point.
    fn delay_samples(&self, vox: VoxelIndex, e: ElementIndex) -> f64;

    /// Number of transmits this engine serves delays for — the length of
    /// the spec's transmit sequence it was built against. Engines without
    /// multi-transmit support report 1 (the default).
    fn transmit_count(&self) -> usize {
        1
    }

    /// Two-way delay of transmit `tx` in fractional samples: the
    /// transmit-indexed generalization of [`DelayEngine::delay_samples`].
    ///
    /// The default serves single-transmit engines (`tx` must be 0);
    /// engines reporting a larger [`DelayEngine::transmit_count`] must
    /// override it.
    fn delay_samples_for(&self, tx: usize, vox: VoxelIndex, e: ElementIndex) -> f64 {
        assert_eq!(tx, 0, "{SINGLE_TX_MSG}");
        self.delay_samples(vox, e)
    }

    /// Integer echo-buffer index: the rounded delay, clamped to
    /// `[0, echo_buffer_len)`.
    fn delay_index(&self, vox: VoxelIndex, e: ElementIndex) -> i64 {
        self.delay_index_from(self.delay_samples(vox, e))
    }

    /// Integer echo-buffer index for transmit `tx` — rounding identical
    /// to [`DelayEngine::delay_index`].
    fn delay_index_for(&self, tx: usize, vox: VoxelIndex, e: ElementIndex) -> i64 {
        self.delay_index_from(self.delay_samples_for(tx, vox, e))
    }

    /// Final rounding stage: echo-buffer index for an already-computed
    /// fractional delay (`floor(x + ½)`, clamped). Both the scalar
    /// [`DelayEngine::delay_index`] and batched slab consumers route
    /// through this, so engines with rounding telemetry (TABLESTEER's
    /// clamp counter) observe every path.
    fn delay_index_from(&self, samples: f64) -> i64 {
        let idx = (samples + 0.5).floor() as i64;
        idx.clamp(0, self.echo_buffer_len() as i64 - 1)
    }

    /// Length of the echo buffer this engine indexes into.
    fn echo_buffer_len(&self) -> usize;

    /// Fills `out` with every delay of nappe `nappe_idx` over the slab's
    /// fan tile.
    ///
    /// The default falls back to one [`DelayEngine::delay_samples`] query
    /// per entry. Specialized implementations (TABLEFREE's tracked PWL
    /// walk, TABLESTEER's per-scanline correction reuse) must produce
    /// bit-identical slabs — `tests/engine_consistency.rs` enforces this.
    ///
    /// # Panics
    ///
    /// Panics if `nappe_idx` is outside the slab's depth range (checked
    /// in release builds at the [`NappeDelays::begin_fill`] boundary).
    ///
    /// ```
    /// use usbf_core::{DelayEngine, ExactEngine, NappeDelays};
    /// use usbf_geometry::{SystemSpec, VoxelIndex};
    ///
    /// let spec = SystemSpec::tiny();
    /// let engine = ExactEngine::new(&spec);
    /// let mut slab = NappeDelays::full(&spec);
    /// engine.fill_nappe(8, &mut slab);
    /// // The slab holds exactly what per-voxel queries would return:
    /// let e = spec.elements.center_element();
    /// let vox = VoxelIndex::new(4, 4, 8);
    /// assert_eq!(slab.at(4, 4, e), engine.delay_samples(vox, e));
    /// ```
    fn fill_nappe(&self, nappe_idx: usize, out: &mut NappeDelays) {
        out.fill_scalar(self, nappe_idx);
    }

    /// Transmit-indexed slab fill: like [`DelayEngine::fill_nappe`] but
    /// for transmit `tx` of a multi-transmit frame. Specialized overrides
    /// must stay bit-exact with the scalar
    /// [`NappeDelays::fill_scalar_for`] reference per transmit.
    ///
    /// The default serves single-transmit engines by delegating `tx == 0`
    /// to [`DelayEngine::fill_nappe`] (so engines that only override the
    /// unindexed method keep their batched path).
    fn fill_nappe_for(&self, tx: usize, nappe_idx: usize, out: &mut NappeDelays) {
        assert_eq!(tx, 0, "{SINGLE_TX_MSG}");
        self.fill_nappe(nappe_idx, out);
    }

    /// Streamed slab fill: like [`DelayEngine::fill_nappe`], but hands
    /// every completed row to `consume(slot, row)` as soon as it is
    /// produced, while the row is still cache-hot.
    ///
    /// This is the software-pipelining hook of the tile kernel: for
    /// fill-bound engines (TABLEFREE's PWL datapath) the beamformer's
    /// gather/MAC for row *s* runs interleaved with the generation of row
    /// *s + 1*, instead of only after the whole slab is done. Rows are
    /// delivered exactly once each, in slab slot order, and the slab is
    /// completely filled when this returns — callers that ignore
    /// `consume` get plain `fill_nappe` behaviour.
    ///
    /// The default fills the slab and then replays the rows; engines with
    /// a batched fill override this to interleave for real.
    ///
    /// # Panics
    ///
    /// Same contract as [`DelayEngine::fill_nappe`].
    fn fill_nappe_streamed(
        &self,
        nappe_idx: usize,
        out: &mut NappeDelays,
        consume: &mut dyn FnMut(usize, &[f64]),
    ) {
        self.fill_nappe(nappe_idx, out);
        for slot in 0..out.scanline_count() {
            consume(slot, out.row(slot));
        }
    }

    /// Transmit-indexed streamed fill: [`DelayEngine::fill_nappe_streamed`]
    /// for transmit `tx`. Same row-delivery contract. The default delegates
    /// `tx == 0` to the unindexed streamed fill (preserving whatever
    /// interleaving the engine implements there) and serves `tx > 0` by
    /// filling through [`DelayEngine::fill_nappe_for`] and replaying the
    /// rows — so an engine only needs a dedicated override when it can
    /// interleave the multi-transmit fill for real.
    fn fill_nappe_streamed_for(
        &self,
        tx: usize,
        nappe_idx: usize,
        out: &mut NappeDelays,
        consume: &mut dyn FnMut(usize, &[f64]),
    ) {
        if tx == 0 {
            self.fill_nappe_streamed(nappe_idx, out, consume);
        } else {
            self.fill_nappe_for(tx, nappe_idx, out);
            for slot in 0..out.scanline_count() {
                consume(slot, out.row(slot));
            }
        }
    }

    /// Whether this engine implements the factored compound-fill family
    /// ([`DelayEngine::fill_nappe_rx`] / [`DelayEngine::combine_tx_row`]).
    ///
    /// The receive leg of Eq. 2 — `|S − D|`, the per-element term that
    /// dominates fill cost — is transmit-invariant: only a per-voxel
    /// transmit scalar differs between the N angles of a compound frame.
    /// Engines that can split their fill along that seam report `true`
    /// here, and compound consumers fill the receive slab **once** per
    /// (nappe, tile) and run one cheap combine per transmit, turning the
    /// per-voxel fill cost from `O(N · elements)` into `O(elements + N)`.
    /// Engines answering `false` (and the defaults, which panic) are
    /// served by the fused per-transmit
    /// [`DelayEngine::fill_nappe_streamed_for`] path instead.
    fn supports_factored_fill(&self) -> bool {
        false
    }

    /// Fills `out` with the transmit-invariant **receive leg** of nappe
    /// `nappe_idx`, streaming each completed row to `consume(slot, row)`
    /// cache-hot — the factored counterpart of
    /// [`DelayEngine::fill_nappe_streamed`], with the same row-delivery
    /// contract (every row exactly once, in slab slot order).
    ///
    /// The slab's contents after this call are **engine-defined
    /// intermediates** (EXACT stores receive distances in metres,
    /// TABLESTEER pre-scale raw fixed-point sums, …): only the output of
    /// [`DelayEngine::combine_tx_row`] on a delivered row is specified —
    /// it must be bit-identical to the corresponding row of
    /// [`DelayEngine::fill_nappe_for`]. The slab's nappe marker is set,
    /// so warm slabs are reused exactly like fused fills reuse them.
    ///
    /// # Panics
    ///
    /// The default panics: callers must gate on
    /// [`DelayEngine::supports_factored_fill`]. Implementations panic if
    /// `nappe_idx` is out of range, as [`DelayEngine::fill_nappe`] does.
    fn fill_nappe_rx_streamed(
        &self,
        nappe_idx: usize,
        out: &mut NappeDelays,
        consume: &mut dyn FnMut(usize, &[f64]),
    ) {
        let _ = (nappe_idx, out, consume);
        panic!("{FACTORED_MSG}");
    }

    /// Non-streamed receive-leg fill:
    /// [`DelayEngine::fill_nappe_rx_streamed`] with no row consumer.
    ///
    /// # Panics
    ///
    /// Same contract as [`DelayEngine::fill_nappe_rx_streamed`].
    fn fill_nappe_rx(&self, nappe_idx: usize, out: &mut NappeDelays) {
        self.fill_nappe_rx_streamed(nappe_idx, out, &mut |_, _| {});
    }

    /// Combines one receive-leg row (as delivered by
    /// [`DelayEngine::fill_nappe_rx_streamed`] for the scanline of `vox`)
    /// with transmit `tx`'s per-voxel term, writing into `out` the exact
    /// fractional-delay row the fused [`DelayEngine::fill_nappe_for`]
    /// would produce — **bit-identical**, before the engine's own
    /// quantization stage. For EXACT / NAIVE / TABLEFREE the combine is an
    /// f64 add (or a table widen); for TABLESTEER it is the already-folded
    /// fixed-point transmit-correction constant.
    ///
    /// # Panics
    ///
    /// The default panics: callers must gate on
    /// [`DelayEngine::supports_factored_fill`]. Implementations panic if
    /// `rx_row` and `out` differ in length.
    fn combine_tx_row(&self, tx: usize, vox: VoxelIndex, rx_row: &[f64], out: &mut [f64]) {
        let _ = (tx, vox, rx_row, out);
        panic!("{FACTORED_MSG}");
    }

    /// Whether this engine's final rounding stage carries **observable
    /// telemetry** — counters a caller could read that advance once per
    /// quantized value (TABLESTEER's clamp counter is the one live
    /// example). Compound kernels use this to decide whether a fully
    /// masked (zero-weight) transmit must still run
    /// [`DelayEngine::quantize_row`]: when rounding is side-effect-free
    /// the whole per-transmit body can be skipped with bit-identical
    /// output *and* telemetry, which is where most of the factored
    /// kernel's win comes from on steered fans whose footprints cover a
    /// voxel only partially. Engines that add rounding telemetry MUST
    /// override this to `true`, or masked voxels stop being counted.
    fn rounding_telemetry(&self) -> bool {
        false
    }

    /// Batched final rounding: quantizes one row of fractional delays to
    /// echo-buffer indices, writing `out[i] = delay_index_from(row[i])`.
    ///
    /// This is the per-row counterpart of
    /// [`DelayEngine::delay_index_from`]: the beamformer's inner kernel
    /// calls it **once per (nappe, scanline) row** instead of making one
    /// virtual `delay_index_from` call per element, so specialized
    /// overrides run a tight, monomorphic clamp loop. Overrides must be
    /// bit-identical to the default, and engines with rounding telemetry
    /// (TABLESTEER's clamp counter) must accumulate **exactly** the same
    /// counts the per-element path would — `tests/engine_consistency.rs`
    /// enforces both.
    ///
    /// # Panics
    ///
    /// Panics if `row` and `out` differ in length.
    fn quantize_row(&self, row: &[f64], out: &mut [i32]) {
        assert_eq!(row.len(), out.len(), "index row must match delay row");
        assert!(
            self.echo_buffer_len() as u64 <= i32::MAX as u64,
            "echo buffer too long for i32 indices"
        );
        for (o, &s) in out.iter_mut().zip(row) {
            *o = self.delay_index_from(s) as i32;
        }
    }
}

/// The shared branch-lean body of the specialized [`DelayEngine::quantize_row`]
/// overrides: `floor(x + ½)` rounding clamped to `[0, echo_len)`, exactly
/// the default `delay_index_from` arithmetic, plus a clamp count for
/// engines that keep rounding telemetry. One definition so the engines
/// cannot drift from each other (or from the scalar rounding stage).
#[inline]
pub(crate) fn quantize_row_clamped(echo_len: usize, row: &[f64], out: &mut [i32]) -> u64 {
    assert_eq!(row.len(), out.len(), "index row must match delay row");
    assert!(
        echo_len as u64 <= i32::MAX as u64,
        "echo buffer too long for i32 indices"
    );
    let hi = (echo_len - 1) as f64;
    let lim = echo_len as f64;
    let mut clamps = 0u64;
    for (o, &s) in out.iter_mut().zip(row) {
        // Clamp in float space, then truncate. This avoids both `floor`
        // (a libm call on baseline x86-64 — no `roundpd` below SSE4.1)
        // and the f64→i64 conversion (no packed form below AVX-512), so
        // the loop autovectorizes. It is bit-identical to the default
        // `floor(x+½).clamp(0, hi)` path: after the clamp every value is
        // non-negative, where truncation *is* floor; `max` maps NaN to 0
        // like the saturating int cast does; and a fetch is out of
        // window exactly when `x+½ < 0` (floor < 0) or `x+½ ≥ echo_len`
        // (floor > hi), which is the clamp-telemetry condition below.
        let y = s + 0.5;
        let z = y.max(0.0).min(hi);
        clamps += u64::from((y < 0.0) | (y >= lim));
        *o = z as i32;
    }
    clamps
}

/// Opts an engine out of the factored compound-fill family: forwards
/// every [`DelayEngine`] method to the wrapped engine **except** the
/// factored family, reporting
/// [`supports_factored_fill`](DelayEngine::supports_factored_fill) as
/// `false` so compound consumers take their fused per-transmit path.
///
/// This is how the fused fill stays a live, bit-identity-tested baseline
/// for the factored restructuring (benches compare the two; tests assert
/// they agree bit for bit), and an escape hatch should a caller ever want
/// the historical schedule back.
///
/// ```
/// use usbf_core::{DelayEngine, ExactEngine, FusedOnly};
/// use usbf_geometry::SystemSpec;
/// let spec = SystemSpec::tiny();
/// let fused = FusedOnly(ExactEngine::new(&spec));
/// assert!(fused.0.supports_factored_fill());
/// assert!(!fused.supports_factored_fill());
/// ```
#[derive(Debug, Clone)]
pub struct FusedOnly<E>(pub E);

impl<E: DelayEngine> DelayEngine for FusedOnly<E> {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn delay_samples(&self, vox: VoxelIndex, e: ElementIndex) -> f64 {
        self.0.delay_samples(vox, e)
    }
    fn transmit_count(&self) -> usize {
        self.0.transmit_count()
    }
    fn delay_samples_for(&self, tx: usize, vox: VoxelIndex, e: ElementIndex) -> f64 {
        self.0.delay_samples_for(tx, vox, e)
    }
    fn delay_index(&self, vox: VoxelIndex, e: ElementIndex) -> i64 {
        self.0.delay_index(vox, e)
    }
    fn delay_index_for(&self, tx: usize, vox: VoxelIndex, e: ElementIndex) -> i64 {
        self.0.delay_index_for(tx, vox, e)
    }
    fn delay_index_from(&self, samples: f64) -> i64 {
        self.0.delay_index_from(samples)
    }
    fn echo_buffer_len(&self) -> usize {
        self.0.echo_buffer_len()
    }
    fn fill_nappe(&self, nappe_idx: usize, out: &mut NappeDelays) {
        self.0.fill_nappe(nappe_idx, out);
    }
    fn fill_nappe_for(&self, tx: usize, nappe_idx: usize, out: &mut NappeDelays) {
        self.0.fill_nappe_for(tx, nappe_idx, out);
    }
    fn fill_nappe_streamed(
        &self,
        nappe_idx: usize,
        out: &mut NappeDelays,
        consume: &mut dyn FnMut(usize, &[f64]),
    ) {
        self.0.fill_nappe_streamed(nappe_idx, out, consume);
    }
    fn fill_nappe_streamed_for(
        &self,
        tx: usize,
        nappe_idx: usize,
        out: &mut NappeDelays,
        consume: &mut dyn FnMut(usize, &[f64]),
    ) {
        self.0.fill_nappe_streamed_for(tx, nappe_idx, out, consume);
    }
    fn quantize_row(&self, row: &[f64], out: &mut [i32]) {
        self.0.quantize_row(row, out);
    }
    fn rounding_telemetry(&self) -> bool {
        self.0.rounding_telemetry()
    }
}

/// Errors from engine construction.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A precomputed table would exceed the allowed memory budget
    /// (the §II-B infeasibility, made concrete).
    TableTooLarge {
        /// Bytes the table would need.
        required_bytes: u64,
        /// The configured limit.
        limit_bytes: u64,
    },
    /// A fixed-point coefficient did not fit its format.
    Fixed(usbf_fixed::FixedError),
    /// The PWL square-root table could not be built.
    Pwl(usbf_pwl::PwlError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::TableTooLarge {
                required_bytes,
                limit_bytes,
            } => write!(
                f,
                "delay table needs {required_bytes} bytes, exceeding the {limit_bytes}-byte budget"
            ),
            EngineError::Fixed(e) => write!(f, "fixed-point error: {e}"),
            EngineError::Pwl(e) => write!(f, "PWL construction error: {e}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Fixed(e) => Some(e),
            EngineError::Pwl(e) => Some(e),
            EngineError::TableTooLarge { .. } => None,
        }
    }
}

impl From<usbf_fixed::FixedError> for EngineError {
    fn from(e: usbf_fixed::FixedError) -> Self {
        EngineError::Fixed(e)
    }
}

impl From<usbf_pwl::PwlError> for EngineError {
    fn from(e: usbf_pwl::PwlError) -> Self {
        EngineError::Pwl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ConstEngine(f64);
    impl DelayEngine for ConstEngine {
        fn name(&self) -> &'static str {
            "CONST"
        }
        fn delay_samples(&self, _: VoxelIndex, _: ElementIndex) -> f64 {
            self.0
        }
        fn echo_buffer_len(&self) -> usize {
            100
        }
    }

    #[test]
    fn default_index_rounds_half_up() {
        let v = VoxelIndex::new(0, 0, 0);
        let e = ElementIndex::new(0, 0);
        assert_eq!(ConstEngine(10.49).delay_index(v, e), 10);
        assert_eq!(ConstEngine(10.5).delay_index(v, e), 11);
    }

    #[test]
    fn default_index_clamps_to_buffer() {
        let v = VoxelIndex::new(0, 0, 0);
        let e = ElementIndex::new(0, 0);
        assert_eq!(ConstEngine(1e9).delay_index(v, e), 99);
        assert_eq!(ConstEngine(-5.0).delay_index(v, e), 0);
    }

    #[test]
    fn default_quantize_row_matches_per_element_rounding() {
        let eng = ConstEngine(0.0);
        let row = [10.49, 10.5, -3.0, 1e9, 98.7, 0.0];
        let mut out = [0i32; 6];
        eng.quantize_row(&row, &mut out);
        for (&s, &o) in row.iter().zip(&out) {
            assert_eq!(o as i64, eng.delay_index_from(s));
        }
        assert_eq!(out, [10, 11, 0, 99, 99, 0]);
    }

    #[test]
    fn quantize_row_clamped_counts_every_clamp() {
        let row = [-1.0, 0.0, 50.0, 99.2, 2e9];
        let mut out = [0i32; 5];
        let clamps = quantize_row_clamped(100, &row, &mut out);
        assert_eq!(out, [0, 0, 50, 99, 99]);
        assert_eq!(clamps, 2); // -1.0 and 2e9 fall outside the window
    }

    #[test]
    #[should_panic(expected = "index row must match delay row")]
    fn quantize_row_rejects_length_mismatch() {
        ConstEngine(0.0).quantize_row(&[1.0, 2.0], &mut [0i32; 3]);
    }

    #[test]
    fn default_streamed_fill_delivers_every_row_once_in_order() {
        let spec = usbf_geometry::SystemSpec::tiny();
        let eng = ConstEngine(7.25);
        let mut slab = NappeDelays::full(&spec);
        let mut seen = Vec::new();
        eng.fill_nappe_streamed(3, &mut slab, &mut |slot, row| {
            assert!(row.iter().all(|&d| d == 7.25));
            seen.push((slot, row.len()));
        });
        assert_eq!(slab.nappe(), Some(3));
        let expected: Vec<_> = (0..slab.scanline_count())
            .map(|s| (s, slab.n_elements()))
            .collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn factored_fill_defaults_to_unsupported() {
        assert!(!ConstEngine(1.0).supports_factored_fill());
    }

    #[test]
    #[should_panic(expected = "factored fill")]
    fn factored_fill_default_panics() {
        let spec = usbf_geometry::SystemSpec::tiny();
        let mut slab = NappeDelays::full(&spec);
        ConstEngine(1.0).fill_nappe_rx(0, &mut slab);
    }

    #[test]
    #[should_panic(expected = "factored fill")]
    fn combine_default_panics() {
        let rx = [0.0; 4];
        let mut out = [0.0; 4];
        ConstEngine(1.0).combine_tx_row(0, VoxelIndex::new(0, 0, 0), &rx, &mut out);
    }

    #[test]
    fn fused_only_forwards_everything_but_the_factored_family() {
        let eng = FusedOnly(ConstEngine(10.5));
        let v = VoxelIndex::new(0, 0, 0);
        let e = ElementIndex::new(0, 0);
        assert_eq!(eng.name(), "CONST");
        assert_eq!(eng.delay_samples(v, e), 10.5);
        assert_eq!(eng.delay_index(v, e), 11);
        assert_eq!(eng.transmit_count(), 1);
        assert_eq!(eng.echo_buffer_len(), 100);
        assert!(!eng.supports_factored_fill());
        assert!(!eng.rounding_telemetry());
        let spec = usbf_geometry::SystemSpec::tiny();
        let mut a = NappeDelays::full(&spec);
        let mut b = NappeDelays::full(&spec);
        eng.fill_nappe(2, &mut a);
        eng.0.fill_nappe(2, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn error_display_and_source() {
        let e = EngineError::TableTooLarge {
            required_bytes: 100,
            limit_bytes: 10,
        };
        assert!(e.to_string().contains("exceeding"));
        assert!(e.source().is_none());
        let e: EngineError = usbf_pwl::PwlError::InvalidDelta(0.0).into();
        assert!(e.source().is_some());
    }
}
