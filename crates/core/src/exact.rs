//! The double-precision golden model.

use crate::{DelayEngine, NappeDelays};
use usbf_geometry::{ElementIndex, SystemSpec, Vec3, VoxelIndex};

/// Exact Eq. 2 evaluation in double precision — the reference every
/// approximate architecture is compared against ("we compared our
/// approximated fixed-point implementation with an exact computation",
/// §VI-A).
///
/// ```
/// use usbf_core::{DelayEngine, ExactEngine};
/// use usbf_geometry::{SystemSpec, VoxelIndex, ElementIndex};
/// let spec = SystemSpec::tiny();
/// let e = ExactEngine::new(&spec);
/// let t = e.delay_samples(VoxelIndex::new(4, 4, 15), ElementIndex::new(0, 0));
/// assert!(t > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ExactEngine {
    spec: SystemSpec,
    /// Element positions in linear order, cached for the batched fill.
    elem_pos: Vec<Vec3>,
    echo_len: usize,
}

impl ExactEngine {
    /// Creates the golden model for a system specification.
    pub fn new(spec: &SystemSpec) -> Self {
        ExactEngine {
            elem_pos: spec
                .elements
                .iter()
                .map(|e| spec.elements.position(e))
                .collect(),
            spec: spec.clone(),
            echo_len: spec.echo_buffer_len(),
        }
    }

    /// The underlying specification.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }
}

impl DelayEngine for ExactEngine {
    fn name(&self) -> &'static str {
        "EXACT"
    }

    fn delay_samples(&self, vox: VoxelIndex, e: ElementIndex) -> f64 {
        self.delay_samples_for(0, vox, e)
    }

    fn transmit_count(&self) -> usize {
        self.spec.n_transmits()
    }

    fn delay_samples_for(&self, tx: usize, vox: VoxelIndex, e: ElementIndex) -> f64 {
        let s = self.spec.volume_grid.position(vox);
        let d = self.spec.elements.position(e);
        self.spec.two_way_delay_samples_for(tx, s, d)
    }

    fn echo_buffer_len(&self) -> usize {
        self.echo_len
    }

    /// Batched nappe fill for transmit 0: see
    /// [`ExactEngine::fill_nappe_for`].
    fn fill_nappe(&self, nappe_idx: usize, out: &mut NappeDelays) {
        self.fill_nappe_for(0, nappe_idx, out);
    }

    /// Batched nappe fill: the focal-point position and the transmit leg
    /// (point source `|S − O|`, plane wave `n̂ · S`) are computed once per
    /// focal point and shared across all elements (the scalar path
    /// re-derives both per query). Bit-exact: the per-element expression
    /// `((tx + |S − D|) / c) · fs` is unchanged.
    fn fill_nappe_for(&self, tx: usize, nappe_idx: usize, out: &mut NappeDelays) {
        let tile = out.tile();
        let n_elements = out.n_elements();
        let spec = &self.spec;
        let fs = spec.sampling_frequency;
        let c = spec.speed_of_sound;
        let buf = out.begin_fill(nappe_idx);
        for (slot, it, ip) in tile.iter_scanlines() {
            let s = spec
                .volume_grid
                .position(VoxelIndex::new(it, ip, nappe_idx));
            let t = spec.transmit_distance(tx, s);
            let row = &mut buf[slot * n_elements..(slot + 1) * n_elements];
            for (j, value) in row.iter_mut().enumerate() {
                *value = (t + s.distance(self.elem_pos[j])) / c * fs;
            }
        }
    }

    /// Batched rounding: one monomorphic clamp loop per row instead of a
    /// virtual `delay_index_from` call per element.
    fn quantize_row(&self, row: &[f64], out: &mut [i32]) {
        crate::engine::quantize_row_clamped(self.echo_len, row, out);
    }

    fn supports_factored_fill(&self) -> bool {
        true
    }

    /// Receive-leg fill: the slab rows hold `|S − D|` in **metres** — the
    /// per-element Euclidean distances, which are the expensive,
    /// transmit-invariant part of the fused fill's
    /// `((tx + |S − D|) / c) · fs` expression.
    fn fill_nappe_rx_streamed(
        &self,
        nappe_idx: usize,
        out: &mut NappeDelays,
        consume: &mut dyn FnMut(usize, &[f64]),
    ) {
        let tile = out.tile();
        let n_elements = out.n_elements();
        let spec = &self.spec;
        let buf = out.begin_fill(nappe_idx);
        for (slot, it, ip) in tile.iter_scanlines() {
            let s = spec
                .volume_grid
                .position(VoxelIndex::new(it, ip, nappe_idx));
            let range = slot * n_elements..(slot + 1) * n_elements;
            let row = &mut buf[range.clone()];
            for (value, d) in row.iter_mut().zip(&self.elem_pos) {
                *value = s.distance(*d);
            }
            consume(slot, &buf[range]);
        }
    }

    /// Transmit combine: `((t + rx) / c) · fs` with the transmit distance
    /// `t` computed once per row — literally the fused fill's per-element
    /// expression with the receive distance read from the rx slab, so the
    /// output is bit-identical to [`ExactEngine::fill_nappe_for`].
    fn combine_tx_row(&self, tx: usize, vox: VoxelIndex, rx_row: &[f64], out: &mut [f64]) {
        assert_eq!(rx_row.len(), out.len(), "combine row length mismatch");
        let spec = &self.spec;
        let fs = spec.sampling_frequency;
        let c = spec.speed_of_sound;
        let s = spec.volume_grid.position(vox);
        let t = spec.transmit_distance(tx, s);
        for (o, &rx) in out.iter_mut().zip(rx_row) {
            *o = (t + rx) / c * fs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_axis_two_way_is_twice_depth() {
        // Odd-grid spec puts a scanline exactly on the z axis and an
        // element exactly at the origin.
        let base = SystemSpec::tiny();
        let spec = SystemSpec::new(
            base.speed_of_sound,
            base.sampling_frequency,
            usbf_geometry::TransducerSpec {
                nx: 9,
                ny: 9,
                ..base.transducer.clone()
            },
            usbf_geometry::VolumeSpec {
                n_theta: 9,
                n_phi: 9,
                ..base.volume.clone()
            },
            base.origin,
            base.frame_rate,
        );
        let eng = ExactEngine::new(&spec);
        let vox = VoxelIndex::new(4, 4, 7);
        let center = spec.elements.center_element();
        let expect = 2.0 * spec.metres_to_samples(spec.volume_grid.depth_of(7));
        assert!((eng.delay_samples(vox, center) - expect).abs() < 1e-9);
    }

    #[test]
    fn delay_increases_with_element_distance() {
        let spec = SystemSpec::tiny();
        let eng = ExactEngine::new(&spec);
        // On-axis-ish voxel: farther elements have longer receive paths.
        let vox = VoxelIndex::new(4, 4, 15);
        let near = eng.delay_samples(vox, ElementIndex::new(4, 4));
        let far = eng.delay_samples(vox, ElementIndex::new(0, 0));
        assert!(far > near);
    }

    #[test]
    fn index_is_rounding_of_samples() {
        let spec = SystemSpec::tiny();
        let eng = ExactEngine::new(&spec);
        let vox = VoxelIndex::new(2, 5, 9);
        let e = ElementIndex::new(1, 6);
        let s = eng.delay_samples(vox, e);
        assert_eq!(eng.delay_index(vox, e), (s + 0.5).floor() as i64);
    }

    #[test]
    fn plane_wave_transmit_matches_projection_delay() {
        let theta = usbf_geometry::deg(10.0);
        let spec = SystemSpec::tiny().with_transmits(vec![
            usbf_geometry::TransmitModel::PointSource,
            usbf_geometry::TransmitModel::plane_wave(theta, 0.0),
        ]);
        let eng = ExactEngine::new(&spec);
        assert_eq!(eng.transmit_count(), 2);
        let vox = VoxelIndex::new(4, 4, 10);
        let e = ElementIndex::new(2, 3);
        let s = spec.volume_grid.position(vox);
        let d = spec.elements.position(e);
        let n = usbf_geometry::SphericalDirection::new(theta, 0.0).unit();
        let expect = (n.dot(s) + s.distance(d)) / spec.speed_of_sound * spec.sampling_frequency;
        assert!((eng.delay_samples_for(1, vox, e) - expect).abs() < 1e-9);
        // Transmit 0 still answers the historical point-source delay.
        assert_eq!(
            eng.delay_samples_for(0, vox, e).to_bits(),
            eng.delay_samples(vox, e).to_bits()
        );
    }

    #[test]
    fn plane_wave_fill_bit_exact_with_scalar_path() {
        let spec = SystemSpec::tiny().with_transmits(usbf_geometry::TransmitModel::plane_wave_fan(
            3,
            usbf_geometry::deg(12.0),
        ));
        let eng = ExactEngine::new(&spec);
        for tx in 0..3 {
            let mut batched = crate::NappeDelays::full(&spec);
            let mut scalar = crate::NappeDelays::full(&spec);
            eng.fill_nappe_for(tx, 9, &mut batched);
            scalar.fill_scalar_for(&eng, tx, 9);
            for (a, b) in batched.samples().iter().zip(scalar.samples()) {
                assert_eq!(a.to_bits(), b.to_bits(), "tx {tx}");
            }
        }
    }

    #[test]
    fn factored_fill_bit_identical_to_fused_fill() {
        let spec = SystemSpec::tiny().with_transmits(usbf_geometry::TransmitModel::plane_wave_fan(
            4,
            usbf_geometry::deg(10.0),
        ));
        let eng = ExactEngine::new(&spec);
        assert!(eng.supports_factored_fill());
        let mut rx = crate::NappeDelays::full(&spec);
        let mut fused = crate::NappeDelays::full(&spec);
        let mut combined = vec![0.0; rx.n_elements()];
        for id in [0, 7, 15] {
            eng.fill_nappe_rx(id, &mut rx);
            assert_eq!(rx.nappe(), Some(id));
            for tx in 0..4 {
                eng.fill_nappe_for(tx, id, &mut fused);
                for (slot, it, ip) in fused.scanlines() {
                    eng.combine_tx_row(
                        tx,
                        VoxelIndex::new(it, ip, id),
                        rx.row(slot),
                        &mut combined,
                    );
                    for (a, b) in combined.iter().zip(fused.row(slot)) {
                        assert_eq!(a.to_bits(), b.to_bits(), "tx {tx} nappe {id} slot {slot}");
                    }
                }
            }
        }
    }

    #[test]
    fn engine_metadata() {
        let spec = SystemSpec::tiny();
        let eng = ExactEngine::new(&spec);
        assert_eq!(eng.name(), "EXACT");
        assert_eq!(eng.echo_buffer_len(), spec.echo_buffer_len());
        assert_eq!(eng.spec().elements.count(), 64);
    }
}
