//! Property-based invariants of the delay engines.

use proptest::prelude::*;
use usbf_core::{
    DelayEngine, ExactEngine, NaiveTableEngine, NappeDelays, NappeSchedule, TableFreeConfig,
    TableFreeEngine, TableSteerConfig, TableSteerEngine, Tile,
};
use usbf_geometry::{
    SystemSpec, TransducerSpec, TransmitModel, Vec3, VolumeSpec, VoxelIndex, SPEED_OF_SOUND,
};
use usbf_tables::error::theoretical_bound_seconds;

use std::sync::OnceLock;

/// A randomized tiny geometry with the paper's physical extents: small
/// enough that all four engines build and fill in microseconds, varied
/// enough that slab layouts, fold maps and PWL walks see every
/// even/odd × wide/narrow combination.
fn random_spec(nx: usize, ny: usize, n_theta: usize, n_phi: usize, n_depth: usize) -> SystemSpec {
    let fc = 4.0e6;
    let lambda = SPEED_OF_SOUND / fc;
    SystemSpec::new(
        SPEED_OF_SOUND,
        32.0e6,
        TransducerSpec {
            center_frequency: fc,
            bandwidth: 4.0e6,
            nx,
            ny,
            pitch: lambda / 2.0,
        },
        VolumeSpec {
            theta_max: usbf_geometry::deg(36.5),
            phi_max: usbf_geometry::deg(36.5),
            depth_max: 500.0 * lambda,
            n_theta,
            n_phi,
            n_depth,
        },
        Vec3::ZERO,
        15.0,
    )
}

/// A random transmit sequence mixing steered plane waves with the
/// classic point emission, deterministically derived from proptest
/// integers: bit `i` of `kinds` picks transmit `i`'s flavour, `a`/`b`
/// seed the steering angles (±12° in 1° steps, varied per transmit).
fn random_transmits(n_tx: usize, kinds: usize, a: usize, b: usize) -> Vec<TransmitModel> {
    (0..n_tx)
        .map(|i| {
            if (kinds >> i) & 1 == 0 {
                TransmitModel::PointSource
            } else {
                let theta = ((a + 7 * i) % 25) as f64 - 12.0;
                let phi = ((b + 5 * i) % 25) as f64 - 12.0;
                TransmitModel::plane_wave(usbf_geometry::deg(theta), usbf_geometry::deg(phi))
            }
        })
        .collect()
}

/// A random fan tile: `(a, b)` picks start/width within `n` lines.
fn random_span(n: usize, a: usize, b: usize) -> (usize, usize) {
    let start = a % n;
    let width = 1 + b % (n - start);
    (start, start + width)
}

struct Fixture {
    spec: SystemSpec,
    exact: ExactEngine,
    tablefree: TableFreeEngine,
    tablesteer: TableSteerEngine,
    bound_samples: f64,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let spec = SystemSpec::tiny();
        Fixture {
            exact: ExactEngine::new(&spec),
            tablefree: TableFreeEngine::new(&spec, TableFreeConfig::paper()).expect("builds"),
            tablesteer: TableSteerEngine::new(&spec, TableSteerConfig::bits18()).expect("builds"),
            bound_samples: spec.seconds_to_samples(theoretical_bound_seconds(&spec)),
            spec,
        }
    })
}

proptest! {
    #[test]
    fn tablefree_error_envelope_everywhere(
        vox_pick in 0usize..100_000,
        e_pick in 0usize..64,
    ) {
        let f = fixture();
        let vox = f.spec.volume_grid.voxel_at(vox_pick % f.spec.volume_grid.voxel_count());
        let e = f.spec.elements.element_at(e_pick % f.spec.elements.count());
        let err = (f.tablefree.delay_samples(vox, e) - f.exact.delay_samples(vox, e)).abs();
        // Two δ=0.25 PWL approximations + quantization headroom.
        prop_assert!(err <= 0.7, "err = {}", err);
        let sel = (f.tablefree.delay_index(vox, e) - f.exact.delay_index(vox, e)).abs();
        prop_assert!(sel <= 2, "selection error {}", sel);
    }

    #[test]
    fn tablesteer_error_below_theoretical_bound(
        vox_pick in 0usize..100_000,
        e_pick in 0usize..64,
    ) {
        let f = fixture();
        let vox = f.spec.volume_grid.voxel_at(vox_pick % f.spec.volume_grid.voxel_count());
        let e = f.spec.elements.element_at(e_pick % f.spec.elements.count());
        let err = (f.tablesteer.delay_samples(vox, e) - f.exact.delay_samples(vox, e)).abs();
        prop_assert!(err <= f.bound_samples + 1.0, "err = {} bound = {}", err, f.bound_samples);
    }

    #[test]
    fn indices_always_inside_echo_buffer(
        vox_pick in 0usize..100_000,
        e_pick in 0usize..64,
    ) {
        let f = fixture();
        let vox = f.spec.volume_grid.voxel_at(vox_pick % f.spec.volume_grid.voxel_count());
        let e = f.spec.elements.element_at(e_pick % f.spec.elements.count());
        for eng in [&f.exact as &dyn DelayEngine, &f.tablefree, &f.tablesteer] {
            let idx = eng.delay_index(vox, e);
            prop_assert!(idx >= 0 && (idx as usize) < eng.echo_buffer_len());
        }
    }

    #[test]
    fn engines_are_deterministic(
        vox_pick in 0usize..100_000,
        e_pick in 0usize..64,
    ) {
        let f = fixture();
        let vox = f.spec.volume_grid.voxel_at(vox_pick % f.spec.volume_grid.voxel_count());
        let e = f.spec.elements.element_at(e_pick % f.spec.elements.count());
        for eng in [&f.exact as &dyn DelayEngine, &f.tablefree, &f.tablesteer] {
            prop_assert_eq!(eng.delay_samples(vox, e), eng.delay_samples(vox, e));
            prop_assert_eq!(eng.delay_index(vox, e), eng.delay_index(vox, e));
        }
    }

    #[test]
    fn batched_fills_bit_identical_to_scalar_for_all_engines_on_random_geometries(
        nx in 2usize..6,
        ny in 2usize..6,
        n_theta in 2usize..8,
        n_phi in 2usize..8,
        n_depth in 4usize..12,
        tile_theta in (0usize..1000, 0usize..1000),
        tile_phi in (0usize..1000, 0usize..1000),
        nappe_pick in 0usize..1000,
    ) {
        let spec = random_spec(nx, ny, n_theta, n_phi, n_depth);
        let exact = ExactEngine::new(&spec);
        let naive = NaiveTableEngine::build(&spec, u64::MAX).expect("tiny table fits");
        let tablefree = TableFreeEngine::new(&spec, TableFreeConfig::paper()).expect("builds");
        let tablesteer =
            TableSteerEngine::new(&spec, TableSteerConfig::bits18()).expect("builds");
        let (theta_start, theta_end) = random_span(n_theta, tile_theta.0, tile_theta.1);
        let (phi_start, phi_end) = random_span(n_phi, tile_phi.0, tile_phi.1);
        let tile = Tile { theta_start, theta_end, phi_start, phi_end };
        let nappe = nappe_pick % n_depth;
        for engine in [&exact as &dyn DelayEngine, &naive, &tablefree, &tablesteer] {
            let mut batched = NappeDelays::for_tile(&spec, tile);
            engine.fill_nappe(nappe, &mut batched);
            let mut scalar = NappeDelays::for_tile(&spec, tile);
            scalar.fill_scalar(engine, nappe);
            prop_assert_eq!(
                batched.samples(), scalar.samples(),
                "{} {}x{} elements, {}x{}x{} fan, tile {:?}, nappe {}",
                engine.name(), nx, ny, n_theta, n_phi, n_depth, tile, nappe
            );
        }
    }

    #[test]
    fn multi_transmit_fills_bit_identical_to_scalar_per_transmit_on_random_sequences(
        nx in 2usize..6,
        ny in 2usize..6,
        n_theta in 2usize..8,
        n_phi in 2usize..8,
        n_depth in 4usize..12,
        tile_theta in (0usize..1000, 0usize..1000),
        tile_phi in (0usize..1000, 0usize..1000),
        nappe_pick in 0usize..1000,
        n_tx in 1usize..5,
        kinds in 0usize..16,
        angle_a in 0usize..1000,
        angle_b in 0usize..1000,
    ) {
        // Every engine's transmit-indexed batched fill — plain and
        // streamed — must reproduce the scalar per-voxel reference bit
        // for bit on every transmit of a random compound sequence, and
        // the streamed path must deliver each row exactly once in slot
        // order.
        let transmits = random_transmits(n_tx, kinds, angle_a, angle_b);
        let spec = random_spec(nx, ny, n_theta, n_phi, n_depth).with_transmits(transmits);
        let exact = ExactEngine::new(&spec);
        let naive = NaiveTableEngine::build(&spec, u64::MAX).expect("tiny table fits");
        let tablefree = TableFreeEngine::new(&spec, TableFreeConfig::paper()).expect("builds");
        let tablesteer =
            TableSteerEngine::new(&spec, TableSteerConfig::bits18()).expect("builds");
        let (theta_start, theta_end) = random_span(n_theta, tile_theta.0, tile_theta.1);
        let (phi_start, phi_end) = random_span(n_phi, tile_phi.0, tile_phi.1);
        let tile = Tile { theta_start, theta_end, phi_start, phi_end };
        let nappe = nappe_pick % n_depth;
        for engine in [&exact as &dyn DelayEngine, &naive, &tablefree, &tablesteer] {
            prop_assert_eq!(engine.transmit_count(), n_tx, "{}", engine.name());
            for tx in 0..n_tx {
                let mut scalar = NappeDelays::for_tile(&spec, tile);
                scalar.fill_scalar_for(engine, tx, nappe);

                let mut batched = NappeDelays::for_tile(&spec, tile);
                engine.fill_nappe_for(tx, nappe, &mut batched);
                prop_assert_eq!(
                    batched.samples(), scalar.samples(),
                    "{} tx {}/{} on {}x{} elements, {}x{}x{} fan, tile {:?}, nappe {}",
                    engine.name(), tx, n_tx, nx, ny, n_theta, n_phi, n_depth, tile, nappe
                );

                let mut streamed = NappeDelays::for_tile(&spec, tile);
                let mut delivered: Vec<(usize, Vec<f64>)> = Vec::new();
                engine.fill_nappe_streamed_for(tx, nappe, &mut streamed, &mut |slot, row| {
                    delivered.push((slot, row.to_vec()));
                });
                prop_assert_eq!(
                    streamed.samples(), scalar.samples(),
                    "{} streamed tx {}/{} drifted from scalar", engine.name(), tx, n_tx
                );
                prop_assert_eq!(delivered.len(), tile.scanlines());
                for (i, (slot, row)) in delivered.iter().enumerate() {
                    prop_assert_eq!(*slot, i, "{} rows out of order", engine.name());
                    prop_assert_eq!(row.as_slice(), streamed.row(i));
                }
            }
        }
    }

    #[test]
    fn tablefree_batched_fill_keeps_scalar_op_telemetry_on_random_geometries(
        nx in 2usize..6,
        ny in 2usize..6,
        n_theta in 2usize..8,
        n_phi in 2usize..8,
        n_depth in 4usize..12,
        tile_theta in (0usize..1000, 0usize..1000),
        tile_phi in (0usize..1000, 0usize..1000),
        nappe_pick in 0usize..1000,
        exact_transmit in any::<bool>(),
    ) {
        // The segment-major row fill must advance the sqrt-evaluation
        // counter by exactly the batched-datapath cost the paper argues
        // for — scanlines × (elements + 1 transmit eval unless exact) —
        // while the scalar walk pays the transmit eval per element; both
        // formulas are part of the engine's telemetry contract.
        let spec = random_spec(nx, ny, n_theta, n_phi, n_depth);
        let config = TableFreeConfig { exact_transmit, ..TableFreeConfig::paper() };
        let tablefree = TableFreeEngine::new(&spec, config).expect("builds");
        let (theta_start, theta_end) = random_span(n_theta, tile_theta.0, tile_theta.1);
        let (phi_start, phi_end) = random_span(n_phi, tile_phi.0, tile_phi.1);
        let tile = Tile { theta_start, theta_end, phi_start, phi_end };
        let nappe = nappe_pick % n_depth;

        let mut batched = NappeDelays::for_tile(&spec, tile);
        let before = tablefree.sqrt_evals();
        tablefree.fill_nappe(nappe, &mut batched);
        let batched_evals = tablefree.sqrt_evals() - before;

        let mut scalar = NappeDelays::for_tile(&spec, tile);
        let before = tablefree.sqrt_evals();
        scalar.fill_scalar(&tablefree, nappe);
        let scalar_evals = tablefree.sqrt_evals() - before;

        let scanlines = tile.scanlines() as u64;
        let elements = (nx * ny) as u64;
        let per_voxel = elements + u64::from(!exact_transmit);
        prop_assert_eq!(batched_evals, scanlines * per_voxel, "batched op counter drifted");
        let per_query = 1 + u64::from(!exact_transmit);
        prop_assert_eq!(scalar_evals, scanlines * elements * per_query, "scalar op counter drifted");
        prop_assert_eq!(batched.samples(), scalar.samples());
    }

    #[test]
    fn fitted_schedules_partition_random_fans_exactly(
        n_theta in 1usize..17,
        n_phi in 1usize..17,
        target_tiles in 1usize..40,
    ) {
        let spec = random_spec(2, 2, n_theta, n_phi, 4);
        let schedule = NappeSchedule::fitted(&spec, target_tiles);
        let mut covered = vec![0u32; n_theta * n_phi];
        for tile in schedule.tiles() {
            prop_assert!(tile.theta_end <= n_theta && tile.phi_end <= n_phi);
            for it in tile.theta_start..tile.theta_end {
                for ip in tile.phi_start..tile.phi_end {
                    covered[it * n_phi + ip] += 1;
                }
            }
        }
        // Exactly partitioned: every scanline in exactly one tile.
        prop_assert!(
            covered.iter().all(|&c| c == 1),
            "fan {}x{} target {}: coverage {:?}",
            n_theta, n_phi, target_tiles, covered
        );
        // And the slot enumeration agrees with the partition.
        for tile in schedule.tiles() {
            let mut slots: Vec<usize> = tile.iter_scanlines().map(|(s, _, _)| s).collect();
            slots.sort_unstable();
            prop_assert_eq!(slots, (0..tile.scanlines()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn steering_correction_antisymmetric_across_fan(
        it in 0usize..8,
        ip in 0usize..8,
        id in 0usize..16,
        e_pick in 0usize..64,
    ) {
        // Mirroring both the steering line and the element through the
        // array centre leaves the steered delay unchanged — the symmetry
        // TABLESTEER's folded storage exploits.
        let f = fixture();
        let v = &f.spec.volume_grid;
        let e = f.spec.elements.element_at(e_pick % f.spec.elements.count());
        let m = usbf_geometry::ElementIndex::new(7 - e.ix, 7 - e.iy);
        let vox = VoxelIndex::new(it, ip, id);
        let mvox = VoxelIndex::new(v.n_theta() - 1 - it, v.n_phi() - 1 - ip, id);
        let a = f.tablesteer.float_delay_samples(vox, e);
        let b = f.tablesteer.float_delay_samples(mvox, m);
        prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
    }
}
