//! Property-based invariants of the delay engines.

use proptest::prelude::*;
use usbf_core::{
    DelayEngine, ExactEngine, TableFreeConfig, TableFreeEngine, TableSteerConfig, TableSteerEngine,
};
use usbf_geometry::{SystemSpec, VoxelIndex};
use usbf_tables::error::theoretical_bound_seconds;

use std::sync::OnceLock;

struct Fixture {
    spec: SystemSpec,
    exact: ExactEngine,
    tablefree: TableFreeEngine,
    tablesteer: TableSteerEngine,
    bound_samples: f64,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let spec = SystemSpec::tiny();
        Fixture {
            exact: ExactEngine::new(&spec),
            tablefree: TableFreeEngine::new(&spec, TableFreeConfig::paper()).expect("builds"),
            tablesteer: TableSteerEngine::new(&spec, TableSteerConfig::bits18()).expect("builds"),
            bound_samples: spec.seconds_to_samples(theoretical_bound_seconds(&spec)),
            spec,
        }
    })
}

proptest! {
    #[test]
    fn tablefree_error_envelope_everywhere(
        vox_pick in 0usize..100_000,
        e_pick in 0usize..64,
    ) {
        let f = fixture();
        let vox = f.spec.volume_grid.voxel_at(vox_pick % f.spec.volume_grid.voxel_count());
        let e = f.spec.elements.element_at(e_pick % f.spec.elements.count());
        let err = (f.tablefree.delay_samples(vox, e) - f.exact.delay_samples(vox, e)).abs();
        // Two δ=0.25 PWL approximations + quantization headroom.
        prop_assert!(err <= 0.7, "err = {}", err);
        let sel = (f.tablefree.delay_index(vox, e) - f.exact.delay_index(vox, e)).abs();
        prop_assert!(sel <= 2, "selection error {}", sel);
    }

    #[test]
    fn tablesteer_error_below_theoretical_bound(
        vox_pick in 0usize..100_000,
        e_pick in 0usize..64,
    ) {
        let f = fixture();
        let vox = f.spec.volume_grid.voxel_at(vox_pick % f.spec.volume_grid.voxel_count());
        let e = f.spec.elements.element_at(e_pick % f.spec.elements.count());
        let err = (f.tablesteer.delay_samples(vox, e) - f.exact.delay_samples(vox, e)).abs();
        prop_assert!(err <= f.bound_samples + 1.0, "err = {} bound = {}", err, f.bound_samples);
    }

    #[test]
    fn indices_always_inside_echo_buffer(
        vox_pick in 0usize..100_000,
        e_pick in 0usize..64,
    ) {
        let f = fixture();
        let vox = f.spec.volume_grid.voxel_at(vox_pick % f.spec.volume_grid.voxel_count());
        let e = f.spec.elements.element_at(e_pick % f.spec.elements.count());
        for eng in [&f.exact as &dyn DelayEngine, &f.tablefree, &f.tablesteer] {
            let idx = eng.delay_index(vox, e);
            prop_assert!(idx >= 0 && (idx as usize) < eng.echo_buffer_len());
        }
    }

    #[test]
    fn engines_are_deterministic(
        vox_pick in 0usize..100_000,
        e_pick in 0usize..64,
    ) {
        let f = fixture();
        let vox = f.spec.volume_grid.voxel_at(vox_pick % f.spec.volume_grid.voxel_count());
        let e = f.spec.elements.element_at(e_pick % f.spec.elements.count());
        for eng in [&f.exact as &dyn DelayEngine, &f.tablefree, &f.tablesteer] {
            prop_assert_eq!(eng.delay_samples(vox, e), eng.delay_samples(vox, e));
            prop_assert_eq!(eng.delay_index(vox, e), eng.delay_index(vox, e));
        }
    }

    #[test]
    fn steering_correction_antisymmetric_across_fan(
        it in 0usize..8,
        ip in 0usize..8,
        id in 0usize..16,
        e_pick in 0usize..64,
    ) {
        // Mirroring both the steering line and the element through the
        // array centre leaves the steered delay unchanged — the symmetry
        // TABLESTEER's folded storage exploits.
        let f = fixture();
        let v = &f.spec.volume_grid;
        let e = f.spec.elements.element_at(e_pick % f.spec.elements.count());
        let m = usbf_geometry::ElementIndex::new(7 - e.ix, 7 - e.iy);
        let vox = VoxelIndex::new(it, ip, id);
        let mvox = VoxelIndex::new(v.n_theta() - 1 - it, v.n_phi() - 1 - ip, id);
        let a = f.tablesteer.float_delay_samples(vox, e);
        let b = f.tablesteer.float_delay_samples(mvox, m);
        prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
    }
}
