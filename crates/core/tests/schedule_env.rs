//! Regression test: `NappeSchedule::for_host` must honor the same
//! `USBF_POOL_THREADS` override the thread pool honors, so the tile grid
//! and the worker count are sized from one source of truth.
//!
//! This is the only test in this binary on purpose: it mutates
//! process-global environment state, which would race with any
//! concurrently running test that reads the variable.

use usbf_core::NappeSchedule;
use usbf_geometry::SystemSpec;

const VAR: &str = "USBF_POOL_THREADS";

#[test]
fn for_host_tracks_pool_thread_override() {
    let saved = std::env::var(VAR).ok();

    // With the override set, the schedule must provision at least
    // 4 tiles per configured worker (the load-balancing headroom),
    // capped by the fan size.
    let spec = SystemSpec::reduced(); // 32×32 fan: room for many tiles
    for threads in [1usize, 2, 4] {
        std::env::set_var(VAR, threads.to_string());
        assert_eq!(usbf_par::default_threads(), threads);
        let schedule = NappeSchedule::for_host(&spec);
        assert!(
            schedule.n_blocks() >= threads * 4,
            "USBF_POOL_THREADS={threads}: {} tiles < {}",
            schedule.n_blocks(),
            threads * 4
        );
    }

    // A larger override yields at least as many tiles as a smaller one.
    std::env::set_var(VAR, "1");
    let small = NappeSchedule::for_host(&spec).n_blocks();
    std::env::set_var(VAR, "8");
    let large = NappeSchedule::for_host(&spec).n_blocks();
    assert!(large >= small, "{large} < {small}");

    // Unset (or garbage) falls back to available parallelism — the
    // schedule stays valid either way.
    std::env::remove_var(VAR);
    let schedule = NappeSchedule::for_host(&spec);
    assert!(schedule.n_blocks() >= 1);

    match saved {
        Some(v) => std::env::set_var(VAR, v),
        None => std::env::remove_var(VAR),
    }
}
