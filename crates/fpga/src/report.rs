//! Table II assembly and rendering.

use crate::{map_tablefree, map_tablesteer, CostModel, Device, Mapping, SteerVariant};
use usbf_geometry::SystemSpec;

/// One row of Table II: a mapping plus its utilization fractions and an
/// optional inaccuracy annotation (filled by the accuracy sweeps, which
/// are a separate — expensive — computation).
#[derive(Debug, Clone, PartialEq)]
pub struct ArchReport {
    /// The underlying mapping.
    pub mapping: Mapping,
    /// LUT utilization in `[0, 1+]`.
    pub lut_fraction: f64,
    /// Register utilization.
    pub register_fraction: f64,
    /// BRAM utilization.
    pub bram_fraction: f64,
    /// Inaccuracy annotation, e.g. `"avg 0.25, max 2"` (|off samples|).
    pub inaccuracy: Option<String>,
}

impl ArchReport {
    /// Wraps a mapping with utilizations for a device.
    pub fn new(mapping: Mapping, device: &Device) -> Self {
        ArchReport {
            lut_fraction: device.lut_fraction(mapping.luts),
            register_fraction: device.register_fraction(mapping.registers),
            bram_fraction: device.bram_fraction(mapping.bram36),
            mapping,
            inaccuracy: None,
        }
    }

    /// Attaches an inaccuracy annotation.
    pub fn with_inaccuracy(mut self, text: impl Into<String>) -> Self {
        self.inaccuracy = Some(text.into());
        self
    }
}

/// Builds the three Table II rows (TABLEFREE, TABLESTEER-14b,
/// TABLESTEER-18b) for a spec and device.
pub fn table2(spec: &SystemSpec, device: &Device, cost: &CostModel) -> Vec<ArchReport> {
    vec![
        ArchReport::new(map_tablefree(spec, device, cost), device),
        ArchReport::new(
            map_tablesteer(spec, device, cost, SteerVariant::Bits14),
            device,
        ),
        ArchReport::new(
            map_tablesteer(spec, device, cost, SteerVariant::Bits18),
            device,
        ),
    ]
}

/// Renders reports in the paper's Table II column layout.
pub fn render_table2(reports: &[ArchReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>6} {:>10} {:>6} {:>9} {:>12} {:>22} {:>14} {:>7} {:>10}\n",
        "Architecture",
        "LUTs",
        "Registers",
        "BRAM",
        "Clock",
        "Offchip BW",
        "Inaccuracy(|off smp|)",
        "Throughput",
        "Frame",
        "Channels"
    ));
    for r in reports {
        let m = &r.mapping;
        out.push_str(&format!(
            "{:<16} {:>5.0}% {:>9.0}% {:>5.0}% {:>5.0} MHz {:>9} {:>22} {:>11.2} Td/s {:>4.1} fps {:>7}x{}\n",
            m.name,
            r.lut_fraction * 100.0,
            r.register_fraction * 100.0,
            r.bram_fraction * 100.0,
            m.clock_hz / 1e6,
            if m.offchip_bytes_per_s == 0.0 {
                "none".to_owned()
            } else {
                format!("{:.1} GB/s", m.offchip_bytes_per_s / 1e9)
            },
            r.inaccuracy.as_deref().unwrap_or("-"),
            m.throughput_delays_per_s / 1e12,
            m.frame_rate,
            m.channels.0,
            m.channels.1,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_three_rows_in_paper_order() {
        let rows = table2(
            &SystemSpec::paper(),
            &Device::virtex7_xc7vx1140t(),
            &CostModel::calibrated(),
        );
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].mapping.name, "TABLEFREE");
        assert_eq!(rows[1].mapping.name, "TABLESTEER-14b");
        assert_eq!(rows[2].mapping.name, "TABLESTEER-18b");
    }

    #[test]
    fn render_contains_key_figures() {
        let dev = Device::virtex7_xc7vx1140t();
        let rows = table2(&SystemSpec::paper(), &dev, &CostModel::calibrated());
        let s = render_table2(&rows);
        assert!(s.contains("TABLEFREE"));
        assert!(s.contains("167 MHz"));
        assert!(s.contains("200 MHz"));
        assert!(s.contains("none"));
        assert!(s.contains("42x42"));
        assert!(s.contains("100x100"));
    }

    #[test]
    fn inaccuracy_annotation_renders() {
        let dev = Device::virtex7_xc7vx1140t();
        let row = ArchReport::new(
            map_tablefree(&SystemSpec::paper(), &dev, &CostModel::calibrated()),
            &dev,
        )
        .with_inaccuracy("avg 0.25, max 2");
        let s = render_table2(&[row]);
        assert!(s.contains("avg 0.25, max 2"));
    }

    #[test]
    fn utilizations_are_fractions() {
        let dev = Device::virtex7_xc7vx1140t();
        for r in table2(&SystemSpec::paper(), &dev, &CostModel::calibrated()) {
            assert!(r.lut_fraction > 0.0 && r.lut_fraction <= 1.01);
            assert!(r.register_fraction > 0.0 && r.register_fraction < 1.0);
            assert!(r.bram_fraction >= 0.0 && r.bram_fraction < 1.0);
        }
    }
}
