//! FPGA device capacity tables.

/// Resource capacities of an FPGA device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Device {
    /// Device name for reports.
    pub name: String,
    /// 6-input LUT count.
    pub luts: u64,
    /// Flip-flop (register) count.
    pub registers: u64,
    /// 36 kb BRAM block count.
    pub bram36: u64,
    /// DSP slice count.
    pub dsps: u64,
}

impl Device {
    /// The paper's target: Xilinx Virtex-7 XC7VX1140T (speed grade -2):
    /// 712 000 LUTs, 1 424 000 FFs, 1 880 RAMB36 (67.7 Mb), 3 360 DSPs.
    pub fn virtex7_xc7vx1140t() -> Self {
        Device {
            name: "Virtex-7 XC7VX1140T-2".to_owned(),
            luts: 712_000,
            registers: 1_424_000,
            bram36: 1_880,
            dsps: 3_360,
        }
    }

    /// The §VI-B projection: "already at today's 20nm node, 3D-stacked
    /// Virtex UltraScale chips feature twice the LUT count of the Virtex 7
    /// family" — a device with doubled logic (and proportionally more
    /// BRAM, per the UltraScale VU440 datasheet ballpark).
    pub fn ultrascale_projection() -> Self {
        Device {
            name: "UltraScale projection (2x LUTs)".to_owned(),
            luts: 1_424_000,
            registers: 2_848_000,
            bram36: 2_520,
            dsps: 2_880,
        }
    }

    /// Total BRAM capacity in bits.
    pub fn bram_bits(&self) -> u64 {
        self.bram36 * 36 * 1024
    }

    /// Fraction of LUTs a usage represents, in `[0, ∞)`.
    pub fn lut_fraction(&self, luts: u64) -> f64 {
        luts as f64 / self.luts as f64
    }

    /// Fraction of registers.
    pub fn register_fraction(&self, registers: u64) -> f64 {
        registers as f64 / self.registers as f64
    }

    /// Fraction of BRAM36 blocks.
    pub fn bram_fraction(&self, bram36: u64) -> f64 {
        bram36 as f64 / self.bram36 as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtex7_capacities() {
        let d = Device::virtex7_xc7vx1140t();
        assert_eq!(d.luts, 712_000);
        // "the largest Xilinx Virtex 7 carry up to 68 Mb of Block RAMs".
        let mb = d.bram_bits() as f64 / 1e6;
        assert!(mb > 67.0 && mb < 70.0, "bram = {mb} Mb");
    }

    #[test]
    fn ultrascale_doubles_luts() {
        let v7 = Device::virtex7_xc7vx1140t();
        let us = Device::ultrascale_projection();
        assert_eq!(us.luts, 2 * v7.luts);
    }

    #[test]
    fn fractions() {
        let d = Device::virtex7_xc7vx1140t();
        assert_eq!(d.lut_fraction(356_000), 0.5);
        assert_eq!(d.bram_fraction(470), 0.25);
        assert!((d.register_fraction(427_200) - 0.3).abs() < 1e-12);
    }
}
