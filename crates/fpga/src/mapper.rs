//! Architecture mappers: spec × device × cost model → resource report.

use crate::{CostModel, Device};
use usbf_core::SteerBlockSpec;
use usbf_geometry::SystemSpec;
use usbf_tables::{InsonificationPlan, StreamingPlan, TableBudget};

/// Which TABLESTEER fixed-point variant to map (Table II rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteerVariant {
    /// 14-bit delay words (13.1 reference / s13.0 corrections).
    Bits14,
    /// 18-bit delay words (13.5 reference / s13.4 corrections).
    Bits18,
}

impl SteerVariant {
    /// Stored word width in bits.
    pub fn word_bits(self) -> u32 {
        match self {
            SteerVariant::Bits14 => 14,
            SteerVariant::Bits18 => 18,
        }
    }

    /// Table II row label.
    pub fn label(self) -> &'static str {
        match self {
            SteerVariant::Bits14 => "TABLESTEER-14b",
            SteerVariant::Bits18 => "TABLESTEER-18b",
        }
    }
}

/// The result of mapping one architecture onto one device.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    /// Architecture label.
    pub name: String,
    /// LUTs used.
    pub luts: u64,
    /// Registers used.
    pub registers: u64,
    /// RAMB36 blocks used.
    pub bram36: u64,
    /// Achievable clock in Hz.
    pub clock_hz: f64,
    /// Off-chip DRAM bandwidth in bytes/s (0 = none needed).
    pub offchip_bytes_per_s: f64,
    /// Aggregate delay throughput in delays/s.
    pub throughput_delays_per_s: f64,
    /// Achievable volume rate in frames/s.
    pub frame_rate: f64,
    /// Supported transducer channels `(x, y)`.
    pub channels: (usize, usize),
}

impl Mapping {
    /// Whether the mapping fits the device's LUT/FF/BRAM capacities.
    pub fn fits(&self, device: &Device) -> bool {
        self.luts <= device.luts
            && self.registers <= device.registers
            && self.bram36 <= device.bram36
    }
}

/// Maps TABLEFREE onto a device: per-element units are replicated until
/// the LUT budget is exhausted ("an ideal design point filling the whole
/// FPGA with delay generation logic", §VI-B), which caps the supported
/// channel count; the clock is limited by the logic-mapped multiplier.
///
/// The reported throughput is the **full-probe assembly** figure
/// (`elements × clock`, 1.67 Tdelays/s for Table I at 167 MHz), matching
/// the convention of Table II; the channels column is what fits on one
/// chip.
pub fn map_tablefree(spec: &SystemSpec, device: &Device, cost: &CostModel) -> Mapping {
    // Effective datapath widths at paper scale: 25-bit squared-distance
    // argument, 18-bit normalized slope mantissa, 18-bit output register.
    let unit_luts = cost.tablefree_unit_luts(25, 18, 18);
    let units_fit = (device.luts as f64 / unit_luts).floor() as u64;
    let side = (units_fit as f64).sqrt().floor() as usize;
    let clock = cost.fmax_logic_mult_hz;
    let frame_rate =
        clock / (spec.volume_grid.voxel_count() as f64 * cost.tablefree_cycle_overhead);
    Mapping {
        name: "TABLEFREE".to_owned(),
        luts: (units_fit as f64 * unit_luts).round() as u64,
        registers: (units_fit as f64 * cost.tablefree_unit_ffs).round() as u64,
        bram36: 0,
        clock_hz: clock,
        offchip_bytes_per_s: 0.0,
        throughput_delays_per_s: spec.elements.count() as f64 * clock,
        frame_rate,
        channels: (side, side),
    }
}

/// Maps TABLESTEER onto a device: one Fig. 4 block per θ line (128 at
/// paper scale), each a BRAM bank plus 136 correction adders; the
/// reference table streams from DRAM through the circular buffer while the
/// correction tables stay resident in BRAM.
pub fn map_tablesteer(
    spec: &SystemSpec,
    _device: &Device,
    cost: &CostModel,
    variant: SteerVariant,
) -> Mapping {
    let word_bits = variant.word_bits();
    let blocks = spec.volume_grid.n_theta();
    let block = SteerBlockSpec {
        n_blocks: blocks,
        ..SteerBlockSpec::paper()
    };
    let lanes = (block.adders_per_block() * blocks) as f64;

    let budget = TableBudget::for_spec(spec, word_bits, word_bits);
    // Corrections resident in BRAM36 banks of 2k words (36 kb in ≤18-bit
    // mode); the streaming buffer adds one RAMB18 (half a RAMB36) per
    // block.
    let corr_banks = budget.correction_entries.div_ceil(2048);
    let stream_banks = (blocks as u64).div_ceil(2);
    let clock = cost.fmax_bram_path_hz;

    let plan = InsonificationPlan::paper();
    let insonif_rate = if plan.covers(spec) {
        plan.insonifications_per_second(spec.frame_rate)
    } else {
        // Generic fallback: 256 scanlines per insonification.
        (spec.volume_grid.scanline_count() as f64 / 256.0).max(1.0) * spec.frame_rate
    };
    let stream = StreamingPlan {
        bram_banks: blocks,
        bank_words: 1024,
        word_bits,
    };
    let bw = stream.dram_bandwidth_bytes(&budget, insonif_rate);

    let throughput = block.delays_per_second(clock);
    let frame_rate = throughput / (spec.naive_table_entries() as f64 * cost.steer_cycle_overhead);

    Mapping {
        name: variant.label().to_owned(),
        luts: (lanes * cost.steer_lane_luts(word_bits)).round() as u64,
        registers: (lanes * cost.steer_lane_ffs(word_bits)).round() as u64,
        bram36: corr_banks + stream_banks,
        clock_hz: clock,
        offchip_bytes_per_s: bw,
        throughput_delays_per_s: throughput,
        frame_rate,
        channels: (spec.elements.nx(), spec.elements.ny()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SystemSpec, Device, CostModel) {
        (
            SystemSpec::paper(),
            Device::virtex7_xc7vx1140t(),
            CostModel::calibrated(),
        )
    }

    #[test]
    fn tablefree_row_matches_table2() {
        let (spec, dev, cost) = setup();
        let m = map_tablefree(&spec, &dev, &cost);
        // 100% LUTs, ~23% registers, 0 BRAM, 167 MHz, no off-chip BW.
        assert!(dev.lut_fraction(m.luts) > 0.99, "luts = {}", m.luts);
        assert!((dev.register_fraction(m.registers) - 0.23).abs() < 0.01);
        assert_eq!(m.bram36, 0);
        assert_eq!(m.clock_hz, 167.0e6);
        assert_eq!(m.offchip_bytes_per_s, 0.0);
        // 1.67 Tdelays/s, 7.8 fps, 42×42 channels.
        assert!((m.throughput_delays_per_s / 1e12 - 1.67).abs() < 0.01);
        assert!((m.frame_rate - 7.8).abs() < 0.05, "fps = {}", m.frame_rate);
        assert_eq!(m.channels, (42, 42));
        assert!(m.fits(&dev));
    }

    #[test]
    fn tablesteer_18b_row_matches_table2() {
        let (spec, dev, cost) = setup();
        let m = map_tablesteer(&spec, &dev, &cost, SteerVariant::Bits18);
        // 100% LUTs, 30% registers, 25% BRAM, 200 MHz, 5.3 GB/s.
        assert!(
            dev.lut_fraction(m.luts) > 0.99 && m.fits(&dev),
            "luts = {}",
            m.luts
        );
        assert!((dev.register_fraction(m.registers) - 0.30).abs() < 0.01);
        assert!(
            (dev.bram_fraction(m.bram36) - 0.25).abs() < 0.01,
            "bram = {}",
            m.bram36
        );
        assert_eq!(m.clock_hz, 200.0e6);
        assert!((m.offchip_bytes_per_s / 1e9 - 5.4).abs() < 0.2);
        assert!((m.throughput_delays_per_s / 1e12 - 3.28).abs() < 0.01);
        assert!((m.frame_rate - 19.7).abs() < 0.1, "fps = {}", m.frame_rate);
        assert_eq!(m.channels, (100, 100));
    }

    #[test]
    fn tablesteer_14b_row_matches_table2() {
        let (spec, dev, cost) = setup();
        let m = map_tablesteer(&spec, &dev, &cost, SteerVariant::Bits14);
        // 91% LUTs, 25% registers, 25% BRAM, 4.1 GB/s.
        assert!(
            (dev.lut_fraction(m.luts) - 0.91).abs() < 0.02,
            "luts = {}",
            m.luts
        );
        assert!((dev.register_fraction(m.registers) - 0.25).abs() < 0.01);
        assert!((dev.bram_fraction(m.bram36) - 0.25).abs() < 0.01);
        assert!((m.offchip_bytes_per_s / 1e9 - 4.2).abs() < 0.2);
        assert!(m.fits(&dev));
    }

    #[test]
    fn ultrascale_projection_doubles_tablefree_channels() {
        // §VI-B: twice the LUTs → toward 100×100 support.
        let (spec, _, cost) = setup();
        let us = Device::ultrascale_projection();
        let m = map_tablefree(&spec, &us, &cost);
        assert!(m.channels.0 >= 59, "channels = {:?}", m.channels);
        assert!(
            m.channels.0
                > map_tablefree(&spec, &Device::virtex7_xc7vx1140t(), &cost)
                    .channels
                    .0
        );
    }

    #[test]
    fn steer_throughput_meets_spec_demand() {
        // §V-B: required ≈2.5e12 delays/s < delivered 3.28e12.
        let (spec, dev, cost) = setup();
        let m = map_tablesteer(&spec, &dev, &cost, SteerVariant::Bits18);
        assert!(m.throughput_delays_per_s > spec.delays_per_second());
        assert!(m.frame_rate > spec.frame_rate);
    }

    #[test]
    fn tablefree_beats_steer_on_memory_and_bandwidth() {
        // The qualitative §VI-B tradeoff.
        let (spec, dev, cost) = setup();
        let tf = map_tablefree(&spec, &dev, &cost);
        let ts = map_tablesteer(&spec, &dev, &cost, SteerVariant::Bits18);
        assert!(tf.bram36 < ts.bram36);
        assert!(tf.offchip_bytes_per_s < ts.offchip_bytes_per_s);
        // …but loses on supported channels and frame rate.
        assert!(tf.channels.0 < ts.channels.0);
        assert!(tf.frame_rate < ts.frame_rate);
    }

    #[test]
    fn smaller_spec_needs_fewer_resources() {
        let (_, dev, cost) = setup();
        let small = SystemSpec::reduced();
        let m = map_tablesteer(&small, &dev, &cost, SteerVariant::Bits18);
        let full = map_tablesteer(&SystemSpec::paper(), &dev, &cost, SteerVariant::Bits18);
        assert!(m.luts < full.luts);
        assert!(m.bram36 < full.bram36);
    }
}
