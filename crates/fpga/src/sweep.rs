//! Design-space sweeps around the Table II operating points.
//!
//! The paper picks two specific design points; these helpers expose the
//! neighbourhood: how many channels a device supports per architecture,
//! what device a target probe would need, and frame rate as a function of
//! clock — the "additional tuning / next-generation FPGA" discussion of
//! §VI-B made quantitative.

use crate::{map_tablesteer, CostModel, Device, SteerVariant};
use usbf_geometry::SystemSpec;

/// Largest square channel count (per side) whose TABLEFREE units fit the
/// device's LUT budget.
pub fn tablefree_max_channels(device: &Device, cost: &CostModel) -> usize {
    let unit = cost.tablefree_unit_luts(25, 18, 18);
    ((device.luts as f64 / unit).floor().sqrt()).floor() as usize
}

/// LUTs a device must offer for TABLEFREE to support an `n × n` probe.
pub fn tablefree_required_luts(n: usize, cost: &CostModel) -> u64 {
    (n as f64 * n as f64 * cost.tablefree_unit_luts(25, 18, 18)).ceil() as u64
}

/// TABLEFREE frame rate at a given clock for a spec (the "1 fps per
/// 20 MHz"-style rule with the calibrated pipeline overhead).
pub fn tablefree_frame_rate(clock_hz: f64, spec: &SystemSpec, cost: &CostModel) -> f64 {
    clock_hz / (spec.volume_grid.voxel_count() as f64 * cost.tablefree_cycle_overhead)
}

/// One point of a clock-sweep series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockPoint {
    /// Clock frequency in Hz.
    pub clock_hz: f64,
    /// Achievable volume rate at that clock.
    pub frame_rate: f64,
}

/// Frame rate vs clock for TABLEFREE over `[lo, hi]` Hz in `n` steps —
/// the series behind the §VI-B projection that 10–15 fps needs a faster
/// fabric (or more parallelism) than Virtex-7's 167 MHz.
pub fn tablefree_clock_sweep(
    spec: &SystemSpec,
    cost: &CostModel,
    lo_hz: f64,
    hi_hz: f64,
    n: usize,
) -> Vec<ClockPoint> {
    assert!(
        n >= 2 && hi_hz > lo_hz && lo_hz > 0.0,
        "invalid sweep range"
    );
    (0..n)
        .map(|i| {
            let clock_hz = lo_hz + (hi_hz - lo_hz) * i as f64 / (n as f64 - 1.0);
            ClockPoint {
                clock_hz,
                frame_rate: tablefree_frame_rate(clock_hz, spec, cost),
            }
        })
        .collect()
}

/// The smallest TABLESTEER word width (within `[min_bits, max_bits]`)
/// whose mapping fits the device, or `None` — the accuracy/area knob of
/// §VI-B ("by tuning the precision of the fixed-point representation").
pub fn steer_max_word_bits(
    spec: &SystemSpec,
    device: &Device,
    cost: &CostModel,
    min_bits: u32,
    max_bits: u32,
) -> Option<u32> {
    assert!(min_bits <= max_bits, "empty width range");
    let lanes = {
        let blocks = spec.volume_grid.n_theta();
        (usbf_core::SteerBlockSpec {
            n_blocks: blocks,
            ..usbf_core::SteerBlockSpec::paper()
        }
        .adders_per_block()
            * blocks) as f64
    };
    (min_bits..=max_bits)
        .rev()
        .find(|&bits| (lanes * cost.steer_lane_luts(bits)).round() as u64 <= device.luts)
}

/// Whether a TABLESTEER variant can hold the *whole* reference table
/// on-chip (no DRAM streaming), per the §VI-B remark that "the off-chip
/// traffic can be eliminated only by storing the whole reference delay
/// table on-chip, at a steep BRAM cost".
pub fn steer_fits_fully_resident(
    spec: &SystemSpec,
    device: &Device,
    cost: &CostModel,
    variant: SteerVariant,
) -> bool {
    let m = map_tablesteer(spec, device, cost, variant);
    let budget = usbf_tables::TableBudget::for_spec(spec, variant.word_bits(), variant.word_bits());
    // Replace the streaming banks with full residency: reference words in
    // 2k-word BRAM36 banks plus the correction banks already counted.
    let resident_banks =
        budget.reference_entries.div_ceil(2048) + budget.correction_entries.div_ceil(2048);
    m.luts <= device.luts && resident_banks <= device.bram36
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SystemSpec, Device, CostModel) {
        (
            SystemSpec::paper(),
            Device::virtex7_xc7vx1140t(),
            CostModel::calibrated(),
        )
    }

    #[test]
    fn max_channels_matches_table2() {
        let (_, dev, cost) = setup();
        assert_eq!(tablefree_max_channels(&dev, &cost), 42);
    }

    #[test]
    fn required_luts_inverts_max_channels() {
        let (_, dev, cost) = setup();
        let n = tablefree_max_channels(&dev, &cost);
        assert!(tablefree_required_luts(n, &cost) <= dev.luts);
        assert!(tablefree_required_luts(n + 1, &cost) > dev.luts);
    }

    #[test]
    fn full_probe_needs_about_4m_luts() {
        // 100×100 elements × ~403 LUTs ≈ 4.0 M LUTs — several Virtex-7s,
        // matching the paper's observation that the full probe does not
        // fit one chip.
        let (_, _, cost) = setup();
        let luts = tablefree_required_luts(100, &cost);
        assert!(luts > 3_900_000 && luts < 4_200_000, "luts = {luts}");
    }

    #[test]
    fn clock_sweep_brackets_the_projection() {
        // §VI-B: 10–15 fps should be possible with tuning — our model says
        // that needs a 214–320 MHz clock at paper scale.
        let (spec, _, cost) = setup();
        let pts = tablefree_clock_sweep(&spec, &cost, 100.0e6, 400.0e6, 31);
        assert_eq!(pts.len(), 31);
        assert!(pts.windows(2).all(|w| w[1].frame_rate > w[0].frame_rate));
        let at_10fps = pts
            .iter()
            .find(|p| p.frame_rate >= 10.0)
            .expect("reachable");
        assert!(at_10fps.clock_hz > 200.0e6 && at_10fps.clock_hz < 230.0e6);
    }

    #[test]
    fn steer_width_knob_matches_table2_fit() {
        let (spec, dev, cost) = setup();
        // 18-bit fits exactly (Table II: 100%); 19 would not.
        assert_eq!(steer_max_word_bits(&spec, &dev, &cost, 12, 24), Some(18));
        // A smaller device caps the width lower.
        let small = Device {
            luts: 650_000,
            ..dev.clone()
        };
        let w = steer_max_word_bits(&spec, &small, &cost, 12, 24).expect("still fits");
        assert!(w < 18, "w = {w}");
    }

    #[test]
    fn fully_resident_18b_fits_virtex7_brams() {
        // 45 Mb + 14.3 Mb < 67.7 Mb: "within the capabilities of high-end
        // FPGAs" — but the LUT budget stays the binding constraint.
        let (spec, dev, cost) = setup();
        assert!(steer_fits_fully_resident(
            &spec,
            &dev,
            &cost,
            SteerVariant::Bits18
        ));
        let tiny_bram = Device {
            bram36: 400,
            ..dev.clone()
        };
        assert!(!steer_fits_fully_resident(
            &spec,
            &tiny_bram,
            &cost,
            SteerVariant::Bits18
        ));
    }

    #[test]
    #[should_panic(expected = "invalid sweep range")]
    fn bad_sweep_range_rejected() {
        let (spec, _, cost) = setup();
        tablefree_clock_sweep(&spec, &cost, 2.0e8, 1.0e8, 5);
    }
}
