//! Primitive datapath costs and calibrated model constants.
//!
//! Every constant that cannot be derived from first principles is
//! **calibrated against the paper's published Table II** and documented as
//! such; EXPERIMENTS.md reports model-vs-paper for every cell.

/// Cost model for mapping delay datapaths onto FPGA fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// LUTs per adder output bit (carry-chain mapping: 1 LUT/bit).
    pub luts_per_adder_bit: f64,
    /// LUT cost of an a×b-bit multiplier mapped to logic (no DSP):
    /// `a·b / mult_lut_divisor`. Two partial products per LUT6 → 2.0.
    pub mult_lut_divisor: f64,
    /// Fixed per-steering-lane overhead in LUTs (output mux, rounding,
    /// control). **Calibrated**: with 22.9, TABLESTEER-18b/-14b land at
    /// 100%/90% of the XC7VX1140T, matching Table II's 100%/91%.
    pub steer_lane_overhead_luts: f64,
    /// Per-lane pipeline registers beyond the sum width. **Calibrated**:
    /// with 6, register utilization lands at 30%/25% (Table II).
    pub steer_lane_overhead_ffs: f64,
    /// Fixed control/tracking overhead per TABLEFREE unit in LUTs:
    /// segment-pointer compare/step logic plus the unit's share of the
    /// ~70-entry coefficient LUT storage held in fabric (Fig. 2a).
    /// **Calibrated**: with 110 the fitted unit count reproduces
    /// Table II's 42×42 supported channels.
    pub tablefree_ctrl_luts: f64,
    /// Pipeline registers per TABLEFREE unit. **Calibrated**: ~185 FFs per
    /// unit reproduces Table II's 23% at the fitted unit count.
    pub tablefree_unit_ffs: f64,
    /// Achievable clock for logic-mapped multiplier paths, Hz
    /// (Table II: TABLEFREE runs at 167 MHz, "limited by the multiplier in
    /// the square root approximation").
    pub fmax_logic_mult_hz: f64,
    /// Achievable clock for BRAM-centric adder paths, Hz (Table II:
    /// TABLESTEER runs at 200 MHz).
    pub fmax_bram_path_hz: f64,
    /// Cycles-per-frame overhead of the TABLEFREE pipeline relative to
    /// one voxel per cycle per unit. **Calibrated**: 1.307 reproduces the
    /// paper's 7.8 fps at 167 MHz (the ideal rule "1 fps per 20 MHz"
    /// would give 8.35).
    pub tablefree_cycle_overhead: f64,
    /// Cycles-per-volume overhead of TABLESTEER (nappe swap margin).
    /// **Calibrated**: 1.015 reproduces 19.7 fps at 200 MHz (ideal: 20.0).
    pub steer_cycle_overhead: f64,
}

impl CostModel {
    /// The model calibrated against Table II (see field docs for which
    /// constants are calibrated and to what).
    pub fn calibrated() -> Self {
        CostModel {
            luts_per_adder_bit: 1.0,
            mult_lut_divisor: 2.0,
            steer_lane_overhead_luts: 22.9,
            steer_lane_overhead_ffs: 6.0,
            tablefree_ctrl_luts: 110.0,
            tablefree_unit_ffs: 185.0,
            fmax_logic_mult_hz: 167.0e6,
            fmax_bram_path_hz: 200.0e6,
            tablefree_cycle_overhead: 1.307,
            steer_cycle_overhead: 1.015,
        }
    }

    /// LUTs of a ripple/carry adder with `bits`-wide output.
    pub fn adder_luts(&self, bits: u32) -> f64 {
        self.luts_per_adder_bit * bits as f64
    }

    /// LUTs of an `a × b` multiplier mapped to fabric logic.
    pub fn multiplier_luts(&self, a_bits: u32, b_bits: u32) -> f64 {
        a_bits as f64 * b_bits as f64 / self.mult_lut_divisor
    }

    /// LUTs of one TABLEFREE per-element unit: the PWL multiplier
    /// (argument × slope), the intercept adder, the two squared-distance
    /// assembly adders, and tracking control.
    pub fn tablefree_unit_luts(&self, arg_bits: u32, slope_bits: u32, out_bits: u32) -> f64 {
        self.multiplier_luts(arg_bits, slope_bits)
            + self.adder_luts(out_bits)            // + c0
            + 2.0 * self.adder_luts(arg_bits)      // Δ² assembly
            + self.tablefree_ctrl_luts
    }

    /// LUTs of one TABLESTEER lane (one steered delay per cycle): an
    /// adder of the word width plus the calibrated per-lane overhead.
    pub fn steer_lane_luts(&self, word_bits: u32) -> f64 {
        self.adder_luts(word_bits) + self.steer_lane_overhead_luts
    }

    /// FFs of one TABLESTEER lane.
    pub fn steer_lane_ffs(&self, word_bits: u32) -> f64 {
        word_bits as f64 + self.steer_lane_overhead_ffs
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_scales_with_width() {
        let c = CostModel::calibrated();
        assert_eq!(c.adder_luts(18), 18.0);
        assert!(c.adder_luts(26) > c.adder_luts(14));
    }

    #[test]
    fn multiplier_dominates_tablefree_unit() {
        let c = CostModel::calibrated();
        let unit = c.tablefree_unit_luts(25, 24, 20);
        let mult = c.multiplier_luts(25, 24);
        assert!(mult / unit > 0.6, "multiplier is the main LUT sink");
        // Unit cost lands around 400 LUTs — the regime where ~42×42 units
        // fill a 712k-LUT device.
        assert!(unit > 350.0 && unit < 500.0, "unit = {unit}");
    }

    #[test]
    fn steer_lane_cost_matches_calibration() {
        let c = CostModel::calibrated();
        // 18-bit lanes: 40.9 LUTs each; 136 lanes × 128 blocks ≈ 712k
        // LUTs (≈100% of the XC7VX1140T, Table II).
        assert_eq!(c.steer_lane_luts(18), 40.9);
        let total18 = c.steer_lane_luts(18) * 136.0 * 128.0;
        assert!((total18 / 712_000.0 - 1.0).abs() < 0.01, "18b = {total18}");
        // 14-bit: ≈90% (Table II: 91%).
        let total14 = c.steer_lane_luts(14) * 136.0 * 128.0;
        assert!(
            (total14 / 712_000.0 - 0.905).abs() < 0.01,
            "14b = {total14}"
        );
    }

    #[test]
    fn steer_ffs_match_calibration() {
        let c = CostModel::calibrated();
        let ffs18 = c.steer_lane_ffs(18) * 136.0 * 128.0;
        assert!((ffs18 / 1_424_000.0 - 0.293).abs() < 0.01);
        let ffs14 = c.steer_lane_ffs(14) * 136.0 * 128.0;
        assert!((ffs14 / 1_424_000.0 - 0.245).abs() < 0.01);
    }
}
