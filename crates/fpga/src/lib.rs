//! Analytical FPGA resource, timing and bandwidth model — the machinery
//! behind Table II of the paper.
//!
//! The paper reports post-placement Vivado results on a Virtex-7
//! XC7VX1140T-2. We cannot run Vivado, so this crate substitutes an
//! analytical model (see DESIGN.md §2): datapath primitives are costed in
//! LUTs/FFs/BRAM with a handful of constants **calibrated against the
//! published Table II utilizations**, and architecture mappers turn a
//! [`SystemSpec`](usbf_geometry::SystemSpec) plus a
//! [`Device`] into the same report rows the paper prints. The *shape* of
//! Table II — which architecture fits, who needs BRAM and off-chip
//! bandwidth, achievable clock/fps/channels — is then a deterministic
//! consequence of datapath structure × device capacity.
//!
//! * [`Device`] — capacity tables (Virtex-7 XC7VX1140T, UltraScale 2×
//!   projection of §VI-B);
//! * [`CostModel`] — primitive costs and calibrated constants;
//! * [`map_tablefree`] / [`map_tablesteer`] — architecture mappers;
//! * [`ArchReport`] / [`render_table2`] — Table II rows and rendering.
//!
//! # Example
//!
//! ```
//! use usbf_fpga::{map_tablesteer, CostModel, Device, SteerVariant};
//! use usbf_geometry::SystemSpec;
//!
//! let spec = SystemSpec::paper();
//! let dev = Device::virtex7_xc7vx1140t();
//! let m = map_tablesteer(&spec, &dev, &CostModel::calibrated(), SteerVariant::Bits18);
//! assert!(m.fits(&dev));
//! assert!((m.frame_rate - 19.7).abs() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod device;
mod mapper;
mod report;
pub mod sweep;

pub use cost::CostModel;
pub use device::Device;
pub use mapper::{map_tablefree, map_tablesteer, Mapping, SteerVariant};
pub use report::{render_table2, table2, ArchReport};
