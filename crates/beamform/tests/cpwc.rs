//! End-to-end coherent plane-wave compounding (CPWC): a multi-angle
//! transmit sequence beamformed through every delay engine, every
//! runtime path and every pool size must produce one bit-identical
//! compound volume — and the edge-region mask must keep un-insonified
//! voxels out of the coherent sum entirely.

use std::sync::Arc;
use usbf_beamform::{Beamformer, FramePipeline, FrameRing, VolumeLoop};
use usbf_core::{
    DelayEngine, ExactEngine, NaiveTableEngine, NappeSchedule, TableFreeConfig, TableFreeEngine,
    TableSteerConfig, TableSteerEngine,
};
use usbf_geometry::scan::ScanOrder;
use usbf_geometry::{deg, SystemSpec, TransducerSpec, TransmitModel, Vec3, VolumeSpec, VoxelIndex};
use usbf_par::ThreadPool;
use usbf_sim::{EchoSynthesizer, Phantom, Pulse, RfFrame};

/// A plane-wave-friendly geometry: the stock test cone (±36.5° to 500λ)
/// back-projects every voxel outside a small aperture's footprint, so
/// CPWC there compounds nothing but zero-weight voxels. This spec keeps
/// the tiny voxel count but narrows the cone to ±4° over 60λ under a
/// 16×16 aperture — most voxels sit inside the unsteered footprint and
/// the steered angles cover it partially, exercising the ramp weights.
fn cpwc_base() -> SystemSpec {
    let reference = SystemSpec::tiny();
    let lambda = reference.wavelength();
    SystemSpec::new(
        reference.speed_of_sound,
        reference.sampling_frequency,
        TransducerSpec {
            nx: 16,
            ny: 16,
            pitch: lambda / 2.0,
            ..reference.transducer.clone()
        },
        VolumeSpec {
            theta_max: deg(4.0),
            phi_max: deg(4.0),
            depth_max: 60.0 * lambda,
            n_theta: 8,
            n_phi: 8,
            n_depth: 16,
        },
        Vec3::ZERO,
        reference.frame_rate,
    )
}

/// A 4-angle compound sequence on the narrow-cone spec.
fn cpwc_spec() -> SystemSpec {
    cpwc_base().with_transmits(TransmitModel::plane_wave_fan(4, deg(10.0)))
}

fn cpwc_rf(spec: &SystemSpec) -> RfFrame {
    let g = &spec.volume_grid;
    let target = g.position(VoxelIndex::new(
        g.n_theta() / 2,
        g.n_phi() / 2,
        g.n_depth() * 5 / 8,
    ));
    EchoSynthesizer::new(spec).synthesize(&Phantom::point(target), &Pulse::from_spec(spec))
}

fn voxels(spec: &SystemSpec) -> Vec<VoxelIndex> {
    let g = &spec.volume_grid;
    let mut out = Vec::with_capacity(g.n_theta() * g.n_phi() * g.n_depth());
    for it in 0..g.n_theta() {
        for ip in 0..g.n_phi() {
            for id in 0..g.n_depth() {
                out.push(VoxelIndex::new(it, ip, id));
            }
        }
    }
    out
}

fn all_engines(spec: &SystemSpec) -> Vec<Arc<dyn DelayEngine + Send + Sync>> {
    vec![
        Arc::new(ExactEngine::new(spec)),
        Arc::new(NaiveTableEngine::build(spec, u64::MAX).expect("tiny table fits")),
        Arc::new(TableFreeEngine::new(spec, TableFreeConfig::paper()).expect("builds")),
        Arc::new(TableSteerEngine::new(spec, TableSteerConfig::bits18()).expect("builds")),
    ]
}

/// The hand-rolled reference: beamform each angle's low-resolution image
/// per voxel and coherently sum under the mask weights, skipping
/// masked-out angles — the definition the compound kernel must match.
fn per_angle_then_sum(
    bf: &Beamformer,
    engine: &dyn DelayEngine,
    rf: &RfFrame,
    vox: VoxelIndex,
) -> f64 {
    let spec = bf.spec();
    let s = spec.volume_grid.position(vox);
    let mut acc = 0.0;
    for tx in 0..spec.n_transmits() {
        let m = spec.transmit_weight(tx, s);
        if m != 0.0 {
            acc += m * bf.beamform_voxel_for(engine, rf, tx, vox);
        }
    }
    acc
}

#[test]
fn compound_volume_matches_per_angle_then_sum_reference_for_all_engines() {
    let spec = cpwc_spec();
    let rf = cpwc_rf(&spec);
    for engine in all_engines(&spec) {
        let bf = Beamformer::new(&spec);
        let tiled = bf.beamform_volume(engine.as_ref(), &rf);
        assert!(
            voxels(&spec).iter().any(|&v| tiled.get(v) != 0.0),
            "{}: the compound must actually insonify the grid — an \
             all-zero volume would make this comparison vacuous",
            engine.name()
        );
        for vox in voxels(&spec) {
            let expect = per_angle_then_sum(&bf, engine.as_ref(), &rf, vox);
            assert_eq!(
                tiled.get(vox).to_bits(),
                expect.to_bits(),
                "{} voxel {vox}",
                engine.name()
            );
        }
    }
}

#[test]
fn compound_frame_is_one_pipeline_frame_and_pool_size_invariant() {
    // An N-angle compound moves through FramePipeline as ONE frame, and
    // the volume is bit-identical across 1/2/4-worker pools and to the
    // scalar reference walk.
    let spec = cpwc_spec();
    let rf = cpwc_rf(&spec);
    for engine in all_engines(&spec) {
        let scalar = Beamformer::new(&spec)
            .with_order(ScanOrder::ScanlineByScanline)
            .beamform_volume(engine.as_ref(), &rf);
        for workers in [1usize, 2, 4] {
            let pool = Arc::new(ThreadPool::new(workers));
            let schedule = NappeSchedule::fitted(&spec, workers * 4);
            let mut pipe = FramePipeline::with_pool(
                Beamformer::new(&spec),
                Arc::clone(&engine),
                FrameRing::new(vec![rf.clone()]),
                pool,
                &schedule,
            );
            for frame in 0..2 {
                let vol = pipe.next_volume().expect("healthy pipeline");
                assert_eq!(
                    vol,
                    &scalar,
                    "{} with {workers} workers, frame {frame}",
                    engine.name()
                );
            }
            assert_eq!(pipe.frames(), 2, "one compound = one frame");
        }
    }
}

#[test]
fn masked_angle_cannot_poison_the_compound_sum() {
    // The NaN-safety contract: a voxel outside one angle's insonified
    // footprint must take NO arithmetic contribution from that angle —
    // even a block full of NaN acquisitions stays quarantined behind the
    // zero mask weight.
    let spec = cpwc_base().with_transmits(vec![
        TransmitModel::plane_wave(0.0, 0.0),
        TransmitModel::plane_wave(deg(35.0), 0.0),
    ]);
    let mut rf = cpwc_rf(&spec);
    for e in spec.elements.iter() {
        rf.trace_for_mut(1, e).fill(f64::NAN);
    }
    // Find a voxel the unsteered wave insonifies but the hard-steered
    // one misses (its footprint back-projects far off the tiny
    // aperture).
    let probe = voxels(&spec)
        .into_iter()
        .find(|&v| {
            let s = spec.volume_grid.position(v);
            spec.transmit_weight(0, s) != 0.0 && spec.transmit_weight(1, s) == 0.0
        })
        .expect("the steered footprint must exclude some insonified voxel");
    let engine = ExactEngine::new(&spec);
    let bf = Beamformer::new(&spec);
    let tiled = bf.beamform_volume(&engine, &rf);
    let scalar_bf = Beamformer::new(&spec).with_order(ScanOrder::ScanlineByScanline);
    let scalar = scalar_bf.beamform_volume(&engine, &rf);
    assert!(
        tiled.get(probe).is_finite(),
        "masked NaN block poisoned the tiled compound: {}",
        tiled.get(probe)
    );
    assert!(
        scalar.get(probe).is_finite(),
        "masked NaN block poisoned the scalar compound: {}",
        scalar.get(probe)
    );
    assert_eq!(tiled.get(probe).to_bits(), scalar.get(probe).to_bits());
    // And the surviving value is exactly the unsteered angle's masked
    // contribution.
    let s = spec.volume_grid.position(probe);
    let expect = spec.transmit_weight(0, s) * bf.beamform_voxel_for(&engine, &rf, 0, probe);
    assert_eq!(tiled.get(probe).to_bits(), expect.to_bits());
}

#[test]
fn degenerate_single_theta_fan_compounds_end_to_end() {
    // A fan collapsed to one theta line (n_theta == 1, the angle_of
    // n == 1 branch) must still compound through the full pipeline.
    let base = cpwc_base();
    let spec = SystemSpec::new(
        base.speed_of_sound,
        base.sampling_frequency,
        base.transducer.clone(),
        VolumeSpec {
            n_theta: 1,
            ..base.volume.clone()
        },
        base.origin,
        base.frame_rate,
    )
    .with_transmits(TransmitModel::plane_wave_fan(4, deg(8.0)));
    let rf = cpwc_rf(&spec);
    let engine = Arc::new(ExactEngine::new(&spec));
    let scalar = Beamformer::new(&spec)
        .with_order(ScanOrder::ScanlineByScanline)
        .beamform_volume(engine.as_ref(), &rf);
    let mut pipe = FramePipeline::new(
        Beamformer::new(&spec),
        Arc::clone(&engine) as Arc<dyn DelayEngine + Send + Sync>,
        FrameRing::new(vec![rf.clone()]),
    );
    let vol = pipe.next_volume().expect("healthy pipeline");
    assert_eq!(vol, &scalar);
    // The degenerate fan's single theta line reads as the unsteered
    // angle (angle_of with n == 1 returns the fan centre).
    assert_eq!(spec.volume_grid.n_theta(), 1);
}

#[test]
fn single_angle_fan_reduces_to_unsteered_plane_wave() {
    // plane_wave_fan(1, …) is the unsteered wave; the compound of one
    // angle is that angle's masked LRI, through serial and warm paths.
    let spec = cpwc_base().with_transmits(TransmitModel::plane_wave_fan(1, deg(10.0)));
    assert_eq!(
        spec.transmits[0],
        TransmitModel::plane_wave(0.0, 0.0),
        "a 1-angle fan must be unsteered"
    );
    let rf = cpwc_rf(&spec);
    let engine = ExactEngine::new(&spec);
    let bf = Beamformer::new(&spec);
    let vol = bf.beamform_volume(&engine, &rf);
    let mut warm = VolumeLoop::new(Beamformer::new(&spec));
    assert_eq!(warm.beamform(&engine, &rf), &vol);
    for vox in voxels(&spec) {
        let expect = per_angle_then_sum(&bf, &engine, &rf, vox);
        assert_eq!(vol.get(vox).to_bits(), expect.to_bits(), "voxel {vox}");
    }
}

#[test]
fn mixed_transmit_sequences_compound_too() {
    // The transmit abstraction is not plane-wave-only: a sequence mixing
    // the classic point emission with steered waves compounds under the
    // same accumulator (point emissions carry unit weight everywhere).
    let spec = cpwc_base().with_transmits(vec![
        TransmitModel::PointSource,
        TransmitModel::plane_wave(deg(-6.0), 0.0),
        TransmitModel::plane_wave(deg(6.0), 0.0),
    ]);
    let rf = cpwc_rf(&spec);
    for engine in all_engines(&spec) {
        let bf = Beamformer::new(&spec);
        let tiled = bf.beamform_volume(engine.as_ref(), &rf);
        let scalar = Beamformer::new(&spec)
            .with_order(ScanOrder::ScanlineByScanline)
            .beamform_volume(engine.as_ref(), &rf);
        assert_eq!(tiled, scalar, "{}", engine.name());
        let probe = VoxelIndex::new(4, 4, 10);
        assert_eq!(
            tiled.get(probe).to_bits(),
            per_angle_then_sum(&bf, engine.as_ref(), &rf, probe).to_bits(),
            "{}",
            engine.name()
        );
    }
    let target = Vec3::new(0.0, 0.0, 0.05);
    assert_eq!(spec.transmit_weight(0, target), 1.0);
}
