//! Property-based invariants of the beamforming pipeline.

use proptest::prelude::*;
use usbf_beamform::{Apodization, Beamformer, Interpolation};
use usbf_core::ExactEngine;
use usbf_geometry::scan::ScanOrder;
use usbf_geometry::{SystemSpec, VoxelIndex};
use usbf_sim::{EchoSynthesizer, Phantom, Pulse};

fn rf_for(spec: &SystemSpec, vox: VoxelIndex) -> usbf_sim::RfFrame {
    EchoSynthesizer::new(spec).synthesize(
        &Phantom::point(spec.volume_grid.position(vox)),
        &Pulse::from_spec(spec),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn beamforming_is_linear_in_rf(
        it in 0usize..8,
        ip in 0usize..8,
        id in 2usize..16,
        gain in 0.25f64..4.0,
    ) {
        let spec = SystemSpec::tiny();
        let vox = VoxelIndex::new(it, ip, id);
        let rf = rf_for(&spec, vox);
        // Scale the RF by `gain` and compare beamformed values.
        let mut scaled = usbf_sim::RfFrame::zeros(8, 8, rf.n_samples());
        for e in spec.elements.iter() {
            let src = rf.trace(e).to_vec();
            for (d, s) in scaled.trace_mut(e).iter_mut().zip(src) {
                *d = gain * s;
            }
        }
        let bf = Beamformer::new(&spec);
        let engine = ExactEngine::new(&spec);
        let a = bf.beamform_voxel(&engine, &rf, vox);
        let b = bf.beamform_voxel(&engine, &scaled, vox);
        prop_assert!((b - gain * a).abs() < 1e-9 * gain.max(1.0) * a.abs().max(1.0));
    }

    #[test]
    fn apodized_peak_never_exceeds_rect_peak(
        it in 0usize..8,
        ip in 0usize..8,
        id in 2usize..16,
    ) {
        let spec = SystemSpec::tiny();
        let vox = VoxelIndex::new(it, ip, id);
        let rf = rf_for(&spec, vox);
        let engine = ExactEngine::new(&spec);
        let rect = Beamformer::new(&spec)
            .with_apodization(Apodization::Rect)
            .beamform_voxel(&engine, &rf, vox)
            .abs();
        for apod in [Apodization::Hann, Apodization::Hamming, Apodization::Tukey(0.5)] {
            let v = Beamformer::new(&spec)
                .with_apodization(apod)
                .beamform_voxel(&engine, &rf, vox)
                .abs();
            prop_assert!(v <= rect + 1e-9, "{:?}: {} > {}", apod, v, rect);
        }
    }

    #[test]
    fn volume_values_order_independent(
        it in 0usize..8,
        ip in 0usize..8,
        id in 0usize..16,
    ) {
        let spec = SystemSpec::tiny();
        let probe = VoxelIndex::new(it, ip, id);
        let rf = rf_for(&spec, VoxelIndex::new(4, 4, 8));
        let engine = ExactEngine::new(&spec);
        let nappe = Beamformer::new(&spec).with_order(ScanOrder::NappeByNappe);
        let scan = Beamformer::new(&spec).with_order(ScanOrder::ScanlineByScanline);
        let a = nappe.beamform_volume(&engine, &rf);
        let b = scan.beamform_volume(&engine, &rf);
        prop_assert_eq!(a.get(probe), b.get(probe));
    }

    #[test]
    fn interpolation_agrees_on_integer_delays(
        it in 0usize..8,
        ip in 0usize..8,
        id in 2usize..16,
    ) {
        // With an all-ones apodization and a synthetic frame whose traces
        // are constant, nearest and linear fetch agree exactly.
        let spec = SystemSpec::tiny();
        let mut rf = usbf_sim::RfFrame::zeros(8, 8, spec.echo_buffer_len());
        for e in spec.elements.iter() {
            for v in rf.trace_mut(e) {
                *v = 1.0;
            }
        }
        let engine = ExactEngine::new(&spec);
        let vox = VoxelIndex::new(it, ip, id);
        let near = Beamformer::new(&spec)
            .with_apodization(Apodization::Rect)
            .with_interpolation(Interpolation::Nearest)
            .beamform_voxel(&engine, &rf, vox);
        let lin = Beamformer::new(&spec)
            .with_apodization(Apodization::Rect)
            .with_interpolation(Interpolation::Linear)
            .beamform_voxel(&engine, &rf, vox);
        // Constant traces: both read 1.0 per element wherever the index
        // lands inside the buffer.
        prop_assert!((near - lin).abs() < 1e-9);
    }
}
