//! Property-based invariants of the beamforming pipeline.

use proptest::prelude::*;
use usbf_beamform::{Apodization, Beamformer, BmodeConfig, Interpolation, PostChain, Reduction};
use usbf_core::{
    DelayEngine, ExactEngine, NaiveTableEngine, TableFreeConfig, TableFreeEngine, TableSteerConfig,
    TableSteerEngine,
};
use usbf_geometry::scan::ScanOrder;
use usbf_geometry::{
    SystemSpec, TransducerSpec, TransmitModel, Vec3, VolumeSpec, VoxelIndex, SPEED_OF_SOUND,
};
use usbf_sim::{EchoSynthesizer, Phantom, Pulse};

fn rf_for(spec: &SystemSpec, vox: VoxelIndex) -> usbf_sim::RfFrame {
    EchoSynthesizer::new(spec).synthesize(
        &Phantom::point(spec.volume_grid.position(vox)),
        &Pulse::from_spec(spec),
    )
}

/// A randomized tiny geometry with the paper's physical extents (the
/// same shape the core crate's slab-fill proptests randomize).
fn random_spec(nx: usize, ny: usize, n_theta: usize, n_phi: usize, n_depth: usize) -> SystemSpec {
    let fc = 4.0e6;
    let lambda = SPEED_OF_SOUND / fc;
    SystemSpec::new(
        SPEED_OF_SOUND,
        32.0e6,
        TransducerSpec {
            center_frequency: fc,
            bandwidth: 4.0e6,
            nx,
            ny,
            pitch: lambda / 2.0,
        },
        VolumeSpec {
            theta_max: usbf_geometry::deg(36.5),
            phi_max: usbf_geometry::deg(36.5),
            depth_max: 500.0 * lambda,
            n_theta,
            n_phi,
            n_depth,
        },
        Vec3::ZERO,
        15.0,
    )
}

/// Like [`random_spec`] but with a narrow cone (±4° over 60λ) so
/// plane-wave footprints actually intersect the grid: under the stock
/// ±36.5° cone every voxel back-projects outside a tiny aperture and
/// all compound masks degenerate to zero.
fn random_compound_spec(
    nx: usize,
    ny: usize,
    n_theta: usize,
    n_phi: usize,
    n_depth: usize,
) -> SystemSpec {
    let wide = random_spec(nx, ny, n_theta, n_phi, n_depth);
    let lambda = wide.wavelength();
    SystemSpec::new(
        wide.speed_of_sound,
        wide.sampling_frequency,
        wide.transducer.clone(),
        VolumeSpec {
            theta_max: usbf_geometry::deg(4.0),
            phi_max: usbf_geometry::deg(4.0),
            depth_max: 60.0 * lambda,
            ..wide.volume.clone()
        },
        wide.origin,
        wide.frame_rate,
    )
}

/// A random transmit sequence mixing steered plane waves with the
/// classic point emission (bit `i` of `kinds` picks the flavour).
fn random_transmits(n_tx: usize, kinds: usize, a: usize, b: usize) -> Vec<TransmitModel> {
    (0..n_tx)
        .map(|i| {
            if (kinds >> i) & 1 == 0 {
                TransmitModel::PointSource
            } else {
                let theta = ((a + 7 * i) % 25) as f64 - 12.0;
                let phi = ((b + 5 * i) % 25) as f64 - 12.0;
                TransmitModel::plane_wave(usbf_geometry::deg(theta), usbf_geometry::deg(phi))
            }
        })
        .collect()
}

/// Asserts the factored compound path (rx slab filled once per nappe +
/// per-transmit combines) reproduces the fused per-transmit loop bit for
/// bit on one engine: `FusedOnly` hides the factored family, forcing the
/// fallback loop on an otherwise-identical engine instance.
fn prop_factored_matches_fused<E>(
    spec: &SystemSpec,
    rf: &usbf_sim::RfFrame,
    make: impl Fn() -> E,
) -> Result<(), TestCaseError>
where
    E: DelayEngine + Clone + std::fmt::Debug,
{
    let schedule = usbf_core::NappeSchedule::fitted(spec, 3);
    for interp in [Interpolation::Nearest, Interpolation::Linear] {
        for reduction in [Reduction::Sequential, Reduction::Wide4] {
            let factored_engine = make();
            prop_assert!(
                factored_engine.supports_factored_fill(),
                "{} must join the factored family",
                factored_engine.name()
            );
            let fused_engine = usbf_core::FusedOnly(make());
            let bf = Beamformer::new(spec)
                .with_interpolation(interp)
                .with_reduction(reduction);
            let factored = bf.beamform_volume_tiled(&factored_engine, rf, &schedule);
            let fused = bf.beamform_volume_tiled(&fused_engine, rf, &schedule);
            for (i, (a, b)) in factored.as_slice().iter().zip(fused.as_slice()).enumerate() {
                prop_assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{} {:?} {:?} voxel {}: {} vs {}",
                    factored_engine.name(),
                    interp,
                    reduction,
                    i,
                    a,
                    b
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn factored_compound_path_bit_identical_to_fused_on_random_transmits(
        nx in 2usize..6,
        ny in 2usize..6,
        n_theta in 2usize..6,
        n_phi in 2usize..6,
        n_depth in 4usize..10,
        target in 0usize..1_000_000,
        n_tx in 1usize..5,
        kinds in 0usize..16,
        angle_a in 0usize..1000,
        angle_b in 0usize..1000,
    ) {
        // The PR 10 tentpole invariant: factoring the transmit-invariant
        // receive leg out of the compound loop (one fill_nappe_rx per
        // (nappe, tile) + per-transmit combine_tx_row) changes the
        // delay-generation cost, not a single output bit — for all four
        // engines × both interpolations × both reductions, on random
        // transmit sequences mixing steered plane waves with point
        // emissions. TABLESTEER additionally proves the rounding
        // telemetry matches: the factored nearest kernel quantizes every
        // transmit's combined row, masked ones included, exactly like
        // the fused kernel.
        let spec = random_compound_spec(nx, ny, n_theta, n_phi, n_depth)
            .with_transmits(random_transmits(n_tx, kinds, angle_a, angle_b));
        let vox = spec.volume_grid.voxel_at(target % spec.volume_grid.voxel_count());
        let rf = rf_for(&spec, vox);
        prop_factored_matches_fused(&spec, &rf, || ExactEngine::new(&spec))?;
        prop_factored_matches_fused(&spec, &rf, || {
            NaiveTableEngine::build(&spec, u64::MAX).expect("tiny table fits")
        })?;
        prop_factored_matches_fused(&spec, &rf, || {
            TableFreeEngine::new(&spec, TableFreeConfig::paper()).expect("builds")
        })?;
        prop_factored_matches_fused(&spec, &rf, || {
            TableSteerEngine::new(&spec, TableSteerConfig::bits18()).expect("builds")
        })?;
        // Rounding-telemetry leg: clamp counts advance identically on
        // the factored and fused nearest kernels (clones start zeroed).
        let factored_engine = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).expect("builds");
        let fused_engine = usbf_core::FusedOnly(factored_engine.clone());
        let schedule = usbf_core::NappeSchedule::fitted(&spec, 3);
        let bf = Beamformer::new(&spec);
        bf.beamform_volume_tiled(&factored_engine, &rf, &schedule);
        bf.beamform_volume_tiled(&fused_engine, &rf, &schedule);
        prop_assert_eq!(factored_engine.clamp_events(), fused_engine.0.clamp_events());
    }

    #[test]
    fn beamforming_is_linear_in_rf(
        it in 0usize..8,
        ip in 0usize..8,
        id in 2usize..16,
        gain in 0.25f64..4.0,
    ) {
        let spec = SystemSpec::tiny();
        let vox = VoxelIndex::new(it, ip, id);
        let rf = rf_for(&spec, vox);
        // Scale the RF by `gain` and compare beamformed values.
        let mut scaled = usbf_sim::RfFrame::zeros(8, 8, rf.n_samples());
        for e in spec.elements.iter() {
            let src = rf.trace(e).to_vec();
            for (d, s) in scaled.trace_mut(e).iter_mut().zip(src) {
                *d = gain * s;
            }
        }
        let bf = Beamformer::new(&spec);
        let engine = ExactEngine::new(&spec);
        let a = bf.beamform_voxel(&engine, &rf, vox);
        let b = bf.beamform_voxel(&engine, &scaled, vox);
        prop_assert!((b - gain * a).abs() < 1e-9 * gain.max(1.0) * a.abs().max(1.0));
    }

    #[test]
    fn apodized_peak_never_exceeds_rect_peak(
        it in 0usize..8,
        ip in 0usize..8,
        id in 2usize..16,
    ) {
        let spec = SystemSpec::tiny();
        let vox = VoxelIndex::new(it, ip, id);
        let rf = rf_for(&spec, vox);
        let engine = ExactEngine::new(&spec);
        let rect = Beamformer::new(&spec)
            .with_apodization(Apodization::Rect)
            .beamform_voxel(&engine, &rf, vox)
            .abs();
        for apod in [Apodization::Hann, Apodization::Hamming, Apodization::Tukey(0.5)] {
            let v = Beamformer::new(&spec)
                .with_apodization(apod)
                .beamform_voxel(&engine, &rf, vox)
                .abs();
            prop_assert!(v <= rect + 1e-9, "{:?}: {} > {}", apod, v, rect);
        }
    }

    #[test]
    fn volume_values_order_independent(
        it in 0usize..8,
        ip in 0usize..8,
        id in 0usize..16,
    ) {
        let spec = SystemSpec::tiny();
        let probe = VoxelIndex::new(it, ip, id);
        let rf = rf_for(&spec, VoxelIndex::new(4, 4, 8));
        let engine = ExactEngine::new(&spec);
        let nappe = Beamformer::new(&spec).with_order(ScanOrder::NappeByNappe);
        let scan = Beamformer::new(&spec).with_order(ScanOrder::ScanlineByScanline);
        let a = nappe.beamform_volume(&engine, &rf);
        let b = scan.beamform_volume(&engine, &rf);
        prop_assert_eq!(a.get(probe), b.get(probe));
    }

    #[test]
    fn vectorized_kernel_bit_identical_to_scalar_reference_on_random_specs(
        nx in 2usize..6,
        ny in 2usize..6,
        n_theta in 2usize..6,
        n_phi in 2usize..6,
        n_depth in 4usize..10,
        target in 0usize..1_000_000,
        apod_pick in 0usize..3,
    ) {
        // The PR 5 tentpole invariant: the vectorized tile kernel
        // (batched quantize_row → gather → chunked accumulate over the
        // compacted aperture) reproduces the scalar ScanlineByScanline
        // walk bit for bit, for all four engines × both interpolations,
        // on randomized geometry — including apertures with zero-weight
        // borders (Hann) that exercise the row compaction.
        let spec = random_spec(nx, ny, n_theta, n_phi, n_depth);
        let vox = spec.volume_grid.voxel_at(target % spec.volume_grid.voxel_count());
        let rf = rf_for(&spec, vox);
        let apod = [Apodization::Rect, Apodization::Hann, Apodization::Tukey(0.5)][apod_pick];
        let exact = ExactEngine::new(&spec);
        let naive = NaiveTableEngine::build(&spec, u64::MAX).expect("tiny table fits");
        let tablefree = TableFreeEngine::new(&spec, TableFreeConfig::paper()).expect("builds");
        let tablesteer = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).expect("builds");
        let engines: [&dyn DelayEngine; 4] = [&exact, &naive, &tablefree, &tablesteer];
        for engine in engines {
            for interp in [Interpolation::Nearest, Interpolation::Linear] {
                let bf = |order| {
                    Beamformer::new(&spec)
                        .with_apodization(apod)
                        .with_interpolation(interp)
                        .with_order(order)
                };
                let vectorized = bf(ScanOrder::NappeByNappe).beamform_volume(engine, &rf);
                let scalar = bf(ScanOrder::ScanlineByScanline).beamform_volume(engine, &rf);
                for (i, (a, b)) in vectorized
                    .as_slice()
                    .iter()
                    .zip(scalar.as_slice())
                    .enumerate()
                {
                    prop_assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{} {:?} {:?} voxel {}: {} vs {}",
                        engine.name(), interp, apod, i, a, b
                    );
                }
            }
        }
    }

    #[test]
    fn compound_kernel_bit_identical_to_scalar_reference_on_random_transmits(
        nx in 2usize..6,
        ny in 2usize..6,
        n_theta in 2usize..6,
        n_phi in 2usize..6,
        n_depth in 4usize..10,
        target in 0usize..1_000_000,
        n_tx in 1usize..5,
        kinds in 0usize..16,
        angle_a in 0usize..1000,
        angle_b in 0usize..1000,
    ) {
        // The PR 9 tentpole invariant: the compound tile kernel (per
        // transmit: batched fill → gather → MAC into the low-resolution
        // scratch, then the masked skip-on-zero accumulate) reproduces
        // the scalar per-voxel compound walk bit for bit, for all four
        // engines × both interpolations, on random transmit sequences
        // mixing steered plane waves with point emissions.
        let spec = random_compound_spec(nx, ny, n_theta, n_phi, n_depth)
            .with_transmits(random_transmits(n_tx, kinds, angle_a, angle_b));
        let vox = spec.volume_grid.voxel_at(target % spec.volume_grid.voxel_count());
        let rf = rf_for(&spec, vox);
        let exact = ExactEngine::new(&spec);
        let naive = NaiveTableEngine::build(&spec, u64::MAX).expect("tiny table fits");
        let tablefree = TableFreeEngine::new(&spec, TableFreeConfig::paper()).expect("builds");
        let tablesteer = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).expect("builds");
        let engines: [&dyn DelayEngine; 4] = [&exact, &naive, &tablefree, &tablesteer];
        for engine in engines {
            for interp in [Interpolation::Nearest, Interpolation::Linear] {
                let bf = |order| {
                    Beamformer::new(&spec)
                        .with_interpolation(interp)
                        .with_order(order)
                };
                let tiled = bf(ScanOrder::NappeByNappe).beamform_volume(engine, &rf);
                let scalar = bf(ScanOrder::ScanlineByScanline).beamform_volume(engine, &rf);
                for (i, (a, b)) in tiled.as_slice().iter().zip(scalar.as_slice()).enumerate() {
                    prop_assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{} {:?} {} transmits (kinds {:#x}) voxel {}: {} vs {}",
                        engine.name(), interp, n_tx, kinds, i, a, b
                    );
                }
            }
        }
    }

    #[test]
    fn fused_bmode_chain_bit_identical_to_scalar_reference_on_random_specs(
        nx in 2usize..6,
        ny in 2usize..6,
        n_theta in 2usize..6,
        n_phi in 2usize..6,
        n_depth in 4usize..10,
        target in 0usize..1_000_000,
    ) {
        // The PR 8 tentpole invariant: the demod → envelope →
        // log-compress chain fused into the per-tile kernel (each tile
        // column runs through the chain on slab-resident scratch before
        // the scatter) reproduces the scalar reference — a
        // ScanlineByScanline walk followed by a separate whole-volume
        // post-processing pass — bit for bit, for all four engines, on
        // randomized geometry. Holds because every stage is
        // column-local and the log-compression reference level is
        // fixed, so the chain commutes with tiling.
        let spec = random_spec(nx, ny, n_theta, n_phi, n_depth);
        let vox = spec.volume_grid.voxel_at(target % spec.volume_grid.voxel_count());
        let rf = rf_for(&spec, vox);
        let bmode = PostChain::bmode(BmodeConfig::from_spec(&spec));
        let exact = ExactEngine::new(&spec);
        let naive = NaiveTableEngine::build(&spec, u64::MAX).expect("tiny table fits");
        let tablefree = TableFreeEngine::new(&spec, TableFreeConfig::paper()).expect("builds");
        let tablesteer = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).expect("builds");
        let engines: [&dyn DelayEngine; 4] = [&exact, &naive, &tablefree, &tablesteer];
        for engine in engines {
            let bf = |order| {
                Beamformer::new(&spec)
                    .with_order(order)
                    .with_postproc(bmode.clone())
            };
            let fused = bf(ScanOrder::NappeByNappe).beamform_volume(engine, &rf);
            let scalar = bf(ScanOrder::ScanlineByScanline).beamform_volume(engine, &rf);
            for (i, (a, b)) in fused.as_slice().iter().zip(scalar.as_slice()).enumerate() {
                prop_assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{} voxel {}: {} vs {}",
                    engine.name(), i, a, b
                );
            }
        }
    }

    #[test]
    fn interpolation_agrees_on_integer_delays(
        it in 0usize..8,
        ip in 0usize..8,
        id in 2usize..16,
    ) {
        // With an all-ones apodization and a synthetic frame whose traces
        // are constant, nearest and linear fetch agree exactly.
        let spec = SystemSpec::tiny();
        let mut rf = usbf_sim::RfFrame::zeros(8, 8, spec.echo_buffer_len());
        for e in spec.elements.iter() {
            for v in rf.trace_mut(e) {
                *v = 1.0;
            }
        }
        let engine = ExactEngine::new(&spec);
        let vox = VoxelIndex::new(it, ip, id);
        let near = Beamformer::new(&spec)
            .with_apodization(Apodization::Rect)
            .with_interpolation(Interpolation::Nearest)
            .beamform_voxel(&engine, &rf, vox);
        let lin = Beamformer::new(&spec)
            .with_apodization(Apodization::Rect)
            .with_interpolation(Interpolation::Linear)
            .beamform_voxel(&engine, &rf, vox);
        // Constant traces: both read 1.0 per element wherever the index
        // lands inside the buffer.
        prop_assert!((near - lin).abs() < 1e-9);
    }
}
