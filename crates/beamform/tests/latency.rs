//! Unit tests for [`usbf_beamform::LatencyHistogram`]: bucket-boundary
//! behaviour, quantile extraction against a sorted-vector reference on
//! random samples, merge correctness, and top-bucket saturation.

use std::time::Duration;
use usbf_beamform::LatencyHistogram;

/// SplitMix64 — the repo's seeded test RNG (no external rand crate).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Log-uniform latencies spanning the histogram's whole scale:
    /// magnitudes from ~100 ns to ~100 s.
    fn latency_ns(&mut self) -> u64 {
        let magnitude = 7 + (self.next() % 31); // 2^7 .. 2^37
        let mantissa = self.next() % (1 << magnitude.min(20));
        (1u64 << magnitude) + mantissa
    }
}

/// The exact reference: the rank-`ceil(q·n)` smallest sample.
fn reference_quantile(sorted_ns: &[u64], q: f64) -> u64 {
    assert!(!sorted_ns.is_empty());
    let rank = ((q * sorted_ns.len() as f64).ceil() as usize).max(1);
    sorted_ns[rank - 1]
}

#[test]
fn empty_histogram_reports_zero() {
    let h = LatencyHistogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.p50(), Duration::ZERO);
    assert_eq!(h.p99(), Duration::ZERO);
    assert_eq!(h.quantile(1.0), Duration::ZERO);
    assert!(!h.saturated());
    assert_eq!(h, LatencyHistogram::default());
}

#[test]
fn single_sample_lies_within_its_quantile_bounds() {
    // Spot values straddling bucket edges: the sub-µs floor, the 1 µs
    // boundary itself, and assorted magnitudes up the scale.
    for ns in [
        0u64,
        1,
        1023,
        1024,
        1025,
        1_000_000,
        3_141_592,
        10_000_000_000,
    ] {
        let mut h = LatencyHistogram::new();
        let d = Duration::from_nanos(ns);
        h.record(d);
        assert_eq!(h.count(), 1);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let (lower, upper) = h.quantile_bounds(q);
            assert!(
                lower <= d && d <= upper,
                "{ns} ns ∉ ({lower:?}, {upper:?}] at q={q}"
            );
        }
        // The point estimate never understates the sample.
        assert!(h.quantile(1.0) >= d);
    }
}

#[test]
fn boundary_samples_one_nanosecond_apart_split_buckets() {
    // 1023 ns is the floor bucket's upper edge; 1024 ns starts the
    // log-spaced body. Their point estimates must differ.
    let mut low = LatencyHistogram::new();
    low.record(Duration::from_nanos(1023));
    let mut high = LatencyHistogram::new();
    high.record(Duration::from_nanos(1024));
    assert_eq!(low.p50(), Duration::from_nanos(1023));
    assert!(high.p50() > low.p50());
}

#[test]
fn quantiles_match_sorted_reference_within_one_bucket() {
    for seed in 0..10u64 {
        let mut rng = Rng(seed ^ 0xC0FF_EE00_5EED_5EED);
        let n = 200 + (rng.next() % 800) as usize;
        let mut h = LatencyHistogram::new();
        let mut samples: Vec<u64> = Vec::with_capacity(n);
        for _ in 0..n {
            let ns = rng.latency_ns();
            samples.push(ns);
            h.record(Duration::from_nanos(ns));
        }
        samples.sort_unstable();
        assert_eq!(h.count(), n as u64);
        for q in [0.01, 0.25, 0.50, 0.90, 0.99, 1.0] {
            let exact = reference_quantile(&samples, q);
            let (lower, upper) = h.quantile_bounds(q);
            // The exact quantile lies inside the reported bucket: the
            // estimate never undershoots, and overshoots by less than
            // one sub-bucket (~19% relative at 4 sub-buckets/octave).
            assert!(
                lower.as_nanos() as u64 <= exact && exact <= upper.as_nanos() as u64,
                "seed {seed} q={q}: exact {exact} ∉ [{:?}, {:?}]",
                lower,
                upper
            );
            let estimate = h.quantile(q).as_nanos() as u64;
            assert!(estimate >= exact, "seed {seed} q={q}: estimate undershoots");
            assert!(
                (estimate as f64) <= (exact as f64) * 1.25 + 1024.0,
                "seed {seed} q={q}: estimate {estimate} > 25% above exact {exact}"
            );
        }
    }
}

#[test]
fn merge_equals_histogram_of_concatenated_samples() {
    let mut rng = Rng(0xD1CE_D1CE_D1CE_D1CE);
    let mut a = LatencyHistogram::new();
    let mut b = LatencyHistogram::new();
    let mut all = LatencyHistogram::new();
    for i in 0..500 {
        let d = Duration::from_nanos(rng.latency_ns());
        if i % 3 == 0 {
            a.record(d);
        } else {
            b.record(d);
        }
        all.record(d);
    }
    let mut merged = a;
    merged.merge(&b);
    // Bucket-exact equality, not just matching quantiles: merging is an
    // element-wise add over an identical scale.
    assert_eq!(merged, all);
    assert_eq!(merged.count(), a.count() + b.count());
    assert_eq!(merged.p50(), all.p50());
    assert_eq!(merged.p99(), all.p99());
    // Merging an empty histogram is the identity.
    merged.merge(&LatencyHistogram::new());
    assert_eq!(merged, all);
}

#[test]
fn top_bucket_saturates_instead_of_overflowing() {
    let mut h = LatencyHistogram::new();
    h.record(Duration::from_secs(3_600)); // an hour: beyond the scale
    h.record(Duration::from_secs(86_400 * 365)); // a year: same bucket
    assert!(h.saturated());
    assert_eq!(h.count(), 2);
    // Both collapse into the saturation bucket: the quantile is a huge
    // lower-bound sentinel, identical for both.
    let p = h.quantile(1.0);
    assert!(p >= Duration::from_secs(1_000));
    let mut one = LatencyHistogram::new();
    one.record(Duration::from_secs(3_600));
    assert_eq!(one.quantile(1.0), p);
    // A fast sample keeps low quantiles honest alongside saturation.
    h.record(Duration::from_micros(5));
    let (lower, upper) = h.quantile_bounds(0.01);
    assert!(lower <= Duration::from_micros(5) && Duration::from_micros(5) <= upper);
}
