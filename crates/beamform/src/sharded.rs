//! Multi-probe sharding: several independent frame pipelines
//! multiplexed on **one** worker pool.
//!
//! The paper sizes its delay architecture for one 2-D matrix probe, but
//! a production beamformer serves several — simultaneous biplane views,
//! multi-probe rigs, or simply several live streams sharing one server.
//! Spinning up one thread pool per probe multiplies oversubscription;
//! [`ShardedRuntime`] instead gives every probe its own
//! [`FramePipeline`] (its own spec, delay engine, frame source,
//! acquisition thread and warm state) while all tile work funnels into
//! a single shared [`ThreadPool`]:
//!
//! * **fair interleaving** — each shard's [`NappeSchedule`] is re-fitted
//!   so the per-frame tile counts are comparable across shards
//!   (`shard_fitted_schedule`): a round submits every shard before
//!   redeeming any, so `N × tiles` tasks from different shards coexist
//!   in the pool's claim queues and no shard's frame serializes behind
//!   another's;
//! * **per-shard accounting** — every shard keeps its own
//!   [`PipelineStats`], so a slow probe is visible as *its* acquire
//!   wait, not smeared across the fleet;
//! * **failure isolation** — a panicking engine or source surfaces as
//!   that shard's [`PipelineError`] for that frame; sibling shards'
//!   tickets redeem normally and the shared pool survives (panics are
//!   contained per task by the pool, per frame by the pipeline).
//!
//! Volumes are **bit-identical** to running each shard's frames through
//! its own serial [`VolumeLoop`](crate::VolumeLoop) — multiplexing
//! reorders only *when* tiles execute, never *what* they compute — and
//! warm sharded rounds perform zero heap allocations
//! (`tests/warm_frame_allocs.rs`); `tests/shard_stress.rs` soaks the
//! whole arrangement for hundreds of frames at several pool sizes.

use crate::frame_pipeline::{FramePipeline, FrameSource, PipelineError, PipelineStats};
use crate::{BeamformedVolume, Beamformer};
use std::sync::Arc;
use usbf_core::{DelayEngine, NappeSchedule};
use usbf_par::ThreadPool;
use usbf_sim::RfFrame;

/// Object-safe wrapper so heterogeneous shard sources can live in one
/// config list (the blanket `FnMut` impl keeps `Box<dyn FrameSource>`
/// itself from implementing the trait directly).
struct BoxedSource(Box<dyn FrameSource>);

impl FrameSource for BoxedSource {
    fn next_frame(&mut self, out: &mut RfFrame) {
        self.0.next_frame(out)
    }
}

/// One shard's ingredients: a probe/system configuration (the
/// [`Beamformer`] carries the spec), the delay engine generating its
/// delays, and the frame source feeding it.
pub struct ShardConfig {
    beamformer: Beamformer,
    engine: Arc<dyn DelayEngine + Send + Sync>,
    source: Box<dyn FrameSource>,
}

impl ShardConfig {
    /// Bundles one shard's beamformer, engine and source.
    #[must_use]
    pub fn new<S: FrameSource + 'static>(
        beamformer: Beamformer,
        engine: Arc<dyn DelayEngine + Send + Sync>,
        source: S,
    ) -> Self {
        ShardConfig {
            beamformer,
            engine,
            source: Box::new(source),
        }
    }
}

/// The schedule a shard gets when `n_shards` pipelines share a pool of
/// `threads` workers: every shard is fitted to roughly `threads × 4 /
/// n_shards` tiles (never fewer than 2, so no shard's frame collapses
/// into one unsplittable task). A full round therefore dispatches about
/// `threads × 4` comparably-sized tiles regardless of shard count —
/// enough claim granularity for load balancing, with no shard able to
/// monopolize the queues by sheer tile count.
#[must_use]
pub fn shard_fitted_schedule(
    spec: &usbf_geometry::SystemSpec,
    threads: usize,
    n_shards: usize,
) -> NappeSchedule {
    let total_target = threads.max(1) * 4;
    let per_shard = total_target.div_ceil(n_shards.max(1)).max(2);
    NappeSchedule::fitted(spec, per_shard)
}

/// Several probes' pipelines on one pool. See the module docs for the
/// fairness/isolation contract.
///
/// ```
/// use std::sync::Arc;
/// use usbf_beamform::{Beamformer, FrameRing, ShardConfig, ShardedRuntime};
/// use usbf_core::ExactEngine;
/// use usbf_geometry::SystemSpec;
/// use usbf_par::ThreadPool;
/// use usbf_sim::RfFrame;
///
/// let spec = SystemSpec::tiny();
/// let frame = RfFrame::zeros(8, 8, spec.echo_buffer_len());
/// let shard = |seed: f64| {
///     let mut rf = frame.clone();
///     rf.fill(seed);
///     ShardConfig::new(
///         Beamformer::new(&spec),
///         Arc::new(ExactEngine::new(&spec)),
///         FrameRing::new(vec![rf]),
///     )
/// };
/// let pool = Arc::new(ThreadPool::new(2));
/// let mut rt = ShardedRuntime::new(pool, vec![shard(0.0), shard(1.0)]);
/// let outcomes = rt.round();
/// assert!(outcomes.iter().all(|o| o.is_ok()));
/// assert_eq!(rt.shard(0).frames(), 1);
/// assert!(rt.volume(1).is_some());
/// ```
pub struct ShardedRuntime {
    pool: Arc<ThreadPool>,
    shards: Vec<FramePipeline>,
}

impl ShardedRuntime {
    /// Builds one pipeline per config, all on `pool`, each with a
    /// schedule from [`shard_fitted_schedule`] so tile counts stay
    /// comparable across shards.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    #[must_use]
    pub fn new(pool: Arc<ThreadPool>, configs: Vec<ShardConfig>) -> Self {
        assert!(!configs.is_empty(), "need at least one shard");
        let n_shards = configs.len();
        let shards = configs
            .into_iter()
            .map(|config| {
                let schedule =
                    shard_fitted_schedule(config.beamformer.spec(), pool.threads(), n_shards);
                FramePipeline::with_pool(
                    config.beamformer,
                    config.engine,
                    BoxedSource(config.source),
                    Arc::clone(&pool),
                    &schedule,
                )
            })
            .collect();
        ShardedRuntime { pool, shards }
    }

    /// Builds the runtime on the process-wide global pool.
    #[must_use]
    pub fn on_global(configs: Vec<ShardConfig>) -> Self {
        Self::new(usbf_par::global_arc(), configs)
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shared pool all shards dispatch onto.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }

    /// Advances every shard by one frame, multiplexed: **all** shards'
    /// beamform jobs are submitted (in flight on the shared pool, with
    /// all acquisition threads filling the following frames) before any
    /// is redeemed. The per-shard outcome is this frame's
    /// `Ok`/[`PipelineError`]; one shard's failure never disturbs its
    /// siblings — their tickets redeem normally in the same round.
    pub fn round(&mut self) -> Vec<Result<(), PipelineError>> {
        let mut outcomes = Vec::new();
        self.round_into(&mut outcomes);
        outcomes
    }

    /// [`round`](Self::round) with a caller-owned outcome buffer:
    /// `outcomes` is cleared and refilled with one entry per shard, in
    /// shard order. Once the buffer has reached capacity a warm healthy
    /// round performs **zero** heap allocations — the tickets live on
    /// the stack (one recursion level per shard) and only error
    /// outcomes carry owned messages.
    pub fn round_into(&mut self, outcomes: &mut Vec<Result<(), PipelineError>>) {
        outcomes.clear();
        outcomes.resize_with(self.shards.len(), || Ok(()));
        // Submit on the way down the recursion, redeem on the way back
        // up: every shard's job is in flight before any is waited on,
        // and each held ticket borrows only its own shard.
        fn drive(
            shards: &mut [FramePipeline],
            base: usize,
            outcomes: &mut [Result<(), PipelineError>],
        ) {
            let Some((first, rest)) = shards.split_first_mut() else {
                return;
            };
            match first.submit() {
                Ok(ticket) => {
                    drive(rest, base + 1, outcomes);
                    outcomes[base] = ticket.wait().map(|_volume| ());
                }
                Err(error) => {
                    // Submit failed (source panic, disconnect): record it
                    // and keep multiplexing the siblings; the shard
                    // recovers on the next round.
                    outcomes[base] = Err(error);
                    drive(rest, base + 1, outcomes);
                }
            }
        }
        drive(&mut self.shards, 0, outcomes);
    }

    /// Shard `i`'s most recent volume (`None` before its first
    /// successful frame).
    pub fn volume(&self, shard: usize) -> Option<&BeamformedVolume> {
        self.shards[shard].volume()
    }

    /// Shard `i`'s lifetime counters.
    pub fn stats(&self, shard: usize) -> PipelineStats {
        self.shards[shard].stats()
    }

    /// Borrows shard `i`'s pipeline (frames, errors, engine, volume
    /// accessors).
    pub fn shard(&self, shard: usize) -> &FramePipeline {
        &self.shards[shard]
    }

    /// Mutably borrows shard `i`'s pipeline, e.g. to drive one shard
    /// out of lock-step with [`FramePipeline::submit`].
    pub fn shard_mut(&mut self, shard: usize) -> &mut FramePipeline {
        &mut self.shards[shard]
    }

    /// Frame counts per shard, in shard order — the fairness snapshot
    /// the soak test asserts on (`max − min ≤` a small bound when every
    /// shard is driven through [`round`](Self::round)).
    pub fn frame_counts(&self) -> Vec<u64> {
        self.shards.iter().map(FramePipeline::frames).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrameRing, VolumeLoop};
    use usbf_core::{ExactEngine, TableSteerConfig, TableSteerEngine};
    use usbf_geometry::{SystemSpec, VoxelIndex};
    use usbf_sim::{EchoSynthesizer, Phantom, Pulse};

    fn point_frame(spec: &SystemSpec, vox: VoxelIndex) -> RfFrame {
        EchoSynthesizer::new(spec).synthesize(
            &Phantom::point(spec.volume_grid.position(vox)),
            &Pulse::from_spec(spec),
        )
    }

    #[test]
    fn shards_are_bit_identical_to_their_serial_baselines() {
        let spec = SystemSpec::tiny();
        let exact: Arc<dyn DelayEngine + Send + Sync> = Arc::new(ExactEngine::new(&spec));
        let steer: Arc<dyn DelayEngine + Send + Sync> =
            Arc::new(TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap());
        let frames = [
            point_frame(&spec, VoxelIndex::new(2, 3, 5)),
            point_frame(&spec, VoxelIndex::new(5, 4, 9)),
        ];
        let pool = Arc::new(ThreadPool::new(2));
        let mut rt = ShardedRuntime::new(
            Arc::clone(&pool),
            vec![
                ShardConfig::new(
                    Beamformer::new(&spec),
                    Arc::clone(&exact),
                    FrameRing::new(vec![frames[0].clone()]),
                ),
                ShardConfig::new(
                    Beamformer::new(&spec),
                    Arc::clone(&steer),
                    FrameRing::new(vec![frames[1].clone()]),
                ),
            ],
        );
        let mut baseline0 = VolumeLoop::new(Beamformer::new(&spec));
        let mut baseline1 = VolumeLoop::new(Beamformer::new(&spec));
        let expect0 = baseline0.beamform(exact.as_ref(), &frames[0]).clone();
        let expect1 = baseline1.beamform(steer.as_ref(), &frames[1]).clone();
        for round in 0..4 {
            let outcomes = rt.round();
            assert!(outcomes.iter().all(|o| o.is_ok()), "round {round}");
            assert_eq!(rt.volume(0), Some(&expect0), "round {round}");
            assert_eq!(rt.volume(1), Some(&expect1), "round {round}");
        }
        assert_eq!(rt.frame_counts(), vec![4, 4]);
    }

    #[test]
    fn shard_schedules_share_the_tile_budget() {
        let spec = SystemSpec::tiny();
        let solo = shard_fitted_schedule(&spec, 4, 1);
        let split = shard_fitted_schedule(&spec, 4, 4);
        assert!(solo.n_blocks() >= 16);
        assert!(split.n_blocks() >= 4);
        assert!(
            split.n_blocks() <= solo.n_blocks(),
            "sharing the pool must not multiply tiles per shard"
        );
        // Degenerate inputs stay valid.
        assert!(shard_fitted_schedule(&spec, 0, 0).n_blocks() >= 2);
    }
}
