//! Elastic multi-probe sharding: a churning fleet of independent frame
//! pipelines multiplexed on **one** worker pool.
//!
//! The paper sizes its delay architecture for one 2-D matrix probe, but
//! a production beamformer serves a fleet — simultaneous biplane views,
//! multi-probe rigs, or many remote streaming sessions sharing one
//! server, each arriving and leaving on its own schedule. Spinning up
//! one thread pool per probe multiplies oversubscription;
//! [`ShardedRuntime`] instead gives every probe its own
//! [`FramePipeline`] (its own spec, delay engine, frame source,
//! acquisition thread and warm state) while all tile work funnels into
//! a single shared [`ThreadPool`]:
//!
//! * **elastic shard lifecycle** — [`attach_shard`](ShardedRuntime::attach_shard)
//!   and [`detach_shard`](ShardedRuntime::detach_shard) add and remove
//!   pipelines while sibling shards keep streaming. Shard slots form a
//!   generation-tagged registry: a [`ShardId`] names `(slot,
//!   generation)`, so a stale id from a detached session can never
//!   alias the shard that later reuses its slot;
//! * **admission control + backpressure** — a [`RuntimeBudget`] bounds
//!   the fleet (live shards, frames in flight per round, offered voxel
//!   throughput). Attaching beyond the budget is rejected with a typed
//!   [`AdmissionError`] instead of silently queueing; when more shards
//!   are live than the per-round in-flight budget, rounds *defer*
//!   excess shards ([`ShardRound::Deferred`]) under a rotating window,
//!   so backpressure stays fair instead of starving the tail;
//! * **work-stealing tile claims** — each shard's frame is a
//!   preregistered job whose tiles are claimed by index from a shared
//!   cursor; the pool's claim arena (`usbf_par`) lets *any* idle worker
//!   steal tiles of any in-flight shard, so one slow shard can no
//!   longer idle pool workers that its announcements didn't reach;
//! * **per-shard accounting** — every shard keeps its own
//!   [`PipelineStats`], including a fixed-bucket
//!   [`LatencyHistogram`](crate::LatencyHistogram) of frame
//!   submit→complete latencies, so tail latency (p50/p99) is visible
//!   per probe and mergeable fleet-wide
//!   ([`fleet_latency`](ShardedRuntime::fleet_latency));
//! * **failure isolation** — a panicking engine or source surfaces as
//!   that shard's [`ShardRound::Failed`] for that frame; sibling
//!   shards' tickets redeem normally and the shared pool survives.
//!
//! Volumes are **bit-identical** to running each shard's frames through
//! its own serial [`VolumeLoop`](crate::VolumeLoop) — multiplexing and
//! stealing reorder only *when* tiles execute, never *what* they
//! compute — and warm sharded rounds perform zero heap allocations
//! (`tests/warm_frame_allocs.rs`); `tests/shard_stress.rs` and
//! `tests/shard_churn.rs` soak the whole arrangement for hundreds of
//! frames under attach/detach churn at several pool sizes.

use crate::frame_pipeline::{FramePipeline, FrameSource, PipelineError, PipelineStats};
use crate::{BeamformedVolume, Beamformer, LatencyHistogram};
use std::fmt;
use std::sync::Arc;
use usbf_core::{DelayEngine, NappeSchedule};
use usbf_par::ThreadPool;
use usbf_sim::RfFrame;

/// Object-safe wrapper so heterogeneous shard sources can live in one
/// config list (the blanket `FnMut` impl keeps `Box<dyn FrameSource>`
/// itself from implementing the trait directly).
struct BoxedSource(Box<dyn FrameSource>);

impl FrameSource for BoxedSource {
    fn next_frame(&mut self, out: &mut RfFrame) {
        self.0.next_frame(out)
    }
}

/// One shard's ingredients: a probe/system configuration (the
/// [`Beamformer`] carries the spec), the delay engine generating its
/// delays, and the frame source feeding it.
pub struct ShardConfig {
    beamformer: Beamformer,
    engine: Arc<dyn DelayEngine + Send + Sync>,
    source: Box<dyn FrameSource>,
}

impl ShardConfig {
    /// Bundles one shard's beamformer, engine and source.
    #[must_use]
    pub fn new<S: FrameSource + 'static>(
        beamformer: Beamformer,
        engine: Arc<dyn DelayEngine + Send + Sync>,
        source: S,
    ) -> Self {
        ShardConfig {
            beamformer,
            engine,
            source: Box::new(source),
        }
    }
}

/// The schedule a shard gets when `n_shards` pipelines share a pool of
/// `threads` workers: every shard is fitted to roughly `threads × 4 /
/// n_shards` tiles (never fewer than 2, so no shard's frame collapses
/// into one unsplittable task). A full round therefore dispatches about
/// `threads × 4` comparably-sized tiles regardless of shard count —
/// enough claim granularity for load balancing, with no shard able to
/// monopolize the queues by sheer tile count.
#[must_use]
pub fn shard_fitted_schedule(
    spec: &usbf_geometry::SystemSpec,
    threads: usize,
    n_shards: usize,
) -> NappeSchedule {
    let total_target = threads.max(1) * 4;
    let per_shard = total_target.div_ceil(n_shards.max(1)).max(2);
    NappeSchedule::fitted(spec, per_shard)
}

/// A generation-tagged shard identity, returned by
/// [`ShardedRuntime::attach_shard`]. The runtime reuses slot storage
/// after a detach, but never a `ShardId`: the generation increments on
/// every reuse, so id-based accessors ([`ShardedRuntime::stats_of`],
/// [`ShardedRuntime::detach_shard`], …) return `None` for ids of
/// detached shards instead of aliasing their slot's new occupant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShardId {
    slot: usize,
    generation: u64,
}

impl ShardId {
    /// The slot index this shard occupies (stable for the shard's
    /// lifetime; reused — under a new generation — after detach).
    pub fn slot(&self) -> usize {
        self.slot
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard {}.{}", self.slot, self.generation)
    }
}

/// Fleet-level load limits enforced by [`ShardedRuntime`]. Attach-time
/// limits reject with [`AdmissionError`]; the per-round in-flight limit
/// defers instead (see [`ShardRound::Deferred`]), because a frame of an
/// already-admitted session is load the runtime owes, merely later.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuntimeBudget {
    /// Maximum simultaneously attached shards; further
    /// [`attach_shard`](ShardedRuntime::attach_shard) calls are rejected
    /// with [`AdmissionError::ShardLimit`].
    pub max_live_shards: usize,
    /// Maximum frames submitted concurrently per round; live shards
    /// beyond this are deferred under a rotating fair window.
    pub max_in_flight: usize,
    /// Maximum summed voxel count per round across live shards — the
    /// offered-throughput estimate. `None` disables the check; `Some`
    /// rejects attaches whose spec would push the fleet past it with
    /// [`AdmissionError::ThroughputLimit`].
    pub max_round_voxels: Option<u64>,
}

impl RuntimeBudget {
    /// No limits: every attach admitted, every live shard submitted
    /// every round. The budget used by [`ShardedRuntime::new`].
    #[must_use]
    pub fn unlimited() -> Self {
        RuntimeBudget {
            max_live_shards: usize::MAX,
            max_in_flight: usize::MAX,
            max_round_voxels: None,
        }
    }

    /// A heuristic budget for a pool of `threads` workers: up to
    /// `64 × threads` attached sessions, `8 × threads` frames in flight
    /// per round, no voxel cap. Callers with real capacity models
    /// should construct the fields directly.
    #[must_use]
    pub fn for_pool(threads: usize) -> Self {
        let threads = threads.max(1);
        RuntimeBudget {
            max_live_shards: 64 * threads,
            max_in_flight: 8 * threads,
            max_round_voxels: None,
        }
    }
}

/// Why [`ShardedRuntime::attach_shard`] rejected a session — typed
/// backpressure, surfaced to the caller instead of silent queueing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The fleet is at [`RuntimeBudget::max_live_shards`].
    ShardLimit {
        /// Shards currently attached.
        live: usize,
        /// The budget's cap.
        max: usize,
    },
    /// Admitting the shard would push the fleet's summed per-round voxel
    /// count past [`RuntimeBudget::max_round_voxels`].
    ThroughputLimit {
        /// Voxels per round the fleet would offer with this shard.
        offered_voxels: u64,
        /// The budget's cap.
        budget_voxels: u64,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::ShardLimit { live, max } => {
                write!(f, "admission rejected: {live} shards live, budget allows {max}")
            }
            AdmissionError::ThroughputLimit {
                offered_voxels,
                budget_voxels,
            } => write!(
                f,
                "admission rejected: fleet would offer {offered_voxels} voxels/round, budget allows {budget_voxels}"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// One shard's outcome for one [`ShardedRuntime::round`].
#[derive(Debug)]
pub enum ShardRound {
    /// The shard's frame was submitted and redeemed successfully.
    Completed(ShardId),
    /// Backpressure: the shard is live but was outside this round's
    /// in-flight window; no frame was consumed or produced. The rotating
    /// window admits it in a following round.
    Deferred(ShardId),
    /// The shard's frame failed (source panic, engine panic,
    /// disconnect). Siblings are unaffected; the shard itself recovers
    /// on its next admitted round.
    Failed(ShardId, PipelineError),
}

impl ShardRound {
    /// The shard this outcome belongs to.
    pub fn shard_id(&self) -> ShardId {
        match self {
            ShardRound::Completed(id) | ShardRound::Deferred(id) | ShardRound::Failed(id, _) => *id,
        }
    }

    /// `true` unless the shard's frame failed — deferral is healthy
    /// backpressure, not an error.
    pub fn is_ok(&self) -> bool {
        !matches!(self, ShardRound::Failed(..))
    }

    /// `true` if the shard completed a frame this round.
    pub fn is_completed(&self) -> bool {
        matches!(self, ShardRound::Completed(_))
    }

    /// `true` if the shard was deferred by the in-flight window.
    pub fn is_deferred(&self) -> bool {
        matches!(self, ShardRound::Deferred(_))
    }

    /// The frame's error, if it failed.
    pub fn error(&self) -> Option<&PipelineError> {
        match self {
            ShardRound::Failed(_, e) => Some(e),
            _ => None,
        }
    }
}

/// One slot of the shard registry. Slots are never removed — detach
/// vacates the pipeline and bumps nothing until the next attach reuses
/// the slot under an incremented generation.
struct Slot {
    generation: u64,
    pipeline: Option<FramePipeline>,
    /// Voxels per frame of the occupant's spec, cached for the
    /// admission math (0 while vacant).
    voxels: u64,
    /// Scratch flag set by the round pre-pass: whether the occupant is
    /// inside this round's in-flight window.
    admitted: bool,
}

/// A churning fleet of probes' pipelines on one pool. See the module
/// docs for the elasticity/fairness/isolation contract.
///
/// ```
/// use std::sync::Arc;
/// use usbf_beamform::{Beamformer, FrameRing, ShardConfig, ShardedRuntime};
/// use usbf_core::ExactEngine;
/// use usbf_geometry::SystemSpec;
/// use usbf_par::ThreadPool;
/// use usbf_sim::RfFrame;
///
/// let spec = SystemSpec::tiny();
/// let frame = RfFrame::zeros(8, 8, spec.echo_buffer_len());
/// let shard = |seed: f64| {
///     let mut rf = frame.clone();
///     rf.fill(seed);
///     ShardConfig::new(
///         Beamformer::new(&spec),
///         Arc::new(ExactEngine::new(&spec)),
///         FrameRing::new(vec![rf]),
///     )
/// };
/// let pool = Arc::new(ThreadPool::new(2));
/// let mut rt = ShardedRuntime::new(pool, vec![shard(0.0), shard(1.0)]);
/// let outcomes = rt.round();
/// assert!(outcomes.iter().all(|o| o.is_ok()));
/// assert_eq!(rt.shard(0).frames(), 1);
/// assert!(rt.volume(1).is_some());
/// // Elastic: attach a third session mid-flight, stream, detach it.
/// let id = rt.attach_shard(shard(2.0)).expect("within budget");
/// let outcomes = rt.round();
/// assert_eq!(outcomes.len(), 3);
/// assert!(outcomes.iter().all(|o| o.is_ok()));
/// let stats = rt.detach_shard(id).expect("live shard");
/// assert_eq!(stats.frames, 1);
/// assert_eq!(rt.n_shards(), 2);
/// ```
pub struct ShardedRuntime {
    pool: Arc<ThreadPool>,
    slots: Vec<Slot>,
    budget: RuntimeBudget,
    /// Rotation cursor of the per-round in-flight window (counts live
    /// ordinals, so the window advances fairly as shards churn).
    rotate: usize,
}

impl ShardedRuntime {
    /// Builds one pipeline per config, all on `pool`, each with a
    /// schedule from [`shard_fitted_schedule`] so tile counts stay
    /// comparable across shards, under an
    /// [unlimited](RuntimeBudget::unlimited) budget. An empty config
    /// list builds an empty (but usable) fleet — attach shards later.
    #[must_use]
    pub fn new(pool: Arc<ThreadPool>, configs: Vec<ShardConfig>) -> Self {
        let mut rt = Self::with_budget(pool, RuntimeBudget::unlimited());
        let n_shards = configs.len();
        for config in configs {
            rt.attach_fitted(config, n_shards)
                .expect("unlimited budget admits everything");
        }
        rt
    }

    /// Builds an empty fleet on `pool` under `budget`; populate it with
    /// [`attach_shard`](Self::attach_shard).
    #[must_use]
    pub fn with_budget(pool: Arc<ThreadPool>, budget: RuntimeBudget) -> Self {
        ShardedRuntime {
            pool,
            slots: Vec::new(),
            budget,
            rotate: 0,
        }
    }

    /// Builds the runtime on the process-wide global pool.
    #[must_use]
    pub fn on_global(configs: Vec<ShardConfig>) -> Self {
        Self::new(usbf_par::global_arc(), configs)
    }

    /// Number of live (attached) shards.
    pub fn n_shards(&self) -> usize {
        self.slots.iter().filter(|s| s.pipeline.is_some()).count()
    }

    /// The shared pool all shards dispatch onto.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }

    /// The budget admission decisions are made against.
    pub fn budget(&self) -> RuntimeBudget {
        self.budget
    }

    /// Summed per-round voxel count of the live fleet — the offered
    /// load the voxel budget compares against.
    pub fn offered_voxels(&self) -> u64 {
        self.slots
            .iter()
            .filter(|s| s.pipeline.is_some())
            .map(|s| s.voxels)
            .sum()
    }

    /// Admission check + pipeline construction with an explicit
    /// schedule-fitting shard count (attach uses `live + 1`; `new` uses
    /// the full config count so a statically-built fleet keeps the
    /// historical tile fitting).
    fn attach_fitted(
        &mut self,
        config: ShardConfig,
        fit_shards: usize,
    ) -> Result<ShardId, AdmissionError> {
        let live = self.n_shards();
        if live >= self.budget.max_live_shards {
            return Err(AdmissionError::ShardLimit {
                live,
                max: self.budget.max_live_shards,
            });
        }
        let voxels = config.beamformer.spec().volume_grid.voxel_count() as u64;
        if let Some(cap) = self.budget.max_round_voxels {
            let offered = self.offered_voxels() + voxels;
            if offered > cap {
                return Err(AdmissionError::ThroughputLimit {
                    offered_voxels: offered,
                    budget_voxels: cap,
                });
            }
        }
        let schedule =
            shard_fitted_schedule(config.beamformer.spec(), self.pool.threads(), fit_shards);
        let pipeline = FramePipeline::with_pool(
            config.beamformer,
            config.engine,
            BoxedSource(config.source),
            Arc::clone(&self.pool),
            &schedule,
        );
        // Reuse the first vacant slot under a fresh generation, or grow.
        if let Some(slot) = self.slots.iter().position(|s| s.pipeline.is_none()) {
            let s = &mut self.slots[slot];
            s.generation += 1;
            s.pipeline = Some(pipeline);
            s.voxels = voxels;
            return Ok(ShardId {
                slot,
                generation: s.generation,
            });
        }
        self.slots.push(Slot {
            generation: 0,
            pipeline: Some(pipeline),
            voxels,
            admitted: false,
        });
        Ok(ShardId {
            slot: self.slots.len() - 1,
            generation: 0,
        })
    }

    /// Attaches a new shard while siblings keep streaming: admission is
    /// checked against the [`RuntimeBudget`] (typed rejection, no
    /// silent queueing), the schedule is fitted for the new fleet size,
    /// and the shard's acquisition thread starts immediately. The
    /// returned [`ShardId`] names the session for id-based accessors
    /// and the eventual [`detach_shard`](Self::detach_shard).
    pub fn attach_shard(&mut self, config: ShardConfig) -> Result<ShardId, AdmissionError> {
        let fit = self.n_shards() + 1;
        self.attach_fitted(config, fit)
    }

    /// Detaches a shard: its pipeline is dropped here — joining its
    /// acquisition thread and (via the pool's handle-drop contract) any
    /// in-flight tile tasks — and its final [`PipelineStats`] are
    /// returned. Sibling shards are untouched; the slot is recycled for
    /// a later attach under a new generation. A stale or unknown id
    /// returns `None`.
    pub fn detach_shard(&mut self, id: ShardId) -> Option<PipelineStats> {
        let slot = self.slots.get_mut(id.slot)?;
        if slot.generation != id.generation {
            return None;
        }
        let pipeline = slot.pipeline.take()?;
        slot.voxels = 0;
        let stats = pipeline.stats();
        drop(pipeline);
        Some(stats)
    }

    /// All live shard ids, in slot order (the order
    /// [`round`](Self::round) reports outcomes in).
    pub fn shard_ids(&self) -> Vec<ShardId> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.pipeline.is_some())
            .map(|(slot, s)| ShardId {
                slot,
                generation: s.generation,
            })
            .collect()
    }

    /// Advances the live fleet by up to one frame per shard,
    /// multiplexed: every **admitted** shard's beamform job is
    /// submitted (in flight on the shared pool, with all acquisition
    /// threads filling the following frames) before any is redeemed.
    /// Live shards beyond [`RuntimeBudget::max_in_flight`] are deferred
    /// under a rotating window — fair backpressure, reported as
    /// [`ShardRound::Deferred`]. One shard's failure never disturbs its
    /// siblings.
    pub fn round(&mut self) -> Vec<ShardRound> {
        let mut outcomes = Vec::new();
        self.round_into(&mut outcomes);
        outcomes
    }

    /// [`round`](Self::round) with a caller-owned outcome buffer:
    /// `outcomes` is cleared and refilled with one entry per **live**
    /// shard, in slot order. Once the buffer has reached capacity a
    /// warm healthy round performs **zero** heap allocations — the
    /// tickets live on the stack (one recursion level per admitted
    /// shard) and only error outcomes carry owned messages.
    pub fn round_into(&mut self, outcomes: &mut Vec<ShardRound>) {
        outcomes.clear();
        let live = self.n_shards();
        if live == 0 {
            return;
        }
        // Pre-pass: place the rotating in-flight window and seed every
        // live shard's outcome with Deferred (overwritten on submit).
        let window = self.budget.max_in_flight.min(live).max(1);
        let start = self.rotate % live;
        let mut ordinal = 0usize;
        for (slot, s) in self.slots.iter_mut().enumerate() {
            if s.pipeline.is_none() {
                s.admitted = false;
                continue;
            }
            let in_window = (ordinal + live - start) % live < window;
            s.admitted = in_window;
            outcomes.push(ShardRound::Deferred(ShardId {
                slot,
                generation: s.generation,
            }));
            ordinal += 1;
        }
        self.rotate = (self.rotate + window) % live.max(1);

        // Submit on the way down the recursion, redeem on the way back
        // up: every admitted shard's job is in flight before any is
        // waited on, and each held ticket borrows only its own slot.
        fn drive(
            slots: &mut [Slot],
            slot_base: usize,
            out_base: usize,
            outcomes: &mut [ShardRound],
        ) {
            let Some((first, rest)) = slots.split_first_mut() else {
                return;
            };
            let Some(pipeline) = first.pipeline.as_mut() else {
                drive(rest, slot_base + 1, out_base, outcomes);
                return;
            };
            let id = ShardId {
                slot: slot_base,
                generation: first.generation,
            };
            if !first.admitted {
                // Deferred: the pre-pass already recorded the outcome.
                drive(rest, slot_base + 1, out_base + 1, outcomes);
                return;
            }
            match pipeline.submit() {
                Ok(ticket) => {
                    drive(rest, slot_base + 1, out_base + 1, outcomes);
                    outcomes[out_base] = match ticket.wait() {
                        Ok(_volume) => ShardRound::Completed(id),
                        Err(error) => ShardRound::Failed(id, error),
                    };
                }
                Err(error) => {
                    // Submit failed (source panic, disconnect): record it
                    // and keep multiplexing the siblings; the shard
                    // recovers on the next round.
                    outcomes[out_base] = ShardRound::Failed(id, error);
                    drive(rest, slot_base + 1, out_base + 1, outcomes);
                }
            }
        }
        drive(&mut self.slots, 0, 0, outcomes);
    }

    /// The live pipeline at `id`, if the shard is still attached.
    fn live(&self, id: ShardId) -> Option<&FramePipeline> {
        let slot = self.slots.get(id.slot)?;
        if slot.generation != id.generation {
            return None;
        }
        slot.pipeline.as_ref()
    }

    /// Shard `id`'s most recent volume (`None` for stale ids or before
    /// the shard's first successful frame).
    pub fn volume_of(&self, id: ShardId) -> Option<&BeamformedVolume> {
        self.live(id)?.volume()
    }

    /// A zero-scatter [`VolumeView`](crate::VolumeView) over shard
    /// `id`'s most recent frame (`None` for stale ids or before the
    /// shard's first successful frame): the per-viewer serving path —
    /// a dashboard pulls a [`slice`](crate::VolumeView::slice) or
    /// [`mip`](crate::VolumeView::mip) straight from the shard's warm
    /// tile outputs, never the merged volume.
    pub fn view_of(&self, id: ShardId) -> Option<crate::VolumeView<'_>> {
        self.live(id)?.view()
    }

    /// Shard `id`'s lifetime counters (`None` for stale ids).
    pub fn stats_of(&self, id: ShardId) -> Option<PipelineStats> {
        Some(self.live(id)?.stats())
    }

    /// Borrows shard `id`'s pipeline (`None` for stale ids).
    pub fn shard_of(&self, id: ShardId) -> Option<&FramePipeline> {
        self.live(id)
    }

    /// Mutably borrows shard `id`'s pipeline, e.g. to drive one shard
    /// out of lock-step with [`FramePipeline::submit`] (`None` for
    /// stale ids).
    pub fn shard_mut_of(&mut self, id: ShardId) -> Option<&mut FramePipeline> {
        let slot = self.slots.get_mut(id.slot)?;
        if slot.generation != id.generation {
            return None;
        }
        slot.pipeline.as_mut()
    }

    /// The fleet-wide latency histogram: every live shard's per-frame
    /// submit→complete distribution merged (exact — the scales are
    /// identical by construction).
    pub fn fleet_latency(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for s in &self.slots {
            if let Some(p) = &s.pipeline {
                merged.merge(&p.stats().latency);
            }
        }
        merged
    }

    /// The `i`-th live shard's pipeline, in slot order. Positional
    /// accessors index the *live* fleet (detached slots are skipped):
    /// for a statically-built runtime this matches construction order.
    fn nth_live(&self, i: usize) -> &FramePipeline {
        self.slots
            .iter()
            .filter_map(|s| s.pipeline.as_ref())
            .nth(i)
            .expect("live shard index in range")
    }

    /// Shard `i`'s most recent volume (`None` before its first
    /// successful frame). Positional: indexes live shards in slot
    /// order; prefer [`volume_of`](Self::volume_of) under churn.
    pub fn volume(&self, shard: usize) -> Option<&BeamformedVolume> {
        self.nth_live(shard).volume()
    }

    /// Shard `i`'s zero-scatter view (`None` before its first
    /// successful frame). Positional; prefer
    /// [`view_of`](Self::view_of) under churn.
    pub fn view(&self, shard: usize) -> Option<crate::VolumeView<'_>> {
        self.nth_live(shard).view()
    }

    /// Shard `i`'s lifetime counters (positional; prefer
    /// [`stats_of`](Self::stats_of) under churn).
    pub fn stats(&self, shard: usize) -> PipelineStats {
        self.nth_live(shard).stats()
    }

    /// Borrows shard `i`'s pipeline (positional; prefer
    /// [`shard_of`](Self::shard_of) under churn).
    pub fn shard(&self, shard: usize) -> &FramePipeline {
        self.nth_live(shard)
    }

    /// Mutably borrows shard `i`'s pipeline (positional; prefer
    /// [`shard_mut_of`](Self::shard_mut_of) under churn).
    pub fn shard_mut(&mut self, shard: usize) -> &mut FramePipeline {
        self.slots
            .iter_mut()
            .filter_map(|s| s.pipeline.as_mut())
            .nth(shard)
            .expect("live shard index in range")
    }

    /// Frame counts per live shard, in slot order — the fairness
    /// snapshot the soak tests assert on (`max − min ≤` a small bound
    /// when every shard is driven through [`round`](Self::round)).
    pub fn frame_counts(&self) -> Vec<u64> {
        self.slots
            .iter()
            .filter_map(|s| s.pipeline.as_ref())
            .map(FramePipeline::frames)
            .collect()
    }

    /// Replaces the runtime's budget; takes effect from the next
    /// admission decision and round. Loosening never disturbs live
    /// shards; tightening defers or rejects from now on but detaches
    /// nothing retroactively.
    pub fn set_budget(&mut self, budget: RuntimeBudget) {
        self.budget = budget;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrameRing, VolumeLoop};
    use usbf_core::{ExactEngine, TableSteerConfig, TableSteerEngine};
    use usbf_geometry::{SystemSpec, VoxelIndex};
    use usbf_sim::{EchoSynthesizer, Phantom, Pulse};

    fn point_frame(spec: &SystemSpec, vox: VoxelIndex) -> RfFrame {
        EchoSynthesizer::new(spec).synthesize(
            &Phantom::point(spec.volume_grid.position(vox)),
            &Pulse::from_spec(spec),
        )
    }

    #[test]
    fn shards_are_bit_identical_to_their_serial_baselines() {
        let spec = SystemSpec::tiny();
        let exact: Arc<dyn DelayEngine + Send + Sync> = Arc::new(ExactEngine::new(&spec));
        let steer: Arc<dyn DelayEngine + Send + Sync> =
            Arc::new(TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap());
        let frames = [
            point_frame(&spec, VoxelIndex::new(2, 3, 5)),
            point_frame(&spec, VoxelIndex::new(5, 4, 9)),
        ];
        let pool = Arc::new(ThreadPool::new(2));
        let mut rt = ShardedRuntime::new(
            Arc::clone(&pool),
            vec![
                ShardConfig::new(
                    Beamformer::new(&spec),
                    Arc::clone(&exact),
                    FrameRing::new(vec![frames[0].clone()]),
                ),
                ShardConfig::new(
                    Beamformer::new(&spec),
                    Arc::clone(&steer),
                    FrameRing::new(vec![frames[1].clone()]),
                ),
            ],
        );
        let mut baseline0 = VolumeLoop::new(Beamformer::new(&spec));
        let mut baseline1 = VolumeLoop::new(Beamformer::new(&spec));
        let expect0 = baseline0.beamform(exact.as_ref(), &frames[0]).clone();
        let expect1 = baseline1.beamform(steer.as_ref(), &frames[1]).clone();
        for round in 0..4 {
            let outcomes = rt.round();
            assert!(outcomes.iter().all(|o| o.is_ok()), "round {round}");
            assert!(outcomes.iter().all(|o| o.is_completed()), "round {round}");
            assert_eq!(rt.volume(0), Some(&expect0), "round {round}");
            assert_eq!(rt.volume(1), Some(&expect1), "round {round}");
        }
        assert_eq!(rt.frame_counts(), vec![4, 4]);
    }

    #[test]
    fn shard_schedules_share_the_tile_budget() {
        let spec = SystemSpec::tiny();
        let solo = shard_fitted_schedule(&spec, 4, 1);
        let split = shard_fitted_schedule(&spec, 4, 4);
        assert!(solo.n_blocks() >= 16);
        assert!(split.n_blocks() >= 4);
        assert!(
            split.n_blocks() <= solo.n_blocks(),
            "sharing the pool must not multiply tiles per shard"
        );
        // Degenerate inputs stay valid.
        assert!(shard_fitted_schedule(&spec, 0, 0).n_blocks() >= 2);
    }

    #[test]
    fn attach_detach_recycles_slots_under_new_generations() {
        let spec = SystemSpec::tiny();
        let mk = || {
            ShardConfig::new(
                Beamformer::new(&spec),
                Arc::new(ExactEngine::new(&spec)) as Arc<dyn DelayEngine + Send + Sync>,
                FrameRing::new(vec![RfFrame::zeros(8, 8, spec.echo_buffer_len())]),
            )
        };
        let pool = Arc::new(ThreadPool::new(2));
        let mut rt = ShardedRuntime::with_budget(Arc::clone(&pool), RuntimeBudget::unlimited());
        assert_eq!(rt.round().len(), 0, "an empty fleet rounds trivially");
        let a = rt.attach_shard(mk()).unwrap();
        let b = rt.attach_shard(mk()).unwrap();
        assert_ne!(a, b);
        assert!(rt.round().iter().all(|o| o.is_completed()));
        let stats = rt.detach_shard(a).expect("live");
        assert_eq!(stats.frames, 1);
        assert!(rt.detach_shard(a).is_none(), "stale id is inert");
        assert!(rt.stats_of(a).is_none());
        // The recycled slot gets a distinct identity.
        let c = rt.attach_shard(mk()).unwrap();
        assert_eq!(c.slot(), a.slot());
        assert_ne!(c, a);
        assert!(rt.volume_of(c).is_none(), "fresh shard has no frames yet");
        assert!(rt.round().iter().all(|o| o.is_completed()));
        assert_eq!(rt.stats_of(b).map(|s| s.frames), Some(2));
        assert_eq!(rt.stats_of(c).map(|s| s.frames), Some(1));
    }

    #[test]
    fn budget_rejections_are_typed() {
        let spec = SystemSpec::tiny();
        let mk = || {
            ShardConfig::new(
                Beamformer::new(&spec),
                Arc::new(ExactEngine::new(&spec)) as Arc<dyn DelayEngine + Send + Sync>,
                FrameRing::new(vec![RfFrame::zeros(8, 8, spec.echo_buffer_len())]),
            )
        };
        let pool = Arc::new(ThreadPool::new(1));
        let voxels = spec.volume_grid.voxel_count() as u64;
        let mut rt = ShardedRuntime::with_budget(
            Arc::clone(&pool),
            RuntimeBudget {
                max_live_shards: 2,
                max_in_flight: usize::MAX,
                max_round_voxels: Some(voxels * 2),
            },
        );
        let a = rt.attach_shard(mk()).unwrap();
        let _b = rt.attach_shard(mk()).unwrap();
        assert_eq!(
            rt.attach_shard(mk()),
            Err(AdmissionError::ShardLimit { live: 2, max: 2 })
        );
        // Freeing capacity re-admits; the voxel cap then binds first if
        // tightened.
        rt.detach_shard(a).unwrap();
        rt.budget.max_round_voxels = Some(voxels + voxels / 2);
        let err = rt.attach_shard(mk()).unwrap_err();
        assert_eq!(
            err,
            AdmissionError::ThroughputLimit {
                offered_voxels: voxels * 2,
                budget_voxels: voxels + voxels / 2,
            }
        );
        assert!(err.to_string().contains("voxels"));
    }

    #[test]
    fn in_flight_window_defers_fairly() {
        let spec = SystemSpec::tiny();
        let mk = || {
            ShardConfig::new(
                Beamformer::new(&spec),
                Arc::new(ExactEngine::new(&spec)) as Arc<dyn DelayEngine + Send + Sync>,
                FrameRing::new(vec![RfFrame::zeros(8, 8, spec.echo_buffer_len())]),
            )
        };
        let pool = Arc::new(ThreadPool::new(2));
        let mut rt = ShardedRuntime::with_budget(
            Arc::clone(&pool),
            RuntimeBudget {
                max_live_shards: usize::MAX,
                max_in_flight: 2,
                max_round_voxels: None,
            },
        );
        for _ in 0..3 {
            rt.attach_shard(mk()).unwrap();
        }
        // Each round completes exactly the window and defers the rest.
        for round in 0..6 {
            let outcomes = rt.round();
            assert_eq!(outcomes.len(), 3);
            let completed = outcomes.iter().filter(|o| o.is_completed()).count();
            let deferred = outcomes.iter().filter(|o| o.is_deferred()).count();
            assert_eq!((completed, deferred), (2, 1), "round {round}");
        }
        // 6 rounds × window 2 = 12 admissions over 3 shards: exactly 4
        // frames each — the rotation is perfectly fair.
        assert_eq!(rt.frame_counts(), vec![4, 4, 4]);
    }
}
