//! Delay-and-sum beamforming over pluggable delay engines.
//!
//! This is the consumer of the paper's delay architectures: Eq. 1,
//! `s(S) = Σ_D w(S)·e(D, tp(O,S,D))`, evaluated for every focal point of
//! the imaging volume in either traversal order of Algorithm 1. The delay
//! index for each `(S, D)` pair comes from any [`DelayEngine`] — exact,
//! TABLEFREE or TABLESTEER — so end-to-end image differences measure
//! exactly the delay-generation error.
//!
//! * [`Apodization`] — separable aperture windows (the `w(S)` weights the
//!   paper leaves out of scope but relies on to suppress edge artifacts);
//! * [`Beamformer`] — per-voxel delay-and-sum with nearest-index fetch
//!   (the paper's datapath) or linear interpolation (extension); its tile
//!   kernel runs as two monomorphized, row-batched loops over the
//!   compacted [`ActiveAperture`] and a reusable [`TileState`]
//!   (quantized index row → gathered sample row → weighted accumulate),
//!   bit-identical to the scalar walk;
//! * [`BeamformedVolume`] — the reconstructed volume with profile/slice
//!   accessors for image-quality metrics;
//! * [`PostChain`] — fused B-mode post-processing (IQ demodulation →
//!   envelope detection → log compression, built from the `usbf_sim`
//!   envelope kernels) applied per tile inside the volume paths, with
//!   preallocated scratch and bit-identical to a whole-volume pass;
//! * [`VolumeView`] — re-slices ([`SlicePlane`]) and max-intensity
//!   projections ([`ProjectionAxis`]) assembled straight from the warm
//!   tile outputs, never materializing the full volume;
//! * [`VolumeLoop`] — the real-time frame loop: repeated volumes on the
//!   persistent `usbf_par` worker pool with preallocated delay slabs and
//!   buffers and a preregistered pool job, bit-identical to the cold
//!   path;
//! * [`FramePipeline`] — the asynchronous runtime: `submit` kicks off
//!   beamforming of frame `n` on the shared pool and returns a
//!   [`VolumeTicket`] immediately, so acquisition of frame `n+1` (any
//!   [`FrameSource`]), beamforming of `n` and the caller's consumption
//!   of volume `n−1` all overlap;
//! * [`ShardedRuntime`] — several probes' pipelines (distinct specs,
//!   engines and sources per [`ShardConfig`]) multiplexed fairly on one
//!   worker pool, with per-shard stats and failure isolation.
//!
//! # Example
//!
//! ```
//! use usbf_beamform::{Apodization, Beamformer};
//! use usbf_core::ExactEngine;
//! use usbf_geometry::{SystemSpec, VoxelIndex};
//! use usbf_sim::{EchoSynthesizer, Phantom, Pulse};
//!
//! let spec = SystemSpec::tiny();
//! // A point target sitting exactly on a voxel of the focal grid:
//! let vox = VoxelIndex::new(4, 4, 8);
//! let target = spec.volume_grid.position(vox);
//! let rf = EchoSynthesizer::new(&spec)
//!     .synthesize(&Phantom::point(target), &Pulse::from_spec(&spec));
//! let engine = ExactEngine::new(&spec);
//! let bf = Beamformer::new(&spec).with_apodization(Apodization::Hann);
//! let vol = bf.beamform_volume(&engine, &rf);
//! assert_eq!(vol.argmax(), vox);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apodization;
mod beamformer;
mod frame_pipeline;
mod latency;
mod postproc;
mod sharded;
mod view;
mod volume;
mod volume_loop;

pub use apodization::{ActiveAperture, Apodization};
pub use beamformer::{Beamformer, Interpolation, Reduction, TileState};
pub use frame_pipeline::{
    FramePipeline, FrameRing, FrameSource, PipelineError, PipelineStats, SynthesizedFrames,
    VolumeTicket,
};
pub use latency::LatencyHistogram;
pub use postproc::{BmodeConfig, PostChain, PostScratch, PostStage};
pub use sharded::{
    shard_fitted_schedule, AdmissionError, RuntimeBudget, ShardConfig, ShardId, ShardRound,
    ShardedRuntime,
};
pub use view::{ProjectionAxis, SlicePlane, VolumeView};
pub use volume::BeamformedVolume;
pub use volume_loop::VolumeLoop;

pub use usbf_core::DelayEngine;
