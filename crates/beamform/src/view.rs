//! Cheap volume views: re-slices and max-intensity projections computed
//! straight from the warm tile outputs.
//!
//! A dashboard viewer pulls a 2D image, not a 100 MB volume. Serving
//! that image from the scattered [`BeamformedVolume`] means the runtime
//! first merges every tile into the dense volume and the consumer then
//! re-reads a plane of it. [`VolumeView`] skips both steps: it borrows
//! the runtime's per-tile staging buffers (each tile's scanline columns
//! in `[scanline][depth]` order) and assembles the requested plane
//! directly — O(plane) writes, no volume-sized buffer touched, and with
//! the `_into` variants no allocation at all. The values read are the
//! most recent beamformed frame's, post-processing included when the
//! beamformer carries a [`PostChain`](crate::PostChain).

use crate::beamformer::TileState;
use usbf_core::Tile;

/// A plane of the volume selected by fixing one coordinate.
///
/// The produced slice is stored row-major in the two remaining
/// coordinates, slower axis first, in the volume's canonical θ → φ →
/// depth order: `Theta(it)` yields `[φ][depth]`, `Phi(ip)` yields
/// `[θ][depth]`, `Depth(id)` yields `[θ][φ]` (the C-scan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlicePlane {
    /// Fix the θ steering index: a φ × depth fan slice.
    Theta(usize),
    /// Fix the φ steering index: a θ × depth fan slice.
    Phi(usize),
    /// Fix the depth index: a θ × φ constant-depth slice.
    Depth(usize),
}

/// The axis a max-intensity projection collapses.
///
/// The output keeps the two remaining coordinates in canonical order:
/// projecting along `Theta` yields `[φ][depth]`, along `Phi` yields
/// `[θ][depth]`, along `Depth` yields `[θ][φ]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProjectionAxis {
    /// Collapse θ: each output pixel is the max over all θ lines.
    Theta,
    /// Collapse φ.
    Phi,
    /// Collapse depth (the classic top-down MIP).
    Depth,
}

/// A read-only window onto a runtime's most recent beamformed frame,
/// assembled per request from the warm tile outputs. Borrowed from
/// [`VolumeLoop::view`](crate::VolumeLoop::view),
/// [`FramePipeline::view`](crate::FramePipeline::view) or
/// [`ShardedRuntime::view_of`](crate::ShardedRuntime::view_of); the
/// borrow checker guarantees no frame can be in flight while a view is
/// alive.
#[derive(Clone, Copy)]
pub struct VolumeView<'a> {
    tiles: &'a [Tile],
    states: &'a [TileState],
    n_theta: usize,
    n_phi: usize,
    n_depth: usize,
}

impl<'a> VolumeView<'a> {
    pub(crate) fn new(
        tiles: &'a [Tile],
        states: &'a [TileState],
        n_theta: usize,
        n_phi: usize,
        n_depth: usize,
    ) -> Self {
        debug_assert_eq!(tiles.len(), states.len());
        VolumeView {
            tiles,
            states,
            n_theta,
            n_phi,
            n_depth,
        }
    }

    /// The `(n_theta, n_phi, n_depth)` extents of the viewed volume.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.n_theta, self.n_phi, self.n_depth)
    }

    /// Output length of [`slice`](Self::slice) for a plane.
    ///
    /// # Panics
    ///
    /// Panics if the fixed index is out of range.
    pub fn slice_len(&self, plane: SlicePlane) -> usize {
        match plane {
            SlicePlane::Theta(it) => {
                assert!(it < self.n_theta, "theta index {it} out of range");
                self.n_phi * self.n_depth
            }
            SlicePlane::Phi(ip) => {
                assert!(ip < self.n_phi, "phi index {ip} out of range");
                self.n_theta * self.n_depth
            }
            SlicePlane::Depth(id) => {
                assert!(id < self.n_depth, "depth index {id} out of range");
                self.n_theta * self.n_phi
            }
        }
    }

    /// Output length of [`mip`](Self::mip) along an axis.
    pub fn mip_len(&self, axis: ProjectionAxis) -> usize {
        match axis {
            ProjectionAxis::Theta => self.n_phi * self.n_depth,
            ProjectionAxis::Phi => self.n_theta * self.n_depth,
            ProjectionAxis::Depth => self.n_theta * self.n_phi,
        }
    }

    /// Extracts a plane into a fresh buffer. See [`SlicePlane`] for the
    /// output layout. Only the plane is ever written — the full volume
    /// is never materialized.
    pub fn slice(&self, plane: SlicePlane) -> Vec<f64> {
        let mut out = vec![0.0; self.slice_len(plane)];
        self.slice_into(plane, &mut out);
        out
    }

    /// Extracts a plane into a caller-owned buffer of exactly
    /// [`slice_len`](Self::slice_len) values — the allocation-free form
    /// a per-viewer buffer pool would drive.
    ///
    /// # Panics
    ///
    /// Panics if the fixed index is out of range or `out` has the wrong
    /// length.
    pub fn slice_into(&self, plane: SlicePlane, out: &mut [f64]) {
        assert_eq!(out.len(), self.slice_len(plane), "output length mismatch");
        let nd = self.n_depth;
        match plane {
            SlicePlane::Theta(it) => {
                for (tile, state) in self.tiles.iter().zip(self.states) {
                    if it < tile.theta_start || it >= tile.theta_end {
                        continue;
                    }
                    for ip in tile.phi_start..tile.phi_end {
                        let slot = tile.slot_of(it, ip);
                        out[ip * nd..(ip + 1) * nd]
                            .copy_from_slice(&state.values()[slot * nd..(slot + 1) * nd]);
                    }
                }
            }
            SlicePlane::Phi(ip) => {
                for (tile, state) in self.tiles.iter().zip(self.states) {
                    if ip < tile.phi_start || ip >= tile.phi_end {
                        continue;
                    }
                    for it in tile.theta_start..tile.theta_end {
                        let slot = tile.slot_of(it, ip);
                        out[it * nd..(it + 1) * nd]
                            .copy_from_slice(&state.values()[slot * nd..(slot + 1) * nd]);
                    }
                }
            }
            SlicePlane::Depth(id) => {
                for (tile, state) in self.tiles.iter().zip(self.states) {
                    for (slot, it, ip) in tile.iter_scanlines() {
                        out[it * self.n_phi + ip] = state.values()[slot * nd + id];
                    }
                }
            }
        }
    }

    /// Max-intensity projection along an axis, into a fresh buffer. See
    /// [`ProjectionAxis`] for the output layout. The fold is a signed
    /// [`f64::max`] — correct for envelope and dB data, where larger
    /// means brighter — and skips NaN.
    pub fn mip(&self, axis: ProjectionAxis) -> Vec<f64> {
        let mut out = vec![0.0; self.mip_len(axis)];
        self.mip_into(axis, &mut out);
        out
    }

    /// Max-intensity projection into a caller-owned buffer of exactly
    /// [`mip_len`](Self::mip_len) values (allocation-free).
    ///
    /// # Panics
    ///
    /// Panics if `out` has the wrong length.
    pub fn mip_into(&self, axis: ProjectionAxis, out: &mut [f64]) {
        assert_eq!(out.len(), self.mip_len(axis), "output length mismatch");
        out.fill(f64::NEG_INFINITY);
        let nd = self.n_depth;
        for (tile, state) in self.tiles.iter().zip(self.states) {
            for (slot, it, ip) in tile.iter_scanlines() {
                let column = &state.values()[slot * nd..(slot + 1) * nd];
                match axis {
                    ProjectionAxis::Theta => {
                        let row = &mut out[ip * nd..(ip + 1) * nd];
                        for (o, &v) in row.iter_mut().zip(column) {
                            *o = o.max(v);
                        }
                    }
                    ProjectionAxis::Phi => {
                        let row = &mut out[it * nd..(it + 1) * nd];
                        for (o, &v) in row.iter_mut().zip(column) {
                            *o = o.max(v);
                        }
                    }
                    ProjectionAxis::Depth => {
                        let o = &mut out[it * self.n_phi + ip];
                        *o = column.iter().fold(*o, |m, &v| m.max(v));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        Beamformer, BmodeConfig, FramePipeline, FrameRing, PostChain, ShardConfig, ShardedRuntime,
        VolumeLoop,
    };
    use std::sync::Arc;
    use usbf_core::ExactEngine;
    use usbf_geometry::{SystemSpec, VoxelIndex};
    use usbf_sim::{EchoSynthesizer, Phantom, Pulse, RfFrame};

    fn setup() -> (SystemSpec, RfFrame) {
        let spec = SystemSpec::tiny();
        let target = spec.volume_grid.position(VoxelIndex::new(4, 4, 8));
        let rf = EchoSynthesizer::new(&spec)
            .synthesize(&Phantom::point(target), &Pulse::from_spec(&spec));
        (spec, rf)
    }

    fn all_planes(spec: &SystemSpec) -> Vec<SlicePlane> {
        let v = &spec.volume_grid;
        let mut planes = Vec::new();
        for it in 0..v.n_theta() {
            planes.push(SlicePlane::Theta(it));
        }
        for ip in 0..v.n_phi() {
            planes.push(SlicePlane::Phi(ip));
        }
        for id in 0..v.n_depth() {
            planes.push(SlicePlane::Depth(id));
        }
        planes
    }

    const AXES: [ProjectionAxis; 3] = [
        ProjectionAxis::Theta,
        ProjectionAxis::Phi,
        ProjectionAxis::Depth,
    ];

    #[test]
    fn loop_view_matches_dense_volume_slices_and_mips() {
        let (spec, rf) = setup();
        let engine = ExactEngine::new(&spec);
        for post in [
            PostChain::empty(),
            PostChain::bmode(BmodeConfig::from_spec(&spec)),
        ] {
            let mut rt = VolumeLoop::new(Beamformer::new(&spec).with_postproc(post));
            rt.beamform(&engine, &rf);
            let dense = rt.volume().clone();
            let view = rt.view();
            assert_eq!(view.dims(), (8, 8, 16));
            for plane in all_planes(&spec) {
                assert_eq!(view.slice(plane), dense.slice(plane), "{plane:?}");
                let mut out = vec![0.0; view.slice_len(plane)];
                view.slice_into(plane, &mut out);
                assert_eq!(out, dense.slice(plane), "{plane:?} (into)");
            }
            for axis in AXES {
                assert_eq!(view.mip(axis), dense.mip(axis), "{axis:?}");
                let mut out = vec![0.0; view.mip_len(axis)];
                view.mip_into(axis, &mut out);
                assert_eq!(out, dense.mip(axis), "{axis:?} (into)");
            }
        }
    }

    #[test]
    fn pipeline_view_appears_after_first_frame() {
        let (spec, rf) = setup();
        let mut pipe = FramePipeline::new(
            Beamformer::new(&spec).with_postproc(PostChain::bmode(BmodeConfig::from_spec(&spec))),
            Arc::new(ExactEngine::new(&spec)),
            FrameRing::new(vec![rf]),
        );
        assert!(pipe.view().is_none(), "no view before the first frame");
        pipe.next_volume().expect("healthy pipeline");
        let dense = pipe.volume().expect("one frame done").clone();
        let view = pipe.view().expect("view after the first frame");
        let plane = SlicePlane::Phi(3);
        assert_eq!(view.slice(plane), dense.slice(plane));
        assert_eq!(
            view.mip(ProjectionAxis::Depth),
            dense.mip(ProjectionAxis::Depth)
        );
    }

    #[test]
    fn sharded_views_serve_each_shard_independently() {
        let (spec, rf) = setup();
        let engine = Arc::new(ExactEngine::new(&spec));
        let bmode = PostChain::bmode(BmodeConfig::from_spec(&spec));
        let mut rt = ShardedRuntime::new(
            Arc::new(usbf_par::ThreadPool::new(2)),
            vec![
                ShardConfig::new(
                    Beamformer::new(&spec),
                    Arc::clone(&engine) as _,
                    FrameRing::new(vec![rf.clone()]),
                ),
                ShardConfig::new(
                    Beamformer::new(&spec).with_postproc(bmode),
                    engine as _,
                    FrameRing::new(vec![rf]),
                ),
            ],
        );
        assert!(rt.view(0).is_none(), "no frames yet");
        rt.round();
        for shard in 0..2 {
            let dense = rt.volume(shard).expect("round completed").clone();
            let view = rt.view(shard).expect("view after a round");
            for axis in AXES {
                assert_eq!(view.mip(axis), dense.mip(axis), "shard {shard} {axis:?}");
            }
            assert_eq!(
                view.slice(SlicePlane::Depth(8)),
                dense.slice(SlicePlane::Depth(8)),
                "shard {shard}"
            );
        }
        // The raw and post-processed shards must actually differ.
        assert_ne!(
            rt.view(0).unwrap().slice(SlicePlane::Depth(8)),
            rt.view(1).unwrap().slice(SlicePlane::Depth(8))
        );
    }

    #[test]
    #[should_panic(expected = "depth index")]
    fn out_of_range_plane_panics() {
        let (spec, rf) = setup();
        let engine = ExactEngine::new(&spec);
        let mut rt = VolumeLoop::new(Beamformer::new(&spec));
        rt.beamform(&engine, &rf);
        rt.view().slice(SlicePlane::Depth(16));
    }

    #[test]
    #[should_panic(expected = "output length mismatch")]
    fn wrong_output_length_panics() {
        let (spec, rf) = setup();
        let engine = ExactEngine::new(&spec);
        let mut rt = VolumeLoop::new(Beamformer::new(&spec));
        rt.beamform(&engine, &rf);
        let mut out = vec![0.0; 3];
        rt.view().mip_into(ProjectionAxis::Depth, &mut out);
    }
}
