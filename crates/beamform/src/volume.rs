//! The reconstructed volume container.

use crate::{ProjectionAxis, SlicePlane};
use usbf_geometry::{SystemSpec, VoxelIndex};

/// A beamformed volume: one value per focal point, stored in
/// scanline-major linear order.
#[derive(Debug, Clone, PartialEq)]
pub struct BeamformedVolume {
    data: Vec<f64>,
    n_theta: usize,
    n_phi: usize,
    n_depth: usize,
}

impl BeamformedVolume {
    /// Allocates a zeroed volume matching a spec's focal grid.
    pub fn zeros(spec: &SystemSpec) -> Self {
        let v = &spec.volume_grid;
        BeamformedVolume {
            data: vec![0.0; v.voxel_count()],
            n_theta: v.n_theta(),
            n_phi: v.n_phi(),
            n_depth: v.n_depth(),
        }
    }

    #[inline]
    fn linear(&self, vox: VoxelIndex) -> usize {
        debug_assert!(
            vox.it < self.n_theta && vox.ip < self.n_phi && vox.id < self.n_depth,
            "voxel {vox} out of range"
        );
        (vox.it * self.n_phi + vox.ip) * self.n_depth + vox.id
    }

    /// Value at a voxel.
    #[inline]
    pub fn get(&self, vox: VoxelIndex) -> f64 {
        self.data[self.linear(vox)]
    }

    /// Sets the value at a voxel.
    #[inline]
    pub fn set(&mut self, vox: VoxelIndex, value: f64) {
        let i = self.linear(vox);
        self.data[i] = value;
    }

    /// Total voxels.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the volume has no voxels (never true for a spec-built
    /// volume).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Largest |value|.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Voxel with the largest |value|.
    pub fn argmax(&self) -> VoxelIndex {
        let (mut best, mut best_i) = (-1.0f64, 0);
        for (i, &v) in self.data.iter().enumerate() {
            if v.abs() > best {
                best = v.abs();
                best_i = i;
            }
        }
        let id = best_i % self.n_depth;
        let rest = best_i / self.n_depth;
        VoxelIndex::new(rest / self.n_phi, rest % self.n_phi, id)
    }

    /// Axial profile (all depths) along scanline `(it, ip)`.
    pub fn axial_profile(&self, it: usize, ip: usize) -> Vec<f64> {
        (0..self.n_depth)
            .map(|id| self.get(VoxelIndex::new(it, ip, id)))
            .collect()
    }

    /// Lateral (θ) profile at fixed `(ip, id)`.
    pub fn lateral_profile(&self, ip: usize, id: usize) -> Vec<f64> {
        (0..self.n_theta)
            .map(|it| self.get(VoxelIndex::new(it, ip, id)))
            .collect()
    }

    /// The raw values in scanline-major order.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Depth samples per scanline column.
    #[inline]
    pub fn n_depth(&self) -> usize {
        self.n_depth
    }

    /// Mutable iteration over the volume's scanline columns (each one
    /// contiguous axial trace of `n_depth` values), in θ-major, φ-inner
    /// order — the granularity the post-processing chain operates at.
    pub fn columns_mut(&mut self) -> impl Iterator<Item = &mut [f64]> {
        self.data.chunks_exact_mut(self.n_depth)
    }

    /// Extracts a plane from the dense volume — the materialized
    /// reference [`VolumeView::slice`](crate::VolumeView::slice) is
    /// tested against. Same output layout as the view.
    ///
    /// # Panics
    ///
    /// Panics if the fixed index is out of range.
    pub fn slice(&self, plane: SlicePlane) -> Vec<f64> {
        match plane {
            SlicePlane::Theta(it) => {
                assert!(it < self.n_theta, "theta index {it} out of range");
                (0..self.n_phi)
                    .flat_map(|ip| {
                        (0..self.n_depth).map(move |id| self.get(VoxelIndex::new(it, ip, id)))
                    })
                    .collect()
            }
            SlicePlane::Phi(ip) => {
                assert!(ip < self.n_phi, "phi index {ip} out of range");
                (0..self.n_theta)
                    .flat_map(|it| {
                        (0..self.n_depth).map(move |id| self.get(VoxelIndex::new(it, ip, id)))
                    })
                    .collect()
            }
            SlicePlane::Depth(id) => {
                assert!(id < self.n_depth, "depth index {id} out of range");
                (0..self.n_theta)
                    .flat_map(|it| {
                        (0..self.n_phi).map(move |ip| self.get(VoxelIndex::new(it, ip, id)))
                    })
                    .collect()
            }
        }
    }

    /// Max-intensity projection along an axis from the dense volume —
    /// the materialized reference
    /// [`VolumeView::mip`](crate::VolumeView::mip) is tested against.
    /// Signed [`f64::max`] fold, like the view.
    pub fn mip(&self, axis: ProjectionAxis) -> Vec<f64> {
        let fold_len = match axis {
            ProjectionAxis::Theta => self.n_theta,
            ProjectionAxis::Phi => self.n_phi,
            ProjectionAxis::Depth => self.n_depth,
        };
        let get = |a: usize, b: usize, k: usize| match axis {
            ProjectionAxis::Theta => self.get(VoxelIndex::new(k, a, b)),
            ProjectionAxis::Phi => self.get(VoxelIndex::new(a, k, b)),
            ProjectionAxis::Depth => self.get(VoxelIndex::new(a, b, k)),
        };
        let (rows, cols) = match axis {
            ProjectionAxis::Theta => (self.n_phi, self.n_depth),
            ProjectionAxis::Phi => (self.n_theta, self.n_depth),
            ProjectionAxis::Depth => (self.n_theta, self.n_phi),
        };
        (0..rows)
            .flat_map(|a| {
                (0..cols)
                    .map(move |b| (0..fold_len).fold(f64::NEG_INFINITY, |m, k| m.max(get(a, b, k))))
            })
            .collect()
    }

    /// Log-compressed magnitude in dB relative to the volume peak, clamped
    /// at `floor_db` (e.g. −60): the standard display transform.
    pub fn to_db(&self, floor_db: f64) -> Vec<f64> {
        let peak = self.max_abs().max(f64::MIN_POSITIVE);
        self.data
            .iter()
            .map(|&v| (20.0 * (v.abs() / peak).log10()).max(floor_db))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vol() -> BeamformedVolume {
        BeamformedVolume::zeros(&SystemSpec::tiny())
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = vol();
        let vox = VoxelIndex::new(2, 3, 4);
        v.set(vox, 1.5);
        assert_eq!(v.get(vox), 1.5);
        assert_eq!(v.get(VoxelIndex::new(2, 3, 5)), 0.0);
    }

    #[test]
    fn argmax_finds_largest_magnitude() {
        let mut v = vol();
        v.set(VoxelIndex::new(1, 1, 1), 0.5);
        v.set(VoxelIndex::new(7, 6, 15), -2.0);
        assert_eq!(v.argmax(), VoxelIndex::new(7, 6, 15));
        assert_eq!(v.max_abs(), 2.0);
    }

    #[test]
    fn profiles_have_right_lengths() {
        let v = vol();
        assert_eq!(v.axial_profile(0, 0).len(), 16);
        assert_eq!(v.lateral_profile(0, 0).len(), 8);
        assert_eq!(v.len(), 8 * 8 * 16);
        assert!(!v.is_empty());
    }

    #[test]
    fn to_db_peak_is_zero() {
        let mut v = vol();
        v.set(VoxelIndex::new(0, 0, 0), 4.0);
        v.set(VoxelIndex::new(0, 0, 1), 0.4);
        let db = v.to_db(-60.0);
        assert_eq!(db[0], 0.0);
        assert!((db[1] + 20.0).abs() < 1e-9);
        assert_eq!(db[2], -60.0);
    }
}
