//! The real-time frame loop: repeated volumes with warm, preallocated
//! state on the persistent worker pool.
//!
//! The paper's architecture exists to sustain delay generation at 3D
//! frame rates — the delays for a volume are regenerated for **every
//! insonification**, thousands of times per second. A loop that calls
//! [`Beamformer::beamform_volume`] per frame pays, each time, for a tile
//! schedule, one delay slab and one values buffer per tile, a fresh
//! output volume, and (historically) freshly spawned threads.
//! [`VolumeLoop`] hoists all of that out of the frame path: it owns a
//! handle to the persistent [`ThreadPool`], one [`NappeDelays`] slab and
//! values buffer per schedule tile, a reusable output volume, and a
//! preregistered [`JobHandle`] on the pool. After the first frame,
//! beamforming a volume performs **no thread spawns, no slab, buffer or
//! volume allocations, and no per-tile job allocations** — the job's
//! completion barrier is allocated once at construction and re-announced
//! per frame with a borrowed closure.

use crate::beamformer::TileState;
use crate::{BeamformedVolume, Beamformer};
use std::sync::Arc;
use usbf_core::{DelayEngine, NappeSchedule, Tile};
use usbf_par::{JobHandle, ThreadPool};
use usbf_sim::RfFrame;

/// A persistent volume-rate beamforming loop.
///
/// Bit-exactness invariant: for the same engine, RF frame and schedule,
/// [`VolumeLoop::beamform`] produces a volume **bit-identical** to a cold
/// [`Beamformer::beamform_volume`] call — the loop only reuses memory; it
/// never reorders the arithmetic.
///
/// ```
/// use usbf_beamform::{Beamformer, VolumeLoop};
/// use usbf_core::ExactEngine;
/// use usbf_geometry::SystemSpec;
/// use usbf_sim::RfFrame;
///
/// let spec = SystemSpec::tiny();
/// let engine = ExactEngine::new(&spec);
/// let rf = RfFrame::zeros(
///     spec.elements.nx(),
///     spec.elements.ny(),
///     spec.echo_buffer_len(),
/// );
/// let beamformer = Beamformer::new(&spec);
/// let cold = beamformer.beamform_volume(&engine, &rf);
/// let mut rt = VolumeLoop::new(beamformer);
/// for _ in 0..3 {
///     let vol = rt.beamform(&engine, &rf); // warm path, no reallocation
///     assert_eq!(vol, &cold);
/// }
/// assert_eq!(rt.frames(), 3);
/// ```
pub struct VolumeLoop {
    beamformer: Beamformer,
    job: JobHandle,
    tiles: Vec<Tile>,
    states: Vec<TileState>,
    out: BeamformedVolume,
    frames: u64,
}

impl VolumeLoop {
    /// Builds a loop on the global pool with a schedule fitted to that
    /// pool's worker count — the same schedule
    /// [`Beamformer::beamform_volume`] uses, so outputs stay
    /// bit-identical to the cold path (they are bit-identical for *any*
    /// schedule, but sharing one also matches the work split).
    #[must_use]
    pub fn new(beamformer: Beamformer) -> Self {
        let pool = usbf_par::global_arc();
        let schedule = crate::beamformer::pool_fitted_schedule(beamformer.spec(), &pool);
        Self::with_pool(beamformer, pool, &schedule)
    }

    /// Builds a loop on an explicit pool and schedule. All allocation
    /// happens here: one slab and one values buffer per schedule tile,
    /// the output volume, and the preregistered pool job the frame path
    /// re-announces.
    #[must_use]
    pub fn with_pool(
        beamformer: Beamformer,
        pool: Arc<ThreadPool>,
        schedule: &NappeSchedule,
    ) -> Self {
        let spec = beamformer.spec().clone();
        let tiles = schedule.tiles();
        let states = crate::beamformer::warm_tile_states(&beamformer, &tiles);
        let out = BeamformedVolume::zeros(&spec);
        VolumeLoop {
            beamformer,
            job: ThreadPool::register(&pool),
            tiles,
            states,
            out,
            frames: 0,
        }
    }

    /// Beamforms one frame into the loop's reusable volume and returns
    /// it. Each schedule tile is one task of the loop's preregistered
    /// pool job, writing into its own warm slab and staging buffer; the
    /// sequential scatter into the output volume is deterministic, so
    /// repeated frames of identical input are bit-identical (and
    /// identical to the cold path), for **any** pool size.
    pub fn beamform(&mut self, engine: &dyn DelayEngine, rf: &RfFrame) -> &BeamformedVolume {
        let beamformer = &self.beamformer;
        self.job.run(&mut self.states, &|_, state: &mut TileState| {
            beamformer.beamform_tile_into(engine, rf, state);
        });
        let n_depth = beamformer.spec().volume_grid.n_depth();
        crate::beamformer::scatter_tiles(&mut self.out, &self.tiles, &self.states, n_depth);
        self.frames += 1;
        &self.out
    }

    /// The most recently beamformed volume (zeros before the first
    /// frame).
    pub fn volume(&self) -> &BeamformedVolume {
        &self.out
    }

    /// A zero-scatter view over the most recent frame's tile outputs:
    /// [`slice`](crate::VolumeView::slice) and
    /// [`mip`](crate::VolumeView::mip) read the warm staging buffers
    /// directly, without the merged volume. Zeros before the first
    /// frame, like [`volume`](Self::volume).
    pub fn view(&self) -> crate::VolumeView<'_> {
        let grid = &self.beamformer.spec().volume_grid;
        crate::VolumeView::new(
            &self.tiles,
            &self.states,
            grid.n_theta(),
            grid.n_phi(),
            grid.n_depth(),
        )
    }

    /// Frames beamformed since construction.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Number of schedule tiles (= parallel tasks per frame).
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// The beamformer configuration driving the loop.
    pub fn beamformer(&self) -> &Beamformer {
        &self.beamformer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usbf_core::{ExactEngine, TableSteerConfig, TableSteerEngine};
    use usbf_geometry::SystemSpec;
    use usbf_sim::{EchoSynthesizer, Phantom, Pulse};

    fn setup() -> (SystemSpec, RfFrame) {
        let spec = SystemSpec::tiny();
        // A point target sitting exactly on a voxel, so volumes carry
        // real signal energy.
        let target = spec
            .volume_grid
            .position(usbf_geometry::VoxelIndex::new(4, 4, 8));
        let rf = EchoSynthesizer::new(&spec)
            .synthesize(&Phantom::point(target), &Pulse::from_spec(&spec));
        (spec, rf)
    }

    #[test]
    fn warm_loop_is_bit_identical_to_cold_beamform_volume() {
        let (spec, rf) = setup();
        let exact = ExactEngine::new(&spec);
        let steer = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
        for engine in [&exact as &dyn DelayEngine, &steer] {
            let beamformer = Beamformer::new(&spec);
            let cold = beamformer.beamform_volume(engine, &rf);
            let mut rt = VolumeLoop::new(beamformer);
            for frame in 0..5 {
                let warm = rt.beamform(engine, &rf);
                assert_eq!(warm, &cold, "{} frame {frame}", engine.name());
            }
        }
    }

    #[test]
    fn warm_loop_reuses_slabs_and_buffers() {
        let (spec, rf) = setup();
        let engine = ExactEngine::new(&spec);
        let mut rt = VolumeLoop::new(Beamformer::new(&spec));
        rt.beamform(&engine, &rf);
        let slab_ptrs: Vec<*const f64> = rt
            .states
            .iter()
            .map(|s| s.slab.samples().as_ptr())
            .collect();
        let value_ptrs: Vec<*const f64> = rt.states.iter().map(|s| s.values.as_ptr()).collect();
        let out_ptr = rt.out.as_slice().as_ptr();
        for _ in 0..10 {
            rt.beamform(&engine, &rf);
        }
        // No slab, staging-buffer or output-volume reallocation after
        // warm-up: the frame path only writes into memory owned since
        // construction.
        for (state, (&sp, &vp)) in rt
            .states
            .iter()
            .zip(slab_ptrs.iter().zip(value_ptrs.iter()))
        {
            assert_eq!(state.slab.samples().as_ptr(), sp);
            assert_eq!(state.values.as_ptr(), vp);
        }
        assert_eq!(rt.out.as_slice().as_ptr(), out_ptr);
        assert_eq!(rt.frames(), 11);
    }

    #[test]
    fn explicit_pool_and_schedule_match_default_path() {
        let (spec, rf) = setup();
        let engine = ExactEngine::new(&spec);
        let cold = Beamformer::new(&spec).beamform_volume(&engine, &rf);
        for target_tiles in [1, 4, 16] {
            let schedule = NappeSchedule::fitted(&spec, target_tiles);
            let pool = Arc::new(ThreadPool::new(3));
            let mut rt = VolumeLoop::with_pool(Beamformer::new(&spec), pool, &schedule);
            assert!(rt.tile_count() >= target_tiles);
            assert_eq!(rt.beamform(&engine, &rf), &cold, "{target_tiles} tiles");
        }
    }

    #[test]
    fn volume_accessor_tracks_last_frame() {
        let (spec, rf) = setup();
        let engine = ExactEngine::new(&spec);
        let mut rt = VolumeLoop::new(Beamformer::new(&spec));
        assert_eq!(rt.volume().max_abs(), 0.0);
        assert_eq!(rt.frames(), 0);
        let peak = rt.beamform(&engine, &rf).max_abs();
        assert!(peak > 0.0);
        assert_eq!(rt.volume().max_abs(), peak);
    }
}
