//! Aperture apodization windows — the `w(S)` weights of Eq. 1.

use usbf_geometry::{ElementIndex, TransducerArray};

/// A separable aperture window: the element weight is
/// `w(ξx)·w(ξy)` with `ξ ∈ [−1, 1]` the normalized position along each
/// aperture axis. Rect is the unweighted sum; Hann/Hamming trade main-lobe
/// width for sidelobe suppression; Tukey interpolates between Rect and
/// Hann with a taper fraction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Apodization {
    /// Uniform weights (no apodization).
    Rect,
    /// Hann window: `0.5·(1 + cos(πξ))`.
    #[default]
    Hann,
    /// Hamming window: `0.54 + 0.46·cos(πξ)`.
    Hamming,
    /// Tukey (tapered-cosine) window with taper fraction in `[0, 1]`
    /// (0 → Rect, 1 → Hann).
    Tukey(f64),
}

impl Apodization {
    fn axis_weight(self, xi: f64) -> f64 {
        let xi = xi.clamp(-1.0, 1.0).abs();
        match self {
            Apodization::Rect => 1.0,
            Apodization::Hann => 0.5 * (1.0 + (std::f64::consts::PI * xi).cos()),
            Apodization::Hamming => 0.54 + 0.46 * (std::f64::consts::PI * xi).cos(),
            Apodization::Tukey(taper) => {
                let taper = taper.clamp(0.0, 1.0);
                if taper == 0.0 || xi < 1.0 - taper {
                    1.0
                } else {
                    0.5 * (1.0 + ((std::f64::consts::PI / taper) * (xi - 1.0 + taper)).cos())
                }
            }
        }
    }

    /// Weight of element `e` on array `array`, in `[0, 1]`.
    pub fn weight(self, array: &TransducerArray, e: ElementIndex) -> f64 {
        let half_x = array.x_of(array.nx() - 1).abs().max(f64::MIN_POSITIVE);
        let half_y = array.y_of(array.ny() - 1).abs().max(f64::MIN_POSITIVE);
        let xi_x = array.x_of(e.ix) / half_x;
        let xi_y = array.y_of(e.iy) / half_y;
        self.axis_weight(xi_x) * self.axis_weight(xi_y)
    }

    /// Precomputes the weights of every element in linear order.
    pub fn weights(self, array: &TransducerArray) -> Vec<f64> {
        array.iter().map(|e| self.weight(array, e)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> TransducerArray {
        TransducerArray::new(9, 9, 0.2e-3)
    }

    #[test]
    fn rect_is_uniform() {
        let a = array();
        for e in a.iter() {
            assert_eq!(Apodization::Rect.weight(&a, e), 1.0);
        }
    }

    #[test]
    fn hann_peaks_at_center_vanishes_at_edges() {
        let a = array();
        let center = Apodization::Hann.weight(&a, a.center_element());
        assert!((center - 1.0).abs() < 1e-12);
        let corner = Apodization::Hann.weight(&a, ElementIndex::new(0, 0));
        assert!(corner.abs() < 1e-12);
    }

    #[test]
    fn hamming_keeps_edge_pedestal() {
        let a = array();
        let corner = Apodization::Hamming.weight(&a, ElementIndex::new(0, 0));
        // Hamming edge value is 0.08 per axis → 0.0064 at the corner.
        assert!((corner - 0.08 * 0.08).abs() < 1e-12);
    }

    #[test]
    fn tukey_limits() {
        let a = array();
        for e in a.iter() {
            let rect = Apodization::Rect.weight(&a, e);
            let t0 = Apodization::Tukey(0.0).weight(&a, e);
            assert!((t0 - rect).abs() < 1e-12);
            let hann = Apodization::Hann.weight(&a, e);
            let t1 = Apodization::Tukey(1.0).weight(&a, e);
            assert!((t1 - hann).abs() < 1e-12, "e={e}: {t1} vs {hann}");
        }
    }

    #[test]
    fn weights_are_symmetric() {
        let a = array();
        for apod in [
            Apodization::Hann,
            Apodization::Hamming,
            Apodization::Tukey(0.5),
        ] {
            for e in a.iter() {
                let m = ElementIndex::new(a.nx() - 1 - e.ix, a.ny() - 1 - e.iy);
                assert!(
                    (apod.weight(&a, e) - apod.weight(&a, m)).abs() < 1e-12,
                    "{apod:?} at {e}"
                );
            }
        }
    }

    #[test]
    fn weights_vector_matches_per_element() {
        let a = array();
        let w = Apodization::Hann.weights(&a);
        for (i, e) in a.iter().enumerate() {
            assert_eq!(w[i], Apodization::Hann.weight(&a, e));
        }
    }

    #[test]
    fn all_weights_in_unit_interval() {
        let a = TransducerArray::new(16, 12, 0.2e-3);
        for apod in [
            Apodization::Rect,
            Apodization::Hann,
            Apodization::Hamming,
            Apodization::Tukey(0.3),
        ] {
            for w in apod.weights(&a) {
                assert!((0.0..=1.0).contains(&w), "{apod:?}: w = {w}");
            }
        }
    }
}
