//! Aperture apodization windows — the `w(S)` weights of Eq. 1.

use usbf_geometry::{ElementIndex, TransducerArray};

/// A separable aperture window: the element weight is
/// `w(ξx)·w(ξy)` with `ξ ∈ [−1, 1]` the normalized position along each
/// aperture axis. Rect is the unweighted sum; Hann/Hamming trade main-lobe
/// width for sidelobe suppression; Tukey interpolates between Rect and
/// Hann with a taper fraction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Apodization {
    /// Uniform weights (no apodization).
    Rect,
    /// Hann window: `0.5·(1 + cos(πξ))`.
    #[default]
    Hann,
    /// Hamming window: `0.54 + 0.46·cos(πξ)`.
    Hamming,
    /// Tukey (tapered-cosine) window with taper fraction in `[0, 1]`
    /// (0 → Rect, 1 → Hann).
    Tukey(f64),
}

impl Apodization {
    fn axis_weight(self, xi: f64) -> f64 {
        let xi = xi.clamp(-1.0, 1.0).abs();
        match self {
            Apodization::Rect => 1.0,
            Apodization::Hann => 0.5 * (1.0 + (std::f64::consts::PI * xi).cos()),
            Apodization::Hamming => 0.54 + 0.46 * (std::f64::consts::PI * xi).cos(),
            Apodization::Tukey(taper) => {
                let taper = taper.clamp(0.0, 1.0);
                if taper == 0.0 || xi < 1.0 - taper {
                    1.0
                } else {
                    0.5 * (1.0 + ((std::f64::consts::PI / taper) * (xi - 1.0 + taper)).cos())
                }
            }
        }
    }

    /// Weight of element `e` on array `array`, in `[0, 1]`.
    pub fn weight(self, array: &TransducerArray, e: ElementIndex) -> f64 {
        let half_x = array.x_of(array.nx() - 1).abs().max(f64::MIN_POSITIVE);
        let half_y = array.y_of(array.ny() - 1).abs().max(f64::MIN_POSITIVE);
        let xi_x = array.x_of(e.ix) / half_x;
        let xi_y = array.y_of(e.iy) / half_y;
        self.axis_weight(xi_x) * self.axis_weight(xi_y)
    }

    /// Precomputes the weights of every element in linear order.
    pub fn weights(self, array: &TransducerArray) -> Vec<f64> {
        array.iter().map(|e| self.weight(array, e)).collect()
    }
}

/// The compacted aperture: every element whose apodization weight is
/// nonzero, as parallel `(flat channel index, weight)` lists in linear
/// element order.
///
/// Windows that vanish at the aperture edge (Hann, wide Tukey tapers)
/// zero entire border rows and columns; the scalar Eq. 1 loop re-tested
/// `w == 0.0` for **every element of every voxel**. Compacting once per
/// beamformer lifetime removes both that branch and the zero-weight
/// elements themselves from the inner kernel — the kernel iterates the
/// active lists directly, with no `j % nx` / `j / nx` recovery of the
/// element coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveAperture {
    channels: Vec<u32>,
    weights: Vec<f64>,
    n_elements: usize,
}

impl ActiveAperture {
    /// Compacts `apodization` over `array`, keeping elements with
    /// `weight != 0.0` in linear element order.
    #[must_use]
    pub fn build(apodization: Apodization, array: &TransducerArray) -> Self {
        let mut channels = Vec::new();
        let mut weights = Vec::new();
        for (j, w) in apodization.weights(array).into_iter().enumerate() {
            if w != 0.0 {
                channels.push(j as u32);
                weights.push(w);
            }
        }
        ActiveAperture {
            channels,
            weights,
            n_elements: array.count(),
        }
    }

    /// Flat channel indices of the active elements, ascending.
    #[inline]
    pub fn channels(&self) -> &[u32] {
        &self.channels
    }

    /// Weights of the active elements, parallel to
    /// [`channels`](Self::channels).
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of active elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Whether no element carries weight (degenerate windows only).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Whether every element of the array is active — when true, a slab
    /// row needs no compaction before quantization.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.channels.len() == self.n_elements
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> TransducerArray {
        TransducerArray::new(9, 9, 0.2e-3)
    }

    #[test]
    fn rect_is_uniform() {
        let a = array();
        for e in a.iter() {
            assert_eq!(Apodization::Rect.weight(&a, e), 1.0);
        }
    }

    #[test]
    fn hann_peaks_at_center_vanishes_at_edges() {
        let a = array();
        let center = Apodization::Hann.weight(&a, a.center_element());
        assert!((center - 1.0).abs() < 1e-12);
        let corner = Apodization::Hann.weight(&a, ElementIndex::new(0, 0));
        assert!(corner.abs() < 1e-12);
    }

    #[test]
    fn hamming_keeps_edge_pedestal() {
        let a = array();
        let corner = Apodization::Hamming.weight(&a, ElementIndex::new(0, 0));
        // Hamming edge value is 0.08 per axis → 0.0064 at the corner.
        assert!((corner - 0.08 * 0.08).abs() < 1e-12);
    }

    #[test]
    fn tukey_limits() {
        let a = array();
        for e in a.iter() {
            let rect = Apodization::Rect.weight(&a, e);
            let t0 = Apodization::Tukey(0.0).weight(&a, e);
            assert!((t0 - rect).abs() < 1e-12);
            let hann = Apodization::Hann.weight(&a, e);
            let t1 = Apodization::Tukey(1.0).weight(&a, e);
            assert!((t1 - hann).abs() < 1e-12, "e={e}: {t1} vs {hann}");
        }
    }

    #[test]
    fn weights_are_symmetric() {
        let a = array();
        for apod in [
            Apodization::Hann,
            Apodization::Hamming,
            Apodization::Tukey(0.5),
        ] {
            for e in a.iter() {
                let m = ElementIndex::new(a.nx() - 1 - e.ix, a.ny() - 1 - e.iy);
                assert!(
                    (apod.weight(&a, e) - apod.weight(&a, m)).abs() < 1e-12,
                    "{apod:?} at {e}"
                );
            }
        }
    }

    #[test]
    fn weights_vector_matches_per_element() {
        let a = array();
        let w = Apodization::Hann.weights(&a);
        for (i, e) in a.iter().enumerate() {
            assert_eq!(w[i], Apodization::Hann.weight(&a, e));
        }
    }

    #[test]
    fn active_aperture_drops_exactly_the_zero_weights() {
        let a = array();
        for apod in [
            Apodization::Rect,
            Apodization::Hann,
            Apodization::Hamming,
            Apodization::Tukey(0.5),
        ] {
            let full = apod.weights(&a);
            let active = ActiveAperture::build(apod, &a);
            assert_eq!(active.len(), full.iter().filter(|&&w| w != 0.0).count());
            for (&c, &w) in active.channels().iter().zip(active.weights()) {
                assert_eq!(w, full[c as usize], "{apod:?} channel {c}");
                assert_ne!(w, 0.0);
            }
            // Channels ascend, so the compacted order is the linear order.
            assert!(active.channels().windows(2).all(|p| p[0] < p[1]));
            assert_eq!(active.is_full(), active.len() == a.count());
        }
        // Hann vanishes on the border of the 9×9 array: 32 border
        // elements of 81 drop out.
        let hann = ActiveAperture::build(Apodization::Hann, &a);
        assert_eq!(hann.len(), 49);
        assert!(!hann.is_full() && !hann.is_empty());
        assert!(ActiveAperture::build(Apodization::Rect, &a).is_full());
    }

    #[test]
    fn all_weights_in_unit_interval() {
        let a = TransducerArray::new(16, 12, 0.2e-3);
        for apod in [
            Apodization::Rect,
            Apodization::Hann,
            Apodization::Hamming,
            Apodization::Tukey(0.3),
        ] {
            for w in apod.weights(&a) {
                assert!((0.0..=1.0).contains(&w), "{apod:?}: w = {w}");
            }
        }
    }
}
