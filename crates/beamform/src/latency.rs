//! Fixed-bucket frame-latency histograms for the runtime's tail-latency
//! telemetry.
//!
//! A fleet-scale runtime is judged by its p99, not its mean: one slow
//! shard's frames hiding inside an average is exactly the failure mode
//! the elastic `ShardedRuntime` exists to prevent. Each
//! [`FramePipeline`](crate::FramePipeline) records the submit→complete
//! latency of every redeemed frame into a [`LatencyHistogram`] folded
//! into its [`PipelineStats`](crate::PipelineStats), and the sharded
//! runtime's callers merge per-shard histograms for fleet-wide views.
//!
//! The histogram is built for the warm path: a plain `[u64; BUCKETS]`
//! inline array (no heap), `record` is a handful of integer ops
//! (leading-zeros bucket mapping, one increment), and `merge` is a
//! element-wise add — so it satisfies the repo's zero-allocation
//! warm-frame rule (`tests/warm_frame_allocs.rs`) by construction.
//!
//! Buckets are log-spaced with 4 sub-buckets per octave (~19% relative
//! width), covering 1 µs .. ~18 min. Quantiles are therefore estimates
//! with bounded relative error: [`quantile`](LatencyHistogram::quantile)
//! returns the **upper edge** of the bucket holding the requested rank,
//! so a reported p99 never understates the true p99 by more than one
//! bucket width.

use std::time::Duration;

/// Nanoseconds covered by the first bucket (everything below 2^10 ns ≈
/// 1 µs lands in bucket 0 — well under a frame at any realistic spec).
const FLOOR_BITS: u32 = 10;

/// Sub-bucket resolution: 2^2 = 4 sub-buckets per power of two.
const SUB_BITS: u32 = 2;
const SUBS: usize = 1 << SUB_BITS;

/// Octaves covered above the floor. 30 octaves above 1 µs reach
/// 2^40 ns ≈ 18 minutes; anything slower saturates into the top bucket.
const OCTAVES: usize = 30;

/// Total bucket count: the sub-µs floor bucket, the log-spaced body,
/// and one saturation bucket at the top.
const BUCKETS: usize = 1 + OCTAVES * SUBS + 1;

/// A fixed-bucket, heap-free latency histogram with log-spaced buckets
/// (4 per octave) spanning 1 µs to ~18 minutes, plus a saturation
/// bucket. `Copy`, mergeable, and cheap enough to live inside
/// [`PipelineStats`](crate::PipelineStats).
///
/// ```
/// use std::time::Duration;
/// use usbf_beamform::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for ms in [1u64, 2, 2, 3, 40] {
///     h.record(Duration::from_millis(ms));
/// }
/// assert_eq!(h.count(), 5);
/// // Quantiles report the upper edge of the holding bucket: the p50
/// // sample (2 ms) rounds up by at most one sub-bucket (~19%).
/// let p50 = h.p50();
/// assert!(p50 >= Duration::from_millis(2) && p50 < Duration::from_millis(3));
/// assert!(h.p99() >= Duration::from_millis(40));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
}

impl LatencyHistogram {
    /// An empty histogram. (Also available via `Default`.)
    pub fn new() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            total: 0,
        }
    }

    /// Maps a duration to its bucket index. Zero-alloc, branch-light:
    /// floor compare, leading-zeros, shift.
    fn bucket_of(d: Duration) -> usize {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        if ns < (1 << FLOOR_BITS) {
            return 0;
        }
        // Position of the highest set bit, ≥ FLOOR_BITS here.
        let msb = 63 - ns.leading_zeros();
        let octave = (msb - FLOOR_BITS) as usize;
        if octave >= OCTAVES {
            return BUCKETS - 1;
        }
        // The SUB_BITS bits just below the msb select the sub-bucket.
        let sub = ((ns >> (msb - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
        1 + octave * SUBS + sub
    }

    /// The inclusive upper edge of a bucket, in nanoseconds. The top
    /// (saturation) bucket reports the largest representable duration
    /// of the scale.
    fn bucket_upper_ns(bucket: usize) -> u64 {
        if bucket == 0 {
            return (1 << FLOOR_BITS) - 1;
        }
        if bucket >= BUCKETS - 1 {
            return u64::MAX;
        }
        let octave = ((bucket - 1) / SUBS) as u32;
        let sub = ((bucket - 1) % SUBS) as u64;
        let base = FLOOR_BITS + octave;
        // Upper edge of sub-bucket `sub`: next sub-bucket's start − 1.
        (1u64 << base) + ((sub + 1) << (base - SUB_BITS)) - 1
    }

    /// Records one observation. Warm-path safe: no allocation, no
    /// branching beyond the bucket mapping.
    pub fn record(&mut self, latency: Duration) {
        self.counts[Self::bucket_of(latency)] += 1;
        self.total += 1;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Folds another histogram into this one (element-wise add); the
    /// scales are identical by construction, so merging per-shard
    /// histograms yields the exact fleet-wide histogram.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.total += other.total;
    }

    /// The latency at quantile `q` (clamped to `0.0..=1.0`): the upper
    /// edge of the bucket containing the sample of rank `ceil(q·count)`.
    /// Returns `Duration::ZERO` for an empty histogram. The estimate
    /// never undershoots the true quantile's bucket and overshoots by
    /// less than one sub-bucket width (~19% relative).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Duration::from_nanos(Self::bucket_upper_ns(bucket));
            }
        }
        Duration::from_nanos(u64::MAX)
    }

    /// The half-open `(lower, upper]` nanosecond range of the bucket the
    /// quantile-`q` sample falls in — the true sample latency lies
    /// within it. Exposed for tests and for callers that want honest
    /// error bars instead of a point estimate.
    pub fn quantile_bounds(&self, q: f64) -> (Duration, Duration) {
        let upper = self.quantile(q);
        if self.total == 0 {
            return (Duration::ZERO, Duration::ZERO);
        }
        let bucket = Self::bucket_of(upper);
        let lower = if bucket == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(Self::bucket_upper_ns(bucket - 1))
        };
        (lower, upper)
    }

    /// Median frame latency (upper bucket edge; see
    /// [`quantile`](Self::quantile)).
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 99th-percentile frame latency (upper bucket edge; see
    /// [`quantile`](Self::quantile)).
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// True when any observation saturated the top bucket (latency
    /// beyond the histogram's ~18-minute scale) — quantiles at or above
    /// that rank are then lower bounds only.
    pub fn saturated(&self) -> bool {
        self.counts[BUCKETS - 1] > 0
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_monotone_and_aligned() {
        // Every bucket's upper edge must map back into that bucket, and
        // edges must be strictly increasing.
        let mut prev = 0u64;
        for b in 0..BUCKETS - 1 {
            let upper = LatencyHistogram::bucket_upper_ns(b);
            assert!(upper > prev || b == 0, "bucket {b} edge not increasing");
            assert_eq!(
                LatencyHistogram::bucket_of(Duration::from_nanos(upper)),
                b,
                "upper edge of bucket {b} maps elsewhere"
            );
            assert_eq!(
                LatencyHistogram::bucket_of(Duration::from_nanos(upper + 1)),
                b + 1,
                "one past bucket {b}'s edge must land in bucket {}",
                b + 1
            );
            prev = upper;
        }
    }
}
