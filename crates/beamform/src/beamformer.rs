//! The delay-and-sum kernel (Eq. 1) over any delay engine.
//!
//! The volume path mirrors the paper's architecture: delays are consumed
//! as per-nappe slabs ([`DelayEngine::fill_nappe`]) rather than per-voxel
//! queries, and the steering fan is split into [`NappeSchedule`] tiles
//! beamformed in parallel — each worker owns one tile's slab and walks
//! the nappes in depth order, exactly like a Fig. 4 block bound to its
//! correction registers. The output volume is bit-identical to the scalar
//! per-voxel path, which is kept as the reference implementation (and as
//! the executed path for scanline-by-scanline traversal).

use crate::postproc::{PostChain, PostScratch};
use crate::{ActiveAperture, Apodization, BeamformedVolume};
use usbf_core::{DelayEngine, NappeDelays, NappeSchedule, Tile};
use usbf_geometry::scan::ScanOrder;
use usbf_geometry::{ElementIndex, SystemSpec, VoxelIndex};
use usbf_sim::RfFrame;

/// The schedule the parallel volume paths run on: fitted to the pool
/// that will execute it (~4 tiles per worker for claim balancing) —
/// the same sizing rule as [`NappeSchedule::for_host`].
pub(crate) fn pool_fitted_schedule(
    spec: &SystemSpec,
    pool: &usbf_par::ThreadPool,
) -> NappeSchedule {
    NappeSchedule::fitted(spec, pool.threads().max(1) * 4)
}

/// Scatters one tile's beamformed values (in
/// `[scanline-within-tile][depth]` order) into the output volume — the
/// single copy of the tile→volume layout mapping, shared by the cold
/// tiled path, [`VolumeLoop`](crate::VolumeLoop) and
/// [`FramePipeline`](crate::FramePipeline) so all three stay
/// bit-identical by construction.
pub(crate) fn scatter_tile(out: &mut BeamformedVolume, tile: Tile, values: &[f64], n_depth: usize) {
    for (slot, it, ip) in tile.iter_scanlines() {
        let column = &values[slot * n_depth..(slot + 1) * n_depth];
        for (id, &v) in column.iter().enumerate() {
            out.set(VoxelIndex::new(it, ip, id), v);
        }
    }
}

/// Warm per-tile state: one task's delay slab, output staging buffer and
/// the three row-length scratch buffers of the vectorized inner kernel
/// (compacted delay row → quantized index row → gathered sample row),
/// allocated once at construction and refilled every frame. One
/// definition shared by [`VolumeLoop`](crate::VolumeLoop) and
/// [`FramePipeline`](crate::FramePipeline) (and through the latter,
/// [`ShardedRuntime`](crate::ShardedRuntime)), so the warm-state shape
/// (and with it the bit-identical-to-serial invariant) cannot drift
/// between the runtimes.
pub struct TileState {
    pub(crate) slab: NappeDelays,
    pub(crate) values: Vec<f64>,
    /// Active elements' delays of one scanline row, compacted out of the
    /// slab row (bypassed when the aperture is full — the slab row is
    /// already the active row).
    pub(crate) delays: Vec<f64>,
    /// The quantized echo-buffer index row, filled by one
    /// [`DelayEngine::quantize_row`] call per (nappe, scanline).
    pub(crate) indices: Vec<i32>,
    /// The gathered sample row the weighted accumulate consumes.
    pub(crate) samples: Vec<f64>,
    /// Low-resolution-image staging for compound sequences: one
    /// transmit's tile volume, re-beamformed per angle and accumulated
    /// into `values`. Empty for the classic single point-source emission
    /// (which beamforms straight into `values`).
    pub(crate) lri: Vec<f64>,
    /// One combined per-transmit delay row of the factored compound
    /// kernel: [`DelayEngine::combine_tx_row`] writes the transmit term
    /// folded onto the receive-leg slab row here, per (voxel, transmit).
    /// Sized to the full element row; empty for the single point-source
    /// emission (which never runs the factored loop).
    pub(crate) tx_row: Vec<f64>,
    /// Compound mask weights, `[transmit][scanline-within-tile][depth]`
    /// (same inner layout as `values`): the per-voxel insonification
    /// weight of each transmit, precomputed at construction so the warm
    /// accumulate is a pure multiply-add with an explicit zero skip.
    /// Empty for the single point-source emission.
    pub(crate) tx_weights: Vec<f64>,
    /// I/Q scratch for the fused post-processing chain (empty when the
    /// beamformer carries no chain).
    pub(crate) post_scratch: PostScratch,
}

impl TileState {
    /// Allocates the warm state for one schedule tile of `beamformer`'s
    /// spec: the delay slab, the `[scanline][depth]` staging buffer and
    /// the kernel's three scratch rows, sized to the compacted aperture.
    #[must_use]
    pub fn new(beamformer: &Beamformer, tile: Tile) -> Self {
        let spec = beamformer.spec();
        let active = beamformer.aperture().len();
        let n_depth = spec.volume_grid.n_depth();
        let n_values = tile.scanlines() * n_depth;
        let (lri, tx_weights) = if spec.is_single_point_source() {
            (Vec::new(), Vec::new())
        } else {
            // Compound sequence: stage each angle's low-resolution image
            // and precompute every transmit's per-voxel mask weight in
            // the `values` layout, so the warm accumulate never calls
            // back into geometry.
            let mut weights = vec![0.0; spec.n_transmits() * n_values];
            for tx in 0..spec.n_transmits() {
                let block = &mut weights[tx * n_values..(tx + 1) * n_values];
                for (slot, it, ip) in tile.iter_scanlines() {
                    for id in 0..n_depth {
                        let s = spec.volume_grid.position(VoxelIndex::new(it, ip, id));
                        block[slot * n_depth + id] = spec.transmit_weight(tx, s);
                    }
                }
            }
            (vec![0.0; n_values], weights)
        };
        TileState {
            slab: NappeDelays::for_tile(spec, tile),
            values: vec![0.0; n_values],
            delays: vec![0.0; active],
            indices: vec![0; active],
            samples: vec![0.0; active],
            tx_row: if spec.is_single_point_source() {
                Vec::new()
            } else {
                vec![0.0; spec.elements.count()]
            },
            lri,
            tx_weights,
            post_scratch: if beamformer.postproc().is_empty() {
                PostScratch::default()
            } else {
                PostScratch::new(n_depth)
            },
        }
    }

    /// The tile this state beamforms.
    #[inline]
    pub fn tile(&self) -> Tile {
        self.slab.tile()
    }

    /// The staged output values in `[scanline-within-tile][depth]` order
    /// (the layout the volume scatter consumes).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Builds the warm state for every tile of a schedule: the only place
/// the slab/values/scratch sizing lives.
pub(crate) fn warm_tile_states(beamformer: &Beamformer, tiles: &[Tile]) -> Vec<TileState> {
    tiles
        .iter()
        .map(|&tile| TileState::new(beamformer, tile))
        .collect()
}

/// Scatters every tile's staged values into the output volume, in tile
/// order — the deterministic sequential merge both runtimes end a frame
/// with.
pub(crate) fn scatter_tiles(
    out: &mut BeamformedVolume,
    tiles: &[Tile],
    states: &[TileState],
    n_depth: usize,
) {
    for (tile, state) in tiles.iter().zip(states) {
        scatter_tile(out, *tile, &state.values, n_depth);
    }
}

/// Compacts one slab row down to the active aperture: `out[k] =
/// row[channels[k]]`. Skipped entirely when the aperture is full.
#[inline]
fn compact_row(row: &[f64], channels: &[u32], out: &mut [f64]) {
    for (o, &c) in out.iter_mut().zip(channels) {
        *o = row[c as usize];
    }
}

/// The Eq. 1 accumulate: `Σ_k w[k] · s[k]` over the compacted aperture,
/// dispatched on the beamformer's [`Reduction`] mode. Every path of a
/// beamformer (scalar walk and tile kernels alike) routes through this
/// with the same mode, so batched-vs-scalar bit-identity holds **within**
/// each mode.
#[inline]
fn weighted_sum(weights: &[f64], samples: &[f64], reduction: Reduction) -> f64 {
    match reduction {
        Reduction::Sequential => weighted_sum_sequential(weights, samples),
        Reduction::Wide4 => weighted_sum_wide4(weights, samples),
    }
}

/// Sequential MAC, unrolled in chunks of 8 multiply-accumulates. A
/// **single** running accumulator keeps the floating-point addition order
/// identical to a plain per-element walk (the historical bit pattern
/// every existing output reproduces; multi-lane reductions would
/// reassociate the sum), so the chunking only removes loop-control
/// overhead.
#[inline]
fn weighted_sum_sequential(weights: &[f64], samples: &[f64]) -> f64 {
    debug_assert_eq!(weights.len(), samples.len());
    let mut acc = 0.0;
    let mut wc = weights.chunks_exact(8);
    let mut sc = samples.chunks_exact(8);
    for (w, s) in (&mut wc).zip(&mut sc) {
        acc += w[0] * s[0];
        acc += w[1] * s[1];
        acc += w[2] * s[2];
        acc += w[3] * s[3];
        acc += w[4] * s[4];
        acc += w[5] * s[5];
        acc += w[6] * s[6];
        acc += w[7] * s[7];
    }
    for (&w, &s) in wc.remainder().iter().zip(sc.remainder()) {
        acc += w * s;
    }
    acc
}

/// Four-lane MAC: four independent accumulators striped over chunks of 8,
/// merged pairwise `(a0+a1)+(a2+a3)`, remainder folded sequentially. The
/// lanes break the loop-carried addition dependency (≈4 FMAs in flight
/// instead of 1), which is the ROADMAP "wider MAC lanes" win — at the
/// price of a **reassociated** sum relative to [`Reduction::Sequential`].
/// The association is itself fixed and deterministic, so outputs are
/// reproducible and the batched/scalar bit-identity proptests hold within
/// the mode; only cross-mode equality is (deliberately) surrendered.
#[inline]
fn weighted_sum_wide4(weights: &[f64], samples: &[f64]) -> f64 {
    debug_assert_eq!(weights.len(), samples.len());
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut wc = weights.chunks_exact(8);
    let mut sc = samples.chunks_exact(8);
    for (w, s) in (&mut wc).zip(&mut sc) {
        a0 += w[0] * s[0];
        a1 += w[1] * s[1];
        a2 += w[2] * s[2];
        a3 += w[3] * s[3];
        a0 += w[4] * s[4];
        a1 += w[5] * s[5];
        a2 += w[6] * s[6];
        a3 += w[7] * s[7];
    }
    let mut acc = (a0 + a1) + (a2 + a3);
    for (&w, &s) in wc.remainder().iter().zip(sc.remainder()) {
        acc += w * s;
    }
    acc
}

/// How echo samples are fetched at the computed delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Interpolation {
    /// Nearest-sample fetch via the engine's integer index — the paper's
    /// datapath (delays "are used as an index into an echo buffer").
    #[default]
    Nearest,
    /// Linear interpolation at the fractional delay (extension; quantifies
    /// how much of the error budget comes from index rounding).
    Linear,
}

/// How the Eq. 1 aperture sum is reduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Reduction {
    /// One running accumulator in element order — the historical bit
    /// pattern, bit-identical to a plain per-element walk.
    #[default]
    Sequential,
    /// Four independent accumulator lanes merged `(a0+a1)+(a2+a3)` —
    /// breaks the loop-carried FP dependency for throughput. The sum is
    /// reassociated relative to [`Sequential`](Reduction::Sequential)
    /// (deterministically — all paths of a beamformer share the mode, so
    /// batched/scalar bit-identity still holds within it).
    Wide4,
}

/// A delay-and-sum beamformer bound to a system spec.
///
/// The engine is passed per call, so one beamformer can compare multiple
/// delay architectures on identical data.
#[derive(Debug, Clone)]
pub struct Beamformer {
    spec: SystemSpec,
    apodization: Apodization,
    interpolation: Interpolation,
    reduction: Reduction,
    order: ScanOrder,
    /// The compacted `(channel, weight)` aperture — Eq. 1's `w`, built
    /// once per beamformer lifetime and shared by every path (scalar
    /// voxel walk and vectorized tile kernel alike, so both see the
    /// identical weights in the identical order).
    aperture: ActiveAperture,
    /// Post-processing chain applied to every scanline column the volume
    /// paths produce (empty by default: raw delay-and-sum output).
    post: PostChain,
}

impl Beamformer {
    /// Creates a beamformer with Hann apodization, nearest-index fetch and
    /// nappe-by-nappe traversal (the paper's preferred order).
    #[must_use]
    pub fn new(spec: &SystemSpec) -> Self {
        Beamformer {
            spec: spec.clone(),
            apodization: Apodization::default(),
            interpolation: Interpolation::default(),
            reduction: Reduction::default(),
            order: ScanOrder::NappeByNappe,
            aperture: ActiveAperture::build(Apodization::default(), &spec.elements),
            post: PostChain::empty(),
        }
    }

    /// Sets the apodization window (and rebuilds the compacted aperture
    /// when the window actually changes).
    #[must_use = "with_apodization returns the configured beamformer; dropping it discards the window"]
    pub fn with_apodization(mut self, apodization: Apodization) -> Self {
        if apodization != self.apodization {
            self.apodization = apodization;
            self.aperture = ActiveAperture::build(apodization, &self.spec.elements);
        }
        self
    }

    /// Sets the sample-fetch interpolation.
    #[must_use = "with_interpolation returns the configured beamformer; dropping it discards the mode"]
    pub fn with_interpolation(mut self, interpolation: Interpolation) -> Self {
        self.interpolation = interpolation;
        self
    }

    /// Sets the aperture-sum reduction mode. [`Reduction::Wide4`] trades
    /// the historical sequential-sum bit pattern for ~4 FP adds in
    /// flight; every path of this beamformer (scalar walk, tile kernels,
    /// fused and factored compound loops) switches together, so the
    /// batched-vs-scalar bit-identity invariant is preserved within the
    /// chosen mode.
    #[must_use = "with_reduction returns the configured beamformer; dropping it discards the mode"]
    pub fn with_reduction(mut self, reduction: Reduction) -> Self {
        self.reduction = reduction;
        self
    }

    /// The configured aperture-sum reduction mode.
    #[inline]
    pub fn reduction(&self) -> Reduction {
        self.reduction
    }

    /// Sets the traversal order (Algorithm 1 flavour).
    #[must_use = "with_order returns the configured beamformer; dropping it discards the order"]
    pub fn with_order(mut self, order: ScanOrder) -> Self {
        self.order = order;
        self
    }

    /// Sets the post-processing chain the volume paths apply to every
    /// scanline column they produce (e.g. [`PostChain::bmode`] for
    /// log-compressed envelope output). The chain runs fused per tile in
    /// the batched paths — each tile's columns flow cache-hot from the
    /// delay-and-sum kernel into the stages, before the volume scatter —
    /// and as a whole-volume pass in the scalar reference path; the two
    /// are bit-identical because every stage is column-local.
    ///
    /// The per-voxel/per-scanline query paths
    /// ([`beamform_voxel`](Self::beamform_voxel),
    /// [`beamform_scanline`](Self::beamform_scanline)) stay raw: they
    /// answer point questions about the delay-and-sum output itself.
    #[must_use = "with_postproc returns the configured beamformer; dropping it discards the chain"]
    pub fn with_postproc(mut self, post: PostChain) -> Self {
        self.post = post;
        self
    }

    /// The configured post-processing chain (empty when the output is
    /// raw delay-and-sum).
    #[inline]
    pub fn postproc(&self) -> &PostChain {
        &self.post
    }

    /// The configured scan order.
    pub fn order(&self) -> ScanOrder {
        self.order
    }

    /// The system spec this beamformer is bound to.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// Apodization weights for every element, in linear element order —
    /// the `w` of Eq. 1 before compaction (zero-weight elements
    /// included).
    pub fn element_weights(&self) -> Vec<f64> {
        self.apodization.weights(&self.spec.elements)
    }

    /// The compacted aperture every beamforming path sums over: the
    /// `(flat channel, weight)` list of elements with nonzero weight,
    /// precomputed once per beamformer lifetime.
    #[inline]
    pub fn aperture(&self) -> &ActiveAperture {
        &self.aperture
    }

    /// Beamforms a single focal point: `Σ_D w·e(D, tp)` for the classic
    /// single-emission scan, and the coherent compound `Σ_tx m_tx(tp) ·
    /// Σ_D w·e_tx(D, tp)` for a multi-transmit sequence (`m_tx` is the
    /// transmit's insonification mask weight; masked-out angles are
    /// **skipped**, never multiplied — a masked angle must not be able
    /// to poison the sum with non-finite staging values).
    ///
    /// This is the scalar reference walk; it iterates the precomputed
    /// compacted aperture (same weights, same order as the tile kernel),
    /// so it no longer re-derives the apodization window per element per
    /// call.
    pub fn beamform_voxel(&self, engine: &dyn DelayEngine, rf: &RfFrame, vox: VoxelIndex) -> f64 {
        if self.spec.is_single_point_source() {
            return self.scalar_aperture_sum(&mut |e| match self.interpolation {
                Interpolation::Nearest => rf.sample(e, engine.delay_index(vox, e)),
                Interpolation::Linear => rf.sample_interp(e, engine.delay_samples(vox, e)),
            });
        }
        let s = self.spec.volume_grid.position(vox);
        let mut acc = 0.0;
        for tx in 0..self.spec.n_transmits() {
            let m = self.spec.transmit_weight(tx, s);
            if m != 0.0 {
                acc += m * self.beamform_voxel_for(engine, rf, tx, vox);
            }
        }
        acc
    }

    /// Beamforms a single focal point from one transmit event's
    /// acquisition: the low-resolution-image sample `Σ_D w·e_tx(D, tp)`
    /// before the compound mask weight is applied. Transmit 0 of a
    /// single-emission spec reproduces
    /// [`beamform_voxel`](Self::beamform_voxel).
    pub fn beamform_voxel_for(
        &self,
        engine: &dyn DelayEngine,
        rf: &RfFrame,
        tx: usize,
        vox: VoxelIndex,
    ) -> f64 {
        self.scalar_aperture_sum(&mut |e| match self.interpolation {
            Interpolation::Nearest => rf.sample_for(tx, e, engine.delay_index_for(tx, vox, e)),
            Interpolation::Linear => {
                rf.sample_interp_for(tx, e, engine.delay_samples_for(tx, vox, e))
            }
        })
    }

    /// The scalar reference walk's Eq. 1 sum over the compacted aperture,
    /// with `fetch` producing each element's delayed sample. Sequential
    /// mode keeps the allocation-free per-element accumulate; Wide4 mode
    /// materializes the fetched row and reuses the tile kernels' exact
    /// reduction routine, so the reference replicates the batched
    /// association bit-for-bit (a per-call `Vec` is acceptable here — the
    /// scalar walk is the reference oracle, not the warm path).
    fn scalar_aperture_sum(&self, fetch: &mut dyn FnMut(ElementIndex) -> f64) -> f64 {
        let nx = self.spec.elements.nx();
        let element = |chan: u32| ElementIndex::new(chan as usize % nx, chan as usize / nx);
        match self.reduction {
            Reduction::Sequential => {
                let mut acc = 0.0;
                for (&chan, &w) in self.aperture.channels().iter().zip(self.aperture.weights()) {
                    acc += w * fetch(element(chan));
                }
                acc
            }
            Reduction::Wide4 => {
                let samples: Vec<f64> = self
                    .aperture
                    .channels()
                    .iter()
                    .map(|&chan| fetch(element(chan)))
                    .collect();
                weighted_sum_wide4(self.aperture.weights(), &samples)
            }
        }
    }

    /// Beamforms the whole volume.
    ///
    /// Nappe-by-nappe order (the default) runs the batched pipeline:
    /// parallel over [`NappeSchedule`] tiles on the persistent
    /// `usbf_par` pool, one delay slab per (tile, nappe) via
    /// [`DelayEngine::fill_nappe`]. Scanline-by-scanline order keeps the
    /// scalar per-voxel walk as the reference path. Both produce
    /// bit-identical volumes. For repeated frames, prefer
    /// [`VolumeLoop`](crate::VolumeLoop), which reuses this path's slabs
    /// and buffers across calls.
    ///
    /// ```
    /// use usbf_beamform::Beamformer;
    /// use usbf_core::ExactEngine;
    /// use usbf_geometry::SystemSpec;
    /// use usbf_sim::RfFrame;
    ///
    /// let spec = SystemSpec::tiny();
    /// let rf = RfFrame::zeros(
    ///     spec.elements.nx(),
    ///     spec.elements.ny(),
    ///     spec.echo_buffer_len(),
    /// );
    /// let vol = Beamformer::new(&spec).beamform_volume(&ExactEngine::new(&spec), &rf);
    /// assert_eq!(vol.len(), spec.volume_grid.voxel_count());
    /// ```
    pub fn beamform_volume(&self, engine: &dyn DelayEngine, rf: &RfFrame) -> BeamformedVolume {
        match self.order {
            ScanOrder::NappeByNappe => {
                let schedule = pool_fitted_schedule(&self.spec, usbf_par::global());
                self.beamform_volume_tiled(engine, rf, &schedule)
            }
            ScanOrder::ScanlineByScanline => {
                let mut out = BeamformedVolume::zeros(&self.spec);
                for vox in self.order.iter(&self.spec.volume_grid) {
                    out.set(vox, self.beamform_voxel(engine, rf, vox));
                }
                // The scalar reference applies the chain as a separate
                // whole-volume pass — the layout the fused per-tile
                // application must stay bit-identical to.
                self.post.apply_volume(&mut out);
                out
            }
        }
    }

    /// Beamforms the whole volume with an explicit tile schedule: each
    /// tile is an independent unit of work (run in parallel, one worker
    /// slab each), and within a tile delays stream one nappe slab at a
    /// time in depth order.
    pub fn beamform_volume_tiled(
        &self,
        engine: &dyn DelayEngine,
        rf: &RfFrame,
        schedule: &NappeSchedule,
    ) -> BeamformedVolume {
        let tiles = schedule.tiles();
        let per_tile: Vec<TileState> = usbf_par::par_map(&tiles, |_, &tile| {
            let mut state = TileState::new(self, tile);
            self.beamform_tile_into(engine, rf, &mut state);
            state
        });
        let n_depth = self.spec.volume_grid.n_depth();
        let mut out = BeamformedVolume::zeros(&self.spec);
        for (tile, state) in tiles.iter().zip(per_tile) {
            scatter_tile(&mut out, *tile, &state.values, n_depth);
        }
        out
    }

    /// Beamforms one tile into caller-owned warm state ([`TileState`]):
    /// the state's slab selects the fan region and its `values` buffer
    /// receives the result in `[scanline-within-tile][depth]` order. This
    /// is the allocation-free kernel [`VolumeLoop`](crate::VolumeLoop)
    /// and [`FramePipeline`](crate::FramePipeline) drive every frame.
    ///
    /// The kernel is split by interpolation mode into two monomorphized
    /// inner loops chosen **once per tile** (no per-element dispatch),
    /// each structured as row-batched stages: one
    /// [`DelayEngine::quantize_row`] (or direct fractional-delay) pass
    /// per (nappe, scanline) row, one [`RfFrame`] gather into the
    /// state's sample row, one chunked multiply-accumulate over the
    /// compacted aperture weights. Output is bit-identical to the scalar
    /// [`beamform_voxel`](Self::beamform_voxel) walk, and engines'
    /// rounding telemetry (TABLESTEER clamp counts) advances exactly as
    /// the per-element path would.
    ///
    /// # Panics
    ///
    /// Panics if `state` was built for a different spec or aperture
    /// shape, or (for a compound sequence) if the engine or RF frame
    /// does not carry every transmit of the spec's sequence.
    pub fn beamform_tile_into(
        &self,
        engine: &dyn DelayEngine,
        rf: &RfFrame,
        state: &mut TileState,
    ) {
        let tile = state.slab.tile();
        let n_depth = self.spec.volume_grid.n_depth();
        assert_eq!(
            state.values.len(),
            tile.scanlines() * n_depth,
            "values buffer must cover the tile"
        );
        assert_eq!(
            state.indices.len(),
            self.aperture.len(),
            "scratch rows must match the compacted aperture"
        );
        let TileState {
            slab,
            values,
            delays,
            indices,
            samples,
            tx_row,
            lri,
            tx_weights,
            post_scratch,
        } = state;
        if self.spec.is_single_point_source() {
            // The classic single-emission path: beamform straight into
            // the staging buffer, exactly as before compounding existed.
            match self.interpolation {
                Interpolation::Nearest => {
                    self.tile_kernel_nearest(engine, rf, 0, slab, values, delays, indices, samples)
                }
                Interpolation::Linear => {
                    self.tile_kernel_linear(engine, rf, 0, slab, values, delays, samples)
                }
            }
        } else {
            // Coherent compounding: beamform each transmit's
            // low-resolution image into the staging buffer and
            // mask-weight it into the accumulator. The zero-weight skip
            // is a correctness requirement, not an optimization: outside
            // a steered wave's footprint the LRI value is meaningless
            // (and may be non-finite under hostile inputs), so it must
            // never enter the arithmetic — `0.0 * NaN` is NaN.
            let n_tx = self.spec.n_transmits();
            assert_eq!(
                engine.transmit_count(),
                n_tx,
                "engine must cover the spec's transmit sequence"
            );
            assert_eq!(
                rf.n_transmits(),
                n_tx,
                "RF frame must hold every transmit acquisition"
            );
            values.fill(0.0);
            let n_values = values.len();
            if engine.supports_factored_fill() {
                // Factored compound loop: the transmit-invariant receive
                // leg is generated ONCE per (nappe, tile) via
                // `fill_nappe_rx_streamed`, and each transmit only adds
                // its per-voxel scalar term onto the cached row —
                // per-angle delay-generation cost drops from
                // O(N·elements) to O(elements + N) per voxel. Per-voxel
                // accumulation stays transmit-ascending, so the output is
                // bit-identical to the fused per-transmit loop below.
                match self.interpolation {
                    Interpolation::Nearest => self.tile_compound_factored_nearest(
                        engine, rf, n_tx, slab, values, tx_row, delays, indices, samples,
                        tx_weights,
                    ),
                    Interpolation::Linear => self.tile_compound_factored_linear(
                        engine, rf, n_tx, slab, values, tx_row, delays, samples, tx_weights,
                    ),
                }
            } else {
                for tx in 0..n_tx {
                    match self.interpolation {
                        Interpolation::Nearest => self.tile_kernel_nearest(
                            engine, rf, tx, slab, lri, delays, indices, samples,
                        ),
                        Interpolation::Linear => {
                            self.tile_kernel_linear(engine, rf, tx, slab, lri, delays, samples)
                        }
                    }
                    let mask = &tx_weights[tx * n_values..(tx + 1) * n_values];
                    for ((v, &l), &m) in values.iter_mut().zip(lri.iter()).zip(mask) {
                        if m != 0.0 {
                            *v += m * l;
                        }
                    }
                }
            }
        }
        if !self.post.is_empty() {
            // Fused post-processing: each scanline column runs through
            // the chain while it is still cache-hot from the kernel and
            // before the scatter, using the tile's preallocated I/Q
            // scratch (no heap traffic on the warm path). Columns are
            // independent, so per-tile application is bit-identical to
            // the whole-volume pass of the scalar reference.
            for column in values.chunks_exact_mut(n_depth) {
                self.post.apply_column(column, post_scratch);
            }
        }
    }

    /// The nearest-index kernel: slab row → (compact) → quantized index
    /// row → gathered sample row → weighted accumulate.
    ///
    /// Rows are consumed through
    /// [`DelayEngine::fill_nappe_streamed`], so for engines with a
    /// batched fill the gather/MAC of row *s* is software-pipelined
    /// against the generation of row *s + 1* (cache-hot rows, fill
    /// latency hidden behind the accumulate); engines on the default
    /// fill see the same row sequence after the slab completes. Row
    /// order and all per-row arithmetic are unchanged, so the output
    /// (and the engines' rounding telemetry) stays bit-identical to the
    /// fill-then-consume schedule.
    #[allow(clippy::too_many_arguments)]
    fn tile_kernel_nearest(
        &self,
        engine: &dyn DelayEngine,
        rf: &RfFrame,
        tx: usize,
        slab: &mut NappeDelays,
        out: &mut [f64],
        delays: &mut [f64],
        indices: &mut [i32],
        samples: &mut [f64],
    ) {
        let n_depth = self.spec.volume_grid.n_depth();
        let channels = self.aperture.channels();
        let weights = self.aperture.weights();
        let full = self.aperture.is_full();
        for id in 0..n_depth {
            engine.fill_nappe_streamed_for(tx, id, slab, &mut |slot, row| {
                let active_delays = if full {
                    row
                } else {
                    compact_row(row, channels, delays);
                    &*delays
                };
                // One virtual call quantizes the whole row — the
                // engine's own final rounding stage, so rounding
                // telemetry (e.g. TABLESTEER's clamp counter) sees this
                // path exactly as it sees per-element queries.
                engine.quantize_row(active_delays, indices);
                rf.gather_nearest_into_for(tx, channels, indices, samples);
                out[slot * n_depth + id] = weighted_sum(weights, samples, self.reduction);
            });
        }
    }

    /// The factored compound nearest-index kernel: one receive-leg slab
    /// fill per nappe ([`DelayEngine::fill_nappe_rx_streamed`]), then per
    /// voxel an inner transmit loop that combines the cached row with
    /// each transmit's per-voxel term ([`DelayEngine::combine_tx_row`])
    /// and runs the usual compact → quantize → gather → MAC stages.
    ///
    /// Masked transmits are where the factored kernel earns its keep on
    /// steered fans: a zero mask weight contributes nothing to the sum,
    /// so when the engine's rounding stage is side-effect-free
    /// ([`DelayEngine::rounding_telemetry`] is `false`) the whole
    /// per-transmit body is skipped — bit-identical output, and no
    /// telemetry exists to diverge. Engines **with** rounding telemetry
    /// (TABLESTEER's clamp counter) still combine and quantize every
    /// (voxel, transmit) pair, because the fused per-transmit kernel
    /// quantizes masked pairs too and the counters must advance
    /// identically on both paths; only the gather/MAC/accumulate is
    /// skipped on a zero mask weight there (same non-finite-poisoning
    /// guard as the fused accumulate).
    #[allow(clippy::too_many_arguments)]
    fn tile_compound_factored_nearest(
        &self,
        engine: &dyn DelayEngine,
        rf: &RfFrame,
        n_tx: usize,
        slab: &mut NappeDelays,
        values: &mut [f64],
        tx_row: &mut [f64],
        delays: &mut [f64],
        indices: &mut [i32],
        samples: &mut [f64],
        tx_weights: &[f64],
    ) {
        let tile = slab.tile();
        let n_depth = self.spec.volume_grid.n_depth();
        let n_values = values.len();
        let channels = self.aperture.channels();
        let weights = self.aperture.weights();
        let full = self.aperture.is_full();
        let skip_masked = !engine.rounding_telemetry();
        let reduction = self.reduction;
        for id in 0..n_depth {
            engine.fill_nappe_rx_streamed(id, slab, &mut |slot, rx_row| {
                let (it, ip) = tile.scanline_at(slot);
                let vox = VoxelIndex::new(it, ip, id);
                for tx in 0..n_tx {
                    let m = tx_weights[tx * n_values + slot * n_depth + id];
                    if skip_masked && m == 0.0 {
                        continue;
                    }
                    engine.combine_tx_row(tx, vox, rx_row, tx_row);
                    let active_delays = if full {
                        &*tx_row
                    } else {
                        compact_row(tx_row, channels, delays);
                        &*delays
                    };
                    engine.quantize_row(active_delays, indices);
                    if m != 0.0 {
                        rf.gather_nearest_into_for(tx, channels, indices, samples);
                        values[slot * n_depth + id] +=
                            m * weighted_sum(weights, samples, reduction);
                    }
                }
            });
        }
    }

    /// The factored compound linear-interpolation kernel: one receive-leg
    /// slab fill per nappe, per-voxel transmit combines feeding the
    /// fractional-delay gather directly (no quantization stage, so — like
    /// the fused linear kernel — no rounding telemetry advances and the
    /// whole per-transmit body can be skipped on a zero mask weight).
    #[allow(clippy::too_many_arguments)]
    fn tile_compound_factored_linear(
        &self,
        engine: &dyn DelayEngine,
        rf: &RfFrame,
        n_tx: usize,
        slab: &mut NappeDelays,
        values: &mut [f64],
        tx_row: &mut [f64],
        delays: &mut [f64],
        samples: &mut [f64],
        tx_weights: &[f64],
    ) {
        let tile = slab.tile();
        let n_depth = self.spec.volume_grid.n_depth();
        let n_values = values.len();
        let channels = self.aperture.channels();
        let weights = self.aperture.weights();
        let full = self.aperture.is_full();
        let reduction = self.reduction;
        for id in 0..n_depth {
            engine.fill_nappe_rx_streamed(id, slab, &mut |slot, rx_row| {
                let (it, ip) = tile.scanline_at(slot);
                let vox = VoxelIndex::new(it, ip, id);
                for tx in 0..n_tx {
                    let m = tx_weights[tx * n_values + slot * n_depth + id];
                    if m == 0.0 {
                        continue;
                    }
                    engine.combine_tx_row(tx, vox, rx_row, tx_row);
                    let active_delays = if full {
                        &*tx_row
                    } else {
                        compact_row(tx_row, channels, delays);
                        &*delays
                    };
                    rf.gather_linear_into_for(tx, channels, active_delays, samples);
                    values[slot * n_depth + id] += m * weighted_sum(weights, samples, reduction);
                }
            });
        }
    }

    /// The linear-interpolation kernel: slab row → (compact) → gathered
    /// interpolated sample row → weighted accumulate. No quantization
    /// stage — the fractional delays feed the gather directly. Rows are
    /// consumed streamed, like
    /// [`tile_kernel_nearest`](Self::tile_kernel_nearest).
    #[allow(clippy::too_many_arguments)]
    fn tile_kernel_linear(
        &self,
        engine: &dyn DelayEngine,
        rf: &RfFrame,
        tx: usize,
        slab: &mut NappeDelays,
        out: &mut [f64],
        delays: &mut [f64],
        samples: &mut [f64],
    ) {
        let n_depth = self.spec.volume_grid.n_depth();
        let channels = self.aperture.channels();
        let weights = self.aperture.weights();
        let full = self.aperture.is_full();
        for id in 0..n_depth {
            engine.fill_nappe_streamed_for(tx, id, slab, &mut |slot, row| {
                let active_delays = if full {
                    row
                } else {
                    compact_row(row, channels, delays);
                    &*delays
                };
                rf.gather_linear_into_for(tx, channels, active_delays, samples);
                out[slot * n_depth + id] = weighted_sum(weights, samples, self.reduction);
            });
        }
    }

    /// Beamforms one scanline (all depths along direction `(it, ip)`),
    /// returning the axial profile.
    pub fn beamform_scanline(
        &self,
        engine: &dyn DelayEngine,
        rf: &RfFrame,
        it: usize,
        ip: usize,
    ) -> Vec<f64> {
        usbf_geometry::scan::scanline(&self.spec.volume_grid, it, ip)
            .map(|vox| self.beamform_voxel(engine, rf, vox))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usbf_core::{ExactEngine, TableSteerConfig, TableSteerEngine};
    use usbf_geometry::Vec3;
    use usbf_sim::{EchoSynthesizer, Phantom, Pulse};

    fn setup(target: Vec3) -> (SystemSpec, RfFrame) {
        let spec = SystemSpec::tiny();
        let rf = EchoSynthesizer::new(&spec)
            .synthesize(&Phantom::point(target), &Pulse::from_spec(&spec));
        (spec, rf)
    }

    /// Put the target exactly on a voxel of the tiny grid.
    fn on_voxel_target(spec: &SystemSpec, vox: VoxelIndex) -> Vec3 {
        spec.volume_grid.position(vox)
    }

    #[test]
    fn point_target_peaks_at_its_voxel() {
        let spec = SystemSpec::tiny();
        let vox = VoxelIndex::new(3, 4, 9);
        let target = on_voxel_target(&spec, vox);
        let rf = EchoSynthesizer::new(&spec)
            .synthesize(&Phantom::point(target), &Pulse::from_spec(&spec));
        let engine = ExactEngine::new(&spec);
        let bf = Beamformer::new(&spec);
        let vol = bf.beamform_volume(&engine, &rf);
        assert_eq!(vol.argmax(), vox, "energy must focus on the target voxel");
    }

    #[test]
    fn scan_orders_produce_identical_volumes() {
        // Fig. 1 / Algorithm 1: the two orders visit the same voxels.
        let (spec, rf) = setup(Vec3::new(0.005, -0.003, 0.06));
        let engine = ExactEngine::new(&spec);
        let nappe = Beamformer::new(&spec).with_order(ScanOrder::NappeByNappe);
        let scanline = Beamformer::new(&spec).with_order(ScanOrder::ScanlineByScanline);
        let a = nappe.beamform_volume(&engine, &rf);
        let b = scanline.beamform_volume(&engine, &rf);
        assert_eq!(a, b);
    }

    #[test]
    fn focused_sum_exceeds_defocused_sum() {
        let spec = SystemSpec::tiny();
        let vox = VoxelIndex::new(4, 4, 8);
        let target = on_voxel_target(&spec, vox);
        let rf = EchoSynthesizer::new(&spec)
            .synthesize(&Phantom::point(target), &Pulse::from_spec(&spec));
        let engine = ExactEngine::new(&spec);
        let bf = Beamformer::new(&spec).with_apodization(Apodization::Rect);
        let at_focus = bf.beamform_voxel(&engine, &rf, vox).abs();
        let off_focus = bf
            .beamform_voxel(&engine, &rf, VoxelIndex::new(0, 0, 15))
            .abs();
        assert!(
            at_focus > 5.0 * off_focus,
            "focus {at_focus} vs off {off_focus}"
        );
    }

    #[test]
    fn tablesteer_volume_close_to_exact_volume() {
        let spec = SystemSpec::tiny();
        let vox = VoxelIndex::new(4, 4, 8);
        let target = on_voxel_target(&spec, vox);
        let rf = EchoSynthesizer::new(&spec)
            .synthesize(&Phantom::point(target), &Pulse::from_spec(&spec));
        let bf = Beamformer::new(&spec);
        let exact = ExactEngine::new(&spec);
        let steer = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
        let ve = bf.beamform_volume(&exact, &rf);
        let vs = bf.beamform_volume(&steer, &rf);
        // Peak lands on the same voxel and amplitude degrades mildly.
        assert_eq!(vs.argmax(), ve.argmax());
        let ratio = vs.max_abs() / ve.max_abs();
        assert!(ratio > 0.8, "peak ratio = {ratio}");
    }

    #[test]
    fn linear_interpolation_at_least_as_focused() {
        let spec = SystemSpec::tiny();
        let vox = VoxelIndex::new(4, 4, 8);
        let target = on_voxel_target(&spec, vox);
        let rf = EchoSynthesizer::new(&spec)
            .synthesize(&Phantom::point(target), &Pulse::from_spec(&spec));
        let engine = ExactEngine::new(&spec);
        let nearest = Beamformer::new(&spec).with_interpolation(Interpolation::Nearest);
        let linear = Beamformer::new(&spec).with_interpolation(Interpolation::Linear);
        let pn = nearest.beamform_voxel(&engine, &rf, vox).abs();
        let pl = linear.beamform_voxel(&engine, &rf, vox).abs();
        assert!(pl > 0.9 * pn, "linear {pl} vs nearest {pn}");
    }

    #[test]
    fn scanline_profile_matches_volume_column() {
        let (spec, rf) = setup(Vec3::new(0.0, 0.0, 0.05));
        let engine = ExactEngine::new(&spec);
        let bf = Beamformer::new(&spec);
        let vol = bf.beamform_volume(&engine, &rf);
        let profile = bf.beamform_scanline(&engine, &rf, 2, 3);
        for (id, &v) in profile.iter().enumerate() {
            assert_eq!(v, vol.get(VoxelIndex::new(2, 3, id)));
        }
    }

    #[test]
    fn batched_tiled_path_is_bit_identical_to_scalar_path() {
        // The tentpole invariant: the parallel nappe-slab pipeline must
        // reproduce the per-voxel reference walk exactly, for approximate
        // engines and for both interpolation modes.
        let (spec, rf) = setup(Vec3::new(0.004, -0.002, 0.055));
        let exact = ExactEngine::new(&spec);
        let steer = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
        for interp in [Interpolation::Nearest, Interpolation::Linear] {
            for engine in [&exact as &dyn usbf_core::DelayEngine, &steer] {
                let batched = Beamformer::new(&spec)
                    .with_interpolation(interp)
                    .with_order(ScanOrder::NappeByNappe)
                    .beamform_volume(engine, &rf);
                let scalar = Beamformer::new(&spec)
                    .with_interpolation(interp)
                    .with_order(ScanOrder::ScanlineByScanline)
                    .beamform_volume(engine, &rf);
                assert_eq!(batched, scalar, "{} {interp:?}", engine.name());
            }
        }
    }

    #[test]
    fn batched_path_preserves_clamp_telemetry() {
        // A wide aperture on the tiny grid steers some corner fetches out
        // of the echo window; the batched path must count those clamps
        // exactly like the scalar path does.
        let base = SystemSpec::tiny();
        let spec = SystemSpec::new(
            base.speed_of_sound,
            base.sampling_frequency,
            usbf_geometry::TransducerSpec {
                nx: 100,
                ny: 100,
                ..base.transducer.clone()
            },
            base.volume.clone(),
            base.origin,
            base.frame_rate,
        );
        let rf = RfFrame::zeros(100, 100, spec.echo_buffer_len());
        let scalar_engine = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
        let batched_engine = scalar_engine.clone(); // fresh zeroed counter
        let bf = |order| {
            Beamformer::new(&spec)
                .with_apodization(crate::Apodization::Rect)
                .with_order(order)
        };
        bf(ScanOrder::ScanlineByScanline).beamform_volume(&scalar_engine, &rf);
        bf(ScanOrder::NappeByNappe).beamform_volume(&batched_engine, &rf);
        assert!(
            scalar_engine.clamp_events() > 0,
            "setup must actually clamp"
        );
        assert_eq!(batched_engine.clamp_events(), scalar_engine.clamp_events());
    }

    #[test]
    fn every_tile_schedule_gives_the_same_volume() {
        let (spec, rf) = setup(Vec3::new(0.0, 0.003, 0.06));
        let engine = ExactEngine::new(&spec);
        let bf = Beamformer::new(&spec);
        let reference =
            bf.beamform_volume_tiled(&engine, &rf, &usbf_core::NappeSchedule::fitted(&spec, 1));
        for target in [2, 4, 16, 64] {
            let schedule = usbf_core::NappeSchedule::fitted(&spec, target);
            let vol = bf.beamform_volume_tiled(&engine, &rf, &schedule);
            assert_eq!(vol, reference, "{target} tiles");
        }
    }

    #[test]
    fn wide4_reduction_is_bit_identical_between_batched_and_scalar_paths() {
        // Wide4 reassociates the aperture sum, but deterministically:
        // the scalar reference replicates the 4-lane association, so the
        // batched/scalar invariant holds within the mode.
        let (spec, rf) = setup(Vec3::new(0.004, -0.002, 0.055));
        let engine = ExactEngine::new(&spec);
        for interp in [Interpolation::Nearest, Interpolation::Linear] {
            let bf = |order| {
                Beamformer::new(&spec)
                    .with_interpolation(interp)
                    .with_reduction(Reduction::Wide4)
                    .with_order(order)
            };
            let batched = bf(ScanOrder::NappeByNappe).beamform_volume(&engine, &rf);
            let scalar = bf(ScanOrder::ScanlineByScanline).beamform_volume(&engine, &rf);
            assert_eq!(batched, scalar, "{interp:?}");
        }
    }

    #[test]
    fn wide4_reduction_still_focuses_on_the_target() {
        let spec = SystemSpec::tiny();
        let vox = VoxelIndex::new(3, 4, 9);
        let rf = EchoSynthesizer::new(&spec).synthesize(
            &Phantom::point(on_voxel_target(&spec, vox)),
            &Pulse::from_spec(&spec),
        );
        let engine = ExactEngine::new(&spec);
        let vol = Beamformer::new(&spec)
            .with_reduction(Reduction::Wide4)
            .beamform_volume(&engine, &rf);
        assert_eq!(vol.argmax(), vox);
    }

    /// A 4-angle compound spec on the tiny grid, with a synthesized
    /// multi-transmit acquisition.
    fn compound_setup() -> (SystemSpec, RfFrame) {
        let spec = SystemSpec::tiny().with_transmits(usbf_geometry::TransmitModel::plane_wave_fan(
            4,
            usbf_geometry::deg(10.0),
        ));
        let rf = EchoSynthesizer::new(&spec).synthesize(
            &Phantom::point(Vec3::new(0.002, -0.001, 0.05)),
            &Pulse::from_spec(&spec),
        );
        (spec, rf)
    }

    #[test]
    fn factored_compound_path_is_bit_identical_to_fused_path() {
        // The tentpole invariant: routing the compound loop through
        // fill_nappe_rx_streamed + combine_tx_row must reproduce the
        // fused per-transmit kernel exactly. `FusedOnly` hides the
        // factored family, forcing the fallback loop on the same engine.
        let (spec, rf) = compound_setup();
        let exact = ExactEngine::new(&spec);
        let steer = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
        for interp in [Interpolation::Nearest, Interpolation::Linear] {
            for reduction in [Reduction::Sequential, Reduction::Wide4] {
                for engine in [&exact as &dyn usbf_core::DelayEngine, &steer] {
                    assert!(engine.supports_factored_fill());
                    let bf = Beamformer::new(&spec)
                        .with_interpolation(interp)
                        .with_reduction(reduction);
                    let schedule = usbf_core::NappeSchedule::fitted(&spec, 4);
                    let factored = bf.beamform_volume_tiled(engine, &rf, &schedule);
                    let fused = match engine.name() {
                        "EXACT" => bf.beamform_volume_tiled(
                            &usbf_core::FusedOnly(exact.clone()),
                            &rf,
                            &schedule,
                        ),
                        _ => bf.beamform_volume_tiled(
                            &usbf_core::FusedOnly(steer.clone()),
                            &rf,
                            &schedule,
                        ),
                    };
                    assert_eq!(
                        factored,
                        fused,
                        "{} {interp:?} {reduction:?}",
                        engine.name()
                    );
                }
            }
        }
    }

    #[test]
    fn factored_compound_path_preserves_clamp_telemetry() {
        // The factored nearest kernel must quantize every transmit's
        // combined row — masked ones included — exactly like the fused
        // kernel does, so TABLESTEER's clamp counter advances
        // identically on both paths. A wide aperture on the tiny grid
        // (same trick as the single-source telemetry test) steers corner
        // fetches out of the echo window so clamps actually happen.
        let base = SystemSpec::tiny();
        let spec = SystemSpec::new(
            base.speed_of_sound,
            base.sampling_frequency,
            usbf_geometry::TransducerSpec {
                nx: 100,
                ny: 100,
                ..base.transducer.clone()
            },
            base.volume.clone(),
            base.origin,
            base.frame_rate,
        )
        .with_transmits({
            // A point-source emission in the sequence reproduces the
            // clamping geometry of the single-source telemetry test
            // (two-way distances overrun the echo window at the
            // corners); the plane waves ride along as the compound part.
            let mut txs = vec![usbf_geometry::TransmitModel::PointSource];
            txs.extend(usbf_geometry::TransmitModel::plane_wave_fan(
                3,
                usbf_geometry::deg(10.0),
            ));
            txs
        });
        let rf = RfFrame::zeros_multi(100, 100, spec.echo_buffer_len(), spec.n_transmits());
        let factored_engine = TableSteerEngine::new(&spec, TableSteerConfig::bits18()).unwrap();
        let fused_engine = usbf_core::FusedOnly(factored_engine.clone()); // fresh zeroed counter
        let bf = Beamformer::new(&spec).with_apodization(crate::Apodization::Rect);
        let schedule = usbf_core::NappeSchedule::fitted(&spec, 2);
        bf.beamform_volume_tiled(&factored_engine, &rf, &schedule);
        bf.beamform_volume_tiled(&fused_engine, &rf, &schedule);
        assert!(
            factored_engine.clamp_events() > 0,
            "setup must actually clamp"
        );
        assert_eq!(
            factored_engine.clamp_events(),
            fused_engine.0.clamp_events()
        );
    }

    #[test]
    fn factored_compound_path_matches_scalar_reference() {
        // End-to-end: the factored batched volume equals the per-voxel
        // scalar compound walk (which reaches the same numbers through
        // delay_index_for / delay_samples_for, never the row family).
        let (spec, rf) = compound_setup();
        let engine = ExactEngine::new(&spec);
        for interp in [Interpolation::Nearest, Interpolation::Linear] {
            let bf = |order| {
                Beamformer::new(&spec)
                    .with_interpolation(interp)
                    .with_order(order)
            };
            let batched = bf(ScanOrder::NappeByNappe).beamform_volume(&engine, &rf);
            let scalar = bf(ScanOrder::ScanlineByScanline).beamform_volume(&engine, &rf);
            assert_eq!(batched, scalar, "{interp:?}");
        }
    }

    #[test]
    fn empty_rf_gives_zero_volume() {
        let spec = SystemSpec::tiny();
        let rf = RfFrame::zeros(
            spec.elements.nx(),
            spec.elements.ny(),
            spec.echo_buffer_len(),
        );
        let engine = ExactEngine::new(&spec);
        let vol = Beamformer::new(&spec).beamform_volume(&engine, &rf);
        assert_eq!(vol.max_abs(), 0.0);
    }
}
